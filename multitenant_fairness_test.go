// Multi-tenant fairness and quota tests at the federation surface (white-box:
// package fedqcc so a blocker grant can pin the admission slot directly).
// Holding a real grant keeps running > 0, which parks the tenant-tagged burst
// in the queue without cost holds or deadlines — the controller's
// stall-advance (which fast-forwards virtual time when nothing runs) never
// fires, so the drain order is purely the weighted-fair scheduler's.
package fedqcc

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/workload"
)

// mtTestStatement returns one cheap query every burst below reuses: identical
// statements give identical calibrated costs, so weighted-fair grant counts
// mirror served-cost shares exactly.
func mtTestStatement(tb testing.TB) string {
	tb.Helper()
	qt4, err := workload.TypeByName("QT4")
	if err != nil {
		tb.Fatal(err)
	}
	return workload.Instances(qt4, 1)[0]
}

// mtWaitQueueDepth blocks until the controller's queue holds want waiters.
func mtWaitQueueDepth(tb testing.TB, fed *Federation, want int) {
	tb.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for fed.adm.QueueDepth() < want {
		if time.Now().After(deadline) {
			tb.Fatalf("queue depth never reached %d (at %d)", want, fed.adm.QueueDepth())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// mtBlockerGrant occupies the federation's single admission slot so that
// every subsequent query parks in the queue until the grant is released.
func mtBlockerGrant(tb testing.TB, fed *Federation) *admission.Grant {
	tb.Helper()
	g, err := fed.adm.Admit(context.Background(), admission.Request{Query: "blocker", CostMS: 1})
	if err != nil {
		tb.Fatalf("blocker grant: %v", err)
	}
	return g
}

func mtTenantStat(tb testing.TB, fed *Federation, name string) TenantStats {
	tb.Helper()
	for _, ts := range fed.Admission().TenantStats() {
		if ts.Name == name {
			return ts
		}
	}
	tb.Fatalf("controller has no tenant %q", name)
	return TenantStats{}
}

func mtLogTenant(tb testing.TB, fed *Federation, name string) QueryLogTenantStats {
	tb.Helper()
	for _, ts := range fed.QueryLogStats().Tenants {
		if ts.Name == name {
			return ts
		}
	}
	tb.Fatalf("query log has no tenant %q", name)
	return QueryLogTenantStats{}
}

// TestTenantWeightedSharesFederation drives a 40-query two-tenant burst
// (gold weight 3, bronze weight 1, identical statements) through a
// single-slot federation: the burst parks behind a blocker grant, then drains
// one at a time in weighted-fair order. Gold must take roughly three of every
// four early grants, and bronze must accumulate the larger queue wait.
func TestTenantWeightedSharesFederation(t *testing.T) {
	fed := admBenchFederation(t)
	adm := fed.Admission()
	adm.RegisterTenant(Tenant{Name: "gold", Weight: 3})
	adm.RegisterTenant(Tenant{Name: "bronze", Weight: 1})
	pol := DefaultAdmissionPolicy()
	pol.MaxConcurrent = 1
	adm.SetPolicy(pol)

	sql := mtTestStatement(t)
	if _, err := fed.Query(sql); err != nil { // warm the plan cache before parking the slot
		t.Fatal(err)
	}

	blocker := mtBlockerGrant(t, fed)
	const perTenant = 20
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		order []string
	)
	for i := 0; i < 2*perTenant; i++ {
		tenant := "gold"
		if i%2 == 1 {
			tenant = "bronze"
		}
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			res, err := fed.QueryContext(WithQueryTenant(context.Background(), tenant), sql)
			if err != nil {
				t.Errorf("tenant %s: %v", tenant, err)
				return
			}
			if res.Tenant != tenant {
				t.Errorf("result attributed to %q, want %q", res.Tenant, tenant)
			}
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
		}(tenant)
	}
	mtWaitQueueDepth(t, fed, 2*perTenant)
	blocker.Release()
	wg.Wait()

	if len(order) != 2*perTenant {
		t.Fatalf("%d of %d queries completed", len(order), 2*perTenant)
	}
	goldEarly := 0
	for _, tenant := range order[:perTenant] {
		if tenant == "gold" {
			goldEarly++
		}
	}
	// Ideal 3:1 interleave gives 15 gold in the first 20 completions; allow
	// slack for goroutine wakeup skew between grant and completion append.
	if goldEarly < 12 || goldEarly > 18 {
		t.Errorf("gold took %d of the first %d completions, want ~15 (3:1 weights): order %v",
			goldEarly, perTenant, order[:perTenant])
	}

	gold, bronze := mtTenantStat(t, fed, "gold"), mtTenantStat(t, fed, "bronze")
	for _, ts := range []TenantStats{gold, bronze} {
		if ts.Admitted != perTenant || ts.Shed != 0 || ts.Rejected != 0 {
			t.Errorf("tenant %s: admitted %d shed %d rejected %d, want %d/0/0",
				ts.Name, ts.Admitted, ts.Shed, ts.Rejected, perTenant)
		}
	}
	if bronze.TotalQueueWait <= gold.TotalQueueWait {
		t.Errorf("bronze queue wait %v not above gold's %v despite 1:3 weight",
			bronze.TotalQueueWait, gold.TotalQueueWait)
	}
	for _, name := range []string{"gold", "bronze"} {
		lt := mtLogTenant(t, fed, name)
		if lt.Completed != perTenant || lt.Shed != 0 {
			t.Errorf("query log tenant %s: completed %d shed %d, want %d/0", name, lt.Completed, lt.Shed, perTenant)
		}
		if lt.ServedCostMS <= 0 {
			t.Errorf("query log tenant %s: served cost %v, want > 0", name, lt.ServedCostMS)
		}
	}
}

// TestTenantQuotaShedFederation pins the single admission slot, fills tenant
// "limited"'s one-deep queue, and asserts the next limited query is refused
// synchronously with the tenant-quota error chain — while an unconstrained
// tenant still queues freely and both parked queries complete once the slot
// frees.
func TestTenantQuotaShedFederation(t *testing.T) {
	fed := admBenchFederation(t)
	adm := fed.Admission()
	adm.RegisterTenant(Tenant{Name: "limited", Weight: 1, MaxQueue: 1})
	adm.RegisterTenant(Tenant{Name: "free", Weight: 1})
	pol := DefaultAdmissionPolicy()
	pol.MaxConcurrent = 1
	adm.SetPolicy(pol)

	sql := mtTestStatement(t)
	if _, err := fed.Query(sql); err != nil {
		t.Fatal(err)
	}

	blocker := mtBlockerGrant(t, fed)
	launch := func(tenant string) chan error {
		done := make(chan error, 1)
		go func() {
			_, err := fed.QueryContext(WithQueryTenant(context.Background(), tenant), sql)
			done <- err
		}()
		return done
	}
	first := launch("limited")
	mtWaitQueueDepth(t, fed, 1)

	// The limited tenant's queue bound is full: the second query must bounce
	// immediately with the quota chain, not a deadline shed.
	_, err := fed.QueryContext(WithQueryTenant(context.Background(), "limited"), sql)
	if err == nil {
		t.Fatal("second limited query admitted past MaxQueue 1")
	}
	if !errors.Is(err, ErrAdmissionRejected) || !errors.Is(err, ErrTenantQuota) {
		t.Errorf("quota refusal %v does not match ErrAdmissionRejected+ErrTenantQuota", err)
	}
	if errors.Is(err, ErrQueueTimeout) {
		t.Errorf("immediate queue-full refusal %v must not match ErrQueueTimeout", err)
	}
	var rej *AdmissionRejection
	if !errors.As(err, &rej) {
		t.Fatalf("refusal %v carries no *AdmissionRejection", err)
	}
	if rej.Tenant != "limited" || rej.Reason != admission.ReasonTenantQueueFull {
		t.Errorf("rejection tenant %q reason %q, want limited/%s", rej.Tenant, rej.Reason, admission.ReasonTenantQueueFull)
	}

	// An unconstrained tenant is unaffected by the neighbour's quota.
	second := launch("free")
	mtWaitQueueDepth(t, fed, 2)

	blocker.Release()
	for name, done := range map[string]chan error{"limited": first, "free": second} {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("parked %s query: %v", name, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("parked %s query never completed after release", name)
		}
	}

	limited := mtTenantStat(t, fed, "limited")
	if limited.Admitted != 1 || limited.Rejected != 1 {
		t.Errorf("limited tenant admitted %d rejected %d, want 1/1", limited.Admitted, limited.Rejected)
	}
	free := mtTenantStat(t, fed, "free")
	if free.Admitted != 1 || free.Rejected != 0 {
		t.Errorf("free tenant admitted %d rejected %d, want 1/0", free.Admitted, free.Rejected)
	}
	lt := mtLogTenant(t, fed, "limited")
	if lt.Completed != 1 || lt.Shed != 1 {
		t.Errorf("query log tenant limited: completed %d shed %d, want 1/1", lt.Completed, lt.Shed)
	}
	if lf := mtLogTenant(t, fed, "free"); lf.Completed != 1 || lf.Shed != 0 {
		t.Errorf("query log tenant free: completed %d shed %d, want 1/0", lf.Completed, lf.Shed)
	}
}

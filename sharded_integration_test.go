// Sharded-execution integration tests: the scatter-gather engine must be
// invisible when sharding is off (a single-shard federation is bit-identical
// to the pre-sharding engine), and shard pruning must be a pure optimization
// (pruned and unpruned scatter-gathers return exactly the same rows, for any
// predicate shape, NULL shard keys included).
package fedqcc_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	fedqcc "repro"
	"repro/internal/sqltypes"
)

// shardedFed builds the scale-out scenario at a test-friendly scale.
func shardedFed(t testing.TB, opts fedqcc.ShardedFederationOptions) *fedqcc.Federation {
	t.Helper()
	if opts.Scale == 0 {
		opts.Scale = 100
	}
	fed, err := fedqcc.NewShardedFederation(opts)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

// runWorkloadOn is runVecWorkload over an explicit federation.
func runWorkloadOn(t *testing.T, fed *fedqcc.Federation, sqls []string) vecRunOutcome {
	t.Helper()
	fed.EnableTelemetry()
	out := vecRunOutcome{
		results: make([]*fedqcc.QueryResult, len(sqls)),
		trees:   make([]string, len(sqls)),
		fed:     fed,
	}
	for i, q := range sqls {
		res, err := fed.Query(q)
		if err != nil {
			t.Fatalf("query %d (%s): %v", i, q, err)
		}
		out.results[i] = res
		if tr := fed.Telemetry().Tracer().Last(); tr != nil {
			out.trees[i] = tr.Tree()
		}
	}
	out.clock = fed.Now()
	return out
}

var shardedWorkload = []string{
	"SELECT l_id, l_price FROM lineitem WHERE l_price > 500",
	"SELECT l_tag, SUM(l_price), COUNT(*) FROM lineitem GROUP BY l_tag",
	"SELECT AVG(l_qty) FROM lineitem WHERE l_orderkey < 500",
	"SELECT COUNT(*) FROM lineitem WHERE l_orderkey = 37",
	"SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE l.l_qty < 5",
	"SELECT l_id FROM lineitem ORDER BY l_price DESC LIMIT 10",
}

// TestShardedSingleShardIdentity is the sharding-off acceptance gate: a
// single-shard sharded federation must be observationally indistinguishable
// — rows, charges, routes, span trees, virtual clock — from the same
// federation assembled through the pre-sharding Builder path, under both
// engines. RegisterSharded degrades a 1-shard map to a plain nickname, so
// this pins the whole engine to the pre-sharding code paths by construction.
func TestShardedSingleShardIdentity(t *testing.T) {
	const scale = 50
	baselineFed := func() *fedqcc.Federation {
		b := fedqcc.NewBuilder(42)
		b.AddServer("S1", fedqcc.ProfileMidrange, fedqcc.LinkSpec{LatencyMS: 5, BandwidthKBps: 2000})
		for _, spec := range fedqcc.StandardSchema(scale) {
			b.AddGeneratedTable("S1", spec)
		}
		fed, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return fed
	}
	for _, vec := range []bool{false, true} {
		single := shardedFed(t, fedqcc.ShardedFederationOptions{Shards: 1, Scale: scale})
		base := baselineFed()
		single.SetVectorized(vec)
		base.SetVectorized(vec)
		got := runWorkloadOn(t, single, shardedWorkload)
		want := runWorkloadOn(t, base, shardedWorkload)
		requireVecIdentity(t, shardedWorkload, want, got)
	}
}

// shardPredicates mixes handpicked predicate shapes (every pruning rule, the
// unsatisfiable conjunction, non-key predicates) with seeded random
// predicates on and off the shard key.
func shardPredicates() []string {
	preds := []string{
		"l_orderkey = 37",
		"l_orderkey = -1",
		"l_orderkey IN (5, 250, 999)",
		"l_orderkey BETWEEN 100 AND 300",
		"l_orderkey < 200",
		"l_orderkey >= 800",
		"l_orderkey IS NULL",
		"l_orderkey = 37 AND l_qty > 2",
		"l_orderkey = 5 AND l_orderkey = 900",
		"l_qty < 25",
		"250 <= l_orderkey",
	}
	r := rand.New(rand.NewSource(7))
	ops := []string{"=", "<", "<=", ">", ">="}
	cols := []string{"l_orderkey", "l_orderkey", "l_orderkey", "l_qty"}
	for i := 0; i < 20; i++ {
		col := cols[r.Intn(len(cols))]
		switch r.Intn(4) {
		case 0:
			preds = append(preds, fmt.Sprintf("%s %s %d", col, ops[r.Intn(len(ops))], r.Intn(1100)-50))
		case 1:
			lo := r.Intn(1000)
			preds = append(preds, fmt.Sprintf("%s BETWEEN %d AND %d", col, lo, lo+r.Intn(300)))
		case 2:
			preds = append(preds, fmt.Sprintf("%s IN (%d, %d, %d)", col, r.Intn(1000), r.Intn(1000), r.Intn(1000)))
		default:
			preds = append(preds, fmt.Sprintf("%s %s %d AND l_price > %d", col, ops[r.Intn(len(ops))], r.Intn(1000), r.Intn(900)))
		}
	}
	return preds
}

// TestShardedPrunedVsUnpruned is the pruning-correctness property test:
// for every predicate shape, executing only the pruned shard set returns
// exactly the rows of the unpruned scatter-gather — including NULL shard
// keys, empty shards, and aggregate merges.
func TestShardedPrunedVsUnpruned(t *testing.T) {
	shapes := []string{
		"SELECT l_id, l_orderkey, l_price FROM lineitem WHERE %s",
		"SELECT COUNT(*), SUM(l_qty), AVG(l_qty), MIN(l_price), MAX(l_price) FROM lineitem WHERE %s",
		"SELECT l_tag, COUNT(*), SUM(l_qty) FROM lineitem WHERE %s GROUP BY l_tag",
	}
	for _, ranged := range []bool{false, true} {
		fed := shardedFed(t, fedqcc.ShardedFederationOptions{
			Shards:        4,
			RangeSharding: ranged,
			NullKeyFrac:   0.15,
		})
		for _, pred := range shardPredicates() {
			for _, shape := range shapes {
				sql := fmt.Sprintf(shape, pred)
				fed.SetShardPruning(true)
				pruned, err := fed.Query(sql)
				if err != nil {
					t.Fatalf("pruned %s: %v", sql, err)
				}
				fed.SetShardPruning(false)
				full, err := fed.Query(sql)
				if err != nil {
					t.Fatalf("unpruned %s: %v", sql, err)
				}
				if len(pruned.Rows.Rows) != len(full.Rows.Rows) {
					t.Fatalf("%s (range=%v): %d rows pruned vs %d unpruned",
						sql, ranged, len(pruned.Rows.Rows), len(full.Rows.Rows))
				}
				for ri := range full.Rows.Rows {
					for ci := range full.Rows.Rows[ri] {
						if !cellsBitIdentical(pruned.Rows.Rows[ri][ci], full.Rows.Rows[ri][ci]) {
							t.Fatalf("%s (range=%v): cell (%d,%d) diverged: pruned %#v, unpruned %#v",
								sql, ranged, ri, ci, pruned.Rows.Rows[ri][ci], full.Rows.Rows[ri][ci])
						}
					}
				}
			}
		}
	}
}

// TestShardedPushdownSameAnswers: shipping partial aggregate states and
// shipping whole rows must agree — exactly on integer aggregates and counts,
// and within float tolerance on float sums (addition order differs).
func TestShardedPushdownSameAnswers(t *testing.T) {
	fed := shardedFed(t, fedqcc.ShardedFederationOptions{Shards: 4})
	sqls := []string{
		"SELECT COUNT(*), SUM(l_qty), AVG(l_qty), MIN(l_price), MAX(l_price) FROM lineitem",
		"SELECT l_tag, COUNT(*), SUM(l_qty), SUM(l_price) FROM lineitem GROUP BY l_tag ORDER BY l_tag",
		"SELECT l_tag, AVG(l_price) FROM lineitem WHERE l_qty > 10 GROUP BY l_tag HAVING COUNT(*) > 3 ORDER BY l_tag",
	}
	for _, sql := range sqls {
		fed.SetShardPushdown(true)
		push, err := fed.Query(sql)
		if err != nil {
			t.Fatalf("pushdown %s: %v", sql, err)
		}
		fed.SetShardPushdown(false)
		ship, err := fed.Query(sql)
		if err != nil {
			t.Fatalf("ship-all %s: %v", sql, err)
		}
		if len(push.Rows.Rows) != len(ship.Rows.Rows) {
			t.Fatalf("%s: %d rows pushdown vs %d ship-all", sql, len(push.Rows.Rows), len(ship.Rows.Rows))
		}
		for ri := range ship.Rows.Rows {
			for ci := range ship.Rows.Rows[ri] {
				a, b := push.Rows.Rows[ri][ci], ship.Rows.Rows[ri][ci]
				if a.IsNull() != b.IsNull() {
					t.Fatalf("%s: cell (%d,%d): %v vs %v", sql, ri, ci, a, b)
				}
				if a.IsNull() {
					continue
				}
				if a.Kind() == sqltypes.KindFloat || b.Kind() == sqltypes.KindFloat {
					af, bf := a.Float(), b.Float()
					if math.Abs(af-bf) > 1e-9*math.Max(1, math.Abs(bf)) {
						t.Fatalf("%s: cell (%d,%d): %v vs %v", sql, ri, ci, a, b)
					}
					continue
				}
				if !cellsBitIdentical(a, b) {
					t.Fatalf("%s: cell (%d,%d): %#v vs %#v", sql, ri, ci, a, b)
				}
			}
		}
	}
}

// TestShardedJoinMatchesUnsharded: joining a sharded table against a
// replicated one at the integrator returns exactly the single-server answer.
func TestShardedJoinMatchesUnsharded(t *testing.T) {
	const sql = "SELECT o.o_id, l.l_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE l.l_qty < 20 ORDER BY l.l_id"
	single := shardedFed(t, fedqcc.ShardedFederationOptions{Shards: 1})
	sharded := shardedFed(t, fedqcc.ShardedFederationOptions{Shards: 4})
	want, err := single.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows.Rows) == 0 || len(got.Rows.Rows) != len(want.Rows.Rows) {
		t.Fatalf("rows: %d sharded vs %d single", len(got.Rows.Rows), len(want.Rows.Rows))
	}
	for ri := range want.Rows.Rows {
		for ci := range want.Rows.Rows[ri] {
			if !cellsBitIdentical(got.Rows.Rows[ri][ci], want.Rows.Rows[ri][ci]) {
				t.Fatalf("cell (%d,%d): %#v vs %#v", ri, ci, got.Rows.Rows[ri][ci], want.Rows.Rows[ri][ci])
			}
		}
	}
	// The sharded run must actually have scattered lineitem.
	found := 0
	for id := range got.Route {
		if strings.Contains(id, ".s") {
			found++
		}
	}
	if found != 4 {
		t.Fatalf("expected 4 shard fragments in the route, got %v", got.Route)
	}
}

// TestShardedTelemetry: shard fragments annotate their spans with the shard
// index and bump the shard.fragments counter per server.
func TestShardedTelemetry(t *testing.T) {
	fed := shardedFed(t, fedqcc.ShardedFederationOptions{Shards: 4})
	fed.EnableTelemetry()
	if _, err := fed.Query("SELECT l_tag, COUNT(*) FROM lineitem GROUP BY l_tag"); err != nil {
		t.Fatal(err)
	}
	tree := fed.Telemetry().Tracer().Last().Tree()
	for i := 0; i < 4; i++ {
		if !strings.Contains(tree, fmt.Sprintf("shard=%d", i)) {
			t.Fatalf("span tree missing shard=%d:\n%s", i, tree)
		}
	}
	m := fed.Telemetry().Metrics()
	var total int64
	for _, id := range fed.ServerIDs() {
		total += m.CounterValue("shard.fragments", id)
	}
	if total != 4 {
		t.Fatalf("shard.fragments total = %d, want 4", total)
	}
}

// TestBuilderShardedTable: the builder API shards a generated table across
// named servers and answers queries identically to a single-server build.
func TestBuilderShardedTable(t *testing.T) {
	const sql = "SELECT l_id, l_price FROM lineitem WHERE l_orderkey < 200 ORDER BY l_id"
	schema := fedqcc.StandardSchema(100)
	var lineSpec fedqcc.TableSpec
	for _, s := range schema {
		if s.Name == "lineitem" {
			lineSpec = s
		}
	}

	b := fedqcc.NewBuilder(42)
	b.AddServer("S1", fedqcc.ProfileMidrange, fedqcc.LinkSpec{})
	b.AddServer("S2", fedqcc.ProfileMidrange, fedqcc.LinkSpec{})
	b.AddShardedTable(lineSpec, "l_orderkey", "S1", "S2")
	fed, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, nick := range fed.Nicknames() {
		if strings.Contains(nick, "__s") {
			t.Fatalf("physical shard table %q leaked into the catalog", nick)
		}
	}
	hosts, err := fed.PlacementsOf("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 2 {
		t.Fatalf("placements: %v", hosts)
	}

	base := fedqcc.NewBuilder(42)
	base.AddServer("S1", fedqcc.ProfileMidrange, fedqcc.LinkSpec{})
	base.AddGeneratedTable("S1", lineSpec)
	baseFed, err := base.Build()
	if err != nil {
		t.Fatal(err)
	}

	got, err := fed.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseFed.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows.Rows) == 0 || len(got.Rows.Rows) != len(want.Rows.Rows) {
		t.Fatalf("rows: %d sharded vs %d baseline", len(got.Rows.Rows), len(want.Rows.Rows))
	}
	for ri := range want.Rows.Rows {
		for ci := range want.Rows.Rows[ri] {
			if !cellsBitIdentical(got.Rows.Rows[ri][ci], want.Rows.Rows[ri][ci]) {
				t.Fatalf("cell (%d,%d): %#v vs %#v", ri, ci, got.Rows.Rows[ri][ci], want.Rows.Rows[ri][ci])
			}
		}
	}
}

// Vectorized-engine integration tests: flipping the federation between the
// row-at-a-time and columnar executors must be invisible to everything the
// simulation measures — rows, routes, fragment times, merge times, queue
// waits, span trees, and the virtual clock — across streaming, monolithic,
// and admission-gated execution. Only real wall-clock cost may differ.
package fedqcc_test

import (
	"fmt"
	"math"
	"testing"

	fedqcc "repro"
	"repro/internal/sqltypes"
)

// vecRunOutcome captures everything one workload run exposes to comparison.
type vecRunOutcome struct {
	results []*fedqcc.QueryResult
	trees   []string
	clock   fedqcc.Time
	fed     *fedqcc.Federation
}

// runVecWorkload executes sqls sequentially on a fresh soak federation after
// applying configure, capturing per-query results and span trees plus the
// final virtual clock.
func runVecWorkload(t *testing.T, sqls []string, configure func(*fedqcc.Federation)) vecRunOutcome {
	t.Helper()
	fed := soakFederation(t)
	fed.EnableTelemetry()
	configure(fed)
	out := vecRunOutcome{
		results: make([]*fedqcc.QueryResult, len(sqls)),
		trees:   make([]string, len(sqls)),
		fed:     fed,
	}
	for i, q := range sqls {
		res, err := fed.Query(q)
		if err != nil {
			t.Fatalf("query %d (%s): %v", i, q, err)
		}
		out.results[i] = res
		if tr := fed.Telemetry().Tracer().Last(); tr != nil {
			out.trees[i] = tr.Tree()
		}
	}
	out.clock = fed.Now()
	return out
}

// cellsBitIdentical compares two values bit for bit: floats by their IEEE-754
// payload (so NaN == NaN and -0.0 != +0.0), everything else by struct
// equality. Stricter than the rounding comparison in package experiment.
func cellsBitIdentical(a, b sqltypes.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	if a.Kind() == sqltypes.KindFloat {
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	}
	return a == b
}

// requireVecIdentity requires two runs of the same workload to be
// observationally indistinguishable.
func requireVecIdentity(t *testing.T, sqls []string, row, vec vecRunOutcome) {
	t.Helper()
	for i := range sqls {
		r, v := row.results[i], vec.results[i]
		if len(r.Rows.Rows) != len(v.Rows.Rows) {
			t.Fatalf("query %d (%s): %d rows (row engine) vs %d (vectorized)",
				i, sqls[i], len(r.Rows.Rows), len(v.Rows.Rows))
		}
		for ri := range r.Rows.Rows {
			for ci := range r.Rows.Rows[ri] {
				if !cellsBitIdentical(r.Rows.Rows[ri][ci], v.Rows.Rows[ri][ci]) {
					t.Fatalf("query %d (%s): cell (%d,%d) diverged: row engine %#v, vectorized %#v",
						i, sqls[i], ri, ci, r.Rows.Rows[ri][ci], v.Rows.Rows[ri][ci])
				}
			}
		}
		if r.ResponseTime != v.ResponseTime {
			t.Errorf("query %d (%s): response %v vs %v", i, sqls[i], r.ResponseTime, v.ResponseTime)
		}
		if r.FirstRowTime != v.FirstRowTime {
			t.Errorf("query %d (%s): first row %v vs %v", i, sqls[i], r.FirstRowTime, v.FirstRowTime)
		}
		if r.MergeTime != v.MergeTime {
			t.Errorf("query %d (%s): merge %v vs %v", i, sqls[i], r.MergeTime, v.MergeTime)
		}
		if r.QueueWait != v.QueueWait {
			t.Errorf("query %d (%s): queue wait %v vs %v", i, sqls[i], r.QueueWait, v.QueueWait)
		}
		if r.AdmissionClass != v.AdmissionClass {
			t.Errorf("query %d (%s): class %q vs %q", i, sqls[i], r.AdmissionClass, v.AdmissionClass)
		}
		if fmt.Sprint(r.Route) != fmt.Sprint(v.Route) {
			t.Errorf("query %d (%s): route %v vs %v", i, sqls[i], r.Route, v.Route)
		}
		if fmt.Sprint(r.FragmentTimes) != fmt.Sprint(v.FragmentTimes) {
			t.Errorf("query %d (%s): fragment times %v vs %v", i, sqls[i], r.FragmentTimes, v.FragmentTimes)
		}
		if row.trees[i] != vec.trees[i] {
			t.Errorf("query %d (%s): span tree diverged:\n--- row engine ---\n%s--- vectorized ---\n%s",
				i, sqls[i], row.trees[i], vec.trees[i])
		}
	}
	if row.clock != vec.clock {
		t.Errorf("final clock %v (row engine) vs %v (vectorized): the engines charged different virtual time",
			row.clock, vec.clock)
	}
}

// requireVectorizedEngaged fails unless the columnar engine actually executed
// remote fragments (the identity tests would pass vacuously otherwise).
func requireVectorizedEngaged(t *testing.T, out vecRunOutcome) {
	t.Helper()
	m := out.fed.Telemetry().Metrics()
	var remote int64
	for _, id := range out.fed.ServerIDs() {
		remote += m.CounterValue("exec.vectorized", id)
	}
	if remote == 0 {
		t.Fatal("exec.vectorized never incremented on any server: the columnar engine did not run")
	}
	found := false
	for _, id := range out.fed.ServerIDs() {
		if h := m.HistogramOf("exec.batch_rows", id); h != nil && h.Count() > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("exec.batch_rows recorded no samples on the vectorized run")
	}
}

// TestVectorizedIdentityStreaming is the tentpole acceptance check under the
// default streaming data path: the same random workload through a row-engine
// federation and a vectorized one must match bit for bit on everything the
// virtual-time model observes.
func TestVectorizedIdentityStreaming(t *testing.T) {
	sqls := soakStatements(16)
	row := runVecWorkload(t, sqls, func(fed *fedqcc.Federation) { fed.SetVectorized(false) })
	vec := runVecWorkload(t, sqls, func(fed *fedqcc.Federation) {
		fed.SetVectorized(true)
		if !fed.Vectorized() {
			t.Fatal("SetVectorized(true) did not take")
		}
	})
	requireVecIdentity(t, sqls, row, vec)
	requireVectorizedEngaged(t, vec)
	m := row.fed.Telemetry().Metrics()
	for _, id := range row.fed.ServerIDs() {
		if m.CounterValue("exec.vectorized", id) != 0 {
			t.Fatalf("exec.vectorized incremented on %s with the row engine selected", id)
		}
	}
}

// TestVectorizedIdentityMonolithic pins the escape hatch interaction: with
// streaming disabled (BatchRows=0) the vectorized toggle must still be
// invisible to every simulated measurement.
func TestVectorizedIdentityMonolithic(t *testing.T) {
	sqls := soakStatements(12)
	row := runVecWorkload(t, sqls, func(fed *fedqcc.Federation) { fed.SetBatchRows(0) })
	vec := runVecWorkload(t, sqls, func(fed *fedqcc.Federation) {
		fed.SetBatchRows(0)
		fed.SetVectorized(true)
	})
	requireVecIdentity(t, sqls, row, vec)
	requireVectorizedEngaged(t, vec)
}

// TestVectorizedIdentityUnderAdmission runs the workload through an active
// admission policy (classification, slot accounting, per-class counters) on
// both engines: the gate classifies queries by calibrated cost, so any
// engine-induced cost perturbation would surface as a class or stats diff.
func TestVectorizedIdentityUnderAdmission(t *testing.T) {
	sqls := soakStatements(12)
	policy := fedqcc.AdmissionPolicy{
		MaxConcurrent: 2,
		Classes: []fedqcc.AdmissionClassConfig{
			{Name: fedqcc.ClassInteractive, Priority: 10, CeilingMS: 500, MaxConcurrent: 2, QueueDeadline: 1e6},
			{Name: fedqcc.ClassBatch, QueueDeadline: 1e6},
		},
	}
	row := runVecWorkload(t, sqls, func(fed *fedqcc.Federation) {
		fed.Admission().SetPolicy(policy)
	})
	vec := runVecWorkload(t, sqls, func(fed *fedqcc.Federation) {
		fed.Admission().SetPolicy(policy)
		fed.SetVectorized(true)
	})
	requireVecIdentity(t, sqls, row, vec)
	requireVectorizedEngaged(t, vec)
	rs, vs := row.fed.Admission().Stats(), vec.fed.Admission().Stats()
	if fmt.Sprint(rs) != fmt.Sprint(vs) {
		t.Errorf("admission stats diverged:\nrow engine: %+v\nvectorized: %+v", rs, vs)
	}
}

// TestVectorizedToggleMidWorkload flips the engine back and forth between
// queries on one federation and compares against an all-row run: the switch
// must be safe at any query boundary and leave no residue.
func TestVectorizedToggleMidWorkload(t *testing.T) {
	sqls := soakStatements(10)
	row := runVecWorkload(t, sqls, func(*fedqcc.Federation) {})

	fed := soakFederation(t)
	fed.EnableTelemetry()
	for i, q := range sqls {
		fed.SetVectorized(i%2 == 1)
		res, err := fed.Query(q)
		if err != nil {
			t.Fatalf("query %d (%s): %v", i, q, err)
		}
		r := row.results[i]
		if len(r.Rows.Rows) != len(res.Rows.Rows) {
			t.Fatalf("query %d: %d rows vs %d after toggle", i, len(r.Rows.Rows), len(res.Rows.Rows))
		}
		for ri := range r.Rows.Rows {
			for ci := range r.Rows.Rows[ri] {
				if !cellsBitIdentical(r.Rows.Rows[ri][ci], res.Rows.Rows[ri][ci]) {
					t.Fatalf("query %d: cell (%d,%d) diverged after toggle", i, ri, ci)
				}
			}
		}
		if r.ResponseTime != res.ResponseTime {
			t.Errorf("query %d: response %v vs %v after toggle", i, r.ResponseTime, res.ResponseTime)
		}
	}
	if row.clock != fed.Now() {
		t.Errorf("final clock %v vs %v after mid-workload toggling", row.clock, fed.Now())
	}
}

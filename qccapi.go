package fedqcc

import (
	"fmt"

	"repro/internal/qcc"
	"repro/internal/remote"
	"repro/internal/scenario"
	"repro/internal/simclock"
)

// LBMode selects QCC's load-distribution level.
type LBMode = qcc.LBMode

// Load-distribution modes.
const (
	// LBOff disables plan rotation.
	LBOff = qcc.LBOff
	// LBFragment rotates identical fragment plans across replicas (§4.1).
	LBFragment = qcc.LBFragment
	// LBGlobal rotates near-optimal global plans (§4.2).
	LBGlobal = qcc.LBGlobal
)

// QCCOptions tunes the calibrator.
type QCCOptions struct {
	// WindowSize bounds calibration histories (default 64 samples).
	WindowSize int
	// MaxAgeMS expires calibration samples (default 120000 simulated ms).
	MaxAgeMS float64
	// PerFragmentFactors enables per-(server,fragment) factors on top of
	// per-server factors. Nil means true.
	PerFragmentFactors *bool
	// ProbeIntervalMS is the availability daemon cadence (default 1000).
	ProbeIntervalMS float64
	// ReliabilityPenalty scales failure rates into cost multipliers
	// (default 4).
	ReliabilityPenalty float64
	// RecalibrationMS is the initial recalibration cycle (default 500);
	// the cycle adapts dynamically unless FixedCycle is set.
	RecalibrationMS float64
	// FixedCycle disables §3.4's dynamic cycle adjustment.
	FixedCycle bool
	// LoadBalance selects the §4 load-distribution mode (default off).
	LoadBalance LBMode
	// LBCloseness is the §4 closeness band (default 0.2 = "within 20%").
	LBCloseness float64
	// LBWorkloadThreshold gates balancing by workload (cost × frequency).
	LBWorkloadThreshold float64
	// RuntimeReroute enables the long-running-query extension: fragments
	// re-check calibrated costs immediately before dispatch and switch
	// sources when conditions changed since compilation.
	RuntimeReroute bool
	// RerouteImprovement is the minimum fractional win required to switch
	// (default 0.25).
	RerouteImprovement float64
	// QueuePressureGain scales admission queue depth into the II workload
	// factor (effective factor = published × (1 + gain × depth)), letting
	// routing see integrator pressure before execution saturates. 0 selects
	// the default (0.25); negative disables the feedback.
	QueuePressureGain float64
	// DisableDaemons skips scheduling the probe/recalibration daemons; the
	// caller then drives Calibrator.PublishNow/ProbeNow manually.
	DisableDaemons bool
}

// Calibrator is the public handle on an attached QCC.
type Calibrator struct {
	q   *qcc.QCC
	fed *Federation
}

// EnableQCC attaches a Query Cost Calibrator to the federation. Calling it
// again replaces the previous calibrator.
func (f *Federation) EnableQCC(opts QCCOptions) *Calibrator {
	if f.qcc != nil {
		f.qcc.Detach()
	}
	cfg := qcc.Config{
		Clock: f.clock,
		MW:    f.mw,
		Calibration: qcc.CalibrationConfig{
			WindowSize:  opts.WindowSize,
			MaxAge:      simclock.Time(opts.MaxAgeMS),
			PerFragment: opts.PerFragmentFactors == nil || *opts.PerFragmentFactors,
		},
		Reliability: qcc.ReliabilityConfig{Penalty: opts.ReliabilityPenalty},
		Availability: qcc.AvailabilityConfig{
			ProbeInterval: simclock.Time(opts.ProbeIntervalMS),
		},
		Cycle: qcc.CycleConfig{
			Initial: simclock.Time(opts.RecalibrationMS),
			Dynamic: !opts.FixedCycle,
		},
		LB: qcc.LBConfig{
			Mode:              opts.LoadBalance,
			Closeness:         opts.LBCloseness,
			WorkloadThreshold: opts.LBWorkloadThreshold,
		},
		Reroute: qcc.RerouteConfig{
			Enabled:     opts.RuntimeReroute,
			Improvement: opts.RerouteImprovement,
		},
		DisableDaemons:    opts.DisableDaemons,
		Telemetry:         f.tel,
		QueuePressureGain: opts.QueuePressureGain,
	}
	f.qcc = qcc.Attach(cfg, f.ii)
	// Queued admission demand feeds the II workload factor: pressure is
	// visible to routing while the backlog is still waiting to execute.
	f.qcc.SetDemandSource(f.adm.QueueDepth)
	// Routing decisions from the load balancer land in the federation's
	// shared decision log (the REPL's \route view).
	if f.qcc.LB != nil {
		f.qcc.LB.SetDecisionLog(f.routeLog)
	}
	// Align the federated plan cache's staleness bound with the load
	// balancer's rotation refresh interval: a cached compilation never
	// outlives the rotation epoch its routing was derived under.
	f.ii.SetPlanCacheMaxAge(f.qcc.PlanRefreshInterval())
	return &Calibrator{q: f.qcc, fed: f}
}

// DisableQCC detaches the calibrator; the federation reverts to plain
// cost-based routing.
func (f *Federation) DisableQCC() {
	if f.qcc != nil {
		f.qcc.Detach()
		f.ii.SetRoute(nil)
		f.ii.SetIICalibrator(nil)
		f.ii.SetMergeObserver(nil)
		f.qcc = nil
	}
}

// ServerFactor returns the published calibration factor for a server.
func (c *Calibrator) ServerFactor(serverID string) float64 {
	return c.q.Calib.ServerFactor(serverID)
}

// IIFactor returns the published integrator workload factor.
func (c *Calibrator) IIFactor() float64 { return c.q.Calib.IIFactor() }

// EffectiveIIFactor returns the II workload factor actually applied to merge
// estimates: the published factor scaled by current admission queue pressure.
// It equals IIFactor when the admission queue is empty.
func (c *Calibrator) EffectiveIIFactor() float64 { return c.q.EffectiveIIFactor() }

// ReliabilityFactor returns the reliability multiplier for a server.
func (c *Calibrator) ReliabilityFactor(serverID string) float64 {
	return c.q.Rel.Factor(serverID)
}

// IsFenced reports whether availability tracking has fenced the server off.
func (c *Calibrator) IsFenced(serverID string) bool { return c.q.Avail.IsDown(serverID) }

// PublishNow forces a recalibration cycle.
func (c *Calibrator) PublishNow() { c.q.PublishNow() }

// ProbeNow runs one availability sweep.
func (c *Calibrator) ProbeNow() { c.q.ProbeNow() }

// RecalibrationInterval returns the current (possibly adapted) cycle length.
func (c *Calibrator) RecalibrationInterval() Time { return c.q.Cycle.Interval() }

// QCCStats is a consistent snapshot of the calibrator's interaction
// counters.
type QCCStats = qcc.Stats

// StatsSnapshot returns a consistent snapshot of QCC's interaction counters.
func (c *Calibrator) StatsSnapshot() QCCStats { return c.q.StatsSnapshot() }

// Stats reports QCC's interaction counters.
//
// Deprecated: use StatsSnapshot, which returns a named struct instead of
// positional values.
func (c *Calibrator) Stats() (compiles, runs, errors int64) { return c.q.Stats() }

// Rotations reports how often load distribution substituted an alternative
// plan.
func (c *Calibrator) Rotations() int {
	if c.q.LB == nil {
		return 0
	}
	return c.q.LB.Rotations()
}

// RerouteStats reports runtime rerouting activity: fragments switched at
// dispatch time vs dispatches checked. Zeros when rerouting is disabled.
func (c *Calibrator) RerouteStats() (switched, checked int64) {
	if c.q.Rerouter == nil {
		return 0, 0
	}
	return c.q.Rerouter.Switched()
}

// SetLoadBalanceMode switches the load-distribution mode at runtime.
func (c *Calibrator) SetLoadBalanceMode(mode LBMode) error {
	if c.q.LB == nil {
		return fmt.Errorf("fedqcc: load balancing unavailable (no enumerator)")
	}
	c.q.LB.SetMode(mode)
	return nil
}

// CostPolicy folds business logic (QoS goals, region preferences, cost
// ceilings) into calibrated costs. It receives the server and the fully
// calibrated total cost in ms and returns the adjusted cost; +Inf bans the
// server.
type CostPolicy func(serverID string, costMS float64) float64

// SetCostPolicy installs (or clears, with nil) the business-logic cost
// policy (§3.5).
func (c *Calibrator) SetCostPolicy(p CostPolicy) {
	if p == nil {
		c.q.SetCostPolicy(nil)
		return
	}
	c.q.SetCostPolicy(func(serverID string, est remoteCostEstimate) remoteCostEstimate {
		est.TotalMS = p(serverID, est.TotalMS)
		return est
	})
}

// PlacementRecommendation is one advised replication (the paper's
// data-placement future-work item).
type PlacementRecommendation = qcc.PlacementRecommendation

// AdvisePlacement mines the explain history and current calibration state
// and recommends replicating hot, under-replicated nicknames onto cool
// servers. minFactor is the calibration factor above which a server counts
// as persistently hot (0 uses the default 1.5).
func (c *Calibrator) AdvisePlacement(minFactor float64) []PlacementRecommendation {
	return c.q.AdvisePlacement(
		c.fed.catalog,
		c.fed.ii.ExplainTable().Entries(),
		qcc.AdvisorConfig{MinFactor: minFactor},
	)
}

// ApplyReplication executes a placement recommendation: the nickname's data
// is copied to the target server and the catalog gains the placement.
func (f *Federation) ApplyReplication(rec PlacementRecommendation) error {
	return scenario.ReplicateTable(&scenario.Scenario{
		Clock:   f.clock,
		Servers: f.servers,
		Topo:    f.topo,
		Catalog: f.catalog,
		MW:      f.mw,
		IINode:  f.iiNode,
		II:      f.ii,
	}, rec.Nickname, rec.From, rec.To)
}

// WhatIf builds the simulated federated system (§2): a statistics-only
// clone used to derive alternative plans without touching production data.
func (c *Calibrator) WhatIf() (*WhatIf, error) {
	sf, err := qcc.NewSimulatedFederation(c.fed.servers, c.fed.topo, c.fed.catalog, c.fed.iiNode, c.q)
	if err != nil {
		return nil, err
	}
	return &WhatIf{sf: sf}, nil
}

// WhatIf is the public handle on the simulated federated system.
type WhatIf struct {
	sf *qcc.SimulatedFederation
}

// EnumeratePlans derives up to topK alternative global plans with calibrated
// costs, executing nothing.
func (w *WhatIf) EnumeratePlans(sql string, topK int) ([]*PlanInfo, error) {
	stmt, err := parseSQL(sql)
	if err != nil {
		return nil, err
	}
	plans, err := w.sf.Enumerate(stmt, topK)
	if err != nil {
		return nil, err
	}
	out := make([]*PlanInfo, len(plans))
	for i, gp := range plans {
		out[i] = planInfo(gp)
	}
	return out, nil
}

// EnumerateByMasking reproduces §4.2's explain-with-masking trick and
// reports how many explain runs it used.
func (w *WhatIf) EnumerateByMasking(sql string) ([]*PlanInfo, int, error) {
	stmt, err := parseSQL(sql)
	if err != nil {
		return nil, 0, err
	}
	plans, runs, err := w.sf.EnumerateByMasking(stmt)
	if err != nil {
		return nil, runs, err
	}
	out := make([]*PlanInfo, len(plans))
	for i, gp := range plans {
		out[i] = planInfo(gp)
	}
	return out, runs, nil
}

// remoteCostEstimate aliases the engine's cost estimate for policy adapters.
type remoteCostEstimate = remote.CostEstimate

// Multi-tenant overload benchmarks. BenchmarkMultitenantOverload replays the
// seeded traffic-simulator scenarios (equal weights, 3:1 weights, isolation)
// through the weighted-fair admission controller and writes
// BENCH_multitenant.json; the acceptance gates are asserted by the env-gated
// TestMultitenantSmoke (MULTITENANT_CHECK=1).
package fedqcc

import (
	"os"
	"testing"
)

// mtScenarioByName indexes a study result's scenarios.
func mtScenarioByName(tb testing.TB, res MultitenantStudyResult, name string) MultitenantOutcome {
	tb.Helper()
	for _, sc := range res.Scenarios {
		if sc.Scenario == name {
			return sc
		}
	}
	tb.Fatalf("study has no scenario %q", name)
	return MultitenantOutcome{}
}

// BenchmarkMultitenantOverload times one full multi-tenant study run (three
// DES scenarios plus the isolation baseline, ~8k simulated queries) and
// records the result in BENCH_multitenant.json.
func BenchmarkMultitenantOverload(b *testing.B) {
	var res MultitenantStudyResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = RunMultitenantStudy(ExperimentOptions{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	equal := mtScenarioByName(b, res, "equal-weights")
	weighted := mtScenarioByName(b, res, "weighted-3to1")
	iso := mtScenarioByName(b, res, "isolation")
	b.ReportMetric(equal.JainIndex, "jain_equal")
	b.ReportMetric(weighted.ServedRatio, "served_ratio_3to1")
	b.ReportMetric(iso.IsolationP95Ratio, "isolation_p95_x")
	if err := WriteMultitenantStudy(res, "BENCH_multitenant.json"); err != nil {
		b.Fatal(err)
	}
	b.Log("wrote BENCH_multitenant.json")
}

// TestMultitenantSmoke asserts the multi-tenant acceptance gates:
//
//	(i)  equal weights under 2x overload share fairly: Jain's index >= 0.9;
//	(ii) 3:1 weights under 2x overload serve cost in ratio [2.3, 3.7] with
//	     no query lost (every arrival completes or sheds with a typed error);
//	(iii) a light interactive tenant's p95 is not degraded more than 1.5x by
//	     a heavy batch tenant flooding the same controller.
//
// Runs when CI (or a developer) opts in via MULTITENANT_CHECK=1.
func TestMultitenantSmoke(t *testing.T) {
	if os.Getenv("MULTITENANT_CHECK") == "" {
		t.Skip("set MULTITENANT_CHECK=1 to run the multi-tenant acceptance gates")
	}
	res, err := RunMultitenantStudy(ExperimentOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range res.Scenarios {
		if sc.Lost != 0 {
			t.Errorf("%s: %d queries lost (arrivals %d, completed %d, shed %d)",
				sc.Scenario, sc.Lost, sc.Arrivals, sc.Completed, sc.Shed)
		}
	}
	equal := mtScenarioByName(t, res, "equal-weights")
	if equal.JainIndex < 0.9 {
		t.Errorf("equal-weights Jain index %.3f < 0.9", equal.JainIndex)
	}
	weighted := mtScenarioByName(t, res, "weighted-3to1")
	if weighted.ServedRatio < 2.3 || weighted.ServedRatio > 3.7 {
		t.Errorf("weighted-3to1 served-cost ratio %.2f outside [2.3, 3.7]", weighted.ServedRatio)
	}
	if weighted.Completed != weighted.Arrivals {
		t.Errorf("weighted-3to1 completed %d of %d arrivals", weighted.Completed, weighted.Arrivals)
	}
	iso := mtScenarioByName(t, res, "isolation")
	if iso.IsolationP95Ratio <= 0 {
		t.Fatalf("isolation ratio not computed (baseline p95 %.1fms)", iso.BaselineP95MS)
	}
	if iso.IsolationP95Ratio > 1.5 {
		t.Errorf("light tenant p95 degraded %.2fx (%.1fms -> %.1fms), over the 1.5x budget",
			iso.IsolationP95Ratio, iso.BaselineP95MS, iso.ContendedP95MS)
	}
	t.Logf("jain=%.3f ratio=%.2f isolation=%.2fx", equal.JainIndex, weighted.ServedRatio, iso.IsolationP95Ratio)
}

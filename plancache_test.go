// Federated plan cache tests: warm compiles must be invisible in the
// answers — row-identical to cold compiles — across load-distribution
// rotation, mask/unmask cycles, remote table updates, retry-after-failure,
// and concurrent sessions racing calibration and mask churn.
package fedqcc_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	fedqcc "repro"
	"repro/internal/experiment"
)

const (
	pcScale = 100
	pcSeed  = 11
	// pcNoStale effectively disables the staleness bound so the tests
	// exercise one invalidation cause at a time.
	pcNoStale = fedqcc.Time(1e15)
)

func pcFederation(t testing.TB) *fedqcc.Federation {
	t.Helper()
	fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: pcScale, Seed: pcSeed})
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

// pcStatements is a repeated-workload mix: three query types, each in three
// parameter variants (so canonical entries hold multiple variants).
func pcStatements() []string {
	return []string{
		"SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 100",
		"SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 5000",
		"SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 9000",
		"SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9000 AND l.l_qty < 5",
		"SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9500 AND l.l_qty < 3",
		"SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9900 AND l.l_qty < 2",
		"SELECT SUM(o.o_amount) FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id WHERE c.c_discount > 0.01",
		"SELECT SUM(o.o_amount) FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id WHERE c.c_discount > 0.03",
		"SELECT SUM(o.o_amount) FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id WHERE c.c_discount > 0.05",
	}
}

func assertSameRows(t *testing.T, label, sql string, want, got *fedqcc.QueryResult) {
	t.Helper()
	ordered := strings.Contains(sql, "ORDER BY")
	if diff := experiment.RelationsEquivalent(want.Rows, got.Rows, ordered); diff != "" {
		t.Errorf("%s (%s): rows differ: %s", label, sql, diff)
	}
}

// TestPlanCacheWarmMatchesCold runs the same workload — three rounds of the
// statement mix, under global load-distribution rotation — through a
// cache-disabled federation and a cache-enabled one, and requires identical
// answers query-for-query.
func TestPlanCacheWarmMatchesCold(t *testing.T) {
	sqls := pcStatements()
	const rounds = 3
	run := func(cached bool) ([]*fedqcc.QueryResult, fedqcc.PlanCacheStats) {
		fed := pcFederation(t)
		fed.EnableQCC(fedqcc.QCCOptions{
			DisableDaemons: true,
			LoadBalance:    fedqcc.LBGlobal,
			LBCloseness:    0.5,
		})
		fed.SetPlanCacheEnabled(cached)
		fed.SetPlanCacheMaxAge(pcNoStale)
		var out []*fedqcc.QueryResult
		for r := 0; r < rounds; r++ {
			for _, q := range sqls {
				res, err := fed.Query(q)
				if err != nil {
					t.Fatalf("cached=%v round %d (%s): %v", cached, r, q, err)
				}
				out = append(out, res)
			}
		}
		return out, fed.PlanCacheStats()
	}

	cold, coldStats := run(false)
	warm, warmStats := run(true)
	for i := range cold {
		assertSameRows(t, "warm vs cold", sqls[i%len(sqls)], cold[i], warm[i])
	}
	if coldStats.Hits != 0 {
		t.Errorf("disabled cache reported %d hits", coldStats.Hits)
	}
	// Round 1 is all misses; rounds 2 and 3 must be served warm.
	if want := int64((rounds - 1) * len(sqls)); warmStats.Hits < want {
		t.Errorf("warm run: %d hits, want >= %d (stats %+v)", warmStats.Hits, want, warmStats)
	}
}

// TestPlanCacheMaskUnmaskInvalidates masks the server a cached plan routes
// to, then unmasks it, and requires both transitions to invalidate the entry
// (cause "mask") while every answer stays row-identical.
func TestPlanCacheMaskUnmaskInvalidates(t *testing.T) {
	fed := pcFederation(t)
	fed.SetPlanCacheMaxAge(pcNoStale)
	const q = "SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 100"

	base, err := fed.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "warm repeat", q, base, res)
	if s := fed.PlanCacheStats(); s.Hits != 1 {
		t.Fatalf("repeat compile not served warm: %+v", s)
	}

	var target string
	for _, s := range res.Route {
		target = s
	}
	h, err := fed.Server(target)
	if err != nil {
		t.Fatal(err)
	}

	h.SetMasked(true)
	masked, err := fed.Query(q)
	if err != nil {
		t.Fatalf("query with %s masked: %v", target, err)
	}
	assertSameRows(t, "after mask", q, base, masked)
	for _, s := range masked.Route {
		if s == target {
			t.Fatalf("masked server %s still routed to", target)
		}
	}

	h.SetMasked(false)
	unmasked, err := fed.Query(q)
	if err != nil {
		t.Fatalf("query after unmask: %v", err)
	}
	assertSameRows(t, "after unmask", q, base, unmasked)

	stats := fed.PlanCacheStats()
	if stats.Invalidations["mask"] < 2 {
		t.Errorf("mask transitions invalidated %d entries, want >= 2 (stats %+v)",
			stats.Invalidations["mask"], stats)
	}
}

// TestPlanCacheVersionInvalidation mutates the cached statement's table on
// every replica and requires the entry to be invalidated (cause "version")
// and the recompiled answer to match a federation that never cached.
func TestPlanCacheVersionInvalidation(t *testing.T) {
	const q = "SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 5000"
	burst := func(fed *fedqcc.Federation) {
		for _, id := range fed.ServerIDs() {
			h, err := fed.Server(id)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.ApplyUpdateBurst("orders", 200, 3); err != nil {
				t.Fatal(err)
			}
		}
	}

	fed := pcFederation(t)
	fed.SetPlanCacheMaxAge(pcNoStale)
	if _, err := fed.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Query(q); err != nil {
		t.Fatal(err)
	}
	if s := fed.PlanCacheStats(); s.Hits != 1 {
		t.Fatalf("repeat compile not served warm: %+v", s)
	}
	burst(fed)
	afterBurst, err := fed.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if s := fed.PlanCacheStats(); s.Invalidations["version"] < 1 {
		t.Errorf("update burst did not invalidate: %+v", s)
	}

	// Control federation: identical seed and bursts, cache disabled.
	control := pcFederation(t)
	control.SetPlanCacheEnabled(false)
	burst(control)
	want, err := control.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "after burst", q, want, afterBurst)
}

// TestPlanCacheRetryReusesEntry injects a transient failure at the cached
// winner and requires the retry to be served from the cache (no cold
// recompile) while steering to a different server.
func TestPlanCacheRetryReusesEntry(t *testing.T) {
	fed := pcFederation(t)
	fed.SetPlanCacheMaxAge(pcNoStale)
	const q = "SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 100"

	base, err := fed.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var target string
	for _, s := range base.Route {
		target = s
	}
	h, err := fed.Server(target)
	if err != nil {
		t.Fatal(err)
	}
	h.InjectFailures(1)

	res, err := fed.Query(q)
	if err != nil {
		t.Fatalf("query with transient failure: %v", err)
	}
	if res.Retried != 1 {
		t.Fatalf("retried %d times, want 1", res.Retried)
	}
	assertSameRows(t, "after retry", q, base, res)
	for _, s := range res.Route {
		if s == target {
			t.Errorf("retry routed back to the failed server %s", target)
		}
	}
	// Both the failed attempt's compile and the retry's compile were warm:
	// only the very first query was a miss.
	stats := fed.PlanCacheStats()
	if stats.Hits != 2 || stats.Misses != 1 {
		t.Errorf("retry was not served from the cache: %+v", stats)
	}
}

// TestPlanCacheConcurrentConsistency is the -race gate: several sessions
// hammer the same and different canonical statements while calibration
// factors are republished and a server's mask flips concurrently. Every
// answer must match the cold-compile baseline.
func TestPlanCacheConcurrentConsistency(t *testing.T) {
	sqls := pcStatements()

	baseFed := pcFederation(t)
	baseFed.SetPlanCacheEnabled(false)
	baseline := make(map[string]*fedqcc.QueryResult, len(sqls))
	for _, q := range sqls {
		res, err := baseFed.Query(q)
		if err != nil {
			t.Fatalf("baseline (%s): %v", q, err)
		}
		baseline[q] = res
	}

	fed := pcFederation(t)
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})
	fed.SetPlanCacheMaxAge(pcNoStale)

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(2)
	go func() { // mask churn: S3 flips in and out of the candidate sets
		defer churn.Done()
		h, err := fed.Server("S3")
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				h.SetMasked(false)
				return
			default:
			}
			h.SetMasked(i%2 == 0)
			time.Sleep(100 * time.Microsecond)
		}
	}()
	go func() { // calibration churn: factors republish continuously
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cal.PublishNow()
			time.Sleep(100 * time.Microsecond)
		}
	}()

	const sessions = 6
	const rounds = 4
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		sess := fed.NewSession()
		wg.Add(1)
		go func(sess *fedqcc.Session, offset int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := range sqls {
					q := sqls[(i+offset)%len(sqls)]
					res, err := sess.Query(q)
					if err != nil {
						t.Errorf("session %d (%s): %v", offset, q, err)
						continue
					}
					assertSameRows(t, "concurrent warm", q, baseline[q], res)
				}
			}
		}(sess, s)
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	stats := fed.PlanCacheStats()
	if stats.Hits == 0 {
		t.Errorf("no warm compiles under concurrent churn: %+v", stats)
	}
	if stats.Hits+stats.Misses < int64(sessions*rounds*len(sqls)) {
		t.Errorf("cache saw %d compiles, want >= %d", stats.Hits+stats.Misses, sessions*rounds*len(sqls))
	}
}

package fedqcc

import (
	"context"
	"sync"

	"repro/internal/workload"
)

// QueryContext is Query with caller-supplied cancellation: the context is
// threaded through the integrator, meta-wrapper, wrapper, server and network
// layers, so cancelling it aborts in-flight fragment dispatches.
func (f *Federation) QueryContext(ctx context.Context, sql string) (*QueryResult, error) {
	res, err := f.ii.QueryContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	route := map[string]string{}
	for _, frag := range res.Plan.Fragments {
		route[frag.Spec.ID] = frag.ServerID
	}
	// Runtime rerouting may have moved fragments after compilation.
	for id, s := range res.ExecutedServers {
		route[id] = s
	}
	return &QueryResult{
		Rows:           res.Rel,
		ResponseTime:   res.ResponseTime,
		Route:          route,
		FragmentTimes:  res.FragmentTimes,
		MergeTime:      res.MergeTime,
		FirstRowTime:   res.FirstRowTime,
		Retried:        res.Retried,
		QueueWait:      res.QueueWait,
		AdmissionClass: res.AdmissionClass,
		Tenant:         res.Tenant,
	}, nil
}

// Session is a concurrent submission surface over a federation. Many sessions
// (or many goroutines sharing one session) may query simultaneously: the
// engine serializes virtual-time accounting internally, and each session
// keeps its own submission statistics. Sessions hold no exclusive resources
// and need no teardown.
type Session struct {
	fed *Federation

	mu            sync.Mutex
	submitted     int
	completed     int
	failed        int
	totalResponse Time
	maxResponse   Time
}

// NewSession opens a submission surface on the federation.
func (f *Federation) NewSession() *Session { return &Session{fed: f} }

// Query runs one federated statement through the session.
func (s *Session) Query(sql string) (*QueryResult, error) {
	return s.QueryContext(context.Background(), sql)
}

// QueryContext runs one federated statement with caller-supplied
// cancellation.
func (s *Session) QueryContext(ctx context.Context, sql string) (*QueryResult, error) {
	s.mu.Lock()
	s.submitted++
	s.mu.Unlock()
	res, err := s.fed.QueryContext(ctx, sql)
	s.mu.Lock()
	if err != nil {
		s.failed++
	} else {
		s.completed++
		s.totalResponse += res.ResponseTime
		if res.ResponseTime > s.maxResponse {
			s.maxResponse = res.ResponseTime
		}
	}
	s.mu.Unlock()
	return res, err
}

// AsyncResult is a handle on an in-flight QueryAsync submission.
type AsyncResult struct {
	done chan struct{}
	res  *QueryResult
	err  error
}

// Done is closed when the query finishes; select on it alongside other work.
func (a *AsyncResult) Done() <-chan struct{} { return a.done }

// Wait blocks until the query finishes and returns its outcome. It is safe
// to call from multiple goroutines and after completion.
func (a *AsyncResult) Wait() (*QueryResult, error) {
	<-a.done
	return a.res, a.err
}

// QueryAsync submits a statement without blocking and returns a handle the
// caller can Wait on. Cancelling ctx aborts the in-flight query.
func (s *Session) QueryAsync(ctx context.Context, sql string) *AsyncResult {
	a := &AsyncResult{done: make(chan struct{})}
	go func() {
		defer close(a.done)
		a.res, a.err = s.QueryContext(ctx, sql)
	}()
	return a
}

// SessionStats summarizes a session's submissions so far.
type SessionStats struct {
	Submitted     int
	Completed     int
	Failed        int
	TotalResponse Time
	MaxResponse   Time
}

// PlanCacheStats snapshots the federation's plan cache counters — the cache
// is shared across sessions, so this mirrors Federation.PlanCacheStats.
func (s *Session) PlanCacheStats() PlanCacheStats { return s.fed.PlanCacheStats() }

// Telemetry returns the federation's observability subsystem — shared across
// sessions, so this mirrors Federation.Telemetry.
func (s *Session) Telemetry() *Telemetry { return s.fed.Telemetry() }

// Stats returns a snapshot of the session's counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStats{
		Submitted:     s.submitted,
		Completed:     s.completed,
		Failed:        s.failed,
		TotalResponse: s.totalResponse,
		MaxResponse:   s.maxResponse,
	}
}

// RunConcurrent executes the statements through a bounded worker pool of
// concurrent sessions and returns results and errors indexed by submission
// position, so concurrent runs compare row-for-row against sequential ones.
// workers <= 1 degenerates to sequential execution.
func (f *Federation) RunConcurrent(ctx context.Context, sqls []string, workers int) ([]*QueryResult, []error) {
	items := make([]workload.Item, len(sqls))
	for i, q := range sqls {
		items[i] = workload.Item{SQL: q}
	}
	results := make([]*QueryResult, len(sqls))
	errs := make([]error, len(sqls))
	sess := f.NewSession()
	pooled, _ := workload.RunPool(ctx, workers, items, func(ctx context.Context, idx int, it workload.Item) (Time, error) {
		res, err := sess.QueryContext(ctx, it.SQL)
		if err != nil {
			return 0, err
		}
		results[idx] = res
		return res.ResponseTime, nil
	})
	for _, p := range pooled {
		if p.Skipped {
			errs[p.Index] = context.Canceled
			continue
		}
		errs[p.Index] = p.Err
	}
	return results, errs
}

// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation section, plus ablations over QCC's design choices and
// micro-benchmarks of the substrates. Each evaluation bench regenerates the
// corresponding table/figure data and reports the headline numbers as
// benchmark metrics; run with -v to see the formatted rows.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFigure10 -v   # includes the printed figure
package fedqcc_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	fedqcc "repro"
	"repro/internal/experiment"
)

const (
	benchScale     = 50
	benchInstances = 5
)

func benchOpts() fedqcc.ExperimentOptions {
	return fedqcc.ExperimentOptions{Scale: benchScale, Instances: benchInstances}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// BenchmarkFigure9QTx regenerate the per-query-type load-sensitivity series
// of Figure 9 (a)–(d) and report the S3 load blow-up factor — the paper's
// headline observation per panel.
func benchmarkFigure9(b *testing.B, qt string) {
	b.Helper()
	var last []fedqcc.SensitivityResult
	for i := 0; i < b.N; i++ {
		res, err := fedqcc.RunSensitivityStudy(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, r := range last {
		if r.QT != qt {
			continue
		}
		b.ReportMetric(mean(r.Low["S3"]), "s3_low_ms")
		b.ReportMetric(mean(r.High["S3"]), "s3_high_ms")
		b.ReportMetric(mean(r.High["S3"])/mean(r.Low["S3"]), "s3_blowup_x")
		if b.N > 0 {
			b.Logf("\n%s", fedqcc.FormatFigure9([]fedqcc.SensitivityResult{r}))
		}
	}
}

func BenchmarkFigure9QT1(b *testing.B) { benchmarkFigure9(b, "QT1") }
func BenchmarkFigure9QT2(b *testing.B) { benchmarkFigure9(b, "QT2") }
func BenchmarkFigure9QT3(b *testing.B) { benchmarkFigure9(b, "QT3") }
func BenchmarkFigure9QT4(b *testing.B) { benchmarkFigure9(b, "QT4") }

// BenchmarkTable1Phases regenerates the Table 1 load matrix by applying all
// eight phases to a live federation (load levels plus update bursts).
func BenchmarkTable1Phases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		for _, id := range fed.ServerIDs() {
			h, err := fed.Server(id)
			if err != nil {
				b.Fatal(err)
			}
			h.SetLoad(1)
			if err := h.ApplyUpdateBurst("orders", 10, 1); err != nil {
				b.Fatal(err)
			}
			h.SetLoad(0)
		}
	}
	b.Logf("\n%s", fedqcc.FormatTable1())
}

func runGainStudy(b *testing.B, opts fedqcc.ExperimentOptions) []fedqcc.PhaseOutcome {
	b.Helper()
	var last []fedqcc.PhaseOutcome
	for i := 0; i < b.N; i++ {
		out, err := fedqcc.RunGainStudy(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = out
	}
	return last
}

// BenchmarkTable2Assignments regenerates the fixed-vs-dynamic assignment
// table and reports how often dynamic routing deviated from the static
// registration.
func BenchmarkTable2Assignments(b *testing.B) {
	out := runGainStudy(b, benchOpts())
	deviations := 0
	fixed := map[string]string{"QT1": "S1", "QT2": "S2", "QT3": "S1", "QT4": "S3"}
	for _, o := range out {
		for qt, s := range o.Assignments {
			if s != fixed[qt] {
				deviations++
			}
		}
	}
	b.ReportMetric(float64(deviations), "deviations")
	b.Logf("\n%s", fedqcc.FormatTable2(out))
}

// BenchmarkFigure10GainVsFixed regenerates Figure 10 and reports QCC's
// average gain over the typical fixed registration (paper: ≈50%).
func BenchmarkFigure10GainVsFixed(b *testing.B) {
	out := runGainStudy(b, benchOpts())
	g1, _ := fedqcc.AverageGains(out)
	b.ReportMetric(g1*100, "avg_gain_pct")
	b.ReportMetric(out[7].Gain1*100, "all_loaded_gain_pct")
	b.Logf("\n%s", fedqcc.FormatFigure10(out))
}

// BenchmarkFigure11GainVsBestServer regenerates Figure 11 and reports QCC's
// average gain over always-S3 routing in the S3-loaded phases (paper: ≈20%).
func BenchmarkFigure11GainVsBestServer(b *testing.B) {
	out := runGainStudy(b, benchOpts())
	var loaded []float64
	for _, o := range out {
		if o.Phase.Loaded["S3"] && !(o.Phase.Loaded["S1"] && o.Phase.Loaded["S2"]) {
			loaded = append(loaded, o.Gain2*100)
		}
	}
	b.ReportMetric(mean(loaded), "s3_loaded_gain_pct")
	_, g2 := fedqcc.AverageGains(out)
	b.ReportMetric(g2*100, "avg_gain_pct")
	b.Logf("\n%s", fedqcc.FormatFigure11(out))
}

// ---- Ablations over QCC design choices ----

// BenchmarkAblationCalibrationGranularity compares per-(server,fragment)
// factors (the paper's "and query fragment if runtime statistics is
// available") against server-only factors.
func BenchmarkAblationCalibrationGranularity(b *testing.B) {
	off := false
	for _, cfg := range []struct {
		name string
		opts fedqcc.ExperimentOptions
	}{
		{"per-fragment", benchOpts()},
		{"server-only", func() fedqcc.ExperimentOptions {
			o := benchOpts()
			o.CalibrationPerFragment = &off
			return o
		}()},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			out := runGainStudy(b, cfg.opts)
			g1, _ := fedqcc.AverageGains(out)
			b.ReportMetric(g1*100, "avg_gain_pct")
		})
	}
}

// BenchmarkAblationLBLevel compares §4.1 fragment-level and §4.2
// global-level load distribution against no load distribution, measuring
// how evenly executions spread across the replicas of the §4 scenario.
func BenchmarkAblationLBLevel(b *testing.B) {
	const q = `SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9500 AND l.l_qty < 5`
	for _, mode := range []fedqcc.LBMode{fedqcc.LBOff, fedqcc.LBFragment, fedqcc.LBGlobal} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			spreadSum := 0.0
			for i := 0; i < b.N; i++ {
				fed, err := fedqcc.NewReplicaFederation(fedqcc.FederationOptions{Scale: benchScale})
				if err != nil {
					b.Fatal(err)
				}
				fed.EnableQCC(fedqcc.QCCOptions{
					DisableDaemons: true,
					LoadBalance:    mode,
					LBCloseness:    0.5,
				})
				for j := 0; j < 12; j++ {
					if _, err := fed.Query(q); err != nil {
						b.Fatal(err)
					}
				}
				used := 0
				for _, id := range fed.ServerIDs() {
					h, _ := fed.Server(id)
					if h.Executed() > 0 {
						used++
					}
				}
				spreadSum += float64(used)
			}
			b.ReportMetric(spreadSum/float64(b.N), "servers_used")
		})
	}
}

// BenchmarkAblationCloseness sweeps the §4 closeness band: 0 pins the
// cheapest plan, the paper's 20%, and a generous 50%.
func BenchmarkAblationCloseness(b *testing.B) {
	const q = "SELECT SUM(o.o_amount) FROM orders AS o WHERE o.o_amount > 100"
	for _, cl := range []struct {
		name string
		v    float64
	}{{"0pct", 0.0001}, {"20pct", 0.2}, {"50pct", 3.0}} {
		cl := cl
		b.Run(cl.name, func(b *testing.B) {
			rotations := 0.0
			for i := 0; i < b.N; i++ {
				fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: benchScale})
				if err != nil {
					b.Fatal(err)
				}
				cal := fed.EnableQCC(fedqcc.QCCOptions{
					DisableDaemons: true,
					LoadBalance:    fedqcc.LBGlobal,
					LBCloseness:    cl.v,
				})
				for j := 0; j < 9; j++ {
					if _, err := fed.Query(q); err != nil {
						b.Fatal(err)
					}
				}
				rotations += float64(cal.Rotations())
			}
			b.ReportMetric(rotations/float64(b.N), "rotations")
		})
	}
}

// BenchmarkAblationRecalibrationCycle compares a fixed recalibration cycle
// against the §3.4 dynamic cycle under a load step, measuring how quickly
// the published factor catches up (queries until reroute).
func BenchmarkAblationRecalibrationCycle(b *testing.B) {
	const q = "SELECT SUM(o.o_amount) FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id WHERE c.c_discount > 0.01"
	for _, cfg := range []struct {
		name  string
		fixed bool
		ms    float64
	}{{"fixed-slow", true, 2000}, {"fixed-fast", true, 50}, {"dynamic", false, 500}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			reroutes := 0.0
			for i := 0; i < b.N; i++ {
				fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: benchScale})
				if err != nil {
					b.Fatal(err)
				}
				fed.EnableQCC(fedqcc.QCCOptions{
					RecalibrationMS: cfg.ms,
					FixedCycle:      cfg.fixed,
				})
				res, err := fed.Query(q)
				if err != nil {
					b.Fatal(err)
				}
				busy := res.Route["QF1"]
				h, _ := fed.Server(busy)
				h.SetLoad(1)
				queries := 0.0
				for j := 0; j < 20; j++ {
					r, err := fed.Query(q)
					if err != nil {
						b.Fatal(err)
					}
					queries++
					if r.Route["QF1"] != busy {
						break
					}
				}
				reroutes += queries
			}
			b.ReportMetric(reroutes/float64(b.N), "queries_to_reroute")
		})
	}
}

// ---- Substrate micro-benchmarks ----

// BenchmarkCompile measures the federated compile path cold vs warm. Cold
// resets both caching layers every iteration, so each compile pays parse,
// decomposition and a remote planner round-trip per candidate server; warm
// is served by the federated plan cache and re-runs only calibration, winner
// re-pick and routing. The acceptance bar for the cache is >= 5x.
func BenchmarkCompile(b *testing.B) {
	const q = "SELECT SUM(l.l_price) FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9000"
	newFed := func(b *testing.B) *fedqcc.Federation {
		fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		return fed
	}
	b.Run("cold", func(b *testing.B) {
		fed := newFed(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fed.ResetCompileCaches()
			if _, err := fed.Explain(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		fed := newFed(b)
		if _, err := fed.Explain(q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fed.Explain(q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		s := fed.PlanCacheStats()
		b.ReportMetric(float64(s.Hits)/float64(s.Hits+s.Misses)*100, "hit_pct")
	})
}

// BenchmarkRepeatedWorkload measures end-to-end Query throughput of a
// repeated query-type workload (three types, three parameter variants each)
// with the federated plan cache off vs on — the realistic win: repeated
// query types skip all compile-time wrapper round-trips.
func BenchmarkRepeatedWorkload(b *testing.B) {
	sqls := []string{
		"SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 100",
		"SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 5000",
		"SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 9000",
		"SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9500 AND l.l_qty < 5",
		"SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9900 AND l.l_qty < 3",
		"SELECT SUM(o.o_amount) FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id WHERE c.c_discount > 0.01",
		"SELECT SUM(o.o_amount) FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id WHERE c.c_discount > 0.05",
	}
	for _, cached := range []bool{false, true} {
		name := "cache=off"
		if cached {
			name = "cache=on"
		}
		b.Run(name, func(b *testing.B) {
			fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: benchScale, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			fed.SetPlanCacheEnabled(cached)
			fed.SetPlanCacheMaxAge(fedqcc.Time(1e15))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fed.Query(sqls[i%len(sqls)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if cached {
				s := fed.PlanCacheStats()
				b.ReportMetric(float64(s.Hits), "cache_hits")
			}
		})
	}
}

func BenchmarkQueryEndToEnd(b *testing.B) {
	fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: benchScale})
	if err != nil {
		b.Fatal(err)
	}
	fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fed.Query("SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 5000"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExplainOnly(b *testing.B) {
	fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: benchScale})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fed.Explain("SELECT SUM(l.l_price) FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9000"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWhatIfEnumeration(b *testing.B) {
	fed, err := fedqcc.NewReplicaFederation(fedqcc.FederationOptions{Scale: benchScale})
	if err != nil {
		b.Fatal(err)
	}
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})
	wi, err := cal.WhatIf()
	if err != nil {
		b.Fatal(err)
	}
	const q = "SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9500"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wi.EnumeratePlans(q, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFederationBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: benchScale}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkAwareness regenerates the congestion sweep: QCC's
// calibration absorbs network degradation exactly like processing latency,
// the "network aware" half of the paper's title.
func BenchmarkNetworkAwareness(b *testing.B) {
	var last []fedqcc.NetworkOutcome
	for i := 0; i < b.N; i++ {
		out, err := fedqcc.RunNetworkStudy(benchOpts(), []float64{1, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
		last = out
	}
	heavy := last[len(last)-1]
	b.ReportMetric(heavy.Gain*100, "gain_at_16x_pct")
	b.ReportMetric(heavy.FixedAvgMS/last[0].FixedAvgMS, "pinned_blowup_x")
	b.ReportMetric(heavy.QCCAvgMS/last[0].QCCAvgMS, "qcc_blowup_x")
	b.Logf("\n%s", fedqcc.FormatNetworkStudy(last))
}

// BenchmarkRuntimeReroute measures the long-running-query extension: the
// per-dispatch overhead of re-checking calibrated costs, and how often it
// saves a stale plan under churning load.
func BenchmarkRuntimeReroute(b *testing.B) {
	for _, enabled := range []bool{false, true} {
		name := "off"
		if enabled {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: benchScale})
			if err != nil {
				b.Fatal(err)
			}
			cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true, RuntimeReroute: enabled})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fed.Query("SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 5000"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			switched, checked := cal.RerouteStats()
			b.ReportMetric(float64(switched), "switched")
			b.ReportMetric(float64(checked), "checked")
		})
	}
}

// BenchmarkLoadDistribution regenerates the §4 rotation study under
// query-induced hot-spotting and reports rotation's improvement over
// pinning.
func BenchmarkLoadDistribution(b *testing.B) {
	var last []fedqcc.LBOutcome
	for i := 0; i < b.N; i++ {
		out, err := fedqcc.RunLoadBalanceStudy(benchOpts(), 30)
		if err != nil {
			b.Fatal(err)
		}
		last = out
	}
	byMode := map[string]fedqcc.LBOutcome{}
	for _, o := range last {
		byMode[o.Mode] = o
	}
	off, glob := byMode["off"], byMode["global"]
	if off.AvgMS > 0 {
		b.ReportMetric((off.AvgMS-glob.AvgMS)/off.AvgMS*100, "rotation_gain_pct")
	}
	b.ReportMetric(float64(glob.ServersUsed), "servers_used")
	b.Logf("\n%s", fedqcc.FormatLoadBalanceStudy(last))
}

// BenchmarkConcurrentThroughput measures federated query throughput through
// the concurrent submission surface at 1, 4 and 16 concurrent sessions over
// a fixed mixed workload. Wall-clock ns/op falling as sessions rise shows
// the fan-out pipeline actually overlaps work; vq_ms_per_query (virtual
// time) stays flat because virtual-time charges serialize deterministically.
func BenchmarkConcurrentThroughput(b *testing.B) {
	sqls := make([]string, 0, 32)
	r := rand.New(rand.NewSource(1))
	for len(sqls) < cap(sqls) {
		sqls = append(sqls, experiment.RandomQuery(r))
	}
	for _, sessions := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: benchScale, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			start := fed.Now()
			queries := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, errs := fed.RunConcurrent(context.Background(), sqls, sessions)
				for _, e := range errs {
					if e != nil {
						b.Fatal(e)
					}
				}
				queries += len(sqls)
			}
			b.StopTimer()
			if queries > 0 {
				b.ReportMetric(float64(fed.Now()-start)/float64(queries), "vq_ms_per_query")
				b.ReportMetric(float64(queries)/b.Elapsed().Seconds(), "queries/s")
			}
		})
	}
}

package fedqcc

import (
	"repro/internal/experiment"
)

// Experiment re-exports: the §5 studies and report formatters, so binaries
// and downstream users can regenerate every table and figure.

// ExperimentOptions configures the paper's studies.
type ExperimentOptions = experiment.Options

// SensitivityResult is Figure 9's data for one query type.
type SensitivityResult = experiment.SensitivityResult

// PhaseOutcome is one phase's Table 2 / Figure 10 / Figure 11 measurement.
type PhaseOutcome = experiment.PhaseOutcome

// RunSensitivityStudy reproduces Figure 9 (a)–(d).
func RunSensitivityStudy(opts ExperimentOptions) ([]SensitivityResult, error) {
	return experiment.SensitivityStudy(opts)
}

// RunGainStudy reproduces Table 2 and Figures 10–11.
func RunGainStudy(opts ExperimentOptions) ([]PhaseOutcome, error) {
	return experiment.GainStudy(opts)
}

// NetworkOutcome is one congestion level's measurement.
type NetworkOutcome = experiment.NetworkOutcome

// RunNetworkStudy sweeps network congestion on the preferred server's link,
// comparing pinned routing against QCC (the title's "network aware" claim).
// A nil levels slice uses 1/2/4/8/16.
func RunNetworkStudy(opts ExperimentOptions, levels []float64) ([]NetworkOutcome, error) {
	return experiment.NetworkStudy(opts, levels)
}

// LBOutcome is one load-distribution policy's measurement.
type LBOutcome = experiment.LBOutcome

// RunLoadBalanceStudy quantifies §4's load distribution: a burst of
// identical queries against uniform replicas that heat up under their own
// traffic, measured with rotation off, fragment-level (§4.1) and
// global-level (§4.2).
func RunLoadBalanceStudy(opts ExperimentOptions, burst int) ([]LBOutcome, error) {
	return experiment.LoadBalanceStudy(opts, burst)
}

// WeightedOutcome is one replica-routing policy's hotspot measurement.
type WeightedOutcome = experiment.WeightedOutcome

// RunWeightedRoutingStudy compares round-robin load distribution against the
// score-based weighted replica router on the fully replicated hotspot
// scenario (induced load + buffer-pool residency), reporting p50/p95/p99
// response times and per-server utilization balance. A non-positive burst
// uses the default (60 queries).
func RunWeightedRoutingStudy(opts ExperimentOptions, burst int) ([]WeightedOutcome, error) {
	return experiment.WeightedRoutingStudy(opts, burst)
}

// WireOutcome is one (shard count, ship mode) measurement of the columnar
// wire study.
type WireOutcome = experiment.WireOutcome

// WireStudyResult is the full columnar-wire grid emitted to BENCH_wire.json.
type WireStudyResult = experiment.WireStudyResult

// RunWireStudy measures the typed columnar wire protocol against row
// shipping: the sharded aggregate workload at 1/2/4/8 shards in all four
// ship modes (row-ship, col-ship, pushdown, pushdown-col), reporting wire
// bytes, virtual response time and min-of-trials wall time.
func RunWireStudy(opts ExperimentOptions) (WireStudyResult, error) {
	return experiment.WireStudy(opts)
}

// WriteWireStudy merges a wire study under the "wire" key of the given JSON
// file, preserving any other keys already present.
func WriteWireStudy(result WireStudyResult, path string) error {
	return experiment.WriteWireStudy(result, path)
}

// MultitenantOutcome is one scenario of the multi-tenant overload study.
type MultitenantOutcome = experiment.MultitenantOutcome

// MultitenantTenantOutcome is one tenant's slice of a scenario outcome.
type MultitenantTenantOutcome = experiment.MultitenantTenantOutcome

// MultitenantStudyResult is the full multi-tenant study emitted to
// BENCH_multitenant.json.
type MultitenantStudyResult = experiment.MultitenantStudyResult

// RunMultitenantStudy runs the multi-tenant overload scenarios
// (equal-weights fairness, 3:1 weighted shares, light/heavy isolation) as
// seeded discrete-event simulations of the weighted-fair admission
// controller, reporting per-tenant latency percentiles, served-cost shares,
// Jain's fairness index and shed rates.
func RunMultitenantStudy(opts ExperimentOptions) (MultitenantStudyResult, error) {
	return experiment.MultitenantStudy(opts)
}

// WriteMultitenantStudy merges a multi-tenant study under the "multitenant"
// key of the given JSON file, preserving any other keys already present.
func WriteMultitenantStudy(result MultitenantStudyResult, path string) error {
	return experiment.WriteMultitenantStudy(result, path)
}

// Report formatters for the paper's tables and figures.
var (
	// FormatFigure9 renders the sensitivity series.
	FormatFigure9 = experiment.FormatFigure9
	// FormatTable1 renders the load-phase matrix.
	FormatTable1 = experiment.FormatTable1
	// FormatTable2 renders fixed vs dynamic assignments.
	FormatTable2 = experiment.FormatTable2
	// FormatFigure10 renders QCC vs fixed assignment 1.
	FormatFigure10 = experiment.FormatFigure10
	// FormatFigure11 renders QCC vs fixed assignment 2.
	FormatFigure11 = experiment.FormatFigure11
	// FormatNetworkStudy renders the congestion sweep.
	FormatNetworkStudy = experiment.FormatNetworkStudy
	// FormatLoadBalanceStudy renders the §4 rotation study.
	FormatLoadBalanceStudy = experiment.FormatLoadBalanceStudy
	// FormatWeightedRoutingStudy renders the replica-routing comparison.
	FormatWeightedRoutingStudy = experiment.FormatWeightedRoutingStudy
	// FormatWireStudy renders the columnar wire protocol grid.
	FormatWireStudy = experiment.FormatWireStudy
	// FormatMultitenantStudy renders the multi-tenant overload scenarios.
	FormatMultitenantStudy = experiment.FormatMultitenantStudy
	// AverageGains summarizes a gain study.
	AverageGains = experiment.AverageGains
)

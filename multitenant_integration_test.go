// Multi-tenant integration tests at the federation surface: tenancy must be
// invisible until tenants are registered — a federation that had tenants
// registered and then deregistered must produce bit-identical results,
// charges, spans and virtual-clock state. Weighted-fair scheduling and quota
// sheds are covered end to end in multitenant_fairness_test.go.
package fedqcc_test

import (
	"fmt"
	"testing"

	fedqcc "repro"
	"repro/internal/experiment"
)

// TestTenantDisabledIdentity mirrors TestAdmissionDisabledIdentity for the
// tenancy layer: a federation that had tenants registered and then
// deregistered must behave bit-identically to one that never saw a tenant —
// same rows, response times, routes, span trees and final virtual clock.
func TestTenantDisabledIdentity(t *testing.T) {
	sqls := soakStatements(16)

	run := func(configure func(*fedqcc.Federation)) ([]*fedqcc.QueryResult, []string, fedqcc.Time) {
		fed := soakFederation(t)
		fed.EnableTelemetry()
		configure(fed)
		results := make([]*fedqcc.QueryResult, len(sqls))
		trees := make([]string, len(sqls))
		for i, q := range sqls {
			res, err := fed.Query(q)
			if err != nil {
				t.Fatalf("query %d (%s): %v", i, q, err)
			}
			results[i] = res
			if tr := fed.Telemetry().Tracer().Last(); tr != nil {
				trees[i] = tr.Tree()
			}
		}
		return results, trees, fed.Now()
	}

	base, baseTrees, baseClock := run(func(*fedqcc.Federation) {})
	toggled, togTrees, togClock := run(func(fed *fedqcc.Federation) {
		// Register tenants with quotas and weights, then deregister them all:
		// removal must restore the exact tenant-unaware pass-through.
		adm := fed.Admission()
		adm.RegisterTenant(fedqcc.Tenant{Name: "gold", Weight: 3, MaxConcurrent: 1, MaxQueue: 1})
		adm.RegisterTenant(fedqcc.Tenant{Name: "bronze", Weight: 1})
		if got := len(adm.Tenants()); got != 2 {
			t.Fatalf("registered 2 tenants, listed %d", got)
		}
		for _, name := range []string{"gold", "bronze"} {
			if !adm.DeregisterTenant(name) {
				t.Fatalf("tenant %q was not registered at deregistration", name)
			}
		}
	})

	for i := range sqls {
		if diff := experiment.RelationsEquivalent(base[i].Rows, toggled[i].Rows, true); diff != "" {
			t.Errorf("query %d: rows differ after tenant deregistration: %s", i, diff)
		}
		if base[i].ResponseTime != toggled[i].ResponseTime {
			t.Errorf("query %d: response %v vs %v", i, base[i].ResponseTime, toggled[i].ResponseTime)
		}
		if base[i].QueueWait != 0 || toggled[i].QueueWait != 0 {
			t.Errorf("query %d: pass-through queue wait %v/%v, want 0", i, base[i].QueueWait, toggled[i].QueueWait)
		}
		if base[i].Tenant != "" || toggled[i].Tenant != "" {
			t.Errorf("query %d: untagged query carries tenant %q/%q", i, base[i].Tenant, toggled[i].Tenant)
		}
		if fmt.Sprint(base[i].Route) != fmt.Sprint(toggled[i].Route) {
			t.Errorf("query %d: route %v vs %v", i, base[i].Route, toggled[i].Route)
		}
		if baseTrees[i] != togTrees[i] {
			t.Errorf("query %d: span tree diverged after tenant deregistration:\n--- default ---\n%s--- toggled ---\n%s",
				i, baseTrees[i], togTrees[i])
		}
	}
	if baseClock != togClock {
		t.Errorf("final clock %v vs %v: tenant registration left a trace after removal", baseClock, togClock)
	}
}

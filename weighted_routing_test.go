// Weighted replica routing: the single-placement identity discipline, the
// latency-only ≡ cost-based property, and replica failover under fencing.
package fedqcc_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	fedqcc "repro"
)

// normSpanTree makes a rendered span tree comparable across runs: sibling
// fragments dispatch on concurrent goroutines, so their registration order
// (and hence the tree-drawing glyphs) is scheduler-dependent even when every
// span's timing is identical. Stripping the connectors and sorting the lines
// compares the multiset of spans with their exact virtual timings.
func normSpanTree(tree string) string {
	lines := strings.Split(tree, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimLeft(l, " \t│├└─")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// queryFingerprint captures everything a query observably did: rows, route,
// charges and the span tree (when telemetry is on).
func queryFingerprint(t *testing.T, fed *fedqcc.Federation, sql string) string {
	t.Helper()
	res, err := fed.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	tree := ""
	if tr := fed.Telemetry().Tracer().Last(); tr != nil {
		tree = normSpanTree(tr.Tree())
	}
	return fmt.Sprintf("rows=%v route=%v resp=%v first=%v merge=%v frag=%v clock=%v\n%s",
		res.Rows.Rows, res.Route, float64(res.ResponseTime), float64(res.FirstRowTime),
		float64(res.MergeTime), res.FragmentTimes, fed.Now(), tree)
}

// identityWorkload mixes single-table scans and cross-server joins over the
// split schema (orders+customer on A, lineitem+parts on B).
var identityWorkload = []string{
	"SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 100",
	"SELECT SUM(l.l_price) FROM lineitem AS l WHERE l.l_qty < 25",
	"SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9500 AND l.l_qty < 5",
	"SELECT SUM(o.o_amount) FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id WHERE c.c_discount > 0.01",
	"SELECT COUNT(*) FROM parts AS p WHERE p.p_weight > 25",
	"SELECT SUM(l.l_price) FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9000",
}

// buildSinglePlacementFed builds a federation where every nickname lives on
// exactly one server — the configuration the identity guarantee covers.
func buildSinglePlacementFed(t *testing.T) *fedqcc.Federation {
	t.Helper()
	schema := fedqcc.StandardSchema(100)
	fed, err := fedqcc.NewBuilder(7).
		AddServer("A", fedqcc.ProfileMidrange, fedqcc.LinkSpec{}).
		AddServer("B", fedqcc.ProfilePowerful, fedqcc.LinkSpec{}).
		AddGeneratedTable("A", schema[0]). // orders
		AddGeneratedTable("B", schema[1]). // lineitem
		AddGeneratedTable("A", schema[2]). // customer
		AddGeneratedTable("B", schema[3]). // parts
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

// TestWeightedSinglePlacementIdentity is the identity discipline: with a
// single placement per fragment, enabling the weighted router must leave the
// engine bit-identical — same rows, routes, charges, span trees and virtual
// clock as plain QCC.
func TestWeightedSinglePlacementIdentity(t *testing.T) {
	run := func(weighted bool) []string {
		fed := buildSinglePlacementFed(t)
		fed.EnableTelemetry()
		cal := fed.EnableQCC(fedqcc.QCCOptions{})
		var wr *fedqcc.WeightedRouting
		if weighted {
			wr = cal.EnableWeightedRouting(fedqcc.WeightedRoutingOptions{})
		}
		var got []string
		for _, sql := range identityWorkload {
			got = append(got, queryFingerprint(t, fed, sql))
		}
		if weighted {
			if switched, _ := wr.Rerouted(); switched != 0 {
				t.Errorf("weighted router switched %d single-placement fragments", switched)
			}
		}
		return got
	}
	plain := run(false)
	routed := run(true)
	for i := range plain {
		if plain[i] != routed[i] {
			t.Errorf("query %d diverged with weighted routing on a single-placement federation:\n--- plain ---\n%s\n--- weighted ---\n%s",
				i, plain[i], routed[i])
		}
	}
}

// TestWeightedLatencyOnlyMatchesCostWinner is the property test: with every
// weight zeroed except calibrated latency, the weighted router's decisions
// must match the pure cost-based winner (the route QCC picks with no load
// balancing installed).
func TestWeightedLatencyOnlyMatchesCostWinner(t *testing.T) {
	build := func(weighted bool) (*fedqcc.Federation, *fedqcc.Calibrator) {
		fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: 100, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})
		if weighted {
			cal.EnableWeightedRouting(fedqcc.WeightedRoutingOptions{
				LatencyWeight:          1,
				DisableDispatchRescore: true,
			})
		}
		return fed, cal
	}
	costFed, costCal := build(false)
	wFed, wCal := build(true)
	queries := []string{
		"SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 100",
		"SELECT SUM(l.l_price) FROM lineitem AS l WHERE l.l_qty < 25",
		"SELECT COUNT(*) FROM customer AS c WHERE c.c_discount > 0.05",
		"SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9500 AND l.l_qty < 5",
		"SELECT SUM(o.o_amount) FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id WHERE c.c_discount > 0.01",
	}
	for round := 0; round < 3; round++ {
		for _, sql := range queries {
			want, err := costFed.Query(sql)
			if err != nil {
				t.Fatal(err)
			}
			got, err := wFed.Query(sql)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(want.Route) != fmt.Sprint(got.Route) {
				t.Fatalf("round %d %q: latency-only weighted route %v != cost-based route %v",
					round, sql, got.Route, want.Route)
			}
			costCal.PublishNow()
			wCal.PublishNow()
		}
	}
}

// TestWeightedReplicaFailover fences a server mid-workload and asserts
// queries keep succeeding on the surviving replicas with identical rows and
// no typed engine errors leaking to the caller.
func TestWeightedReplicaFailover(t *testing.T) {
	fed, err := fedqcc.NewReplicatedFederation(fedqcc.ReplicatedFederationOptions{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})
	cal.EnableWeightedRouting(fedqcc.WeightedRoutingOptions{})

	const sql = "SELECT SUM(h.h_val) FROM hot1 AS h WHERE h.h_val > 1000"
	var wantRows string
	var pinned string
	for i := 0; i < 6; i++ {
		res, err := fed.Query(sql)
		if err != nil {
			t.Fatalf("warmup query %d: %v", i, err)
		}
		rows := fmt.Sprint(res.Rows.Rows)
		if wantRows == "" {
			wantRows = rows
		} else if rows != wantRows {
			t.Fatalf("warmup query %d rows %s != %s", i, rows, wantRows)
		}
		for _, srv := range res.Route {
			pinned = srv
		}
		cal.PublishNow()
	}

	h, err := fed.Server(pinned)
	if err != nil {
		t.Fatal(err)
	}
	h.SetDown(true)

	// Before any probe has fenced the server, the integrator's retry path
	// must already absorb the failure.
	res, err := fed.Query(sql)
	if err != nil {
		t.Fatalf("query with %s down (unfenced): %v", pinned, err)
	}
	if rows := fmt.Sprint(res.Rows.Rows); rows != wantRows {
		t.Fatalf("rows after failure %s != %s", rows, wantRows)
	}

	// After a probe fences it, routing must avoid the server outright.
	cal.ProbeNow()
	if !cal.IsFenced(pinned) {
		t.Fatalf("probe did not fence the downed server %s", pinned)
	}
	for i := 0; i < 6; i++ {
		res, err := fed.Query(sql)
		if err != nil {
			t.Fatalf("post-fence query %d: %v", i, err)
		}
		if rows := fmt.Sprint(res.Rows.Rows); rows != wantRows {
			t.Fatalf("post-fence query %d rows %s != %s", i, rows, wantRows)
		}
		for frag, srv := range res.Route {
			if srv == pinned {
				t.Fatalf("post-fence query %d routed fragment %s to fenced server %s", i, frag, pinned)
			}
		}
		if res.Retried != 0 {
			t.Errorf("post-fence query %d needed %d retries; fencing should route around the dead replica", i, res.Retried)
		}
		cal.PublishNow()
	}

	// Recovery: bring the server back; after a probe it may serve again.
	h.SetDown(false)
	cal.ProbeNow()
	if cal.IsFenced(pinned) {
		t.Fatalf("probe did not unfence the recovered server %s", pinned)
	}
	if _, err := fed.Query(sql); err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
}

// TestRouteDecisionsLogged checks the shared decision log every policy
// writes into: round-robin records rotations, the weighted router records
// replica choices with a score breakdown, and each dispatched fragment
// records its data-shipping mode under the "ship" policy.
func TestRouteDecisionsLogged(t *testing.T) {
	fed, err := fedqcc.NewReplicatedFederation(fedqcc.ReplicatedFederationOptions{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true, LoadBalance: fedqcc.LBGlobal})
	const sql = "SELECT SUM(h.h_val) FROM hot2 AS h WHERE h.h_val > 1000"
	for i := 0; i < 3; i++ {
		if _, err := fed.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	byPolicy := func(ds []fedqcc.RouteDecision, policy string) []fedqcc.RouteDecision {
		var out []fedqcc.RouteDecision
		for _, d := range ds {
			if d.Policy == policy {
				out = append(out, d)
			}
		}
		return out
	}
	all := fed.RouteDecisions(0)
	if len(byPolicy(all, "lb")) == 0 {
		t.Fatal("round-robin load balancer recorded no decisions")
	}
	ships := byPolicy(all, "ship")
	if len(ships) == 0 {
		t.Fatal("fragment dispatches recorded no ship decisions")
	}
	for _, d := range ships {
		if d.Reason != "row-ship" {
			t.Errorf("ship mode = %q on the row protocol, want row-ship (%+v)", d.Reason, d)
		}
	}

	cal.EnableWeightedRouting(fedqcc.WeightedRoutingOptions{})
	for i := 0; i < 3; i++ {
		if _, err := fed.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	weighted := byPolicy(fed.RouteDecisions(0), "weighted")
	if len(weighted) < 3 {
		t.Fatalf("weighted router recorded %d decisions, want >= 3", len(weighted))
	}
	for _, d := range weighted[len(weighted)-3:] {
		if d.Reason == "" || d.Route == "" {
			t.Errorf("decision missing reason/route: %+v", d)
		}
	}
}

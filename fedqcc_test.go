package fedqcc_test

import (
	"math"
	"strings"
	"testing"

	fedqcc "repro"
)

func paperFed(t *testing.T) *fedqcc.Federation {
	t.Helper()
	fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func TestPaperFederationQuery(t *testing.T) {
	fed := paperFed(t)
	res, err := fed.Query("SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 5000")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Cardinality() != 1 {
		t.Fatalf("rows: %d", res.Rows.Cardinality())
	}
	if res.ResponseTime <= 0 || len(res.Route) != 1 {
		t.Fatalf("result: %+v", res)
	}
	if fed.Now() != res.ResponseTime {
		t.Fatal("clock must advance by response time")
	}
	if len(fed.QueryLog()) != 1 {
		t.Fatal("query log")
	}
}

func TestExplainAndEnumerate(t *testing.T) {
	fed := paperFed(t)
	info, err := fed.Explain("SELECT SUM(o.o_amount) FROM orders AS o WHERE o.o_amount > 100")
	if err != nil {
		t.Fatal(err)
	}
	if info.TotalCostMS <= 0 || len(info.Route) != 1 {
		t.Fatalf("plan info: %+v", info)
	}
	if !strings.Contains(info.FragmentPlans["QF1"], "SCAN") {
		t.Fatalf("fragment plan text: %q", info.FragmentPlans["QF1"])
	}
	if len(fed.ExplainLog()) != 1 {
		t.Fatal("explain table")
	}
	plans, err := fed.EnumeratePlans("SELECT SUM(o.o_amount) FROM orders AS o WHERE o.o_amount > 100", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 3 {
		t.Fatalf("enumerated: %d", len(plans))
	}
}

func TestServerHandleControls(t *testing.T) {
	fed := paperFed(t)
	h, err := fed.Server("S3")
	if err != nil || h.ID() != "S3" {
		t.Fatal(err)
	}
	if _, err := fed.Server("S9"); err == nil {
		t.Fatal("unknown server")
	}
	h.SetLoad(0.7)
	if h.Load() != 0.7 {
		t.Fatal("load")
	}
	h.SetDown(true)
	if !h.Down() {
		t.Fatal("down")
	}
	h.SetDown(false)
	h.SetCongestion(2)
	h.PartitionNetwork(true)
	if _, err := fed.Query("SELECT COUNT(*) FROM parts AS p"); err != nil {
		t.Fatal("other servers must still serve:", err)
	}
	h.PartitionNetwork(false)
	if err := h.ApplyUpdateBurst("orders", 3, 1); err != nil {
		t.Fatal(err)
	}
	if h.Executed() != 0 {
		t.Fatal("executed count")
	}
}

func TestCatalogIntrospection(t *testing.T) {
	fed := paperFed(t)
	names := fed.Nicknames()
	if len(names) != 4 {
		t.Fatalf("nicknames: %v", names)
	}
	hosts, err := fed.PlacementsOf("orders")
	if err != nil || len(hosts) != 3 {
		t.Fatalf("placements: %v %v", hosts, err)
	}
	schema, err := fed.Schema("orders")
	if err != nil || schema.Len() != 5 {
		t.Fatalf("schema: %v %v", schema, err)
	}
	if _, err := fed.Schema("ghost"); err == nil {
		t.Fatal("unknown nickname")
	}
}

func TestEnableQCCLearnsAndReroutes(t *testing.T) {
	fed := paperFed(t)
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})
	const q = "SELECT SUM(o.o_amount) FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id WHERE c.c_discount > 0.01"
	res, err := fed.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	preferred := res.Route["QF1"]
	h, _ := fed.Server(preferred)
	h.SetLoad(1)
	for i := 0; i < 3; i++ {
		if _, err := fed.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	cal.PublishNow()
	if cal.ServerFactor(preferred) <= 1.1 {
		t.Fatalf("factor: %g", cal.ServerFactor(preferred))
	}
	res, err = fed.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Route["QF1"] == preferred {
		t.Fatal("must reroute away from loaded server")
	}
	compiles, runs, _ := cal.Stats()
	if compiles == 0 || runs == 0 {
		t.Fatal("stats")
	}
}

func TestQCCFencingViaPublicAPI(t *testing.T) {
	fed := paperFed(t)
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})
	h, _ := fed.Server("S3")
	h.SetDown(true)
	cal.ProbeNow()
	if !cal.IsFenced("S3") {
		t.Fatal("fencing")
	}
	res, err := fed.Query("SELECT COUNT(*) FROM parts AS p")
	if err != nil {
		t.Fatal(err)
	}
	if res.Route["QF1"] == "S3" {
		t.Fatal("fenced server used")
	}
	h.SetDown(false)
	cal.ProbeNow()
	if cal.IsFenced("S3") {
		t.Fatal("recovery")
	}
	if cal.ReliabilityFactor("S3") <= 1 {
		t.Fatal("reliability factor should reflect the failed probe")
	}
}

func TestDisableQCC(t *testing.T) {
	fed := paperFed(t)
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})
	fed.DisableQCC()
	if _, err := fed.Query("SELECT COUNT(*) FROM parts AS p"); err != nil {
		t.Fatal(err)
	}
	_, runs, _ := cal.Stats()
	if runs != 0 {
		t.Fatal("disabled QCC must not observe")
	}
}

func TestLoadBalanceViaPublicAPI(t *testing.T) {
	fed := paperFed(t)
	cal := fed.EnableQCC(fedqcc.QCCOptions{
		DisableDaemons: true,
		LoadBalance:    fedqcc.LBGlobal,
		LBCloseness:    3,
	})
	used := map[string]bool{}
	for i := 0; i < 9; i++ {
		res, err := fed.Query("SELECT SUM(o.o_amount) FROM orders AS o WHERE o.o_amount > 100")
		if err != nil {
			t.Fatal(err)
		}
		used[res.Route["QF1"]] = true
	}
	if len(used) < 2 {
		t.Fatalf("rotation: %v", used)
	}
	if cal.Rotations() == 0 {
		t.Fatal("rotations counter")
	}
	if err := cal.SetLoadBalanceMode(fedqcc.LBOff); err != nil {
		t.Fatal(err)
	}
}

func TestWhatIfViaPublicAPI(t *testing.T) {
	fed, err := fedqcc.NewReplicaFederation(fedqcc.FederationOptions{Scale: 200})
	if err != nil {
		t.Fatal(err)
	}
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})
	wi, err := cal.WhatIf()
	if err != nil {
		t.Fatal(err)
	}
	const q = "SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9500"
	plans, err := wi.EnumeratePlans(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 4 {
		t.Fatalf("what-if plans: %d", len(plans))
	}
	masked, runs, err := wi.EnumerateByMasking(q)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 4 || len(masked) != 4 {
		t.Fatalf("masking: %d plans in %d runs", len(masked), runs)
	}
	// What-if must not have executed anything on production servers.
	for _, id := range fed.ServerIDs() {
		h, _ := fed.Server(id)
		if h.Executed() != 0 {
			t.Fatalf("what-if executed on %s", id)
		}
	}
}

func TestBuilderCustomFederation(t *testing.T) {
	specs := fedqcc.StandardSchema(200)
	b := fedqcc.NewBuilder(7).
		AddServer("alpha", fedqcc.ProfileModest, fedqcc.LinkSpec{LatencyMS: 3}).
		AddServer("beta", fedqcc.ProfilePowerful, fedqcc.LinkSpec{LatencyMS: 9})
	for _, spec := range specs {
		b.AddGeneratedTable("alpha", spec)
	}
	b.AddGeneratedTable("beta", specs[0]) // beta replicates orders only
	fed, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	hosts, err := fed.PlacementsOf("orders")
	if err != nil || len(hosts) != 2 {
		t.Fatalf("orders hosts: %v %v", hosts, err)
	}
	hosts, _ = fed.PlacementsOf("parts")
	if len(hosts) != 1 || hosts[0] != "alpha" {
		t.Fatalf("parts hosts: %v", hosts)
	}
	res, err := fed.Query("SELECT COUNT(*) FROM orders AS o JOIN customer AS c ON o.o_custkey = c.c_id")
	if err != nil {
		t.Fatal(err)
	}
	// customer only lives on alpha, so the co-located join must run there.
	if res.Route["QF1"] != "alpha" {
		t.Fatalf("route: %v", res.Route)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := fedqcc.NewBuilder(1).Build(); err == nil {
		t.Fatal("empty federation")
	}
	b := fedqcc.NewBuilder(1).AddServer("a", fedqcc.ProfileModest, fedqcc.LinkSpec{})
	if _, err := b.Build(); err == nil {
		t.Fatal("no tables")
	}
	b = fedqcc.NewBuilder(1).
		AddServer("a", fedqcc.ProfileModest, fedqcc.LinkSpec{}).
		AddServer("a", fedqcc.ProfileModest, fedqcc.LinkSpec{})
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate server")
	}
	b = fedqcc.NewBuilder(1).AddGeneratedTable("ghost", fedqcc.StandardSchema(200)[0])
	if _, err := b.Build(); err == nil {
		t.Fatal("unknown server for table")
	}
}

func TestBuilderFileServerSeeding(t *testing.T) {
	specs := fedqcc.StandardSchema(200)
	b := fedqcc.NewBuilder(3).
		AddFileServer("files", fedqcc.ProfileModest, fedqcc.LinkSpec{LatencyMS: 2})
	b.AddGeneratedTable("files", specs[3]) // parts
	fed, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})
	cal.ProbeNow() // seeds the probe-based estimate for the file source
	res, err := fed.Query("SELECT COUNT(*) FROM parts AS p")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Rows[0][0].Int() == 0 {
		t.Fatal("file scan returned nothing")
	}
	// After one observed run the seed estimate is available.
	cal.PublishNow()
	info, err := fed.Explain("SELECT COUNT(*) FROM parts AS p")
	if err != nil {
		t.Fatal(err)
	}
	if info.FragmentCostMS["QF1"] <= 0 {
		t.Fatalf("file source cost must be seeded: %+v", info)
	}
}

func TestRunStudiesViaPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("studies are slow")
	}
	sens, err := fedqcc.RunSensitivityStudy(fedqcc.ExperimentOptions{Scale: 100, Instances: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sens) != 4 {
		t.Fatalf("sensitivity: %d", len(sens))
	}
	if out := fedqcc.FormatFigure9(sens); !strings.Contains(out, "QT2") {
		t.Fatal("format")
	}
}

func TestCSVTablesAndExport(t *testing.T) {
	const csvIn = "pk:INT,label:STRING,score:FLOAT\n1,alpha,0.5\n2,beta,1.5\n3,gamma,2.5\n"
	b := fedqcc.NewBuilder(5).
		AddServer("s", fedqcc.ProfileMidrange, fedqcc.LinkSpec{LatencyMS: 2}).
		AddCSVTable("s", "items", strings.NewReader(csvIn)).
		AddIndex("s", "items", "items_pk", "pk", true)
	fed, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Query("SELECT COUNT(*), SUM(i.score) FROM items AS i WHERE i.pk >= 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Rows[0][0].Int() != 2 || res.Rows.Rows[0][1].Float() != 4 {
		t.Fatalf("csv query: %v", res.Rows.Rows[0])
	}
	var out strings.Builder
	if err := fed.ExportCSV("s", "items", &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pk:INT") || !strings.Contains(out.String(), "gamma") {
		t.Fatalf("export: %q", out.String())
	}
	if err := fed.ExportCSV("s", "ghost", &out); err == nil {
		t.Fatal("unknown table export")
	}
	if err := fed.ExportCSV("nope", "items", &out); err == nil {
		t.Fatal("unknown server export")
	}
	// Builder error paths.
	if _, err := fedqcc.NewBuilder(1).AddCSVTable("ghost", "x", strings.NewReader("a:INT\n")).Build(); err == nil {
		t.Fatal("unknown server for csv table")
	}
	if _, err := fedqcc.NewBuilder(1).
		AddServer("s", fedqcc.ProfileModest, fedqcc.LinkSpec{}).
		AddIndex("s", "ghost", "i", "c", true).Build(); err == nil {
		t.Fatal("index on unknown table")
	}
}

func TestRuntimeReroutePublicAPI(t *testing.T) {
	fed := paperFed(t)
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true, RuntimeReroute: true})
	if _, err := fed.Query("SELECT COUNT(*) FROM parts AS p"); err != nil {
		t.Fatal(err)
	}
	_, checked := cal.RerouteStats()
	if checked == 0 {
		t.Fatal("reroute checks must be counted")
	}
}

func TestAdvisorPublicAPI(t *testing.T) {
	fed := paperFed(t)
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})
	if _, err := fed.Query("SELECT COUNT(*) FROM parts AS p"); err != nil {
		t.Fatal(err)
	}
	cal.PublishNow()
	// Fully replicated + calm: no recommendations.
	if recs := cal.AdvisePlacement(0); len(recs) != 0 {
		t.Fatalf("unexpected recommendations: %+v", recs)
	}
	// ApplyReplication validation surfaces errors.
	err := fed.ApplyReplication(fedqcc.PlacementRecommendation{Nickname: "ghost", From: "S1", To: "S2"})
	if err == nil {
		t.Fatal("bad recommendation must fail")
	}
}

func TestCostPolicyBansServer(t *testing.T) {
	fed := paperFed(t)
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})
	res, err := fed.Query("SELECT COUNT(*) FROM parts AS p")
	if err != nil {
		t.Fatal(err)
	}
	banned := res.Route["QF1"]
	cal.SetCostPolicy(func(serverID string, costMS float64) float64 {
		if serverID == banned {
			return math.Inf(1)
		}
		return costMS
	})
	res, err = fed.Query("SELECT COUNT(*) FROM parts AS p")
	if err != nil {
		t.Fatal(err)
	}
	if res.Route["QF1"] == banned {
		t.Fatalf("policy ban ignored: %v", res.Route)
	}
	// Clearing the policy restores the default ranking.
	cal.SetCostPolicy(nil)
	res, err = fed.Query("SELECT COUNT(*) FROM parts AS p")
	if err != nil {
		t.Fatal(err)
	}
	if res.Route["QF1"] != banned {
		t.Fatalf("policy not cleared: %v", res.Route)
	}
}

func TestConcurrentQueriesAreRaceFree(t *testing.T) {
	fed := paperFed(t)
	fed.EnableQCC(fedqcc.QCCOptions{})
	queries := []string{
		"SELECT COUNT(*) FROM parts AS p",
		"SELECT SUM(o.o_amount) FROM orders AS o WHERE o.o_amount > 5000",
		"SELECT COUNT(*) FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id WHERE c.c_discount > 0.05",
	}
	done := make(chan error, 12)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			for i := 0; i < 5; i++ {
				if _, err := fed.Query(queries[(g+i)%len(queries)]); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if len(fed.QueryLog()) != 20 {
		t.Fatalf("log entries: %d", len(fed.QueryLog()))
	}
}

// Package fedqcc is a federated query engine with a Query Cost Calibrator
// (QCC), reproducing "Load and Network Aware Query Routing for Information
// Integration" (Li, Batra, Raman, Han, Candan, Narang — ICDE 2005).
//
// The library builds federations of simulated remote database servers behind
// an information integrator (II). Federated SQL is decomposed into per-source
// fragments, fragments are costed and executed through per-source wrappers,
// and results are merged at the integrator. The QCC attaches transparently —
// it never modifies the optimizer — and:
//
//   - learns per-server and per-fragment cost calibration factors from
//     (estimated, observed) pairs, so the optimizer's costs track remote
//     load and network conditions;
//   - probes source availability and fences off down servers;
//   - folds a reliability factor from observed errors into costs;
//   - adapts its own recalibration cycle to factor drift; and
//   - rotates near-optimal plans round-robin for load distribution.
//
// # Quick start
//
//	fed, _ := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: 50})
//	cal := fed.EnableQCC(fedqcc.QCCOptions{})
//	res, _ := fed.Query("SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 100")
//	fmt.Println(res.Rows, res.ResponseTime, res.Route)
//	_ = cal
//
// Arbitrary topologies are assembled with Builder. The experiments of the
// paper's §5 are exposed through RunSensitivityStudy and RunGainStudy.
package fedqcc

import (
	"context"
	"fmt"

	"repro/internal/admission"
	"repro/internal/catalog"
	"repro/internal/integrator"
	"repro/internal/metawrapper"
	"repro/internal/network"
	"repro/internal/optimizer"
	"repro/internal/qcc"
	"repro/internal/remote"
	"repro/internal/router"
	"repro/internal/scenario"
	"repro/internal/simclock"
	"repro/internal/sqltypes"
	"repro/internal/telemetry"
)

// Re-exported fundamental types. These are stable aliases into the engine's
// value layer so callers can consume query results without extra imports.
type (
	// Value is a single SQL value.
	Value = sqltypes.Value
	// Row is a tuple of values.
	Row = sqltypes.Row
	// Relation is a materialized result set.
	Relation = sqltypes.Relation
	// Time is simulated time in milliseconds.
	Time = simclock.Time
	// PlanCacheStats snapshots the integrator's federated plan cache
	// counters: hits, misses, live entries and invalidations by cause.
	PlanCacheStats = integrator.PlanCacheStats
	// StatementCacheStats snapshots one remote server's statement-cache
	// counters, including LRU evictions.
	StatementCacheStats = remote.StatementCacheStats
	// Telemetry is the observability subsystem: per-query traces, the
	// metrics registry and calibration timelines (see EnableTelemetry).
	Telemetry = telemetry.Telemetry
	// Trace is one query's span tree on virtual time.
	Trace = telemetry.Trace
)

// Federation is a fully-wired federated system: remote servers, network,
// catalog, meta-wrapper and integrator, all on one virtual clock.
type Federation struct {
	clock   *simclock.Clock
	servers map[string]*remote.Server
	topo    *network.Topology
	catalog *catalog.Catalog
	mw      *metawrapper.MetaWrapper
	iiNode  *remote.Server
	ii      *integrator.II
	qcc     *qcc.QCC
	tel     *telemetry.Telemetry
	adm     *admission.Controller
	// routeLog is the shared routing decision log every routing policy
	// (round-robin load balancer, weighted replica router) records into.
	routeLog *router.DecisionLog
}

// FederationOptions configures the canned paper federation.
type FederationOptions struct {
	// Scale divides the paper's table sizes (1 = 100k-row large tables).
	Scale int
	// Seed drives deterministic data generation.
	Seed int64
}

// NewPaperFederation builds the paper's evaluation scenario: servers S1, S2
// and S3 with the sample schema fully replicated, plus the integrator node.
func NewPaperFederation(opts FederationOptions) (*Federation, error) {
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	return fromScenario(sc), nil
}

// NewReplicaFederation builds the §4 load-distribution scenario: origin
// servers S1 and S2 plus replicas R1 and R2, with each source group hosting
// half the schema so cross-source joins are unavoidable.
func NewReplicaFederation(opts FederationOptions) (*Federation, error) {
	sc, err := scenario.BuildReplicaPair(scenario.ReplicaOptions{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	return fromScenario(sc), nil
}

// ReplicatedFederationOptions configures the replica-routing hotspot
// scenario.
type ReplicatedFederationOptions struct {
	// Servers is the replica count (default 3, IDs S1..SN).
	Servers int
	// Scale divides the paper's table sizes.
	Scale int
	// Seed drives deterministic data generation.
	Seed int64
}

// NewReplicatedFederation builds the replica-routing hotspot scenario: N
// uniform servers, every sample table registered through
// catalog.RegisterReplicated on all of them, query-induced load and a
// buffer-pool residency model. Pair it with EnableQCC plus
// Calibrator.EnableWeightedRouting to route each fragment to the replica
// scoring best on load, pressure, cache locality and calibrated latency.
func NewReplicatedFederation(opts ReplicatedFederationOptions) (*Federation, error) {
	sc, err := scenario.BuildReplicated(scenario.ReplicatedOptions{
		Servers: opts.Servers,
		Scale:   opts.Scale,
		Seed:    opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return fromScenario(sc), nil
}

// ShardedFederationOptions configures the scale-out scenario.
type ShardedFederationOptions struct {
	// Shards is the shard (and server) count; 1 builds a plain unsharded
	// single-server federation.
	Shards int
	// Scale divides the paper's table sizes (1 = 100k-row large tables).
	Scale int
	// Seed drives deterministic data generation.
	Seed int64
	// RangeSharding switches lineitem from hash to range sharding on
	// l_orderkey.
	RangeSharding bool
	// NullKeyFrac makes roughly this fraction of lineitem rows carry a NULL
	// shard key.
	NullKeyFrac float64
}

// NewShardedFederation builds the scale-out scenario: lineitem horizontally
// sharded on l_orderkey across N uniform servers (shard i on server S<i+1>),
// small tables replicated everywhere. Aggregate queries over lineitem run
// two-phase with partial aggregation pushed into every shard; predicates on
// l_orderkey prune the shard fan-out. See SetShardPushdown/SetShardPruning.
func NewShardedFederation(opts ShardedFederationOptions) (*Federation, error) {
	method := catalog.ShardHash
	if opts.RangeSharding {
		method = catalog.ShardRange
	}
	sc, err := scenario.BuildSharded(scenario.ShardedOptions{
		Shards:      opts.Shards,
		Scale:       opts.Scale,
		Seed:        opts.Seed,
		Method:      method,
		NullKeyFrac: opts.NullKeyFrac,
	})
	if err != nil {
		return nil, err
	}
	return fromScenario(sc), nil
}

func fromScenario(sc *scenario.Scenario) *Federation {
	// Telemetry is always constructed and wired but starts disabled: every
	// instrumentation site no-ops behind one atomic load until
	// EnableTelemetry flips it on.
	tel := telemetry.New(telemetry.Config{})
	sc.II.SetTelemetry(tel)
	sc.MW.SetTelemetry(tel)
	sc.Topo.SetTelemetry(tel)
	for _, srv := range sc.Servers {
		srv.SetTelemetry(tel)
	}
	if sc.IINode != nil {
		sc.IINode.SetTelemetry(tel)
	}
	// The admission controller is always installed but starts with the
	// unlimited default policy: a pass-through gate with zero behavioural
	// footprint until Admission().SetPolicy imposes caps.
	adm := admission.New(admission.Config{Clock: sc.Clock, Telemetry: tel})
	sc.II.SetAdmission(adm)
	fed := &Federation{
		clock:    sc.Clock,
		servers:  sc.Servers,
		topo:     sc.Topo,
		catalog:  sc.Catalog,
		mw:       sc.MW,
		iiNode:   sc.IINode,
		ii:       sc.II,
		tel:      tel,
		adm:      adm,
		routeLog: router.NewDecisionLog(0),
	}
	// Fragment ship modes (row-ship / col-ship / pushdown / pushdown-col)
	// land in the shared decision log under the "ship" policy, alongside the
	// routing policies' entries.
	sc.II.SetShipObserver(&shipRecorder{clock: sc.Clock, log: fed.routeLog})
	return fed
}

// shipRecorder feeds per-fragment data-shipping modes into the shared
// routing decision log (policy "ship"), so the row-ship baseline, columnar
// shipping, and pushdown runs are distinguishable after the fact.
type shipRecorder struct {
	clock *simclock.Clock
	log   *router.DecisionLog
}

func (r *shipRecorder) ObserveShip(query, fragID, serverID, mode string) {
	r.log.Record(router.Decision{
		At:     r.clock.Now(),
		Query:  query,
		Policy: "ship",
		Route:  fragID + "→" + serverID,
		Reason: mode,
	})
}

// Telemetry returns the federation's observability subsystem. It is always
// non-nil but collects nothing until EnableTelemetry switches it on.
func (f *Federation) Telemetry() *Telemetry { return f.tel }

// EnableTelemetry switches the observability subsystem on and returns it:
// subsequent queries produce span traces, the metrics registry fills, and
// recalibration cycles append to the calibration timeline.
func (f *Federation) EnableTelemetry() *Telemetry {
	f.tel.SetEnabled(true)
	return f.tel
}

// DisableTelemetry switches the observability subsystem off. Collected
// traces, metrics and timelines are retained for inspection.
func (f *Federation) DisableTelemetry() { f.tel.SetEnabled(false) }

// FormatMetrics renders a metrics registry (Telemetry().Metrics()) as an
// aligned human-readable table.
func FormatMetrics(r *telemetry.Registry) string { return telemetry.FormatMetrics(r) }

// FormatTimeline renders the calibration-factor timeline
// (Telemetry().Timelines()) grouped by server in time order.
func FormatTimeline(ts *telemetry.TimelineStore) string { return telemetry.FormatTimeline(ts) }

// Clock returns the federation's virtual clock.
func (f *Federation) Clock() *simclock.Clock { return f.clock }

// Now returns the current simulated time.
func (f *Federation) Now() Time { return f.clock.Now() }

// ServerIDs lists the remote servers.
func (f *Federation) ServerIDs() []string { return f.mw.Servers() }

// Server returns a control handle for a remote server.
func (f *Federation) Server(id string) (*ServerHandle, error) {
	srv, ok := f.servers[id]
	if !ok {
		return nil, fmt.Errorf("fedqcc: unknown server %q", id)
	}
	return &ServerHandle{srv: srv, link: f.topo.Link(id), mw: f.mw}, nil
}

// PlanCacheStats snapshots the integrator's federated plan cache counters.
func (f *Federation) PlanCacheStats() PlanCacheStats { return f.ii.PlanCacheStats() }

// SetPlanCacheEnabled toggles the federated plan cache at runtime; disabling
// also clears it. Useful for cached-vs-uncached comparisons.
func (f *Federation) SetPlanCacheEnabled(enabled bool) { f.ii.SetPlanCacheEnabled(enabled) }

// SetPlanCacheMaxAge overrides the plan cache's staleness bound in simulated
// ms (values <= 0 are ignored). EnableQCC re-aligns it with the load
// balancer's rotation refresh interval.
func (f *Federation) SetPlanCacheMaxAge(ms Time) { f.ii.SetPlanCacheMaxAge(ms) }

// ResetCompileCaches drops every cached compilation at both layers — the
// integrator's federated plan cache and each remote server's statement
// cache — so the next compile is fully cold. Counters are retained.
func (f *Federation) ResetCompileCaches() {
	f.ii.ClearPlanCache()
	for _, srv := range f.servers {
		srv.ResetPlanCache()
	}
}

// QueryResult is the outcome of a federated query.
type QueryResult struct {
	// Rows is the merged result.
	Rows *Relation
	// ResponseTime is the end-user response time in simulated ms.
	ResponseTime Time
	// Route maps fragment IDs to the servers they executed on.
	Route map[string]string
	// FragmentTimes maps fragment IDs to their observed response times.
	FragmentTimes map[string]Time
	// MergeTime is the integrator-side merge time.
	MergeTime Time
	// FirstRowTime is when the first merged result row could be emitted —
	// under streaming execution (the default), the latest first-batch
	// arrival across fragments plus the merge; under monolithic execution
	// (SetBatchRows(0)) it equals ResponseTime.
	FirstRowTime Time
	// Retried counts re-optimizations after fragment failures.
	Retried int
	// QueueWait is the virtual time the query spent in the admission queue
	// before execution began — zero unless Admission() imposed caps that
	// made it wait. End-to-end latency is QueueWait + ResponseTime;
	// ResponseTime itself stays pure execution time so QCC's calibration is
	// unaffected by queueing.
	QueueWait Time
	// AdmissionClass is the workload class the query ran under
	// ("interactive"/"batch" by default).
	AdmissionClass string
	// Tenant is the tenant the query was submitted under — set via
	// WithQueryTenant ("" for untagged submissions).
	Tenant string
}

// SetBatchRows changes the streaming fragment data path's batch size at
// runtime: results ship from the remote servers in batches of n rows,
// overlapping remote compute with network transfer. n <= 0 disables
// streaming and reproduces monolithic store-and-forward execution exactly.
func (f *Federation) SetBatchRows(n int) { f.ii.SetBatchRows(n) }

// BatchRows returns the current streaming batch size (0 = monolithic).
func (f *Federation) BatchRows() int { return f.ii.BatchRows() }

// SetVectorized switches the whole federation — every remote server's
// executor and the integrator's merge — between the row-at-a-time and
// columnar (vectorized) engines. Both engines produce bit-identical rows,
// routes, resource charges, and virtual-time results; only real wall-clock
// cost differs, so experiments can flip this freely without perturbing any
// simulated measurement.
func (f *Federation) SetVectorized(on bool) {
	for _, srv := range f.servers {
		srv.SetVectorized(on)
	}
	f.ii.SetVectorized(on)
}

// Vectorized reports whether the columnar engine is active at the integrator.
func (f *Federation) Vectorized() bool { return f.ii.Vectorized() }

// SetColumnarWire switches every remote server between shipping streamed
// fragment results as boxed rows and as typed column batches with the
// compact colbatch wire encoding (fixed-width packing, delta varints,
// string dictionaries). Effective only while the federation is also
// vectorized — the row engine has no columnar result to encode; with the
// flag off the encoder never runs and the data path is byte-for-byte the
// row protocol. Network byte accounting, the wrapper's wire charging, and
// MW's RunLog all observe the encoded sizes when active.
func (f *Federation) SetColumnarWire(on bool) {
	for _, srv := range f.servers {
		srv.SetColumnarWire(on)
	}
}

// ColumnarWire reports whether the columnar wire protocol is enabled (it
// engages only on servers that are also vectorized).
func (f *Federation) ColumnarWire() bool {
	for _, srv := range f.servers {
		return srv.ColumnarWire()
	}
	return false
}

// SetShardPruning toggles predicate-based shard pruning for sharded tables
// (default on); off scatter-gathers every shard.
func (f *Federation) SetShardPruning(on bool) { f.ii.SetShardPruning(on) }

// ShardPruning reports whether shard pruning is active.
func (f *Federation) ShardPruning() bool { return f.ii.ShardPruning() }

// SetShardPushdown toggles two-phase partial-aggregate pushdown for sharded
// tables (default on); off ships whole rows from every shard — the
// ship-all-rows baseline sharded benchmarks compare against.
func (f *Federation) SetShardPushdown(on bool) { f.ii.SetShardPushdown(on) }

// ShardPushdown reports whether partial-aggregate pushdown is active.
func (f *Federation) ShardPushdown() bool { return f.ii.ShardPushdown() }

// Query compiles and executes a federated SQL statement, advancing the
// virtual clock by the query's response time. See QueryContext for
// caller-supplied cancellation and Session for concurrent submission.
func (f *Federation) Query(sql string) (*QueryResult, error) {
	return f.QueryContext(context.Background(), sql)
}

// PlanInfo summarizes a compiled (but not executed) global plan.
type PlanInfo struct {
	// Query is the statement text.
	Query string
	// Route maps fragment IDs to chosen servers.
	Route map[string]string
	// FragmentCostMS maps fragment IDs to calibrated estimates.
	FragmentCostMS map[string]float64
	// TotalCostMS is the calibrated global estimate.
	TotalCostMS float64
	// FragmentPlans maps fragment IDs to physical plan text.
	FragmentPlans map[string]string
}

// Explain compiles a statement in explain mode: the winner is recorded in
// the explain table and summarized, nothing executes.
func (f *Federation) Explain(sql string) (*PlanInfo, error) {
	gp, err := f.ii.Compile(sql)
	if err != nil {
		return nil, err
	}
	return planInfo(gp), nil
}

func planInfo(gp *optimizer.GlobalPlan) *PlanInfo {
	info := &PlanInfo{
		Query:          gp.Query,
		Route:          map[string]string{},
		FragmentCostMS: map[string]float64{},
		FragmentPlans:  map[string]string{},
		TotalCostMS:    gp.TotalEstMS,
	}
	for _, frag := range gp.Fragments {
		info.Route[frag.Spec.ID] = frag.ServerID
		info.FragmentCostMS[frag.Spec.ID] = frag.Plan.Est.TotalMS
		info.FragmentPlans[frag.Spec.ID] = frag.Plan.Explain()
	}
	return info
}

// EnumeratePlans returns up to topK alternative global plans ranked by
// calibrated cost (topK <= 0 returns all enumerated combinations).
func (f *Federation) EnumeratePlans(sql string, topK int) ([]*PlanInfo, error) {
	stmt, err := parseSQL(sql)
	if err != nil {
		return nil, err
	}
	plans, err := f.ii.Optimizer().Enumerate(stmt, topK)
	if err != nil {
		return nil, err
	}
	out := make([]*PlanInfo, len(plans))
	for i, gp := range plans {
		out[i] = planInfo(gp)
	}
	return out, nil
}

// QueryLog returns the patroller's log entries.
func (f *Federation) QueryLog() []integrator.LogEntry { return f.ii.Patroller().Log() }

// QueryLogStats snapshots the patroller's retention accounting: entries
// retained, entries evicted by the ring-buffer bound, and completions that
// arrived after their entry had already been evicted.
func (f *Federation) QueryLogStats() QueryLogStats { return f.ii.Patroller().Stats() }

// RunLog returns the meta-wrapper's runtime records — one entry per executed
// remote fragment, including the shipped result volume in OutBytes. Summing
// OutBytes across a query's fragments gives its bytes-on-wire cost.
func (f *Federation) RunLog() []metawrapper.RunLogEntry { return f.mw.RunLog() }

// ExplainLog returns the stored compilation winners.
func (f *Federation) ExplainLog() []optimizer.ExplainEntry { return f.ii.ExplainTable().Entries() }

// RouteDecision is one recorded routing decision (policy, chosen route,
// reason) from the shared routing decision log.
type RouteDecision = router.Decision

// RouteDecisions returns up to n most recent routing decisions, oldest
// first (n <= 0 returns everything retained). Both the round-robin load
// balancer and the weighted replica router record here.
func (f *Federation) RouteDecisions(n int) []RouteDecision { return f.routeLog.Last(n) }

// ServerHandle controls one remote server for fault and load injection.
type ServerHandle struct {
	srv  *remote.Server
	link *network.Link
	mw   *metawrapper.MetaWrapper
}

// ID returns the server identifier.
func (h *ServerHandle) ID() string { return h.srv.ID() }

// SetLoad sets the background load level in [0,1].
func (h *ServerHandle) SetLoad(level float64) { h.srv.SetLoadLevel(level) }

// Load returns the current load level.
func (h *ServerHandle) Load() float64 { return h.srv.LoadLevel() }

// SetDown marks the server unavailable (down=true) or restores it.
func (h *ServerHandle) SetDown(down bool) { h.srv.SetDown(down) }

// Down reports the availability state.
func (h *ServerHandle) Down() bool { return h.srv.Down() }

// InjectFailures makes the next n executions fail transiently.
func (h *ServerHandle) InjectFailures(n int) { h.srv.InjectFailures(n) }

// SetCongestion sets the network congestion multiplier toward this server
// (1 = calm).
func (h *ServerHandle) SetCongestion(c float64) {
	if h.link != nil {
		h.link.SetCongestion(c)
	}
}

// PartitionNetwork cuts (true) or restores (false) the network path.
func (h *ServerHandle) PartitionNetwork(cut bool) {
	if h.link != nil {
		h.link.SetDown(cut)
	}
}

// Executed reports how many fragments the server has executed.
func (h *ServerHandle) Executed() int64 { return h.srv.Executed() }

// SetMasked hides the server from (or re-offers it to) the optimizer at the
// meta-wrapper layer: masked servers contribute no candidate plans. Mask
// transitions in either direction invalidate affected federated plan cache
// entries.
func (h *ServerHandle) SetMasked(masked bool) { h.mw.Mask(h.srv.ID(), masked) }

// Masked reports the meta-wrapper mask state.
func (h *ServerHandle) Masked() bool { return h.mw.Masked(h.srv.ID()) }

// StatementCacheStats snapshots the server's statement-cache counters.
func (h *ServerHandle) StatementCacheStats() StatementCacheStats {
	return h.srv.StatementCacheStats()
}

// ApplyUpdateBurst mutates n random rows of the named table, dirtying pages
// and drifting statistics.
func (h *ServerHandle) ApplyUpdateBurst(table string, n int, seed int64) error {
	return h.srv.ApplyUpdateBurst(table, n, seed)
}

// Sharded scale-out benchmark: the same aggregate query over 1/2/4/8 shards,
// with partial-aggregate pushdown against the ship-all-rows fallback. Emits
// BENCH_sharded.json recording virtual response time and bytes-on-wire per
// configuration, and a CI smoke (SHARDED_PUSHDOWN_CHECK=1) that fails if
// pushdown stops paying for itself.
package fedqcc_test

import (
	"encoding/json"
	"os"
	"testing"

	fedqcc "repro"
)

const shardedBenchFile = "BENCH_sharded.json"

// shardedBenchQuery is aggregate-heavy on purpose: pushdown collapses each
// shard's answer to a handful of partial-state rows, so the wire cost is the
// thing being measured, not the merge.
const shardedBenchQuery = "SELECT l_tag, COUNT(*), SUM(l_qty), AVG(l_price) FROM lineitem GROUP BY l_tag"

const shardedBenchScale = 400 // 2000 lineitem rows

type shardedBenchConfig struct {
	Shards         int     `json:"shards"`
	Mode           string  `json:"mode"` // unsharded | pushdown | ship_all_rows
	ResponseVirtMS float64 `json:"response_virtual_ms"`
	WireBytes      int     `json:"wire_bytes"`
	Rows           int     `json:"rows"`
}

type shardedBenchResult struct {
	Query   string               `json:"query"`
	Scale   int                  `json:"scale"`
	Configs []shardedBenchConfig `json:"configs"`
}

// queryWireBytes runs sql once and returns the result plus the bytes every
// remote fragment shipped for that query, by diffing the meta-wrapper run
// log around the call.
func queryWireBytes(fed *fedqcc.Federation, sql string) (*fedqcc.QueryResult, int, error) {
	before := len(fed.RunLog())
	res, err := fed.Query(sql)
	if err != nil {
		return nil, 0, err
	}
	bytes := 0
	for _, e := range fed.RunLog()[before:] {
		bytes += e.OutBytes
	}
	return res, bytes, nil
}

// measureShardedConfig builds a fresh federation, warms the compile caches,
// and measures the second (steady-state) execution.
func measureShardedConfig(shards int, pushdown bool) (shardedBenchConfig, error) {
	fed, err := fedqcc.NewShardedFederation(fedqcc.ShardedFederationOptions{
		Shards: shards,
		Scale:  shardedBenchScale,
	})
	if err != nil {
		return shardedBenchConfig{}, err
	}
	fed.SetShardPushdown(pushdown)
	if _, err := fed.Query(shardedBenchQuery); err != nil {
		return shardedBenchConfig{}, err
	}
	res, bytes, err := queryWireBytes(fed, shardedBenchQuery)
	if err != nil {
		return shardedBenchConfig{}, err
	}
	mode := "pushdown"
	if shards <= 1 {
		mode = "unsharded"
	} else if !pushdown {
		mode = "ship_all_rows"
	}
	return shardedBenchConfig{
		Shards:         shards,
		Mode:           mode,
		ResponseVirtMS: float64(res.ResponseTime),
		WireBytes:      bytes,
		Rows:           len(res.Rows.Rows),
	}, nil
}

// measureShardedScaleOut runs the full grid: the unsharded baseline, then
// pushdown and ship-all-rows at every shard count.
func measureShardedScaleOut(fatalf func(format string, args ...any)) shardedBenchResult {
	out := shardedBenchResult{Query: shardedBenchQuery, Scale: shardedBenchScale}
	base, err := measureShardedConfig(1, true)
	if err != nil {
		fatalf("unsharded baseline: %v", err)
	}
	out.Configs = append(out.Configs, base)
	for _, shards := range []int{2, 4, 8} {
		for _, pushdown := range []bool{true, false} {
			cfg, err := measureShardedConfig(shards, pushdown)
			if err != nil {
				fatalf("shards=%d pushdown=%v: %v", shards, pushdown, err)
			}
			if cfg.Rows != base.Rows {
				fatalf("shards=%d pushdown=%v returned %d rows, baseline %d",
					shards, pushdown, cfg.Rows, base.Rows)
			}
			out.Configs = append(out.Configs, cfg)
		}
	}
	return out
}

func writeShardedBenchFile(result shardedBenchResult) error {
	doc := map[string]json.RawMessage{}
	if buf, err := os.ReadFile(shardedBenchFile); err == nil {
		_ = json.Unmarshal(buf, &doc)
	}
	enc, err := json.Marshal(result)
	if err != nil {
		return err
	}
	doc["scale_out"] = enc
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(shardedBenchFile, append(buf, '\n'), 0o644)
}

// BenchmarkShardedScaleOut measures the full shard grid once per run and
// persists it to BENCH_sharded.json. The interesting metrics are virtual
// (response time, wire bytes), so the grid is measured outside the b.N loop
// and the loop just keeps the harness happy on -benchtime=1x CI runs.
func BenchmarkShardedScaleOut(b *testing.B) {
	result := measureShardedScaleOut(b.Fatalf)
	for _, cfg := range result.Configs {
		b.Logf("shards=%d mode=%-13s response=%6.1f vms  wire=%7d B",
			cfg.Shards, cfg.Mode, cfg.ResponseVirtMS, cfg.WireBytes)
	}
	var push4, base shardedBenchConfig
	for _, cfg := range result.Configs {
		if cfg.Shards == 4 && cfg.Mode == "pushdown" {
			push4 = cfg
		}
		if cfg.Mode == "unsharded" {
			base = cfg
		}
	}
	b.ReportMetric(push4.ResponseVirtMS, "vresp4_ms")
	b.ReportMetric(base.ResponseVirtMS/push4.ResponseVirtMS, "scaleout4_x")
	if err := writeShardedBenchFile(result); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s (scale_out)", shardedBenchFile)
	for i := 0; i < b.N; i++ {
	}
}

// TestShardedPushdownSmoke is the CI perf gate: with SHARDED_PUSHDOWN_CHECK=1
// it fails unless (a) at every sharded count, pushdown ships strictly fewer
// bytes than the ship-all-rows fallback, and (b) 4-shard pushdown beats the
// unsharded baseline on virtual response time. Unset, it is skipped, so
// ordinary test runs stay configuration-independent.
func TestShardedPushdownSmoke(t *testing.T) {
	if os.Getenv("SHARDED_PUSHDOWN_CHECK") != "1" {
		t.Skip("set SHARDED_PUSHDOWN_CHECK=1 to enforce the sharded pushdown floor")
	}
	result := measureShardedScaleOut(t.Fatalf)
	byKey := map[string]shardedBenchConfig{}
	for _, cfg := range result.Configs {
		byKey[cfg.Mode+string(rune('0'+cfg.Shards))] = cfg
		t.Logf("shards=%d mode=%-13s response=%6.1f vms  wire=%7d B",
			cfg.Shards, cfg.Mode, cfg.ResponseVirtMS, cfg.WireBytes)
	}
	for _, shards := range []int{2, 4, 8} {
		push := byKey["pushdown"+string(rune('0'+shards))]
		ship := byKey["ship_all_rows"+string(rune('0'+shards))]
		if push.WireBytes >= ship.WireBytes {
			t.Errorf("shards=%d: pushdown ships %d B, not below ship-all-rows %d B",
				shards, push.WireBytes, ship.WireBytes)
		}
	}
	base := byKey["unsharded1"]
	push4 := byKey["pushdown4"]
	if push4.ResponseVirtMS >= base.ResponseVirtMS {
		t.Errorf("4-shard pushdown response %.1f vms does not beat the unsharded %.1f vms",
			push4.ResponseVirtMS, base.ResponseVirtMS)
	}
	if err := writeShardedBenchFile(result); err != nil {
		t.Fatal(err)
	}
}

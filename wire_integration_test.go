// Columnar wire protocol integration tests: the typed column-batch wire
// format must be invisible when disabled (bit-identical charges, spans and
// virtual clock), answer-preserving when enabled, and actually cheaper on
// the wire for the sharded ship-everything workload.
package fedqcc_test

import (
	"os"
	"testing"

	fedqcc "repro"
)

// TestWireDisabledIdentity is the CI identity gate for this PR: with the
// vectorized engine OFF, flipping the columnar-wire flag must change nothing
// the simulation observes — the flag gates on vectorized, so the encoder
// never runs and the data path is byte-for-byte the row protocol.
func TestWireDisabledIdentity(t *testing.T) {
	sqls := soakStatements(12)
	base := runVecWorkload(t, sqls, func(fed *fedqcc.Federation) {
		fed.SetVectorized(false)
	})
	wired := runVecWorkload(t, sqls, func(fed *fedqcc.Federation) {
		fed.SetVectorized(false)
		fed.SetColumnarWire(true)
		if !fed.ColumnarWire() {
			t.Fatal("SetColumnarWire(true) did not take")
		}
	})
	requireVecIdentity(t, sqls, base, wired)
}

// TestWireRowProtocolUntouched pins the complementary default: a vectorized
// federation with the wire flag untouched behaves exactly like one with the
// flag explicitly off.
func TestWireRowProtocolUntouched(t *testing.T) {
	sqls := soakStatements(12)
	def := runVecWorkload(t, sqls, func(fed *fedqcc.Federation) {
		fed.SetVectorized(true)
	})
	off := runVecWorkload(t, sqls, func(fed *fedqcc.Federation) {
		fed.SetVectorized(true)
		fed.SetColumnarWire(false)
	})
	requireVecIdentity(t, sqls, def, off)
}

// TestWireSameAnswers: enabling the columnar wire changes what crosses the
// (simulated) network — encoded bytes instead of row-model bytes — so
// virtual times legitimately move; the ANSWERS must not. Every query of the
// soak workload must return cell-for-cell bit-identical rows.
func TestWireSameAnswers(t *testing.T) {
	sqls := soakStatements(16)
	row := runVecWorkload(t, sqls, func(fed *fedqcc.Federation) {
		fed.SetVectorized(true)
	})
	wire := runVecWorkload(t, sqls, func(fed *fedqcc.Federation) {
		fed.SetVectorized(true)
		fed.SetColumnarWire(true)
	})
	for i := range sqls {
		r, w := row.results[i], wire.results[i]
		if len(r.Rows.Rows) != len(w.Rows.Rows) {
			t.Fatalf("query %d (%s): %d rows (row wire) vs %d (columnar wire)",
				i, sqls[i], len(r.Rows.Rows), len(w.Rows.Rows))
		}
		for ri := range r.Rows.Rows {
			for ci := range r.Rows.Rows[ri] {
				if !cellsBitIdentical(r.Rows.Rows[ri][ci], w.Rows.Rows[ri][ci]) {
					t.Fatalf("query %d (%s): cell (%d,%d) diverged: %#v vs %#v",
						i, sqls[i], ri, ci, r.Rows.Rows[ri][ci], w.Rows.Rows[ri][ci])
				}
			}
		}
	}
}

// wireShardedFed builds a vectorized sharded federation for wire tests.
func wireShardedFed(t testing.TB, shards int, pushdown, wire bool) *fedqcc.Federation {
	t.Helper()
	fed, err := fedqcc.NewShardedFederation(fedqcc.ShardedFederationOptions{
		Shards: shards,
		Scale:  shardedBenchScale,
	})
	if err != nil {
		t.Fatal(err)
	}
	fed.SetVectorized(true)
	fed.SetShardPushdown(pushdown)
	fed.SetColumnarWire(wire)
	return fed
}

// TestWireShipsFewerBytes: on the sharded ship-everything workload the
// columnar wire must (a) return the same answers, (b) record strictly fewer
// bytes in MW's run log, and (c) log "col-ship" decisions where the row
// protocol logs "row-ship".
func TestWireShipsFewerBytes(t *testing.T) {
	rowFed := wireShardedFed(t, 4, false, false)
	wireFed := wireShardedFed(t, 4, false, true)
	for _, warm := range []*fedqcc.Federation{rowFed, wireFed} {
		if _, err := warm.Query(shardedBenchQuery); err != nil {
			t.Fatal(err)
		}
	}
	rowRes, rowBytes, err := queryWireBytes(rowFed, shardedBenchQuery)
	if err != nil {
		t.Fatal(err)
	}
	wireRes, wireBytes, err := queryWireBytes(wireFed, shardedBenchQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(rowRes.Rows.Rows) != len(wireRes.Rows.Rows) {
		t.Fatalf("row wire returned %d rows, columnar wire %d", len(rowRes.Rows.Rows), len(wireRes.Rows.Rows))
	}
	for ri := range rowRes.Rows.Rows {
		for ci := range rowRes.Rows.Rows[ri] {
			if !cellsBitIdentical(rowRes.Rows.Rows[ri][ci], wireRes.Rows.Rows[ri][ci]) {
				t.Fatalf("cell (%d,%d) diverged: %#v vs %#v",
					ri, ci, rowRes.Rows.Rows[ri][ci], wireRes.Rows.Rows[ri][ci])
			}
		}
	}
	if wireBytes >= rowBytes {
		t.Errorf("columnar wire shipped %d B, row protocol %d B: no reduction", wireBytes, rowBytes)
	}
	t.Logf("ship-everything at 4 shards: row %d B, columnar %d B (%.2fx)",
		rowBytes, wireBytes, float64(rowBytes)/float64(wireBytes))

	modes := map[string]bool{}
	for _, d := range rowFed.RouteDecisions(0) {
		if d.Policy == "ship" {
			modes[d.Reason] = true
		}
	}
	if !modes["row-ship"] || modes["col-ship"] {
		t.Errorf("row federation ship modes = %v, want row-ship only", modes)
	}
	modes = map[string]bool{}
	for _, d := range wireFed.RouteDecisions(0) {
		if d.Policy == "ship" {
			modes[d.Reason] = true
		}
	}
	if !modes["col-ship"] || modes["row-ship"] {
		t.Errorf("wire federation ship modes = %v, want col-ship only", modes)
	}
}

// TestWirePushdownColumnarStates: with pushdown AND the columnar wire on,
// partial-aggregate states ship as typed columns ("pushdown-col"), the
// ShardAggFinal merge runs vectorized, and the final answers match the
// row-protocol pushdown run bit for bit.
func TestWirePushdownColumnarStates(t *testing.T) {
	rowFed := wireShardedFed(t, 4, true, false)
	wireFed := wireShardedFed(t, 4, true, true)
	rowRes, err := rowFed.Query(shardedBenchQuery)
	if err != nil {
		t.Fatal(err)
	}
	wireRes, err := wireFed.Query(shardedBenchQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(rowRes.Rows.Rows) != len(wireRes.Rows.Rows) {
		t.Fatalf("pushdown returned %d rows, pushdown-col %d", len(rowRes.Rows.Rows), len(wireRes.Rows.Rows))
	}
	for ri := range rowRes.Rows.Rows {
		for ci := range rowRes.Rows.Rows[ri] {
			if !cellsBitIdentical(rowRes.Rows.Rows[ri][ci], wireRes.Rows.Rows[ri][ci]) {
				t.Fatalf("cell (%d,%d) diverged: %#v vs %#v",
					ri, ci, rowRes.Rows.Rows[ri][ci], wireRes.Rows.Rows[ri][ci])
			}
		}
	}
	seen := map[string]bool{}
	for _, d := range wireFed.RouteDecisions(0) {
		if d.Policy == "ship" {
			seen[d.Reason] = true
		}
	}
	if !seen["pushdown-col"] {
		t.Errorf("ship modes = %v, want pushdown-col entries", seen)
	}
}

// TestWireSmoke is the WIRE_CHECK CI gate entry point — see bench_wire_test.go
// for the measured floors. This test only guards that the gate is wired: it
// fails fast if the flag plumbing is broken.
func TestWireSmoke(t *testing.T) {
	if os.Getenv("WIRE_CHECK") != "1" {
		t.Skip("set WIRE_CHECK=1 to enforce the columnar wire floors")
	}
	result := measureWireStudy(t.Fatalf)
	requireWireFloors(t, result)
	if err := writeWireBenchFile(result); err != nil {
		t.Fatal(err)
	}
}

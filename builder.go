package fedqcc

import (
	"fmt"
	"io"

	"repro/internal/catalog"
	"repro/internal/integrator"
	"repro/internal/metawrapper"
	"repro/internal/network"
	"repro/internal/remote"
	"repro/internal/scenario"
	"repro/internal/simclock"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/wrapper"
)

func parseSQL(sql string) (*sqlparser.SelectStmt, error) { return sqlparser.Parse(sql) }

// ServerProfile names a hardware/contention preset for AddServer.
type ServerProfile int

const (
	// ProfileModest is an older machine: modest CPU, spinning disks, small
	// memory (the paper's S1).
	ProfileModest ServerProfile = iota
	// ProfileMidrange is a mid-range machine (S2).
	ProfileMidrange
	// ProfilePowerful is a fast machine with a large but churn-prone buffer
	// pool (S3).
	ProfilePowerful
)

func profileConfig(p ServerProfile, id string) remote.Config {
	switch p {
	case ProfilePowerful:
		return remote.ProfileS3(id)
	case ProfileMidrange:
		return remote.ProfileS2(id)
	default:
		return remote.ProfileS1(id)
	}
}

// LinkSpec describes the network path to a server.
type LinkSpec struct {
	// LatencyMS is the one-way latency (default 5).
	LatencyMS float64
	// BandwidthKBps is the throughput (default 2000; 0 keeps the default,
	// negative means unlimited).
	BandwidthKBps float64
	// JitterFrac adds ±JitterFrac·latency noise.
	JitterFrac float64
}

// TableSpec describes a synthetic table for AddGeneratedTable. Use the
// workload tables via StandardSchema for the paper's schema.
type TableSpec = storage.TableGen

// StandardSchema returns the paper's sample schema generators at the given
// scale divisor (1 = 100k-row large tables).
func StandardSchema(scale int) []TableSpec { return storage.SampleSchema(scale) }

// Builder assembles arbitrary federations.
type Builder struct {
	clock   *simclock.Clock
	topo    *network.Topology
	servers map[string]*remote.Server
	kinds   map[string]string // serverID → wrapper kind
	seed    int64
	err     error

	shardDecls []shardDecl
	// shardPhys marks per-server physical shard tables that Build must not
	// surface as nicknames of their own.
	shardPhys map[string]map[string]bool

	replDecls []replDecl
	// replPhys marks per-server tables declared via AddReplicatedTable, so
	// Build registers them through RegisterReplicated (preserving the
	// declared origin order) instead of auto-discovery.
	replPhys map[string]map[string]bool
}

// shardDecl is a table declared via AddShardedTable, registered whole at
// Build time.
type shardDecl struct {
	name   string
	schema *sqltypes.Schema
	spec   *catalog.ShardSpec
	shards []catalog.Shard
}

// replDecl is a table declared via AddReplicatedTable, registered at Build
// time through catalog.RegisterReplicated.
type replDecl struct {
	name       string
	schema     *sqltypes.Schema
	placements []catalog.Placement
}

// NewBuilder starts a federation definition. Seed drives data generation;
// servers generating the same table with the same seed hold identical
// replicas.
func NewBuilder(seed int64) *Builder {
	if seed == 0 {
		seed = 42
	}
	return &Builder{
		clock:   simclock.New(),
		topo:    network.NewTopology(),
		servers: map[string]*remote.Server{},
		kinds:   map[string]string{},
		seed:    seed,
	}
}

func (b *Builder) fail(err error) *Builder {
	if b.err == nil {
		b.err = err
	}
	return b
}

// AddServer registers a remote relational server with the given profile and
// link.
func (b *Builder) AddServer(id string, profile ServerProfile, link LinkSpec) *Builder {
	return b.addServer(id, profile, link, "relational")
}

// AddFileServer registers a file-wrapped source: it can be scanned but
// provides no cost estimates, exercising QCC's seeding path.
func (b *Builder) AddFileServer(id string, profile ServerProfile, link LinkSpec) *Builder {
	return b.addServer(id, profile, link, "file")
}

func (b *Builder) addServer(id string, profile ServerProfile, link LinkSpec, kind string) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.servers[id]; dup {
		return b.fail(fmt.Errorf("fedqcc: duplicate server %q", id))
	}
	srv := remote.NewServer(profileConfig(profile, id))
	b.servers[id] = srv
	b.kinds[id] = kind
	lat := link.LatencyMS
	if lat == 0 {
		lat = 5
	}
	bw := link.BandwidthKBps
	if bw == 0 {
		bw = 2000
	}
	if bw < 0 {
		bw = 0 // unlimited
	}
	b.topo.AddLink(id, network.NewLink(network.LinkConfig{
		LatencyMS:     lat,
		BandwidthKBps: bw,
		JitterFrac:    link.JitterFrac,
		Seed:          b.seed + int64(len(b.servers)),
	}))
	return b
}

// AddGeneratedTable generates the table on the named server using the
// builder's seed.
func (b *Builder) AddGeneratedTable(serverID string, spec TableSpec) *Builder {
	if b.err != nil {
		return b
	}
	srv, ok := b.servers[serverID]
	if !ok {
		return b.fail(fmt.Errorf("fedqcc: unknown server %q", serverID))
	}
	tab, err := spec.Generate(b.seed)
	if err != nil {
		return b.fail(err)
	}
	srv.AddTable(tab)
	return b
}

// AddShardedTable generates the table once with the builder's seed and
// hash-partitions its rows on shardColumn across the named servers: shard i
// lands on servers[i] as the physical table <name>__s<i>, and Build registers
// the whole table as one sharded nickname. With a single server the physical
// table keeps the plain name and the nickname registers unsharded —
// bit-identical to AddGeneratedTable on that server.
func (b *Builder) AddShardedTable(spec TableSpec, shardColumn string, servers ...string) *Builder {
	if b.err != nil {
		return b
	}
	if len(servers) == 0 {
		return b.fail(fmt.Errorf("fedqcc: sharded table %q needs at least one server", spec.Name))
	}
	whole, err := spec.Generate(b.seed)
	if err != nil {
		return b.fail(err)
	}
	keyIdx, err := whole.Schema().ColumnIndex("", shardColumn)
	if err != nil {
		return b.fail(fmt.Errorf("fedqcc: sharded table %q: %w", spec.Name, err))
	}
	shardSpec := &catalog.ShardSpec{Column: shardColumn}
	parts := make([][]sqltypes.Row, len(servers))
	for _, row := range whole.Snapshot() {
		i := shardSpec.ShardFor(row[keyIdx], len(servers))
		parts[i] = append(parts[i], row)
	}
	var shards []catalog.Shard
	for i, sid := range servers {
		srv, ok := b.servers[sid]
		if !ok {
			return b.fail(fmt.Errorf("fedqcc: unknown server %q", sid))
		}
		shardName := catalog.ShardTableName(spec.Name, i)
		if len(servers) == 1 {
			shardName = spec.Name
		}
		tab := storage.NewTable(shardName, whole.Schema())
		if err := tab.Append(parts[i]...); err != nil {
			return b.fail(err)
		}
		for _, ig := range spec.Indexes {
			ixName := fmt.Sprintf("%s_s%d", ig.Name, i)
			if len(servers) == 1 {
				ixName = ig.Name
			}
			if _, err := tab.CreateIndex(ixName, ig.Column, ig.Kind); err != nil {
				return b.fail(err)
			}
		}
		srv.AddTable(tab)
		if b.shardPhys == nil {
			b.shardPhys = map[string]map[string]bool{}
		}
		if b.shardPhys[sid] == nil {
			b.shardPhys[sid] = map[string]bool{}
		}
		b.shardPhys[sid][shardName] = true
		shards = append(shards, catalog.Shard{
			Index:      i,
			Placements: []catalog.Placement{{ServerID: sid, RemoteTable: shardName}},
		})
	}
	b.shardDecls = append(b.shardDecls, shardDecl{
		name:   spec.Name,
		schema: whole.Schema(),
		spec:   shardSpec,
		shards: shards,
	})
	return b
}

// AddReplicatedTable generates the table once with the builder's seed and
// places an identical replica on every named server (the first is the
// origin), registering it at Build through catalog.RegisterReplicated with
// exactly the declared server order. Pair it with EnableWeightedRouting so
// fragments over the table route to the replica scoring best. With a single
// server it degrades to AddGeneratedTable on that server.
func (b *Builder) AddReplicatedTable(spec TableSpec, servers ...string) *Builder {
	if b.err != nil {
		return b
	}
	if len(servers) == 0 {
		return b.fail(fmt.Errorf("fedqcc: replicated table %q needs at least one server", spec.Name))
	}
	var schema *sqltypes.Schema
	var placements []catalog.Placement
	for _, sid := range servers {
		srv, ok := b.servers[sid]
		if !ok {
			return b.fail(fmt.Errorf("fedqcc: unknown server %q", sid))
		}
		tab, err := spec.Generate(b.seed) // same seed → identical replicas
		if err != nil {
			return b.fail(err)
		}
		schema = tab.Schema()
		srv.AddTable(tab)
		if b.replPhys == nil {
			b.replPhys = map[string]map[string]bool{}
		}
		if b.replPhys[sid] == nil {
			b.replPhys[sid] = map[string]bool{}
		}
		b.replPhys[sid][spec.Name] = true
		placements = append(placements, catalog.Placement{ServerID: sid, RemoteTable: spec.Name})
	}
	b.replDecls = append(b.replDecls, replDecl{name: spec.Name, schema: schema, placements: placements})
	return b
}

// AddCSVTable loads a table from CSV (typed header "name:KIND", see
// storage.ReadCSV) onto the named server.
func (b *Builder) AddCSVTable(serverID, tableName string, r io.Reader) *Builder {
	if b.err != nil {
		return b
	}
	srv, ok := b.servers[serverID]
	if !ok {
		return b.fail(fmt.Errorf("fedqcc: unknown server %q", serverID))
	}
	tab, err := storage.ReadCSV(tableName, r)
	if err != nil {
		return b.fail(err)
	}
	srv.AddTable(tab)
	return b
}

// AddIndex creates an index on a previously-added table. Sorted indexes
// serve range probes; hash indexes serve equality only.
func (b *Builder) AddIndex(serverID, table, indexName, column string, sorted bool) *Builder {
	if b.err != nil {
		return b
	}
	srv, ok := b.servers[serverID]
	if !ok {
		return b.fail(fmt.Errorf("fedqcc: unknown server %q", serverID))
	}
	tab := srv.Table(table)
	if tab == nil {
		return b.fail(fmt.Errorf("fedqcc: server %q has no table %q", serverID, table))
	}
	kind := storage.IndexHash
	if sorted {
		kind = storage.IndexSorted
	}
	if _, err := tab.CreateIndex(indexName, column, kind); err != nil {
		return b.fail(err)
	}
	return b
}

// Build wires the catalog (nicknames inferred from table placement: every
// table name becomes a nickname hosted by all servers that generated it),
// the meta-wrapper, and the integrator.
func (b *Builder) Build() (*Federation, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.servers) == 0 {
		return nil, fmt.Errorf("fedqcc: federation needs at least one server")
	}
	cat := catalog.New()
	// Deterministic nickname discovery: walk servers sorted by ID.
	ids := make([]string, 0, len(b.servers))
	for id := range b.servers {
		ids = append(ids, id)
	}
	sortStrings(ids)
	nicknames := map[string]*catalog.Nickname{}
	var order []string
	for _, id := range ids {
		srv := b.servers[id]
		for _, tname := range srv.Tables() {
			if b.shardPhys[id][tname] || b.replPhys[id][tname] {
				continue // shard or replica of a declared nickname
			}
			n, ok := nicknames[tname]
			if !ok {
				n = &catalog.Nickname{Name: tname, Schema: srv.Table(tname).Schema()}
				nicknames[tname] = n
				order = append(order, tname)
			}
			n.Placements = append(n.Placements, catalog.Placement{
				ServerID:    id,
				RemoteTable: tname,
				Replica:     len(n.Placements) > 0,
			})
		}
	}
	if len(order) == 0 && len(b.shardDecls) == 0 && len(b.replDecls) == 0 {
		return nil, fmt.Errorf("fedqcc: federation has no tables")
	}
	for _, name := range order {
		if err := cat.Register(nicknames[name]); err != nil {
			return nil, err
		}
	}
	for _, decl := range b.shardDecls {
		if err := cat.RegisterSharded(decl.name, decl.schema, decl.spec, decl.shards); err != nil {
			return nil, err
		}
	}
	for _, decl := range b.replDecls {
		if err := cat.RegisterReplicated(decl.name, decl.schema, decl.placements); err != nil {
			return nil, err
		}
	}
	var wrappers []wrapper.Wrapper
	for _, id := range ids {
		if b.kinds[id] == "file" {
			wrappers = append(wrappers, wrapper.NewFile(b.servers[id], b.topo))
		} else {
			wrappers = append(wrappers, wrapper.NewRelational(b.servers[id], b.topo))
		}
	}
	mw := metawrapper.New(wrappers...)
	iiNode := remote.NewServer(remote.Config{
		ID: "II",
		Hardware: remote.HardwareProfile{
			CPUOpsPerMS:      3000,
			IOPagesPerMS:     100,
			CachedPagesPerMS: 3000,
			FixedOverheadMS:  0.5,
		},
		Contention: remote.ContentionProfile{CPU: 0.5, IO: 0.5, BufferChurn: 0.2, QueueAmp: 0.5},
	})
	ii := integrator.New(integrator.Config{
		Catalog: cat,
		MW:      mw,
		Node:    iiNode,
		Clock:   b.clock,
	})
	return fromScenario(&scenario.Scenario{
		Clock:   b.clock,
		Servers: b.servers,
		Topo:    b.topo,
		Catalog: cat,
		MW:      mw,
		IINode:  iiNode,
		II:      ii,
	}), nil
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ExportCSV writes a server's table as CSV with a typed header.
func (f *Federation) ExportCSV(serverID, table string, w io.Writer) error {
	srv, ok := f.servers[serverID]
	if !ok {
		return fmt.Errorf("fedqcc: unknown server %q", serverID)
	}
	tab := srv.Table(table)
	if tab == nil {
		return fmt.Errorf("fedqcc: server %q has no table %q", serverID, table)
	}
	return tab.WriteCSV(w)
}

// Schema returns the registered schema of a nickname.
func (f *Federation) Schema(nickname string) (*sqltypes.Schema, error) {
	n, err := f.catalog.Lookup(nickname)
	if err != nil {
		return nil, err
	}
	return n.Schema, nil
}

// Nicknames lists the registered nicknames.
func (f *Federation) Nicknames() []string { return f.catalog.Names() }

// PlacementsOf lists the servers hosting a nickname.
func (f *Federation) PlacementsOf(nickname string) ([]string, error) {
	n, err := f.catalog.Lookup(nickname)
	if err != nil {
		return nil, err
	}
	return n.Servers(), nil
}

// Admission-control integration tests: the gating scheduler in front of the
// integrator must be invisible when disabled (bit-identical results, charges
// and spans) and, under overload, must protect interactive latency while
// queueing or shedding batch work with typed, errors.Is-matchable errors.
package fedqcc_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	fedqcc "repro"
	"repro/internal/experiment"
	"repro/internal/workload"
)

// TestAdmissionDisabledIdentity runs the same workload through a default
// federation and through one that had a restrictive admission policy imposed
// and then disabled. Results, response times, routes, queue waits, span trees
// and the final virtual clock must match bit for bit: the pass-through path
// may not perturb the engine.
func TestAdmissionDisabledIdentity(t *testing.T) {
	sqls := soakStatements(16)

	run := func(configure func(*fedqcc.Federation)) ([]*fedqcc.QueryResult, []string, fedqcc.Time) {
		fed := soakFederation(t)
		fed.EnableTelemetry()
		configure(fed)
		results := make([]*fedqcc.QueryResult, len(sqls))
		trees := make([]string, len(sqls))
		for i, q := range sqls {
			res, err := fed.Query(q)
			if err != nil {
				t.Fatalf("query %d (%s): %v", i, q, err)
			}
			results[i] = res
			if tr := fed.Telemetry().Tracer().Last(); tr != nil {
				trees[i] = tr.Tree()
			}
		}
		return results, trees, fed.Now()
	}

	base, baseTrees, baseClock := run(func(*fedqcc.Federation) {})
	toggled, togTrees, togClock := run(func(fed *fedqcc.Federation) {
		// Impose a restrictive policy, then revert: Disable must restore the
		// exact pass-through, not merely "roughly unlimited" behaviour.
		fed.Admission().SetPolicy(fedqcc.AdmissionPolicy{
			MaxConcurrent: 1,
			Classes: []fedqcc.AdmissionClassConfig{
				{Name: fedqcc.ClassInteractive, Priority: 10, CeilingMS: 10, MaxConcurrent: 1, QueueDeadline: 100},
				{Name: fedqcc.ClassBatch, HoldCostMS: 1, QueueDeadline: 100},
			},
		})
		fed.Admission().Disable()
	})

	for i := range sqls {
		if diff := experiment.RelationsEquivalent(base[i].Rows, toggled[i].Rows, true); diff != "" {
			t.Errorf("query %d: rows differ after disable: %s", i, diff)
		}
		if base[i].ResponseTime != toggled[i].ResponseTime {
			t.Errorf("query %d: response %v vs %v", i, base[i].ResponseTime, toggled[i].ResponseTime)
		}
		if toggled[i].QueueWait != 0 || base[i].QueueWait != 0 {
			t.Errorf("query %d: pass-through queue wait %v/%v, want 0", i, base[i].QueueWait, toggled[i].QueueWait)
		}
		if fmt.Sprint(base[i].Route) != fmt.Sprint(toggled[i].Route) {
			t.Errorf("query %d: route %v vs %v", i, base[i].Route, toggled[i].Route)
		}
		if baseTrees[i] != togTrees[i] {
			t.Errorf("query %d: span tree diverged after disable:\n--- default ---\n%s--- toggled ---\n%s",
				i, baseTrees[i], togTrees[i])
		}
	}
	if baseClock != togClock {
		t.Errorf("final clock %v vs %v: disabled admission changed virtual-time charges", baseClock, togClock)
	}
	if got := base[0].AdmissionClass; got == "" {
		t.Error("admitted query carries no class name")
	}
}

func p95(durations []fedqcc.Time) fedqcc.Time {
	sorted := append([]fedqcc.Time(nil), durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(0.95*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// TestAdmissionOverloadBurst drives a mixed burst at twice the global cap:
// interactive queries must stay within 1.5x their uncontended p95 latency,
// light batch queries queue but complete with correct answers, heavy batch
// queries are held and shed with typed errors, and no query is silently lost.
func TestAdmissionOverloadBurst(t *testing.T) {
	qt1, err := workload.TypeByName("QT1") // large join: the heavy batch work
	if err != nil {
		t.Fatal(err)
	}
	qt4, err := workload.TypeByName("QT4") // highly selective: interactive work
	if err != nil {
		t.Fatal(err)
	}
	interactive := workload.Instances(qt4, 4)
	lightBatch := workload.Instances(qt4, 6)[4:6]
	heavyBatch := workload.Instances(qt1, 4)

	// Uncontended baseline: the same interactive queries on an idle,
	// identically-seeded federation.
	baseFed := soakFederation(t)
	var uncontended []fedqcc.Time
	for _, q := range interactive {
		res, err := baseFed.Query(q)
		if err != nil {
			t.Fatalf("uncontended %s: %v", q, err)
		}
		uncontended = append(uncontended, res.ResponseTime)
	}
	baseRows := map[string]*fedqcc.QueryResult{}
	for _, q := range lightBatch {
		res, err := baseFed.Query(q)
		if err != nil {
			t.Fatalf("baseline %s: %v", q, err)
		}
		baseRows[q] = res
	}

	fed := soakFederation(t)

	// Derive the hold threshold from the engine's own calibrated estimates so
	// the test tracks the cost model instead of hard-coding milliseconds.
	maxLight, minHeavy := 0.0, math.Inf(1)
	for _, q := range lightBatch {
		info, err := fed.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		maxLight = math.Max(maxLight, info.TotalCostMS)
	}
	for _, q := range heavyBatch {
		info, err := fed.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		minHeavy = math.Min(minHeavy, info.TotalCostMS)
	}
	if maxLight >= minHeavy {
		t.Fatalf("cost model does not separate light (%.2f) from heavy (%.2f) batch work", maxLight, minHeavy)
	}
	hold := (maxLight + minHeavy) / 2

	fed.Admission().SetPolicy(fedqcc.AdmissionPolicy{
		MaxConcurrent: 5, // burst of 10 = 2x the global cap
		Classes: []fedqcc.AdmissionClassConfig{
			{Name: fedqcc.ClassInteractive, Priority: 10, CeilingMS: fedqcc.DefaultAdmissionPolicy().Classes[0].CeilingMS},
			{Name: fedqcc.ClassBatch, MaxConcurrent: 1, HoldCostMS: hold, QueueDeadline: 60000},
		},
	})

	type outcome struct {
		sql   string
		class string
		res   *fedqcc.QueryResult
		err   error
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		outcomes []outcome
	)
	launch := func(sql, class string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := fedqcc.WithQueryClass(context.Background(), class)
			res, err := fed.QueryContext(ctx, sql)
			mu.Lock()
			outcomes = append(outcomes, outcome{sql: sql, class: class, res: res, err: err})
			mu.Unlock()
		}()
	}
	for _, q := range interactive {
		launch(q, fedqcc.ClassInteractive)
	}
	for _, q := range lightBatch {
		launch(q, fedqcc.ClassBatch)
	}
	for _, q := range heavyBatch {
		launch(q, fedqcc.ClassBatch)
	}
	wg.Wait()

	if len(outcomes) != 10 {
		t.Fatalf("lost results: %d outcomes for 10 submissions", len(outcomes))
	}
	var interactiveLat []fedqcc.Time
	successes, rejections := 0, 0
	heavySeen := 0
	for _, o := range outcomes {
		switch {
		case o.err == nil:
			successes++
			if o.res == nil {
				t.Fatalf("nil result without error for %s", o.sql)
			}
			if o.class == fedqcc.ClassInteractive {
				interactiveLat = append(interactiveLat, o.res.ResponseTime+o.res.QueueWait)
				if o.res.AdmissionClass != fedqcc.ClassInteractive {
					t.Errorf("interactive query admitted as %q", o.res.AdmissionClass)
				}
			} else if base, ok := baseRows[o.sql]; ok {
				if diff := experiment.RelationsEquivalent(base.Rows, o.res.Rows, true); diff != "" {
					t.Errorf("light batch %s: wrong answer under contention: %s", o.sql, diff)
				}
			} else {
				t.Errorf("heavy batch query %s completed; expected a shed", o.sql)
			}
		default:
			rejections++
			heavySeen++
			if !errors.Is(o.err, fedqcc.ErrAdmissionRejected) {
				t.Errorf("%s: rejection does not match ErrAdmissionRejected: %v", o.sql, o.err)
			}
			if !errors.Is(o.err, fedqcc.ErrQueueTimeout) {
				t.Errorf("%s: shed does not match ErrQueueTimeout: %v", o.sql, o.err)
			}
			var rej *fedqcc.AdmissionRejection
			if !errors.As(o.err, &rej) {
				t.Errorf("%s: error is not a typed *AdmissionRejection: %v", o.sql, o.err)
			} else if rej.Class != fedqcc.ClassBatch {
				t.Errorf("%s: shed from class %q, want batch", o.sql, rej.Class)
			}
		}
	}
	if successes+rejections != 10 {
		t.Fatalf("successes %d + rejections %d != 10", successes, rejections)
	}
	if successes != 6 || rejections != 4 {
		t.Errorf("got %d successes / %d rejections, want 6/4 (interactive+light admitted, heavy shed)", successes, rejections)
	}
	if len(interactiveLat) != 4 {
		t.Fatalf("only %d interactive queries completed", len(interactiveLat))
	}

	baseP95, burstP95 := p95(uncontended), p95(interactiveLat)
	if float64(burstP95) > 1.5*float64(baseP95) {
		t.Errorf("interactive p95 %v under burst exceeds 1.5x uncontended p95 %v", burstP95, baseP95)
	}

	st := fed.Admission().Stats()
	var batch *fedqcc.AdmissionClassStats
	for i := range st.Classes {
		if st.Classes[i].Name == fedqcc.ClassBatch {
			batch = &st.Classes[i]
		}
	}
	if batch == nil {
		t.Fatal("no batch class in admission stats")
	}
	if batch.Held < 4 || batch.Shed < 4 {
		t.Errorf("batch stats held=%d shed=%d, want >= 4 each", batch.Held, batch.Shed)
	}
	if batch.Admitted != 2 {
		t.Errorf("batch admitted %d, want 2 light queries", batch.Admitted)
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("controller did not drain: running=%d queued=%d", st.Running, st.Queued)
	}

	// The queue log records the wait alongside the pure execution time.
	ls := fed.QueryLogStats()
	if ls.Retained == 0 {
		t.Error("patroller retained nothing after the burst")
	}
}

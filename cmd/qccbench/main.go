// Command qccbench regenerates every table and figure of the paper's
// evaluation section (§5):
//
//	qccbench -exp fig9    # Figure 9 (a)-(d): query-type load sensitivity
//	qccbench -exp table1  # Table 1: the server load phases
//	qccbench -exp table2  # Table 2: fixed vs dynamic assignment
//	qccbench -exp fig10   # Figure 10: QCC vs fixed assignment 1
//	qccbench -exp fig11   # Figure 11: QCC vs fixed assignment 2 (always S3)
//	qccbench -exp wire    # columnar wire protocol grid (also writes BENCH_wire.json)
//	qccbench -exp multitenant  # multi-tenant overload study (also writes BENCH_multitenant.json)
//	qccbench -exp all     # everything
//
// The -scale flag divides the paper's table sizes (1 = 100k-row large
// tables; default 20 keeps the full run to a few seconds while preserving
// every qualitative shape).
package main

import (
	"flag"
	"fmt"
	"os"

	fedqcc "repro"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig9|table1|table2|fig10|fig11|network|lb|weighted|wire|multitenant|all")
	scale := flag.Int("scale", 20, "table-size divisor (1 = paper scale, 100k-row large tables)")
	instances := flag.Int("instances", 10, "query instances per type")
	seed := flag.Int64("seed", 42, "data-generation seed")
	flag.Parse()

	opts := fedqcc.ExperimentOptions{Scale: *scale, Instances: *instances, Seed: *seed}

	needSens := *exp == "fig9" || *exp == "all"
	needGain := *exp == "table2" || *exp == "fig10" || *exp == "fig11" || *exp == "all"
	needNet := *exp == "network" || *exp == "all"
	needLB := *exp == "lb" || *exp == "all"

	var sens []fedqcc.SensitivityResult
	var outcomes []fedqcc.PhaseOutcome
	var network []fedqcc.NetworkOutcome
	var err error
	if needSens {
		sens, err = fedqcc.RunSensitivityStudy(opts)
		fail(err)
	}
	if needGain {
		outcomes, err = fedqcc.RunGainStudy(opts)
		fail(err)
	}
	if needNet {
		network, err = fedqcc.RunNetworkStudy(opts, nil)
		fail(err)
	}
	var lb []fedqcc.LBOutcome
	if needLB {
		lb, err = fedqcc.RunLoadBalanceStudy(opts, 30)
		fail(err)
	}
	var weighted []fedqcc.WeightedOutcome
	if *exp == "weighted" || *exp == "all" {
		weighted, err = fedqcc.RunWeightedRoutingStudy(opts, 0)
		fail(err)
	}
	var wire fedqcc.WireStudyResult
	if *exp == "wire" || *exp == "all" {
		wire, err = fedqcc.RunWireStudy(opts)
		fail(err)
		fail(fedqcc.WriteWireStudy(wire, "BENCH_wire.json"))
	}
	var multitenant fedqcc.MultitenantStudyResult
	if *exp == "multitenant" || *exp == "all" {
		multitenant, err = fedqcc.RunMultitenantStudy(opts)
		fail(err)
		fail(fedqcc.WriteMultitenantStudy(multitenant, "BENCH_multitenant.json"))
	}

	switch *exp {
	case "fig9":
		fmt.Print(fedqcc.FormatFigure9(sens))
	case "table1":
		fmt.Print(fedqcc.FormatTable1())
	case "table2":
		fmt.Print(fedqcc.FormatTable2(outcomes))
	case "fig10":
		fmt.Print(fedqcc.FormatFigure10(outcomes))
	case "fig11":
		fmt.Print(fedqcc.FormatFigure11(outcomes))
	case "network":
		fmt.Print(fedqcc.FormatNetworkStudy(network))
	case "lb":
		fmt.Print(fedqcc.FormatLoadBalanceStudy(lb))
	case "weighted":
		fmt.Print(fedqcc.FormatWeightedRoutingStudy(weighted))
	case "wire":
		fmt.Print(fedqcc.FormatWireStudy(wire))
	case "multitenant":
		fmt.Print(fedqcc.FormatMultitenantStudy(multitenant))
	case "all":
		fmt.Print(fedqcc.FormatFigure9(sens))
		fmt.Print(fedqcc.FormatTable1())
		fmt.Println()
		fmt.Print(fedqcc.FormatTable2(outcomes))
		fmt.Println()
		fmt.Print(fedqcc.FormatFigure10(outcomes))
		fmt.Println()
		fmt.Print(fedqcc.FormatFigure11(outcomes))
		fmt.Println()
		fmt.Print(fedqcc.FormatNetworkStudy(network))
		fmt.Println()
		fmt.Print(fedqcc.FormatLoadBalanceStudy(lb))
		fmt.Println()
		fmt.Print(fedqcc.FormatWeightedRoutingStudy(weighted))
		fmt.Println()
		fmt.Print(fedqcc.FormatWireStudy(wire))
		fmt.Println()
		fmt.Print(fedqcc.FormatMultitenantStudy(multitenant))
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "qccbench:", err)
		os.Exit(1)
	}
}

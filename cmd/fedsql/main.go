// Command fedsql runs ad-hoc federated SQL against the paper's three-server
// demo federation, printing results, routing, and timing. Queries come from
// arguments or, with no arguments, from stdin (one statement per line; lines
// starting with "\" are commands — see \help).
//
//	fedsql "SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 5000"
//	echo 'SELECT SUM(l.l_price) FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9000' | fedsql
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	fedqcc "repro"
	"repro/internal/repl"
)

func main() {
	scale := flag.Int("scale", 50, "table-size divisor (1 = paper scale)")
	noQCC := flag.Bool("no-qcc", false, "run without the query cost calibrator")
	flag.Parse()

	fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedsql:", err)
		os.Exit(1)
	}
	var cal *fedqcc.Calibrator
	if !*noQCC {
		cal = fed.EnableQCC(fedqcc.QCCOptions{})
	}
	session := &repl.Session{Fed: fed, Cal: cal, Out: os.Stdout}

	if flag.NArg() > 0 {
		for _, sql := range flag.Args() {
			session.Execute(sql)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		session.Execute(sc.Text())
	}
}

// Command qccdump runs a scripted load scenario against the demo federation
// with QCC attached and dumps the calibrator's internal state after each
// step: per-server factors, reliability, fencing, the adaptive recalibration
// interval, and the query patroller log. It demonstrates the full §3
// machinery end to end in a few hundred milliseconds of wall time.
package main

import (
	"flag"
	"fmt"
	"os"

	fedqcc "repro"
)

func main() {
	scale := flag.Int("scale", 50, "table-size divisor")
	telemetry := flag.Bool("telemetry", false, "collect and dump traces, metrics and the calibration timeline")
	flag.Parse()

	fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qccdump:", err)
		os.Exit(1)
	}
	if *telemetry {
		fed.EnableTelemetry()
	}
	cal := fed.EnableQCC(fedqcc.QCCOptions{})

	const q = "SELECT SUM(o.o_amount) FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id WHERE c.c_discount > 0.01"

	step(fed, cal, "warm-up: 3 calm queries", func() {
		for i := 0; i < 3; i++ {
			must(fed.Query(q))
		}
	})

	step(fed, cal, "load spike on S3 + 4 queries", func() {
		h, _ := fed.Server("S3")
		h.SetLoad(1)
		for i := 0; i < 4; i++ {
			must(fed.Query(q))
		}
		cal.PublishNow()
	})

	step(fed, cal, "S1 goes down; daemon probes detect it", func() {
		h, _ := fed.Server("S1")
		h.SetDown(true)
		cal.ProbeNow()
		must(fed.Query(q))
	})

	step(fed, cal, "S1 recovers; load on S3 clears", func() {
		h1, _ := fed.Server("S1")
		h1.SetDown(false)
		h3, _ := fed.Server("S3")
		h3.SetLoad(0)
		cal.ProbeNow()
		for i := 0; i < 3; i++ {
			must(fed.Query(q))
		}
		cal.PublishNow()
	})

	fmt.Println("query log:")
	for _, e := range fed.QueryLog() {
		status := "ok"
		if e.Err != "" {
			status = "ERR"
		}
		fmt.Printf("  [%8s] %-3s %.2fms\n", e.SubmitAt, status, float64(e.ResponseTime))
	}

	if *telemetry {
		tel := fed.Telemetry()
		fmt.Println("\nlast query trace:")
		fmt.Print(tel.Tracer().Last().Tree())
		fmt.Println("\nmetrics:")
		fmt.Print(fedqcc.FormatMetrics(tel.Metrics()))
		fmt.Println("\ncalibration timeline:")
		fmt.Print(fedqcc.FormatTimeline(tel.Timelines()))
	}
}

func step(fed *fedqcc.Federation, cal *fedqcc.Calibrator, title string, fn func()) {
	fmt.Printf("== %s ==\n", title)
	fn()
	for _, id := range fed.ServerIDs() {
		fmt.Printf("  %s: factor=%.3f reliability=%.3f fenced=%v\n",
			id, cal.ServerFactor(id), cal.ReliabilityFactor(id), cal.IsFenced(id))
	}
	st := cal.StatsSnapshot()
	fmt.Printf("  cycle=%s compiles=%d runs=%d errors=%d t=%s\n\n",
		cal.RecalibrationInterval(), st.Compiles, st.Runs, st.Errors, fed.Now())
}

func must(res *fedqcc.QueryResult, err error) {
	if err != nil {
		fmt.Println("  query error:", err)
	}
}

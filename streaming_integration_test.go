package fedqcc_test

import (
	"math"
	"testing"

	fedqcc "repro"
	"repro/internal/sqltypes"
)

// slowLinkFederation builds a single-server federation over a
// bandwidth-limited, jitter-free link so streamed and monolithic runs of the
// same workload are directly comparable. Scale 10 gives 10k-row large tables.
func slowLinkFederation(t *testing.T) *fedqcc.Federation {
	t.Helper()
	b := fedqcc.NewBuilder(7).
		AddServer("S1", fedqcc.ProfileMidrange, fedqcc.LinkSpec{LatencyMS: 20, BandwidthKBps: 50})
	for _, spec := range fedqcc.StandardSchema(10) {
		b.AddGeneratedTable("S1", spec)
	}
	fed, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func relationsIdentical(a, b *sqltypes.Relation) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return false
			}
		}
	}
	return true
}

// TestStreamingFasterThanStoreAndForward is the PR's acceptance check: a
// >=10k-row fragment shipped over a bandwidth-limited link must finish
// strictly sooner streamed (remote compute overlapping transfer) than with
// BatchRows=0 store-and-forward, while producing identical rows — and the
// rows must stay identical across scan, join, aggregate and order-by shapes.
func TestStreamingFasterThanStoreAndForward(t *testing.T) {
	queries := []string{
		"SELECT l.l_orderkey, l.l_price FROM lineitem AS l",                                     // large scan
		"SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey", // join
		"SELECT l.l_orderkey, SUM(l.l_price) FROM lineitem AS l GROUP BY l.l_orderkey",          // aggregate
		"SELECT l.l_orderkey FROM lineitem AS l ORDER BY l.l_price DESC",                        // order-by
	}

	streamed := slowLinkFederation(t)
	if streamed.BatchRows() <= 0 {
		t.Fatal("streaming must be on by default")
	}
	monolithic := slowLinkFederation(t)
	monolithic.SetBatchRows(0)
	if monolithic.BatchRows() != 0 {
		t.Fatal("SetBatchRows(0) must disable streaming")
	}

	for i, sql := range queries {
		rs, err := streamed.Query(sql)
		if err != nil {
			t.Fatalf("streamed %s: %v", sql, err)
		}
		rm, err := monolithic.Query(sql)
		if err != nil {
			t.Fatalf("monolithic %s: %v", sql, err)
		}
		if !relationsIdentical(rs.Rows, rm.Rows) {
			t.Fatalf("rows diverge for %s: %d streamed vs %d monolithic",
				sql, len(rs.Rows.Rows), len(rm.Rows.Rows))
		}
		if rs.FirstRowTime > rs.ResponseTime {
			t.Fatalf("%s: first row (%v) after response (%v)", sql, rs.FirstRowTime, rs.ResponseTime)
		}
		if i == 0 {
			// The pipelining win itself, on the large scan: production of
			// batch k+1 overlaps the transfer of batch k.
			if len(rs.Rows.Rows) < 10000 {
				t.Fatalf("acceptance scenario needs >=10k rows, got %d", len(rs.Rows.Rows))
			}
			if rs.ResponseTime >= rm.ResponseTime {
				t.Fatalf("streamed response %v must beat store-and-forward %v", rs.ResponseTime, rm.ResponseTime)
			}
			if rs.FirstRowTime <= 0 || rs.FirstRowTime >= rs.ResponseTime {
				t.Fatalf("time-to-first-row %v must fall strictly inside (0, %v)", rs.FirstRowTime, rs.ResponseTime)
			}
		}
	}
}

// TestStreamingBatchSpansSumToFragmentTime checks the trace-level acceptance
// invariant: on a multi-batch streamed fragment the wrapper.execute span's
// children (network.send, remote.exec, one network.recv per batch) sum
// EXACTLY to the fragment's response time, and the streaming-only metric
// series appear.
func TestStreamingBatchSpansSumToFragmentTime(t *testing.T) {
	fed := slowLinkFederation(t)
	tel := fed.EnableTelemetry()

	res, err := fed.Query("SELECT l.l_orderkey, l.l_price FROM lineitem AS l")
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstRowTime <= 0 {
		t.Fatalf("first-row time: %v", res.FirstRowTime)
	}

	tr := tel.Tracer().Last()
	if tr == nil || !tr.Done() || tr.Err() != "" {
		t.Fatalf("trace incomplete: %+v", tr)
	}
	type wexecSum struct {
		dur      float64
		children float64
		recvs    int
	}
	var wexec *wexecSum
	for _, c := range tr.Root.Children() {
		if c.Name() != "fragment" {
			continue
		}
		for _, cc := range c.Children() {
			if cc.Name() != "wrapper.execute" {
				continue
			}
			w := &wexecSum{dur: float64(cc.Dur())}
			for _, b := range cc.Children() {
				w.children += float64(b.Dur())
				if b.Name() == "network.recv" {
					w.recvs++
				}
			}
			wexec = w
		}
	}
	if wexec == nil {
		t.Fatalf("no wrapper.execute span in trace:\n%s", tr.Tree())
	}
	if wexec.recvs < 2 {
		t.Fatalf("10k-row scan must stream multiple batches, saw %d recv spans:\n%s", wexec.recvs, tr.Tree())
	}
	if math.Abs(wexec.children-wexec.dur) > 1e-6 {
		t.Fatalf("per-batch spans sum to %.9f, fragment response %.9f", wexec.children, wexec.dur)
	}

	if h := tel.Metrics().HistogramOf("query.first_row_ms", ""); h == nil || h.Count() < 1 {
		t.Fatal("query.first_row_ms must record on streamed queries")
	}
	if h := tel.Metrics().HistogramOf("network.batch_bytes", "S1"); h == nil || h.Count() < 2 {
		t.Fatal("network.batch_bytes must record one sample per streamed batch")
	}
}

// TestMonolithicModeLeavesStreamingSeriesSilent pins the escape hatch's
// telemetry contract: with BatchRows=0 the streaming-only series never
// appear, so dashboards see exactly the pre-streaming metric set.
func TestMonolithicModeLeavesStreamingSeriesSilent(t *testing.T) {
	fed := slowLinkFederation(t)
	fed.SetBatchRows(0)
	tel := fed.EnableTelemetry()
	if _, err := fed.Query("SELECT l.l_orderkey FROM lineitem AS l"); err != nil {
		t.Fatal(err)
	}
	if h := tel.Metrics().HistogramOf("query.first_row_ms", ""); h != nil && h.Count() > 0 {
		t.Fatal("query.first_row_ms must stay silent with BatchRows=0")
	}
	if h := tel.Metrics().HistogramOf("network.batch_bytes", "S1"); h != nil && h.Count() > 0 {
		t.Fatal("network.batch_bytes must stay silent with BatchRows=0")
	}
}

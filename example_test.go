package fedqcc_test

import (
	"fmt"
	"log"

	fedqcc "repro"
)

// ExampleNewPaperFederation shows the minimal query loop: build the paper's
// three-server federation and run federated SQL against it.
func ExampleNewPaperFederation() {
	fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: 200})
	if err != nil {
		log.Fatal(err)
	}
	res, err := fed.Query("SELECT COUNT(*) FROM parts AS p")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Rows.Rows[0][0].Int())
	// Output: 5
}

// ExampleFederation_EnableQCC demonstrates transparent calibration: load a
// server, let QCC observe the estimated/actual gap, and watch the published
// factor rise above 1.
func ExampleFederation_EnableQCC() {
	fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: 100})
	if err != nil {
		log.Fatal(err)
	}
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})

	const q = "SELECT SUM(o.o_amount) FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id WHERE c.c_discount > 0.01"
	res, _ := fed.Query(q)
	busy := res.Route["QF1"]
	h, _ := fed.Server(busy)
	h.SetLoad(1.0)
	for i := 0; i < 3; i++ {
		fed.Query(q) //nolint:errcheck
	}
	cal.PublishNow()
	fmt.Println(cal.ServerFactor(busy) > 1.2)
	// Output: true
}

// ExampleBuilder assembles a custom two-server federation from generated
// and CSV tables.
func ExampleBuilder() {
	fed, err := fedqcc.NewBuilder(7).
		AddServer("east", fedqcc.ProfileMidrange, fedqcc.LinkSpec{LatencyMS: 3}).
		AddServer("west", fedqcc.ProfilePowerful, fedqcc.LinkSpec{LatencyMS: 12}).
		AddGeneratedTable("east", fedqcc.StandardSchema(200)[3]). // parts
		AddGeneratedTable("west", fedqcc.StandardSchema(200)[3]). // replica
		Build()
	if err != nil {
		log.Fatal(err)
	}
	hosts, _ := fed.PlacementsOf("parts")
	fmt.Println(len(hosts))
	// Output: 2
}

// ExampleCalibrator_WhatIf derives alternative plans on the statistics-only
// simulated federation without executing anything in production.
func ExampleCalibrator_WhatIf() {
	fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: 200})
	if err != nil {
		log.Fatal(err)
	}
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})
	wi, err := cal.WhatIf()
	if err != nil {
		log.Fatal(err)
	}
	plans, err := wi.EnumeratePlans("SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 100", 0)
	if err != nil {
		log.Fatal(err)
	}
	h, _ := fed.Server("S1")
	fmt.Println(len(plans) >= 3, h.Executed())
	// Output: true 0
}

package fedqcc

import (
	"repro/internal/optimizer"
	"repro/internal/router"
)

// WeightedRoutingOptions tunes the score-based weighted replica router.
// All-zero weights select the Milvus RFC defaults (cpu 0.3, memory 0.2,
// cache locality 0.3, latency 0.2).
type WeightedRoutingOptions struct {
	// CPUWeight weights the calibration-inflation (load) sub-score.
	CPUWeight float64
	// MemoryWeight weights the reliability/queue-pressure sub-score.
	MemoryWeight float64
	// CacheWeight weights the buffer-pool residency sub-score.
	CacheWeight float64
	// LatencyWeight weights the normalized calibrated-cost sub-score.
	LatencyWeight float64
	// DisableDispatchRescore turns off the dispatch-time re-scoring pass;
	// the compile-time replica choice still applies.
	DisableDispatchRescore bool
}

// WeightedRouting is the public handle on an installed weighted router.
type WeightedRouting struct {
	r *router.WeightedRouter
}

// EnableWeightedRouting replaces the paper's round-robin load distribution
// with the score-based weighted replica router: every fragment with more
// than one candidate replica is routed to the server scoring best on
//
//	score = cpu·w1 + memory·w2 + cache_locality·w3 + latency·w4
//
// fed by QCC's live signals (calibration and first-row factors, reliability
// and fence state, admission queue depth) and the remote servers'
// buffer-pool residency estimates. With a single placement per fragment the
// router never alters a plan, so replication-off federations stay
// bit-identical. Calling DisableWeightedRouting (or EnableQCC again)
// restores the round-robin policy.
func (c *Calibrator) EnableWeightedRouting(opts WeightedRoutingOptions) *WeightedRouting {
	f := c.fed
	opt := f.ii.Optimizer()
	wr := router.New(router.Config{
		Weights: router.Weights{
			CPU:           opts.CPUWeight,
			Memory:        opts.MemoryWeight,
			CacheLocality: opts.CacheWeight,
			Latency:       opts.LatencyWeight,
		},
		DisableDispatchRescore: opts.DisableDispatchRescore,
		Signals:                c.q.RouterSignals(),
		MW:                     f.mw,
		Assemble: func(winner *optimizer.GlobalPlan, chosen []optimizer.FragmentChoice) *optimizer.GlobalPlan {
			return opt.AssembleGlobal(winner.Stmt, winner.Decomp, chosen)
		},
		Clock: f.clock,
		Log:   f.routeLog,
	})
	wr.SetTelemetry(f.tel)
	f.ii.SetRoute(wr)
	f.ii.SetRerouter(wr)
	return &WeightedRouting{r: wr}
}

// DisableWeightedRouting restores QCC's round-robin load balancer and
// rerouter as the integrator's routing policies.
func (c *Calibrator) DisableWeightedRouting() {
	f := c.fed
	if c.q.LB != nil {
		f.ii.SetRoute(c.q.LB)
	} else {
		f.ii.SetRoute(nil)
	}
	if c.q.Rerouter != nil {
		f.ii.SetRerouter(c.q.Rerouter)
	} else {
		f.ii.SetRerouter(nil)
	}
}

// Rerouted reports dispatch-time replica switches and rescore checks.
func (w *WeightedRouting) Rerouted() (switched, checked int64) { return w.r.Rerouted() }

// Weights returns the resolved score weights.
func (w *WeightedRouting) Weights() (cpu, memory, cache, latency float64) {
	ws := w.r.Weights()
	return ws.CPU, ws.Memory, ws.CacheLocality, ws.Latency
}

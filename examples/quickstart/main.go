// Quickstart: build the paper's three-server federation, run federated SQL,
// watch the Query Cost Calibrator learn a load spike and reroute the
// workload — the core loop of the ICDE 2005 system in ~60 lines.
package main

import (
	"fmt"
	"log"

	fedqcc "repro"
)

func main() {
	// A federation of three remote servers (S1 modest, S2 mid-range, S3
	// powerful) with the sample schema fully replicated. Scale 50 means
	// 2000-row large tables — plenty to show every effect instantly.
	fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: 50})
	if err != nil {
		log.Fatal(err)
	}
	cal := fed.EnableQCC(fedqcc.QCCOptions{})

	// A QT2-shaped query: join a small table to a large one. The powerful
	// server's optimizer picks a cache-reliant plan for it.
	const q = `SELECT SUM(o.o_amount), COUNT(*)
		FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id
		WHERE c.c_discount > 0.05`

	res, err := fed.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("calm system:")
	fmt.Printf("  result   %v\n", res.Rows.Rows[0])
	fmt.Printf("  routed   %v in %.2fms\n", res.Route, float64(res.ResponseTime))

	// Hit the chosen server with a heavy update load. The federation's cost
	// model cannot see this — but QCC observes the estimated/actual gap.
	busy := res.Route["QF1"]
	h, err := fed.Server(busy)
	if err != nil {
		log.Fatal(err)
	}
	h.SetLoad(1.0)
	fmt.Printf("\n%s is now under heavy update load; running the workload...\n", busy)
	for i := 0; i < 4; i++ {
		r, err := fed.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  run %d: %.2fms on %s (calibration factor for %s: %.2f)\n",
			i+1, float64(r.ResponseTime), r.Route["QF1"], busy, cal.ServerFactor(busy))
	}
	cal.PublishNow() // force a recalibration cycle right now

	r, err := fed.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter calibration (factor %.2f for %s):\n", cal.ServerFactor(busy), busy)
	fmt.Printf("  routed   %v in %.2fms — rerouted away from the loaded server\n",
		r.Route, float64(r.ResponseTime))
	if r.Route["QF1"] == busy {
		fmt.Println("  (unexpected: still on the loaded server)")
	}
}

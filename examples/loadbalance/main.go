// Loadbalance reproduces the paper's §4 scenario (Figures 7 and 8): origin
// servers S1 and S2 host the two halves of the schema, replicas R1 and R2
// mirror them. A federated join across the two source groups has 2×2 server
// combinations; QCC derives the alternative global plans with its simulated
// federated system (including the explain-with-masking trick), prunes them
// per server set, and rotates the near-optimal ones round-robin so the load
// spreads instead of hammering the single cheapest pair.
package main

import (
	"fmt"
	"log"
	"sort"

	fedqcc "repro"
)

const q6 = `SELECT o.o_id, l.l_price
	FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey
	WHERE o.o_amount > 9500 AND l.l_qty < 5`

func main() {
	fed, err := fedqcc.NewReplicaFederation(fedqcc.FederationOptions{Scale: 50})
	if err != nil {
		log.Fatal(err)
	}
	cal := fed.EnableQCC(fedqcc.QCCOptions{
		LoadBalance: fedqcc.LBGlobal,
		LBCloseness: 0.5, // rotate plans within 50% of the cheapest
	})

	// 1. What-if analysis: derive every alternative global plan for Q6
	//    without executing anything, exactly as §4.2 describes.
	wi, err := cal.WhatIf()
	if err != nil {
		log.Fatal(err)
	}
	plans, err := wi.EnumeratePlans(q6, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("what-if analysis derived %d alternative global plans for Q6:\n", len(plans))
	for _, p := range plans {
		fmt.Printf("  route %v  estimated %.2fms\n", p.Route, p.TotalCostMS)
	}

	// 2. The paper's trick: the same set via explain-runs with masked
	//    servers — four runs for the 2×2 combinations.
	masked, runs, err := wi.EnumerateByMasking(q6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmasking enumeration: %d winners from %d explain runs (paper: 4 runs for Q6)\n",
		len(masked), runs)

	// 3. Run Q6 repeatedly: the load balancer rotates the near-optimal
	//    plans, spreading fragments across origins and replicas.
	counts := map[string]int{}
	for i := 0; i < 12; i++ {
		res, err := fed.Query(q6)
		if err != nil {
			log.Fatal(err)
		}
		for frag, server := range res.Route {
			counts[frag+"@"+server]++
		}
	}
	fmt.Printf("\nfragment placements over 12 executions (rotations: %d):\n", cal.Rotations())
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-8s ran %2d times\n", k, counts[k])
	}
	if cal.Rotations() == 0 {
		fmt.Println("  (no rotation happened — unexpected)")
	}
}

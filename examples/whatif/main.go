// Whatif demonstrates §2's simulated federated system: a statistics-only
// clone of the production federation ("virtual tables ... without storing
// the actual data") answering routing questions — which server combinations
// could serve a query, at what calibrated cost, and how network congestion
// changes the picture — without executing a single fragment on production.
package main

import (
	"fmt"
	"log"

	fedqcc "repro"
)

const q = `SELECT o.o_priority, SUM(l.l_price) AS total
	FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey
	WHERE o.o_amount > 8000
	GROUP BY o.o_priority ORDER BY o.o_priority`

func main() {
	fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: 50})
	if err != nil {
		log.Fatal(err)
	}
	cal := fed.EnableQCC(fedqcc.QCCOptions{})

	// Establish the calm probe baseline first: the probe-derived factor is
	// the ratio of the latest probe time to the best (calm) one.
	cal.ProbeNow()

	wi, err := cal.WhatIf()
	if err != nil {
		log.Fatal(err)
	}

	show := func(title string) {
		plans, err := wi.EnumeratePlans(q, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(title)
		for _, p := range plans {
			fmt.Printf("  route %v  estimated %.2fms\n", p.Route, p.TotalCostMS)
		}
	}

	show("calibrated plan space on the calm system:")

	// Congest the network path to the currently-cheapest server and let the
	// availability daemon's probes feed the change into calibration — the
	// what-if costs shift without anything executing.
	plans, _ := wi.EnumeratePlans(q, 1)
	cheapest := plans[0].Route["QF1"]
	h, _ := fed.Server(cheapest)
	h.SetCongestion(8)
	cal.ProbeNow()
	cal.PublishNow()
	show(fmt.Sprintf("\nafter 8x network congestion toward %s (probe-derived factor %.2f):",
		cheapest, cal.ServerFactor(cheapest)))

	// Confirm production was never touched.
	for _, id := range fed.ServerIDs() {
		sh, _ := fed.Server(id)
		fmt.Printf("production executions on %s: %d\n", id, sh.Executed())
	}
}

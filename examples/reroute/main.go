// Reroute demonstrates the paper's §6 extension for long-running queries:
// "periodically re-check the load and switch data sources if needed". A
// plan compiled while the system was calm goes stale when its target server
// crashes or overloads; with runtime rerouting enabled, the fragment
// re-checks calibrated costs at dispatch time and moves — the stale plan
// executes successfully without a recompile.
package main

import (
	"fmt"
	"log"

	fedqcc "repro"
)

const q = `SELECT SUM(o.o_amount)
	FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id
	WHERE c.c_discount > 0.02`

func main() {
	fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: 50})
	if err != nil {
		log.Fatal(err)
	}
	// Global load balancing with a long refresh interval makes the router
	// serve CACHED global plans — exactly the staleness the §6 extension
	// guards against. Runtime rerouting re-checks them at dispatch.
	cal := fed.EnableQCC(fedqcc.QCCOptions{
		RuntimeReroute: true,
		LoadBalance:    fedqcc.LBGlobal,
		LBCloseness:    1.0, // rotate across all three replicas
	})

	res, err := fed.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	target := res.Route["QF1"]
	fmt.Printf("calm system compiles and runs on %s (%.2fms)\n",
		target, float64(res.ResponseTime))

	// The target's load spikes AFTER plans for this query shape are cached
	// in the rotation-free path; QCC learns about it from other traffic.
	h, _ := fed.Server(target)
	h.SetLoad(1.0)
	for i := 0; i < 3; i++ {
		fed.Query(q) //nolint:errcheck
	}
	cal.PublishNow()
	fmt.Printf("\n%s is now overloaded (factor %.2f)\n", target, cal.ServerFactor(target))

	// The rotation set was derived while the system was calm, so it still
	// contains plans bound to the overloaded server. The rerouter inspects
	// each cached plan at dispatch and moves the stale ones.
	for i := 0; i < 3; i++ {
		res, err = fed.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cached-plan dispatch ran on %s in %.2fms\n",
			res.Route["QF1"], float64(res.ResponseTime))
	}
	switched, checked := cal.RerouteStats()
	fmt.Printf("runtime rerouter: %d/%d dispatches switched\n", switched, checked)

	// Hard failure: the compiled target dies between compile and dispatch.
	// The rerouter saves the execution without a retry loop.
	h.SetDown(true)
	cal.ProbeNow()
	res, err = fed.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s is down; dispatch-time switch ran the query on %s (retries: %d)\n",
		target, res.Route["QF1"], res.Retried)
}

// Advisor demonstrates the paper's data-placement future-work item: QCC
// mines the explain table and its calibration factors, notices that a
// persistently-loaded server exclusively hosts a hot table, and recommends
// replicating it to a cool server. Applying the recommendation gives the
// optimizer an equivalent data source — and makes the workload survive the
// hot server's outage.
package main

import (
	"fmt"
	"log"
	"strings"

	fedqcc "repro"
)

const hotQuery = `SELECT COUNT(*), SUM(l.l_price)
	FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey
	WHERE o.o_amount > 1000`

func main() {
	// Build a federation where "lineitem" lives ONLY on the powerful server:
	// every join touching it is pinned there.
	specs := fedqcc.StandardSchema(50)
	b := fedqcc.NewBuilder(42).
		AddServer("S1", fedqcc.ProfileModest, fedqcc.LinkSpec{}).
		AddServer("S2", fedqcc.ProfileMidrange, fedqcc.LinkSpec{}).
		AddServer("S3", fedqcc.ProfilePowerful, fedqcc.LinkSpec{})
	for _, spec := range specs {
		if spec.Name == "lineitem" {
			b.AddGeneratedTable("S3", spec)
			continue
		}
		for _, s := range []string{"S1", "S2", "S3"} {
			b.AddGeneratedTable(s, spec)
		}
	}
	fed, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})

	hosts, _ := fed.PlacementsOf("lineitem")
	fmt.Printf("lineitem hosts: %s\n", strings.Join(hosts, ", "))

	// S3 is under sustained heavy load; the workload keeps hammering it
	// because nothing else can serve lineitem.
	h, _ := fed.Server("S3")
	h.SetLoad(1.0)
	for i := 0; i < 5; i++ {
		res, err := fed.Query(hotQuery)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  run %d: %.2fms on %v\n", i+1, float64(res.ResponseTime), res.Route)
	}
	cal.PublishNow()

	recs := cal.AdvisePlacement(1.3)
	if len(recs) == 0 {
		fmt.Println("no recommendations (unexpected)")
		return
	}
	fmt.Println("\nplacement advisor says:")
	for _, r := range recs {
		fmt.Printf("  replicate %q: %s -> %s\n    because %s\n", r.Nickname, r.From, r.To, r.Reason)
	}

	if err := fed.ApplyReplication(recs[0]); err != nil {
		log.Fatal(err)
	}
	hosts, _ = fed.PlacementsOf("lineitem")
	fmt.Printf("\napplied: lineitem hosts are now %s\n", strings.Join(hosts, ", "))

	// The decisive benefit: the workload now survives S3 going down.
	h.SetDown(true)
	cal.ProbeNow()
	res, err := fed.Query(hotQuery)
	if err != nil {
		log.Fatalf("query should survive the outage: %v", err)
	}
	fmt.Printf("S3 is down; query still answered by %v in %.2fms\n",
		res.Route, float64(res.ResponseTime))
}

// Failover demonstrates §3.3: the availability daemon probes remote sources
// through the meta-wrapper, fences a crashed server off by calibrating its
// cost to infinity (queries keep flowing to the replicas with zero retries),
// penalizes a flaky-but-up server through the reliability factor, and
// restores everything once the probes succeed again.
package main

import (
	"fmt"
	"log"

	fedqcc "repro"
)

const q = "SELECT SUM(o.o_amount) FROM orders AS o WHERE o.o_amount > 1000"

func main() {
	fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: 50})
	if err != nil {
		log.Fatal(err)
	}
	cal := fed.EnableQCC(fedqcc.QCCOptions{ProbeIntervalMS: 100})

	res, err := fed.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	preferred := res.Route["QF1"]
	fmt.Printf("calm system routes to %s (%.2fms)\n", preferred, float64(res.ResponseTime))

	// Crash the preferred server. Advancing the virtual clock lets the
	// availability daemon's next probe discover the outage.
	h, _ := fed.Server(preferred)
	h.SetDown(true)
	fed.Clock().Advance(250)
	fmt.Printf("\n%s crashed; daemon probe fenced it: %v\n", preferred, cal.IsFenced(preferred))

	for i := 0; i < 3; i++ {
		r, err := fed.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  query -> %s in %.2fms (retries: %d)\n",
			r.Route["QF1"], float64(r.ResponseTime), r.Retried)
	}

	// Recovery: the next probe marks it up and the optimizer may use it
	// again.
	h.SetDown(false)
	fed.Clock().Advance(250)
	fmt.Printf("\n%s recovered; fenced: %v\n", preferred, cal.IsFenced(preferred))
	r, err := fed.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  query -> %s in %.2fms\n", r.Route["QF1"], float64(r.ResponseTime))

	// A flaky (up, but failing) server: reliability calibration makes it
	// unattractive even though its raw cost estimate stays the lowest.
	flaky := r.Route["QF1"]
	fh, _ := fed.Server(flaky)
	fmt.Printf("\n%s now fails transiently; watch the reliability factor:\n", flaky)
	for i := 0; i < 6; i++ {
		fh.InjectFailures(1)
		if _, err := fed.Query(q); err != nil {
			fmt.Println("  query failed outright:", err)
		}
		fmt.Printf("  reliability(%s) = %.2f\n", flaky, cal.ReliabilityFactor(flaky))
	}
	r, err = fed.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flaky server avoided: query -> %s (fenced=%v, factor=%.2f)\n",
		r.Route["QF1"], cal.IsFenced(flaky), cal.ReliabilityFactor(flaky))
}

// Columnar wire protocol benchmark: the sharded ship-everything query with
// row shipping vs typed column-batch shipping at 1/2/4/8 shards, plus the
// pushdown pair (partial-aggregate states as rows vs typed columns). Runs
// the same study as `qccbench -exp wire`, emits the "wire" key of
// BENCH_wire.json (bytes-on-wire, virtual response time, min-of-trials wall
// time per configuration) and backs the WIRE_CHECK=1 CI gate (see
// TestWireSmoke): columnar shipping must cut wire bytes by >= 3x and win
// end-to-end against row shipping.
package fedqcc_test

import (
	"testing"

	fedqcc "repro"
)

const wireBenchFile = "BENCH_wire.json"

// wireBenchScale is deliberately finer than shardedBenchScale (Scale divides
// the paper's table sizes): the wall-time comparison needs per-row costs
// (boxing vs encoding) to dominate fixed per-query overhead, and
// sub-millisecond runs drown in scheduler noise.
const wireBenchScale = 40 // 20000 lineitem rows

// wireByteFloor is the CI floor on the row-ship/col-ship wire byte ratio at
// every sharded count. The ship-everything fragment is SELECT * over
// lineitem, whose columns compress to roughly 12 B/row (delta ids, varint
// keys, dictionary tags) against ~42 B/row under the row model, so 3x has
// real margin without being trivially satisfied.
const wireByteFloor = 3.0

// measureWireStudy runs the shared experiment study at the bench scale.
func measureWireStudy(fatalf func(format string, args ...any)) fedqcc.WireStudyResult {
	result, err := fedqcc.RunWireStudy(fedqcc.ExperimentOptions{Scale: wireBenchScale})
	if err != nil {
		fatalf("wire study: %v", err)
	}
	return result
}

// wireConfigsByKey indexes a study by (mode, shards).
func wireConfigsByKey(result fedqcc.WireStudyResult) map[string]fedqcc.WireOutcome {
	byKey := map[string]fedqcc.WireOutcome{}
	for _, cfg := range result.Outcomes {
		byKey[cfg.Mode+string(rune('0'+cfg.Shards))] = cfg
	}
	return byKey
}

// requireWireFloors enforces the WIRE_CHECK gate on a measured study:
// columnar shipping must cut wire bytes by >= wireByteFloor at every sharded
// count, never lose on (deterministic) virtual response time, beat row
// shipping on total wall time across the sharded counts, ship fewer
// partial-aggregate bytes than row-model pushdown, and return the same row
// counts everywhere.
func requireWireFloors(t *testing.T, result fedqcc.WireStudyResult) {
	t.Helper()
	byKey := wireConfigsByKey(result)
	for _, cfg := range result.Outcomes {
		t.Logf("shards=%d mode=%-12s response=%6.1f vms  wire=%7d B  wall=%8.3f ms",
			cfg.Shards, cfg.Mode, cfg.RespMS, cfg.WireBytes,
			float64(cfg.WallNS)/1e6)
		if want := result.Outcomes[0].Rows; cfg.Rows != want {
			t.Errorf("shards=%d mode=%s returned %d rows, want %d", cfg.Shards, cfg.Mode, cfg.Rows, want)
		}
	}
	var rowWall, colWall int64
	for _, shards := range []int{2, 4, 8} {
		k := string(rune('0' + shards))
		row, col := byKey["row-ship"+k], byKey["col-ship"+k]
		if ratio := float64(row.WireBytes) / float64(col.WireBytes); ratio < wireByteFloor {
			t.Errorf("shards=%d: columnar wire ratio %.2fx below the %.1fx floor (row %d B, col %d B)",
				shards, ratio, wireByteFloor, row.WireBytes, col.WireBytes)
		}
		if col.RespMS > row.RespMS {
			t.Errorf("shards=%d: col-ship virtual response %.2f vms worse than row-ship %.2f vms",
				shards, col.RespMS, row.RespMS)
		}
		rowWall += row.WallNS
		colWall += col.WallNS
		push, pushCol := byKey["pushdown"+k], byKey["pushdown-col"+k]
		if pushCol.WireBytes >= push.WireBytes {
			t.Errorf("shards=%d: pushdown-col ships %d B, not below row-model pushdown %d B",
				shards, pushCol.WireBytes, push.WireBytes)
		}
	}
	if colWall >= rowWall {
		t.Errorf("columnar shipping wall total %.3f ms does not beat row shipping %.3f ms across sharded counts",
			float64(colWall)/1e6, float64(rowWall)/1e6)
	} else {
		t.Logf("wall total across 2/4/8 shards: row-ship %.3f ms, col-ship %.3f ms (%.2fx)",
			float64(rowWall)/1e6, float64(colWall)/1e6, float64(rowWall)/float64(colWall))
	}
}

func writeWireBenchFile(result fedqcc.WireStudyResult) error {
	return fedqcc.WriteWireStudy(result, wireBenchFile)
}

// BenchmarkWireProtocol measures the full wire grid once per run and
// persists it to BENCH_wire.json. As with BenchmarkShardedScaleOut, the
// headline metrics are virtual (wire bytes) or min-of-trials wall times
// measured outside the b.N loop; the loop keeps -benchtime=1x CI runs happy.
func BenchmarkWireProtocol(b *testing.B) {
	result := measureWireStudy(b.Fatalf)
	byKey := wireConfigsByKey(result)
	for _, cfg := range result.Outcomes {
		b.Logf("shards=%d mode=%-12s response=%6.1f vms  wire=%7d B  wall=%8.3f ms",
			cfg.Shards, cfg.Mode, cfg.RespMS, cfg.WireBytes,
			float64(cfg.WallNS)/1e6)
	}
	row4, col4 := byKey["row-ship4"], byKey["col-ship4"]
	b.ReportMetric(float64(row4.WireBytes)/float64(col4.WireBytes), "wire_reduction4_x")
	b.ReportMetric(float64(row4.WallNS)/float64(col4.WallNS), "wall_speedup4_x")
	if err := writeWireBenchFile(result); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s (wire)", wireBenchFile)
	for i := 0; i < b.N; i++ {
	}
}

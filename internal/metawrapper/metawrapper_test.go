package metawrapper

import (
	"context"
	"testing"

	"repro/internal/network"
	"repro/internal/remote"
	"repro/internal/simclock"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/wrapper"
)

type recordingObserver struct {
	compiles []CompileRecord
	runs     []RunRecord
	errs     []string
	probes   []string
}

func (r *recordingObserver) ObserveCompile(rec CompileRecord) { r.compiles = append(r.compiles, rec) }
func (r *recordingObserver) ObserveRun(rec RunRecord)         { r.runs = append(r.runs, rec) }
func (r *recordingObserver) ObserveError(serverID string, err error) {
	r.errs = append(r.errs, serverID)
}
func (r *recordingObserver) ObserveProbe(serverID string, rtt simclock.Time, err error) {
	r.probes = append(r.probes, serverID)
}

type doublingCalibrator struct{}

func (doublingCalibrator) CalibrateFragment(key FragmentKey, est remote.CostEstimate, costKnown bool) remote.CostEstimate {
	est.TotalMS *= 2
	est.FirstTupleMS *= 2
	est.NextTupleMS *= 2
	return est
}

func newMW(t *testing.T) (*MetaWrapper, *remote.Server) {
	t.Helper()
	s := remote.NewServer(remote.ProfileS1("S1"))
	for _, g := range storage.SampleSchema(200) {
		tab, err := g.Generate(42)
		if err != nil {
			t.Fatal(err)
		}
		s.AddTable(tab)
	}
	topo := network.NewTopology()
	topo.AddLink("S1", network.NewLink(network.LinkConfig{LatencyMS: 5}))
	return New(wrapper.NewRelational(s, topo)), s
}

func TestExplainRecordsAndCalibrates(t *testing.T) {
	mw, _ := newMW(t)
	obs := &recordingObserver{}
	mw.SetObserver(obs)
	mw.SetCalibrator(doublingCalibrator{})
	stmt := sqlparser.MustParse("SELECT p.p_id FROM parts AS p")
	cands, err := mw.ExplainFragment("S1", stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.compiles) != len(cands) {
		t.Fatalf("compile records: %d vs %d candidates", len(obs.compiles), len(cands))
	}
	rec := obs.compiles[0]
	if rec.Key.ServerID != "S1" || rec.Key.Signature != sqlparser.CanonicalizeSQL(stmt.String()) {
		t.Fatalf("key: %+v", rec.Key)
	}
	if rec.Calibrated.TotalMS != rec.Est.TotalMS*2 {
		t.Fatalf("calibration not recorded: %+v", rec)
	}
	if cands[0].Plan.Est.TotalMS != rec.Calibrated.TotalMS {
		t.Fatal("integrator must see calibrated cost")
	}
}

func TestExplainWithoutQCCPassesThrough(t *testing.T) {
	mw, _ := newMW(t)
	stmt := sqlparser.MustParse("SELECT p.p_id FROM parts AS p")
	cands, err := mw.ExplainFragment("S1", stmt)
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Plan.Est.TotalMS <= 0 {
		t.Fatal("uncalibrated estimate must pass through")
	}
}

func TestExecuteFragmentRecordsRun(t *testing.T) {
	mw, _ := newMW(t)
	obs := &recordingObserver{}
	mw.SetObserver(obs)
	stmt := sqlparser.MustParse("SELECT p.p_id FROM parts AS p")
	cands, err := mw.ExplainFragment("S1", stmt)
	if err != nil {
		t.Fatal(err)
	}
	out, err := mw.ExecuteFragment(context.Background(), "S1", stmt.String(), cands[0].Plan, cands[0].Plan.Est)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Rel.Cardinality() == 0 {
		t.Fatal("no rows")
	}
	if len(obs.runs) != 1 {
		t.Fatalf("run records: %d", len(obs.runs))
	}
	if obs.runs[0].Observed != out.ResponseTime {
		t.Fatal("observed time mismatch")
	}
}

func TestErrorsReported(t *testing.T) {
	mw, srv := newMW(t)
	obs := &recordingObserver{}
	mw.SetObserver(obs)
	stmt := sqlparser.MustParse("SELECT p.p_id FROM parts AS p")
	cands, err := mw.ExplainFragment("S1", stmt)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetDown(true)
	if _, err := mw.ExecuteFragment(context.Background(), "S1", stmt.String(), cands[0].Plan, cands[0].Plan.Est); err == nil {
		t.Fatal("down server must fail")
	}
	if _, err := mw.ExplainFragment("S1", stmt); err == nil {
		t.Fatal("down server explain must fail")
	}
	if len(obs.errs) != 2 {
		t.Fatalf("errors reported: %v", obs.errs)
	}
}

func TestMasking(t *testing.T) {
	mw, _ := newMW(t)
	stmt := sqlparser.MustParse("SELECT p.p_id FROM parts AS p")
	mw.Mask("S1", true)
	if !mw.Masked("S1") {
		t.Fatal("mask state")
	}
	if _, err := mw.ExplainFragment("S1", stmt); err == nil {
		t.Fatal("masked server must not explain")
	}
	mw.Mask("S1", false)
	if _, err := mw.ExplainFragment("S1", stmt); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownServer(t *testing.T) {
	mw, _ := newMW(t)
	stmt := sqlparser.MustParse("SELECT p.p_id FROM parts AS p")
	if _, err := mw.ExplainFragment("S9", stmt); err == nil {
		t.Fatal("unknown server explain")
	}
	if _, err := mw.ExecuteFragment(context.Background(), "S9", "", nil, remote.CostEstimate{}); err == nil {
		t.Fatal("unknown server execute")
	}
	if _, err := mw.Probe(context.Background(), "S9"); err == nil {
		t.Fatal("unknown server probe")
	}
}

func TestProbeReportsToObserver(t *testing.T) {
	mw, srv := newMW(t)
	obs := &recordingObserver{}
	mw.SetObserver(obs)
	if _, err := mw.Probe(context.Background(), "S1"); err != nil {
		t.Fatal(err)
	}
	srv.SetDown(true)
	if _, err := mw.Probe(context.Background(), "S1"); err == nil {
		t.Fatal("down probe must fail")
	}
	if len(obs.probes) != 2 {
		t.Fatalf("probe records: %d", len(obs.probes))
	}
	if len(mw.Servers()) != 1 || mw.Servers()[0] != "S1" {
		t.Fatal("servers list")
	}
}

func TestMWLogsRecordCompileRunError(t *testing.T) {
	mw, srv := newMW(t)
	stmt := sqlparser.MustParse("SELECT p.p_id FROM parts AS p WHERE p.p_id < 4")
	cands, err := mw.ExplainFragment("S1", stmt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mw.ExecuteFragment(context.Background(), "S1", stmt.String(), cands[0].Plan, cands[0].RawEst); err != nil {
		t.Fatal(err)
	}
	srv.SetDown(true)
	mw.ExecuteFragment(context.Background(), "S1", stmt.String(), cands[0].Plan, cands[0].RawEst) //nolint:errcheck

	compiles := mw.CompileLog()
	if len(compiles) == 0 {
		t.Fatal("compile log empty")
	}
	c := compiles[0]
	if c.ServerID != "S1" || c.EstMS <= 0 || !c.CostKnown {
		t.Fatalf("compile entry: %+v", c)
	}
	if c.Fragment != sqlparser.CanonicalizeSQL(stmt.String()) {
		t.Fatalf("fragment text: %q", c.Fragment)
	}
	runs := mw.RunLog()
	if len(runs) != 1 || runs[0].ObservedMS <= 0 || runs[0].OutBytes <= 0 {
		t.Fatalf("run log: %+v", runs)
	}
	errs := mw.ErrorLog()
	if len(errs) != 1 || errs[0].ServerID != "S1" || errs[0].Err == "" {
		t.Fatalf("error log: %+v", errs)
	}
}

// Package metawrapper implements the paper's Meta-Wrapper (MW): the
// middleware between the information integrator and the per-source wrappers
// (§2). At compile time MW records the incoming fragment statements, the
// estimated costs, and the fragment→server mappings, and — crucially —
// applies QCC's calibration to the estimates before they reach the
// integrator's optimizer (Figure 5). At run time MW forwards execution
// descriptors, records per-fragment response times, and reports both
// observations and errors to QCC.
package metawrapper

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/remote"
	"repro/internal/simclock"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
	"repro/internal/telemetry"
	"repro/internal/wrapper"
)

// FragmentKey identifies a fragment for calibration purposes: the paper
// keeps per-source factors and, when runtime statistics are available,
// per-(source, fragment) factors.
type FragmentKey struct {
	ServerID string
	// Signature is the fragment statement text (not the physical plan): the
	// identity under which costs are compared across compilations.
	Signature string
}

// CompileRecord is what MW hands QCC at compile time (items a–d in §2).
type CompileRecord struct {
	Key       FragmentKey
	PlanSig   string
	Est       remote.CostEstimate
	CostKnown bool
	// Calibrated is the estimate MW returned to the integrator after
	// applying QCC's factor.
	Calibrated remote.CostEstimate
}

// RunRecord is what MW hands QCC at run time (item e in §2).
type RunRecord struct {
	Key     FragmentKey
	PlanSig string
	// Est is the compile-time (uncalibrated) estimate of the executed plan.
	Est remote.CostEstimate
	// Observed is the wrapper-visible response time.
	Observed simclock.Time
	// FirstRow is the wrapper-visible time-to-first-row; zero when the
	// fragment ran monolithically (no separate first-row observation).
	FirstRow simclock.Time
	// OutBytes is the actual result volume.
	OutBytes int
}

// Observer receives MW's records; QCC implements it. A nil observer is
// allowed (a plain federation without QCC).
type Observer interface {
	ObserveCompile(rec CompileRecord)
	ObserveRun(rec RunRecord)
	ObserveError(serverID string, err error)
	ObserveProbe(serverID string, rtt simclock.Time, err error)
}

// Calibrator adjusts estimates; QCC implements it. A nil calibrator leaves
// estimates untouched.
type Calibrator interface {
	// CalibrateFragment scales a fragment estimate by the learned factor
	// for the (server, fragment) pair. Unavailable servers return +Inf.
	CalibrateFragment(key FragmentKey, est remote.CostEstimate, costKnown bool) remote.CostEstimate
}

// MetaWrapper multiplexes wrappers and instruments every interaction.
type MetaWrapper struct {
	mu       sync.RWMutex
	wrappers map[string]wrapper.Wrapper
	observer Observer
	calib    Calibrator
	masked   map[string]bool
	tel      *telemetry.Telemetry
	log      mwLog
}

// New builds a MetaWrapper over the given wrappers.
func New(wrappers ...wrapper.Wrapper) *MetaWrapper {
	mw := &MetaWrapper{wrappers: map[string]wrapper.Wrapper{}, masked: map[string]bool{}}
	for _, w := range wrappers {
		mw.wrappers[w.ServerID()] = w
	}
	return mw
}

// SetObserver installs the observer (QCC).
func (mw *MetaWrapper) SetObserver(o Observer) {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	mw.observer = o
}

// SetCalibrator installs the calibrator (QCC).
func (mw *MetaWrapper) SetCalibrator(c Calibrator) {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	mw.calib = c
}

// SetTelemetry installs the observability subsystem (nil disables).
func (mw *MetaWrapper) SetTelemetry(t *telemetry.Telemetry) {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	mw.tel = t
}

func (mw *MetaWrapper) telemetry() *telemetry.Telemetry {
	mw.mu.RLock()
	defer mw.mu.RUnlock()
	return mw.tel
}

// Wrapper returns the wrapper for a server, or nil.
func (mw *MetaWrapper) Wrapper(serverID string) wrapper.Wrapper {
	mw.mu.RLock()
	defer mw.mu.RUnlock()
	return mw.wrappers[serverID]
}

// residencyReporter is the optional wrapper capability behind the
// cache-locality routing signal. Wrappers for sources without a buffer-pool
// model simply don't implement it.
type residencyReporter interface {
	CacheResidency(table string) float64
}

// CacheResidency returns the server's mean buffer-pool residency over the
// given physical tables, in [0,1]. Servers whose wrappers expose no residency
// estimate — and empty table lists — report 0, a uniform non-signal.
func (mw *MetaWrapper) CacheResidency(serverID string, tables []string) float64 {
	if len(tables) == 0 {
		return 0
	}
	rr, ok := mw.Wrapper(serverID).(residencyReporter)
	if !ok {
		return 0
	}
	var sum float64
	for _, t := range tables {
		sum += rr.CacheResidency(t)
	}
	return sum / float64(len(tables))
}

// Servers lists wrapped server IDs, sorted.
func (mw *MetaWrapper) Servers() []string {
	mw.mu.RLock()
	defer mw.mu.RUnlock()
	out := make([]string, 0, len(mw.wrappers))
	for id := range mw.wrappers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Mask hides a server from Explain: its plans are not offered to the
// integrator. QCC's simulated federated system uses masking to force the
// optimizer through alternative plan combinations (§4.2's "adjusting cost
// functions of R1 and R2 to infinity"), and the availability machinery uses
// it to fence off down servers.
func (mw *MetaWrapper) Mask(serverID string, masked bool) {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	mw.masked[serverID] = masked
}

// Masked reports whether a server is currently masked.
func (mw *MetaWrapper) Masked(serverID string) bool {
	mw.mu.RLock()
	defer mw.mu.RUnlock()
	return mw.masked[serverID]
}

// MaskedSet snapshots the mask state of the given servers under one lock —
// the federated plan cache records this at insert time and invalidates
// entries when any relevant server's mask flips (in either direction: a
// masked server contributed no candidates, an unmasked one is missing from
// the cached candidate sets).
func (mw *MetaWrapper) MaskedSet(serverIDs []string) map[string]bool {
	mw.mu.RLock()
	defer mw.mu.RUnlock()
	out := make(map[string]bool, len(serverIDs))
	for _, id := range serverIDs {
		out[id] = mw.masked[id]
	}
	return out
}

func (mw *MetaWrapper) observerAndCalib() (Observer, Calibrator) {
	mw.mu.RLock()
	defer mw.mu.RUnlock()
	return mw.observer, mw.calib
}

// ExplainFragment asks one server's wrapper for candidate plans, records the
// compile-time information, and returns candidates with CALIBRATED costs.
func (mw *MetaWrapper) ExplainFragment(serverID string, stmt *sqlparser.SelectStmt) ([]wrapper.Candidate, error) {
	return mw.ExplainFragmentContext(context.Background(), serverID, stmt)
}

// ExplainFragmentContext is ExplainFragment under a context carrying the
// active trace span: each call records one per-candidate remote-planning
// span. Remote planning is free in virtual time (compile cost is not charged
// to the clock), so the spans carry zero duration but preserve structure and
// outcome.
func (mw *MetaWrapper) ExplainFragmentContext(ctx context.Context, serverID string, stmt *sqlparser.SelectStmt) ([]wrapper.Candidate, error) {
	sp := telemetry.SpanFrom(ctx).Emit("remote.plan", telemetry.LayerMW, serverID, 0)
	if mw.Masked(serverID) {
		sp.SetAttr("error", "masked")
		return nil, fmt.Errorf("metawrapper: server %s is masked", serverID)
	}
	w := mw.Wrapper(serverID)
	if w == nil {
		sp.SetAttr("error", "unknown server")
		return nil, fmt.Errorf("metawrapper: unknown server %q", serverID)
	}
	obs, calib := mw.observerAndCalib()
	cands, err := w.Explain(stmt)
	if err != nil {
		sp.SetAttr("error", err.Error())
		mw.telemetry().Active().Counter("mw.explain_errors", serverID).Inc()
		if obs != nil {
			obs.ObserveError(serverID, err)
		}
		mw.log.addError(ErrorLogEntry{ServerID: serverID, Err: err.Error()})
		return nil, err
	}
	sp.SetAttr("candidates", strconv.Itoa(len(cands)))
	mw.telemetry().Active().Counter("mw.explains", serverID).Inc()
	key := FragmentKey{ServerID: serverID, Signature: sqlparser.CanonicalizeSQL(stmt.String())}
	out := make([]wrapper.Candidate, len(cands))
	for i, c := range cands {
		calibrated := c.Plan.Est
		if calib != nil {
			calibrated = calib.CalibrateFragment(key, c.Plan.Est, c.CostKnown)
		}
		if obs != nil {
			obs.ObserveCompile(CompileRecord{
				Key:        key,
				PlanSig:    c.Plan.Signature,
				Est:        c.Plan.Est,
				CostKnown:  c.CostKnown,
				Calibrated: calibrated,
			})
		}
		mw.log.addCompile(CompileLogEntry{
			Fragment:     key.Signature,
			ServerID:     serverID,
			PlanSig:      c.Plan.Signature,
			EstMS:        c.Plan.Est.TotalMS,
			CalibratedMS: calibrated.TotalMS,
			CostKnown:    c.CostKnown,
		})
		// Hand the integrator a copy carrying the calibrated estimate; the
		// raw estimate stays on record for calibration updates.
		cp := *c.Plan
		cp.Est = calibrated
		out[i] = wrapper.Candidate{Plan: &cp, RawEst: c.Plan.Est, CostKnown: c.CostKnown, Versions: c.Versions}
	}
	return out, nil
}

// CalibrateCandidate applies the CURRENT calibrator to a raw (uncalibrated)
// estimate without contacting the wrapper or the remote planner. This is the
// cheap tail of compilation the federated plan cache re-runs on every hit:
// the expensive head (parse, decompose, remote plan enumeration) is reused,
// while load, network, reliability and availability calibration always
// reflect the present. fragSig must be the fragment's canonical signature
// (the same key ExplainFragment records compile observations under).
func (mw *MetaWrapper) CalibrateCandidate(serverID, fragSig string, est remote.CostEstimate, costKnown bool) remote.CostEstimate {
	_, calib := mw.observerAndCalib()
	if calib == nil {
		return est
	}
	return calib.CalibrateFragment(FragmentKey{ServerID: serverID, Signature: fragSig}, est, costKnown)
}

// TableVersions snapshots the current mutation counters of the named tables
// on one server — a local read with no simulated network traffic, used to
// validate cached compilations against remote table changes.
func (mw *MetaWrapper) TableVersions(serverID string, tables []string) (map[string]int64, error) {
	w := mw.Wrapper(serverID)
	if w == nil {
		return nil, fmt.Errorf("metawrapper: unknown server %q", serverID)
	}
	return w.TableVersions(tables)
}

// resultBytes is the actual result volume a fragment shipped: the encoded
// wire bytes when the columnar wire protocol carried it, the row-model size
// otherwise. The estimate side (CostEstimate.OutBytes) stays row-model —
// QCC's calibration learns the time gap, not the byte gap.
func resultBytes(res *remote.Result, wireBytes int) int {
	if wireBytes > 0 {
		return wireBytes
	}
	if res.Rel != nil {
		return res.Rel.ByteSize()
	}
	return 0
}

// ExecuteFragment forwards an execution descriptor, records the observed
// response time against the original (uncalibrated) estimate, and reports
// errors. The context carries the dispatch's cancellation signal and
// optional virtual-time deadline down to the wrapper, server and network
// layers; a cancelled dispatch is NOT reported to QCC as a server error
// (the server did nothing wrong — a sibling fragment failed first).
//
// rawEst must be the wrapper's uncalibrated estimate for the executed plan;
// fragSig the fragment statement text.
func (mw *MetaWrapper) ExecuteFragment(ctx context.Context, serverID, fragSig string, plan *remote.Plan, rawEst remote.CostEstimate) (*wrapper.ExecOutcome, error) {
	w := mw.Wrapper(serverID)
	if w == nil {
		return nil, fmt.Errorf("metawrapper: unknown server %q", serverID)
	}
	obs, _ := mw.observerAndCalib()
	out, err := w.Execute(ctx, plan)
	if err != nil {
		// Cancellation is the integrator's doing, not the source's;
		// reportExecError stays silent on it.
		mw.reportExecError(ctx, serverID, err)
		return nil, err
	}
	mw.telemetry().Active().Histogram("mw.response_ms", serverID, nil).Observe(float64(out.ResponseTime))
	if obs != nil {
		obs.ObserveRun(RunRecord{
			Key:      FragmentKey{ServerID: serverID, Signature: sqlparser.CanonicalizeSQL(fragSig)},
			PlanSig:  plan.Signature,
			Est:      rawEst,
			Observed: out.ResponseTime,
			OutBytes: resultBytes(out.Result, out.WireBytes),
		})
	}
	mw.log.addRun(RunLogEntry{
		Fragment:   sqlparser.CanonicalizeSQL(fragSig),
		ServerID:   serverID,
		PlanSig:    plan.Signature,
		EstMS:      rawEst.TotalMS,
		ObservedMS: float64(out.ResponseTime),
		OutBytes:   resultBytes(out.Result, out.WireBytes),
	})
	return out, nil
}

// OpenFragmentStream forwards an execution descriptor as a batch stream
// (wrapper.Open) and instruments its lifecycle the way ExecuteFragment
// instruments monolithic execution: errors are classified (a cancelled
// dispatch is not a server error), and successful exhaustion records the
// response time AND the time-to-first-row against the uncalibrated
// estimate, feeding QCC's separate FirstTupleMS calibration.
func (mw *MetaWrapper) OpenFragmentStream(ctx context.Context, serverID, fragSig string, plan *remote.Plan, rawEst remote.CostEstimate, batchRows int) (wrapper.ResultStream, error) {
	w := mw.Wrapper(serverID)
	if w == nil {
		return nil, fmt.Errorf("metawrapper: unknown server %q", serverID)
	}
	inner, err := w.Open(ctx, plan, batchRows)
	if err != nil {
		mw.reportExecError(ctx, serverID, err)
		return nil, err
	}
	return &mwStream{mw: mw, inner: inner, serverID: serverID, fragSig: fragSig, plan: plan, rawEst: rawEst}, nil
}

// reportExecError is the shared run-time error classification: cancellation
// is the integrator's doing and stays silent; anything else feeds the error
// counter, the observer (QCC) and the MW log.
func (mw *MetaWrapper) reportExecError(ctx context.Context, serverID string, err error) {
	if ctx.Err() != nil {
		return
	}
	obs, _ := mw.observerAndCalib()
	mw.telemetry().Active().Counter("mw.errors", serverID).Inc()
	if obs != nil {
		obs.ObserveError(serverID, err)
	}
	mw.log.addError(ErrorLogEntry{ServerID: serverID, Err: err.Error()})
}

// mwStream decorates a wrapper stream with MW's observation duties.
type mwStream struct {
	mw       *MetaWrapper
	inner    wrapper.ResultStream
	serverID string
	fragSig  string
	plan     *remote.Plan
	rawEst   remote.CostEstimate
	finished bool
}

// Schema implements wrapper.ResultStream.
func (s *mwStream) Schema() *sqltypes.Schema { return s.inner.Schema() }

// Outcome implements wrapper.ResultStream.
func (s *mwStream) Outcome() *wrapper.StreamOutcome { return s.inner.Outcome() }

// Next implements wrapper.ResultStream.
func (s *mwStream) Next(ctx context.Context) (*wrapper.StreamBatch, error) {
	b, err := s.inner.Next(ctx)
	if err != nil {
		s.mw.reportExecError(ctx, s.serverID, err)
		return nil, err
	}
	if b == nil && !s.finished {
		s.finished = true
		s.observeOutcome(s.inner.Outcome())
	}
	return b, nil
}

func (s *mwStream) observeOutcome(out *wrapper.StreamOutcome) {
	mw := s.mw
	mw.telemetry().Active().Histogram("mw.response_ms", s.serverID, nil).Observe(float64(out.ResponseTime))
	mw.telemetry().Active().Histogram("mw.first_row_ms", s.serverID, nil).Observe(float64(out.FirstRowTime))
	obs, _ := mw.observerAndCalib()
	if obs != nil {
		obs.ObserveRun(RunRecord{
			Key:      FragmentKey{ServerID: s.serverID, Signature: sqlparser.CanonicalizeSQL(s.fragSig)},
			PlanSig:  s.plan.Signature,
			Est:      s.rawEst,
			Observed: out.ResponseTime,
			FirstRow: out.FirstRowTime,
			OutBytes: resultBytes(out.Result, out.WireBytes),
		})
	}
	mw.log.addRun(RunLogEntry{
		Fragment:   sqlparser.CanonicalizeSQL(s.fragSig),
		ServerID:   s.serverID,
		PlanSig:    s.plan.Signature,
		EstMS:      s.rawEst.TotalMS,
		ObservedMS: float64(out.ResponseTime),
		OutBytes:   resultBytes(out.Result, out.WireBytes),
	})
}

// Probe checks one source's availability and reports the outcome to QCC.
func (mw *MetaWrapper) Probe(ctx context.Context, serverID string) (simclock.Time, error) {
	w := mw.Wrapper(serverID)
	if w == nil {
		return 0, fmt.Errorf("metawrapper: unknown server %q", serverID)
	}
	obs, _ := mw.observerAndCalib()
	rtt, err := w.Probe(ctx)
	if err == nil {
		mw.telemetry().Active().Histogram("network.rtt_ms", serverID, nil).Observe(float64(rtt))
	}
	if obs != nil && ctx.Err() == nil {
		obs.ObserveProbe(serverID, rtt, err)
	}
	return rtt, err
}

package metawrapper

import "sync"

// The paper's §2 assigns MW its own bookkeeping: at compile time it records
// (a) the incoming federated query statements, (b) the estimated cost of the
// federated queries, (c) the outgoing query fragments, and (d) their
// mappings to the remote servers; during run time it records (e) the
// response time of each query fragment. Beyond forwarding these to QCC, MW
// keeps bounded in-memory logs so operators (and tests) can audit exactly
// what the calibrator saw.

// logLimit bounds each MW log.
const logLimit = 4096

// CompileLogEntry is one compile-time record (items a–d).
type CompileLogEntry struct {
	// Fragment is the outgoing fragment statement text.
	Fragment string
	// ServerID is the mapping target.
	ServerID string
	// PlanSig is the candidate's physical signature.
	PlanSig string
	// EstMS is the wrapper's estimate; CalibratedMS what the integrator saw.
	EstMS, CalibratedMS float64
	// CostKnown is false for no-estimate (file) sources.
	CostKnown bool
}

// RunLogEntry is one runtime record (item e).
type RunLogEntry struct {
	Fragment string
	ServerID string
	PlanSig  string
	// EstMS is the compile-time estimate of the executed plan.
	EstMS float64
	// ObservedMS is the wrapper-visible response time.
	ObservedMS float64
	// OutBytes is the result volume.
	OutBytes int
}

// ErrorLogEntry is one failed interaction.
type ErrorLogEntry struct {
	ServerID string
	Err      string
}

type mwLog struct {
	mu       sync.Mutex
	compiles []CompileLogEntry
	runs     []RunLogEntry
	errors   []ErrorLogEntry
}

func (l *mwLog) addCompile(e CompileLogEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.compiles = append(l.compiles, e)
	if len(l.compiles) > logLimit {
		l.compiles = l.compiles[len(l.compiles)-logLimit:]
	}
}

func (l *mwLog) addRun(e RunLogEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.runs = append(l.runs, e)
	if len(l.runs) > logLimit {
		l.runs = l.runs[len(l.runs)-logLimit:]
	}
}

func (l *mwLog) addError(e ErrorLogEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.errors = append(l.errors, e)
	if len(l.errors) > logLimit {
		l.errors = l.errors[len(l.errors)-logLimit:]
	}
}

// CompileLog returns a snapshot of the compile-time records.
func (mw *MetaWrapper) CompileLog() []CompileLogEntry {
	mw.log.mu.Lock()
	defer mw.log.mu.Unlock()
	return append([]CompileLogEntry(nil), mw.log.compiles...)
}

// RunLog returns a snapshot of the runtime records.
func (mw *MetaWrapper) RunLog() []RunLogEntry {
	mw.log.mu.Lock()
	defer mw.log.mu.Unlock()
	return append([]RunLogEntry(nil), mw.log.runs...)
}

// ErrorLog returns a snapshot of the error records.
func (mw *MetaWrapper) ErrorLog() []ErrorLogEntry {
	mw.log.mu.Lock()
	defer mw.log.mu.Unlock()
	return append([]ErrorLogEntry(nil), mw.log.errors...)
}

// Package catalog implements the federation's global catalog: nicknames
// (the local names under which remote tables are registered at the
// integrator, per DB2 II) with their schemas and placements — which remote
// servers host the table, including replicas. The optimizer's decomposer
// consults the catalog to group query tables into co-located fragments and
// to enumerate equivalent data sources for each fragment.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sqltypes"
)

// Placement locates one copy of a nickname's data.
type Placement struct {
	// ServerID names the remote server.
	ServerID string
	// RemoteTable is the table name at that server.
	RemoteTable string
	// Replica marks placements registered as replicas of an origin server
	// (informational; all placements are equivalent data sources).
	Replica bool
}

// Nickname is one registered remote table.
type Nickname struct {
	// Name is the global name used in federated queries.
	Name string
	// Schema is the registered column layout.
	Schema *sqltypes.Schema
	// Placements lists every server hosting the data, origin first. For
	// sharded nicknames this is the union of shard hosts (used for
	// co-location grouping); per-shard placements live in Shards.
	Placements []Placement
	// Sharding, when non-nil, declares the nickname horizontally
	// partitioned; see shard.go.
	Sharding *ShardSpec
	// Shards holds the per-shard placements, indexed by shard.
	Shards []Shard
}

// Servers returns the IDs of all hosting servers, in registration order.
func (n *Nickname) Servers() []string {
	out := make([]string, len(n.Placements))
	for i, p := range n.Placements {
		out[i] = p.ServerID
	}
	return out
}

// PlacementOn returns the placement on the given server, or nil.
func (n *Nickname) PlacementOn(serverID string) *Placement {
	for i := range n.Placements {
		if n.Placements[i].ServerID == serverID {
			return &n.Placements[i]
		}
	}
	return nil
}

// Catalog is the integrator's nickname registry. It is safe for concurrent
// use.
type Catalog struct {
	mu        sync.RWMutex
	nicknames map[string]*Nickname
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{nicknames: map[string]*Nickname{}}
}

// Register adds a nickname. Registering an existing name replaces it.
func (c *Catalog) Register(n *Nickname) error {
	if n.Name == "" {
		return fmt.Errorf("catalog: nickname must have a name")
	}
	if n.Schema == nil || n.Schema.Len() == 0 {
		return fmt.Errorf("catalog: nickname %q must have a schema", n.Name)
	}
	if len(n.Placements) == 0 {
		return fmt.Errorf("catalog: nickname %q must have at least one placement", n.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nicknames[n.Name] = n
	return nil
}

// RegisterReplicated adds a nickname hosted by multiple equivalent physical
// placements at once — partial replication of a whole table fragment. The
// first placement is the origin; the rest are marked as replicas. Duplicate
// servers are rejected. A single placement degrades to a plain Register, so
// replication-off catalogs are shaped exactly like the pre-replication ones.
func (c *Catalog) RegisterReplicated(name string, schema *sqltypes.Schema, placements []Placement) error {
	seen := map[string]bool{}
	for _, p := range placements {
		if seen[p.ServerID] {
			return fmt.Errorf("catalog: nickname %q placed twice on %s", name, p.ServerID)
		}
		seen[p.ServerID] = true
	}
	n := &Nickname{Name: name, Schema: schema, Placements: append([]Placement(nil), placements...)}
	for i := range n.Placements {
		n.Placements[i].Replica = i > 0
	}
	return c.Register(n)
}

// AddPlacement registers an additional replica for an existing nickname.
func (c *Catalog) AddPlacement(name string, p Placement) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nicknames[name]
	if !ok {
		return fmt.Errorf("catalog: unknown nickname %q", name)
	}
	if n.PlacementOn(p.ServerID) != nil {
		return fmt.Errorf("catalog: nickname %q already placed on %s", name, p.ServerID)
	}
	n.Placements = append(n.Placements, p)
	return nil
}

// Lookup returns the nickname or an error.
func (c *Catalog) Lookup(name string) (*Nickname, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n, ok := c.nicknames[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown nickname %q", name)
	}
	return n, nil
}

// Names lists registered nicknames, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.nicknames))
	for n := range c.nicknames {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ServersFor returns the set of servers hosting every one of the given
// nicknames — the candidate destinations for a fragment covering them.
func (c *Catalog) ServersFor(names ...string) ([]string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var acc map[string]bool
	for _, name := range names {
		n, ok := c.nicknames[name]
		if !ok {
			return nil, fmt.Errorf("catalog: unknown nickname %q", name)
		}
		cur := map[string]bool{}
		for _, p := range n.Placements {
			cur[p.ServerID] = true
		}
		if acc == nil {
			acc = cur
			continue
		}
		for s := range acc {
			if !cur[s] {
				delete(acc, s)
			}
		}
	}
	out := make([]string, 0, len(acc))
	for s := range acc {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

// Clone returns a deep-enough copy for the simulated federated system: the
// nickname set and placements are copied; schemas are shared (immutable).
func (c *Catalog) Clone() *Catalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := New()
	for name, n := range c.nicknames {
		cp := &Nickname{Name: n.Name, Schema: n.Schema, Sharding: n.Sharding}
		cp.Placements = append([]Placement(nil), n.Placements...)
		for _, sh := range n.Shards {
			cp.Shards = append(cp.Shards, Shard{
				Index:      sh.Index,
				Placements: append([]Placement(nil), sh.Placements...),
			})
		}
		out.nicknames[name] = cp
	}
	return out
}

package catalog

import (
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

func shardSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "k", Type: sqltypes.KindInt},
		sqltypes.Column{Name: "v", Type: sqltypes.KindFloat},
	)
}

func mkShards(n int) []Shard {
	out := make([]Shard, n)
	for i := range out {
		name := ShardTableName("t", i)
		out[i] = Shard{Index: i, Placements: []Placement{{ServerID: "S1", RemoteTable: name}}}
	}
	return out
}

func TestShardForHash(t *testing.T) {
	spec := &ShardSpec{Column: "k"}
	// n <= 1 always maps to shard 0.
	if got := spec.ShardFor(sqltypes.NewInt(99), 1); got != 0 {
		t.Fatalf("single shard: got %d", got)
	}
	for _, n := range []int{2, 3, 8} {
		for _, v := range []sqltypes.Value{
			sqltypes.NewInt(0), sqltypes.NewInt(-7), sqltypes.NewInt(1 << 40),
			sqltypes.NewString("abc"), sqltypes.Null,
		} {
			got := spec.ShardFor(v, n)
			if got < 0 || got >= n {
				t.Fatalf("ShardFor(%v, %d) = %d out of range", v, n, got)
			}
			want := int(v.Hash() % uint64(n))
			if got != want {
				t.Fatalf("ShardFor(%v, %d) = %d, want Hash%%n = %d", v, n, got, want)
			}
		}
		// The engine guarantees Hash(a)==Hash(b) when Compare(a,b)==0, so an
		// integral float must land on its int twin's shard.
		if spec.ShardFor(sqltypes.NewFloat(42), n) != spec.ShardFor(sqltypes.NewInt(42), n) {
			t.Fatalf("integral float and int disagree at n=%d", n)
		}
	}
}

func TestShardForRange(t *testing.T) {
	spec := &ShardSpec{
		Column: "k",
		Method: ShardRange,
		Bounds: []sqltypes.Value{sqltypes.NewInt(10), sqltypes.NewInt(20)},
	}
	cases := []struct {
		v    sqltypes.Value
		want int
	}{
		{sqltypes.Null, 0},          // NULL sorts first
		{sqltypes.NewInt(-5), 0},    // unbounded below
		{sqltypes.NewInt(9), 0},     // below first bound
		{sqltypes.NewInt(10), 1},    // bound belongs to the upper shard
		{sqltypes.NewInt(19), 1},    //
		{sqltypes.NewInt(20), 2},    //
		{sqltypes.NewInt(1000), 2},  // unbounded above
		{sqltypes.NewFloat(9.5), 0}, // numeric comparison across kinds
	}
	for _, c := range cases {
		if got := spec.ShardFor(c.v, 3); got != c.want {
			t.Errorf("ShardFor(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestRegisterShardedSingleShardDegrades(t *testing.T) {
	c := New()
	spec := &ShardSpec{Column: "k"}
	if err := c.RegisterSharded("t", shardSchema(), spec, []Shard{
		{Index: 0, Placements: []Placement{{ServerID: "S1", RemoteTable: "t"}}},
	}); err != nil {
		t.Fatal(err)
	}
	n, err := c.Lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	if n.Sharding != nil || len(n.Shards) != 0 || n.Sharded() {
		t.Fatalf("single-shard registration must be a plain nickname: %+v", n)
	}
	if n.ShardCount() != 1 {
		t.Fatalf("ShardCount = %d", n.ShardCount())
	}
	if len(n.Placements) != 1 || n.Placements[0].ServerID != "S1" {
		t.Fatalf("placements: %+v", n.Placements)
	}
}

func TestRegisterShardedMultiShard(t *testing.T) {
	c := New()
	spec := &ShardSpec{Column: "k"}
	shards := []Shard{
		{Index: 0, Placements: []Placement{{ServerID: "S1", RemoteTable: ShardTableName("t", 0)}}},
		{Index: 1, Placements: []Placement{{ServerID: "S2", RemoteTable: ShardTableName("t", 1)}}},
	}
	if err := c.RegisterSharded("t", shardSchema(), spec, shards); err != nil {
		t.Fatal(err)
	}
	n, err := c.Lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	if !n.Sharded() || n.ShardCount() != 2 {
		t.Fatalf("expected 2-way sharded nickname: %+v", n)
	}
	// Placements is the union of shard hosts.
	if got := n.Servers(); len(got) != 2 {
		t.Fatalf("placement union: %v", got)
	}
	// Catalog.Clone must deep-copy the shard list.
	cl, err := c.Clone().Lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	cl.Shards[0].Placements[0].ServerID = "SX"
	if n.Shards[0].Placements[0].ServerID != "S1" {
		t.Fatal("Clone shares shard placements with the original")
	}
}

func TestRegisterShardedValidation(t *testing.T) {
	schema := shardSchema()
	cases := []struct {
		name   string
		spec   *ShardSpec
		shards []Shard
		want   string
	}{
		{"no spec", nil, mkShards(2), "shard spec"},
		{"no shards", &ShardSpec{Column: "k"}, nil, "at least one shard"},
		{"bad key", &ShardSpec{Column: "zz"}, mkShards(2), "not a column"},
		{"gap", &ShardSpec{Column: "k"}, []Shard{
			{Index: 0, Placements: []Placement{{ServerID: "S1", RemoteTable: "a"}}},
			{Index: 2, Placements: []Placement{{ServerID: "S1", RemoteTable: "b"}}},
		}, "contiguous"},
		{"no placement", &ShardSpec{Column: "k"}, []Shard{{Index: 0}},
			"at least one placement"},
		{"bound count", &ShardSpec{Column: "k", Method: ShardRange}, mkShards(3),
			"bounds"},
		{"null bound", &ShardSpec{Column: "k", Method: ShardRange,
			Bounds: []sqltypes.Value{sqltypes.Null}}, mkShards(2), "NULL"},
		{"descending bounds", &ShardSpec{Column: "k", Method: ShardRange,
			Bounds: []sqltypes.Value{sqltypes.NewInt(5), sqltypes.NewInt(5)}}, mkShards(3),
			"ascending"},
	}
	for _, tc := range cases {
		err := New().RegisterSharded("t", schema, tc.spec, tc.shards)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

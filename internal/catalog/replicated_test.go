package catalog

import (
	"strings"
	"testing"
)

func TestRegisterReplicated(t *testing.T) {
	c := New()
	err := c.RegisterReplicated("orders", schema(), []Placement{
		{ServerID: "S1", RemoteTable: "orders"},
		{ServerID: "S2", RemoteTable: "orders"},
		{ServerID: "S3", RemoteTable: "orders"},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.Lookup("orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Placements) != 3 {
		t.Fatalf("placements = %d, want 3", len(n.Placements))
	}
	if n.Placements[0].Replica {
		t.Error("first placement marked Replica; it is the primary")
	}
	for i := 1; i < 3; i++ {
		if !n.Placements[i].Replica {
			t.Errorf("placement %d not marked Replica", i)
		}
	}
}

func TestRegisterReplicatedRejectsDuplicateServer(t *testing.T) {
	c := New()
	err := c.RegisterReplicated("orders", schema(), []Placement{
		{ServerID: "S1", RemoteTable: "orders"},
		{ServerID: "S1", RemoteTable: "orders_copy"},
	})
	if err == nil || !strings.Contains(err.Error(), "placed twice") {
		t.Fatalf("duplicate server accepted: err = %v", err)
	}
}

func TestAddShardReplica(t *testing.T) {
	c := New()
	shards := mkShards(2)
	if err := c.RegisterSharded("t", shardSchema(), &ShardSpec{Method: ShardHash, Column: "k"}, shards); err != nil {
		t.Fatal(err)
	}
	if err := c.AddShardReplica("t", 1, Placement{ServerID: "S2", RemoteTable: ShardTableName("t", 1)}); err != nil {
		t.Fatal(err)
	}
	n, err := c.Lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	sh := n.Shards[1]
	if len(sh.Placements) != 2 || !sh.Placements[1].Replica {
		t.Fatalf("shard 1 placements = %+v, want appended replica on S2", sh.Placements)
	}
	if n.PlacementOn("S2") == nil {
		t.Error("aggregate placements missing new server S2")
	}
	// Duplicates and bad shard indexes are rejected.
	if err := c.AddShardReplica("t", 1, Placement{ServerID: "S2"}); err == nil {
		t.Error("duplicate shard replica accepted")
	}
	if err := c.AddShardReplica("t", 9, Placement{ServerID: "S4"}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := c.AddShardReplica("missing", 0, Placement{ServerID: "S4"}); err == nil {
		t.Error("unknown nickname accepted")
	}
}

package catalog

import (
	"testing"

	"repro/internal/sqltypes"
)

func schema() *sqltypes.Schema {
	return sqltypes.NewSchema(sqltypes.Column{Name: "id", Type: sqltypes.KindInt})
}

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.Register(&Nickname{
		Name: "orders", Schema: schema(),
		Placements: []Placement{{ServerID: "S1", RemoteTable: "orders"}, {ServerID: "S3", RemoteTable: "orders", Replica: true}},
	}))
	must(c.Register(&Nickname{
		Name: "parts", Schema: schema(),
		Placements: []Placement{{ServerID: "S2", RemoteTable: "parts"}, {ServerID: "S3", RemoteTable: "parts", Replica: true}},
	}))
	return c
}

func TestRegisterValidation(t *testing.T) {
	c := New()
	if err := c.Register(&Nickname{Schema: schema(), Placements: []Placement{{ServerID: "S1"}}}); err == nil {
		t.Fatal("missing name")
	}
	if err := c.Register(&Nickname{Name: "x", Placements: []Placement{{ServerID: "S1"}}}); err == nil {
		t.Fatal("missing schema")
	}
	if err := c.Register(&Nickname{Name: "x", Schema: schema()}); err == nil {
		t.Fatal("missing placements")
	}
}

func TestLookupAndNames(t *testing.T) {
	c := testCatalog(t)
	n, err := c.Lookup("orders")
	if err != nil || n.Name != "orders" {
		t.Fatalf("lookup: %v %v", n, err)
	}
	if _, err := c.Lookup("zzz"); err == nil {
		t.Fatal("unknown nickname")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "orders" || names[1] != "parts" {
		t.Fatalf("names: %v", names)
	}
}

func TestServersForIntersection(t *testing.T) {
	c := testCatalog(t)
	got, err := c.ServersFor("orders")
	if err != nil || len(got) != 2 {
		t.Fatalf("single: %v %v", got, err)
	}
	got, err = c.ServersFor("orders", "parts")
	if err != nil || len(got) != 1 || got[0] != "S3" {
		t.Fatalf("intersection: %v %v", got, err)
	}
	if _, err := c.ServersFor("orders", "ghost"); err == nil {
		t.Fatal("unknown in set")
	}
}

func TestAddPlacement(t *testing.T) {
	c := testCatalog(t)
	if err := c.AddPlacement("orders", Placement{ServerID: "S2", RemoteTable: "orders", Replica: true}); err != nil {
		t.Fatal(err)
	}
	got, _ := c.ServersFor("orders", "parts")
	if len(got) != 2 { // now S2 and S3
		t.Fatalf("after replica: %v", got)
	}
	if err := c.AddPlacement("orders", Placement{ServerID: "S2"}); err == nil {
		t.Fatal("duplicate placement")
	}
	if err := c.AddPlacement("ghost", Placement{ServerID: "S2"}); err == nil {
		t.Fatal("unknown nickname")
	}
}

func TestNicknameHelpers(t *testing.T) {
	c := testCatalog(t)
	n, _ := c.Lookup("orders")
	if p := n.PlacementOn("S3"); p == nil || !p.Replica {
		t.Fatalf("placement on S3: %+v", p)
	}
	if n.PlacementOn("S9") != nil {
		t.Fatal("ghost placement")
	}
	servers := n.Servers()
	if len(servers) != 2 || servers[0] != "S1" {
		t.Fatalf("servers: %v", servers)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := testCatalog(t)
	cp := c.Clone()
	if err := cp.AddPlacement("orders", Placement{ServerID: "S9"}); err != nil {
		t.Fatal(err)
	}
	n, _ := c.Lookup("orders")
	if n.PlacementOn("S9") != nil {
		t.Fatal("clone leaked into original")
	}
	if len(cp.Names()) != 2 {
		t.Fatal("clone names")
	}
}

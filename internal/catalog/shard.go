// Horizontal sharding: a nickname may be backed not by whole-table copies
// but by disjoint horizontal partitions (shards) spread across servers. The
// shard map lives here so the decomposer can prune shards by predicate on
// the shard key and emit per-shard fragments, while unsharded nicknames keep
// the exact pre-sharding representation (Sharding == nil).
package catalog

import (
	"fmt"

	"repro/internal/sqltypes"
)

// ShardMethod selects how the shard key maps rows to shards.
type ShardMethod int

const (
	// ShardHash assigns a row to shard Value.Hash() % N.
	ShardHash ShardMethod = iota
	// ShardRange assigns by ascending split bounds: shard i covers
	// [Bounds[i-1], Bounds[i]); shard 0 is unbounded below, the last shard
	// unbounded above. NULL keys sort first and land in shard 0.
	ShardRange
)

func (m ShardMethod) String() string {
	switch m {
	case ShardHash:
		return "hash"
	case ShardRange:
		return "range"
	}
	return fmt.Sprintf("ShardMethod(%d)", int(m))
}

// ShardSpec describes how a nickname's rows are partitioned.
type ShardSpec struct {
	// Column is the shard key: a column of the nickname's schema.
	Column string
	// Method is hash or range partitioning.
	Method ShardMethod
	// Bounds are the ascending range split points (len = shards-1).
	// Ignored for hash sharding.
	Bounds []sqltypes.Value
}

// Shard is one horizontal partition of a sharded nickname. Each shard may
// itself be replicated across servers, exactly like a whole table.
type Shard struct {
	// Index is the shard's position, 0-based and contiguous.
	Index int
	// Placements lists every server hosting this shard, origin first.
	Placements []Placement
}

// ShardTableName is the conventional remote-table name for shard i of a
// base table.
func ShardTableName(base string, i int) string {
	return fmt.Sprintf("%s__s%d", base, i)
}

// ShardFor returns the shard index the key value belongs to, for n shards.
// Hash uses Value.Hash() (which normalizes integral floats to int bytes, so
// numerically-equal keys agree); NULL hashes like any other value. Range
// places a value in the first shard whose upper bound exceeds it; NULLs
// compare before everything and land in shard 0.
func (s *ShardSpec) ShardFor(v sqltypes.Value, n int) int {
	if n <= 1 {
		return 0
	}
	switch s.Method {
	case ShardRange:
		for i, b := range s.Bounds {
			if i >= n-1 {
				break
			}
			if sqltypes.Compare(v, b) < 0 {
				return i
			}
		}
		return n - 1
	default:
		return int(v.Hash() % uint64(n))
	}
}

// Sharded reports whether the nickname is horizontally partitioned into
// more than one shard. Single-shard registrations behave exactly like plain
// nicknames.
func (n *Nickname) Sharded() bool {
	return n.Sharding != nil && len(n.Shards) > 1
}

// ShardCount returns the number of shards (1 for unsharded nicknames).
func (n *Nickname) ShardCount() int {
	if n.Sharding == nil || len(n.Shards) == 0 {
		return 1
	}
	return len(n.Shards)
}

// AddShardReplica registers an additional placement for one shard of a
// sharded nickname — the replicated option on sharded placements. The
// nickname's aggregate Placements gains the server too (if new), so
// placement-based grouping sees the replica as a candidate host.
func (c *Catalog) AddShardReplica(name string, shard int, p Placement) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nicknames[name]
	if !ok {
		return fmt.Errorf("catalog: unknown nickname %q", name)
	}
	if n.Sharding == nil || shard < 0 || shard >= len(n.Shards) {
		return fmt.Errorf("catalog: nickname %q has no shard %d", name, shard)
	}
	sh := &n.Shards[shard]
	for _, ex := range sh.Placements {
		if ex.ServerID == p.ServerID {
			return fmt.Errorf("catalog: nickname %q shard %d already placed on %s", name, shard, p.ServerID)
		}
	}
	p.Replica = true
	sh.Placements = append(sh.Placements, p)
	if n.PlacementOn(p.ServerID) == nil {
		n.Placements = append(n.Placements, Placement{ServerID: p.ServerID, RemoteTable: name, Replica: true})
	}
	return nil
}

// RegisterSharded adds a horizontally partitioned nickname. The shard list
// must be contiguous from index 0 and every shard needs at least one
// placement; range bounds must be strictly ascending non-NULL values with
// len(Bounds) == len(shards)-1. A single shard degrades to a plain
// registration: the nickname's Placements become that shard's placements
// and Sharding is dropped, so every downstream path sees the pre-sharding
// shape bit-for-bit.
func (c *Catalog) RegisterSharded(name string, schema *sqltypes.Schema, spec *ShardSpec, shards []Shard) error {
	if name == "" {
		return fmt.Errorf("catalog: nickname must have a name")
	}
	if schema == nil || schema.Len() == 0 {
		return fmt.Errorf("catalog: nickname %q must have a schema", name)
	}
	if spec == nil {
		return fmt.Errorf("catalog: sharded nickname %q must have a shard spec", name)
	}
	if len(shards) == 0 {
		return fmt.Errorf("catalog: sharded nickname %q must have at least one shard", name)
	}
	keyFound := false
	for i := 0; i < schema.Len(); i++ {
		if schema.Columns[i].Name == spec.Column {
			keyFound = true
			break
		}
	}
	if !keyFound {
		return fmt.Errorf("catalog: shard key %q is not a column of nickname %q", spec.Column, name)
	}
	for i, sh := range shards {
		if sh.Index != i {
			return fmt.Errorf("catalog: nickname %q shard %d has index %d; shards must be contiguous from 0", name, i, sh.Index)
		}
		if len(sh.Placements) == 0 {
			return fmt.Errorf("catalog: nickname %q shard %d must have at least one placement", name, i)
		}
	}
	if spec.Method == ShardRange {
		if len(spec.Bounds) != len(shards)-1 {
			return fmt.Errorf("catalog: nickname %q range sharding needs %d bounds for %d shards, got %d",
				name, len(shards)-1, len(shards), len(spec.Bounds))
		}
		for i, b := range spec.Bounds {
			if b.IsNull() {
				return fmt.Errorf("catalog: nickname %q range bound %d is NULL", name, i)
			}
			if i > 0 && sqltypes.Compare(spec.Bounds[i-1], b) >= 0 {
				return fmt.Errorf("catalog: nickname %q range bounds must be strictly ascending", name)
			}
		}
	}
	if len(shards) == 1 {
		return c.Register(&Nickname{
			Name:       name,
			Schema:     schema,
			Placements: append([]Placement(nil), shards[0].Placements...),
		})
	}
	n := &Nickname{
		Name:     name,
		Schema:   schema,
		Sharding: spec,
		Shards:   make([]Shard, len(shards)),
	}
	for i, sh := range shards {
		n.Shards[i] = Shard{Index: i, Placements: append([]Placement(nil), sh.Placements...)}
	}
	// Placements aggregates the union of shard hosts so placement-based
	// grouping (co-location, ServersFor) keeps working; fragment emission
	// uses the per-shard placements.
	seen := map[string]bool{}
	for _, sh := range n.Shards {
		for _, p := range sh.Placements {
			if !seen[p.ServerID] {
				seen[p.ServerID] = true
				n.Placements = append(n.Placements, Placement{ServerID: p.ServerID, RemoteTable: name, Replica: p.Replica})
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nicknames[name] = n
	return nil
}

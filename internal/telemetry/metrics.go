package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultMaxSeries caps distinct (name, label) series when no cap is
// configured. Per-server instruments dominate cardinality; with a handful of
// metric names the default admits federations of well over a hundred servers
// before dropping.
const DefaultMaxSeries = 512

// DefBuckets are the default fixed histogram bucket upper bounds, in
// simulated milliseconds, covering probe RTTs through heavily-loaded
// fragment times. A final +Inf bucket is implicit.
var DefBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Counter is a monotonically increasing metric. Nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric. Nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last recorded value (0 before the first Set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Nil-safe.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds; final +Inf implicit
	counts  []int64   // len(bounds)+1
	sum     float64
	samples int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.samples++
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.samples == 0 {
		return 0
	}
	return h.sum / float64(h.samples)
}

// Buckets snapshots (upper bound, count) pairs; the final pair's bound is
// +Inf.
func (h *Histogram) Buckets() []BucketCount {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]BucketCount, len(h.counts))
	for i, c := range h.counts {
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		out[i] = BucketCount{UpperBound: bound, Count: c}
	}
	return out
}

// BucketCount is one histogram bucket snapshot.
type BucketCount struct {
	UpperBound float64
	Count      int64
}

// seriesKey identifies one (metric, label) series.
type seriesKey struct {
	name  string
	label string
}

// Registry hands out named instruments, optionally labelled (by convention
// the label is a server ID; "" for federation-wide series). Cardinality is
// capped: once MaxSeries distinct series exist, further NEW series are
// dropped — the returned instrument is nil (whose methods no-op) and the
// drop counter rises, so the cap never fails a query path but never hides
// that it clipped. All methods are nil-safe.
type Registry struct {
	mu         sync.Mutex
	counters   map[seriesKey]*Counter
	gauges     map[seriesKey]*Gauge
	histograms map[seriesKey]*Histogram
	maxSeries  int
	dropped    atomic.Int64
}

// NewRegistry builds a registry capping distinct series at maxSeries: 0
// selects DefaultMaxSeries, negative disables the cap.
func NewRegistry(maxSeries int) *Registry {
	if maxSeries == 0 {
		maxSeries = DefaultMaxSeries
	}
	return &Registry{
		counters:   map[seriesKey]*Counter{},
		gauges:     map[seriesKey]*Gauge{},
		histograms: map[seriesKey]*Histogram{},
		maxSeries:  maxSeries,
	}
}

// seriesLen must be called with r.mu held.
func (r *Registry) seriesLen() int {
	return len(r.counters) + len(r.gauges) + len(r.histograms)
}

// admit reports whether a NEW series may be created; on refusal it counts
// the drop. Must be called with r.mu held.
func (r *Registry) admit() bool {
	if r.maxSeries > 0 && r.seriesLen() >= r.maxSeries {
		r.dropped.Add(1)
		return false
	}
	return true
}

// Counter returns the named counter series, creating it on first use.
// Returns nil (a no-op instrument) when the series cap is hit or the
// registry is nil.
func (r *Registry) Counter(name, label string) *Counter {
	if r == nil {
		return nil
	}
	k := seriesKey{name, label}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[k]; ok {
		return c
	}
	if !r.admit() {
		return nil
	}
	c := &Counter{}
	r.counters[k] = c
	return c
}

// Gauge returns the named gauge series, creating it on first use. Nil on
// cap/nil registry.
func (r *Registry) Gauge(name, label string) *Gauge {
	if r == nil {
		return nil
	}
	k := seriesKey{name, label}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[k]; ok {
		return g
	}
	if !r.admit() {
		return nil
	}
	g := &Gauge{}
	r.gauges[k] = g
	return g
}

// Histogram returns the named histogram series, creating it on first use
// with the given bucket bounds (nil selects DefBuckets). Nil on cap/nil
// registry.
func (r *Registry) Histogram(name, label string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	k := seriesKey{name, label}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[k]; ok {
		return h
	}
	if !r.admit() {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	h := &Histogram{bounds: buckets, counts: make([]int64, len(buckets)+1)}
	r.histograms[k] = h
	return h
}

// CounterValue reads a counter series without creating it.
func (r *Registry) CounterValue(name, label string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[seriesKey{name, label}]
	r.mu.Unlock()
	return c.Value()
}

// GaugeValue reads a gauge series without creating it; ok is false when the
// series does not exist.
func (r *Registry) GaugeValue(name, label string) (v float64, ok bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	g, ok := r.gauges[seriesKey{name, label}]
	r.mu.Unlock()
	return g.Value(), ok
}

// HistogramOf reads a histogram series without creating it (nil when
// absent).
func (r *Registry) HistogramOf(name, label string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.histograms[seriesKey{name, label}]
}

// DroppedSeries returns how many series creations the cardinality cap has
// refused.
func (r *Registry) DroppedSeries() int64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// MetricSnapshot is one series in a registry dump.
type MetricSnapshot struct {
	Name  string
	Label string
	// Kind is "counter", "gauge" or "histogram".
	Kind string
	// Value is the counter count or gauge value; for histograms the sample
	// mean.
	Value float64
	// Count and Sum are histogram-only.
	Count int64
	Sum   float64
	// Buckets are histogram-only (upper bound, cumulative-free count) pairs.
	Buckets []BucketCount
}

// Snapshot dumps every series, sorted by (name, label).
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]MetricSnapshot, 0, r.seriesLen())
	for k, c := range r.counters {
		out = append(out, MetricSnapshot{Name: k.name, Label: k.label, Kind: "counter", Value: float64(c.Value())})
	}
	for k, g := range r.gauges {
		out = append(out, MetricSnapshot{Name: k.name, Label: k.label, Kind: "gauge", Value: g.Value()})
	}
	hists := make(map[seriesKey]*Histogram, len(r.histograms))
	for k, h := range r.histograms {
		hists[k] = h
	}
	r.mu.Unlock()
	for k, h := range hists {
		out = append(out, MetricSnapshot{
			Name: k.name, Label: k.label, Kind: "histogram",
			Value: h.Mean(), Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Label < out[j].Label
	})
	return out
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// spanJSON mirrors Span for JSON export (Span itself holds a mutex and
// unexported fields).
type spanJSON struct {
	Name     string     `json:"name"`
	Layer    Layer      `json:"layer"`
	Server   string     `json:"server,omitempty"`
	Start    float64    `json:"start_ms"`
	Dur      float64    `json:"dur_ms"`
	Attrs    []Attr     `json:"attrs,omitempty"`
	Children []spanJSON `json:"children,omitempty"`
}

// traceJSON mirrors Trace for JSON export.
type traceJSON struct {
	ID       int64    `json:"id"`
	Query    string   `json:"query"`
	SubmitAt float64  `json:"submit_at_ms"`
	Done     bool     `json:"done"`
	Err      string   `json:"err,omitempty"`
	Root     spanJSON `json:"root"`
}

func spanToJSON(s *Span) spanJSON {
	out := spanJSON{
		Name:   s.Name(),
		Layer:  s.Layer(),
		Server: s.Server(),
		Start:  float64(s.Start()),
		Dur:    float64(s.Dur()),
		Attrs:  s.Attrs(),
	}
	for _, c := range s.Children() {
		out.Children = append(out.Children, spanToJSON(c))
	}
	return out
}

// MarshalJSON exports the whole trace as a nested span tree.
func (t *Trace) MarshalJSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	return json.Marshal(traceJSON{
		ID:       t.ID,
		Query:    t.Query,
		SubmitAt: float64(t.SubmitAt),
		Done:     t.Done(),
		Err:      t.Err(),
		Root:     spanToJSON(t.Root),
	})
}

// Tree renders the trace as an indented human-readable span tree with
// virtual-time offsets and durations, e.g.:
//
//	trace #3 "SELECT ..." submit=120.0ms total=46.2ms
//	└─ query                      ii            @0.0ms  46.2ms
//	   ├─ plancache.lookup        ii            @0.0ms   0.0ms  hit=false
//	   ...
func (t *Trace) Tree() string {
	if t == nil {
		return "(no trace)"
	}
	var b strings.Builder
	status := ""
	if e := t.Err(); e != "" {
		status = " ERR=" + e
	} else if !t.Done() {
		status = " (in flight)"
	}
	fmt.Fprintf(&b, "trace #%d %q submit=%.1fms total=%.2fms%s\n",
		t.ID, t.Query, float64(t.SubmitAt), float64(t.Root.Dur()), status)
	writeSpanTree(&b, t.Root, "", true)
	return b.String()
}

func writeSpanTree(b *strings.Builder, s *Span, prefix string, last bool) {
	if s == nil {
		return
	}
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	label := s.Name()
	if srv := s.Server(); srv != "" {
		label += "(" + srv + ")"
	}
	fmt.Fprintf(b, "%s%s%-34s %-12s @%8.2fms %9.2fms", prefix, branch, label, s.Layer(), float64(s.Start()), float64(s.Dur()))
	for _, a := range s.Attrs() {
		fmt.Fprintf(b, "  %s=%s", a.Key, firstLine(a.Value))
	}
	b.WriteByte('\n')
	children := s.Children()
	for i, c := range children {
		writeSpanTree(b, c, childPrefix, i == len(children)-1)
	}
}

// firstLine keeps multi-line attr values (e.g. physical plan trees) from
// breaking the one-line-per-span layout.
func firstLine(v string) string {
	if i := strings.IndexByte(v, '\n'); i >= 0 {
		return v[:i] + " …"
	}
	return v
}

// FormatMetrics renders a registry snapshot as an aligned human-readable
// table, counters/gauges one per line and histograms with count/mean.
func FormatMetrics(r *Registry) string {
	if r == nil {
		return "(telemetry disabled)\n"
	}
	snap := r.Snapshot()
	if len(snap) == 0 {
		return "(no metrics recorded)\n"
	}
	var b strings.Builder
	for _, m := range snap {
		name := m.Name
		if m.Label != "" {
			name += "{" + m.Label + "}"
		}
		switch m.Kind {
		case "histogram":
			fmt.Fprintf(&b, "%-44s count=%-6d mean=%.2fms sum=%.2fms\n", name, m.Count, m.Value, m.Sum)
		case "gauge":
			fmt.Fprintf(&b, "%-44s %.4f\n", name, m.Value)
		default:
			fmt.Fprintf(&b, "%-44s %d\n", name, int64(m.Value))
		}
	}
	if d := r.DroppedSeries(); d > 0 {
		fmt.Fprintf(&b, "(%d series dropped by cardinality cap)\n", d)
	}
	return b.String()
}

// FormatTimeline renders the calibration-factor timeline grouped by server,
// samples in time order — the paper's calibration-factor vs. load artifact in
// text form.
func FormatTimeline(ts *TimelineStore) string {
	if ts == nil {
		return "(telemetry disabled)\n"
	}
	samples := ts.Samples()
	if len(samples) == 0 {
		return "(no calibration samples)\n"
	}
	byServer := map[string][]FactorSample{}
	for _, s := range samples {
		byServer[s.Server] = append(byServer[s.Server], s)
	}
	servers := make([]string, 0, len(byServer))
	for srv := range byServer {
		servers = append(servers, srv)
	}
	sort.Strings(servers)
	var b strings.Builder
	for _, srv := range servers {
		fmt.Fprintf(&b, "%s:\n", srv)
		for _, s := range byServer[srv] {
			fmt.Fprintf(&b, "  t=%10.1fms  factor=%.4f\n", float64(s.At), s.Factor)
		}
	}
	if e := ts.Evicted(); e > 0 {
		fmt.Fprintf(&b, "(%d samples evicted by retention bound)\n", e)
	}
	return b.String()
}

package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/simclock"
)

func TestNilSafety(t *testing.T) {
	var tel *Telemetry
	if tel.Enabled() {
		t.Fatal("nil telemetry reports enabled")
	}
	tel.SetEnabled(true)
	if tr := tel.StartTrace("q", 0); tr != nil {
		t.Fatal("nil telemetry started a trace")
	}
	tel.AppendFactor(0, "s", 1)
	if tel.Active() != nil || tel.Tracer() != nil || tel.Metrics() != nil || tel.Timelines() != nil {
		t.Fatal("nil telemetry handed out non-nil components")
	}

	var s *Span
	s.SetAttr("k", "v")
	s.End(1)
	s.Advance(1)
	if c := s.Child("c", LayerII, ""); c != nil {
		t.Fatal("nil span produced a child")
	}
	if c := s.Emit("c", LayerII, "", 1); c != nil {
		t.Fatal("nil span emitted a child")
	}
	if s.Dur() != 0 || s.Name() != "" || len(s.Children()) != 0 {
		t.Fatal("nil span accessors not zero")
	}

	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Mean() != 0 || h.Buckets() != nil {
		t.Fatal("nil histogram holds samples")
	}
	var r *Registry
	if r.Counter("a", "") != nil || r.Gauge("a", "") != nil || r.Histogram("a", "", nil) != nil {
		t.Fatal("nil registry handed out instruments")
	}
	var ring *Tracer
	if ring.StartTrace("q", 0) != nil || ring.Len() != 0 {
		t.Fatal("nil tracer retained a trace")
	}
	ring.FinishTrace(nil, nil)
	var ts *TimelineStore
	ts.Append(0, "s", 1)
	if ts.Len() != 0 || ts.Samples() != nil {
		t.Fatal("nil timeline store retained samples")
	}
}

func TestDisabledCollectsNothing(t *testing.T) {
	tel := New(Config{})
	if tel.Enabled() {
		t.Fatal("zero config should be disabled")
	}
	if tr := tel.StartTrace("q", 0); tr != nil {
		t.Fatal("disabled telemetry started a trace")
	}
	if tel.Active() != nil {
		t.Fatal("disabled telemetry returned an active registry")
	}
	tel.AppendFactor(1, "s", 1.5)
	if tel.Timelines().Len() != 0 {
		t.Fatal("disabled telemetry appended a sample")
	}

	tel.SetEnabled(true)
	if tel.StartTrace("q", 0) == nil || tel.Active() == nil {
		t.Fatal("enabled telemetry inert")
	}
	tel.SetEnabled(false)
	if tel.Tracer().Len() != 1 {
		t.Fatal("disabling dropped already-collected traces")
	}
}

func TestSpanCursorModel(t *testing.T) {
	tel := New(Config{Enabled: true})
	tr := tel.StartTrace("SELECT 1", 100)
	root := tr.Root
	if root.Start() != 100 {
		t.Fatalf("root start = %v, want 100", root.Start())
	}

	// Sequential sub-steps advance the cursor.
	root.Emit("parse", LayerII, "", 2)
	root.Emit("plan", LayerII, "", 3)

	// Parallel fragment children all open at the same cursor.
	f1 := root.Child("fragment", LayerMW, "s1")
	f2 := root.Child("fragment", LayerMW, "s2")
	if f1.Start() != 105 || f2.Start() != 105 {
		t.Fatalf("fragment starts = %v, %v, want both 105", f1.Start(), f2.Start())
	}

	// Each fragment is a sequential chain of known-duration steps.
	f1.Emit("network.send", LayerNetwork, "s1", 4)
	f1.Emit("remote.exec", LayerRemote, "s1", 10)
	f1.Emit("network.recv", LayerNetwork, "s1", 6)
	f1.End(20)
	f2.Emit("network.send", LayerNetwork, "s2", 1)
	f2.Emit("remote.exec", LayerRemote, "s2", 5)
	f2.Emit("network.recv", LayerNetwork, "s2", 2)
	f2.End(8)

	// Leaf durations must sum to the fragment duration exactly.
	for _, f := range []*Span{f1, f2} {
		var sum float64
		for _, c := range f.Children() {
			sum += float64(c.Dur())
		}
		if sum != float64(f.Dur()) {
			t.Fatalf("fragment %s children sum %v != dur %v", f.Server(), sum, f.Dur())
		}
	}

	// Root advances past the parallel phase (max fragment time), then merges.
	root.Advance(20)
	m := root.Emit("merge", LayerII, "", 3)
	if m.Start() != 125 {
		t.Fatalf("merge start = %v, want 125", m.Start())
	}
	root.End(28)
	root.End(99) // repeated End keeps the first duration
	if root.Dur() != 28 {
		t.Fatalf("root dur = %v, want 28", root.Dur())
	}

	tel.Tracer().FinishTrace(tr, nil)
	if !tr.Done() || tr.Err() != "" {
		t.Fatal("trace not finished cleanly")
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if SpanFrom(ctx) != nil {
		t.Fatal("empty context yielded a span")
	}
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Fatal("nil span should not allocate a new context")
	}
	s := &Span{name: "x"}
	ctx2 := ContextWithSpan(ctx, s)
	if SpanFrom(ctx2) != s {
		t.Fatal("span did not round-trip through context")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 10; i++ {
		tr.StartTrace(fmt.Sprintf("q%d", i), 0)
	}
	if tr.Len() != 3 {
		t.Fatalf("ring length = %d, want 3", tr.Len())
	}
	if tr.Evicted() != 7 {
		t.Fatalf("evicted = %d, want 7", tr.Evicted())
	}
	got := tr.Traces()
	if len(got) != 3 || got[0].Query != "q7" || got[2].Query != "q9" {
		t.Fatalf("ring retained wrong traces: %v", got)
	}
	if tr.Last().Query != "q9" {
		t.Fatalf("Last = %q, want q9", tr.Last().Query)
	}

	unbounded := NewTracer(-1)
	for i := 0; i < 500; i++ {
		unbounded.StartTrace("q", 0)
	}
	if unbounded.Len() != 500 || unbounded.Evicted() != 0 {
		t.Fatal("negative capacity should disable the bound")
	}
}

func TestTracerCompaction(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 400; i++ {
		tr.StartTrace("q", 0)
	}
	if tr.Len() != 2 || tr.Evicted() != 398 {
		t.Fatalf("len=%d evicted=%d after compaction churn", tr.Len(), tr.Evicted())
	}
}

func TestRegistryInstrumentsAndCap(t *testing.T) {
	r := NewRegistry(3)
	c := r.Counter("hits", "")
	c.Inc()
	c.Add(2)
	if got := r.CounterValue("hits", ""); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	g := r.Gauge("factor", "s1")
	g.Set(1.25)
	if v, ok := r.GaugeValue("factor", "s1"); !ok || v != 1.25 {
		t.Fatalf("gauge = %v,%v", v, ok)
	}
	h := r.Histogram("rt", "s1", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	if h.Count() != 3 || h.Sum() != 5055 {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	b := h.Buckets()
	if len(b) != 3 || b[0].Count != 1 || b[1].Count != 1 || b[2].Count != 1 {
		t.Fatalf("bucket counts wrong: %+v", b)
	}

	// Cap reached: existing series still resolve, new ones drop to nil.
	if r.Counter("hits", "") != c {
		t.Fatal("existing series did not resolve at cap")
	}
	if r.Counter("new", "") != nil {
		t.Fatal("cap admitted a fourth series")
	}
	if r.Gauge("new", "") != nil || r.Histogram("new", "", nil) != nil {
		t.Fatal("cap admitted gauge/histogram series")
	}
	if r.DroppedSeries() != 3 {
		t.Fatalf("dropped = %d, want 3", r.DroppedSeries())
	}

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot length = %d, want 3", len(snap))
	}
	if snap[0].Name != "factor" || snap[0].Kind != "gauge" {
		t.Fatalf("snapshot not sorted: %+v", snap[0])
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewRegistry(-1).Histogram("x", "", nil)
	h.Observe(1) // exactly on a bound lands in that bucket (<= semantics)
	b := h.Buckets()
	if b[0].UpperBound != 1 || b[0].Count != 1 {
		t.Fatalf("boundary sample missed first bucket: %+v", b[0])
	}
}

func TestTimelineStore(t *testing.T) {
	ts := NewTimelineStore(4)
	for i := 0; i < 6; i++ {
		ts.Append(simclock.Time(i*10), "s1", 1+float64(i)/10)
	}
	ts.Append(100, "s2", 2)
	if ts.Len() != 4 || ts.Evicted() != 3 {
		t.Fatalf("len=%d evicted=%d, want 4/3", ts.Len(), ts.Evicted())
	}
	s1 := ts.ServerSamples("s1")
	if len(s1) != 3 || s1[0].At != 30 || s1[2].Factor != 1.5 {
		t.Fatalf("s1 samples wrong: %+v", s1)
	}
	if got := ts.ServerSamples("s2"); len(got) != 1 || got[0].Factor != 2 {
		t.Fatalf("s2 samples wrong: %+v", got)
	}
}

type collectSink struct {
	mu  sync.Mutex
	got []*Trace
}

func (c *collectSink) ExportTrace(t *Trace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, t)
}

func TestTraceSink(t *testing.T) {
	tr := NewTracer(0)
	sink := &collectSink{}
	tr.SetSink(sink)
	a := tr.StartTrace("q", 0)
	tr.FinishTrace(a, errors.New("boom"))
	if len(sink.got) != 1 || sink.got[0].Err() != "boom" {
		t.Fatalf("sink did not receive finished trace: %+v", sink.got)
	}
}

func TestExporters(t *testing.T) {
	tel := New(Config{Enabled: true})
	tr := tel.StartTrace("SELECT * FROM t", 10)
	tr.Root.Emit("parse", LayerII, "", 1)
	f := tr.Root.Child("fragment", LayerMW, "srv1")
	f.SetAttr("sql", "SELECT 1")
	f.Emit("remote.exec", LayerRemote, "srv1", 5)
	f.End(5)
	tr.Root.End(6)
	tel.Tracer().FinishTrace(tr, nil)

	tree := tr.Tree()
	for _, want := range []string{"trace #1", "parse", "fragment(srv1)", "remote.exec", "sql=SELECT 1", "total=6.00ms"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}

	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var decoded traceJSON
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != 1 || decoded.Root.Name != "query" || len(decoded.Root.Children) != 2 {
		t.Fatalf("JSON round-trip wrong: %+v", decoded)
	}
	if decoded.Root.Children[1].Children[0].Layer != LayerRemote {
		t.Fatal("nested child layer lost in JSON")
	}

	reg := tel.Metrics()
	reg.Counter("ii.retries", "").Inc()
	reg.Gauge("qcc.calibration_factor", "srv1").Set(1.5)
	reg.Histogram("mw.response_ms", "srv1", nil).Observe(12)
	mtext := FormatMetrics(reg)
	for _, want := range []string{"ii.retries", "qcc.calibration_factor{srv1}", "1.5000", "mw.response_ms{srv1}", "count=1"} {
		if !strings.Contains(mtext, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, mtext)
		}
	}

	tel.AppendFactor(100, "srv1", 1.2)
	tel.AppendFactor(200, "srv1", 1.8)
	ttext := FormatTimeline(tel.Timelines())
	for _, want := range []string{"srv1:", "t=     100.0ms", "factor=1.8000"} {
		if !strings.Contains(ttext, want) {
			t.Fatalf("timeline text missing %q:\n%s", want, ttext)
		}
	}

	if got := FormatMetrics(nil); !strings.Contains(got, "disabled") {
		t.Fatalf("nil registry format: %q", got)
	}
	if got := FormatTimeline(NewTimelineStore(0)); !strings.Contains(got, "no calibration samples") {
		t.Fatalf("empty timeline format: %q", got)
	}
	var nilTrace *Trace
	if nilTrace.Tree() != "(no trace)" {
		t.Fatal("nil trace tree")
	}
}

// TestTelemetryConcurrency is the race-detector target CI runs with -race:
// many goroutines hammer one Telemetry handle across traces, spans, metrics
// and timelines while another flips the enabled switch.
func TestTelemetryConcurrency(t *testing.T) {
	tel := New(Config{Enabled: true, TraceCapacity: 32, TimelineCapacity: 64})
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			srv := fmt.Sprintf("s%d", w%3)
			for i := 0; i < iters; i++ {
				tr := tel.StartTrace("q", simclock.Time(i))
				var root *Span
				if tr != nil {
					root = tr.Root
				}
				root.Emit("parse", LayerII, "", 1)
				f := root.Child("fragment", LayerMW, srv)
				f.Emit("remote.exec", LayerRemote, srv, 2)
				f.SetAttr("i", "x")
				f.End(2)
				root.Advance(2)
				root.End(3)
				tel.Tracer().FinishTrace(tr, nil)

				reg := tel.Active()
				reg.Counter("ii.queries", "").Inc()
				reg.Gauge("qcc.calibration_factor", srv).Set(float64(i))
				reg.Histogram("mw.response_ms", srv, nil).Observe(float64(i))
				tel.AppendFactor(simclock.Time(i), srv, 1.0)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			tel.SetEnabled(i%2 == 0)
			_ = tel.Tracer().Traces()
			_ = tel.Metrics().Snapshot()
			_ = tel.Timelines().Samples()
			_ = tel.Tracer().Last().Tree()
		}
		tel.SetEnabled(true)
	}()
	wg.Wait()
	if tel.Tracer().Len() > 32 {
		t.Fatalf("trace ring exceeded capacity: %d", tel.Tracer().Len())
	}
	if tel.Metrics().CounterValue("ii.queries", "") == 0 {
		t.Fatal("no counter updates recorded")
	}
}

package telemetry

import (
	"sync"

	"repro/internal/simclock"
)

// DefaultTimelineCapacity bounds retained calibration samples when no
// capacity is configured.
const DefaultTimelineCapacity = 4096

// FactorSample is one published calibration-factor observation.
type FactorSample struct {
	At     simclock.Time
	Server string
	Factor float64
}

// TimelineStore retains calibration-factor samples in submission order in a
// bounded ring (oldest evicted first), so the paper's calibration-factor vs.
// load timelines can be rebuilt from a live run. All methods are nil-safe.
type TimelineStore struct {
	mu      sync.Mutex
	samples []FactorSample
	// head indexes the oldest retained sample.
	head int
	// capacity bounds retained samples; <= 0 means unbounded.
	capacity int
	evicted  int64
}

// NewTimelineStore builds a store retaining up to capacity samples: 0
// selects DefaultTimelineCapacity, negative disables the bound.
func NewTimelineStore(capacity int) *TimelineStore {
	if capacity == 0 {
		capacity = DefaultTimelineCapacity
	}
	return &TimelineStore{capacity: capacity}
}

// Append records one sample.
func (ts *TimelineStore) Append(at simclock.Time, server string, factor float64) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.samples = append(ts.samples, FactorSample{At: at, Server: server, Factor: factor})
	if ts.capacity > 0 {
		for len(ts.samples)-ts.head > ts.capacity {
			ts.head++
			ts.evicted++
		}
		// Compact once the dead prefix dominates, amortizing to O(1).
		if ts.head > 256 && ts.head*2 >= len(ts.samples) {
			ts.samples = append(ts.samples[:0:0], ts.samples[ts.head:]...)
			ts.head = 0
		}
	}
}

// Samples snapshots all retained samples, oldest first.
func (ts *TimelineStore) Samples() []FactorSample {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]FactorSample(nil), ts.samples[ts.head:]...)
}

// ServerSamples snapshots the retained samples for one server, oldest first.
func (ts *TimelineStore) ServerSamples(server string) []FactorSample {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	var out []FactorSample
	for _, s := range ts.samples[ts.head:] {
		if s.Server == server {
			out = append(out, s)
		}
	}
	return out
}

// Len returns the number of retained samples.
func (ts *TimelineStore) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.samples) - ts.head
}

// Evicted returns how many samples the retention bound has dropped.
func (ts *TimelineStore) Evicted() int64 {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.evicted
}

package telemetry

import (
	"context"
	"sync"

	"repro/internal/simclock"
)

// Attr is one span annotation.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed operation in a trace, timestamped on virtual time.
//
// Virtual durations are COMPUTED in this system, not elapsed: a fragment's
// response time is derived and charged to the clock after the fact, so spans
// record their duration explicitly at End (or at emission for
// known-duration children) rather than sampling a clock twice.
//
// Each span keeps a cursor — the virtual offset from its own start at which
// the next sequential child begins. Children created through Child start at
// the current cursor without advancing it (parallel siblings, e.g. the
// fragment fan-out all start when the remote phase starts); children emitted
// through Emit advance it (sequential sub-steps, e.g. network-send →
// remote-exec → network-recv within one dispatch). Advance moves the cursor
// explicitly, e.g. past the parallel remote phase before the merge span.
//
// All methods are safe on a nil *Span and safe for concurrent use, so
// instrumented layers never branch on whether tracing is active.
type Span struct {
	mu       sync.Mutex
	name     string
	layer    Layer
	server   string
	start    simclock.Time
	dur      simclock.Time
	attrs    []Attr
	children []*Span
	cursor   simclock.Time
	ended    bool
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Layer returns the span's architectural layer ("" on nil).
func (s *Span) Layer() Layer {
	if s == nil {
		return ""
	}
	return s.layer
}

// Server returns the server the span is attributed to ("" on nil or for
// II-local work).
func (s *Span) Server() string {
	if s == nil {
		return ""
	}
	return s.server
}

// Start returns the span's virtual start time.
func (s *Span) Start() simclock.Time {
	if s == nil {
		return 0
	}
	return s.start
}

// Dur returns the span's virtual duration (0 until ended).
func (s *Span) Dur() simclock.Time {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Attrs snapshots the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children snapshots the child spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// SetAttr annotates the span. Nil-safe no-op.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Child opens a child span at the current cursor WITHOUT advancing it:
// siblings created this way run in parallel in virtual time (the fragment
// fan-out). End the child with its computed duration. Nil-safe: a nil
// receiver returns nil.
func (s *Span) Child(name string, layer Layer, server string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := &Span{name: name, layer: layer, server: server, start: s.start + s.cursor}
	s.children = append(s.children, c)
	return c
}

// Emit appends an already-complete child of known duration at the current
// cursor and advances the cursor past it — the sequential sub-steps of a
// dispatch (queue, network-send, remote-exec, network-recv). Nil-safe.
func (s *Span) Emit(name string, layer Layer, server string, dur simclock.Time) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := &Span{name: name, layer: layer, server: server, start: s.start + s.cursor, dur: dur, ended: true}
	s.children = append(s.children, c)
	s.cursor += dur
	return c
}

// Advance moves the cursor forward without recording a child — e.g. the II
// root span advances past the parallel remote phase (max fragment time)
// before emitting the merge span. Nil-safe.
func (s *Span) Advance(dur simclock.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cursor += dur
}

// End closes the span with its computed virtual duration. Repeated Ends keep
// the first duration. Nil-safe.
func (s *Span) End(dur simclock.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.dur = dur
	s.ended = true
}

// Trace is one query's span tree plus its outcome.
type Trace struct {
	// ID is the trace's ring-assigned identifier (monotonic per tracer).
	ID int64
	// Query is the traced statement text.
	Query string
	// SubmitAt is the virtual submission time.
	SubmitAt simclock.Time
	// Root is the query-level span.
	Root *Span

	mu   sync.Mutex
	done bool
	err  string
}

// Finish marks the trace complete; err may be nil. Nil-safe.
func (t *Trace) Finish(err error) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done = true
	if err != nil {
		t.err = err.Error()
	}
}

// Done reports completion; Err is the failure text ("" on success).
func (t *Trace) Done() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// Err returns the trace's failure text ("" when successful or in flight).
func (t *Trace) Err() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// spanKey is the context key carrying the active span.
type spanKey struct{}

// ContextWithSpan returns a context carrying the span as the active parent
// for downstream layers. A nil span returns ctx unchanged, so untraced
// queries pay no context allocation.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom extracts the active span, or nil when the query is untraced.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

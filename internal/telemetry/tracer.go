package telemetry

import (
	"sync"

	"repro/internal/simclock"
)

// DefaultTraceCapacity bounds the trace ring when no capacity is configured.
const DefaultTraceCapacity = 256

// TraceSink receives every finished trace — wire an exporter (file, test
// collector) without polling the ring. The sink runs synchronously on the
// query's completion path; keep it cheap.
type TraceSink interface {
	ExportTrace(t *Trace)
}

// Tracer retains recent traces in a bounded ring, evicting oldest first,
// mirroring the query patroller's retention scheme. Evictions are counted so
// silent drops are visible.
type Tracer struct {
	mu     sync.Mutex
	nextID int64
	traces []*Trace
	// head indexes the oldest retained trace.
	head int
	// capacity bounds retained traces; <= 0 means unbounded.
	capacity int
	evicted  int64
	sink     TraceSink
}

// NewTracer builds a tracer retaining up to capacity traces: 0 selects
// DefaultTraceCapacity, negative disables the bound.
func NewTracer(capacity int) *Tracer {
	if capacity == 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{capacity: capacity}
}

// SetSink installs (or clears, with nil) the finished-trace sink.
func (tr *Tracer) SetSink(s TraceSink) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.sink = s
}

// StartTrace opens and retains a trace. The root span starts at the
// submission time with the query-level name.
func (tr *Tracer) StartTrace(query string, at simclock.Time) *Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.nextID++
	t := &Trace{
		ID:       tr.nextID,
		Query:    query,
		SubmitAt: at,
		Root:     &Span{name: "query", layer: LayerII, start: at},
	}
	tr.traces = append(tr.traces, t)
	if tr.capacity > 0 {
		for len(tr.traces)-tr.head > tr.capacity {
			tr.traces[tr.head] = nil
			tr.head++
			tr.evicted++
		}
		// Compact once the dead prefix dominates, amortizing to O(1).
		if tr.head > 64 && tr.head*2 >= len(tr.traces) {
			tr.traces = append(tr.traces[:0:0], tr.traces[tr.head:]...)
			tr.head = 0
		}
	}
	return t
}

// FinishTrace marks the trace done and hands it to the sink, if any.
func (tr *Tracer) FinishTrace(t *Trace, err error) {
	if tr == nil || t == nil {
		return
	}
	t.Finish(err)
	tr.mu.Lock()
	sink := tr.sink
	tr.mu.Unlock()
	if sink != nil {
		sink.ExportTrace(t)
	}
}

// Traces snapshots the retained traces, oldest first.
func (tr *Tracer) Traces() []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]*Trace(nil), tr.traces[tr.head:]...)
}

// Last returns the most recently started trace, or nil.
func (tr *Tracer) Last() *Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.traces) == tr.head {
		return nil
	}
	return tr.traces[len(tr.traces)-1]
}

// Len returns the number of retained traces.
func (tr *Tracer) Len() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.traces) - tr.head
}

// Evicted returns how many traces the retention bound has dropped.
func (tr *Tracer) Evicted() int64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.evicted
}

// Capacity returns the retention bound (<= 0 means unbounded).
func (tr *Tracer) Capacity() int {
	if tr == nil {
		return 0
	}
	return tr.capacity
}

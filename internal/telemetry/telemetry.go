// Package telemetry is the federation's zero-dependency observability
// subsystem: per-query distributed traces timestamped on simclock virtual
// time, a bounded metrics registry (counters, gauges, fixed-bucket
// histograms), and calibration-factor timelines that make the paper's
// central artifact — calibration factor vs. load over time — reproducible
// from a live run.
//
// Everything is nil-safe and compiles to near-zero cost when disabled: a nil
// *Telemetry (or a disabled one) hands out nil traces, nil spans and nil
// instruments, and every method on those is a no-op. Instrumented layers
// therefore never guard their telemetry calls; the zero value of the whole
// subsystem is "off".
//
// Retention is bounded everywhere, mirroring the query patroller: the trace
// ring evicts oldest traces, the metrics registry caps label cardinality,
// and the timeline ring evicts oldest samples — each with an eviction/drop
// counter so silent loss is visible.
package telemetry

import (
	"sync/atomic"

	"repro/internal/simclock"
)

// Layer names the architectural layer a span belongs to. The acceptance bar
// for a federated query trace is that all five execution layers appear:
// II, meta-wrapper, wrapper, network and remote.
type Layer string

// The federation's layers, top to bottom.
const (
	LayerII      Layer = "ii"
	LayerMW      Layer = "metawrapper"
	LayerWrapper Layer = "wrapper"
	LayerNetwork Layer = "network"
	LayerRemote  Layer = "remote"
	LayerQCC     Layer = "qcc"
)

// Config tunes the subsystem. The zero value selects all defaults with
// collection DISABLED; call SetEnabled(true) (or set Enabled) to collect.
type Config struct {
	// Enabled starts the subsystem collecting immediately.
	Enabled bool
	// TraceCapacity bounds the retained trace ring (0 selects
	// DefaultTraceCapacity, negative disables the bound).
	TraceCapacity int
	// MaxSeries caps distinct (metric, label) series in the registry (0
	// selects DefaultMaxSeries, negative disables the bound).
	MaxSeries int
	// TimelineCapacity bounds retained calibration samples (0 selects
	// DefaultTimelineCapacity, negative disables the bound).
	TimelineCapacity int
}

// Telemetry bundles the tracer, the metrics registry and the calibration
// timeline store behind one switchable handle.
type Telemetry struct {
	enabled  atomic.Bool
	tracer   *Tracer
	metrics  *Registry
	timeline *TimelineStore
}

// New builds a Telemetry handle.
func New(cfg Config) *Telemetry {
	t := &Telemetry{
		tracer:   NewTracer(cfg.TraceCapacity),
		metrics:  NewRegistry(cfg.MaxSeries),
		timeline: NewTimelineStore(cfg.TimelineCapacity),
	}
	t.enabled.Store(cfg.Enabled)
	return t
}

// Enabled reports whether collection is on. Nil-safe.
func (t *Telemetry) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled switches collection on or off. Disabling stops new traces,
// metric updates and timeline appends but retains everything already
// collected. Nil-safe no-op.
func (t *Telemetry) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Tracer returns the trace ring (always, for inspection). Nil-safe.
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Metrics returns the registry (always, for inspection). Nil-safe.
func (t *Telemetry) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.metrics
}

// Timelines returns the calibration timeline store (always, for inspection).
// Nil-safe.
func (t *Telemetry) Timelines() *TimelineStore {
	if t == nil {
		return nil
	}
	return t.timeline
}

// Active returns the registry only while collection is enabled — the fast
// path instrumented layers use, so a disabled subsystem costs one atomic
// load per call site. Nil-safe.
func (t *Telemetry) Active() *Registry {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	return t.metrics
}

// StartTrace opens a trace for one query when collection is enabled,
// retaining it in the trace ring immediately (an in-flight query is
// observable). Returns nil — and the query runs untraced — when disabled.
func (t *Telemetry) StartTrace(query string, at simclock.Time) *Trace {
	if !t.Enabled() {
		return nil
	}
	return t.tracer.StartTrace(query, at)
}

// AppendFactor records one calibration-factor sample when enabled. Nil-safe.
func (t *Telemetry) AppendFactor(at simclock.Time, server string, factor float64) {
	if t.Enabled() {
		t.timeline.Append(at, server, factor)
	}
}

package repl

import (
	"strings"
	"testing"

	fedqcc "repro"
)

func newSession(t *testing.T, qccOn bool) (*Session, *strings.Builder) {
	t.Helper()
	fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: 200})
	if err != nil {
		t.Fatal(err)
	}
	var cal *fedqcc.Calibrator
	if qccOn {
		cal = fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})
	}
	out := &strings.Builder{}
	return &Session{Fed: fed, Cal: cal, Out: out}, out
}

func run(s *Session, out *strings.Builder, line string) string {
	out.Reset()
	s.Execute(line)
	return out.String()
}

func TestSessionQuery(t *testing.T) {
	s, out := newSession(t, true)
	got := run(s, out, "SELECT COUNT(*) FROM parts AS p")
	if !strings.Contains(got, "[1 rows]") || !strings.Contains(got, "routed") {
		t.Fatalf("query output: %s", got)
	}
	got = run(s, out, "SELEKT")
	if !strings.Contains(got, "error:") {
		t.Fatalf("bad sql: %s", got)
	}
	if run(s, out, "   ") != "" {
		t.Fatal("blank line must be silent")
	}
}

func TestSessionLoadDownCongest(t *testing.T) {
	s, out := newSession(t, true)
	if got := run(s, out, "\\load S3 0.5"); !strings.Contains(got, "S3 load = 0.50") {
		t.Fatalf("load: %s", got)
	}
	if got := run(s, out, "\\load S3"); !strings.Contains(got, "usage") {
		t.Fatalf("load usage: %s", got)
	}
	if got := run(s, out, "\\load S3 abc"); !strings.Contains(got, "bad level") {
		t.Fatalf("load parse: %s", got)
	}
	if got := run(s, out, "\\load S9 1"); !strings.Contains(got, "unknown server") {
		t.Fatalf("load unknown: %s", got)
	}
	if got := run(s, out, "\\down S2"); !strings.Contains(got, "S2 down = true") {
		t.Fatalf("down: %s", got)
	}
	if got := run(s, out, "\\up S2"); !strings.Contains(got, "S2 down = false") {
		t.Fatalf("up: %s", got)
	}
	if got := run(s, out, "\\congest S1 4"); !strings.Contains(got, "4.0x") {
		t.Fatalf("congest: %s", got)
	}
}

func TestSessionExplainFactorsLogTables(t *testing.T) {
	s, out := newSession(t, true)
	run(s, out, "SELECT COUNT(*) FROM parts AS p")
	if got := run(s, out, "\\explain SELECT COUNT(*) FROM parts AS p"); !strings.Contains(got, "estimated") || !strings.Contains(got, "QF1") {
		t.Fatalf("explain: %s", got)
	}
	if got := run(s, out, "\\factors"); !strings.Contains(got, "calibration") || !strings.Contains(got, "II workload factor") {
		t.Fatalf("factors: %s", got)
	}
	if got := run(s, out, "\\log"); !strings.Contains(got, "SELECT COUNT(*)") {
		t.Fatalf("log: %s", got)
	}
	if got := run(s, out, "\\tables"); !strings.Contains(got, "orders on S1, S2, S3") {
		t.Fatalf("tables: %s", got)
	}
	if got := run(s, out, "\\help"); !strings.Contains(got, "\\replicate") {
		t.Fatalf("help: %s", got)
	}
	if got := run(s, out, "\\bogus"); !strings.Contains(got, "unknown command") {
		t.Fatalf("unknown: %s", got)
	}
}

func TestSessionAdviseExportReplicate(t *testing.T) {
	s, out := newSession(t, true)
	if got := run(s, out, "\\advise"); !strings.Contains(got, "no placement recommendations") {
		t.Fatalf("advise (calm): %s", got)
	}
	if got := run(s, out, "\\export S1 parts"); !strings.Contains(got, "p_id:INT") {
		t.Fatalf("export: %s", got)
	}
	if got := run(s, out, "\\export S1 ghost"); !strings.Contains(got, "error:") {
		t.Fatalf("export error: %s", got)
	}
	if got := run(s, out, "\\replicate parts S1 S2"); !strings.Contains(got, "error:") {
		t.Fatalf("replicate duplicate: %s", got)
	}
	if got := run(s, out, "\\replicate parts"); !strings.Contains(got, "usage") {
		t.Fatalf("replicate usage: %s", got)
	}
}

func TestSessionWithoutQCC(t *testing.T) {
	s, out := newSession(t, false)
	if got := run(s, out, "\\factors"); !strings.Contains(got, "QCC disabled") {
		t.Fatalf("factors: %s", got)
	}
	if got := run(s, out, "\\advise"); !strings.Contains(got, "QCC disabled") {
		t.Fatalf("advise: %s", got)
	}
	if got := run(s, out, "SELECT COUNT(*) FROM parts AS p"); !strings.Contains(got, "routed") {
		t.Fatalf("query: %s", got)
	}
}

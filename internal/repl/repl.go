// Package repl implements the command processor behind cmd/fedsql: SQL
// lines execute federated queries; backslash commands inspect and steer the
// federation. Factoring it out of the binary keeps the command surface
// testable.
package repl

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	fedqcc "repro"
)

// Session couples a federation (and optional calibrator) with an output
// stream.
type Session struct {
	Fed *fedqcc.Federation
	Cal *fedqcc.Calibrator // nil when QCC is disabled
	Out io.Writer
}

// Execute processes one input line: a backslash command or a SQL statement.
func (s *Session) Execute(line string) {
	line = strings.TrimSpace(line)
	if line == "" {
		return
	}
	if strings.HasPrefix(line, "\\") {
		s.command(line)
		return
	}
	res, err := s.Fed.Query(line)
	if err != nil {
		fmt.Fprintln(s.Out, "error:", err)
		return
	}
	fmt.Fprintln(s.Out, res.Rows)
	fmt.Fprintf(s.Out, "-- routed %v, response %.2fms (merge %.2fms) at t=%s\n",
		res.Route, float64(res.ResponseTime), float64(res.MergeTime), s.Fed.Now())
}

func (s *Session) command(line string) {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\help":
		fmt.Fprint(s.Out, helpText)
	case "\\load":
		if len(fields) != 3 {
			fmt.Fprintln(s.Out, "usage: \\load <server> <level>")
			return
		}
		lvl, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			fmt.Fprintln(s.Out, "bad level:", err)
			return
		}
		h, err := s.Fed.Server(fields[1])
		if err != nil {
			fmt.Fprintln(s.Out, err)
			return
		}
		h.SetLoad(lvl)
		fmt.Fprintf(s.Out, "-- %s load = %.2f\n", fields[1], lvl)
	case "\\down", "\\up":
		if len(fields) != 2 {
			fmt.Fprintln(s.Out, "usage: \\down|\\up <server>")
			return
		}
		h, err := s.Fed.Server(fields[1])
		if err != nil {
			fmt.Fprintln(s.Out, err)
			return
		}
		h.SetDown(fields[0] == "\\down")
		fmt.Fprintf(s.Out, "-- %s down = %v\n", fields[1], h.Down())
	case "\\congest":
		if len(fields) != 3 {
			fmt.Fprintln(s.Out, "usage: \\congest <server> <multiplier>")
			return
		}
		c, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			fmt.Fprintln(s.Out, "bad multiplier:", err)
			return
		}
		h, err := s.Fed.Server(fields[1])
		if err != nil {
			fmt.Fprintln(s.Out, err)
			return
		}
		h.SetCongestion(c)
		fmt.Fprintf(s.Out, "-- %s congestion = %.1fx\n", fields[1], c)
	case "\\explain":
		sql := strings.TrimSpace(strings.TrimPrefix(line, "\\explain"))
		info, err := s.Fed.Explain(sql)
		if err != nil {
			fmt.Fprintln(s.Out, "error:", err)
			return
		}
		fmt.Fprintf(s.Out, "-- estimated %.2fms, route %v\n", info.TotalCostMS, info.Route)
		for id, plan := range info.FragmentPlans {
			fmt.Fprintf(s.Out, "-- %s (%.2fms):\n%s", id, info.FragmentCostMS[id], indent(plan))
		}
	case "\\factors":
		if s.Cal == nil {
			fmt.Fprintln(s.Out, "-- QCC disabled")
			return
		}
		for _, id := range s.Fed.ServerIDs() {
			fmt.Fprintf(s.Out, "-- %s: calibration %.3f reliability %.3f fenced=%v\n",
				id, s.Cal.ServerFactor(id), s.Cal.ReliabilityFactor(id), s.Cal.IsFenced(id))
		}
		fmt.Fprintf(s.Out, "-- II workload factor %.3f, recalibration cycle %s\n",
			s.Cal.IIFactor(), s.Cal.RecalibrationInterval())
	case "\\log":
		for _, e := range s.Fed.QueryLog() {
			status := "ok"
			if e.Err != "" {
				status = "ERR " + e.Err
			}
			fmt.Fprintf(s.Out, "-- [%s +%.2fms] %s (%s)\n", e.SubmitAt, float64(e.ResponseTime), e.Query, status)
		}
	case "\\advise":
		if s.Cal == nil {
			fmt.Fprintln(s.Out, "-- QCC disabled")
			return
		}
		recs := s.Cal.AdvisePlacement(0)
		if len(recs) == 0 {
			fmt.Fprintln(s.Out, "-- no placement recommendations")
			return
		}
		for _, r := range recs {
			fmt.Fprintf(s.Out, "-- replicate %q: %s -> %s (%s)\n", r.Nickname, r.From, r.To, r.Reason)
		}
	case "\\replicate":
		if len(fields) != 4 {
			fmt.Fprintln(s.Out, "usage: \\replicate <nickname> <from> <to>")
			return
		}
		err := s.Fed.ApplyReplication(fedqcc.PlacementRecommendation{
			Nickname: fields[1], From: fields[2], To: fields[3],
		})
		if err != nil {
			fmt.Fprintln(s.Out, "error:", err)
			return
		}
		fmt.Fprintf(s.Out, "-- %q replicated %s -> %s\n", fields[1], fields[2], fields[3])
	case "\\export":
		if len(fields) != 3 {
			fmt.Fprintln(s.Out, "usage: \\export <server> <table>")
			return
		}
		if err := s.Fed.ExportCSV(fields[1], fields[2], s.Out); err != nil {
			fmt.Fprintln(s.Out, "error:", err)
		}
	case "\\tables":
		for _, n := range s.Fed.Nicknames() {
			hosts, _ := s.Fed.PlacementsOf(n)
			fmt.Fprintf(s.Out, "-- %s on %s\n", n, strings.Join(hosts, ", "))
		}
	case "\\telemetry":
		if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
			fmt.Fprintln(s.Out, "usage: \\telemetry on|off")
			return
		}
		if fields[1] == "on" {
			s.Fed.EnableTelemetry()
		} else {
			s.Fed.DisableTelemetry()
		}
		fmt.Fprintf(s.Out, "-- telemetry %s\n", fields[1])
	case "\\trace":
		tel := s.Fed.Telemetry()
		tr := tel.Tracer().Last()
		if tr == nil {
			fmt.Fprintln(s.Out, "-- no traces collected (try \\telemetry on, then run a query)")
			return
		}
		fmt.Fprint(s.Out, tr.Tree())
	case "\\queue":
		adm := s.Fed.Admission()
		st := adm.Stats()
		fmt.Fprintf(s.Out, "-- admission: %d running, %d queued, %d released\n",
			st.Running, st.Queued, st.Releases)
		for _, cs := range st.Classes {
			fmt.Fprintf(s.Out, "-- %s (prio %d): running %d queued %d | admitted %d waited %d held %d shed %d rejected %d cancelled %d | total wait %.2fms\n",
				cs.Name, cs.Priority, cs.Running, cs.Queued,
				cs.Admitted, cs.QueuedTotal, cs.Held, cs.Shed, cs.Rejected, cs.Cancelled,
				float64(cs.TotalQueueWait))
		}
		ls := s.Fed.QueryLogStats()
		fmt.Fprintf(s.Out, "-- patroller: %d retained, %d evicted, %d completions after eviction\n",
			ls.Retained, ls.Evicted, ls.CompletedAfterEviction)
	case "\\tenants":
		adm := s.Fed.Admission()
		regs := adm.Tenants()
		if len(regs) == 0 {
			fmt.Fprintln(s.Out, "-- no tenants registered (scheduling is tenant-unaware)")
		}
		for _, t := range regs {
			fmt.Fprintf(s.Out, "-- %s: weight %.1f, max concurrent %d, max queue %d (0 = unlimited)\n",
				t.Name, t.Weight, t.MaxConcurrent, t.MaxQueue)
		}
		for _, ts := range adm.TenantStats() {
			reg := ""
			if !ts.Registered {
				reg = " (implicit)"
			}
			fmt.Fprintf(s.Out, "-- %s%s: running %d queued %d | admitted %d waited %d shed %d rejected %d cancelled %d | served %.2fms wait %.2fms\n",
				ts.Name, reg, ts.Running, ts.Queued,
				ts.Admitted, ts.QueuedTotal, ts.Shed, ts.Rejected, ts.Cancelled,
				ts.ServedCostMS, float64(ts.TotalQueueWait))
		}
		ls := s.Fed.QueryLogStats()
		for _, t := range ls.Tenants {
			fmt.Fprintf(s.Out, "-- log %s: completed %d failed %d shed %d | served %.2fms\n",
				t.Name, t.Completed, t.Failed, t.Shed, float64(t.ServedCostMS))
		}
		if ls.TenantsDropped > 0 {
			fmt.Fprintf(s.Out, "-- log: %d completions beyond the per-tenant accounting bound\n", ls.TenantsDropped)
		}
	case "\\route":
		n := 10
		if len(fields) == 2 {
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 {
				fmt.Fprintln(s.Out, "usage: \\route [n]")
				return
			}
			n = v
		}
		decisions := s.Fed.RouteDecisions(n)
		if len(decisions) == 0 {
			fmt.Fprintln(s.Out, "-- no routing decisions recorded (enable QCC or weighted routing, then run queries)")
			return
		}
		for _, d := range decisions {
			fmt.Fprintf(s.Out, "-- [%s] %-8s %v — %s | %s\n", d.At, d.Policy, d.Route, d.Reason, d.Query)
		}
	case "\\metrics":
		fmt.Fprint(s.Out, fedqcc.FormatMetrics(s.Fed.Telemetry().Metrics()))
	case "\\timeline":
		fmt.Fprint(s.Out, fedqcc.FormatTimeline(s.Fed.Telemetry().Timelines()))
	default:
		fmt.Fprintln(s.Out, "unknown command:", fields[0], "(try \\help)")
	}
}

const helpText = `commands:
  \help                        this text
  \tables                      nicknames and their placements
  \load <server> <level>       set background load in [0,1]
  \down <server> | \up <server>  availability control
  \congest <server> <mult>     network congestion multiplier
  \explain <sql>               compile only, show plan and cost
  \factors                     QCC calibration state
  \advise                      placement recommendations
  \replicate <nick> <from> <to>  apply a replication
  \export <server> <table>     dump a table as CSV
  \log                         query patroller log
  \route [n]                   last n routing decisions (default 10)
  \queue                       admission controller and patroller stats
  \tenants                     tenant registry, fair-share and quota stats
  \telemetry on|off            toggle trace/metric collection
  \trace                       span tree of the most recent query
  \metrics                     metrics registry dump
  \timeline                    calibration factor timeline per server
`

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "     " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

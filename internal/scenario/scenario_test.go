package scenario

import (
	"testing"

	"repro/internal/sqltypes"
)

func TestBuildThreeServerWiring(t *testing.T) {
	sc, err := BuildThreeServer(Options{Scale: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Servers) != 3 {
		t.Fatalf("servers: %d", len(sc.Servers))
	}
	for _, id := range []string{"S1", "S2", "S3"} {
		if sc.Servers[id] == nil {
			t.Fatalf("missing %s", id)
		}
		if sc.Topo.Link(id) == nil {
			t.Fatalf("missing link %s", id)
		}
		if len(sc.Servers[id].Tables()) != 4 {
			t.Fatalf("%s tables: %v", id, sc.Servers[id].Tables())
		}
	}
	names := sc.Catalog.Names()
	if len(names) != 4 {
		t.Fatalf("nicknames: %v", names)
	}
	hosts, err := sc.Catalog.ServersFor("orders", "lineitem", "customer", "parts")
	if err != nil || len(hosts) != 3 {
		t.Fatalf("full replication expected: %v %v", hosts, err)
	}
	if len(sc.MW.Servers()) != 3 {
		t.Fatal("MW servers")
	}
	if sc.II == nil || sc.IINode == nil || sc.Clock == nil {
		t.Fatal("missing components")
	}
}

func TestBuildThreeServerReplicasIdentical(t *testing.T) {
	sc, err := BuildThreeServer(Options{Scale: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t1 := sc.Servers["S1"].Table("orders")
	t3 := sc.Servers["S3"].Table("orders")
	if t1.RowCount() != t3.RowCount() {
		t.Fatal("replica row counts differ")
	}
	r1, _ := t1.Row(3)
	r3, _ := t3.Row(3)
	for i := range r1 {
		if sqltypes.Compare(r1[i], r3[i]) != 0 {
			t.Fatalf("replicas differ: %v vs %v", r1, r3)
		}
	}
}

func TestBuildReplicaPairPlacement(t *testing.T) {
	sc, err := BuildReplicaPair(ReplicaOptions{Scale: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Servers) != 4 {
		t.Fatalf("servers: %d", len(sc.Servers))
	}
	// orders lives on S1+R1 only.
	hosts, err := sc.Catalog.ServersFor("orders")
	if err != nil || len(hosts) != 2 || hosts[0] != "R1" || hosts[1] != "S1" {
		t.Fatalf("orders hosts: %v %v", hosts, err)
	}
	hosts, _ = sc.Catalog.ServersFor("lineitem")
	if len(hosts) != 2 || hosts[0] != "R2" || hosts[1] != "S2" {
		t.Fatalf("lineitem hosts: %v", hosts)
	}
	// No server hosts both sides: cross-source joins are unavoidable.
	if hosts, _ := sc.Catalog.ServersFor("orders", "lineitem"); len(hosts) != 0 {
		t.Fatalf("no co-location expected: %v", hosts)
	}
	if sc.Servers["S1"].Table("lineitem") != nil {
		t.Fatal("S1 must not host lineitem")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	o.fill()
	if o.Scale != 1 || o.Seed != 42 || o.BandwidthKBps != 2000 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.Latencies["S1"] != 5 || o.Latencies["S3"] != 5 {
		t.Fatalf("latency defaults: %v", o.Latencies)
	}
}

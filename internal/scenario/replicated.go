package scenario

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/integrator"
	"repro/internal/metawrapper"
	"repro/internal/network"
	"repro/internal/remote"
	"repro/internal/simclock"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/wrapper"
)

// ReplicatedOptions configures BuildReplicated, the replica-routing hotspot
// scenario: N uniform mid-range servers, every sample table fully replicated
// on all of them through catalog.RegisterReplicated, query-induced load
// (servers heat up under their own traffic) and a buffer-pool residency
// model (repeatedly hitting the same table on the same server gets cheaper;
// blindly spraying tables across servers keeps every pool cold). This is the
// setting where cache-aware weighted routing should beat blind round-robin
// on tail latency while load awareness keeps the servers balanced.
type ReplicatedOptions struct {
	// Servers is the replica count (default 3, IDs S1..SN).
	Servers int
	// Scale divides the sample table sizes (default 1).
	Scale int
	// Seed drives deterministic data generation; replicas share it.
	Seed int64
	// HotTables adds that many identical large single-column-aggregate
	// targets (hot1..hotN, default 4) — deliberately more tables than one
	// buffer pool holds, so replica affinity is a real trade-off.
	HotTables int
	// InducedLoad is the hot-spotting profile; zero selects
	// {WindowMS: 1000, Gain: 4} — moderate, so concentration is punished
	// without pegging every server at the load clamp.
	InducedLoad remote.InducedLoadProfile
	// Cache is the buffer-pool residency profile; zero selects
	// {ColdMissFrac: 0.7, WarmRate: 0.5, CoolRate: 0.05, PoolTables: 1.5}.
	Cache remote.CacheProfile
}

func (o *ReplicatedOptions) fill() {
	if o.Servers <= 0 {
		o.Servers = 3
	}
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.HotTables <= 0 {
		o.HotTables = 4
	}
	if o.InducedLoad.WindowMS == 0 {
		o.InducedLoad = remote.InducedLoadProfile{WindowMS: 1000, Gain: 4}
	}
	if o.Cache.ColdMissFrac == 0 {
		o.Cache = remote.CacheProfile{ColdMissFrac: 0.7, WarmRate: 0.5, CoolRate: 0.05, PoolTables: 1.5}
	}
}

// replicaProfile is the hotspot replicas' hardware: commodity boxes with
// slow disks and generous memory, where a buffer-pool hit is the difference
// between milliseconds and tens of milliseconds. (The stock profiles are
// CPU-bound at small scales, which would hide the cache signal entirely.)
func replicaProfile(id string) remote.Config {
	return remote.Config{
		ID: id,
		Hardware: remote.HardwareProfile{
			CPUOpsPerMS:      20000,
			IOPagesPerMS:     3,
			CachedPagesPerMS: 2000,
			CacheMissFrac:    0.05,
			FixedOverheadMS:  1,
		},
		Contention: remote.ContentionProfile{CPU: 0.3, IO: 0.3, BufferChurn: 0.05, QueueAmp: 0.4},
	}
}

// HotTableGens returns the scenario's hot-table generators (hot1..hotN).
func HotTableGens(n, scale int) []storage.TableGen {
	rows := 100000 / scale
	if rows < 10 {
		rows = 10
	}
	gens := make([]storage.TableGen, n)
	for i := range gens {
		name := fmt.Sprintf("hot%d", i+1)
		gens[i] = storage.TableGen{
			Name: name,
			Rows: rows,
			Columns: []storage.ColumnGen{
				{Name: "h_id", Type: sqltypes.KindInt, Gen: storage.SeqInt()},
				{Name: "h_val", Type: sqltypes.KindFloat, Gen: storage.UniformFloat(0, 10000)},
				{Name: "h_grp", Type: sqltypes.KindInt, Gen: storage.UniformInt(100)},
			},
			Indexes: []storage.IndexGen{
				{Name: name + "_pk", Column: "h_id", Kind: storage.IndexSorted},
			},
		}
	}
	return gens
}

// BuildReplicated assembles the hotspot scenario.
func BuildReplicated(opts ReplicatedOptions) (*Scenario, error) {
	opts.fill()
	clock := simclock.New()
	topo := network.NewTopology()
	gens := append(storage.SampleSchema(opts.Scale), HotTableGens(opts.HotTables, opts.Scale)...)

	ids := make([]string, opts.Servers)
	for i := range ids {
		ids[i] = fmt.Sprintf("S%d", i+1)
	}
	servers := map[string]*remote.Server{}
	var wrappers []wrapper.Wrapper
	for i, id := range ids {
		cfg := replicaProfile(id)
		cfg.InducedLoad = opts.InducedLoad
		cfg.Cache = opts.Cache
		srv := remote.NewServer(cfg)
		srv.SetClock(clock)
		for _, g := range gens {
			tab, err := g.Generate(opts.Seed) // same seed → identical replicas
			if err != nil {
				return nil, fmt.Errorf("scenario: generating %s on %s: %w", g.Name, id, err)
			}
			srv.AddTable(tab)
		}
		servers[id] = srv
		topo.AddLink(id, network.NewLink(network.LinkConfig{
			LatencyMS:     5,
			BandwidthKBps: 2000,
			Seed:          opts.Seed + int64(i),
		}))
		wrappers = append(wrappers, wrapper.NewRelational(srv, topo))
	}

	cat := catalog.New()
	for _, g := range gens {
		schema := servers[ids[0]].Table(g.Name).Schema()
		placements := make([]catalog.Placement, len(ids))
		for i, id := range ids {
			placements[i] = catalog.Placement{ServerID: id, RemoteTable: g.Name}
		}
		if err := cat.RegisterReplicated(g.Name, schema, placements); err != nil {
			return nil, err
		}
	}

	mw := metawrapper.New(wrappers...)
	iiNode := remote.NewServer(remote.Config{
		ID: "II",
		Hardware: remote.HardwareProfile{
			CPUOpsPerMS:      3000,
			IOPagesPerMS:     100,
			CachedPagesPerMS: 3000,
			FixedOverheadMS:  0.5,
		},
		Contention: remote.ContentionProfile{CPU: 0.5, IO: 0.5, BufferChurn: 0.2, QueueAmp: 0.5},
	})
	ii := integrator.New(integrator.Config{Catalog: cat, MW: mw, Node: iiNode, Clock: clock})
	return &Scenario{
		Clock:   clock,
		Servers: servers,
		Topo:    topo,
		Catalog: cat,
		MW:      mw,
		IINode:  iiNode,
		II:      ii,
	}, nil
}

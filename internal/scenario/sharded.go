package scenario

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/integrator"
	"repro/internal/metawrapper"
	"repro/internal/network"
	"repro/internal/remote"
	"repro/internal/simclock"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/wrapper"
)

// ShardedOptions configures BuildSharded: the scale-out scenario where the
// LINEITEM-scale table is horizontally partitioned on l_orderkey across N
// uniform servers while the small tables stay fully replicated.
type ShardedOptions struct {
	// Shards is the shard (and server) count; 1 builds a plain unsharded
	// single-server federation — the bit-identity baseline.
	Shards int
	// Scale divides the paper's table sizes (1 = full 100k/1k rows).
	Scale int
	// Seed drives deterministic data generation.
	Seed int64
	// Method picks hash (default) or range sharding on l_orderkey.
	Method catalog.ShardMethod
	// LatencyMS is the uniform one-way link latency (default 5).
	LatencyMS float64
	// BandwidthKBps is the uniform link bandwidth (default 2000).
	BandwidthKBps float64
	// NullKeyFrac makes roughly this fraction of lineitem rows carry a NULL
	// shard key (hash-sharded NULLs land on their hash shard, range-sharded
	// NULLs on shard 0). Zero keeps the standard generator.
	NullKeyFrac float64
}

func (o *ShardedOptions) fill() {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.LatencyMS == 0 {
		o.LatencyMS = 5
	}
	if o.BandwidthKBps == 0 {
		o.BandwidthKBps = 2000
	}
}

// BuildSharded assembles an N-server federation with lineitem hash- or
// range-sharded on l_orderkey (shard i on server S<i+1>) and orders,
// customer and parts replicated on every server. With Shards == 1 the
// catalog registration degrades to a plain nickname and the engine takes
// exactly the pre-sharding code paths — that configuration is the identity
// baseline the CI gate compares against.
func BuildSharded(opts ShardedOptions) (*Scenario, error) {
	opts.fill()
	clock := simclock.New()
	topo := network.NewTopology()

	gens := storage.SampleSchema(opts.Scale)
	var lineGen storage.TableGen
	var rest []storage.TableGen
	for _, g := range gens {
		if g.Name == "lineitem" {
			lineGen = g
			continue
		}
		rest = append(rest, g)
	}
	if opts.NullKeyFrac > 0 {
		frac := opts.NullKeyFrac
		for ci, c := range lineGen.Columns {
			if c.Name != "l_orderkey" {
				continue
			}
			inner := c.Gen
			lineGen.Columns[ci].Gen = func(r *rand.Rand, i int) sqltypes.Value {
				if r.Float64() < frac {
					return sqltypes.Null
				}
				return inner(r, i)
			}
		}
	}
	whole, err := lineGen.Generate(opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("scenario: generating lineitem: %w", err)
	}

	spec := &catalog.ShardSpec{Column: "l_orderkey", Method: opts.Method}
	if opts.Method == catalog.ShardRange {
		// Even splits of the uniform key domain [0, rows).
		domain := int64(lineGen.Rows)
		for i := 1; i < opts.Shards; i++ {
			spec.Bounds = append(spec.Bounds, sqltypes.NewInt(domain*int64(i)/int64(opts.Shards)))
		}
	}
	keyIdx, err := whole.Schema().ColumnIndex("", "l_orderkey")
	if err != nil {
		return nil, err
	}
	parts := make([][]sqltypes.Row, opts.Shards)
	for _, row := range whole.Snapshot() {
		idx := spec.ShardFor(row[keyIdx], opts.Shards)
		parts[idx] = append(parts[idx], row)
	}

	servers := map[string]*remote.Server{}
	var wrappers []wrapper.Wrapper
	var shards []catalog.Shard
	for i := 0; i < opts.Shards; i++ {
		id := fmt.Sprintf("S%d", i+1)
		cfg := remote.ProfileS2(id)
		srv := remote.NewServer(cfg)
		srv.SetClock(clock)

		// Shard i of lineitem lives here. A single-shard build keeps the
		// plain table name so every code path matches the unsharded engine.
		shardName := catalog.ShardTableName("lineitem", i)
		if opts.Shards == 1 {
			shardName = "lineitem"
		}
		tab := storage.NewTable(shardName, whole.Schema())
		if err := tab.Append(parts[i]...); err != nil {
			return nil, err
		}
		for _, ig := range lineGen.Indexes {
			ixName := fmt.Sprintf("%s_s%d", ig.Name, i)
			if opts.Shards == 1 {
				ixName = ig.Name // bit-identical to the unsharded engine
			}
			if _, err := tab.CreateIndex(ixName, ig.Column, ig.Kind); err != nil {
				return nil, err
			}
		}
		srv.AddTable(tab)
		shards = append(shards, catalog.Shard{
			Index:      i,
			Placements: []catalog.Placement{{ServerID: id, RemoteTable: shardName}},
		})

		// The small tables replicate everywhere (same seed → identical).
		for _, g := range rest {
			t, err := g.Generate(opts.Seed)
			if err != nil {
				return nil, fmt.Errorf("scenario: generating %s on %s: %w", g.Name, id, err)
			}
			srv.AddTable(t)
		}

		servers[id] = srv
		topo.AddLink(id, network.NewLink(network.LinkConfig{
			LatencyMS:     opts.LatencyMS,
			BandwidthKBps: opts.BandwidthKBps,
			Seed:          opts.Seed + int64(i),
		}))
		wrappers = append(wrappers, wrapper.NewRelational(srv, topo))
	}

	cat := catalog.New()
	if err := cat.RegisterSharded("lineitem", whole.Schema(), spec, shards); err != nil {
		return nil, err
	}
	for _, g := range rest {
		schema := servers["S1"].Table(g.Name).Schema()
		nick := &catalog.Nickname{Name: g.Name, Schema: schema}
		for i := 0; i < opts.Shards; i++ {
			id := fmt.Sprintf("S%d", i+1)
			nick.Placements = append(nick.Placements, catalog.Placement{
				ServerID:    id,
				RemoteTable: g.Name,
				Replica:     i > 0,
			})
		}
		if err := cat.Register(nick); err != nil {
			return nil, err
		}
	}

	mw := metawrapper.New(wrappers...)
	iiNode := remote.NewServer(remote.Config{
		ID: "II",
		Hardware: remote.HardwareProfile{
			CPUOpsPerMS:      3000,
			IOPagesPerMS:     100,
			CachedPagesPerMS: 3000,
			FixedOverheadMS:  0.5,
		},
		Contention: remote.ContentionProfile{CPU: 0.5, IO: 0.5, BufferChurn: 0.2, QueueAmp: 0.5},
	})
	ii := integrator.New(integrator.Config{
		Catalog: cat,
		MW:      mw,
		Node:    iiNode,
		Clock:   clock,
	})
	return &Scenario{
		Clock:   clock,
		Servers: servers,
		Topo:    topo,
		Catalog: cat,
		MW:      mw,
		IINode:  iiNode,
		II:      ii,
	}, nil
}

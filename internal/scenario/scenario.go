// Package scenario assembles complete federations for experiments, examples
// and tests: remote servers with generated data, the network topology, the
// global catalog with nicknames and replicas, the meta-wrapper and the
// integrator — the paper's evaluation scenario of "one II server and three
// remote servers, each hosting a DBMS", with tables "replicated and
// distributed on the three remote servers such that each server is involved
// in a diverse set of queries" (§5).
package scenario

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/integrator"
	"repro/internal/metawrapper"
	"repro/internal/network"
	"repro/internal/remote"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/wrapper"
)

// Scenario is a fully-wired federation.
type Scenario struct {
	Clock   *simclock.Clock
	Servers map[string]*remote.Server
	Topo    *network.Topology
	Catalog *catalog.Catalog
	MW      *metawrapper.MetaWrapper
	IINode  *remote.Server
	II      *integrator.II
}

// Options configures BuildThreeServer.
type Options struct {
	// Scale divides the paper's table sizes (1 = full 100k/1k rows).
	// Experiments use small scales for speed; the shapes are scale-free.
	Scale int
	// Seed drives the deterministic data generation; replicas share it.
	Seed int64
	// Latencies maps server IDs to one-way link latency in ms. The default
	// is a symmetric LAN (5ms each), matching the paper's single-lab
	// testbed; experiments on network dynamics vary congestion instead.
	Latencies map[string]float64
	// BandwidthKBps is the link bandwidth (default 2000).
	BandwidthKBps float64
	// Exclusive maps table names to the single server that hosts them;
	// unlisted tables are fully replicated. Used by placement experiments.
	Exclusive map[string]string
	// InducedLoad, when set, makes servers heat up under their own query
	// traffic (hot-spotting) — required for load-distribution experiments
	// where routing choices feed back into response times.
	InducedLoad remote.InducedLoadProfile
	// Uniform makes all three servers mid-range clones: true equivalent
	// data sources, the §4 load-distribution setting.
	Uniform bool
}

func (o *Options) fill() {
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Latencies == nil {
		o.Latencies = map[string]float64{"S1": 5, "S2": 5, "S3": 5}
	}
	if o.BandwidthKBps == 0 {
		o.BandwidthKBps = 2000
	}
}

// BuildThreeServer assembles the paper's evaluation federation: servers S1,
// S2, S3 with the full sample schema replicated on all three (every server
// can answer every query type, making them equivalent data sources), plus
// an II node.
func BuildThreeServer(opts Options) (*Scenario, error) {
	opts.fill()
	clock := simclock.New()
	topo := network.NewTopology()

	configs := []remote.Config{
		remote.ProfileS1("S1"),
		remote.ProfileS2("S2"),
		remote.ProfileS3("S3"),
	}
	if opts.Uniform {
		configs = []remote.Config{
			remote.ProfileS2("S1"),
			remote.ProfileS2("S2"),
			remote.ProfileS2("S3"),
		}
		configs[0].ID, configs[1].ID, configs[2].ID = "S1", "S2", "S3"
	}
	servers := map[string]*remote.Server{}
	var wrappers []wrapper.Wrapper
	gens := storage.SampleSchema(opts.Scale)
	for _, cfg := range configs {
		cfg.InducedLoad = opts.InducedLoad
		srv := remote.NewServer(cfg)
		srv.SetClock(clock)
		for _, g := range gens {
			if only, ok := opts.Exclusive[g.Name]; ok && only != cfg.ID {
				continue
			}
			tab, err := g.Generate(opts.Seed) // same seed → identical replicas
			if err != nil {
				return nil, fmt.Errorf("scenario: generating %s on %s: %w", g.Name, cfg.ID, err)
			}
			srv.AddTable(tab)
		}
		servers[cfg.ID] = srv
		lat := opts.Latencies[cfg.ID]
		topo.AddLink(cfg.ID, network.NewLink(network.LinkConfig{
			LatencyMS:     lat,
			BandwidthKBps: opts.BandwidthKBps,
			Seed:          opts.Seed + int64(len(wrappers)),
		}))
		wrappers = append(wrappers, wrapper.NewRelational(srv, topo))
	}

	cat := catalog.New()
	for _, g := range gens {
		hosts := []string{"S1", "S2", "S3"}
		if only, ok := opts.Exclusive[g.Name]; ok {
			hosts = []string{only}
		}
		schema := servers[hosts[0]].Table(g.Name).Schema()
		nick := &catalog.Nickname{Name: g.Name, Schema: schema}
		for i, id := range hosts {
			nick.Placements = append(nick.Placements, catalog.Placement{
				ServerID:    id,
				RemoteTable: g.Name,
				Replica:     i > 0,
			})
		}
		if err := cat.Register(nick); err != nil {
			return nil, err
		}
	}

	mw := metawrapper.New(wrappers...)
	iiNode := remote.NewServer(remote.Config{
		ID: "II",
		Hardware: remote.HardwareProfile{
			CPUOpsPerMS:      3000,
			IOPagesPerMS:     100,
			CachedPagesPerMS: 3000,
			FixedOverheadMS:  0.5,
		},
		Contention: remote.ContentionProfile{CPU: 0.5, IO: 0.5, BufferChurn: 0.2, QueueAmp: 0.5},
	})
	ii := integrator.New(integrator.Config{
		Catalog: cat,
		MW:      mw,
		Node:    iiNode,
		Clock:   clock,
	})
	return &Scenario{
		Clock:   clock,
		Servers: servers,
		Topo:    topo,
		Catalog: cat,
		MW:      mw,
		IINode:  iiNode,
		II:      ii,
	}, nil
}

// ReplicateTable copies a nickname's data from one server to another and
// registers the new placement in the catalog — applying a QCC placement
// recommendation. The copy includes rows and index definitions.
func ReplicateTable(sc *Scenario, nickname, from, to string) error {
	nick, err := sc.Catalog.Lookup(nickname)
	if err != nil {
		return err
	}
	placement := nick.PlacementOn(from)
	if placement == nil {
		return fmt.Errorf("scenario: %s does not host %q", from, nickname)
	}
	srcSrv, ok := sc.Servers[from]
	if !ok {
		return fmt.Errorf("scenario: unknown server %q", from)
	}
	dstSrv, ok := sc.Servers[to]
	if !ok {
		return fmt.Errorf("scenario: unknown server %q", to)
	}
	src := srcSrv.Table(placement.RemoteTable)
	if src == nil {
		return fmt.Errorf("scenario: table %q missing on %s", placement.RemoteTable, from)
	}
	if dstSrv.Table(placement.RemoteTable) != nil {
		return fmt.Errorf("scenario: %s already hosts %q", to, placement.RemoteTable)
	}
	dst := storage.NewTable(src.Name(), src.Schema())
	if err := dst.Append(src.Snapshot()...); err != nil {
		return err
	}
	for _, im := range src.IndexMetas() {
		if _, err := dst.CreateIndex(im.Name, im.Column, im.Kind); err != nil {
			return err
		}
	}
	dstSrv.AddTable(dst)
	return sc.Catalog.AddPlacement(nickname, catalog.Placement{
		ServerID:    to,
		RemoteTable: placement.RemoteTable,
		Replica:     true,
	})
}

// ReplicaOptions configures BuildReplicaPair, the §4 load-distribution
// scenario: origin servers S1 (hosting table A) and S2 (hosting table B)
// plus replicas R1 of S1 and R2 of S2. A cross-source join query then has
// 2×2 server combinations and — with two plans per origin fragment — the
// paper's nine global plans.
type ReplicaOptions struct {
	Scale int
	Seed  int64
	// InducedLoad enables query-induced hot-spotting (see Options).
	InducedLoad remote.InducedLoadProfile
}

// BuildReplicaPair assembles the §4 scenario.
func BuildReplicaPair(opts ReplicaOptions) (*Scenario, error) {
	if opts.Scale < 1 {
		opts.Scale = 1
	}
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	clock := simclock.New()
	topo := network.NewTopology()
	gens := storage.SampleSchema(opts.Scale)
	genByName := map[string]storage.TableGen{}
	for _, g := range gens {
		genByName[g.Name] = g
	}

	placement := map[string][]string{
		"S1": {"orders", "customer"},
		"R1": {"orders", "customer"},
		"S2": {"lineitem", "parts"},
		"R2": {"lineitem", "parts"},
	}
	profiles := map[string]remote.Config{
		"S1": remote.ProfileS1("S1"),
		"R1": remote.ProfileS2("R1"),
		"S2": remote.ProfileS2("S2"),
		"R2": remote.ProfileS1("R2"),
	}
	latency := map[string]float64{"S1": 8, "R1": 10, "S2": 12, "R2": 9}

	servers := map[string]*remote.Server{}
	var wrappers []wrapper.Wrapper
	i := 0
	for _, id := range []string{"S1", "R1", "S2", "R2"} {
		cfg := profiles[id]
		cfg.InducedLoad = opts.InducedLoad
		srv := remote.NewServer(cfg)
		srv.SetClock(clock)
		for _, tname := range placement[id] {
			tab, err := genByName[tname].Generate(opts.Seed)
			if err != nil {
				return nil, err
			}
			srv.AddTable(tab)
		}
		servers[id] = srv
		topo.AddLink(id, network.NewLink(network.LinkConfig{
			LatencyMS:     latency[id],
			BandwidthKBps: 2000,
			Seed:          opts.Seed + int64(i),
		}))
		wrappers = append(wrappers, wrapper.NewRelational(srv, topo))
		i++
	}

	cat := catalog.New()
	nickHosts := map[string][]string{
		"orders":   {"S1", "R1"},
		"customer": {"S1", "R1"},
		"lineitem": {"S2", "R2"},
		"parts":    {"S2", "R2"},
	}
	for name, hosts := range nickHosts {
		schema := servers[hosts[0]].Table(name).Schema()
		nick := &catalog.Nickname{Name: name, Schema: schema}
		for j, id := range hosts {
			nick.Placements = append(nick.Placements, catalog.Placement{
				ServerID: id, RemoteTable: name, Replica: j > 0,
			})
		}
		if err := cat.Register(nick); err != nil {
			return nil, err
		}
	}

	mw := metawrapper.New(wrappers...)
	iiNode := remote.NewServer(remote.Config{
		ID: "II",
		Hardware: remote.HardwareProfile{
			CPUOpsPerMS:      3000,
			IOPagesPerMS:     100,
			CachedPagesPerMS: 3000,
			FixedOverheadMS:  0.5,
		},
		Contention: remote.ContentionProfile{CPU: 0.5, IO: 0.5, BufferChurn: 0.2, QueueAmp: 0.5},
	})
	ii := integrator.New(integrator.Config{Catalog: cat, MW: mw, Node: iiNode, Clock: clock})
	return &Scenario{
		Clock:   clock,
		Servers: servers,
		Topo:    topo,
		Catalog: cat,
		MW:      mw,
		IINode:  iiNode,
		II:      ii,
	}, nil
}

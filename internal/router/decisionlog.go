package router

import (
	"sync"

	"repro/internal/simclock"
)

// Decision is one recorded routing decision: which plan/route a policy
// chose and why. Both the round-robin LoadBalancer and the WeightedRouter
// feed the same log, so the REPL's \route view shows one merged history.
type Decision struct {
	// At is the virtual time of the decision.
	At simclock.Time
	// Query is the federated statement text ("" for dispatch-time entries).
	Query string
	// Policy names the deciding policy: "lb" or "weighted".
	Policy string
	// Route is the chosen route key (fragment→server assignments).
	Route string
	// Reason explains the choice (rotation position, score breakdown, ...).
	Reason string
}

// DecisionLog is a bounded ring of routing decisions. All methods are safe
// for concurrent use and nil-safe: a nil log records nothing and returns
// nothing, so policies need no guards.
type DecisionLog struct {
	mu    sync.Mutex
	buf   []Decision
	next  int
	total int64
}

// DefaultDecisionCap is the default ring capacity.
const DefaultDecisionCap = 64

// NewDecisionLog builds a log keeping the last n decisions (n<=0 selects
// DefaultDecisionCap).
func NewDecisionLog(n int) *DecisionLog {
	if n <= 0 {
		n = DefaultDecisionCap
	}
	return &DecisionLog{buf: make([]Decision, 0, n)}
}

// Record appends a decision, evicting the oldest at capacity.
func (l *DecisionLog) Record(d Decision) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, d)
		return
	}
	l.buf[l.next] = d
	l.next = (l.next + 1) % cap(l.buf)
}

// Last returns up to n most recent decisions, oldest first. n<=0 returns
// everything retained.
func (l *DecisionLog) Last(n int) []Decision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Decision, 0, len(l.buf))
	if len(l.buf) < cap(l.buf) {
		out = append(out, l.buf...)
	} else {
		out = append(out, l.buf[l.next:]...)
		out = append(out, l.buf[:l.next]...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Total reports how many decisions have ever been recorded.
func (l *DecisionLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Package router implements score-based weighted replica routing over
// partially replicated table fragments. Where the paper's load-distribution
// layer (§4, qcc.LoadBalancer) only rotates near-optimal global plans
// round-robin, the WeightedRouter scores every candidate replica of every
// fragment from signals the federation already produces — QCC calibration
// and first-row factors, reliability and fence state, admission queue depth
// — plus a per-server cache-locality signal (remote buffer-pool residency),
// and picks the best replica per dispatch. The score shape follows the
// Milvus adaptive-routing RFC:
//
//	score = cpu·w1 + memory·w2 + cache_locality·w3 + latency·w4
//
// Every sub-score lies in [0,1] with higher better. With a single placement
// per fragment the router is a strict no-op — it returns the optimizer's
// winner untouched and never consults a signal — so replication-off
// federations stay bit-identical to the pre-replication engine.
package router

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/metawrapper"
	"repro/internal/optimizer"
	"repro/internal/simclock"
	"repro/internal/sqlparser"
	"repro/internal/telemetry"
)

// Weights are the four score-term weights. The defaults follow the Milvus
// RFC: cpu 0.3, memory 0.2, cache locality 0.3, latency 0.2.
type Weights struct {
	CPU           float64
	Memory        float64
	CacheLocality float64
	Latency       float64
}

// DefaultWeights is the Milvus RFC weighting.
var DefaultWeights = Weights{CPU: 0.3, Memory: 0.2, CacheLocality: 0.3, Latency: 0.2}

// zero reports whether no weight is set (the config asks for defaults).
func (w Weights) zero() bool {
	return w.CPU == 0 && w.Memory == 0 && w.CacheLocality == 0 && w.Latency == 0
}

// Signals supplies the per-server inputs the router scores from. Every
// field is optional: a nil func contributes a neutral value, so the router
// degrades gracefully when a subsystem (QCC, admission) is absent. The
// functions are implemented by QCC (see qcc.RouterSignals), keeping this
// package free of a qcc dependency.
type Signals struct {
	// FragmentFactor returns QCC's calibration factor for a (server,
	// fragment-signature) pair: >1 means the server has been observed slower
	// than its estimate (load, churn, congestion).
	FragmentFactor func(serverID, sig string) float64
	// FirstRowFactor returns the server's first-row calibration factor and
	// whether one has been learned.
	FirstRowFactor func(serverID string) (float64, bool)
	// Reliability returns the failure-rate penalty factor (≥1; 1 = clean).
	Reliability func(serverID string) float64
	// IsFenced reports whether availability monitoring has fenced the server.
	IsFenced func(serverID string) bool
	// QueueDepth returns the admission controller's current queue depth.
	QueueDepth func() int
	// CacheResidency returns the server's mean buffer-pool residency over
	// the given physical tables, in [0,1].
	CacheResidency func(serverID string, tables []string) float64
}

// Config configures a WeightedRouter.
type Config struct {
	// Weights are the score-term weights; all-zero selects DefaultWeights.
	Weights Weights
	// QueuePressureGain converts admission queue depth into memory-pressure
	// (default 0.25, matching QCC's queue-pressure gain).
	QueuePressureGain float64
	// DisableDispatchRescore turns off the dispatch-time re-scoring pass
	// (RerouteFragment); compile-time replica choice still applies.
	DisableDispatchRescore bool
	// Signals supplies the scoring inputs.
	Signals Signals
	// MW is the meta-wrapper, used to re-explain candidates at dispatch time
	// with current calibration.
	MW *metawrapper.MetaWrapper
	// Assemble re-derives a global plan's merge/total estimates after the
	// router swaps fragment choices (wired to the optimizer's
	// AssembleGlobal).
	Assemble func(winner *optimizer.GlobalPlan, chosen []optimizer.FragmentChoice) *optimizer.GlobalPlan
	// Clock timestamps decision-log entries (may be nil).
	Clock *simclock.Clock
	// Log receives routing decisions (may be nil).
	Log *DecisionLog
}

// Breakdown is one candidate server's score decomposition, kept for span
// attributes and the decision log.
type Breakdown struct {
	ServerID string
	CPU      float64
	Memory   float64
	Cache    float64
	Latency  float64
	Total    float64
}

// String renders the breakdown compactly.
func (b Breakdown) String() string {
	return fmt.Sprintf("%s=%.3f(cpu=%.2f mem=%.2f cache=%.2f lat=%.2f)",
		b.ServerID, b.Total, b.CPU, b.Memory, b.Cache, b.Latency)
}

// WeightedRouter scores candidate replicas per fragment. It implements
// integrator.RoutePolicy (compile-time replica choice over the winner's
// per-fragment option menus) and integrator.RuntimeRerouter (dispatch-time
// re-scoring with current calibration).
type WeightedRouter struct {
	cfg Config

	mu sync.Mutex
	// lastAttrs holds the most recent per-fragment chosen breakdown, for
	// span attribute annotation.
	lastAttrs map[string]Breakdown
	rerouted  int64
	checked   int64
	tel       *telemetry.Telemetry
}

// New builds a WeightedRouter.
func New(cfg Config) *WeightedRouter {
	if cfg.Weights.zero() {
		cfg.Weights = DefaultWeights
	}
	if cfg.QueuePressureGain == 0 {
		cfg.QueuePressureGain = 0.25
	}
	return &WeightedRouter{cfg: cfg, lastAttrs: map[string]Breakdown{}}
}

// SetTelemetry installs the observability subsystem: per-replica score
// gauges and replica-choice counters. Nil disables.
func (r *WeightedRouter) SetTelemetry(t *telemetry.Telemetry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tel = t
}

// Weights returns the resolved weights.
func (r *WeightedRouter) Weights() Weights { return r.cfg.Weights }

// Rerouted reports dispatch-time switches and checks.
func (r *WeightedRouter) Rerouted() (switched, checked int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rerouted, r.checked
}

func (r *WeightedRouter) telemetry() *telemetry.Telemetry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tel
}

// score computes one candidate's breakdown. sig is the fragment's
// calibration signature, cost the candidate's calibrated total estimate, and
// minCost the cheapest calibrated estimate among the fragment's candidates
// (for latency normalization). Fenced servers return ok=false.
func (r *WeightedRouter) score(serverID, sig string, tables []string, cost, minCost float64) (Breakdown, bool) {
	s := r.cfg.Signals
	if s.IsFenced != nil && s.IsFenced(serverID) {
		return Breakdown{}, false
	}
	if math.IsInf(cost, 1) || math.IsNaN(cost) {
		return Breakdown{}, false
	}
	// CPU/load: inverse of the worst calibration inflation observed for this
	// (server, fragment) — the per-fragment factor or the server's first-row
	// factor, whichever is larger. 1 on a calm, calibrated server.
	infl := 1.0
	if s.FragmentFactor != nil {
		if f := s.FragmentFactor(serverID, sig); f > infl {
			infl = f
		}
	}
	if s.FirstRowFactor != nil {
		if f, ok := s.FirstRowFactor(serverID); ok && f > infl {
			infl = f
		}
	}
	cpu := 1 / infl
	// Memory/pressure: inverse of the reliability penalty times admission
	// queue pressure. 1 on a clean server with an empty queue.
	pressure := 1.0
	if s.Reliability != nil {
		if f := s.Reliability(serverID); f > 1 {
			pressure = f
		}
	}
	if s.QueueDepth != nil {
		pressure *= 1 + r.cfg.QueuePressureGain*float64(s.QueueDepth())
	}
	mem := 1 / pressure
	// Cache locality: mean buffer-pool residency of the fragment's tables.
	cache := 0.0
	if s.CacheResidency != nil {
		cache = s.CacheResidency(serverID, tables)
	}
	// Latency: the cheapest candidate's calibrated cost over this one's.
	lat := 1.0
	if cost > 0 && minCost > 0 {
		lat = minCost / cost
	}
	w := r.cfg.Weights
	b := Breakdown{
		ServerID: serverID,
		CPU:      cpu,
		Memory:   mem,
		Cache:    cache,
		Latency:  lat,
	}
	b.Total = w.CPU*cpu + w.Memory*mem + w.CacheLocality*cache + w.Latency*lat
	return b, true
}

// serverRep is one candidate server's representative choice: its cheapest
// calibrated plan for the fragment. The router chooses among SERVERS —
// within a server it always keeps the cheapest plan — so a single-placement
// fragment can never have its plan swapped.
type serverRep struct {
	choice optimizer.FragmentChoice
	cost   float64
}

// represent collapses a fragment's option list to per-server cheapest
// representatives, preserving first-seen server order, and returns the
// minimum calibrated cost for latency normalization.
func represent(opts []optimizer.FragmentChoice) (order []string, reps map[string]serverRep, minCost float64) {
	reps = map[string]serverRep{}
	minCost = math.Inf(1)
	for _, opt := range opts {
		cost := opt.Plan.Est.TotalMS
		rep, ok := reps[opt.ServerID]
		if !ok {
			order = append(order, opt.ServerID)
			reps[opt.ServerID] = serverRep{choice: opt, cost: cost}
		} else if cost < rep.cost {
			reps[opt.ServerID] = serverRep{choice: opt, cost: cost}
		}
		if cost < minCost {
			minCost = cost
		}
	}
	return order, reps, minCost
}

// fragSig returns the calibration signature for a fragment spec — the same
// canonical statement identity QCC keys its factors by.
func fragSig(spec *optimizer.FragmentSpec) string {
	return sqlparser.CanonicalizeSQL(spec.Stmt.String())
}

// ChooseGlobal implements integrator.RoutePolicy: for every fragment with
// more than one candidate server in the winner's option menu, score the
// per-server representatives and pick the best. Fragments with a single
// placement keep the winner's exact choice; if nothing changes, the winner
// is returned untouched (pointer-identical), preserving bit-identity for
// replication-off federations.
func (r *WeightedRouter) ChooseGlobal(queryText string, winner *optimizer.GlobalPlan) *optimizer.GlobalPlan {
	if winner == nil || len(winner.Options) != len(winner.Fragments) {
		return winner
	}
	chosen := make([]optimizer.FragmentChoice, len(winner.Fragments))
	changed := false
	var notes []Breakdown
	for i, f := range winner.Fragments {
		chosen[i] = f
		order, reps, minCost := represent(winner.Options[i])
		if len(order) <= 1 {
			continue
		}
		sig := fragSig(f.Spec)
		var best Breakdown
		bestOK := false
		for _, serverID := range order {
			rep := reps[serverID]
			b, ok := r.score(serverID, sig, rep.choice.Plan.Tables, rep.cost, minCost)
			if !ok {
				continue
			}
			r.noteScore(f.Spec.ID, b)
			if !bestOK || b.Total > best.Total {
				best, bestOK = b, true
			}
		}
		if !bestOK {
			continue
		}
		notes = append(notes, best)
		r.mu.Lock()
		r.lastAttrs[f.Spec.ID] = best
		r.mu.Unlock()
		r.telemetry().Active().Counter("router.replica_chosen", best.ServerID).Inc()
		if best.ServerID != f.ServerID {
			chosen[i] = reps[best.ServerID].choice
			changed = true
		}
	}
	if !changed {
		r.record(queryText, winner.RouteKey(), "kept winner", notes)
		return winner
	}
	out := winner
	if r.cfg.Assemble != nil {
		out = r.cfg.Assemble(winner, chosen)
		out.Options = winner.Options
	} else {
		cp := *winner
		cp.Fragments = chosen
		out = &cp
	}
	r.record(queryText, out.RouteKey(), "replica swap", notes)
	return out
}

// RerouteFragment implements integrator.RuntimeRerouter: just before a
// fragment dispatches, re-explain it on every candidate server with CURRENT
// calibration (compile time may be stale for queued or cached plans), score
// the representatives, and switch when another replica now scores best.
// Single-candidate fragments return nil without consulting anything.
func (r *WeightedRouter) RerouteFragment(choice optimizer.FragmentChoice) *optimizer.FragmentChoice {
	if r.cfg.DisableDispatchRescore || r.cfg.MW == nil || len(choice.Spec.Candidates) <= 1 {
		return nil
	}
	r.mu.Lock()
	r.checked++
	r.mu.Unlock()
	var opts []optimizer.FragmentChoice
	for _, serverID := range choice.Spec.Candidates {
		cands, err := r.cfg.MW.ExplainFragment(serverID, choice.Spec.Stmt)
		if err != nil {
			continue
		}
		for _, c := range cands {
			opts = append(opts, optimizer.FragmentChoice{
				Spec:      choice.Spec,
				ServerID:  serverID,
				Plan:      c.Plan,
				RawEst:    c.RawEst,
				CostKnown: c.CostKnown,
			})
		}
	}
	order, reps, minCost := represent(opts)
	if len(order) == 0 {
		return nil
	}
	sig := fragSig(choice.Spec)
	var best Breakdown
	bestOK := false
	for _, serverID := range order {
		rep := reps[serverID]
		b, ok := r.score(serverID, sig, rep.choice.Plan.Tables, rep.cost, minCost)
		if !ok {
			continue
		}
		r.noteScore(choice.Spec.ID, b)
		if !bestOK || b.Total > best.Total {
			best, bestOK = b, true
		}
	}
	if !bestOK {
		return nil
	}
	r.mu.Lock()
	r.lastAttrs[choice.Spec.ID] = best
	r.mu.Unlock()
	if best.ServerID == choice.ServerID {
		return nil
	}
	r.mu.Lock()
	r.rerouted++
	r.mu.Unlock()
	r.telemetry().Active().Counter("router.reroutes", best.ServerID).Inc()
	r.record("", choice.Spec.ID+"@"+best.ServerID,
		fmt.Sprintf("dispatch rescore from %s", choice.ServerID), []Breakdown{best})
	swapped := reps[best.ServerID].choice
	return &swapped
}

// RouteAttrs implements integrator.RouteAnnotator: the score breakdown of
// the most recent choice for a fragment, as span attributes.
func (r *WeightedRouter) RouteAttrs(fragID string) map[string]string {
	r.mu.Lock()
	b, ok := r.lastAttrs[fragID]
	r.mu.Unlock()
	if !ok {
		return nil
	}
	return map[string]string{
		"router.score":       fmt.Sprintf("%.4f", b.Total),
		"router.score_cpu":   fmt.Sprintf("%.4f", b.CPU),
		"router.score_mem":   fmt.Sprintf("%.4f", b.Memory),
		"router.score_cache": fmt.Sprintf("%.4f", b.Cache),
		"router.score_lat":   fmt.Sprintf("%.4f", b.Latency),
	}
}

// noteScore publishes one candidate's score gauge.
func (r *WeightedRouter) noteScore(fragID string, b Breakdown) {
	r.telemetry().Active().Gauge("router.score", fragID+"@"+b.ServerID).Set(b.Total)
}

// record appends to the decision log (nil-safe).
func (r *WeightedRouter) record(query, route, reason string, notes []Breakdown) {
	if r.cfg.Log == nil {
		return
	}
	var at simclock.Time
	if r.cfg.Clock != nil {
		at = r.cfg.Clock.Now()
	}
	detail := reason
	for i, b := range notes {
		if i == 0 {
			detail += ": "
		} else {
			detail += " "
		}
		detail += b.String()
	}
	r.cfg.Log.Record(Decision{At: at, Query: query, Policy: "weighted", Route: route, Reason: detail})
}

package router

import (
	"math"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/remote"
)

func choice(server string, totalMS float64) optimizer.FragmentChoice {
	return optimizer.FragmentChoice{
		ServerID: server,
		Plan:     &remote.Plan{ServerID: server, Est: remote.CostEstimate{TotalMS: totalMS}},
	}
}

func TestRepresentKeepsCheapestPerServer(t *testing.T) {
	opts := []optimizer.FragmentChoice{
		choice("S1", 30),
		choice("S2", 20),
		choice("S1", 10), // cheaper S1 plan listed later
		choice("S2", 40),
	}
	order, reps, minCost := represent(opts)
	if len(order) != 2 || order[0] != "S1" || order[1] != "S2" {
		t.Fatalf("order = %v, want [S1 S2] (first-seen)", order)
	}
	if reps["S1"].cost != 10 {
		t.Errorf("S1 representative cost = %v, want the cheapest plan (10)", reps["S1"].cost)
	}
	if reps["S2"].cost != 20 {
		t.Errorf("S2 representative cost = %v, want 20", reps["S2"].cost)
	}
	if minCost != 10 {
		t.Errorf("minCost = %v, want 10", minCost)
	}
}

func TestScoreBreakdown(t *testing.T) {
	r := New(Config{
		Weights: Weights{CPU: 0.3, Memory: 0.2, CacheLocality: 0.3, Latency: 0.2},
		Signals: Signals{
			FragmentFactor: func(serverID, sig string) float64 { return 2 },   // cpu = 0.5
			Reliability:    func(serverID string) float64 { return 1.25 },     // pressure base
			QueueDepth:     func() int { return 2 },                           // ×(1+0.25·2)
			CacheResidency: func(serverID string, ts []string) float64 { return 0.8 },
		},
	})
	b, ok := r.score("S1", "sig", []string{"orders"}, 40, 20)
	if !ok {
		t.Fatal("score returned !ok for a healthy server")
	}
	if b.CPU != 0.5 {
		t.Errorf("cpu sub-score = %v, want 0.5 (factor 2)", b.CPU)
	}
	wantMem := 1 / (1.25 * 1.5)
	if math.Abs(b.Memory-wantMem) > 1e-12 {
		t.Errorf("memory sub-score = %v, want %v", b.Memory, wantMem)
	}
	if b.Cache != 0.8 {
		t.Errorf("cache sub-score = %v, want 0.8", b.Cache)
	}
	if b.Latency != 0.5 {
		t.Errorf("latency sub-score = %v, want 0.5 (min 20 / cost 40)", b.Latency)
	}
	want := 0.3*0.5 + 0.2*wantMem + 0.3*0.8 + 0.2*0.5
	if math.Abs(b.Total-want) > 1e-12 {
		t.Errorf("total = %v, want %v", b.Total, want)
	}
}

func TestScoreSkipsFencedAndInfinite(t *testing.T) {
	r := New(Config{Signals: Signals{
		IsFenced: func(serverID string) bool { return serverID == "S2" },
	}})
	if _, ok := r.score("S2", "sig", nil, 10, 10); ok {
		t.Error("fenced server scored ok")
	}
	if _, ok := r.score("S1", "sig", nil, math.Inf(1), 10); ok {
		t.Error("infinite-cost candidate scored ok")
	}
	if _, ok := r.score("S1", "sig", nil, 10, 10); !ok {
		t.Error("healthy server rejected")
	}
}

func TestNewDefaults(t *testing.T) {
	r := New(Config{})
	if r.Weights() != DefaultWeights {
		t.Errorf("zero weights resolved to %+v, want DefaultWeights %+v", r.Weights(), DefaultWeights)
	}
	if r.cfg.QueuePressureGain != 0.25 {
		t.Errorf("queue pressure gain = %v, want 0.25", r.cfg.QueuePressureGain)
	}
	// Explicit weights are kept as-is, including latency-only.
	r2 := New(Config{Weights: Weights{Latency: 1}})
	if r2.Weights() != (Weights{Latency: 1}) {
		t.Errorf("explicit weights altered: %+v", r2.Weights())
	}
}

func TestChooseGlobalGuards(t *testing.T) {
	r := New(Config{})
	if got := r.ChooseGlobal("q", nil); got != nil {
		t.Error("nil winner not passed through")
	}
	// A winner whose Options are absent (pre-replication plan shape) must be
	// returned pointer-identical.
	winner := &optimizer.GlobalPlan{Fragments: []optimizer.FragmentChoice{choice("S1", 10)}}
	if got := r.ChooseGlobal("q", winner); got != winner {
		t.Error("winner without options was not returned untouched")
	}
}

func TestRerouteFragmentSingleCandidateNoop(t *testing.T) {
	r := New(Config{})
	c := choice("S1", 10)
	c.Spec = &optimizer.FragmentSpec{ID: "f1", Candidates: []string{"S1"}}
	if got := r.RerouteFragment(c); got != nil {
		t.Error("single-candidate fragment was rerouted")
	}
	if _, checked := r.Rerouted(); checked != 0 {
		t.Error("single-candidate fragment counted as a rescore check")
	}
}

func TestDecisionLogRing(t *testing.T) {
	log := NewDecisionLog(3)
	for i := 0; i < 5; i++ {
		log.Record(Decision{Query: string(rune('a' + i))})
	}
	if log.Total() != 5 {
		t.Errorf("Total = %d, want 5", log.Total())
	}
	last := log.Last(10)
	if len(last) != 3 {
		t.Fatalf("Last(10) returned %d decisions, want the 3 retained", len(last))
	}
	if last[0].Query != "c" || last[2].Query != "e" {
		t.Errorf("Last order = [%s %s %s], want oldest-first [c d e]",
			last[0].Query, last[1].Query, last[2].Query)
	}
	if got := log.Last(2); len(got) != 2 || got[0].Query != "d" {
		t.Errorf("Last(2) = %v, want [d e]", got)
	}
	var nilLog *DecisionLog
	nilLog.Record(Decision{}) // must not panic
	if nilLog.Last(1) != nil || nilLog.Total() != 0 {
		t.Error("nil log is not inert")
	}
}

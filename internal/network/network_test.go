package network

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/simclock"
)

func TestTransferTimeLatencyOnly(t *testing.T) {
	l := NewLink(LinkConfig{LatencyMS: 10})
	if got := l.TransferTime(1 << 20); got != 10 {
		t.Fatalf("infinite bandwidth: %v", got)
	}
}

func TestTransferTimeBandwidth(t *testing.T) {
	// 1024 KB/s ≈ 1.048576 bytes per ms... use 1000 KB/s = 1024 bytes/ms.
	l := NewLink(LinkConfig{LatencyMS: 5, BandwidthKBps: 1000})
	got := l.TransferTime(10240)
	want := 5 + 10240.0/1024.0
	if float64(got) < want-0.01 || float64(got) > want+0.01 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestCongestionSlowsLink(t *testing.T) {
	l := NewLink(LinkConfig{LatencyMS: 10, BandwidthKBps: 1000})
	base := l.TransferTime(10240)
	l.SetCongestion(3)
	slow := l.TransferTime(10240)
	if float64(slow) < float64(base)*2.9 {
		t.Fatalf("congestion barely slowed: %v -> %v", base, slow)
	}
	if l.Congestion() != 3 {
		t.Fatal("congestion getter")
	}
	l.SetCongestion(0.1)
	if l.Congestion() != 1 {
		t.Fatal("congestion must clamp at 1")
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	l1 := NewLink(LinkConfig{LatencyMS: 100, JitterFrac: 0.2, Seed: 7})
	l2 := NewLink(LinkConfig{LatencyMS: 100, JitterFrac: 0.2, Seed: 7})
	for i := 0; i < 100; i++ {
		a, b := l1.TransferTime(0), l2.TransferTime(0)
		if a != b {
			t.Fatal("same seed must give identical jitter")
		}
		if a < 80 || a > 120 {
			t.Fatalf("jitter out of bounds: %v", a)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	l := NewLink(LinkConfig{LatencyMS: 10})
	if got := l.RoundTripTime(0, 0); got != 20 {
		t.Fatalf("rtt: %v", got)
	}
	if l.BaseLatency() != 10 {
		t.Fatal("base latency")
	}
}

func TestTopologyTransferAndPartition(t *testing.T) {
	topo := NewTopology()
	topo.AddLink("S1", NewLink(LinkConfig{LatencyMS: 5}))
	topo.AddLink("S2", NewLink(LinkConfig{LatencyMS: 50}))
	tt, err := topo.Transfer(context.Background(), "S1", 0)
	if err != nil || tt != 5 {
		t.Fatalf("transfer: %v %v", tt, err)
	}
	if _, err := topo.Transfer(context.Background(), "S9", 0); err == nil {
		t.Fatal("unknown dest must error")
	}
	topo.Link("S1").SetDown(true)
	_, err = topo.Transfer(context.Background(), "S1", 0)
	var pe *ErrPartitioned
	if !errors.As(err, &pe) || pe.Dest != "S1" {
		t.Fatalf("partition error: %v", err)
	}
	if !topo.Link("S1").Down() {
		t.Fatal("down getter")
	}
	topo.Link("S1").SetDown(false)
	if _, err := topo.Transfer(context.Background(), "S1", 0); err != nil {
		t.Fatalf("recovered link: %v", err)
	}
	rtt, err := topo.RoundTrip(context.Background(), "S2", 10, 10)
	if err != nil || rtt != 100 {
		t.Fatalf("roundtrip: %v %v", rtt, err)
	}
	topo.Link("S2").SetDown(true)
	if _, err := topo.RoundTrip(context.Background(), "S2", 1, 1); err == nil {
		t.Fatal("roundtrip over down link must fail")
	}
	dests := topo.Destinations()
	if len(dests) != 2 || dests[0] != "S1" || dests[1] != "S2" {
		t.Fatalf("destinations: %v", dests)
	}
}

func TestTransferTimeNonNegativeProperty(t *testing.T) {
	l := NewLink(LinkConfig{LatencyMS: 1, BandwidthKBps: 10, JitterFrac: 0.9, Seed: 3})
	f := func(n uint16) bool {
		return l.TransferTime(int(n)) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferMonotoneInPayloadProperty(t *testing.T) {
	l := NewLink(LinkConfig{LatencyMS: 2, BandwidthKBps: 100})
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return l.TransferTime(x) <= l.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleCongestion(t *testing.T) {
	clock := simclock.New()
	l := NewLink(LinkConfig{LatencyMS: 10})
	cancel := ScheduleCongestion(clock, l, []CongestionPhase{
		{AfterMS: 100, Level: 4},
		{AfterMS: 200, Level: 1},
		{AfterMS: 300, Level: 8},
	})
	if l.Congestion() != 1 {
		t.Fatal("initial congestion")
	}
	clock.Advance(150)
	if l.Congestion() != 4 {
		t.Fatalf("phase 1: %g", l.Congestion())
	}
	clock.Advance(100)
	if l.Congestion() != 1 {
		t.Fatalf("phase 2: %g", l.Congestion())
	}
	cancel()
	clock.Advance(100)
	if l.Congestion() != 1 {
		t.Fatalf("cancelled phase must not apply: %g", l.Congestion())
	}
}

func TestScheduleCongestionCancelBeforeFirstPhase(t *testing.T) {
	clock := simclock.New()
	l := NewLink(LinkConfig{LatencyMS: 10})
	cancel := ScheduleCongestion(clock, l, []CongestionPhase{
		{AfterMS: 100, Level: 4},
		{AfterMS: 200, Level: 8},
	})
	cancel()
	clock.Advance(500)
	if l.Congestion() != 1 {
		t.Fatalf("cancel before any phase must leave the link calm: %g", l.Congestion())
	}
}

func TestScheduleCongestionCancelMidScheduleLevelPersists(t *testing.T) {
	clock := simclock.New()
	l := NewLink(LinkConfig{LatencyMS: 10})
	cancel := ScheduleCongestion(clock, l, []CongestionPhase{
		{AfterMS: 100, Level: 6},
		{AfterMS: 300, Level: 1},
	})
	clock.Advance(150)
	if l.Congestion() != 6 {
		t.Fatalf("phase 1 must apply: %g", l.Congestion())
	}
	cancel()
	clock.Advance(500)
	// Cancellation stops FUTURE phases; it does not restore the calm level.
	if l.Congestion() != 6 {
		t.Fatalf("cancel must freeze the current level, got %g", l.Congestion())
	}
}

func TestJitterTransferTimeDeterministicAcrossPayloads(t *testing.T) {
	// Two links with equal seeds must agree on every draw even when payload
	// sizes vary — the property the streaming escape hatch depends on: a
	// monolithic run and a BatchRows=0 streamed run issue the same Transfer
	// sequence and must therefore see identical virtual times.
	l1 := NewLink(LinkConfig{LatencyMS: 50, BandwidthKBps: 100, JitterFrac: 0.3, Seed: 99})
	l2 := NewLink(LinkConfig{LatencyMS: 50, BandwidthKBps: 100, JitterFrac: 0.3, Seed: 99})
	payloads := []int{0, 4096, 123, 1 << 20, 77, 256}
	for i, p := range payloads {
		a, b := l1.TransferTime(p), l2.TransferTime(p)
		if a != b {
			t.Fatalf("draw %d (payload %d): %v != %v", i, p, a, b)
		}
	}
	// A different seed diverges: the jitter stream really is seeded.
	l3 := NewLink(LinkConfig{LatencyMS: 50, BandwidthKBps: 100, JitterFrac: 0.3, Seed: 100})
	diverged := false
	for _, p := range payloads {
		if l1.TransferTime(p) != l3.TransferTime(p) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds must yield different jitter streams")
	}
}

// Package network simulates the wide-area network between the information
// integrator and the remote data sources. Each link has a base round-trip
// latency, a bandwidth, optional jitter, and a dynamic congestion level that
// experiments (and fault injection) can vary at runtime — the "dynamic
// nature of network latency" that the paper's cost model cannot see but QCC
// learns through calibration.
package network

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// Link models one direction-agnostic network path.
type Link struct {
	mu sync.Mutex
	// LatencyMS is the base one-way latency in simulated milliseconds.
	latencyMS float64
	// bandwidthKBps is the transfer rate in KB per simulated millisecond⁻¹
	// terms (bytes per ms).
	bytesPerMS float64
	// jitterFrac adds ±jitterFrac·latency uniform noise.
	jitterFrac float64
	// congestion multiplies latency and divides bandwidth; 1 = calm.
	congestion float64
	rng        *rand.Rand
	down       bool
}

// LinkConfig configures a link.
type LinkConfig struct {
	// LatencyMS is the base one-way latency in milliseconds.
	LatencyMS float64
	// BandwidthKBps is the throughput in kilobytes per second.
	BandwidthKBps float64
	// JitterFrac adds ±JitterFrac·latency uniform noise (0 disables).
	JitterFrac float64
	// Seed seeds the jitter stream; links with the same seed are identical.
	Seed int64
}

// NewLink builds a link. Zero bandwidth means effectively infinite.
func NewLink(cfg LinkConfig) *Link {
	bpm := 0.0
	if cfg.BandwidthKBps > 0 {
		bpm = cfg.BandwidthKBps * 1024 / 1000 // bytes per millisecond
	}
	return &Link{
		latencyMS:  cfg.LatencyMS,
		bytesPerMS: bpm,
		jitterFrac: cfg.JitterFrac,
		congestion: 1,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
	}
}

// SetCongestion sets the congestion multiplier (>= 1 slows the link; values
// below 1 are clamped to 1).
func (l *Link) SetCongestion(c float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if c < 1 {
		c = 1
	}
	l.congestion = c
}

// Congestion returns the current multiplier.
func (l *Link) Congestion() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.congestion
}

// SetDown marks the link as partitioned (transfers fail).
func (l *Link) SetDown(down bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.down = down
}

// Down reports whether the link is partitioned.
func (l *Link) Down() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// ErrPartitioned is returned when a transfer is attempted over a down link.
type ErrPartitioned struct{ Dest string }

// Error implements error.
func (e *ErrPartitioned) Error() string {
	return fmt.Sprintf("network: link to %s is partitioned", e.Dest)
}

// transferParts computes one transfer draw split into propagation latency
// (with congestion and jitter) and serialization delay. Callers hold l.mu.
func (l *Link) transferParts(payloadBytes int) (lat, ser float64) {
	lat = l.latencyMS * l.congestion
	if l.jitterFrac > 0 {
		lat += lat * l.jitterFrac * (2*l.rng.Float64() - 1)
	}
	if l.bytesPerMS > 0 {
		ser = float64(payloadBytes) / (l.bytesPerMS / l.congestion)
	}
	return lat, ser
}

// TransferTime returns the simulated time to move payloadBytes one way over
// the link, including latency, serialization delay, congestion and jitter.
func (l *Link) TransferTime(payloadBytes int) simclock.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	lat, ser := l.transferParts(payloadBytes)
	t := lat + ser
	if t < 0 {
		t = 0
	}
	return simclock.Time(t)
}

// TransferParts is TransferTime with the two delay components exposed:
// propagation latency (one draw of the same jitter stream) and serialization
// time. Streamed batches need the split because consecutive batches share the
// wire — serialization occupies the link serially while each batch's
// propagation overlaps the next batch's send.
func (l *Link) TransferParts(payloadBytes int) (lat, ser simclock.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	la, se := l.transferParts(payloadBytes)
	if la < 0 {
		la = 0
	}
	return simclock.Time(la), simclock.Time(se)
}

// RoundTripTime returns the time for a request of reqBytes and a response of
// respBytes.
func (l *Link) RoundTripTime(reqBytes, respBytes int) simclock.Time {
	return l.TransferTime(reqBytes) + l.TransferTime(respBytes)
}

// BaseLatency returns the configured (uncongested, jitter-free) latency —
// what a DB2 administrator would statically register for the source.
func (l *Link) BaseLatency() simclock.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return simclock.Time(l.latencyMS)
}

// StaticTransferTime is the transfer estimate a cost model would compute
// from the registered latency and bandwidth, blind to current congestion and
// jitter. The gap between this and TransferTime is part of what QCC's
// calibration factor absorbs.
func (l *Link) StaticTransferTime(payloadBytes int) simclock.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.latencyMS
	if l.bytesPerMS > 0 {
		t += float64(payloadBytes) / l.bytesPerMS
	}
	return simclock.Time(t)
}

// Topology maps destination names (remote server IDs) to links.
type Topology struct {
	mu    sync.RWMutex
	links map[string]*Link
	tel   *telemetry.Telemetry
}

// SetTelemetry installs the observability subsystem: every successful
// Transfer feeds the per-destination transfer-time histogram. Nil disables.
func (t *Topology) SetTelemetry(tel *telemetry.Telemetry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tel = tel
}

func (t *Topology) telemetry() *telemetry.Telemetry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tel
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{links: map[string]*Link{}}
}

// AddLink registers the link to dest, replacing any existing one.
func (t *Topology) AddLink(dest string, link *Link) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.links[dest] = link
}

// Link returns the link to dest, or nil.
func (t *Topology) Link(dest string) *Link {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.links[dest]
}

// Transfer computes the one-way transfer time to dest, failing when the
// context is cancelled or the destination is unknown or partitioned.
func (t *Topology) Transfer(ctx context.Context, dest string, payloadBytes int) (simclock.Time, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	l := t.Link(dest)
	if l == nil {
		return 0, fmt.Errorf("network: no link to %q", dest)
	}
	if l.Down() {
		return 0, &ErrPartitioned{Dest: dest}
	}
	tt := l.TransferTime(payloadBytes)
	t.telemetry().Active().Histogram("network.transfer_ms", dest, nil).Observe(float64(tt))
	return tt, nil
}

// TransferBatch computes the one-way delay of one streamed result batch,
// split into propagation latency and serialization time: batches of one
// stream share the wire, so serialization is serial across batches while
// propagation overlaps the next batch's send. The total (lat+ser) matches a
// Transfer of the same payload draw for draw. It additionally records the
// batch size on the network.batch_bytes histogram, so it is only used on the
// streaming path — monolithic transfers leave no batch series behind.
func (t *Topology) TransferBatch(ctx context.Context, dest string, payloadBytes int) (lat, ser simclock.Time, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	l := t.Link(dest)
	if l == nil {
		return 0, 0, fmt.Errorf("network: no link to %q", dest)
	}
	if l.Down() {
		return 0, 0, &ErrPartitioned{Dest: dest}
	}
	lat, ser = l.TransferParts(payloadBytes)
	t.telemetry().Active().Histogram("network.transfer_ms", dest, nil).Observe(float64(lat + ser))
	t.telemetry().Active().Histogram("network.batch_bytes", dest, batchBytesBuckets).Observe(float64(payloadBytes))
	return lat, ser, nil
}

// batchBytesBuckets sizes the batch-volume histogram: batches range from a
// few hundred bytes (tiny tail batches) to megabytes (blocking plans that
// ship in one piece).
var batchBytesBuckets = []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576}

// RoundTrip computes request+response transfer time to dest.
func (t *Topology) RoundTrip(ctx context.Context, dest string, reqBytes, respBytes int) (simclock.Time, error) {
	req, err := t.Transfer(ctx, dest, reqBytes)
	if err != nil {
		return 0, err
	}
	resp, err := t.Transfer(ctx, dest, respBytes)
	if err != nil {
		return 0, err
	}
	return req + resp, nil
}

// CongestionPhase is one step of a congestion schedule.
type CongestionPhase struct {
	// AfterMS is the delay from schedule start until this phase applies.
	AfterMS float64
	// Level is the congestion multiplier for the phase.
	Level float64
}

// ScheduleCongestion drives a link's congestion through a time-varying
// profile on the virtual clock — rush hours, flapping routes, slow
// recoveries. The schedule applies each phase at its offset; it returns a
// cancel function that stops future phases (the current level persists).
func ScheduleCongestion(clock *simclock.Clock, link *Link, phases []CongestionPhase) simclock.Cancel {
	var mu sync.Mutex
	cancelled := false
	for _, p := range phases {
		p := p
		clock.ScheduleAfter(simclock.Time(p.AfterMS), func(simclock.Time) {
			mu.Lock()
			stop := cancelled
			mu.Unlock()
			if !stop {
				link.SetCongestion(p.Level)
			}
		})
	}
	return func() {
		mu.Lock()
		defer mu.Unlock()
		cancelled = true
	}
}

// Destinations lists known destinations, sorted.
func (t *Topology) Destinations() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.links))
	for d := range t.links {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

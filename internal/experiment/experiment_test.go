package experiment

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/workload"
)

// The experiment tests assert the PAPER'S qualitative claims — they are the
// reproduction's acceptance tests. Small scales keep them fast; the shapes
// are scale-free (verified at scales 20–100 during tuning).

var (
	sensOnce   sync.Once
	sensCached []SensitivityResult
	sensErr    error
	gainOnce   sync.Once
	gainCached []PhaseOutcome
	gainErr    error
)

func sensitivity(t *testing.T) []SensitivityResult {
	t.Helper()
	sensOnce.Do(func() {
		sensCached, sensErr = SensitivityStudy(Options{Scale: 50, Instances: 5})
	})
	if sensErr != nil {
		t.Fatal(sensErr)
	}
	return sensCached
}

func byQT(res []SensitivityResult) map[string]SensitivityResult {
	out := map[string]SensitivityResult{}
	for _, r := range res {
		out[r.QT] = r
	}
	return out
}

func TestFigure9ServersDifferAndS3BestAtBase(t *testing.T) {
	res := byQT(sensitivity(t))
	// "The three servers function differently from each other. Overall, S3
	// functions better than the others in most situations."
	wins := 0
	for _, qt := range []string{"QT1", "QT2", "QT3", "QT4"} {
		r := res[qt]
		s3 := Mean(r.Low["S3"])
		if s3 < Mean(r.Low["S1"]) && s3 < Mean(r.Low["S2"]) {
			wins++
		}
	}
	if wins < 3 {
		t.Fatalf("S3 must be the best base server for most query types, won %d/4", wins)
	}
}

func TestFigure9QT2S3MostLoadSensitive(t *testing.T) {
	res := byQT(sensitivity(t))
	r := res["QT2"]
	blowup := func(s string) float64 { return Mean(r.High[s]) / Mean(r.Low[s]) }
	s1, s2, s3 := blowup("S1"), blowup("S2"), blowup("S3")
	// "for one of the costlier query types (QT2), S3 is much more sensitive
	// to load than the others"
	if s3 <= s1 || s3 <= s2 {
		t.Fatalf("S3 must be the most load-sensitive for QT2: S1=%.1fx S2=%.1fx S3=%.1fx", s1, s2, s3)
	}
	// "if S3 is the only loaded server ... S1 and S2 will be more desirable"
	if Mean(r.High["S3"]) <= Mean(r.Low["S1"]) || Mean(r.High["S3"]) <= Mean(r.Low["S2"]) {
		t.Fatalf("loaded S3 must lose to unloaded S1/S2 for QT2: S3-high=%.1f S1-low=%.1f S2-low=%.1f",
			Mean(r.High["S3"]), Mean(r.Low["S1"]), Mean(r.Low["S2"]))
	}
}

func TestFigure9QT3S3CheapEvenLoaded(t *testing.T) {
	res := byQT(sensitivity(t))
	r := res["QT3"]
	// "in query type 3, S3 is the cheapest server, even when it is highly
	// loaded and the other two are not loaded" — we require it to beat S1
	// and stay within ~20% of S2.
	s3High := Mean(r.High["S3"])
	if s3High >= Mean(r.Low["S1"]) {
		t.Fatalf("loaded S3 must beat unloaded S1 for QT3: %.1f vs %.1f", s3High, Mean(r.Low["S1"]))
	}
	if s3High >= Mean(r.Low["S2"])*1.25 {
		t.Fatalf("loaded S3 must stay competitive with unloaded S2 for QT3: %.1f vs %.1f", s3High, Mean(r.Low["S2"]))
	}
}

func TestFigure9LoadAlwaysHurts(t *testing.T) {
	res := sensitivity(t)
	for _, r := range res {
		for _, s := range Servers {
			if Mean(r.High[s]) <= Mean(r.Low[s]) {
				t.Fatalf("%s on %s: load must increase response time (%.1f vs %.1f)",
					r.QT, s, Mean(r.High[s]), Mean(r.Low[s]))
			}
		}
	}
}

func gainStudy(t *testing.T) []PhaseOutcome {
	t.Helper()
	gainOnce.Do(func() {
		gainCached, gainErr = GainStudy(Options{Scale: 50, Instances: 5})
	})
	if gainErr != nil {
		t.Fatal(gainErr)
	}
	if len(gainCached) != 8 {
		t.Fatalf("phases: %d", len(gainCached))
	}
	return gainCached
}

func TestFigure10QCCBeatsFixedAssignmentEveryPhase(t *testing.T) {
	out := gainStudy(t)
	for _, o := range out {
		if o.Gain1 <= 0 {
			t.Fatalf("%s: QCC must beat fixed assignment 1 (gain %.1f%%)", o.Phase.Name, o.Gain1*100)
		}
	}
	g1, _ := AverageGains(out)
	// Paper: "an average of almost 50% performance gain".
	if g1 < 0.35 || g1 > 0.75 {
		t.Fatalf("average gain vs fixed1 out of band: %.1f%% (paper ≈50%%)", g1*100)
	}
	// Paper: "even when all remote servers are heavily loaded, QCC still can
	// improve the average response time by almost 60%".
	last := out[7]
	if last.Gain1 < 0.35 {
		t.Fatalf("all-loaded phase gain too small: %.1f%%", last.Gain1*100)
	}
}

func TestFigure11GainsOnlyWhenS3Loaded(t *testing.T) {
	out := gainStudy(t)
	var s3LoadedGains, s3BaseGains []float64
	for _, o := range out {
		if o.Phase.Loaded["S3"] && !(o.Phase.Loaded["S1"] && o.Phase.Loaded["S2"]) {
			s3LoadedGains = append(s3LoadedGains, o.Gain2)
		}
		if !o.Phase.Loaded["S3"] {
			s3BaseGains = append(s3BaseGains, o.Gain2)
		}
	}
	// Paper: the always-S3 assignment "performs well most of time" but "in
	// three combinations of server load conditions" QCC gains ≈20%.
	if Mean(s3LoadedGains) < 0.05 {
		t.Fatalf("QCC must gain when S3 is loaded: %.1f%%", Mean(s3LoadedGains)*100)
	}
	for _, g := range s3BaseGains {
		if g < -0.05 || g > 0.10 {
			t.Fatalf("with S3 unloaded QCC should match always-S3: gain %.1f%%", g*100)
		}
	}
}

func TestTable2DynamicAssignments(t *testing.T) {
	out := gainStudy(t)
	// QT1 routes to S3 in every phase (paper's QT1 row).
	for _, o := range out {
		if o.Assignments["QT1"] != "S3" {
			t.Fatalf("%s: QT1 should stay on S3, got %s", o.Phase.Name, o.Assignments["QT1"])
		}
	}
	// QT2's paper row: S3 S2 S3 S1 S3 S2 S3 S3.
	want := []string{"S3", "S2", "S3", "S1", "S3", "S2", "S3", "S3"}
	for i, o := range out {
		if o.Assignments["QT2"] != want[i] {
			t.Fatalf("%s: QT2 assignment %s, paper row says %s", o.Phase.Name, o.Assignments["QT2"], want[i])
		}
	}
	// Dynamic assignment must deviate from the fixed registration somewhere.
	fixed := workload.FixedAssignment1()
	deviations := 0
	for _, o := range out {
		for qt, s := range o.Assignments {
			if s != fixed[qt] {
				deviations++
			}
		}
	}
	if deviations == 0 {
		t.Fatal("dynamic routing never deviated from the fixed assignment")
	}
}

func TestReportFormatters(t *testing.T) {
	out := gainStudy(t)
	sens := sensitivity(t)
	f9 := FormatFigure9(sens)
	if !strings.Contains(f9, "QT1") || !strings.Contains(f9, "S3-high") {
		t.Fatalf("figure 9 format:\n%s", f9)
	}
	t1 := FormatTable1()
	if !strings.Contains(t1, "Load") || !strings.Contains(t1, "S2") {
		t.Fatalf("table 1 format:\n%s", t1)
	}
	t2 := FormatTable2(out)
	if !strings.Contains(t2, "QT4") {
		t.Fatalf("table 2 format:\n%s", t2)
	}
	f10 := FormatFigure10(out)
	if !strings.Contains(f10, "average gain") {
		t.Fatalf("figure 10 format:\n%s", f10)
	}
	f11 := FormatFigure11(out)
	if !strings.Contains(f11, "Fixed2") {
		t.Fatalf("figure 11 format:\n%s", f11)
	}
}

func TestMeanAndAverageGains(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{1, 3}) != 2 {
		t.Fatal("mean")
	}
	if g1, g2 := AverageGains(nil); g1 != 0 || g2 != 0 {
		t.Fatal("empty gains")
	}
}

// TestStep7SelectiveLoadingIsolation asserts §5.1 Step 7's claim: "QCC is
// able to improve the processing performance of the relevant queries without
// negatively effecting the processing of the entire system". When a server
// nothing prefers is loaded (phases 3 and 5 load only S2 or S1), QCC's
// workload performance matches the all-calm phase.
func TestStep7SelectiveLoadingIsolation(t *testing.T) {
	out := gainStudy(t)
	calm := out[0].QCCAvgMS           // phase 1: all base
	for _, idx := range []int{2, 4} { // phase 3 (S2 loaded), phase 5 (S1 loaded)
		o := out[idx]
		if o.Phase.Loaded["S3"] {
			t.Fatalf("phase pick wrong: %+v", o.Phase)
		}
		if o.QCCAvgMS > calm*1.05 {
			t.Fatalf("%s: loading an unpreferred server must not hurt QCC (%.1f vs calm %.1f)",
				o.Phase.Name, o.QCCAvgMS, calm)
		}
	}
}

// multitenant.go is the multi-tenant overload study: seeded traffic mixes
// (workload.Mix) replayed through a weighted-fair admission controller as a
// discrete-event simulation, measuring per-tenant latency percentiles,
// served-cost shares, Jain's fairness index and shed rates under saturation.
package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/admission"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// mtSnapshotEveryMS is the virtual cadence of the per-tenant accounting
// snapshots fairness is judged on.
const mtSnapshotEveryMS = 250

// MultitenantTenantOutcome is one tenant's slice of a scenario run.
type MultitenantTenantOutcome struct {
	Tenant string  `json:"tenant"`
	Weight float64 `json:"weight"`
	Class  string  `json:"class,omitempty"`
	// Arrivals/Completed/Shed partition the tenant's offered queries; Shed
	// counts typed admission refusals (tenant quotas or class congestion).
	Arrivals  int     `json:"arrivals"`
	Completed int     `json:"completed"`
	Shed      int     `json:"shed"`
	ShedRate  float64 `json:"shed_rate"`
	// End-to-end latency percentiles (queue wait + service) over the
	// tenant's completed queries, in virtual milliseconds.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// ContendedServedMS is the tenant's cumulative served cost at the last
	// snapshot where every tenant was still backlogged — the instant fair
	// shares are judged at; ServedShare normalizes it across tenants.
	ContendedServedMS float64 `json:"contended_served_ms,omitempty"`
	ServedShare       float64 `json:"served_share,omitempty"`
	// TotalServedMS is the tenant's served cost over the whole run.
	TotalServedMS float64 `json:"total_served_ms"`
}

// MultitenantOutcome is one scenario of the study.
type MultitenantOutcome struct {
	Scenario string `json:"scenario"`
	// GlobalCap is the controller's concurrency cap; OverloadFactor is the
	// offered service demand as a multiple of the cap's service capacity.
	GlobalCap      int     `json:"global_cap"`
	OverloadFactor float64 `json:"overload_factor"`
	HorizonMS      float64 `json:"horizon_ms"`
	Arrivals       int     `json:"arrivals"`
	Completed      int     `json:"completed"`
	Shed           int     `json:"shed"`
	// Lost counts queries that vanished without a typed outcome — always
	// zero under the no-query-lost invariant.
	Lost int `json:"lost"`
	// JainIndex is Jain's fairness index over the tenants'
	// weight-normalized contended served costs (1.0 = perfectly fair).
	JainIndex float64 `json:"jain_index,omitempty"`
	// ServedRatio is the contended served-cost ratio of the first tenant to
	// the last (the weighted scenario's 3:1 acceptance metric).
	ServedRatio float64 `json:"served_ratio,omitempty"`
	// Isolation metrics: the light tenant's p95 alone vs beside the heavy
	// tenant, and their ratio (the <=1.5x acceptance metric).
	BaselineP95MS     float64                    `json:"baseline_p95_ms,omitempty"`
	ContendedP95MS    float64                    `json:"contended_p95_ms,omitempty"`
	IsolationP95Ratio float64                    `json:"isolation_p95_ratio,omitempty"`
	Tenants           []MultitenantTenantOutcome `json:"tenants"`
}

// MultitenantStudyResult is the full study emitted to BENCH_multitenant.json.
type MultitenantStudyResult struct {
	Seed      int64                `json:"seed"`
	Scenarios []MultitenantOutcome `json:"scenarios"`
}

// mtScenario describes one replayable overload scenario.
type mtScenario struct {
	name     string
	policy   admission.Policy
	tenants  []admission.Tenant
	streams  []workload.TenantStream
	horizon  simclock.Time
	seed     int64
	overload float64
	// costMS is each tenant's per-query service cost in virtual ms.
	costMS map[string]float64
}

// mtRun is one scenario replay: the mix outcome plus the served-cost map at
// the last snapshot where every tenant was backlogged.
type mtRun struct {
	res       workload.MixResult
	contended map[string]float64
}

// runMTScenario replays the scenario as a discrete-event simulation: every
// query is admitted through a weighted-fair controller and occupies its slot
// for the tenant's service cost of virtual time.
func runMTScenario(sc mtScenario) mtRun {
	clk := simclock.New()
	ctrl := admission.New(admission.Config{Clock: clk, Policy: sc.policy})
	for _, t := range sc.tenants {
		ctrl.RegisterTenant(t)
	}
	var contended map[string]float64
	cancel := clk.Every(mtSnapshotEveryMS, func(simclock.Time) simclock.Time {
		served := map[string]float64{}
		for _, ts := range ctrl.TenantStats() {
			if !ts.Registered {
				continue
			}
			if ts.Queued == 0 {
				return 0
			}
			served[ts.Name] = ts.ServedCostMS
		}
		if len(served) == len(sc.tenants) {
			contended = served
		}
		return 0
	})
	defer cancel()

	exec := func(ctx context.Context, _ int, item workload.Item) (simclock.Time, error) {
		cost := sc.costMS[item.Tenant]
		g, err := ctrl.Admit(ctx, admission.Request{
			Query:  item.SQL,
			CostMS: cost,
			Class:  admission.ClassFromContext(ctx),
			Tenant: admission.TenantFromContext(ctx),
		})
		if err != nil {
			return 0, err
		}
		defer g.Release()
		done := make(chan struct{})
		clk.ScheduleAfter(simclock.Time(cost), func(simclock.Time) { close(done) })
		select {
		case <-done:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
		return g.QueueWait() + simclock.Time(cost), nil
	}
	mix := workload.Mix{Seed: sc.seed, Horizon: sc.horizon, Streams: sc.streams}
	settle := func() int { return ctrl.QueueDepth() + ctrl.Running() }
	res := workload.RunMix(context.Background(), clk, mix, exec, settle)
	return mtRun{res: res, contended: contended}
}

// mtPercentile returns the q-th percentile (0 < q <= 1) of the sorted sample.
func mtPercentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// mtTenantOutcomes aggregates a run's per-tenant outcomes in the scenario's
// tenant declaration order.
func mtTenantOutcomes(sc mtScenario, run mtRun) []MultitenantTenantOutcome {
	classOf := map[string]string{}
	for _, s := range sc.streams {
		classOf[s.Tenant] = s.Class
	}
	arrivals := map[string]int{}
	completed := map[string]int{}
	shed := map[string]int{}
	lat := map[string][]float64{}
	served := map[string]float64{}
	for i, r := range run.res.Results {
		tenant := run.res.Arrivals[i].Item.Tenant
		arrivals[tenant]++
		switch {
		case r.Err != nil:
			if errors.Is(r.Err, admission.ErrAdmissionRejected) {
				shed[tenant]++
			}
		case !r.Skipped:
			completed[tenant]++
			lat[tenant] = append(lat[tenant], float64(r.ResponseTime))
			served[tenant] += sc.costMS[tenant]
		}
	}
	contendedTotal := 0.0
	for _, v := range run.contended {
		contendedTotal += v
	}
	var out []MultitenantTenantOutcome
	for _, t := range sc.tenants {
		ls := lat[t.Name]
		sort.Float64s(ls)
		o := MultitenantTenantOutcome{
			Tenant:            t.Name,
			Weight:            t.Weight,
			Class:             classOf[t.Name],
			Arrivals:          arrivals[t.Name],
			Completed:         completed[t.Name],
			Shed:              shed[t.Name],
			P50MS:             mtPercentile(ls, 0.50),
			P95MS:             mtPercentile(ls, 0.95),
			P99MS:             mtPercentile(ls, 0.99),
			ContendedServedMS: run.contended[t.Name],
			TotalServedMS:     served[t.Name],
		}
		if o.Arrivals > 0 {
			o.ShedRate = float64(o.Shed) / float64(o.Arrivals)
		}
		if contendedTotal > 0 {
			o.ServedShare = o.ContendedServedMS / contendedTotal
		}
		out = append(out, o)
	}
	return out
}

// mtOutcome assembles one scenario's outcome from its run.
func mtOutcome(sc mtScenario, run mtRun) MultitenantOutcome {
	out := MultitenantOutcome{
		Scenario:       sc.name,
		GlobalCap:      sc.policy.MaxConcurrent,
		OverloadFactor: sc.overload,
		HorizonMS:      float64(sc.horizon),
		Arrivals:       len(run.res.Arrivals),
		Completed:      run.res.Stats.Completed,
		Shed:           run.res.Stats.Shed,
		Lost:           len(run.res.Arrivals) - run.res.Stats.Completed - run.res.Stats.Failed - run.res.Stats.Skipped,
		Tenants:        mtTenantOutcomes(sc, run),
	}
	// Jain's index over weight-normalized contended served costs.
	if len(run.contended) == len(sc.tenants) && len(sc.tenants) > 0 {
		sum, sumSq := 0.0, 0.0
		for _, t := range sc.tenants {
			x := run.contended[t.Name]
			if w := t.Weight; w > 0 {
				x /= w
			}
			sum += x
			sumSq += x * x
		}
		if sumSq > 0 {
			out.JainIndex = sum * sum / (float64(len(sc.tenants)) * sumSq)
		}
		first := run.contended[sc.tenants[0].Name]
		last := run.contended[sc.tenants[len(sc.tenants)-1].Name]
		if last > 0 {
			out.ServedRatio = first / last
		}
	}
	return out
}

// MultitenantStudy runs the three overload scenarios of the multi-tenant
// workload-management evaluation:
//
//	equal-weights: four weight-1 tenants offering 2x the service capacity;
//	  fairness is Jain's index over served costs while all are backlogged.
//	weighted-3to1: two tenants with 3:1 weights at 2x overload; the served
//	  cost ratio while contended must track the weights, and no query may
//	  be lost (every arrival completes or sheds with a typed error).
//	isolation: a light interactive tenant beside a heavy batch tenant that
//	  floods at 2x capacity under a queue quota; the light tenant's p95 must
//	  not degrade more than 1.5x versus running alone.
//
// Every scenario is a seeded, replayable discrete-event simulation on the
// virtual clock; only opts.Seed perturbs the arrival processes.
func MultitenantStudy(opts Options) (MultitenantStudyResult, error) {
	opts.fill()
	out := MultitenantStudyResult{Seed: opts.Seed}

	// Scenario 1 — equal weights. Capacity is 4 slots / 20ms = 200 q/s;
	// four tenants at 100 q/s each offer 2x that.
	equal := mtScenario{
		name:     "equal-weights",
		policy:   admission.Policy{MaxConcurrent: 4},
		horizon:  6000,
		seed:     opts.Seed,
		overload: 2,
		costMS:   map[string]float64{},
	}
	for _, name := range []string{"t1", "t2", "t3", "t4"} {
		equal.tenants = append(equal.tenants, admission.Tenant{Name: name, Weight: 1})
		equal.costMS[name] = 20
		equal.streams = append(equal.streams, workload.TenantStream{
			Tenant:   name,
			Queries:  []string{"SELECT 1"},
			Arrivals: workload.Poisson{RatePerSec: 100},
		})
	}
	equalRun := runMTScenario(equal)
	if equalRun.contended == nil {
		return out, fmt.Errorf("multitenant equal-weights: no snapshot with all tenants backlogged")
	}
	out.Scenarios = append(out.Scenarios, mtOutcome(equal, equalRun))

	// Scenario 2 — 3:1 weights, identical offered load, 2x overload.
	weighted := mtScenario{
		name:     "weighted-3to1",
		policy:   admission.Policy{MaxConcurrent: 4},
		horizon:  6000,
		seed:     opts.Seed,
		overload: 2,
		costMS:   map[string]float64{"gold": 20, "bronze": 20},
		tenants: []admission.Tenant{
			{Name: "gold", Weight: 3},
			{Name: "bronze", Weight: 1},
		},
	}
	for _, name := range []string{"gold", "bronze"} {
		weighted.streams = append(weighted.streams, workload.TenantStream{
			Tenant:   name,
			Queries:  []string{"SELECT 1"},
			Arrivals: workload.Poisson{RatePerSec: 200},
		})
	}
	weightedRun := runMTScenario(weighted)
	if weightedRun.contended == nil {
		return out, fmt.Errorf("multitenant weighted-3to1: no snapshot with all tenants backlogged")
	}
	out.Scenarios = append(out.Scenarios, mtOutcome(weighted, weightedRun))

	// Scenario 3 — isolation. A light interactive tenant (10 q/s of 30ms
	// queries) runs beside a heavy batch tenant flooding at 2x the 2-slot
	// capacity under a 300-deep queue quota; the baseline replays the same
	// light stream alone (per-stream rngs make its arrivals identical).
	isoPolicy := admission.Policy{
		MaxConcurrent: 2,
		Classes: []admission.ClassConfig{
			{Name: admission.ClassInteractive, Priority: 10},
			{Name: admission.ClassBatch, Priority: 0},
		},
	}
	iso := mtScenario{
		name:     "isolation",
		policy:   isoPolicy,
		horizon:  4000,
		seed:     opts.Seed,
		overload: 2,
		costMS:   map[string]float64{"light": 30, "heavy": 10},
		tenants: []admission.Tenant{
			{Name: "light", Weight: 1},
			{Name: "heavy", Weight: 1, MaxQueue: 300},
		},
		streams: []workload.TenantStream{
			{Tenant: "light", Class: admission.ClassInteractive, Queries: []string{"SELECT 1"},
				Arrivals: workload.Poisson{RatePerSec: 10}},
			{Tenant: "heavy", Class: admission.ClassBatch, Queries: []string{"SELECT 2"},
				Arrivals: workload.Poisson{RatePerSec: 400}},
		},
	}
	baseline := iso
	baseline.name = "isolation-baseline"
	baseline.tenants = iso.tenants[:1:1]
	baseline.streams = iso.streams[:1:1]
	baseRun := runMTScenario(baseline)
	isoRun := runMTScenario(iso)
	isoOut := mtOutcome(iso, isoRun)
	baseTenants := mtTenantOutcomes(baseline, baseRun)
	if len(baseTenants) > 0 {
		isoOut.BaselineP95MS = baseTenants[0].P95MS
	}
	for _, t := range isoOut.Tenants {
		if t.Tenant == "light" {
			isoOut.ContendedP95MS = t.P95MS
		}
	}
	if isoOut.BaselineP95MS > 0 {
		isoOut.IsolationP95Ratio = isoOut.ContendedP95MS / isoOut.BaselineP95MS
	}
	out.Scenarios = append(out.Scenarios, isoOut)
	return out, nil
}

// WriteMultitenantStudy merges the study under the "multitenant" key of the
// given JSON file (other keys, if the file exists, are preserved).
func WriteMultitenantStudy(result MultitenantStudyResult, path string) error {
	doc := map[string]json.RawMessage{}
	if buf, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(buf, &doc)
	}
	enc, err := json.Marshal(result)
	if err != nil {
		return err
	}
	doc["multitenant"] = enc
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// FormatMultitenantStudy renders the per-scenario tenant tables.
func FormatMultitenantStudy(result MultitenantStudyResult) string {
	out := "Multi-tenant overload study — weighted-fair scheduling under 2x saturation\n"
	for _, sc := range result.Scenarios {
		out += fmt.Sprintf("  %s: cap %d, %.0fx overload, %d arrivals, %d completed, %d shed, %d lost",
			sc.Scenario, sc.GlobalCap, sc.OverloadFactor, sc.Arrivals, sc.Completed, sc.Shed, sc.Lost)
		if sc.JainIndex > 0 {
			out += fmt.Sprintf(", Jain %.3f", sc.JainIndex)
		}
		if sc.ServedRatio > 0 {
			out += fmt.Sprintf(", served ratio %.2f", sc.ServedRatio)
		}
		if sc.IsolationP95Ratio > 0 {
			out += fmt.Sprintf(", p95 %.1f→%.1fms (%.2fx)",
				sc.BaselineP95MS, sc.ContendedP95MS, sc.IsolationP95Ratio)
		}
		out += "\n"
		out += "    tenant  weight  arrive  done  shed  p50(vms)  p95(vms)  p99(vms)  share\n"
		for _, t := range sc.Tenants {
			out += fmt.Sprintf("    %-7s %6.1f %7d %5d %5d %9.1f %9.1f %9.1f %6.2f\n",
				t.Tenant, t.Weight, t.Arrivals, t.Completed, t.Shed, t.P50MS, t.P95MS, t.P99MS, t.ServedShare)
		}
	}
	return out
}

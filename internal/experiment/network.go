package experiment

import (
	"fmt"

	"repro/internal/qcc"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// NetworkOutcome is one congestion level's measurement in the network
// study.
type NetworkOutcome struct {
	// Congestion is the multiplier applied to the link toward the
	// statically-preferred server.
	Congestion float64
	// FixedAvgMS is the average response time when routing stays pinned to
	// that server (the static nickname registration, blind to the network).
	FixedAvgMS float64
	// QCCAvgMS is the average response with QCC-calibrated routing.
	QCCAvgMS float64
	// Gain is (fixed − qcc)/fixed.
	Gain float64
}

// NetworkStudy exercises the "network aware" half of the paper's title
// beyond the load phases: the link toward the best server degrades
// progressively (congestion multiplies latency and divides bandwidth), and
// we compare pinned routing against QCC, whose calibration factors absorb
// network latency exactly like processing latency (§3.1: "their combined
// effects can be captured using a single ... calibration factor").
func NetworkStudy(opts Options, congestions []float64) ([]NetworkOutcome, error) {
	opts.fill()
	if len(congestions) == 0 {
		congestions = []float64{1, 2, 4, 8, 16}
	}
	// Find the calm-system winner once: that is the server a static
	// registration would pin.
	probe, err := scenario.BuildThreeServer(scenario.Options{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	gp, err := probe.II.Compile(workload.Types()[0].Make(0))
	if err != nil {
		return nil, err
	}
	pinned := gp.Fragments[0].ServerID

	var out []NetworkOutcome
	for _, cong := range congestions {
		fixedAvg, err := runNetworkFixed(opts, pinned, cong)
		if err != nil {
			return nil, fmt.Errorf("network study fixed @%gx: %w", cong, err)
		}
		qccAvg, err := runNetworkQCC(opts, pinned, cong)
		if err != nil {
			return nil, fmt.Errorf("network study qcc @%gx: %w", cong, err)
		}
		out = append(out, NetworkOutcome{
			Congestion: cong,
			FixedAvgMS: fixedAvg,
			QCCAvgMS:   qccAvg,
			Gain:       gain(fixedAvg, qccAvg),
		})
	}
	return out, nil
}

func networkItems(opts Options) []workload.Item {
	return workload.UniformMix(opts.Instances)
}

func runNetworkFixed(opts Options, pinned string, congestion float64) (float64, error) {
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return 0, err
	}
	sc.Topo.Link(pinned).SetCongestion(congestion)
	total := 0.0
	items := networkItems(opts)
	for _, item := range items {
		for _, s := range Servers {
			sc.MW.Mask(s, s != pinned)
		}
		res, err := sc.II.Query(item.SQL)
		for _, s := range Servers {
			sc.MW.Mask(s, false)
		}
		if err != nil {
			return 0, err
		}
		total += float64(res.ResponseTime)
	}
	return total / float64(len(items)), nil
}

func runNetworkQCC(opts Options, pinned string, congestion float64) (float64, error) {
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return 0, err
	}
	q := qcc.Attach(qcc.Config{
		Clock:          sc.Clock,
		MW:             sc.MW,
		Calibration:    qcc.CalibrationConfig{MaxAge: 1e9},
		DisableDaemons: true,
	}, sc.II)
	sc.Topo.Link(pinned).SetCongestion(congestion)
	if err := CalibrationSweep(sc, 0); err != nil {
		return 0, err
	}
	q.ProbeNow()
	q.PublishNow()
	total := 0.0
	items := networkItems(opts)
	for _, item := range items {
		res, err := sc.II.Query(item.SQL)
		if err != nil {
			return 0, err
		}
		total += float64(res.ResponseTime)
	}
	return total / float64(len(items)), nil
}

// FormatNetworkStudy renders the congestion sweep.
func FormatNetworkStudy(outcomes []NetworkOutcome) string {
	out := "Network study — congestion on the preferred server's link\n"
	out += "  congestion   pinned(ms)     QCC(ms)    gain\n"
	for _, o := range outcomes {
		out += fmt.Sprintf("  %9.0fx %11.1f %11.1f  %5.1f%%\n",
			o.Congestion, o.FixedAvgMS, o.QCCAvgMS, o.Gain*100)
	}
	return out
}

package experiment

import (
	"strings"
	"testing"
)

// TestNetworkStudyQCCAbsorbsCongestion asserts the "network aware" claim:
// as the preferred server's link congests, pinned routing degrades steeply
// while QCC's calibrated routing shifts to other sources and stays flat.
func TestNetworkStudyQCCAbsorbsCongestion(t *testing.T) {
	out, err := NetworkStudy(Options{Scale: 50, Instances: 5}, []float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("outcomes: %d", len(out))
	}
	calm, heavy := out[0], out[2]
	// Pinned routing degrades with congestion.
	if heavy.FixedAvgMS <= calm.FixedAvgMS*1.5 {
		t.Fatalf("pinned routing must degrade: %.1f -> %.1f", calm.FixedAvgMS, heavy.FixedAvgMS)
	}
	// QCC stays much flatter: it reroutes around the congested link.
	qccBlowup := heavy.QCCAvgMS / calm.QCCAvgMS
	fixedBlowup := heavy.FixedAvgMS / calm.FixedAvgMS
	if qccBlowup >= fixedBlowup*0.7 {
		t.Fatalf("QCC must absorb congestion: qcc %.2fx vs pinned %.2fx", qccBlowup, fixedBlowup)
	}
	// Under heavy congestion QCC clearly wins.
	if heavy.Gain < 0.2 {
		t.Fatalf("gain under 16x congestion: %.1f%%", heavy.Gain*100)
	}
	report := FormatNetworkStudy(out)
	if !strings.Contains(report, "16x") {
		t.Fatalf("report: %s", report)
	}
	t.Logf("\n%s", report)
}

func TestNetworkStudyDefaultLevels(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	out, err := NetworkStudy(Options{Scale: 100, Instances: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("default sweep size: %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].FixedAvgMS < out[i-1].FixedAvgMS {
			t.Fatalf("pinned response must be monotone in congestion: %+v", out)
		}
	}
}

package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/scenario"
)

// wireQuery is the sharded ship-everything workload: with pushdown off,
// every shard ships its full slice of lineitem to the integrator, so the
// bytes on the wire are exactly what the columnar protocol compresses; with
// pushdown on, the shards ship partial-aggregate states instead.
const wireQuery = "SELECT l_tag, COUNT(*), SUM(l_qty), AVG(l_price) FROM lineitem GROUP BY l_tag"

// wireTrials is the wall-time trial count per configuration. Trials are
// interleaved round-robin across the four modes of one shard count so GC
// and scheduler drift hit every mode alike; each mode reports its minimum.
const wireTrials = 8

// WireOutcome is one (shard count, ship mode) measurement of the columnar
// wire study. JSON tags match the BENCH_wire.json schema.
type WireOutcome struct {
	// Shards is the shard (and server) count.
	Shards int `json:"shards"`
	// Mode is the data-shipping mode: row-ship | col-ship | pushdown |
	// pushdown-col — the same vocabulary the fragment spans and the routing
	// decision log use.
	Mode string `json:"mode"`
	// RespMS is the virtual end-user response time (deterministic).
	RespMS float64 `json:"response_virtual_ms"`
	// WireBytes is what all remote fragments shipped for one steady-state
	// execution, from the meta-wrapper run log (deterministic).
	WireBytes int `json:"wire_bytes"`
	// WallNS is the minimum real execution time over the interleaved trials.
	WallNS int64 `json:"wall_ns"`
	// Rows is the final result cardinality (must agree across modes).
	Rows int `json:"rows"`
}

// WireStudyResult is the full grid emitted to BENCH_wire.json.
type WireStudyResult struct {
	Query    string        `json:"query"`
	Scale    int           `json:"scale"`
	Trials   int           `json:"wall_trials"`
	Outcomes []WireOutcome `json:"configs"`
}

// wireModes orders the measured flag pairs (pushdown, columnar wire).
var wireModes = [][2]bool{{false, false}, {false, true}, {true, false}, {true, true}}

// WireModeName maps a (pushdown, columnar wire) flag pair to the ship-mode
// vocabulary shared with fragment spans and the routing decision log.
func WireModeName(pushdown, wire bool) string {
	switch {
	case pushdown && wire:
		return "pushdown-col"
	case pushdown:
		return "pushdown"
	case wire:
		return "col-ship"
	default:
		return "row-ship"
	}
}

// WireStudy measures the typed columnar wire protocol against row shipping:
// the sharded aggregate workload at 1/2/4/8 shards, in all four ship modes.
// Wire bytes and virtual response times are deterministic; wall time is the
// minimum over interleaved trials.
func WireStudy(opts Options) (WireStudyResult, error) {
	opts.fill()
	out := WireStudyResult{Query: wireQuery, Scale: opts.Scale, Trials: wireTrials}
	for _, shards := range []int{1, 2, 4, 8} {
		outcomes, err := wireStudyShards(opts, shards)
		if err != nil {
			return out, fmt.Errorf("wire study shards=%d: %w", shards, err)
		}
		out.Outcomes = append(out.Outcomes, outcomes...)
	}
	return out, nil
}

// wireStudyShards builds one vectorized sharded federation per ship mode at
// the given shard count, measures the deterministic quantities once each,
// then times wall clock with the trials interleaved across modes.
func wireStudyShards(opts Options, shards int) ([]WireOutcome, error) {
	scs := make([]*scenario.Scenario, len(wireModes))
	outcomes := make([]WireOutcome, len(wireModes))
	for i, flags := range wireModes {
		sc, err := scenario.BuildSharded(scenario.ShardedOptions{
			Shards: shards,
			Scale:  opts.Scale,
			Seed:   opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		for _, srv := range sc.Servers {
			srv.SetVectorized(true)
			srv.SetColumnarWire(flags[1])
		}
		sc.II.SetVectorized(true)
		sc.II.SetShardPushdown(flags[0])
		// Warm the compile caches, then measure the steady-state execution.
		if _, err := sc.II.Query(wireQuery); err != nil {
			return nil, err
		}
		before := len(sc.MW.RunLog())
		res, err := sc.II.Query(wireQuery)
		if err != nil {
			return nil, err
		}
		bytes := 0
		for _, e := range sc.MW.RunLog()[before:] {
			bytes += e.OutBytes
		}
		scs[i] = sc
		outcomes[i] = WireOutcome{
			Shards:    shards,
			Mode:      WireModeName(flags[0], flags[1]),
			RespMS:    float64(res.ResponseTime),
			WireBytes: bytes,
			Rows:      len(res.Rel.Rows),
		}
	}
	runtime.GC() // collect datagen litter once, not mid-trial
	walls := make([]time.Duration, len(scs))
	for trial := 0; trial < wireTrials; trial++ {
		for i, sc := range scs {
			start := time.Now()
			if _, err := sc.II.Query(wireQuery); err != nil {
				return nil, err
			}
			if d := time.Since(start); trial == 0 || d < walls[i] {
				walls[i] = d
			}
		}
	}
	for i := range outcomes {
		outcomes[i].WallNS = walls[i].Nanoseconds()
	}
	return outcomes, nil
}

// WriteWireStudy merges the study under the "wire" key of the given JSON
// file (other keys, if the file exists, are preserved).
func WriteWireStudy(result WireStudyResult, path string) error {
	doc := map[string]json.RawMessage{}
	if buf, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(buf, &doc)
	}
	enc, err := json.Marshal(result)
	if err != nil {
		return err
	}
	doc["wire"] = enc
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// FormatWireStudy renders the wire grid with the row-ship/col-ship byte
// reduction per sharded count.
func FormatWireStudy(result WireStudyResult) string {
	out := "Columnar wire study — typed column batches vs boxed rows on the wire\n"
	out += fmt.Sprintf("  %s (scale %d)\n", result.Query, result.Scale)
	out += "  shards  mode           wire(B)  resp(vms)  wall(ms)  vs row-ship\n"
	rowBytes := map[int]int{}
	for _, o := range result.Outcomes {
		if o.Mode == "row-ship" {
			rowBytes[o.Shards] = o.WireBytes
		}
	}
	for _, o := range result.Outcomes {
		note := ""
		if o.Mode == "col-ship" && o.WireBytes > 0 {
			note = fmt.Sprintf("%10.2fx", float64(rowBytes[o.Shards])/float64(o.WireBytes))
		}
		out += fmt.Sprintf("  %6d  %-12s %9d %10.1f %9.3f %s\n",
			o.Shards, o.Mode, o.WireBytes, o.RespMS, float64(o.WallNS)/1e6, note)
	}
	return out
}

package experiment

import (
	"math/rand"
	"testing"

	"repro/internal/qcc"
	"repro/internal/scenario"
	"repro/internal/sqltypes"
	"repro/internal/workload"
)

// TestDifferentialFederatedVsGroundTruth runs randomly-generated queries
// through the full federation (decomposition, remote planning, network,
// merge) and compares every result against a direct, unoptimized execution
// on a single server. Any divergence is a correctness bug in decomposition,
// plan enumeration, calibration plumbing or merging.
func TestDifferentialFederatedVsGroundTruth(t *testing.T) {
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2025))
	for i := 0; i < 120; i++ {
		sql := RandomQuery(r)
		res, err := sc.II.Query(sql)
		if err != nil {
			t.Fatalf("query %d failed: %v\n%s", i, err, sql)
		}
		want, err := GroundTruth(sc, "S1", sql)
		if err != nil {
			t.Fatalf("ground truth %d failed: %v\n%s", i, err, sql)
		}
		ordered := false // ORDER BY suffixes exist, but multiset compare suffices
		if diff := RelationsEquivalent(res.Rel, want, ordered); diff != "" {
			t.Fatalf("query %d diverged: %s\n%s", i, diff, sql)
		}
	}
}

// TestDifferentialWithQCCAndLoad repeats the differential run with QCC
// attached, servers under asymmetric load, and load balancing active:
// routing decisions must never change ANSWERS, only placement.
func TestDifferentialWithQCCAndLoad(t *testing.T) {
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	qcc.Attach(qcc.Config{
		Clock:          sc.Clock,
		MW:             sc.MW,
		LB:             qcc.LBConfig{Mode: qcc.LBGlobal, Closeness: 1.0},
		DisableDaemons: true,
	}, sc.II)
	sc.Servers["S3"].SetLoadLevel(1)
	sc.Servers["S2"].SetLoadLevel(0.4)
	if err := CalibrationSweep(sc, 0); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		sql := RandomQuery(r)
		res, err := sc.II.Query(sql)
		if err != nil {
			t.Fatalf("query %d failed: %v\n%s", i, err, sql)
		}
		want, err := GroundTruth(sc, "S1", sql)
		if err != nil {
			t.Fatal(err)
		}
		if diff := RelationsEquivalent(res.Rel, want, false); diff != "" {
			t.Fatalf("query %d diverged under QCC: %s\n%s", i, diff, sql)
		}
	}
}

// TestDifferentialCrossSource verifies the merge path: in the replica-pair
// scenario every join crosses sources, so decomposition and II-side merging
// carry the whole query.
func TestDifferentialCrossSource(t *testing.T) {
	sc, err := scenario.BuildReplicaPair(scenario.ReplicaOptions{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Build a co-located oracle: one table set union on a scratch scenario.
	oracle, err := scenario.BuildThreeServer(scenario.Options{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 40; i++ {
		sql := RandomQuery(r)
		res, err := sc.II.Query(sql)
		if err != nil {
			t.Fatalf("query %d failed: %v\n%s", i, err, sql)
		}
		want, err := GroundTruth(oracle, "S1", sql)
		if err != nil {
			t.Fatal(err)
		}
		if diff := RelationsEquivalent(res.Rel, want, false); diff != "" {
			t.Fatalf("cross-source query %d diverged: %s\n%s", i, diff, sql)
		}
	}
}

// TestWorkloadTypesMatchGroundTruth pins the four QT types themselves.
func TestWorkloadTypesMatchGroundTruth(t *testing.T) {
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, qt := range workload.Types() {
		for i := 0; i < 3; i++ {
			sql := qt.Make(i)
			res, err := sc.II.Query(sql)
			if err != nil {
				t.Fatalf("%s/%d: %v", qt.Name, i, err)
			}
			want, err := GroundTruth(sc, "S2", sql)
			if err != nil {
				t.Fatal(err)
			}
			if diff := RelationsEquivalent(res.Rel, want, false); diff != "" {
				t.Fatalf("%s/%d diverged: %s", qt.Name, i, diff)
			}
		}
	}
}

func TestRelationsEquivalentDiagnostics(t *testing.T) {
	schema := sqltypes.NewSchema(sqltypes.Column{Name: "x", Type: sqltypes.KindInt})
	a := sqltypes.NewRelation(schema)
	b := sqltypes.NewRelation(schema)
	a.Rows = []sqltypes.Row{{sqltypes.NewInt(1)}}
	if diff := RelationsEquivalent(a, b, false); diff == "" {
		t.Fatal("cardinality diff must register")
	}
	b.Rows = []sqltypes.Row{{sqltypes.NewInt(2)}}
	if diff := RelationsEquivalent(a, b, false); diff == "" {
		t.Fatal("value diff must register")
	}
	b.Rows = []sqltypes.Row{{sqltypes.NewInt(1)}}
	if diff := RelationsEquivalent(a, b, false); diff != "" {
		t.Fatalf("equal relations: %s", diff)
	}
	// Unordered compare ignores permutation.
	a.Rows = []sqltypes.Row{{sqltypes.NewInt(1)}, {sqltypes.NewInt(2)}}
	b.Rows = []sqltypes.Row{{sqltypes.NewInt(2)}, {sqltypes.NewInt(1)}}
	if diff := RelationsEquivalent(a, b, false); diff != "" {
		t.Fatalf("permutation should pass unordered: %s", diff)
	}
	if diff := RelationsEquivalent(a, b, true); diff == "" {
		t.Fatal("ordered compare must catch permutation")
	}
	// Float rounding tolerance.
	fs := sqltypes.NewSchema(sqltypes.Column{Name: "f", Type: sqltypes.KindFloat})
	fa, fb := sqltypes.NewRelation(fs), sqltypes.NewRelation(fs)
	fa.Rows = []sqltypes.Row{{sqltypes.NewFloat(1.00001)}}
	fb.Rows = []sqltypes.Row{{sqltypes.NewFloat(1.000011)}}
	if diff := RelationsEquivalent(fa, fb, false); diff != "" {
		t.Fatalf("float tolerance: %s", diff)
	}
}

// TestSchemaArityInvariant: for random queries, the compiled plan's declared
// schema arity always matches the executed result's row arity.
func TestSchemaArityInvariant(t *testing.T) {
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: 200})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		sql := RandomQuery(r)
		res, err := sc.II.Query(sql)
		if err != nil {
			t.Fatalf("query: %v\n%s", err, sql)
		}
		arity := res.Rel.Schema.Len()
		for _, row := range res.Rel.Rows {
			if len(row) != arity {
				t.Fatalf("row arity %d != schema arity %d\n%s", len(row), arity, sql)
			}
		}
	}
}

package experiment

import (
	"fmt"
	"strings"

	"repro/internal/workload"
)

// FormatFigure9 renders the sensitivity study as per-query-type blocks with
// one row per server×load series and one column per instance — the series
// plotted in Figure 9(a)–(d).
func FormatFigure9(results []SensitivityResult) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "Figure 9 — %s: response time (ms) per instance\n", r.QT)
		header := "  series  "
		n := 0
		for _, ts := range r.Low {
			if len(ts) > n {
				n = len(ts)
			}
		}
		for i := 0; i < n; i++ {
			header += fmt.Sprintf("%9s", fmt.Sprintf("q%d", i+1))
		}
		b.WriteString(header + "\n")
		for _, server := range Servers {
			writeSeries(&b, server+"-low ", r.Low[server])
			writeSeries(&b, server+"-high", r.High[server])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func writeSeries(b *strings.Builder, label string, ts []float64) {
	fmt.Fprintf(b, "  %-8s", label)
	for _, t := range ts {
		fmt.Fprintf(b, "%9.1f", t)
	}
	b.WriteString("\n")
}

// FormatTable1 renders the phase/load matrix of Table 1.
func FormatTable1() string {
	phases := workload.Phases()
	var b strings.Builder
	b.WriteString("Table 1 — Combinations of Server Load Conditions\n")
	b.WriteString("  Server")
	for _, p := range phases {
		fmt.Fprintf(&b, "%8s", strings.TrimPrefix(p.Name, "Phase"))
	}
	b.WriteString("\n")
	for _, s := range Servers {
		fmt.Fprintf(&b, "  %-6s", s)
		for _, p := range phases {
			if p.Loaded[s] {
				b.WriteString("    Load")
			} else {
				b.WriteString("    Base")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatTable2 renders the fixed vs dynamic assignment comparison of
// Table 2: the static registration next to QCC's per-phase modal routing.
func FormatTable2(outcomes []PhaseOutcome) string {
	fixed := workload.FixedAssignment1()
	var b strings.Builder
	b.WriteString("Table 2 — Fixed Server Assignment vs Dynamic Assignment (per phase)\n")
	b.WriteString("  QType  Fixed")
	for _, o := range outcomes {
		fmt.Fprintf(&b, "%8s", strings.TrimPrefix(o.Phase.Name, "Phase"))
	}
	b.WriteString("\n")
	for _, qt := range []string{"QT1", "QT2", "QT3", "QT4"} {
		fmt.Fprintf(&b, "  %-6s %-5s", qt, fixed[qt])
		for _, o := range outcomes {
			fmt.Fprintf(&b, "%8s", o.Assignments[qt])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFigure10 renders the per-phase response times and gain of QCC vs
// fixed assignment 1.
func FormatFigure10(outcomes []PhaseOutcome) string {
	var b strings.Builder
	b.WriteString("Figure 10 — Benefits of QCC vs Fixed Assignment 1 (typical registration)\n")
	b.WriteString("  Phase     Fixed1(ms)     QCC(ms)    Gain\n")
	for _, o := range outcomes {
		fmt.Fprintf(&b, "  %-8s %11.1f %11.1f  %5.1f%%\n",
			o.Phase.Name, o.Fixed1AvgMS, o.QCCAvgMS, o.Gain1*100)
	}
	g1, _ := AverageGains(outcomes)
	fmt.Fprintf(&b, "  average gain: %.1f%%\n", g1*100)
	return b.String()
}

// FormatFigure11 renders the per-phase response times and gain of QCC vs
// fixed assignment 2 (everything on the most powerful server, S3).
func FormatFigure11(outcomes []PhaseOutcome) string {
	var b strings.Builder
	b.WriteString("Figure 11 — Benefits of QCC vs Fixed Assignment 2 (always S3)\n")
	b.WriteString("  Phase     Fixed2(ms)     QCC(ms)    Gain\n")
	for _, o := range outcomes {
		fmt.Fprintf(&b, "  %-8s %11.1f %11.1f  %5.1f%%\n",
			o.Phase.Name, o.Fixed2AvgMS, o.QCCAvgMS, o.Gain2*100)
	}
	_, g2 := AverageGains(outcomes)
	fmt.Fprintf(&b, "  average gain: %.1f%%\n", g2*100)
	return b.String()
}

package experiment

import (
	"strings"
	"testing"
)

// TestLoadBalanceStudyRotationBeatsPinning asserts §4's claim end to end:
// when servers heat up under their own traffic, round-robin rotation over
// close-cost plans beats pinning the single cheapest plan.
func TestLoadBalanceStudyRotationBeatsPinning(t *testing.T) {
	out, err := LoadBalanceStudy(Options{Scale: 50, Instances: 10}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("outcomes: %d", len(out))
	}
	byMode := map[string]LBOutcome{}
	for _, o := range out {
		byMode[o.Mode] = o
	}
	off, frag, glob := byMode["off"], byMode["fragment"], byMode["global"]
	// Pinning hammers one server.
	if off.ServersUsed != 1 || off.MaxShare < 0.99 {
		t.Fatalf("off policy should pin one server: %+v", off)
	}
	// Rotation spreads.
	if frag.ServersUsed < 2 || glob.ServersUsed < 2 {
		t.Fatalf("rotation should spread: frag=%+v glob=%+v", frag, glob)
	}
	// And with induced load, spreading is faster on average.
	if frag.AvgMS >= off.AvgMS {
		t.Fatalf("fragment rotation should beat pinning: %.1f vs %.1f", frag.AvgMS, off.AvgMS)
	}
	if glob.AvgMS >= off.AvgMS {
		t.Fatalf("global rotation should beat pinning: %.1f vs %.1f", glob.AvgMS, off.AvgMS)
	}
	report := FormatLoadBalanceStudy(out)
	if !strings.Contains(report, "fragment") {
		t.Fatalf("report: %s", report)
	}
	t.Logf("\n%s", report)
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if percentile(xs, 0) != 1 || percentile(xs, 1) != 5 {
		t.Fatal("extremes")
	}
	if got := percentile(xs, 0.5); got != 3 {
		t.Fatalf("median: %g", got)
	}
	if percentile(nil, 0.5) != 0 {
		t.Fatal("empty")
	}
}

package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/exec"
	"repro/internal/scenario"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// RandomQuery generates a random but always-valid federated SELECT over the
// sample schema. The generator covers single-table scans, two- and
// three-way joins, range/equality/IN/BETWEEN predicates, grouped and scalar
// aggregation, HAVING, ORDER BY and LIMIT — the full surface the engine
// supports. It is used by differential tests that compare federated
// execution against direct single-server execution.
func RandomQuery(r *rand.Rand) string {
	switch r.Intn(6) {
	case 0:
		return randomSingleTable(r)
	case 1:
		return randomTwoWayJoin(r)
	case 2:
		return randomGroupBy(r)
	case 3:
		return randomThreeWay(r)
	case 4:
		return randomScalarFuncs(r)
	default:
		return randomScalarAgg(r)
	}
}

func randomScalarFuncs(r *rand.Rand) string {
	return fmt.Sprintf(
		"SELECT o.o_id, ABS(o.o_amount - 5000) AS dist, MOD(o.o_id, %d) AS bucket FROM orders AS o WHERE ROUND(o.o_amount, -3) = %d000 ORDER BY o.o_id LIMIT 25",
		2+r.Intn(5), 1+r.Intn(9))
}

func randomSingleTable(r *rand.Rand) string {
	pred := randomOrdersPred(r)
	cols := []string{"o.o_id", "o.o_custkey", "o.o_amount"}
	n := 1 + r.Intn(len(cols))
	sel := strings.Join(cols[:n], ", ")
	q := fmt.Sprintf("SELECT %s FROM orders AS o WHERE %s ORDER BY o.o_id", sel, pred)
	if r.Intn(2) == 0 {
		q += fmt.Sprintf(" LIMIT %d", 1+r.Intn(50))
	}
	return q
}

func randomTwoWayJoin(r *rand.Rand) string {
	return fmt.Sprintf(
		"SELECT COUNT(*), SUM(l.l_price) FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE %s",
		randomOrdersPred(r))
}

func randomGroupBy(r *rand.Rand) string {
	q := fmt.Sprintf(
		"SELECT o.o_priority, COUNT(*) AS n, SUM(o.o_amount) AS total FROM orders AS o WHERE %s GROUP BY o.o_priority",
		randomOrdersPred(r))
	if r.Intn(2) == 0 {
		q += " HAVING COUNT(*) > " + fmt.Sprint(r.Intn(3))
	}
	return q + " ORDER BY o.o_priority"
}

func randomThreeWay(r *rand.Rand) string {
	return fmt.Sprintf(
		`SELECT COUNT(*), MIN(l.l_price), MAX(l.l_price) FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id JOIN lineitem AS l ON l.l_orderkey = o.o_id WHERE c.c_id < %d`,
		1+r.Intn(8))
}

func randomScalarAgg(r *rand.Rand) string {
	return fmt.Sprintf(
		"SELECT COUNT(*), AVG(o.o_amount), MIN(o.o_qty), MAX(o.o_qty) FROM orders AS o WHERE %s",
		randomOrdersPred(r))
}

func randomOrdersPred(r *rand.Rand) string {
	switch r.Intn(5) {
	case 0:
		return fmt.Sprintf("o.o_amount > %d", r.Intn(10000))
	case 1:
		return fmt.Sprintf("o.o_amount BETWEEN %d AND %d", r.Intn(5000), 5000+r.Intn(5000))
	case 2:
		return fmt.Sprintf("o.o_priority IN (%d, %d)", r.Intn(5), r.Intn(5))
	case 3:
		return fmt.Sprintf("o.o_custkey = %d", r.Intn(10))
	default:
		return fmt.Sprintf("o.o_amount > %d AND o.o_qty < %d", r.Intn(8000), 20+r.Intn(80))
	}
}

// GroundTruth executes the statement directly against one server's tables
// with the reference (unoptimized) plan builder — no federation, no network,
// no planner choices. It is the oracle for differential tests.
func GroundTruth(sc *scenario.Scenario, serverID, sql string) (*sqltypes.Relation, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	srv := sc.Servers[serverID]
	leaves := map[string]exec.Operator{}
	for _, tr := range stmt.Tables() {
		tab := srv.Table(tr.Name)
		if tab == nil {
			return nil, fmt.Errorf("difftest: %s lacks %s", serverID, tr.Name)
		}
		leaves[tr.EffectiveName()] = &exec.SeqScan{Table: tab, As: tr.EffectiveName()}
	}
	op, err := exec.BuildPlan(stmt, leaves)
	if err != nil {
		return nil, err
	}
	return op.Execute(&exec.Context{})
}

// RelationsEquivalent compares two relations as multisets of rows (order
// matters only when ordered is true), with float tolerance. It returns a
// description of the first difference, or "" when equivalent.
func RelationsEquivalent(a, b *sqltypes.Relation, ordered bool) string {
	if a.Cardinality() != b.Cardinality() {
		return fmt.Sprintf("cardinality %d vs %d", a.Cardinality(), b.Cardinality())
	}
	if a.Schema.Len() != b.Schema.Len() {
		return fmt.Sprintf("arity %d vs %d", a.Schema.Len(), b.Schema.Len())
	}
	ra := renderRows(a)
	rb := renderRows(b)
	if !ordered {
		sort.Strings(ra)
		sort.Strings(rb)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			return fmt.Sprintf("row %d: %s vs %s", i, ra[i], rb[i])
		}
	}
	return ""
}

// renderRows canonicalizes rows for comparison, rounding floats so that
// summation-order differences do not register.
func renderRows(rel *sqltypes.Relation) []string {
	out := make([]string, len(rel.Rows))
	for i, row := range rel.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			if v.Kind() == sqltypes.KindFloat {
				parts[j] = fmt.Sprintf("%.4f", v.Float())
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

package experiment

import "testing"

// TestMultitenantStudy runs the full study once and checks its structural
// invariants: every scenario accounted for all arrivals (none lost), the
// contended fairness metrics are populated, and sheds appear only where a
// quota exists.
func TestMultitenantStudy(t *testing.T) {
	res, err := MultitenantStudy(Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 3 {
		t.Fatalf("want 3 scenarios, got %d", len(res.Scenarios))
	}
	for _, sc := range res.Scenarios {
		if sc.Arrivals == 0 {
			t.Fatalf("%s: no arrivals", sc.Scenario)
		}
		if sc.Lost != 0 {
			t.Fatalf("%s: %d queries lost", sc.Scenario, sc.Lost)
		}
		if sc.Completed+sc.Shed != sc.Arrivals {
			t.Fatalf("%s: completed %d + shed %d != arrivals %d",
				sc.Scenario, sc.Completed, sc.Shed, sc.Arrivals)
		}
	}
	equal, weighted, iso := res.Scenarios[0], res.Scenarios[1], res.Scenarios[2]
	if equal.JainIndex < 0.9 {
		t.Fatalf("equal-weights Jain %.3f < 0.9", equal.JainIndex)
	}
	if weighted.ServedRatio < 2.3 || weighted.ServedRatio > 3.7 {
		t.Fatalf("weighted served ratio %.2f outside [2.3,3.7]", weighted.ServedRatio)
	}
	if weighted.Shed != 0 {
		t.Fatalf("weighted scenario shed %d queries with no quota", weighted.Shed)
	}
	if iso.IsolationP95Ratio <= 0 || iso.IsolationP95Ratio > 1.5 {
		t.Fatalf("isolation p95 ratio %.2f outside (0,1.5]", iso.IsolationP95Ratio)
	}
	if iso.Shed == 0 {
		t.Fatalf("isolation heavy tenant shed nothing despite its queue quota")
	}
}

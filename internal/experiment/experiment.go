// Package experiment implements the paper's §5 evaluation procedure
// (Steps 1–7) over the simulated federation: the query-type load-sensitivity
// study behind Figure 9, the phase-by-phase comparison of QCC-driven dynamic
// routing against the two fixed-assignment baselines behind Table 2 and
// Figures 10 and 11, and the report formatters that print the same rows and
// series the paper shows.
package experiment

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/qcc"
	"repro/internal/scenario"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

// Options configures the studies.
type Options struct {
	// Scale divides the paper's table sizes (default 20 → 5000-row large
	// tables); shapes are scale-free, runtime is not.
	Scale int
	// Seed drives data generation.
	Seed int64
	// Instances is the number of instances per query type (default 10).
	Instances int
	// BurstRows is the update-burst size applied to loaded servers.
	BurstRows int
	// LB selects QCC's load-distribution mode for the gain study.
	LB qcc.LBConfig
	// CalibrationPerFragment toggles per-(server,fragment) factors
	// (default true; the granularity ablation turns it off).
	CalibrationPerFragment *bool
}

func (o *Options) fill() {
	if o.Scale < 1 {
		o.Scale = 20
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Instances <= 0 {
		o.Instances = 10
	}
	if o.BurstRows == 0 {
		o.BurstRows = 25
	}
}

func (o *Options) perFragment() bool {
	if o.CalibrationPerFragment == nil {
		return true
	}
	return *o.CalibrationPerFragment
}

// Servers lists the evaluation servers in display order.
var Servers = []string{"S1", "S2", "S3"}

// SensitivityResult is the Figure 9 data for one query type: per-server
// response times for each instance, under low and high load.
type SensitivityResult struct {
	QT string
	// Low and High map server ID to per-instance response times (ms).
	Low, High map[string][]float64
}

// SensitivityStudy reproduces Figure 9 (§5.2): each query fragment type is
// executed on every server under low load and under heavy load at that
// server, instance by instance.
func SensitivityStudy(opts Options) ([]SensitivityResult, error) {
	opts.fill()
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	var out []SensitivityResult
	for _, qt := range workload.Types() {
		res := SensitivityResult{
			QT:   qt.Name,
			Low:  map[string][]float64{},
			High: map[string][]float64{},
		}
		for _, server := range Servers {
			for _, loaded := range []bool{false, true} {
				for _, srv := range sc.Servers {
					srv.SetLoadLevel(0)
				}
				if loaded {
					sc.Servers[server].SetLoadLevel(workload.HeavyLoad)
					if err := sc.Servers[server].ApplyUpdateBurst("orders", opts.BurstRows, opts.Seed); err != nil {
						return nil, err
					}
				}
				times := make([]float64, opts.Instances)
				for i := 0; i < opts.Instances; i++ {
					stmt, err := sqlparser.Parse(qt.Make(i))
					if err != nil {
						return nil, err
					}
					cands, err := sc.MW.ExplainFragment(server, stmt)
					if err != nil {
						return nil, fmt.Errorf("experiment: explain %s on %s: %w", qt.Name, server, err)
					}
					outc, err := sc.MW.ExecuteFragment(context.Background(), server, stmt.String(), cands[0].Plan, cands[0].RawEst)
					if err != nil {
						return nil, fmt.Errorf("experiment: execute %s on %s: %w", qt.Name, server, err)
					}
					times[i] = float64(outc.ResponseTime)
				}
				if loaded {
					res.High[server] = times
				} else {
					res.Low[server] = times
				}
			}
		}
		for _, srv := range sc.Servers {
			srv.SetLoadLevel(0)
		}
		out = append(out, res)
	}
	return out, nil
}

// PhaseOutcome is one phase's comparison (Table 2 + Figures 10/11).
type PhaseOutcome struct {
	Phase workload.Phase
	// Average end-user response times over the mixed workload (ms).
	QCCAvgMS, Fixed1AvgMS, Fixed2AvgMS float64
	// Gain1/Gain2 are QCC's fractional improvements over the baselines:
	// (fixed − qcc) / fixed.
	Gain1, Gain2 float64
	// Assignments maps each query type to the server QCC routed it to most
	// often during the phase — the dynamic column of Table 2.
	Assignments map[string]string
	// PerType average response times per query type under each policy.
	PerTypeQCC, PerTypeFixed1, PerTypeFixed2 map[string]float64
}

// GainStudy reproduces Table 2 and Figures 10–11: for each Table 1 phase it
// measures the mixed workload under (a) QCC dynamic routing, (b) fixed
// assignment 1 (the "typical federated system" registration), and (c) fixed
// assignment 2 (always the most powerful server, S3).
func GainStudy(opts Options) ([]PhaseOutcome, error) {
	opts.fill()
	var out []PhaseOutcome
	for _, phase := range workload.Phases() {
		qccAvg, perTypeQCC, assign, err := runQCCPhase(opts, phase)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s qcc: %w", phase.Name, err)
		}
		f1Avg, perTypeF1, err := runFixedPhase(opts, phase, workload.FixedAssignment1())
		if err != nil {
			return nil, fmt.Errorf("experiment: %s fixed1: %w", phase.Name, err)
		}
		f2Avg, perTypeF2, err := runFixedPhase(opts, phase, workload.FixedAssignment2())
		if err != nil {
			return nil, fmt.Errorf("experiment: %s fixed2: %w", phase.Name, err)
		}
		out = append(out, PhaseOutcome{
			Phase:         phase,
			QCCAvgMS:      qccAvg,
			Fixed1AvgMS:   f1Avg,
			Fixed2AvgMS:   f2Avg,
			Gain1:         gain(f1Avg, qccAvg),
			Gain2:         gain(f2Avg, qccAvg),
			Assignments:   assign,
			PerTypeQCC:    perTypeQCC,
			PerTypeFixed1: perTypeF1,
			PerTypeFixed2: perTypeF2,
		})
	}
	return out, nil
}

func gain(fixed, qccAvg float64) float64 {
	if fixed <= 0 {
		return 0
	}
	return (fixed - qccAvg) / fixed
}

// runQCCPhase builds a fresh federation with QCC attached, applies the
// phase, runs the calibration sweep (§5.1 Steps 2–4: forward each fragment
// type to every server and observe), then measures the mixed workload.
func runQCCPhase(opts Options, phase workload.Phase) (avgMS float64, perType map[string]float64, assignments map[string]string, err error) {
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return 0, nil, nil, err
	}
	pf := opts.perFragment()
	q := qcc.Attach(qcc.Config{
		Clock:          sc.Clock,
		MW:             sc.MW,
		Calibration:    qcc.CalibrationConfig{PerFragment: pf, MaxAge: 1e9},
		LB:             opts.LB,
		DisableDaemons: true,
	}, sc.II)

	if err := workload.ApplyPhase(sc, phase, opts.BurstRows, opts.Seed); err != nil {
		return 0, nil, nil, err
	}

	// Calibration sweep: one representative instance of each type on each
	// server, observed through MW so QCC learns the phase's factors.
	if err := CalibrationSweep(sc, 0); err != nil {
		return 0, nil, nil, err
	}
	q.ProbeNow()
	q.PublishNow()

	items := workload.UniformMix(opts.Instances)
	perTypeSum := map[string]float64{}
	perTypeN := map[string]int{}
	routed := map[string]map[string]int{}
	total := 0.0
	for _, item := range items {
		res, err := sc.II.Query(item.SQL)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("query %s: %w", item.Type, err)
		}
		rt := float64(res.ResponseTime)
		total += rt
		perTypeSum[item.Type] += rt
		perTypeN[item.Type]++
		for _, f := range res.Plan.Fragments {
			if routed[item.Type] == nil {
				routed[item.Type] = map[string]int{}
			}
			routed[item.Type][f.ServerID]++
		}
	}
	perType = map[string]float64{}
	for qt, sum := range perTypeSum {
		perType[qt] = sum / float64(perTypeN[qt])
	}
	assignments = map[string]string{}
	for qt, counts := range routed {
		assignments[qt] = modalServer(counts)
	}
	return total / float64(len(items)), perType, assignments, nil
}

// CalibrationSweep forwards one instance of each query type to every server
// and executes it, so MW observes (estimated, observed) pairs under the
// current load — §5.1's Steps 2–4.
func CalibrationSweep(sc *scenario.Scenario, instance int) error {
	for _, qt := range workload.Types() {
		stmt, err := sqlparser.Parse(qt.Make(instance))
		if err != nil {
			return err
		}
		for _, server := range Servers {
			cands, err := sc.MW.ExplainFragment(server, stmt)
			if err != nil {
				return fmt.Errorf("sweep explain %s@%s: %w", qt.Name, server, err)
			}
			if _, err := sc.MW.ExecuteFragment(context.Background(), server, stmt.String(), cands[0].Plan, cands[0].RawEst); err != nil {
				return fmt.Errorf("sweep execute %s@%s: %w", qt.Name, server, err)
			}
			sc.Clock.Advance(1)
		}
	}
	return nil
}

// runFixedPhase measures the workload with the pre-registered fixed routing:
// every query of a type is forced to its assigned server by masking the
// alternatives during compilation (nickname-registration-time routing).
func runFixedPhase(opts Options, phase workload.Phase, assignment map[string]string) (float64, map[string]float64, error) {
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return 0, nil, err
	}
	if err := workload.ApplyPhase(sc, phase, opts.BurstRows, opts.Seed); err != nil {
		return 0, nil, err
	}
	items := workload.UniformMix(opts.Instances)
	perTypeSum := map[string]float64{}
	perTypeN := map[string]int{}
	total := 0.0
	for _, item := range items {
		target := assignment[item.Type]
		for _, s := range Servers {
			sc.MW.Mask(s, s != target)
		}
		res, err := sc.II.Query(item.SQL)
		for _, s := range Servers {
			sc.MW.Mask(s, false)
		}
		if err != nil {
			return 0, nil, fmt.Errorf("fixed query %s@%s: %w", item.Type, target, err)
		}
		rt := float64(res.ResponseTime)
		total += rt
		perTypeSum[item.Type] += rt
		perTypeN[item.Type]++
	}
	perType := map[string]float64{}
	for qt, sum := range perTypeSum {
		perType[qt] = sum / float64(perTypeN[qt])
	}
	return total / float64(len(items)), perType, nil
}

func modalServer(counts map[string]int) string {
	best, bestN := "", -1
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	return best
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// AverageGains summarizes a gain study: mean Gain1 and Gain2 across phases.
func AverageGains(outcomes []PhaseOutcome) (g1, g2 float64) {
	if len(outcomes) == 0 {
		return 0, 0
	}
	for _, o := range outcomes {
		g1 += o.Gain1
		g2 += o.Gain2
	}
	return g1 / float64(len(outcomes)), g2 / float64(len(outcomes))
}

package experiment

import (
	"fmt"
	"math"

	"repro/internal/optimizer"
	"repro/internal/qcc"
	"repro/internal/remote"
	"repro/internal/router"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// LBOutcome is one load-distribution policy's measurement.
type LBOutcome struct {
	// Mode names the policy.
	Mode string
	// AvgMS is the mean response time over the query burst.
	AvgMS float64
	// P95MS approximates the 95th-percentile response time.
	P95MS float64
	// ServersUsed counts servers that executed at least one fragment.
	ServersUsed int
	// MaxShare is the largest per-server share of executions (1.0 = all on
	// one server; 1/n = perfectly even).
	MaxShare float64
}

// LoadBalanceStudy quantifies §4's claim: with servers that heat up under
// their own query traffic (induced load), pinning a hot query's "cheapest"
// plan overloads one server, while QCC's round-robin rotation over
// close-cost plans spreads the burst and lowers response times. The study
// fires a burst of identical QT2-shaped queries under three policies:
// no load distribution, fragment-level rotation (§4.1) and global-level
// rotation (§4.2).
func LoadBalanceStudy(opts Options, burst int) ([]LBOutcome, error) {
	opts.fill()
	if burst <= 0 {
		burst = 30
	}
	modes := []struct {
		name string
		mode qcc.LBMode
	}{
		{"off", qcc.LBOff},
		{"fragment", qcc.LBFragment},
		{"global", qcc.LBGlobal},
	}
	var out []LBOutcome
	for _, m := range modes {
		o, err := runLBBurst(opts, m.mode, m.name, burst)
		if err != nil {
			return nil, fmt.Errorf("lb study %s: %w", m.name, err)
		}
		out = append(out, o)
	}
	return out, nil
}

func runLBBurst(opts Options, mode qcc.LBMode, name string, burst int) (LBOutcome, error) {
	sc, err := scenario.BuildThreeServer(scenario.Options{
		Scale: opts.Scale,
		Seed:  opts.Seed,
		// §4's setting: true equivalent data sources (uniform replicas)
		// that heat up under their own query traffic.
		Uniform:     true,
		InducedLoad: remote.InducedLoadProfile{WindowMS: 1000, Gain: 12},
	})
	if err != nil {
		return LBOutcome{}, err
	}
	qcc.Attach(qcc.Config{
		Clock: sc.Clock,
		MW:    sc.MW,
		LB: qcc.LBConfig{
			Mode:      mode,
			Closeness: 0.2, // the paper's "within 20%" band
		},
		DisableDaemons: true,
	}, sc.II)

	// A moderately expensive query so the burst actually heats servers.
	qt, err := workload.TypeByName("QT2")
	if err != nil {
		return LBOutcome{}, err
	}
	var times []float64
	for i := 0; i < burst; i++ {
		res, err := sc.II.Query(qt.Make(i % 10))
		if err != nil {
			return LBOutcome{}, err
		}
		times = append(times, float64(res.ResponseTime))
	}
	used := 0
	var maxExec, totalExec int64
	for _, srv := range sc.Servers {
		n := srv.Executed()
		totalExec += n
		if n > 0 {
			used++
		}
		if n > maxExec {
			maxExec = n
		}
	}
	maxShare := 0.0
	if totalExec > 0 {
		maxShare = float64(maxExec) / float64(totalExec)
	}
	return LBOutcome{
		Mode:        name,
		AvgMS:       Mean(times),
		P95MS:       percentile(times, 0.95),
		ServersUsed: used,
		MaxShare:    maxShare,
	}, nil
}

// WeightedOutcome is one replica-routing policy's hotspot measurement.
type WeightedOutcome struct {
	// Policy names the routing policy ("round-robin" or "weighted").
	Policy string
	// AvgMS is the mean response time over the burst.
	AvgMS float64
	// P50MS, P95MS and P99MS approximate the tail of the response-time
	// distribution.
	P50MS float64
	P95MS float64
	P99MS float64
	// ServersUsed counts servers that executed at least one fragment.
	ServersUsed int
	// MaxShare is the largest per-server share of executions.
	MaxShare float64
	// UtilRatio is max/min per-server executions (+Inf when a server idles;
	// 1.0 = perfectly even).
	UtilRatio float64
	// Switched counts dispatch-time replica switches (weighted policy only).
	Switched int64
}

// weightedBurstQueries is the hotspot mix: four recurring scan-heavy shapes,
// one per hot table — more hot tables than one buffer pool holds. A
// cache-aware router can pin each shape to a replica whose pool already
// holds its table; blind round-robin sprays the shapes and keeps every pool
// lukewarm. The four-shape period is deliberately coprime with the
// three-server rotation, so round-robin cannot accidentally pin shapes to
// replicas.
var weightedBurstQueries = []string{
	"SELECT SUM(h.h_val) FROM hot1 AS h WHERE h.h_val > 1000",
	"SELECT SUM(h.h_val) FROM hot2 AS h WHERE h.h_val > 1000",
	"SELECT SUM(h.h_val) FROM hot3 AS h WHERE h.h_val > 1000",
	"SELECT SUM(h.h_val) FROM hot4 AS h WHERE h.h_val > 1000",
}

// WeightedRoutingStudy compares the paper's round-robin load distribution
// against the score-based weighted replica router on the replicated hotspot
// scenario: every table fully replicated, servers that heat up under their
// own traffic, and a buffer-pool residency model that rewards routing the
// same shape back to the same replica. Both arms run the identical burst
// under identical calibration cadence.
func WeightedRoutingStudy(opts Options, burst int) ([]WeightedOutcome, error) {
	opts.fill()
	if burst <= 0 {
		burst = 60
	}
	rr, err := runWeightedBurst(opts, false, burst)
	if err != nil {
		return nil, fmt.Errorf("weighted study round-robin: %w", err)
	}
	wt, err := runWeightedBurst(opts, true, burst)
	if err != nil {
		return nil, fmt.Errorf("weighted study weighted: %w", err)
	}
	return []WeightedOutcome{rr, wt}, nil
}

func runWeightedBurst(opts Options, weighted bool, burst int) (WeightedOutcome, error) {
	sc, err := scenario.BuildReplicated(scenario.ReplicatedOptions{
		Scale: opts.Scale,
		Seed:  opts.Seed,
	})
	if err != nil {
		return WeightedOutcome{}, err
	}
	q := qcc.Attach(qcc.Config{
		Clock: sc.Clock,
		MW:    sc.MW,
		LB: qcc.LBConfig{
			Mode:      qcc.LBGlobal,
			Closeness: 0.2,
		},
		DisableDaemons: true,
	}, sc.II)

	policy := "round-robin"
	var wr *router.WeightedRouter
	if weighted {
		policy = "weighted"
		opt := sc.II.Optimizer()
		wr = router.New(router.Config{
			Signals: q.RouterSignals(),
			MW:      sc.MW,
			Assemble: func(winner *optimizer.GlobalPlan, chosen []optimizer.FragmentChoice) *optimizer.GlobalPlan {
				return opt.AssembleGlobal(winner.Stmt, winner.Decomp, chosen)
			},
			Clock: sc.Clock,
		})
		sc.II.SetRoute(wr)
		sc.II.SetRerouter(wr)
	}

	var times []float64
	for i := 0; i < burst; i++ {
		res, err := sc.II.Query(weightedBurstQueries[i%len(weightedBurstQueries)])
		if err != nil {
			return WeightedOutcome{}, err
		}
		times = append(times, float64(res.ResponseTime))
		// Both arms publish every query: calibration freshness is identical,
		// only the routing policy differs.
		q.PublishNow()
	}

	used := 0
	maxExec, minExec := int64(0), int64(math.MaxInt64)
	var totalExec int64
	for _, srv := range sc.Servers {
		n := srv.Executed()
		totalExec += n
		if n > 0 {
			used++
		}
		if n > maxExec {
			maxExec = n
		}
		if n < minExec {
			minExec = n
		}
	}
	maxShare := 0.0
	if totalExec > 0 {
		maxShare = float64(maxExec) / float64(totalExec)
	}
	ratio := math.Inf(1)
	if minExec > 0 {
		ratio = float64(maxExec) / float64(minExec)
	}
	var switched int64
	if wr != nil {
		switched, _ = wr.Rerouted()
	}
	return WeightedOutcome{
		Policy:      policy,
		AvgMS:       Mean(times),
		P50MS:       percentile(times, 0.50),
		P95MS:       percentile(times, 0.95),
		P99MS:       percentile(times, 0.99),
		ServersUsed: used,
		MaxShare:    maxShare,
		UtilRatio:   ratio,
		Switched:    switched,
	}, nil
}

// FormatWeightedRoutingStudy renders the replica-routing comparison.
func FormatWeightedRoutingStudy(outcomes []WeightedOutcome) string {
	out := "Weighted replica routing — hotspot burst over fully replicated tables\n"
	out += "  policy        avg(ms)   p50(ms)   p95(ms)   p99(ms)  servers  max share  util ratio  switched\n"
	for _, o := range outcomes {
		ratio := fmt.Sprintf("%.2f", o.UtilRatio)
		if math.IsInf(o.UtilRatio, 1) {
			ratio = "inf"
		}
		out += fmt.Sprintf("  %-11s %9.1f %9.1f %9.1f %9.1f  %7d  %8.0f%%  %10s  %8d\n",
			o.Policy, o.AvgMS, o.P50MS, o.P95MS, o.P99MS, o.ServersUsed, o.MaxShare*100, ratio, o.Switched)
	}
	return out
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// FormatLoadBalanceStudy renders the §4 study.
func FormatLoadBalanceStudy(outcomes []LBOutcome) string {
	out := "Load distribution study — burst of identical queries, servers heat up under traffic\n"
	out += "  policy      avg(ms)    p95(ms)  servers  max share\n"
	for _, o := range outcomes {
		out += fmt.Sprintf("  %-9s %9.1f %10.1f  %7d  %8.0f%%\n",
			o.Mode, o.AvgMS, o.P95MS, o.ServersUsed, o.MaxShare*100)
	}
	return out
}

package experiment

import (
	"fmt"

	"repro/internal/qcc"
	"repro/internal/remote"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// LBOutcome is one load-distribution policy's measurement.
type LBOutcome struct {
	// Mode names the policy.
	Mode string
	// AvgMS is the mean response time over the query burst.
	AvgMS float64
	// P95MS approximates the 95th-percentile response time.
	P95MS float64
	// ServersUsed counts servers that executed at least one fragment.
	ServersUsed int
	// MaxShare is the largest per-server share of executions (1.0 = all on
	// one server; 1/n = perfectly even).
	MaxShare float64
}

// LoadBalanceStudy quantifies §4's claim: with servers that heat up under
// their own query traffic (induced load), pinning a hot query's "cheapest"
// plan overloads one server, while QCC's round-robin rotation over
// close-cost plans spreads the burst and lowers response times. The study
// fires a burst of identical QT2-shaped queries under three policies:
// no load distribution, fragment-level rotation (§4.1) and global-level
// rotation (§4.2).
func LoadBalanceStudy(opts Options, burst int) ([]LBOutcome, error) {
	opts.fill()
	if burst <= 0 {
		burst = 30
	}
	modes := []struct {
		name string
		mode qcc.LBMode
	}{
		{"off", qcc.LBOff},
		{"fragment", qcc.LBFragment},
		{"global", qcc.LBGlobal},
	}
	var out []LBOutcome
	for _, m := range modes {
		o, err := runLBBurst(opts, m.mode, m.name, burst)
		if err != nil {
			return nil, fmt.Errorf("lb study %s: %w", m.name, err)
		}
		out = append(out, o)
	}
	return out, nil
}

func runLBBurst(opts Options, mode qcc.LBMode, name string, burst int) (LBOutcome, error) {
	sc, err := scenario.BuildThreeServer(scenario.Options{
		Scale: opts.Scale,
		Seed:  opts.Seed,
		// §4's setting: true equivalent data sources (uniform replicas)
		// that heat up under their own query traffic.
		Uniform:     true,
		InducedLoad: remote.InducedLoadProfile{WindowMS: 1000, Gain: 12},
	})
	if err != nil {
		return LBOutcome{}, err
	}
	qcc.Attach(qcc.Config{
		Clock: sc.Clock,
		MW:    sc.MW,
		LB: qcc.LBConfig{
			Mode:      mode,
			Closeness: 0.2, // the paper's "within 20%" band
		},
		DisableDaemons: true,
	}, sc.II)

	// A moderately expensive query so the burst actually heats servers.
	qt, err := workload.TypeByName("QT2")
	if err != nil {
		return LBOutcome{}, err
	}
	var times []float64
	for i := 0; i < burst; i++ {
		res, err := sc.II.Query(qt.Make(i % 10))
		if err != nil {
			return LBOutcome{}, err
		}
		times = append(times, float64(res.ResponseTime))
	}
	used := 0
	var maxExec, totalExec int64
	for _, srv := range sc.Servers {
		n := srv.Executed()
		totalExec += n
		if n > 0 {
			used++
		}
		if n > maxExec {
			maxExec = n
		}
	}
	maxShare := 0.0
	if totalExec > 0 {
		maxShare = float64(maxExec) / float64(totalExec)
	}
	return LBOutcome{
		Mode:        name,
		AvgMS:       Mean(times),
		P95MS:       percentile(times, 0.95),
		ServersUsed: used,
		MaxShare:    maxShare,
	}, nil
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// FormatLoadBalanceStudy renders the §4 study.
func FormatLoadBalanceStudy(outcomes []LBOutcome) string {
	out := "Load distribution study — burst of identical queries, servers heat up under traffic\n"
	out += "  policy      avg(ms)    p95(ms)  servers  max share\n"
	for _, o := range outcomes {
		out += fmt.Sprintf("  %-9s %9.1f %10.1f  %7d  %8.0f%%\n",
			o.Mode, o.AvgMS, o.P95MS, o.ServersUsed, o.MaxShare*100)
	}
	return out
}

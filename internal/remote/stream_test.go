package remote

import (
	"context"
	"testing"

	"repro/internal/simclock"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

func drainCursor(cur *Cursor) (*sqltypes.Relation, simclock.Time) {
	out := sqltypes.NewRelation(cur.Result().Rel.Schema)
	var total simclock.Time
	for {
		b := cur.NextBatch()
		if b == nil {
			return out, total
		}
		out.Rows = append(out.Rows, b.Rel.Rows...)
		total += b.ServiceTime
	}
}

func TestOpenPlanBatchesSumToServiceTime(t *testing.T) {
	s := newTestServer(t, ProfileS1("S1"), 200)
	stmt := sqlparser.MustParse("SELECT o.o_id FROM orders AS o WHERE o.o_id < 150")
	plans, err := s.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := s.OpenPlan(context.Background(), plans[0], 32)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Blocking() != "" {
		t.Fatalf("scan plan must pipeline, got blocking=%q", cur.Blocking())
	}
	rel, sum := drainCursor(cur)
	res := cur.Result()
	if len(rel.Rows) != len(res.Rel.Rows) {
		t.Fatalf("streamed %d rows, materialized %d", len(rel.Rows), len(res.Rel.Rows))
	}
	wantBatches := (len(res.Rel.Rows) + 31) / 32
	if cur.NumBatches() != wantBatches {
		t.Fatalf("batches: %d want %d", cur.NumBatches(), wantBatches)
	}
	if cur.NumBatches() < 2 {
		t.Fatalf("test needs a multi-batch result, got %d batches over %d rows", cur.NumBatches(), len(res.Rel.Rows))
	}
	// The telescoping split must reproduce the full service time EXACTLY —
	// not within epsilon — so the monolithic and streamed virtual times agree.
	if sum != res.ServiceTime {
		t.Fatalf("batch service times sum to %v, plan service time %v", sum, res.ServiceTime)
	}
	// The first batch is available before the full result under the
	// first/next-tuple model.
	if cur.FirstReady() <= 0 || cur.FirstReady() >= res.ServiceTime {
		t.Fatalf("first ready %v not inside (0, %v)", cur.FirstReady(), res.ServiceTime)
	}
	// Row content matches the materialized result position by position.
	for i, row := range rel.Rows {
		if row[0].Int() != res.Rel.Rows[i][0].Int() {
			t.Fatalf("row %d differs: %v vs %v", i, row, res.Rel.Rows[i])
		}
	}
}

func TestOpenPlanZeroBatchRowsIsMonolithic(t *testing.T) {
	s := newTestServer(t, ProfileS1("S1"), 200)
	stmt := sqlparser.MustParse("SELECT o.o_id FROM orders AS o WHERE o.o_id < 150")
	plans, err := s.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := s.OpenPlan(context.Background(), plans[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if cur.NumBatches() != 1 {
		t.Fatalf("batchRows=0 must yield one batch, got %d", cur.NumBatches())
	}
	if cur.FirstReady() != cur.Result().ServiceTime {
		t.Fatal("monolithic cursor: first-ready must equal full service time")
	}
	b := cur.NextBatch()
	if b == nil || b.ServiceTime != cur.Result().ServiceTime {
		t.Fatalf("single batch must carry full service time: %+v", b)
	}
	if cur.NextBatch() != nil {
		t.Fatal("cursor must be exhausted after the single batch")
	}
}

func TestOpenPlanBlockingPlanCollapsesToOneBatch(t *testing.T) {
	s := newTestServer(t, ProfileS1("S1"), 200)
	for _, tc := range []struct {
		sql  string
		want string
	}{
		{"SELECT o.o_id FROM orders AS o WHERE o.o_id < 150 ORDER BY o.o_id DESC", "sort"},
		{"SELECT COUNT(*) FROM orders AS o", "aggregate"},
	} {
		stmt := sqlparser.MustParse(tc.sql)
		plans, err := s.Explain(stmt)
		if err != nil {
			t.Fatal(err)
		}
		cur, err := s.OpenPlan(context.Background(), plans[0], 8)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Blocking() != tc.want {
			t.Fatalf("%s: blocking=%q want %q", tc.sql, cur.Blocking(), tc.want)
		}
		if cur.NumBatches() != 1 {
			t.Fatalf("%s: blocking plan must emit one batch, got %d", tc.sql, cur.NumBatches())
		}
	}
}

func TestOpenPlanFirstBatchCarriesFirstTupleCost(t *testing.T) {
	s := newTestServer(t, ProfileS1("S1"), 200)
	stmt := sqlparser.MustParse("SELECT o.o_id FROM orders AS o WHERE o.o_id < 150")
	plans, err := s.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := s.OpenPlan(context.Background(), plans[0], 16)
	if err != nil {
		t.Fatal(err)
	}
	if cur.NumBatches() < 3 {
		t.Fatalf("need >=3 batches, got %d", cur.NumBatches())
	}
	first := cur.NextBatch()
	second := cur.NextBatch()
	// Under c(h) = first + (total-first)·(h-1)/(n-1) the opening batch pays
	// the fixed first-tuple overhead; interior batches only their marginal
	// next-tuple share, so the first batch must cost strictly more.
	if first.ServiceTime <= second.ServiceTime {
		t.Fatalf("first batch (%v) must carry the first-tuple overhead above an interior batch (%v)",
			first.ServiceTime, second.ServiceTime)
	}
}

package remote

import (
	"context"

	"repro/internal/exec"
	"repro/internal/exec/colbatch"
	"repro/internal/simclock"
	"repro/internal/sqltypes"
)

// Batch is one streamed unit of a fragment result.
type Batch struct {
	// Rel holds this batch's rows (a slice view into the full result). Nil
	// when the columnar wire protocol carried the batch: then Col + Enc are
	// authoritative and no rows were boxed.
	Rel *sqltypes.Relation
	// Col is the same rows as a columnar view when the server executed
	// vectorized; nil on the row engine.
	Col *colbatch.Batch
	// Enc is the batch in wire form, present only under the columnar wire
	// protocol. Its byte length is what the network link transfers.
	Enc *colbatch.Encoded
	// ServiceTime is the simulated remote compute time attributable to
	// producing this batch under the first/next-tuple model: the first batch
	// carries the first-tuple cost, later batches their next-tuple share,
	// and the per-batch times sum exactly to the plan's full service time.
	ServiceTime simclock.Time
}

// Cursor streams a plan's result in batches. Execution is simulated, so the
// plan runs to completion at Open and the cursor replays the result on the
// virtual-time first/next-tuple schedule; what the cursor adds is the TIMING
// decomposition the wrapper needs to overlap production with transfer.
type Cursor struct {
	result   *Result
	bounds   []int           // row-index upper bound of each batch
	splits   []simclock.Time // cumulative produce time through each batch
	pos      int
	blocking string
}

// OpenPlan executes a plan and returns a cursor over its result split into
// batches of batchRows rows. batchRows <= 0 — or a plan whose tree contains
// a pipeline-breaking operator (sort, aggregate, distinct) — yields a single
// batch carrying the full service time, which reproduces monolithic
// execution exactly.
func (s *Server) OpenPlan(ctx context.Context, p *Plan, batchRows int) (*Cursor, error) {
	wire := s.wireColumnar.Load() && s.vectorized.Load()
	res, err := s.runPlan(ctx, p, wire)
	if err != nil {
		return nil, err
	}
	cur := &Cursor{result: res, blocking: exec.BlockingStage(p.Root)}
	n := res.RowCount()
	if batchRows <= 0 || cur.blocking != "" || n <= batchRows {
		cur.bounds = []int{n}
		cur.splits = []simclock.Time{res.ServiceTime}
		return cur, nil
	}

	// Telescoping split: cumulative produce time after row h follows the
	// first/next-tuple model c(h) = first + (total-first)·(h-1)/(n-1), with
	// c(n) pinned to the total so the per-batch deltas sum exactly.
	total := float64(res.ServiceTime)
	first := s.hw.FixedOverheadMS + 0.1*(total-s.hw.FixedOverheadMS)
	if first > total {
		first = total
	}
	if first < 0 {
		first = 0
	}
	for lo := 0; lo < n; lo += batchRows {
		hi := lo + batchRows
		if hi > n {
			hi = n
		}
		var c float64
		if hi == n {
			c = total
		} else {
			c = first + (total-first)*float64(hi-1)/float64(n-1)
		}
		cur.bounds = append(cur.bounds, hi)
		cur.splits = append(cur.splits, simclock.Time(c))
	}
	return cur, nil
}

// NextBatch returns the next batch, or nil when the cursor is exhausted.
func (c *Cursor) NextBatch() *Batch {
	if c.pos >= len(c.bounds) {
		return nil
	}
	lo, prev := 0, simclock.Time(0)
	if c.pos > 0 {
		lo, prev = c.bounds[c.pos-1], c.splits[c.pos-1]
	}
	hi := c.bounds[c.pos]
	b := &Batch{ServiceTime: c.splits[c.pos] - prev}
	if rel := c.result.Rel; rel != nil {
		if c.pos > 0 || hi < len(rel.Rows) {
			view := sqltypes.NewRelation(rel.Schema)
			view.Rows = rel.Rows[lo:hi]
			rel = view
		}
		b.Rel = rel
	}
	if c.result.Col != nil {
		b.Col = c.result.Col.Slice(lo, hi)
		if c.result.Rel == nil {
			// Columnar wire protocol: encode the batch for transfer. The
			// encoded length is the size every network draw observes.
			b.Enc = colbatch.Encode(b.Col)
		}
	}
	c.pos++
	return b
}

// NumBatches returns how many batches the cursor yields in total.
func (c *Cursor) NumBatches() int { return len(c.bounds) }

// FirstReady returns the service time until the first batch is available —
// the remote-side component of time-to-first-row.
func (c *Cursor) FirstReady() simclock.Time { return c.splits[0] }

// Blocking names the pipeline-breaking stage that forced single-batch
// production ("sort", "aggregate", "distinct"), or "" when the plan
// pipelines.
func (c *Cursor) Blocking() string { return c.blocking }

// Result returns the full materialized result backing the cursor.
func (c *Cursor) Result() *Result { return c.result }

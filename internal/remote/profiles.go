package remote

// Standard server profiles for the paper's three-server evaluation scenario
// (§5). The profiles are chosen so the qualitative Figure 9 behaviour
// emerges mechanistically rather than by lookup table:
//
//   - S1: an older machine — modest CPU, spinning disks, and little memory,
//     so even on a calm system half of its "cached" page touches miss the
//     buffer pool. Its optimizer therefore avoids cache-reliant plans
//     (index nested loops) for anything non-tiny; load hurts it through
//     CPU/IO contention roughly proportionally.
//   - S2: mid-range everything.
//   - S3: the most powerful machine — fast CPU, fast storage, and a large
//     buffer pool (2% baseline miss), so its optimizer happily picks
//     cache-reliant plans. Its weakness: the heavy UPDATE workload dirties
//     and evicts the pool aggressively (high churn), collapsing exactly
//     those plans — which is why S3 is "much more sensitive to load" for
//     the cache-heavy query type (QT2) while remaining cheapest for CPU-
//     and sequential-IO-bound work (QT1) and for highly-selective probes
//     (QT3, QT4) even when loaded.
func ProfileS1(id string) Config {
	return Config{
		ID: id,
		Hardware: HardwareProfile{
			CPUOpsPerMS:      700,
			IOPagesPerMS:     45,
			CachedPagesPerMS: 500,
			CacheMissFrac:    0.5,
			FixedOverheadMS:  2,
		},
		Contention: ContentionProfile{
			CPU:         0.9,
			IO:          0.9,
			BufferChurn: 0.3,
			QueueAmp:    0.8,
		},
	}
}

// ProfileS2 returns the configuration for server S2.
func ProfileS2(id string) Config {
	return Config{
		ID: id,
		Hardware: HardwareProfile{
			CPUOpsPerMS:      1000,
			IOPagesPerMS:     55,
			CachedPagesPerMS: 800,
			CacheMissFrac:    0.35,
			FixedOverheadMS:  2,
		},
		Contention: ContentionProfile{
			CPU:         0.8,
			IO:          0.8,
			BufferChurn: 0.5,
			QueueAmp:    0.7,
		},
	}
}

// ProfileS3 returns the configuration for server S3.
func ProfileS3(id string) Config {
	return Config{
		ID: id,
		Hardware: HardwareProfile{
			CPUOpsPerMS:      2600,
			IOPagesPerMS:     300,
			CachedPagesPerMS: 4000,
			CacheMissFrac:    0.02,
			FixedOverheadMS:  1,
		},
		Contention: ContentionProfile{
			CPU:         0.6,
			IO:          1.6,
			BufferChurn: 3.5,
			QueueAmp:    0.6,
		},
	}
}

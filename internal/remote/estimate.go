package remote

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/sqlparser"
	"repro/internal/stats"
	"repro/internal/storage"
)

// estimator derives optimizer-visible cost estimates by walking a physical
// operator tree with table statistics — never by executing it. The resource
// formulas deliberately mirror the executor's actual charging so that, on a
// calm (zero-load) server, estimated and observed times agree and the
// calibration factor sits near 1.
type estimator struct {
	provider stats.StatsProvider
	server   *Server
}

// nodeEst is the estimate for one subtree.
type nodeEst struct {
	card  float64
	width float64 // average output row bytes
	res   exec.Resources
}

// estimatePlan estimates an entire plan and packages the CostEstimate.
func (e *estimator) estimatePlan(root exec.Operator) (CostEstimate, error) {
	ne, err := e.estimate(root)
	if err != nil {
		return CostEstimate{}, err
	}
	outBytes := int(ne.card * (ne.width + 4))
	res := ne.res
	res.OutBytes = outBytes
	total := e.server.EstimateTime(res)
	card := int64(ne.card)
	if card < 1 {
		card = 1
	}
	first := e.server.hw.FixedOverheadMS + 0.1*(total-e.server.hw.FixedOverheadMS)
	next := (total - first) / float64(card)
	if next < 0 {
		next = 0
	}
	return CostEstimate{
		TotalMS:      total,
		FirstTupleMS: first,
		NextTupleMS:  next,
		Card:         card,
		OutBytes:     outBytes,
	}, nil
}

func (e *estimator) estimate(op exec.Operator) (nodeEst, error) {
	switch x := op.(type) {
	case *exec.Values:
		card := float64(x.Rel.Cardinality())
		width := 16.0
		if card > 0 {
			width = float64(x.Rel.ByteSize()) / card
		}
		return nodeEst{card: card, width: width, res: exec.Resources{CPUOps: card}}, nil

	case *exec.SeqScan:
		ts := e.tableStats(x.Table)
		card := float64(ts.RowCount)
		return nodeEst{
			card:  card,
			width: ts.AvgRowBytes,
			res:   exec.Resources{IOPages: float64(x.Table.Pages()), CPUOps: card},
		}, nil

	case *exec.IndexScan:
		ts := e.tableStats(x.Table)
		card := float64(ts.RowCount) * e.probeSelectivity(x, ts)
		n := float64(ts.RowCount)
		descent := 1.0
		if n > 2 {
			descent += math.Log2(n) / 4
		}
		return nodeEst{
			card:  card,
			width: ts.AvgRowBytes,
			res:   exec.Resources{CachedPages: descent + card, CPUOps: descent + card},
		}, nil

	case *exec.Filter:
		in, err := e.estimate(x.Input)
		if err != nil {
			return nodeEst{}, err
		}
		sel := stats.Selectivity(x.Pred, e.provider)
		out := in
		out.card = in.card * sel
		out.res.CPUOps += in.card
		return out, nil

	case *exec.Project:
		in, err := e.estimate(x.Input)
		if err != nil {
			return nodeEst{}, err
		}
		out := in
		out.width = 12 * float64(len(x.Items))
		out.res.CPUOps += in.card * float64(len(x.Items))
		return out, nil

	case *exec.HashJoin:
		l, err := e.estimate(x.Build)
		if err != nil {
			return nodeEst{}, err
		}
		r, err := e.estimate(x.Probe)
		if err != nil {
			return nodeEst{}, err
		}
		card := float64(stats.JoinCardinality(int64(l.card), int64(r.card),
			e.keyDistinct(x.BuildKey, l.card), e.keyDistinct(x.ProbeKey, r.card)))
		if x.Residual != nil {
			card *= stats.Selectivity(x.Residual, e.provider)
		}
		out := nodeEst{card: card, width: l.width + r.width}
		out.res = l.res
		out.res.Add(r.res)
		out.res.CPUOps += 2*l.card + 2*r.card + card
		return out, nil

	case *exec.MergeJoin:
		l, err := e.estimate(x.Left)
		if err != nil {
			return nodeEst{}, err
		}
		r, err := e.estimate(x.Right)
		if err != nil {
			return nodeEst{}, err
		}
		card := float64(stats.JoinCardinality(int64(l.card), int64(r.card),
			e.keyDistinct(x.LeftKey, l.card), e.keyDistinct(x.RightKey, r.card)))
		if x.Residual != nil {
			card *= stats.Selectivity(x.Residual, e.provider)
		}
		out := nodeEst{card: card, width: l.width + r.width}
		out.res = l.res
		out.res.Add(r.res)
		lg := func(n float64) float64 {
			if n < 2 {
				return 1
			}
			return math.Log2(n)
		}
		out.res.CPUOps += l.card*lg(l.card) + r.card*lg(r.card) + l.card + r.card + card
		return out, nil

	case *exec.IndexNLJoin:
		outer, err := e.estimate(x.Outer)
		if err != nil {
			return nodeEst{}, err
		}
		ts := e.tableStats(x.Inner)
		card := float64(stats.JoinCardinality(int64(outer.card), ts.RowCount,
			e.keyDistinct(x.OuterKey, outer.card), columnDistinct(ts, x.Index.Column())))
		if x.Residual != nil {
			card *= stats.Selectivity(x.Residual, e.provider)
		}
		n := float64(ts.RowCount)
		descent := 1.0
		if n > 2 {
			descent += math.Log2(n) / 4
		}
		fetches := card
		out := nodeEst{card: card, width: outer.width + ts.AvgRowBytes}
		out.res = outer.res
		out.res.CachedPages += outer.card*descent + fetches
		out.res.CPUOps += outer.card*(descent+1) + fetches
		return out, nil

	case *exec.NestedLoopJoin:
		l, err := e.estimate(x.Outer)
		if err != nil {
			return nodeEst{}, err
		}
		r, err := e.estimate(x.Inner)
		if err != nil {
			return nodeEst{}, err
		}
		sel := 1.0
		if x.Pred != nil {
			sel = stats.Selectivity(x.Pred, e.provider)
		}
		out := nodeEst{card: l.card * r.card * sel, width: l.width + r.width}
		out.res = l.res
		out.res.Add(r.res)
		out.res.CPUOps += l.card * r.card
		return out, nil

	case *exec.Aggregate:
		in, err := e.estimate(x.Input)
		if err != nil {
			return nodeEst{}, err
		}
		var distincts []int64
		for _, g := range x.GroupBy {
			distincts = append(distincts, e.keyDistinct(g, in.card))
		}
		card := float64(stats.GroupCardinality(int64(in.card), distincts))
		out := nodeEst{card: card, width: 12 * float64(len(x.GroupBy)+len(x.Aggs))}
		out.res = in.res
		out.res.CPUOps += in.card * float64(1+len(x.Aggs))
		return out, nil

	case *exec.Sort:
		in, err := e.estimate(x.Input)
		if err != nil {
			return nodeEst{}, err
		}
		out := in
		n := in.card
		l := 1.0
		if n > 2 {
			l = math.Log2(n)
		}
		out.res.CPUOps += n * l
		return out, nil

	case *exec.Distinct:
		in, err := e.estimate(x.Input)
		if err != nil {
			return nodeEst{}, err
		}
		out := in
		out.res.CPUOps += in.card * 2
		return out, nil

	case *exec.Limit:
		in, err := e.estimate(x.Input)
		if err != nil {
			return nodeEst{}, err
		}
		out := in
		if out.card > float64(x.N) {
			out.card = float64(x.N)
		}
		return out, nil

	default:
		return nodeEst{}, fmt.Errorf("remote: estimator does not know operator %T", op)
	}
}

func (e *estimator) tableStats(t *storage.Table) *stats.TableStats { return t.Stats() }

// probeSelectivity estimates the fraction of rows an index probe returns.
func (e *estimator) probeSelectivity(x *exec.IndexScan, ts *stats.TableStats) float64 {
	cs := ts.Column(x.Index.Column())
	if x.Probe.Eq != nil {
		if cs != nil && cs.Distinct > 0 {
			return 1 / float64(cs.Distinct)
		}
		return stats.DefaultEqSelectivity
	}
	if cs == nil || cs.Hist == nil {
		return stats.DefaultRangeSelectivity
	}
	lo, hi := 0.0, 1.0
	if x.Probe.Lo != nil {
		lo = cs.Hist.SelectivityLE(x.Probe.Lo.Float())
	}
	if x.Probe.Hi != nil {
		hi = cs.Hist.SelectivityLE(x.Probe.Hi.Float())
	}
	s := hi - lo
	if s <= 0 {
		s = 1e-6
	}
	return s
}

// keyDistinct estimates the number of distinct values a key expression
// takes; bare columns use statistics, anything else assumes the input
// cardinality.
func (e *estimator) keyDistinct(key sqlparser.Expr, inputCard float64) int64 {
	if ref, ok := key.(*sqlparser.ColumnRef); ok && ref.Table != "" {
		if cs := e.provider.TableStats(ref.Table).Column(ref.Name); cs != nil && cs.Distinct > 0 {
			return cs.Distinct
		}
	}
	d := int64(inputCard)
	if d < 1 {
		d = 1
	}
	return d
}

func columnDistinct(ts *stats.TableStats, column string) int64 {
	if cs := ts.Column(column); cs != nil && cs.Distinct > 0 {
		return cs.Distinct
	}
	return ts.RowCount
}

package remote

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/simclock"
	"repro/internal/sqlparser"
	"repro/internal/storage"
)

func simclockNew() *simclock.Clock { return simclock.New() }

// newServer builds a server with the sample schema at reduced scale.
func newTestServer(t *testing.T, cfg Config, scale int) *Server {
	t.Helper()
	s := NewServer(cfg)
	for _, g := range storage.SampleSchema(scale) {
		tab, err := g.Generate(42)
		if err != nil {
			t.Fatal(err)
		}
		s.AddTable(tab)
	}
	return s
}

func TestServerTablesAndCatalog(t *testing.T) {
	s := newTestServer(t, ProfileS1("S1"), 200)
	names := s.Tables()
	if len(names) != 4 {
		t.Fatalf("tables: %v", names)
	}
	if s.Table("orders") == nil || s.Table("zzz") != nil {
		t.Fatal("table lookup")
	}
	if s.ID() != "S1" {
		t.Fatal("id")
	}
}

func TestExplainReturnsRankedDistinctPlans(t *testing.T) {
	s := newTestServer(t, ProfileS1("S1"), 100)
	stmt := sqlparser.MustParse("SELECT o.o_id FROM orders AS o WHERE o.o_id < 50")
	plans, err := s.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 || len(plans) > 2 {
		t.Fatalf("plan count: %d", len(plans))
	}
	for i := 1; i < len(plans); i++ {
		if plans[i-1].Est.TotalMS > plans[i].Est.TotalMS {
			t.Fatal("plans not ranked by cost")
		}
	}
	if len(plans) == 2 && plans[0].Signature == plans[1].Signature {
		t.Fatal("duplicate signatures")
	}
	for _, p := range plans {
		if p.ServerID != "S1" || p.Est.Card < 1 || p.Est.TotalMS <= 0 {
			t.Fatalf("bad plan: %v", p)
		}
		if p.Est.FirstTupleMS > p.Est.TotalMS {
			t.Fatalf("first tuple above total: %v", p.Est)
		}
	}
}

func TestExplainSelectivePrefersIndexScan(t *testing.T) {
	s := newTestServer(t, ProfileS1("S1"), 10) // 10k rows
	stmt := sqlparser.MustParse("SELECT o.o_id FROM orders AS o WHERE o.o_id = 7")
	plans, err := s.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plans[0].Signature, "IDXSCAN") {
		t.Fatalf("selective probe should pick index scan:\n%s", plans[0].Signature)
	}
}

func TestExplainUnselectivePrefersSeqScan(t *testing.T) {
	s := newTestServer(t, ProfileS1("S1"), 10)
	stmt := sqlparser.MustParse("SELECT SUM(o.o_amount) FROM orders AS o WHERE o.o_id >= 0")
	plans, err := s.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plans[0].Signature, "SEQSCAN") {
		t.Fatalf("full-range probe should pick seq scan:\n%s", plans[0].Signature)
	}
}

func TestExplainUnknownTableFails(t *testing.T) {
	s := newTestServer(t, ProfileS1("S1"), 200)
	stmt := sqlparser.MustParse("SELECT * FROM nope")
	if _, err := s.Explain(stmt); err == nil {
		t.Fatal("unknown table must fail")
	}
}

func TestExplainDownServerFails(t *testing.T) {
	s := newTestServer(t, ProfileS1("S1"), 200)
	s.SetDown(true)
	stmt := sqlparser.MustParse("SELECT * FROM parts")
	_, err := s.Explain(stmt)
	var down *ErrServerDown
	if !errors.As(err, &down) {
		t.Fatalf("want ErrServerDown, got %v", err)
	}
}

func TestExecutePlanMatchesDirectExecution(t *testing.T) {
	s := newTestServer(t, ProfileS1("S1"), 100)
	stmt := sqlparser.MustParse("SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 5000")
	plans, err := s.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ExecutePlan(context.Background(), plans[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Cardinality() != 1 {
		t.Fatalf("agg rows: %d", res.Rel.Cardinality())
	}
	if res.ServiceTime <= 0 {
		t.Fatalf("service time: %v", res.ServiceTime)
	}
	// Cross-check against a straight exec over the same table.
	leaf := &exec.SeqScan{Table: s.Table("orders"), As: "o"}
	op, err := exec.BuildPlan(stmt, map[string]exec.Operator{"o": leaf})
	if err != nil {
		t.Fatal(err)
	}
	want, err := op.Execute(&exec.Context{})
	if err != nil {
		t.Fatal(err)
	}
	if want.Rows[0][0].Int() != res.Rel.Rows[0][0].Int() {
		t.Fatalf("plan result %v != direct %v", res.Rel.Rows[0], want.Rows[0])
	}
}

func TestExecutePlanWrongServerRejected(t *testing.T) {
	s1 := newTestServer(t, ProfileS1("S1"), 200)
	s2 := newTestServer(t, ProfileS2("S2"), 200)
	stmt := sqlparser.MustParse("SELECT * FROM parts LIMIT 1")
	plans, err := s1.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.ExecutePlan(context.Background(), plans[0]); err == nil {
		t.Fatal("cross-server execution must fail")
	}
}

func TestFailureInjection(t *testing.T) {
	s := newTestServer(t, ProfileS1("S1"), 200)
	s.InjectFailures(1)
	stmt := sqlparser.MustParse("SELECT * FROM parts LIMIT 1")
	plans, _ := s.Explain(stmt)
	_, err := s.ExecutePlan(context.Background(), plans[0])
	var fail *ErrServerFailure
	if !errors.As(err, &fail) {
		t.Fatalf("want failure, got %v", err)
	}
	if _, err := s.ExecutePlan(context.Background(), plans[0]); err != nil {
		t.Fatalf("second execution should succeed: %v", err)
	}
	if s.Executed() != 1 {
		t.Fatalf("executed count: %d", s.Executed())
	}
}

func TestLoadLevelClampAndServiceTimeInflation(t *testing.T) {
	s := newTestServer(t, ProfileS1("S1"), 100)
	s.SetLoadLevel(-5)
	if s.LoadLevel() != 0 {
		t.Fatal("clamp low")
	}
	s.SetLoadLevel(7)
	if s.LoadLevel() != 1 {
		t.Fatal("clamp high")
	}
	res := exec.Resources{CPUOps: 10000, IOPages: 100, CachedPages: 100}
	s.SetLoadLevel(0)
	calm := s.Observe(res)
	s.SetLoadLevel(1)
	loaded := s.Observe(res)
	if loaded <= calm {
		t.Fatalf("load must inflate service time: %v vs %v", calm, loaded)
	}
	if float64(calm) != s.EstimateTime(res) {
		t.Fatal("estimate must equal zero-load observation")
	}
}

func TestBufferChurnHurtsCachedPlansMost(t *testing.T) {
	s3 := NewServer(ProfileS3("S3"))
	cached := exec.Resources{CPUOps: 1000, CachedPages: 5000}
	seq := exec.Resources{CPUOps: 1000, IOPages: 1000}
	s3.SetLoadLevel(0)
	cachedCalm, seqCalm := s3.Observe(cached), s3.Observe(seq)
	s3.SetLoadLevel(1)
	cachedLoaded, seqLoaded := s3.Observe(cached), s3.Observe(seq)
	cachedBlowup := float64(cachedLoaded) / float64(cachedCalm)
	seqBlowup := float64(seqLoaded) / float64(seqCalm)
	if cachedBlowup < 3*seqBlowup {
		t.Fatalf("cache-reliant plans must collapse harder on S3: cached %.1fx vs seq %.1fx", cachedBlowup, seqBlowup)
	}
}

func TestProbe(t *testing.T) {
	s := newTestServer(t, ProfileS1("S1"), 200)
	pt, err := s.Probe(context.Background())
	if err != nil || pt <= 0 {
		t.Fatalf("probe: %v %v", pt, err)
	}
	s.SetLoadLevel(1)
	pt2, _ := s.Probe(context.Background())
	if pt2 <= pt {
		t.Fatal("probe must reflect load")
	}
	s.SetDown(true)
	if _, err := s.Probe(context.Background()); err == nil {
		t.Fatal("down probe must fail")
	}
}

func TestExecuteSQLRoundTrip(t *testing.T) {
	s := newTestServer(t, ProfileS2("S2"), 100)
	res, err := s.ExecuteSQL(context.Background(), "SELECT COUNT(*) FROM parts AS p")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Rows[0][0].Int() != int64(s.Table("parts").RowCount()) {
		t.Fatalf("count: %v", res.Rel.Rows[0])
	}
	if _, err := s.ExecuteSQL(context.Background(), "NOT SQL"); err == nil {
		t.Fatal("bad sql must fail")
	}
}

func TestApplyUpdateBurst(t *testing.T) {
	s := newTestServer(t, ProfileS1("S1"), 200)
	tab := s.Table("orders")
	v0 := tab.Version()
	if err := s.ApplyUpdateBurst("orders", 50, 7); err != nil {
		t.Fatal(err)
	}
	if tab.Version() != v0+50 {
		t.Fatalf("version: %d -> %d", v0, tab.Version())
	}
	if err := s.ApplyUpdateBurst("nope", 1, 1); err == nil {
		t.Fatal("unknown table")
	}
}

func TestPlanSignatureIdenticalAcrossReplicas(t *testing.T) {
	// Replicas generated with the same seed must yield identical plan
	// signatures — §4.1 requires exchangeable plans to be identical.
	s1 := newTestServer(t, ProfileS1("S1"), 100)
	s2 := newTestServer(t, ProfileS2("S2"), 100)
	stmt := sqlparser.MustParse("SELECT p.p_id FROM parts AS p WHERE p.p_id < 100")
	p1, err := s1.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s2.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if p1[0].Signature != p2[0].Signature {
		t.Fatalf("replica signatures differ:\n%s\nvs\n%s", p1[0].Signature, p2[0].Signature)
	}
}

func TestExplainJoinQueryEnumeratesAlgorithms(t *testing.T) {
	s := newTestServer(t, ProfileS3("S3"), 100)
	stmt := sqlparser.MustParse(`SELECT SUM(l.l_price) FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9000`)
	plans, err := s.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 2 {
		t.Fatalf("join query should have >=2 candidate plans, got %d", len(plans))
	}
	res, err := s.ExecutePlan(context.Background(), plans[0])
	if err != nil {
		t.Fatalf("executing best plan:\n%s\n%v", plans[0].Explain(), err)
	}
	if res.Rel.Cardinality() != 1 {
		t.Fatalf("agg result: %v", res.Rel)
	}
	// Both plans must produce identical answers.
	res2, err := s.ExecutePlan(context.Background(), plans[1])
	if err != nil {
		t.Fatalf("executing alternative plan:\n%s\n%v", plans[1].Explain(), err)
	}
	a, b := res.Rel.Rows[0][0].Float(), res2.Rel.Rows[0][0].Float()
	if diff := a - b; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("plan answers differ: %v vs %v", res.Rel.Rows[0], res2.Rel.Rows[0])
	}
}

func TestThreeWayJoinPlansAndExecutes(t *testing.T) {
	s := newTestServer(t, ProfileS2("S2"), 200)
	stmt := sqlparser.MustParse(`SELECT COUNT(*) FROM customer AS c
		JOIN orders AS o ON o.o_custkey = c.c_id
		JOIN lineitem AS l ON l.l_orderkey = o.o_id
		WHERE c.c_id < 3`)
	plans, err := s.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecutePlan(context.Background(), plans[0]); err != nil {
		t.Fatalf("three-way join failed:\n%s\n%v", plans[0].Explain(), err)
	}
}

func TestPlanCacheHitsAndInvalidation(t *testing.T) {
	s := newTestServer(t, ProfileS1("S1"), 100)
	stmt := sqlparser.MustParse("SELECT SUM(o.o_amount) FROM orders AS o WHERE o.o_amount > 100")
	if _, err := s.Explain(stmt); err != nil {
		t.Fatal(err)
	}
	hits, misses := s.PlanCacheStats()
	if hits != 0 || misses != 1 {
		t.Fatalf("first explain: hits=%d misses=%d", hits, misses)
	}
	p1, err := s.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	hits, _ = s.PlanCacheStats()
	if hits != 1 {
		t.Fatalf("second explain should hit: hits=%d", hits)
	}
	// Cached plans remain executable.
	if _, err := s.ExecutePlan(context.Background(), p1[0]); err != nil {
		t.Fatal(err)
	}
	// Mutating the table invalidates the entry.
	if err := s.ApplyUpdateBurst("orders", 1, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Explain(stmt); err != nil {
		t.Fatal(err)
	}
	hits, misses = s.PlanCacheStats()
	if hits != 1 || misses != 2 {
		t.Fatalf("after mutation: hits=%d misses=%d", hits, misses)
	}
	// Different parameter values do NOT share an entry (estimates differ).
	stmt2 := sqlparser.MustParse("SELECT SUM(o.o_amount) FROM orders AS o WHERE o.o_amount > 9999")
	if _, err := s.Explain(stmt2); err != nil {
		t.Fatal(err)
	}
	_, misses = s.PlanCacheStats()
	if misses != 3 {
		t.Fatalf("different literal must miss: misses=%d", misses)
	}
}

func TestProfilesSanity(t *testing.T) {
	s1, s2, s3 := ProfileS1("S1"), ProfileS2("S2"), ProfileS3("S3")
	// S3 is the most powerful machine on every hardware axis.
	if !(s3.Hardware.CPUOpsPerMS > s2.Hardware.CPUOpsPerMS && s2.Hardware.CPUOpsPerMS > s1.Hardware.CPUOpsPerMS) {
		t.Fatal("CPU ordering")
	}
	if !(s3.Hardware.IOPagesPerMS > s2.Hardware.IOPagesPerMS && s2.Hardware.IOPagesPerMS > s1.Hardware.IOPagesPerMS) {
		t.Fatal("IO ordering")
	}
	// S3's buffer pool is effectively warm at baseline; S1 misses half.
	if !(s3.Hardware.CacheMissFrac < s2.Hardware.CacheMissFrac && s2.Hardware.CacheMissFrac < s1.Hardware.CacheMissFrac) {
		t.Fatal("cache-miss ordering")
	}
	// ... but S3's pool churns hardest under update load: the Figure 9 hook.
	if !(s3.Contention.BufferChurn > s2.Contention.BufferChurn && s2.Contention.BufferChurn > s1.Contention.BufferChurn) {
		t.Fatal("churn ordering")
	}
}

func TestInducedLoadHeatsAndCools(t *testing.T) {
	cfg := ProfileS2("S")
	cfg.InducedLoad = InducedLoadProfile{WindowMS: 100, Gain: 10}
	s := NewServer(cfg)
	clock := simclockNew()
	s.SetClock(clock)
	if s.EffectiveLoad() != 0 {
		t.Fatal("cold server")
	}
	// Work heats the server...
	s.Observe(exec.Resources{CPUOps: 5000})
	if s.EffectiveLoad() <= 0 {
		t.Fatal("work must induce load")
	}
	heated := s.EffectiveLoad()
	// ...and aging past the window cools it.
	clock.Advance(200)
	if s.EffectiveLoad() != 0 {
		t.Fatalf("load must decay: %g (was %g)", s.EffectiveLoad(), heated)
	}
	// Background load adds on top, clamped at 1.
	s.SetLoadLevel(0.9)
	s.Observe(exec.Resources{CPUOps: 500000})
	if s.EffectiveLoad() != 1 {
		t.Fatalf("clamp: %g", s.EffectiveLoad())
	}
}

func TestInducedLoadDisabledWithoutClock(t *testing.T) {
	cfg := ProfileS2("S")
	cfg.InducedLoad = InducedLoadProfile{WindowMS: 100, Gain: 10}
	s := NewServer(cfg)
	s.Observe(exec.Resources{CPUOps: 50000})
	if s.EffectiveLoad() != 0 {
		t.Fatal("no clock, no induced load")
	}
	if s.Config().InducedLoad.Gain != 10 {
		t.Fatal("config round-trip")
	}
}

package remote

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/sqlparser"
	"repro/internal/storage"
)

// joinAlgo selects the physical join implementation for one join step.
type joinAlgo uint8

const (
	joinHash joinAlgo = iota
	joinINL
	joinMerge
	joinNL
)

// accessChoice selects the access path for one table: "" means sequential
// scan, otherwise the named index is probed.
type accessChoice struct {
	index string
}

// planChoice is one point in the physical plan space.
type planChoice struct {
	access map[string]accessChoice // keyed by effective table name
	joins  []joinAlgo              // one per join step (len(tables)-1)
}

// maxEnumeratedPlans bounds the enumeration to keep Explain cheap.
const maxEnumeratedPlans = 128

// Explain enumerates candidate plans for the fragment statement, estimates
// each with the local cost model (statistics + hardware, zero load), and
// returns the cheapest MaxPlans plans with distinct signatures — the
// wrapper-visible "possible supported execution plans and their estimated
// costs". A down server refuses to explain, like a source that cannot be
// contacted.
func (s *Server) Explain(stmt *sqlparser.SelectStmt) ([]*Plan, error) {
	if s.Down() {
		return nil, &ErrServerDown{ID: s.id}
	}
	cacheKey, versions, cacheable := s.cacheKeyAndVersions(stmt)
	if cacheable {
		if plans := s.planCache.lookup(cacheKey, versions); plans != nil {
			s.telemetry().Active().Counter("remote.stmtcache_hits", s.id).Inc()
			return plans, nil
		}
		s.telemetry().Active().Counter("remote.stmtcache_misses", s.id).Inc()
	}
	tables := stmt.Tables()
	aliasToTable := map[string]string{}
	for _, tr := range tables {
		tab := s.Table(tr.Name)
		if tab == nil {
			return nil, fmt.Errorf("remote: server %s does not host table %q", s.id, tr.Name)
		}
		aliasToTable[tr.EffectiveName()] = tr.Name
	}
	physNames := physicalTables(aliasToTable)

	// Per-table access path candidates.
	accessCands := map[string][]accessChoice{}
	for _, tr := range tables {
		name := tr.EffectiveName()
		cands := []accessChoice{{}}
		for _, idxName := range s.Table(tr.Name).Indexes() {
			cands = append(cands, accessChoice{index: idxName})
		}
		accessCands[name] = cands
	}
	// Per-join-step algorithm candidates (validity is re-checked during
	// assembly; invalid combinations are skipped).
	joinCands := make([][]joinAlgo, len(tables)-1)
	for i := range joinCands {
		joinCands[i] = []joinAlgo{joinHash, joinINL, joinMerge, joinNL}
	}

	est := &estimator{provider: s.statsProviderFor(aliasToTable), server: s}
	seen := map[string]bool{}
	var plans []*Plan
	count := 0
	var walk func(ti int, choice planChoice)
	walk = func(ti int, choice planChoice) {
		if count >= maxEnumeratedPlans {
			return
		}
		if ti < len(tables) {
			name := tables[ti].EffectiveName()
			for _, ac := range accessCands[name] {
				next := choice
				next.access = copyAccess(choice.access)
				next.access[name] = ac
				walk(ti+1, next)
			}
			return
		}
		if len(choice.joins) < len(tables)-1 {
			for _, ja := range joinCands[len(choice.joins)] {
				next := choice
				next.joins = append(append([]joinAlgo{}, choice.joins...), ja)
				walk(ti, next)
			}
			return
		}
		count++
		root, err := s.assemble(stmt, choice)
		if err != nil {
			return // invalid combination (e.g. INL without usable index)
		}
		sig := exec.ExplainTree(root)
		if seen[sig] {
			return
		}
		seen[sig] = true
		ce, err := est.estimatePlan(root)
		if err != nil {
			return
		}
		plans = append(plans, &Plan{
			ServerID:  s.id,
			SQL:       stmt.String(),
			Root:      root,
			Signature: sig,
			Est:       ce,
			Tables:    physNames,
		})
	}
	walk(0, planChoice{})
	if len(plans) == 0 {
		return nil, fmt.Errorf("remote: server %s found no valid plan for %q", s.id, stmt.String())
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].Est.TotalMS < plans[j].Est.TotalMS })
	if len(plans) > s.maxPlans {
		plans = plans[:s.maxPlans]
	}
	if cacheable {
		s.planCache.insert(cacheKey, plans, versions)
	}
	return plans, nil
}

// physicalTables returns the sorted, deduplicated physical table names from
// an alias map.
func physicalTables(aliasToTable map[string]string) []string {
	seen := map[string]bool{}
	out := make([]string, 0, len(aliasToTable))
	for _, t := range aliasToTable {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

func copyAccess(m map[string]accessChoice) map[string]accessChoice {
	out := make(map[string]accessChoice, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// assemble builds the operator tree for one plan choice, mirroring
// exec.BuildPlan's predicate placement but honoring access-path and
// join-algorithm choices. It returns an error for invalid choices.
func (s *Server) assemble(stmt *sqlparser.SelectStmt, choice planChoice) (exec.Operator, error) {
	tables := stmt.Tables()

	var pool []sqlparser.Expr
	pool = append(pool, sqlparser.SplitConjuncts(stmt.Where)...)
	for _, j := range stmt.Joins {
		pool = append(pool, sqlparser.SplitConjuncts(j.On)...)
	}
	pool = dropTrue(pool)

	// Partition the pool into per-table conjuncts and cross-table conjuncts.
	perTable := map[string][]sqlparser.Expr{}
	var cross []sqlparser.Expr
	for _, c := range pool {
		placed := false
		for _, tr := range tables {
			name := tr.EffectiveName()
			tab := s.Table(tr.Name)
			sch := tab.Schema().WithQualifier(name)
			if resolvesAll(c, sch) {
				perTable[name] = append(perTable[name], c)
				placed = true
				break
			}
		}
		if !placed {
			cross = append(cross, c)
		}
	}

	// Track which inner tables are consumed by INL joins: their leaves are
	// not built independently.
	inlInner := map[string]bool{}
	for i, ja := range choice.joins {
		if ja == joinINL {
			inlInner[tables[i+1].EffectiveName()] = true
		}
	}

	// Build leaves.
	leaves := map[string]exec.Operator{}
	for _, tr := range tables {
		name := tr.EffectiveName()
		if inlInner[name] {
			continue
		}
		tab := s.Table(tr.Name)
		ac := choice.access[name]
		conjuncts := perTable[name]
		var leaf exec.Operator
		if ac.index == "" {
			leaf = &exec.SeqScan{Table: tab, As: name}
		} else {
			idx := tab.Index(ac.index)
			probe, rest, ok := exec.ProbeFromPredicate(conjuncts, name, idx.Column())
			if !ok {
				return nil, fmt.Errorf("remote: no probe for index %s", ac.index)
			}
			if probe.Eq == nil && idx.Kind() == storage.IndexHash {
				return nil, fmt.Errorf("remote: hash index %s cannot serve range", ac.index)
			}
			leaf = &exec.IndexScan{Table: tab, Index: idx, Probe: probe, As: name}
			conjuncts = rest
		}
		if len(conjuncts) > 0 {
			leaf = &exec.Filter{Input: leaf, Pred: sqlparser.JoinConjuncts(conjuncts)}
		}
		leaves[name] = leaf
	}

	current := leaves[tables[0].EffectiveName()]
	if current == nil {
		return nil, fmt.Errorf("remote: first table cannot be an INL inner")
	}
	for step, tr := range tables[1:] {
		name := tr.EffectiveName()
		tab := s.Table(tr.Name)
		algo := choice.joins[step]
		innerSchema := tab.Schema().WithQualifier(name)

		lk, rk, rest, hasKey := exec.ExtractEquiJoinKeys(cross, current.Schema(), innerSchema)
		switch algo {
		case joinHash:
			if !hasKey {
				return nil, fmt.Errorf("remote: no equi key for hash join with %s", name)
			}
			right := leaves[name]
			joined := current.Schema().Concat(right.Schema())
			residuals, remaining := partitionResolvable(rest, joined)
			current = &exec.HashJoin{
				Build:    current,
				Probe:    right,
				BuildKey: lk,
				ProbeKey: rk,
				Residual: sqlparser.JoinConjuncts(residuals),
			}
			cross = remaining
		case joinMerge:
			if !hasKey {
				return nil, fmt.Errorf("remote: no equi key for merge join with %s", name)
			}
			right := leaves[name]
			joined := current.Schema().Concat(right.Schema())
			residuals, remaining := partitionResolvable(rest, joined)
			current = &exec.MergeJoin{
				Left:     current,
				Right:    right,
				LeftKey:  lk,
				RightKey: rk,
				Residual: sqlparser.JoinConjuncts(residuals),
			}
			cross = remaining
		case joinINL:
			if !hasKey {
				return nil, fmt.Errorf("remote: no equi key for INL join with %s", name)
			}
			rref, ok := rk.(*sqlparser.ColumnRef)
			if !ok {
				return nil, fmt.Errorf("remote: INL inner key must be a column")
			}
			idx := tab.IndexOnColumn(rref.Name)
			if idx == nil {
				return nil, fmt.Errorf("remote: no index on %s.%s for INL", name, rref.Name)
			}
			joined := current.Schema().Concat(innerSchema)
			residuals, remaining := partitionResolvable(rest, joined)
			// Inner single-table conjuncts also become residuals.
			residuals = append(residuals, perTable[name]...)
			current = &exec.IndexNLJoin{
				Outer:    current,
				Inner:    tab,
				Index:    idx,
				InnerAs:  name,
				OuterKey: lk,
				Residual: sqlparser.JoinConjuncts(residuals),
			}
			cross = remaining
		case joinNL:
			if hasKey {
				// Let hash/INL cover keyed joins; NL duplicates them with
				// strictly worse cost, so reject to prune the space.
				return nil, fmt.Errorf("remote: NL join pruned when equi key exists")
			}
			right := leaves[name]
			joined := current.Schema().Concat(right.Schema())
			preds, remaining := partitionResolvable(cross, joined)
			current = &exec.NestedLoopJoin{Outer: current, Inner: right, Pred: sqlparser.JoinConjuncts(preds)}
			cross = remaining
		}
	}
	if len(cross) > 0 {
		current = &exec.Filter{Input: current, Pred: sqlparser.JoinConjuncts(cross)}
	}
	return exec.BuildTop(stmt, current)
}

func dropTrue(list []sqlparser.Expr) []sqlparser.Expr {
	out := list[:0]
	for _, e := range list {
		if lit, ok := e.(*sqlparser.Literal); ok && lit.Val.Bool() {
			continue
		}
		out = append(out, e)
	}
	return out
}

func resolvesAll(e sqlparser.Expr, schema interface {
	ColumnIndex(table, name string) (int, error)
}) bool {
	for _, ref := range sqlparser.CollectColumnRefs(e, nil) {
		if _, err := schema.ColumnIndex(ref.Table, ref.Name); err != nil {
			return false
		}
	}
	return true
}

func partitionResolvable(list []sqlparser.Expr, schema interface {
	ColumnIndex(table, name string) (int, error)
}) (resolvable, remaining []sqlparser.Expr) {
	for _, c := range list {
		if resolvesAll(c, schema) {
			resolvable = append(resolvable, c)
		} else {
			remaining = append(remaining, c)
		}
	}
	return resolvable, remaining
}

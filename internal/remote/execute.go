package remote

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/exec"
	"repro/internal/exec/colbatch"
	"repro/internal/simclock"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
	"repro/internal/telemetry"
)

// Result is the outcome of executing a plan at the server.
type Result struct {
	// Rel is the materialized fragment result. Nil when the columnar wire
	// protocol carried the result: then Col is authoritative and no row form
	// was ever boxed on the server.
	Rel *sqltypes.Relation
	// Col is the columnar form of the same result when the server executed
	// vectorized; nil on the row engine. Col.ToRelation() row-equals Rel.
	Col *colbatch.Batch
	// ServiceTime is the simulated time the server spent, including load
	// effects and queueing — the "observed cost" QCC learns from.
	ServiceTime simclock.Time
	// Resources is the true resource consumption (for diagnostics).
	Resources exec.Resources
}

// RowCount returns the result cardinality regardless of which form (rows or
// columns) carries it.
func (r *Result) RowCount() int {
	if r.Rel != nil {
		return len(r.Rel.Rows)
	}
	if r.Col != nil {
		return r.Col.Len()
	}
	return 0
}

// Schema returns the result schema from whichever form carries it.
func (r *Result) Schema() *sqltypes.Schema {
	if r.Rel != nil {
		return r.Rel.Schema
	}
	if r.Col != nil {
		return r.Col.Schema
	}
	return nil
}

// runPlan is the shared execution body behind ExecutePlan and OpenPlan: it
// fails when the context is cancelled, when the server is down, when failure
// injection is armed, or when the plan is bound to a different server, then
// executes the plan and observes its full service time under current load.
// wire selects the columnar wire protocol: the result then stays columnar
// (Rel nil) and is never boxed into rows on the server.
func (s *Server) runPlan(ctx context.Context, p *Plan, wire bool) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.ServerID != s.id {
		return nil, fmt.Errorf("remote: plan bound to %s executed on %s", p.ServerID, s.id)
	}
	if s.Down() {
		return nil, &ErrServerDown{ID: s.id}
	}
	s.mu.Lock()
	if s.failNext > 0 {
		s.failNext--
		s.mu.Unlock()
		return nil, &ErrServerFailure{ID: s.id}
	}
	s.executed++
	s.mu.Unlock()

	ectx := &exec.Context{}
	if s.vectorized.Load() {
		col, err := exec.ExecuteVectorized(p.Root, ectx)
		if err != nil {
			return nil, fmt.Errorf("remote: executing on %s: %w", s.id, err)
		}
		// WireSize equals the materialized relation's ByteSize, so the load
		// model and every downstream network draw observe identical bytes.
		ectx.Res.OutBytes = col.WireSize()
		tel := s.telemetry()
		tel.Active().Counter("exec.vectorized", s.id).Inc()
		tel.Active().Histogram("exec.batch_rows", s.id, nil).Observe(float64(col.Len()))
		res := &Result{
			Col:         col,
			ServiceTime: s.ObserveAccess(ectx.Res, p.Tables),
			Resources:   ectx.Res,
		}
		if !wire {
			res.Rel = col.ToRelation()
		}
		return res, nil
	}
	rel, err := p.Root.Execute(ectx)
	if err != nil {
		return nil, fmt.Errorf("remote: executing on %s: %w", s.id, err)
	}
	ectx.Res.OutBytes = rel.ByteSize()
	return &Result{
		Rel:         rel,
		ServiceTime: s.ObserveAccess(ectx.Res, p.Tables),
		Resources:   ectx.Res,
	}, nil
}

// ExecutePlan runs a previously-explained plan monolithically, emitting the
// remote.exec span itself. The streaming path (OpenPlan) leaves span
// emission to the wrapper, which interleaves it with batch transfers.
func (s *Server) ExecutePlan(ctx context.Context, p *Plan) (*Result, error) {
	res, err := s.runPlan(ctx, p, false)
	if err != nil {
		return nil, err
	}
	telemetry.SpanFrom(ctx).Emit("remote.exec", telemetry.LayerRemote, s.id, res.ServiceTime).
		SetAttr("plan", p.Signature)
	return res, nil
}

// ExecuteSQL explains and executes the cheapest plan — the path used by
// availability daemons and ad-hoc probes.
func (s *Server) ExecuteSQL(ctx context.Context, sql string) (*Result, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	plans, err := s.Explain(stmt)
	if err != nil {
		return nil, err
	}
	return s.ExecutePlan(ctx, plans[0])
}

// Probe performs the availability daemon's lightweight health check. It
// touches the catalog only; the returned time reflects current queueing.
func (s *Server) Probe(ctx context.Context) (simclock.Time, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if s.Down() {
		return 0, &ErrServerDown{ID: s.id}
	}
	res := exec.Resources{CPUOps: 10, CachedPages: 2}
	return s.Observe(res), nil
}

// ApplyUpdateBurst mutates n randomly-chosen rows of the named table
// (seeded), dirtying pages and drifting statistics — the paper's "servers
// are hit with a heavy update load" made concrete. It does not by itself
// change the load level; callers combine it with SetLoadLevel.
func (s *Server) ApplyUpdateBurst(table string, n int, seed int64) error {
	tab := s.Table(table)
	if tab == nil {
		return fmt.Errorf("remote: server %s has no table %q", s.id, table)
	}
	if tab.RowCount() == 0 {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	numeric := -1
	for i, c := range tab.Schema().Columns {
		if c.Type == sqltypes.KindFloat {
			numeric = i
			break
		}
	}
	if numeric < 0 {
		for i, c := range tab.Schema().Columns {
			if c.Type == sqltypes.KindInt && i > 0 {
				numeric = i
				break
			}
		}
	}
	if numeric < 0 {
		return fmt.Errorf("remote: table %q has no updatable column", table)
	}
	kind := tab.Schema().Columns[numeric].Type
	for i := 0; i < n; i++ {
		row := r.Intn(tab.RowCount())
		var v sqltypes.Value
		if kind == sqltypes.KindFloat {
			v = sqltypes.NewFloat(r.Float64() * 10000)
		} else {
			v = sqltypes.NewInt(r.Int63n(10000))
		}
		if err := tab.UpdateAt(row, numeric, v); err != nil {
			return err
		}
	}
	return nil
}

package remote

import (
	"container/list"
	"sync"

	"repro/internal/sqlparser"
)

// planCache is the server's statement cache (DB2's package cache): plan
// enumeration for a statement is reused across compilations as long as every
// referenced table is unchanged. Entries are keyed by the EXACT statement
// text: parameter values legitimately change selectivities, plan choices and
// estimates, and estimates are what the federation routes on.
//
// Cached entries hold the enumerated plans; estimates inside them were
// computed against the table versions recorded at insert time, so any
// mutation (update bursts, replication) invalidates the entry.
//
// Eviction is LRU: a lookup hit refreshes the entry's recency, so a hot
// statement survives a sweep of one-off statements that would have rolled a
// FIFO cache over.
type planCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	// lru orders entries most-recently-used first.
	lru       *list.List
	hits      int64
	misses    int64
	evictions int64
	// capacity bounds the cache (default 256).
	capacity int
}

type planCacheEntry struct {
	key   string
	plans []*Plan
	// versions snapshots each referenced table's mutation counter.
	versions map[string]int64
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &planCache{entries: map[string]*list.Element{}, lru: list.New(), capacity: capacity}
}

// lookup returns cached plans when fresh. The caller must hold no server
// locks.
func (pc *planCache) lookup(key string, currentVersions map[string]int64) []*Plan {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.entries[key]
	if !ok {
		pc.misses++
		return nil
	}
	e := el.Value.(*planCacheEntry)
	for table, v := range e.versions {
		if currentVersions[table] != v {
			pc.lru.Remove(el)
			delete(pc.entries, key)
			pc.misses++
			return nil
		}
	}
	pc.lru.MoveToFront(el)
	pc.hits++
	return e.plans
}

func (pc *planCache) insert(key string, plans []*Plan, versions map[string]int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, exists := pc.entries[key]; exists {
		e := el.Value.(*planCacheEntry)
		e.plans, e.versions = plans, versions
		pc.lru.MoveToFront(el)
		return
	}
	pc.entries[key] = pc.lru.PushFront(&planCacheEntry{key: key, plans: plans, versions: versions})
	for pc.lru.Len() > pc.capacity {
		oldest := pc.lru.Back()
		pc.lru.Remove(oldest)
		delete(pc.entries, oldest.Value.(*planCacheEntry).key)
		pc.evictions++
	}
}

func (pc *planCache) clear() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.entries = map[string]*list.Element{}
	pc.lru.Init()
}

// stats returns hit/miss counters.
func (pc *planCache) stats() (hits, misses int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses
}

// StatementCacheStats is a snapshot of a server's statement-cache counters.
type StatementCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
}

// PlanCacheStats reports the server's statement-cache hit/miss counters.
func (s *Server) PlanCacheStats() (hits, misses int64) {
	return s.planCache.stats()
}

// StatementCacheStats reports the full statement-cache counter snapshot,
// including LRU evictions and the live entry count.
func (s *Server) StatementCacheStats() StatementCacheStats {
	pc := s.planCache
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return StatementCacheStats{
		Hits:      pc.hits,
		Misses:    pc.misses,
		Evictions: pc.evictions,
		Entries:   len(pc.entries),
	}
}

// ResetPlanCache drops every cached statement (counters are retained) —
// benchmark and test hook for cold-compile measurements.
func (s *Server) ResetPlanCache() { s.planCache.clear() }

// cacheKeyAndVersions derives the cache key and the referenced tables'
// current versions for a statement; ok is false when a table is missing.
func (s *Server) cacheKeyAndVersions(stmt *sqlparser.SelectStmt) (string, map[string]int64, bool) {
	key := stmt.String()
	versions := map[string]int64{}
	for _, tr := range stmt.Tables() {
		tab := s.Table(tr.Name)
		if tab == nil {
			return "", nil, false
		}
		versions[tr.Name] = tab.Version()
	}
	return key, versions, true
}

// TableVersions snapshots the current mutation counters of the named tables;
// ok is false when the server does not host one of them. The federated plan
// cache compares these snapshots against the versions recorded when a
// candidate plan was explained to decide whether the cached compilation is
// still valid.
func (s *Server) TableVersions(tables []string) (map[string]int64, bool) {
	out := make(map[string]int64, len(tables))
	for _, name := range tables {
		tab := s.Table(name)
		if tab == nil {
			return nil, false
		}
		out[name] = tab.Version()
	}
	return out, true
}

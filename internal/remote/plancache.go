package remote

import (
	"sync"

	"repro/internal/sqlparser"
)

// planCache is the server's statement cache (DB2's package cache): plan
// enumeration for a statement is reused across compilations as long as every
// referenced table is unchanged. Entries are keyed by the EXACT statement
// text: parameter values legitimately change selectivities, plan choices and
// estimates, and estimates are what the federation routes on.
//
// Cached entries hold the enumerated plans; estimates inside them were
// computed against the table versions recorded at insert time, so any
// mutation (update bursts, replication) invalidates the entry.
type planCache struct {
	mu      sync.Mutex
	entries map[string]*planCacheEntry
	hits    int64
	misses  int64
	// capacity bounds the cache (simple FIFO eviction; default 256).
	capacity int
	order    []string
}

type planCacheEntry struct {
	plans []*Plan
	// versions snapshots each referenced table's mutation counter.
	versions map[string]int64
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &planCache{entries: map[string]*planCacheEntry{}, capacity: capacity}
}

// lookup returns cached plans when fresh. The caller must hold no server
// locks.
func (pc *planCache) lookup(key string, currentVersions map[string]int64) []*Plan {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e, ok := pc.entries[key]
	if !ok {
		pc.misses++
		return nil
	}
	for table, v := range e.versions {
		if currentVersions[table] != v {
			delete(pc.entries, key)
			pc.misses++
			return nil
		}
	}
	pc.hits++
	return e.plans
}

func (pc *planCache) insert(key string, plans []*Plan, versions map[string]int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if _, exists := pc.entries[key]; !exists {
		pc.order = append(pc.order, key)
		if len(pc.order) > pc.capacity {
			evict := pc.order[0]
			pc.order = pc.order[1:]
			delete(pc.entries, evict)
		}
	}
	pc.entries[key] = &planCacheEntry{plans: plans, versions: versions}
}

// stats returns hit/miss counters.
func (pc *planCache) stats() (hits, misses int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses
}

// PlanCacheStats reports the server's statement-cache hit/miss counters.
func (s *Server) PlanCacheStats() (hits, misses int64) {
	return s.planCache.stats()
}

// cacheKeyAndVersions derives the cache key and the referenced tables'
// current versions for a statement; ok is false when a table is missing.
func (s *Server) cacheKeyAndVersions(stmt *sqlparser.SelectStmt) (string, map[string]int64, bool) {
	key := stmt.String()
	versions := map[string]int64{}
	for _, tr := range stmt.Tables() {
		tab := s.Table(tr.Name)
		if tab == nil {
			return "", nil, false
		}
		versions[tr.Name] = tab.Version()
	}
	return key, versions, true
}

// Package remote implements the simulated remote DBMS servers of the
// federation: per-server storage catalogs, a local plan enumerator that
// returns multiple candidate plans with estimated costs (the paper's
// "possible supported execution plans and their estimated costs"), a
// timeron-style cost model, a physical executor, and a mechanistic load
// model that converts a plan's true resource consumption into simulated
// response time under the server's current background load.
//
// The essential property reproduced here is the paper's premise: a server's
// ESTIMATED cost is computed from statistics and hardware characteristics
// alone, while its OBSERVED response time additionally depends on load and
// buffer-pool health — a gap the federation's optimizer cannot see and the
// Query Cost Calibrator learns.
package remote

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/simclock"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// HardwareProfile describes the physical characteristics that a DBA would
// register for a source and that the local optimizer costs plans with.
type HardwareProfile struct {
	// CPUOpsPerMS is tuple-processing throughput.
	CPUOpsPerMS float64
	// IOPagesPerMS is sequential IO throughput.
	IOPagesPerMS float64
	// CachedPagesPerMS is buffer-pool page touch throughput.
	CachedPagesPerMS float64
	// CacheMissFrac is the baseline fraction of cache-friendly page touches
	// that miss the buffer pool and go to random IO even on a calm server —
	// a property of the machine's memory size that the local optimizer DOES
	// know and cost plans with (it is why small-memory servers avoid
	// index-nested-loop plans).
	CacheMissFrac float64
	// FixedOverheadMS is the per-request setup cost (parse, catalog, plan
	// activation) — the first-tuple cost floor.
	FixedOverheadMS float64
}

// ContentionProfile describes how the server degrades under background load.
// These parameters are NOT visible to any optimizer; they only shape
// observed response times.
type ContentionProfile struct {
	// CPU inflates CPU time by load·CPU.
	CPU float64
	// IO inflates sequential IO time by load·IO.
	IO float64
	// BufferChurn converts cached page touches into real IO: the spill
	// fraction is min(1, load·BufferChurn). Small buffer pools mean high
	// churn — the configured weakness of the fast server S3.
	BufferChurn float64
	// QueueAmp amplifies total service time by (1 + load·QueueAmp),
	// modelling queueing behind the update workload.
	QueueAmp float64
}

// Config configures a Server.
type Config struct {
	ID         string
	Hardware   HardwareProfile
	Contention ContentionProfile
	// MaxPlans bounds how many candidate plans Explain returns (default 2,
	// matching the paper's examples).
	MaxPlans int
	// InducedLoad configures query-induced load (hot-spotting): the load
	// the query workload itself places on the server, on top of the
	// background update load. Zero disables it.
	InducedLoad InducedLoadProfile
	// Cache configures per-table buffer-pool residency tracking (replica
	// cache locality). Zero disables it: execution is then bit-identical to
	// the residency-less engine.
	Cache CacheProfile
}

// CacheProfile models per-table buffer-pool residency: each execution warms
// the tables it touches toward full residency and cools the rest (churn),
// and cache-friendly page touches against cold tables spill to random IO.
// The residency estimate is exposed through CacheResidency so a replica
// router can score hot fragments toward the servers whose buffer pools
// already hold them. Like ContentionProfile, none of this is visible to any
// optimizer — EstimateTime stays residency-blind, so the estimate/observed
// gap is QCC's to learn. A zero profile disables tracking entirely.
type CacheProfile struct {
	// ColdMissFrac is the extra miss fraction a fully-cold table adds to
	// cache-friendly page touches (scaled by 1-residency). 0 disables the
	// whole cache model.
	ColdMissFrac float64
	// WarmRate moves a touched table's residency toward 1 per execution
	// (default 0.5 when the model is enabled).
	WarmRate float64
	// CoolRate decays untouched tables' residency per execution (default
	// 0.1 when the model is enabled).
	CoolRate float64
	// PoolTables is the buffer pool's capacity in table-equivalents: when
	// the summed residency exceeds it, every table is evicted
	// proportionally (default 1.5 when the model is enabled). This is what
	// makes affinity a real trade-off — a server cannot keep every
	// replicated table warm at once.
	PoolTables float64
}

func (c *CacheProfile) fill() {
	if c.ColdMissFrac <= 0 {
		return
	}
	if c.WarmRate <= 0 {
		c.WarmRate = 0.5
	}
	if c.CoolRate <= 0 {
		c.CoolRate = 0.1
	}
	if c.PoolTables <= 0 {
		c.PoolTables = 1.5
	}
}

// InducedLoadProfile makes servers heat up under their own query traffic —
// the §4 premise that "selecting a low cost global query plan and applying
// this plan to all similar queries ... tends to overload a small group of
// servers". Service time spent within the trailing window raises the
// server's effective load.
type InducedLoadProfile struct {
	// WindowMS is the trailing accounting window (0 disables induced load).
	WindowMS float64
	// Gain converts window utilization (service ms per window ms) into
	// load-level points.
	Gain float64
}

// Server is one simulated remote DBMS.
type Server struct {
	id         string
	hw         HardwareProfile
	contention ContentionProfile
	maxPlans   int

	mu     sync.RWMutex
	tables map[string]*storage.Table
	load   float64 // background load level in [0,1]
	down   bool
	// failNext, when positive, makes the next executions fail (error
	// injection for reliability experiments).
	failNext int
	// executed counts fragment executions, for tests and reports.
	executed int64

	// planCache is the statement cache (see plancache.go).
	planCache *planCache

	// tel is the observability subsystem (nil/disabled is a no-op).
	tel *telemetry.Telemetry

	// vectorized selects the columnar execution engine for this server's
	// fragments. Either engine produces bit-identical results and charges
	// (see exec.ExecuteVectorized); the toggle only changes wall-clock cost.
	vectorized atomic.Bool

	// wireColumnar ships streamed fragment results as typed column batches
	// with the compact colbatch wire encoding instead of boxed rows. It only
	// takes effect when vectorized is also on (the row engine has no columnar
	// result to encode); when off, no encoder runs and the data path is
	// byte-for-byte the PR 8 engine.
	wireColumnar atomic.Bool

	// induced-load state: recent service-time samples within the window.
	induced InducedLoadProfile
	clock   *simclock.Clock
	work    []workSample

	// cache-residency state: per-table buffer-pool residency in [0,1].
	// Nil/zero profile means the model is disabled and resident stays empty.
	cache    CacheProfile
	resident map[string]float64
}

// workSample is one completed execution's service time.
type workSample struct {
	at        simclock.Time
	serviceMS float64
}

// NewServer builds a server from config.
func NewServer(cfg Config) *Server {
	if cfg.MaxPlans <= 0 {
		cfg.MaxPlans = 2
	}
	cfg.Cache.fill()
	return &Server{
		id:         cfg.ID,
		hw:         cfg.Hardware,
		contention: cfg.Contention,
		maxPlans:   cfg.MaxPlans,
		tables:     map[string]*storage.Table{},
		planCache:  newPlanCache(0),
		induced:    cfg.InducedLoad,
		cache:      cfg.Cache,
		resident:   map[string]float64{},
	}
}

// SetTelemetry installs the observability subsystem: statement-cache lookups
// feed per-server hit/miss counters. Nil disables.
func (s *Server) SetTelemetry(t *telemetry.Telemetry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tel = t
}

func (s *Server) telemetry() *telemetry.Telemetry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tel
}

// SetVectorized switches this server's executor between the row-at-a-time
// and columnar engines.
func (s *Server) SetVectorized(on bool) { s.vectorized.Store(on) }

// Vectorized reports whether the columnar engine is active.
func (s *Server) Vectorized() bool { return s.vectorized.Load() }

// SetColumnarWire switches streamed fragment results between boxed rows and
// the typed columnar wire encoding. Effective only while the server is also
// vectorized; the flag is remembered either way.
func (s *Server) SetColumnarWire(on bool) { s.wireColumnar.Store(on) }

// ColumnarWire reports whether the columnar wire protocol is enabled (it
// still requires Vectorized() to carry batches).
func (s *Server) ColumnarWire() bool { return s.wireColumnar.Load() }

// ID returns the server identifier.
func (s *Server) ID() string { return s.id }

// Hardware returns the hardware profile.
func (s *Server) Hardware() HardwareProfile { return s.hw }

// Config reconstructs the server's configuration — used by the simulated
// federated system to build statistics-only clones.
func (s *Server) Config() Config {
	return Config{ID: s.id, Hardware: s.hw, Contention: s.contention, MaxPlans: s.maxPlans, InducedLoad: s.induced, Cache: s.cache}
}

// AddTable registers a table.
func (s *Server) AddTable(t *storage.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[t.Name()] = t
}

// Table returns the named table or nil.
func (s *Server) Table(name string) *storage.Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[name]
}

// Tables lists table names, sorted.
func (s *Server) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StatsProvider returns a stats provider resolving the aliases in stmt to
// this server's tables.
func (s *Server) statsProviderFor(aliasToTable map[string]string) stats.StatsProvider {
	m := stats.MapProvider{}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for alias, table := range aliasToTable {
		if t := s.tables[table]; t != nil {
			m[alias] = t.Stats()
		}
	}
	return m
}

// SetLoadLevel sets the background load in [0,1] (clamped). The paper's
// experiments drive this with a heavy update workload; experiments here may
// also set it directly.
func (s *Server) SetLoadLevel(load float64) {
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.load = load
}

// LoadLevel returns the current background load (excluding induced load).
func (s *Server) LoadLevel() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.load
}

// SetClock attaches the virtual clock; required for induced-load accounting.
func (s *Server) SetClock(c *simclock.Clock) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock = c
}

// EffectiveLoad returns background load plus query-induced load, clamped to
// [0,1]. Without a clock or an induced-load profile it equals LoadLevel.
func (s *Server) EffectiveLoad() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.effectiveLoadLocked()
}

func (s *Server) effectiveLoadLocked() float64 {
	load := s.load
	if s.induced.WindowMS > 0 && s.clock != nil {
		now := s.clock.Now()
		cut := 0
		for cut < len(s.work) && float64(now-s.work[cut].at) > s.induced.WindowMS {
			cut++
		}
		if cut > 0 {
			s.work = s.work[cut:]
		}
		var sum float64
		for _, w := range s.work {
			sum += w.serviceMS
		}
		load += s.induced.Gain * sum / s.induced.WindowMS
	}
	if load > 1 {
		load = 1
	}
	return load
}

// recordWork notes a completed execution's service time for induced load.
func (s *Server) recordWork(serviceMS float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.induced.WindowMS <= 0 || s.clock == nil {
		return
	}
	s.work = append(s.work, workSample{at: s.clock.Now(), serviceMS: serviceMS})
}

// SetDown marks the server unavailable; executions and probes fail.
func (s *Server) SetDown(down bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.down = down
}

// Down reports whether the server is unavailable.
func (s *Server) Down() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.down
}

// InjectFailures makes the next n executions return ErrServerFailure,
// without marking the server down — a flaky source (§3.3's reliability).
func (s *Server) InjectFailures(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failNext = n
}

// Executed returns the number of fragment executions served.
func (s *Server) Executed() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.executed
}

// ErrServerDown reports an unavailable server.
type ErrServerDown struct{ ID string }

// Error implements error.
func (e *ErrServerDown) Error() string { return fmt.Sprintf("remote: server %s is down", e.ID) }

// ErrServerFailure reports a transient execution failure.
type ErrServerFailure struct{ ID string }

// Error implements error.
func (e *ErrServerFailure) Error() string {
	return fmt.Sprintf("remote: server %s failed to execute fragment", e.ID)
}

// serviceTime converts consumed resources into simulated milliseconds under
// the given load level.
func (s *Server) serviceTime(res exec.Resources, load float64) simclock.Time {
	return s.serviceTimeSpill(res, load, 0, 0)
}

// serviceTimeSpill is serviceTime with the cache-residency model's two
// adjustments: extraSpill is the cold-table penalty (cache-friendly touches
// of non-resident tables fall through to random IO, on top of churn) and
// ioWarm is the warm-table bonus (a resident table serves that fraction of
// its sequential IO from the buffer pool). Both are zero outside
// ObserveAccess, so servers without a CacheProfile are untouched.
func (s *Server) serviceTimeSpill(res exec.Resources, load, extraSpill, ioWarm float64) simclock.Time {
	hw, c := s.hw, s.contention
	cpuRate := hw.CPUOpsPerMS / (1 + load*c.CPU)
	ioRate := hw.IOPagesPerMS / (1 + load*c.IO)
	// Cache-friendly page touches split between the buffer pool and random
	// IO. The baseline miss fraction is a known hardware property; the
	// update-load churn on top of it is NOT visible to any optimizer.
	spill := hw.CacheMissFrac + load*c.BufferChurn + extraSpill
	if spill > 1 {
		spill = 1
	}
	if ioWarm < 0 {
		ioWarm = 0
	} else if ioWarm > 1 {
		ioWarm = 1
	}
	t := hw.FixedOverheadMS
	if cpuRate > 0 {
		t += res.CPUOps / cpuRate
	}
	if ioRate > 0 {
		t += res.IOPages * (1 - ioWarm) / ioRate
	}
	if hw.CachedPagesPerMS > 0 {
		t += res.IOPages * ioWarm / hw.CachedPagesPerMS
	}
	if hw.CachedPagesPerMS > 0 {
		t += res.CachedPages * (1 - spill) / hw.CachedPagesPerMS
	}
	if ioRate > 0 {
		t += res.CachedPages * spill / ioRate
	}
	t *= 1 + load*c.QueueAmp
	return simclock.Time(t)
}

// EstimateTime is the optimizer-visible cost of consuming the given
// resources: the same formulas with zero load. It is expressed in the same
// millisecond units as observed service time so that, in a calm system, the
// calibration factor is ≈ 1.
func (s *Server) EstimateTime(res exec.Resources) float64 {
	return float64(s.serviceTime(res, 0))
}

// Observe converts resources into observed service time at the CURRENT
// effective load (background + induced) and accounts the work toward future
// induced load.
func (s *Server) Observe(res exec.Resources) simclock.Time {
	t := s.serviceTime(res, s.EffectiveLoad())
	s.recordWork(float64(t))
	return t
}

// ObserveAccess is Observe plus the cache-residency model: the execution's
// cache-friendly page touches pay an extra spill fraction proportional to how
// cold the touched tables are, the touched tables warm toward full residency,
// and every other table cools (buffer churn). With a zero CacheProfile it is
// exactly Observe — no extra spill, no residency state mutated — preserving
// bit-identity for residency-less configurations.
func (s *Server) ObserveAccess(res exec.Resources, tables []string) simclock.Time {
	if s.cache.ColdMissFrac <= 0 || len(tables) == 0 {
		return s.Observe(res)
	}
	s.mu.Lock()
	load := s.effectiveLoadLocked()
	var sum float64
	for _, tbl := range tables {
		sum += s.resident[tbl]
	}
	cold := 1 - sum/float64(len(tables))
	// Warm the touched tables, cool the rest.
	touched := map[string]bool{}
	for _, tbl := range tables {
		touched[tbl] = true
		r := s.resident[tbl]
		s.resident[tbl] = r + (1-r)*s.cache.WarmRate
	}
	for tbl, r := range s.resident {
		if !touched[tbl] {
			s.resident[tbl] = r * (1 - s.cache.CoolRate)
		}
	}
	// Capacity: the pool holds at most PoolTables table-equivalents; excess
	// residency evicts every table proportionally.
	var total float64
	for _, r := range s.resident {
		total += r
	}
	if total > s.cache.PoolTables {
		scale := s.cache.PoolTables / total
		for tbl, r := range s.resident {
			s.resident[tbl] = r * scale
		}
	}
	s.mu.Unlock()
	// Cold tables push cache-friendly touches to random IO; warm tables
	// serve the symmetric fraction of their sequential IO from the pool.
	t := s.serviceTimeSpill(res, load, s.cache.ColdMissFrac*cold, s.cache.ColdMissFrac*(1-cold))
	s.recordWork(float64(t))
	return t
}

// CacheResidency reports the buffer-pool residency estimate for a table in
// [0,1]. With the cache model disabled (or the table never touched) it
// returns 0 — a uniform, non-discriminating signal.
func (s *Server) CacheResidency(table string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.resident[table]
}

package remote

import (
	"fmt"

	"repro/internal/exec"
)

// CostEstimate is the cost information a wrapper returns for a candidate
// plan. The paper's II cost parameters are first tuple cost, next tuple
// cost, and cardinality, with total cost = first + next·card; we expose all
// four (§3: "QCC calibrates first tuple cost, next tuple cost, and total
// cost").
type CostEstimate struct {
	// TotalMS is the estimated total execution time in milliseconds.
	TotalMS float64
	// FirstTupleMS is the estimated time to the first result tuple.
	FirstTupleMS float64
	// NextTupleMS is the estimated per-additional-tuple time.
	NextTupleMS float64
	// Card is the estimated result cardinality.
	Card int64
	// OutBytes is the estimated result volume for the network model.
	OutBytes int
}

// String renders the estimate.
func (c CostEstimate) String() string {
	return fmt.Sprintf("total=%.2fms first=%.2fms next=%.4fms card=%d out=%dB",
		c.TotalMS, c.FirstTupleMS, c.NextTupleMS, c.Card, c.OutBytes)
}

// Plan is a candidate execution plan for a fragment on a specific server:
// the paper's "execution descriptor". The operator tree is bound to the
// server's tables; Signature is server-independent, so identical physical
// plans on replicas share a signature (§4.1 clusters exchangeable plans by
// exactly this identity).
type Plan struct {
	// ServerID names the server the plan is bound to.
	ServerID string
	// SQL is the fragment statement text.
	SQL string
	// Root is the bound physical operator tree.
	Root exec.Operator
	// Signature is the normalized physical plan text (ExplainTree of Root).
	Signature string
	// Est is the optimizer-visible estimate (zero-load).
	Est CostEstimate
	// Tables lists the physical tables the plan reads (sorted, deduplicated)
	// — the cache-residency model's unit of buffer-pool accounting.
	Tables []string
}

// String renders the plan header.
func (p *Plan) String() string {
	return fmt.Sprintf("plan@%s sig=%q %s", p.ServerID, p.Signature, p.Est)
}

// Explain renders the full operator tree.
func (p *Plan) Explain() string { return exec.ExplainTree(p.Root) }

package wrapper

import (
	"context"
	"strconv"
	"strings"

	"repro/internal/exec/colbatch"
	"repro/internal/network"
	"repro/internal/remote"
	"repro/internal/simclock"
	"repro/internal/sqltypes"
	"repro/internal/telemetry"
)

// requestEnvelopeBytes is the wire overhead of shipping an execution
// descriptor (framing, auth, cursor state) on top of the SQL text. The
// SAME constant prices the request in Explain's static estimate and sizes
// it in the actual transfer, so calibration never absorbs a bookkeeping
// skew we introduced ourselves.
const requestEnvelopeBytes = 256

// StreamBatch is one result batch as observed arriving at the integrator.
type StreamBatch struct {
	// Rel holds the batch rows.
	Rel *sqltypes.Relation
	// Col is the same rows in columnar form when the remote executed
	// vectorized; nil otherwise. Integrators that can merge columnar batches
	// use it to skip the row round trip.
	Col *colbatch.Batch
	// ArriveTime is the virtual time since fragment start at which this
	// batch finished arriving — batch k overlaps its transfer with the
	// production of batch k+1, so arrivals advance by
	// max(produce, transfer) rather than their sum.
	ArriveTime simclock.Time
}

// StreamOutcome summarizes a drained stream.
type StreamOutcome struct {
	// Result is the remote result (all rows + full server-side service time).
	Result *remote.Result
	// ResponseTime is the end-to-end fragment time: request transfer + first
	// batch production + the pipelined tail.
	ResponseTime simclock.Time
	// FirstRowTime is when the first batch finished arriving — the paper's
	// first-tuple cost made observable end to end.
	FirstRowTime simclock.Time
	// WireBytes is the total encoded bytes the result link carried when the
	// columnar wire protocol was active; 0 on the row protocol.
	WireBytes int
}

// ResultStream is an open fragment result being shipped batch by batch.
type ResultStream interface {
	// Schema returns the result schema.
	Schema() *sqltypes.Schema
	// Next returns the next arriving batch, or nil when the stream is
	// exhausted. The exhausting call finalizes timing and enforces the
	// dispatch deadline, so it can fail even after all batches arrived.
	Next(ctx context.Context) (*StreamBatch, error)
	// Outcome returns the stream summary; valid once Next returned nil.
	Outcome() *StreamOutcome
}

// netStream replays a remote cursor over the network on virtual time,
// implementing the pipeline recurrence: batch k+1 is produced while batch k
// is in flight, so each arrival advances by the slower of the two.
type netStream struct {
	server    *remote.Server
	topo      *network.Topology
	cur       *remote.Cursor
	wsp       *telemetry.Span
	batchRows int

	produced simclock.Time // request + cumulative production time
	linkFree simclock.Time // when the wire finishes serializing the previous batch
	arrive   simclock.Time // arrival time of the latest batch
	emitted  simclock.Time // span-cursor position (sum of emitted sub-spans)
	firstRow simclock.Time
	seen     int
	done     bool
	outcome  *StreamOutcome

	// Columnar-wire accounting: encoded vs row-model bytes actually shipped,
	// and the first batch's per-column encoding labels for the span.
	wireBytes int
	rawBytes  int
	colEnc    []string
}

// openStream ships the execution descriptor and opens the remote cursor.
// batchRows <= 0 reproduces monolithic execution exactly: one batch, the
// same Transfer calls, and the same span sequence as the historical
// store-and-forward path.
func openStream(ctx context.Context, server *remote.Server, topo *network.Topology, plan *remote.Plan, batchRows int) (*netStream, error) {
	wsp := telemetry.SpanFrom(ctx).Child("wrapper.execute", telemetry.LayerWrapper, server.ID())
	if wsp != nil {
		ctx = telemetry.ContextWithSpan(ctx, wsp)
	}
	reqTime, err := topo.Transfer(ctx, server.ID(), len(plan.SQL)+requestEnvelopeBytes)
	if err != nil {
		wsp.SetAttr("error", err.Error())
		return nil, err
	}
	wsp.Emit("network.send", telemetry.LayerNetwork, server.ID(), reqTime)
	cur, err := server.OpenPlan(ctx, plan, batchRows)
	if err != nil {
		wsp.SetAttr("error", err.Error())
		return nil, err
	}
	// remote.exec covers production of the FIRST batch; later batches
	// produce concurrently with transfers and show up inside the recv spans.
	rsp := wsp.Emit("remote.exec", telemetry.LayerRemote, server.ID(), cur.FirstReady())
	rsp.SetAttr("plan", plan.Signature)
	if batchRows > 0 {
		if b := cur.Blocking(); b != "" {
			rsp.SetAttr("blocking", b)
		}
	}
	pos := reqTime + cur.FirstReady()
	return &netStream{
		server:    server,
		topo:      topo,
		cur:       cur,
		wsp:       wsp,
		batchRows: batchRows,
		produced:  pos,
		linkFree:  pos,
		arrive:    pos,
		emitted:   pos,
	}, nil
}

// Schema implements ResultStream.
func (s *netStream) Schema() *sqltypes.Schema { return s.cur.Result().Schema() }

// Next implements ResultStream.
func (s *netStream) Next(ctx context.Context) (*StreamBatch, error) {
	if s.done {
		return nil, nil
	}
	b := s.cur.NextBatch()
	if b != nil && b.Enc != nil {
		s.wireBytes += b.Enc.WireBytes()
		s.rawBytes += b.Col.WireSize()
		if s.colEnc == nil {
			s.colEnc = b.Enc.ColEnc
		}
	}
	if b == nil {
		s.done = true
		s.outcome = &StreamOutcome{
			Result:       s.cur.Result(),
			ResponseTime: s.arrive,
			FirstRowTime: s.firstRow,
			WireBytes:    s.wireBytes,
		}
		if s.wireBytes > 0 {
			s.wsp.SetAttr("wire", "columnar")
			s.wsp.SetAttr("wire_bytes", strconv.Itoa(s.wireBytes))
			s.wsp.SetAttr("wire_raw_bytes", strconv.Itoa(s.rawBytes))
			s.wsp.SetAttr("wire_enc", strings.Join(s.colEnc, ","))
		}
		s.wsp.End(s.outcome.ResponseTime)
		if err := simclock.CheckDeadline(ctx, s.outcome.ResponseTime); err != nil {
			s.wsp.SetAttr("error", err.Error())
			return nil, err
		}
		return nil, nil
	}
	if s.batchRows > 0 {
		lat, ser, err := s.topo.TransferBatch(ctx, s.server.ID(), batchWireBytes(b))
		if err != nil {
			s.done = true
			s.wsp.SetAttr("error", err.Error())
			return nil, err
		}
		if s.seen > 0 {
			// Production of this batch overlapped the previous transfer.
			s.produced += b.ServiceTime
		}
		// Pipeline recurrence: the wire serializes batches back to back
		// (serialization is serial per link), while each batch's propagation
		// latency overlaps the next batch's send.
		start := s.produced
		if s.linkFree > start {
			start = s.linkFree
		}
		s.linkFree = start + ser
		if a := s.linkFree + lat; a > s.arrive {
			s.arrive = a
		}
	} else {
		xfer, err := s.topo.Transfer(ctx, s.server.ID(), batchWireBytes(b))
		if err != nil {
			s.done = true
			s.wsp.SetAttr("error", err.Error())
			return nil, err
		}
		s.arrive += xfer
	}
	if s.seen == 0 {
		s.firstRow = s.arrive
	}
	s.seen++
	// The recv span absorbs transfer time plus any stall waiting for the
	// batch to be produced, so the sub-span durations telescope exactly to
	// the fragment response time.
	s.wsp.Emit("network.recv", telemetry.LayerNetwork, s.server.ID(), s.arrive-s.emitted)
	s.emitted = s.arrive
	return &StreamBatch{Rel: b.Rel, Col: b.Col, ArriveTime: s.arrive}, nil
}

// batchWireBytes sizes a batch for the network model. Under the columnar
// wire protocol the encoded length is authoritative. Otherwise the columnar
// WireSize is computed from per-column sums (O(1) for fixed-width null-free
// columns) but equals Relation.ByteSize exactly, so every Transfer draw —
// and with it the whole virtual-time schedule — is identical on both
// engines.
func batchWireBytes(b *remote.Batch) int {
	if b.Enc != nil {
		return b.Enc.WireBytes()
	}
	if b.Col != nil {
		return b.Col.WireSize()
	}
	return b.Rel.ByteSize()
}

// Outcome implements ResultStream.
func (s *netStream) Outcome() *StreamOutcome { return s.outcome }

package wrapper

import (
	"context"
	"errors"
	"testing"

	"repro/internal/network"
	"repro/internal/remote"
	"repro/internal/sqlparser"
	"repro/internal/storage"
)

func testSetup(t *testing.T) (*remote.Server, *network.Topology) {
	t.Helper()
	s := remote.NewServer(remote.ProfileS1("S1"))
	for _, g := range storage.SampleSchema(200) {
		tab, err := g.Generate(42)
		if err != nil {
			t.Fatal(err)
		}
		s.AddTable(tab)
	}
	topo := network.NewTopology()
	topo.AddLink("S1", network.NewLink(network.LinkConfig{LatencyMS: 10, BandwidthKBps: 1000}))
	return s, topo
}

func TestRelationalExplainIncludesNetworkEstimate(t *testing.T) {
	s, topo := testSetup(t)
	w := NewRelational(s, topo)
	if w.Kind() != "relational" || w.ServerID() != "S1" {
		t.Fatal("identity")
	}
	stmt := sqlparser.MustParse("SELECT p.p_id FROM parts AS p")
	cands, err := w.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 || !cands[0].CostKnown {
		t.Fatalf("candidates: %+v", cands)
	}
	// The wrapper estimate must exceed the bare server estimate (network).
	bare, err := s.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Plan.Est.TotalMS <= bare[0].Est.TotalMS-1e-9 {
		t.Fatalf("network estimate missing: wrapper %.2f, bare %.2f", cands[0].Plan.Est.TotalMS, bare[0].Est.TotalMS)
	}
}

func TestRelationalExecuteAddsTransferTime(t *testing.T) {
	s, topo := testSetup(t)
	w := NewRelational(s, topo)
	stmt := sqlparser.MustParse("SELECT p.p_id FROM parts AS p WHERE p.p_id < 3")
	cands, err := w.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	out, err := w.Execute(context.Background(), cands[0].Plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Rel.Cardinality() != 3 {
		t.Fatalf("rows: %d", out.Result.Rel.Cardinality())
	}
	if out.ResponseTime <= out.Result.ServiceTime {
		t.Fatalf("response %v must exceed service %v", out.ResponseTime, out.Result.ServiceTime)
	}
}

func TestRelationalPartitionedLink(t *testing.T) {
	s, topo := testSetup(t)
	w := NewRelational(s, topo)
	stmt := sqlparser.MustParse("SELECT * FROM parts LIMIT 1")
	cands, err := w.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	topo.Link("S1").SetDown(true)
	if _, err := w.Explain(stmt); err == nil {
		t.Fatal("explain over partition must fail")
	}
	_, err = w.Execute(context.Background(), cands[0].Plan)
	var pe *network.ErrPartitioned
	if !errors.As(err, &pe) {
		t.Fatalf("execute: want partition error, got %v", err)
	}
	if _, err := w.Probe(context.Background()); err == nil {
		t.Fatal("probe over partition must fail")
	}
}

func TestRelationalProbeReflectsServerState(t *testing.T) {
	s, topo := testSetup(t)
	w := NewRelational(s, topo)
	pt, err := w.Probe(context.Background())
	if err != nil || pt <= 0 {
		t.Fatalf("probe: %v %v", pt, err)
	}
	s.SetDown(true)
	if _, err := w.Probe(context.Background()); err == nil {
		t.Fatal("down server probe must fail")
	}
}

func TestTableSchema(t *testing.T) {
	s, topo := testSetup(t)
	w := NewRelational(s, topo)
	sch, err := w.TableSchema("orders")
	if err != nil || sch.Len() != 5 {
		t.Fatalf("schema: %v %v", sch, err)
	}
	if _, err := w.TableSchema("ghost"); err == nil {
		t.Fatal("unknown table")
	}
}

func TestFileWrapperNoCost(t *testing.T) {
	s, topo := testSetup(t)
	w := NewFile(s, topo)
	if w.Kind() != "file" {
		t.Fatal("kind")
	}
	stmt := sqlparser.MustParse("SELECT p.p_id FROM parts AS p WHERE p.p_id = 3")
	cands, err := w.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("file wrapper should return one candidate: %d", len(cands))
	}
	c := cands[0]
	if c.CostKnown {
		t.Fatal("file wrapper must not know cost")
	}
	if c.Plan.Est.TotalMS != 0 || c.Plan.Est.Card != 0 {
		t.Fatalf("estimate must be zeroed: %+v", c.Plan.Est)
	}
	out, err := w.Execute(context.Background(), c.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Rel.Cardinality() != 1 {
		t.Fatalf("rows: %d", out.Result.Rel.Cardinality())
	}
	if _, err := w.Probe(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.TableSchema("parts"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.TableSchema("nope"); err == nil {
		t.Fatal("unknown table")
	}
}

// Package wrapper implements the federation's wrapper layer: the adapters
// through which the integrator talks to heterogeneous remote sources. The
// relational wrapper forwards fragment statements to a remote DBMS for plan
// enumeration and cost estimation and ships execution descriptors and
// results over the simulated network. The file wrapper models non-relational
// sources that return data locations WITHOUT cost estimates (§1: "for those
// sub-queries that are forwarded to a file wrapper, file paths are returned
// to II without estimated cost") — the case QCC must seed through daemon
// probing.
package wrapper

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/network"
	"repro/internal/remote"
	"repro/internal/simclock"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// Candidate is one plan option a wrapper offers for a fragment.
type Candidate struct {
	// Plan is the execution descriptor. When the candidate has passed
	// through the meta-wrapper, Plan.Est carries the CALIBRATED estimate.
	Plan *remote.Plan
	// RawEst is the wrapper's original (uncalibrated) estimate; identical
	// to Plan.Est until the meta-wrapper calibrates.
	RawEst remote.CostEstimate
	// CostKnown is false for sources (file wrappers) that cannot estimate;
	// Plan.Est is zero in that case and QCC must supply a seed estimate.
	CostKnown bool
	// Versions snapshots the referenced tables' mutation counters as of this
	// explain (taken BEFORE plan enumeration, so a concurrent mutation makes
	// the snapshot conservatively stale). The federated plan cache compares
	// them against TableVersions to invalidate cached compilations.
	Versions map[string]int64
}

// ExecOutcome is the wrapper-observed outcome of executing a fragment.
type ExecOutcome struct {
	// Result is the remote result (rows + server-side service time).
	Result *remote.Result
	// ResponseTime is the wrapper-observed end-to-end time: request
	// transfer + remote service + result transfer. This is the "response
	// time of each query fragment" MW records (§2).
	ResponseTime simclock.Time
	// WireBytes is the encoded size that actually crossed the result link
	// when the columnar wire protocol carried it; 0 on the row protocol
	// (then Result.Rel.ByteSize() is the transferred size).
	WireBytes int
}

// Wrapper adapts one remote source.
type Wrapper interface {
	// ServerID identifies the wrapped source.
	ServerID() string
	// Kind names the wrapper type ("relational", "file").
	Kind() string
	// TableSchema returns the schema of a hosted table.
	TableSchema(table string) (*sqltypes.Schema, error)
	// Explain returns candidate plans for the fragment.
	Explain(stmt *sqlparser.SelectStmt) ([]Candidate, error)
	// TableVersions snapshots the current mutation counters of the named
	// tables — a cheap local read (no simulated network traffic) used to
	// validate cached compilations.
	TableVersions(tables []string) (map[string]int64, error)
	// Execute runs an execution descriptor. The context carries cancellation
	// (a sibling fragment failed) and an optional virtual-time deadline.
	Execute(ctx context.Context, plan *remote.Plan) (*ExecOutcome, error)
	// Open runs an execution descriptor as a batch stream: result batches
	// ship over the network as the server produces them, overlapping remote
	// compute with transfer. batchRows <= 0 degenerates to one monolithic
	// batch with Execute's exact timing.
	Open(ctx context.Context, plan *remote.Plan, batchRows int) (ResultStream, error)
	// Probe checks source availability end to end (network + server).
	Probe(ctx context.Context) (simclock.Time, error)
}

// Relational wraps a remote DBMS reachable over a network topology.
type Relational struct {
	server *remote.Server
	topo   *network.Topology
}

// NewRelational builds a relational wrapper.
func NewRelational(server *remote.Server, topo *network.Topology) *Relational {
	return &Relational{server: server, topo: topo}
}

// ServerID implements Wrapper.
func (w *Relational) ServerID() string { return w.server.ID() }

// Kind implements Wrapper.
func (w *Relational) Kind() string { return "relational" }

// TableSchema implements Wrapper.
func (w *Relational) TableSchema(table string) (*sqltypes.Schema, error) {
	t := w.server.Table(table)
	if t == nil {
		return nil, fmt.Errorf("wrapper: %s does not host %q", w.server.ID(), table)
	}
	return t.Schema(), nil
}

// Explain implements Wrapper. The returned estimates include the static
// network transfer estimate for the result volume, mirroring how a DBA's
// registered latency enters the cost model.
func (w *Relational) Explain(stmt *sqlparser.SelectStmt) ([]Candidate, error) {
	if link := w.topo.Link(w.server.ID()); link != nil && link.Down() {
		return nil, &network.ErrPartitioned{Dest: w.server.ID()}
	}
	versions := versionSnapshot(w.server, stmt)
	plans, err := w.server.Explain(stmt)
	if err != nil {
		return nil, err
	}
	out := make([]Candidate, len(plans))
	for i, p := range plans {
		// Copy before adjusting: the server may serve the same plan object
		// from its plan cache to later explains.
		cp := *p
		if link := w.topo.Link(w.server.ID()); link != nil {
			// Price the request at the same envelope size Execute actually
			// ships, so the estimate/actual gap reflects network dynamics
			// rather than our own bookkeeping.
			reqTime := link.StaticTransferTime(len(cp.SQL) + requestEnvelopeBytes)
			cp.Est.TotalMS += float64(reqTime + link.StaticTransferTime(cp.Est.OutBytes))
			cp.Est.FirstTupleMS += float64(reqTime)
		}
		out[i] = Candidate{Plan: &cp, RawEst: cp.Est, CostKnown: true, Versions: versions}
	}
	return out, nil
}

// TableVersions implements Wrapper.
func (w *Relational) TableVersions(tables []string) (map[string]int64, error) {
	return serverTableVersions(w.server, tables)
}

// Execute implements Wrapper.
func (w *Relational) Execute(ctx context.Context, plan *remote.Plan) (*ExecOutcome, error) {
	return executeOverNetwork(ctx, w.server, w.topo, plan)
}

// Open implements Wrapper.
func (w *Relational) Open(ctx context.Context, plan *remote.Plan, batchRows int) (ResultStream, error) {
	return openStream(ctx, w.server, w.topo, plan, batchRows)
}

// Probe implements Wrapper.
func (w *Relational) Probe(ctx context.Context) (simclock.Time, error) {
	return probeOverNetwork(ctx, w.server, w.topo)
}

// CacheResidency reports the server's buffer-pool residency estimate for a
// physical table — a replica-routing signal, not part of the Wrapper
// interface (sources without a cache model simply don't implement it).
func (w *Relational) CacheResidency(table string) float64 {
	return w.server.CacheResidency(table)
}

// executeOverNetwork ships an execution descriptor to the server and the
// result back, charging request transfer + remote service + result transfer.
// It honours context cancellation at each hop and enforces the dispatch's
// virtual-time deadline (if any) against the end-to-end response time.
//
// It is the monolithic (batchRows=0) drain of the streaming path: one
// batch, so the wrapper-layer span wraps a network.send, a remote.exec and
// a network.recv, whose durations sum exactly to the response time.
func executeOverNetwork(ctx context.Context, server *remote.Server, topo *network.Topology, plan *remote.Plan) (*ExecOutcome, error) {
	st, err := openStream(ctx, server, topo, plan, 0)
	if err != nil {
		return nil, err
	}
	for {
		b, err := st.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
	}
	out := st.Outcome()
	return &ExecOutcome{Result: out.Result, ResponseTime: out.ResponseTime, WireBytes: out.WireBytes}, nil
}

// versionSnapshot captures the referenced tables' versions before an
// explain; a missing table yields a nil snapshot (the explain itself will
// report the error).
func versionSnapshot(server *remote.Server, stmt *sqlparser.SelectStmt) map[string]int64 {
	refs := stmt.Tables()
	names := make([]string, len(refs))
	for i, tr := range refs {
		names[i] = tr.Name
	}
	versions, ok := server.TableVersions(names)
	if !ok {
		return nil
	}
	return versions
}

// serverTableVersions is the shared TableVersions implementation.
func serverTableVersions(server *remote.Server, tables []string) (map[string]int64, error) {
	versions, ok := server.TableVersions(tables)
	if !ok {
		return nil, fmt.Errorf("wrapper: %s does not host all of %v", server.ID(), tables)
	}
	return versions, nil
}

// probeOverNetwork is the shared availability probe: round trip + server
// health check.
func probeOverNetwork(ctx context.Context, server *remote.Server, topo *network.Topology) (simclock.Time, error) {
	rtt, err := topo.RoundTrip(ctx, server.ID(), 64, 64)
	if err != nil {
		return 0, err
	}
	st, err := server.Probe(ctx)
	if err != nil {
		return 0, err
	}
	return rtt + st, nil
}

// File wraps a file-like source: data can be scanned but the source offers
// no cost estimation. It is backed by a remote server restricted to
// sequential access.
type File struct {
	server *remote.Server
	topo   *network.Topology
}

// NewFile builds a file wrapper.
func NewFile(server *remote.Server, topo *network.Topology) *File {
	return &File{server: server, topo: topo}
}

// ServerID implements Wrapper.
func (w *File) ServerID() string { return w.server.ID() }

// Kind implements Wrapper.
func (w *File) Kind() string { return "file" }

// TableSchema implements Wrapper.
func (w *File) TableSchema(table string) (*sqltypes.Schema, error) {
	t := w.server.Table(table)
	if t == nil {
		return nil, fmt.Errorf("wrapper: %s does not host %q", w.server.ID(), table)
	}
	return t.Schema(), nil
}

// Explain implements Wrapper: it returns a single scan-based plan with NO
// cost estimate (CostKnown=false, zero Est), like a file path hand-back.
func (w *File) Explain(stmt *sqlparser.SelectStmt) ([]Candidate, error) {
	if link := w.topo.Link(w.server.ID()); link != nil && link.Down() {
		return nil, &network.ErrPartitioned{Dest: w.server.ID()}
	}
	versions := versionSnapshot(w.server, stmt)
	plans, err := w.server.Explain(stmt)
	if err != nil {
		return nil, err
	}
	// Prefer the pure-scan plan; files have no indexes to speak of.
	chosen := plans[0]
	for _, p := range plans {
		if !strings.Contains(p.Signature, "IDXSCAN") && !strings.Contains(p.Signature, "INLJOIN") {
			chosen = p
			break
		}
	}
	cp := *chosen
	cp.Est = remote.CostEstimate{}
	return []Candidate{{Plan: &cp, CostKnown: false, Versions: versions}}, nil
}

// TableVersions implements Wrapper.
func (w *File) TableVersions(tables []string) (map[string]int64, error) {
	return serverTableVersions(w.server, tables)
}

// Execute implements Wrapper.
func (w *File) Execute(ctx context.Context, plan *remote.Plan) (*ExecOutcome, error) {
	return executeOverNetwork(ctx, w.server, w.topo, plan)
}

// Open implements Wrapper.
func (w *File) Open(ctx context.Context, plan *remote.Plan, batchRows int) (ResultStream, error) {
	return openStream(ctx, w.server, w.topo, plan, batchRows)
}

// Probe implements Wrapper.
func (w *File) Probe(ctx context.Context) (simclock.Time, error) {
	return probeOverNetwork(ctx, w.server, w.topo)
}

// CacheResidency reports the server's buffer-pool residency estimate for a
// physical table (see Relational.CacheResidency).
func (w *File) CacheResidency(table string) float64 {
	return w.server.CacheResidency(table)
}

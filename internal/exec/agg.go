package exec

import (
	"fmt"
	"strings"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// Aggregate groups its input on the GroupBy expressions and computes the
// listed aggregates. The output schema is the group keys (named g0..gN-1 or
// the column name when the key is a bare column) followed by one column per
// aggregate (named a0..aM-1). Callers rewrite downstream expressions with
// RewriteAggregates to reference the aggregate columns.
type Aggregate struct {
	Input   Operator
	GroupBy []sqlparser.Expr
	Aggs    []*sqlparser.AggExpr
}

// KeyName returns the output column name of group key i.
func (a *Aggregate) KeyName(i int) string { return aggKeyName(a.GroupBy, i) }

// AggName returns the output column name of aggregate i.
func (a *Aggregate) AggName(i int) string { return aggColName(i) }

func aggKeyName(groupBy []sqlparser.Expr, i int) string {
	if ref, ok := groupBy[i].(*sqlparser.ColumnRef); ok {
		return ref.Name
	}
	return fmt.Sprintf("g%d", i)
}

func aggColName(i int) string { return fmt.Sprintf("a%d", i) }

// aggSchema derives the aggregation output schema from an input schema: the
// group keys followed by one column per aggregate.
func aggSchema(groupBy []sqlparser.Expr, aggs []*sqlparser.AggExpr, in *sqltypes.Schema) *sqltypes.Schema {
	var cols []sqltypes.Column
	for i, g := range groupBy {
		cols = append(cols, sqltypes.Column{Name: aggKeyName(groupBy, i), Type: inferType(g, in)})
	}
	for i, agg := range aggs {
		cols = append(cols, sqltypes.Column{Name: aggColName(i), Type: inferType(agg, in)})
	}
	return sqltypes.NewSchema(cols...)
}

// Schema implements Operator.
func (a *Aggregate) Schema() *sqltypes.Schema {
	return aggSchema(a.GroupBy, a.Aggs, a.Input.Schema())
}

type aggState struct {
	count   int64
	sum     float64
	sumInt  int64
	intOnly bool
	min     sqltypes.Value
	max     sqltypes.Value
	seen    bool
}

func newAggState() *aggState { return &aggState{intOnly: true} }

func (s *aggState) add(v sqltypes.Value) {
	if v.IsNull() {
		return
	}
	s.count++
	s.seen = true
	if v.Kind() == sqltypes.KindInt {
		s.sumInt += v.Int()
	} else {
		s.intOnly = false
	}
	s.sum += v.Float()
	if s.min.IsNull() || sqltypes.Compare(v, s.min) < 0 {
		s.min = v
	}
	if s.max.IsNull() || sqltypes.Compare(v, s.max) > 0 {
		s.max = v
	}
}

// addInt64 is add for a non-null int cell: the whole source column is
// int-typed, so min/max stay int-kinded and the exact int comparison matches
// sqltypes.Compare.
func (s *aggState) addInt64(i int64) {
	s.count++
	s.seen = true
	s.sumInt += i
	s.sum += float64(i)
	if s.min.IsNull() || i < s.min.Int() {
		s.min = sqltypes.NewInt(i)
	}
	if s.max.IsNull() || i > s.max.Int() {
		s.max = sqltypes.NewInt(i)
	}
}

// addFloat64 is add for a non-null float cell of a float-typed column. The
// direct < / > comparisons match sqltypes.Compare's float ordering,
// including NaN comparing equal to everything (never replacing min/max).
func (s *aggState) addFloat64(f float64) {
	s.count++
	s.seen = true
	s.intOnly = false
	s.sum += f
	if s.min.IsNull() || f < s.min.Float() {
		s.min = sqltypes.NewFloat(f)
	}
	if s.max.IsNull() || f > s.max.Float() {
		s.max = sqltypes.NewFloat(f)
	}
}

func (s *aggState) result(fn sqlparser.AggFunc) sqltypes.Value {
	switch fn {
	case sqlparser.AggCount:
		return sqltypes.NewInt(s.count)
	case sqlparser.AggSum:
		if !s.seen {
			return sqltypes.Null
		}
		if s.intOnly {
			return sqltypes.NewInt(s.sumInt)
		}
		return sqltypes.NewFloat(s.sum)
	case sqlparser.AggAvg:
		if s.count == 0 {
			return sqltypes.Null
		}
		return sqltypes.NewFloat(s.sum / float64(s.count))
	case sqlparser.AggMin:
		return s.min
	case sqlparser.AggMax:
		return s.max
	default:
		return sqltypes.Null
	}
}

// aggGroup is one group's accumulated state.
type aggGroup struct {
	keys   sqltypes.Row
	states []*aggState
	// countStar counts all rows in the group for COUNT(*).
	countStar int64
}

// aggFolder is the incremental grouping kernel shared by the materialized
// Aggregate operator and the streaming AggregateStream source: input rows
// fold into per-group states one batch at a time, so streamed and
// materialized aggregation are identical by construction.
type aggFolder struct {
	groupBy []sqlparser.Expr
	aggs    []*sqlparser.AggExpr
	groups  map[uint64][]*aggGroup
	order   []*aggGroup
}

func newAggFolder(groupBy []sqlparser.Expr, aggs []*sqlparser.AggExpr) *aggFolder {
	return &aggFolder{groupBy: groupBy, aggs: aggs, groups: map[uint64][]*aggGroup{}}
}

// fold accumulates one batch of rows, charging the same per-row CPU cost the
// materialized operator charges for its whole input.
func (f *aggFolder) fold(in *sqltypes.Relation, ctx *Context) error {
	for _, row := range in.Rows {
		keys := make(sqltypes.Row, len(f.groupBy))
		for i, g := range f.groupBy {
			v, err := sqlparser.Eval(g, row, in.Schema)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		h := rowHash(keys)
		var grp *aggGroup
		for _, g := range f.groups[h] {
			if rowsIdentical(g.keys, keys) {
				grp = g
				break
			}
		}
		if grp == nil {
			grp = &aggGroup{keys: keys, states: make([]*aggState, len(f.aggs))}
			for i := range grp.states {
				grp.states[i] = newAggState()
			}
			f.groups[h] = append(f.groups[h], grp)
			f.order = append(f.order, grp)
		}
		grp.countStar++
		for i, agg := range f.aggs {
			if agg.Arg == nil {
				continue // COUNT(*): handled by countStar
			}
			v, err := sqlparser.Eval(agg.Arg, row, in.Schema)
			if err != nil {
				return err
			}
			grp.states[i].add(v)
		}
	}
	ctx.Res.CPUOps += float64(len(in.Rows)) * float64(1+len(f.aggs))
	return nil
}

// result finalizes the groups into the output relation.
func (f *aggFolder) result(out *sqltypes.Schema) *sqltypes.Relation {
	order := f.order
	// Scalar aggregation over an empty input still yields one row.
	if len(f.groupBy) == 0 && len(order) == 0 {
		grp := &aggGroup{states: make([]*aggState, len(f.aggs))}
		for i := range grp.states {
			grp.states[i] = newAggState()
		}
		order = append(order, grp)
	}
	rel := sqltypes.NewRelation(out)
	for _, grp := range order {
		row := make(sqltypes.Row, 0, len(f.groupBy)+len(f.aggs))
		row = append(row, grp.keys...)
		for i, agg := range f.aggs {
			if agg.Func == sqlparser.AggCount && agg.Arg == nil {
				row = append(row, sqltypes.NewInt(grp.countStar))
				continue
			}
			row = append(row, grp.states[i].result(agg.Func))
		}
		rel.Rows = append(rel.Rows, row)
	}
	return rel
}

// Execute implements Operator.
func (a *Aggregate) Execute(ctx *Context) (*sqltypes.Relation, error) {
	in, err := a.Input.Execute(ctx)
	if err != nil {
		return nil, err
	}
	folder := newAggFolder(a.GroupBy, a.Aggs)
	if err := folder.fold(in, ctx); err != nil {
		return nil, err
	}
	return folder.result(a.Schema()), nil
}

// Explain implements Operator.
func (a *Aggregate) Explain() string {
	var parts []string
	for _, g := range a.GroupBy {
		parts = append(parts, g.String())
	}
	var aggs []string
	for _, ag := range a.Aggs {
		aggs = append(aggs, ag.String())
	}
	return fmt.Sprintf("AGGREGATE [%s] BY [%s]", strings.Join(aggs, ", "), strings.Join(parts, ", "))
}

// Children implements Operator.
func (a *Aggregate) Children() []Operator { return []Operator{a.Input} }

// CollectAggregates walks e appending every distinct aggregate call
// (deduplicated by rendering) to aggs, returning the extended list.
func CollectAggregates(e sqlparser.Expr, aggs []*sqlparser.AggExpr) []*sqlparser.AggExpr {
	switch x := e.(type) {
	case *sqlparser.AggExpr:
		for _, prev := range aggs {
			if prev.String() == x.String() {
				return aggs
			}
		}
		return append(aggs, x)
	case *sqlparser.BinaryExpr:
		aggs = CollectAggregates(x.Left, aggs)
		return CollectAggregates(x.Right, aggs)
	case *sqlparser.NotExpr:
		return CollectAggregates(x.Inner, aggs)
	case *sqlparser.IsNullExpr:
		return CollectAggregates(x.Inner, aggs)
	case *sqlparser.InExpr:
		aggs = CollectAggregates(x.Needle, aggs)
		for _, it := range x.List {
			aggs = CollectAggregates(it, aggs)
		}
		return aggs
	case *sqlparser.BetweenExpr:
		aggs = CollectAggregates(x.Subject, aggs)
		aggs = CollectAggregates(x.Lo, aggs)
		return CollectAggregates(x.Hi, aggs)
	case *sqlparser.LikeExpr:
		return CollectAggregates(x.Subject, aggs)
	case *sqlparser.FuncExpr:
		for _, a := range x.Args {
			aggs = CollectAggregates(a, aggs)
		}
		return aggs
	default:
		return aggs
	}
}

// RewriteAggregates replaces aggregate calls in e with column references
// into the Aggregate operator's output, using the mapping from rendered
// aggregate text to output column name. Group-key columns keep their bare
// names (qualifiers are stripped since Aggregate outputs unqualified keys).
func RewriteAggregates(e sqlparser.Expr, mapping map[string]string) sqlparser.Expr {
	switch x := e.(type) {
	case *sqlparser.AggExpr:
		if name, ok := mapping[x.String()]; ok {
			return &sqlparser.ColumnRef{Name: name}
		}
		return x
	case *sqlparser.ColumnRef:
		// After aggregation, keys are unqualified.
		return &sqlparser.ColumnRef{Name: x.Name}
	case *sqlparser.BinaryExpr:
		return &sqlparser.BinaryExpr{
			Op:    x.Op,
			Left:  RewriteAggregates(x.Left, mapping),
			Right: RewriteAggregates(x.Right, mapping),
		}
	case *sqlparser.NotExpr:
		return &sqlparser.NotExpr{Inner: RewriteAggregates(x.Inner, mapping)}
	case *sqlparser.IsNullExpr:
		return &sqlparser.IsNullExpr{Inner: RewriteAggregates(x.Inner, mapping), Negate: x.Negate}
	case *sqlparser.InExpr:
		list := make([]sqlparser.Expr, len(x.List))
		for i, it := range x.List {
			list[i] = RewriteAggregates(it, mapping)
		}
		return &sqlparser.InExpr{Needle: RewriteAggregates(x.Needle, mapping), List: list, Negate: x.Negate}
	case *sqlparser.BetweenExpr:
		return &sqlparser.BetweenExpr{
			Subject: RewriteAggregates(x.Subject, mapping),
			Lo:      RewriteAggregates(x.Lo, mapping),
			Hi:      RewriteAggregates(x.Hi, mapping),
			Negate:  x.Negate,
		}
	case *sqlparser.LikeExpr:
		return &sqlparser.LikeExpr{Subject: RewriteAggregates(x.Subject, mapping), Pattern: x.Pattern, Negate: x.Negate}
	case *sqlparser.FuncExpr:
		args := make([]sqlparser.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = RewriteAggregates(a, mapping)
		}
		return &sqlparser.FuncExpr{Name: x.Name, Args: args}
	default:
		return e
	}
}

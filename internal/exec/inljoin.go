package exec

import (
	"fmt"
	"math"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// IndexNLJoin is an index nested-loop join: for each outer row it probes the
// inner table's index on the join key and fetches matching rows. Probes and
// fetches are charged as cache-friendly page touches — with a warm buffer
// pool this plan is extremely cheap, which is why a fast server's optimizer
// prefers it; under update-induced buffer churn the same plan collapses to
// random IO. This is the mechanism behind the paper's Figure 9 observation
// that the fastest server (S3) is hyper-sensitive to load for QT2.
type IndexNLJoin struct {
	Outer    Operator
	Inner    *storage.Table
	Index    *storage.Index
	InnerAs  string
	OuterKey sqlparser.Expr
	// Residual, when non-nil, filters joined rows.
	Residual sqlparser.Expr
}

func (j *IndexNLJoin) innerSchema() *sqltypes.Schema {
	name := j.InnerAs
	if name == "" {
		name = j.Inner.Name()
	}
	return j.Inner.Schema().WithQualifier(name)
}

// Schema implements Operator.
func (j *IndexNLJoin) Schema() *sqltypes.Schema {
	return j.Outer.Schema().Concat(j.innerSchema())
}

// Execute implements Operator.
func (j *IndexNLJoin) Execute(ctx *Context) (*sqltypes.Relation, error) {
	outer, err := j.Outer.Execute(ctx)
	if err != nil {
		return nil, err
	}
	outSchema := outer.Schema.Concat(j.innerSchema())
	out := sqltypes.NewRelation(outSchema)
	n := float64(j.Index.Len())
	descent := 1.0
	if n > 2 {
		descent += math.Log2(n) / 4
	}
	var probes, fetches float64
	for _, orow := range outer.Rows {
		k, err := sqlparser.Eval(j.OuterKey, orow, outer.Schema)
		if err != nil {
			return nil, err
		}
		if k.IsNull() {
			continue
		}
		probes++
		for _, pos := range j.Index.LookupEq(k) {
			irow, err := j.Inner.Row(pos)
			if err != nil {
				return nil, err
			}
			fetches++
			joined := orow.Concat(irow)
			if j.Residual != nil {
				ok, err := sqlparser.EvalBool(j.Residual, joined, outSchema)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			out.Rows = append(out.Rows, joined)
		}
	}
	ctx.Res.CachedPages += probes*descent + fetches
	ctx.Res.CPUOps += probes*(descent+1) + fetches
	return out, nil
}

// Explain implements Operator.
func (j *IndexNLJoin) Explain() string {
	return fmt.Sprintf("INLJOIN %s -> %s.%s(%s)", j.OuterKey, j.Inner.Name(), j.Index.Name(), j.Index.Column())
}

// Children implements Operator.
func (j *IndexNLJoin) Children() []Operator { return []Operator{j.Outer} }

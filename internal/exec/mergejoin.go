package exec

import (
	"sort"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// MergeJoin joins two inputs on key equality by sorting both sides and
// merging. Without physical sort-order tracking it rarely beats a hash join
// in this engine's cost model, but it widens the enumerable plan space (the
// paper's wrappers return MULTIPLE "possible supported execution plans")
// and dominates when memory pressure would make hash tables spill — a
// dimension deliberately left to the contention model.
type MergeJoin struct {
	Left, Right       Operator
	LeftKey, RightKey sqlparser.Expr
	// Residual, when non-nil, filters joined rows.
	Residual sqlparser.Expr
}

// Schema implements Operator.
func (j *MergeJoin) Schema() *sqltypes.Schema {
	return j.Left.Schema().Concat(j.Right.Schema())
}

type keyedRows struct {
	rows []sqltypes.Row
	keys []sqltypes.Value
}

func sortByKey(rel *sqltypes.Relation, key sqlparser.Expr) (*keyedRows, error) {
	kr := &keyedRows{rows: make([]sqltypes.Row, 0, len(rel.Rows)), keys: make([]sqltypes.Value, 0, len(rel.Rows))}
	for _, row := range rel.Rows {
		k, err := sqlparser.Eval(key, row, rel.Schema)
		if err != nil {
			return nil, err
		}
		if k.IsNull() {
			continue // NULL keys never join
		}
		kr.rows = append(kr.rows, row)
		kr.keys = append(kr.keys, k)
	}
	idx := make([]int, len(kr.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return sqltypes.Compare(kr.keys[idx[a]], kr.keys[idx[b]]) < 0
	})
	sortedRows := make([]sqltypes.Row, len(idx))
	sortedKeys := make([]sqltypes.Value, len(idx))
	for i, j := range idx {
		sortedRows[i] = kr.rows[j]
		sortedKeys[i] = kr.keys[j]
	}
	kr.rows, kr.keys = sortedRows, sortedKeys
	return kr, nil
}

// Execute implements Operator.
func (j *MergeJoin) Execute(ctx *Context) (*sqltypes.Relation, error) {
	left, err := j.Left.Execute(ctx)
	if err != nil {
		return nil, err
	}
	right, err := j.Right.Execute(ctx)
	if err != nil {
		return nil, err
	}
	outSchema := left.Schema.Concat(right.Schema)
	out := sqltypes.NewRelation(outSchema)

	l, err := sortByKey(left, j.LeftKey)
	if err != nil {
		return nil, err
	}
	r, err := sortByKey(right, j.RightKey)
	if err != nil {
		return nil, err
	}
	li, ri := 0, 0
	for li < len(l.rows) && ri < len(r.rows) {
		c := sqltypes.Compare(l.keys[li], r.keys[ri])
		switch {
		case c < 0:
			li++
		case c > 0:
			ri++
		default:
			// Match run: find the extent of equal keys on both sides.
			lEnd := li
			for lEnd < len(l.rows) && sqltypes.Compare(l.keys[lEnd], l.keys[li]) == 0 {
				lEnd++
			}
			rEnd := ri
			for rEnd < len(r.rows) && sqltypes.Compare(r.keys[rEnd], r.keys[ri]) == 0 {
				rEnd++
			}
			for a := li; a < lEnd; a++ {
				for b := ri; b < rEnd; b++ {
					joined := l.rows[a].Concat(r.rows[b])
					if j.Residual != nil {
						ok, err := sqlparser.EvalBool(j.Residual, joined, outSchema)
						if err != nil {
							return nil, err
						}
						if !ok {
							continue
						}
					}
					out.Rows = append(out.Rows, joined)
				}
			}
			li, ri = lEnd, rEnd
		}
	}
	nl, nr := float64(len(left.Rows)), float64(len(right.Rows))
	ctx.Res.CPUOps += nl*log2(nl) + nr*log2(nr) + nl + nr + float64(len(out.Rows))
	return out, nil
}

// Explain implements Operator.
func (j *MergeJoin) Explain() string {
	s := "MERGEJOIN " + j.LeftKey.String() + " = " + j.RightKey.String()
	if j.Residual != nil {
		s += " RESIDUAL " + j.Residual.String()
	}
	return s
}

// Children implements Operator.
func (j *MergeJoin) Children() []Operator { return []Operator{j.Left, j.Right} }

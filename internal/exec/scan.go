package exec

import (
	"fmt"
	"math"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// SeqScan reads an entire table sequentially. It charges the table's full
// page count as sequential IO — large scans stream from disk and are largely
// insensitive to buffer-pool pressure.
type SeqScan struct {
	Table *storage.Table
	// As qualifies output columns (the table alias in the query).
	As string
}

// Schema implements Operator.
func (s *SeqScan) Schema() *sqltypes.Schema {
	return s.Table.Schema().WithQualifier(s.effectiveName())
}

func (s *SeqScan) effectiveName() string {
	if s.As != "" {
		return s.As
	}
	return s.Table.Name()
}

// Execute implements Operator.
func (s *SeqScan) Execute(ctx *Context) (*sqltypes.Relation, error) {
	out := sqltypes.NewRelation(s.Schema())
	err := s.Table.Scan(func(row sqltypes.Row) error {
		out.Rows = append(out.Rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	ctx.Res.IOPages += float64(s.Table.Pages())
	ctx.Res.CPUOps += float64(len(out.Rows))
	return out, nil
}

// Explain implements Operator.
func (s *SeqScan) Explain() string {
	return fmt.Sprintf("SEQSCAN %s AS %s [%d rows, %d pages]", s.Table.Name(), s.effectiveName(), s.Table.RowCount(), s.Table.Pages())
}

// Children implements Operator.
func (s *SeqScan) Children() []Operator { return nil }

// IndexProbe describes the key condition an IndexScan serves.
type IndexProbe struct {
	// Eq, when non-nil, probes for key = Eq.
	Eq *sqltypes.Value
	// Lo/Hi bound a range probe (nil = open); inclusive flags apply.
	Lo, Hi                   *sqltypes.Value
	LoInclusive, HiInclusive bool
}

// String renders the probe for EXPLAIN.
func (p IndexProbe) String() string {
	if p.Eq != nil {
		return "= " + p.Eq.String()
	}
	lo, hi := "-inf", "+inf"
	lob, hib := "(", ")"
	if p.Lo != nil {
		lo = p.Lo.String()
		if p.LoInclusive {
			lob = "["
		}
	}
	if p.Hi != nil {
		hi = p.Hi.String()
		if p.HiInclusive {
			hib = "]"
		}
	}
	return lob + lo + ".." + hi + hib
}

// IndexScan probes an index and fetches matching rows. Index traversal and
// row fetches are charged as cache-friendly page touches: with a warm buffer
// pool they are nearly free, but under update-induced buffer churn the
// server's load model turns them into real IO.
type IndexScan struct {
	Table *storage.Table
	Index *storage.Index
	Probe IndexProbe
	As    string
}

// Schema implements Operator.
func (s *IndexScan) Schema() *sqltypes.Schema {
	return s.Table.Schema().WithQualifier(s.effectiveName())
}

func (s *IndexScan) effectiveName() string {
	if s.As != "" {
		return s.As
	}
	return s.Table.Name()
}

// Execute implements Operator.
func (s *IndexScan) Execute(ctx *Context) (*sqltypes.Relation, error) {
	var positions []int
	if s.Probe.Eq != nil {
		positions = s.Index.LookupEq(*s.Probe.Eq)
	} else {
		positions = s.Index.LookupRange(s.Probe.Lo, s.Probe.Hi, s.Probe.LoInclusive, s.Probe.HiInclusive)
		if positions == nil && s.Index.Kind() == storage.IndexHash {
			return nil, fmt.Errorf("exec: hash index %s cannot serve range probe", s.Index.Name())
		}
	}
	out := sqltypes.NewRelation(s.Schema())
	for _, pos := range positions {
		row, err := s.Table.Row(pos)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	// Index descent (~log2 of entries) plus one page touch per fetched row,
	// capped by the table's page count.
	n := float64(s.Index.Len())
	descent := 1.0
	if n > 2 {
		descent += math.Log2(n) / 4
	}
	// Every fetched row is one buffer-pool page touch: random access does
	// not get sequential-scan batching.
	fetched := float64(len(positions))
	ctx.Res.CachedPages += descent + fetched
	ctx.Res.CPUOps += descent + fetched
	return out, nil
}

// Explain implements Operator.
func (s *IndexScan) Explain() string {
	return fmt.Sprintf("IDXSCAN %s.%s(%s) %s AS %s", s.Table.Name(), s.Index.Name(), s.Index.Column(), s.Probe, s.effectiveName())
}

// Children implements Operator.
func (s *IndexScan) Children() []Operator { return nil }

// ProbeFromPredicate derives an index probe from a conjunct of the form
// col op literal for the given indexed column (qualified by alias). It
// returns the probe, the remaining conjuncts that the probe does not cover,
// and whether a probe was found.
func ProbeFromPredicate(conjuncts []sqlparser.Expr, alias, column string) (IndexProbe, []sqlparser.Expr, bool) {
	var probe IndexProbe
	found := false
	rest := make([]sqlparser.Expr, 0, len(conjuncts))
	for _, c := range conjuncts {
		if found {
			rest = append(rest, c)
			continue
		}
		be, ok := c.(*sqlparser.BinaryExpr)
		if ok {
			col, lit, op := matchColLit(be, alias, column)
			if col {
				v := lit
				switch op {
				case sqlparser.OpEq:
					probe = IndexProbe{Eq: &v}
					found = true
					continue
				case sqlparser.OpGt:
					probe = IndexProbe{Lo: &v}
					found = true
					continue
				case sqlparser.OpGe:
					probe = IndexProbe{Lo: &v, LoInclusive: true}
					found = true
					continue
				case sqlparser.OpLt:
					probe = IndexProbe{Hi: &v}
					found = true
					continue
				case sqlparser.OpLe:
					probe = IndexProbe{Hi: &v, HiInclusive: true}
					found = true
					continue
				}
			}
		}
		if bt, ok := c.(*sqlparser.BetweenExpr); ok && !bt.Negate {
			if ref, okc := bt.Subject.(*sqlparser.ColumnRef); okc && refMatches(ref, alias, column) {
				lo, okLo := bt.Lo.(*sqlparser.Literal)
				hi, okHi := bt.Hi.(*sqlparser.Literal)
				if okLo && okHi {
					lv, hv := lo.Val, hi.Val
					probe = IndexProbe{Lo: &lv, Hi: &hv, LoInclusive: true, HiInclusive: true}
					found = true
					continue
				}
			}
		}
		rest = append(rest, c)
	}
	if !found {
		return IndexProbe{}, conjuncts, false
	}
	return probe, rest, true
}

// matchColLit matches be as (column op literal) or (literal op column),
// normalizing the operator to put the column on the left.
func matchColLit(be *sqlparser.BinaryExpr, alias, column string) (bool, sqltypes.Value, sqlparser.BinaryOp) {
	if !be.Op.IsComparison() {
		return false, sqltypes.Null, be.Op
	}
	if ref, ok := be.Left.(*sqlparser.ColumnRef); ok && refMatches(ref, alias, column) {
		if lit, ok := be.Right.(*sqlparser.Literal); ok {
			return true, lit.Val, be.Op
		}
	}
	if ref, ok := be.Right.(*sqlparser.ColumnRef); ok && refMatches(ref, alias, column) {
		if lit, ok := be.Left.(*sqlparser.Literal); ok {
			return true, lit.Val, flip(be.Op)
		}
	}
	return false, sqltypes.Null, be.Op
}

func flip(op sqlparser.BinaryOp) sqlparser.BinaryOp {
	switch op {
	case sqlparser.OpLt:
		return sqlparser.OpGt
	case sqlparser.OpLe:
		return sqlparser.OpGe
	case sqlparser.OpGt:
		return sqlparser.OpLt
	case sqlparser.OpGe:
		return sqlparser.OpLe
	default:
		return op
	}
}

func refMatches(ref *sqlparser.ColumnRef, alias, column string) bool {
	if !strEqualFold(ref.Name, column) {
		return false
	}
	return ref.Table == "" || strEqualFold(ref.Table, alias)
}

func strEqualFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

package colbatch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sqltypes"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "a", Type: sqltypes.KindInt},
		sqltypes.Column{Name: "b", Type: sqltypes.KindFloat},
		sqltypes.Column{Name: "c", Type: sqltypes.KindString},
		sqltypes.Column{Name: "d", Type: sqltypes.KindBool},
		sqltypes.Column{Name: "e", Type: sqltypes.KindInt}, // will receive mixed kinds
	)
}

// randRelation builds a relation with NULL-heavy columns and one
// deliberately kind-mixed column to exercise the Mixed fallback.
func randRelation(rng *rand.Rand, n int) *sqltypes.Relation {
	rel := sqltypes.NewRelation(testSchema())
	for i := 0; i < n; i++ {
		row := make(sqltypes.Row, 5)
		if rng.Intn(4) == 0 {
			row[0] = sqltypes.Null
		} else {
			row[0] = sqltypes.NewInt(rng.Int63n(100))
		}
		switch rng.Intn(5) {
		case 0:
			row[1] = sqltypes.Null
		case 1:
			row[1] = sqltypes.NewFloat(math.NaN())
		default:
			row[1] = sqltypes.NewFloat(rng.NormFloat64())
		}
		if rng.Intn(3) == 0 {
			row[2] = sqltypes.Null
		} else {
			row[2] = sqltypes.NewString([]string{"", "x", "hello", "wörld"}[rng.Intn(4)])
		}
		row[3] = sqltypes.NewBool(rng.Intn(2) == 0)
		switch rng.Intn(3) {
		case 0:
			row[4] = sqltypes.NewInt(rng.Int63n(10))
		case 1:
			row[4] = sqltypes.NewFloat(float64(rng.Int63n(10)))
		default:
			row[4] = sqltypes.NewString("m")
		}
		rel.Rows = append(rel.Rows, row)
	}
	return rel
}

// valuesIdentical compares values bit-exactly; float payloads compare by
// their IEEE bits so NaN == NaN and -0.0 != +0.0.
func valuesIdentical(a, b sqltypes.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	if a.Kind() == sqltypes.KindFloat {
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	}
	return a == b
}

func relationsEqual(t *testing.T, a, b *sqltypes.Relation) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row count %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			t.Fatalf("row %d width %d vs %d", i, len(a.Rows[i]), len(b.Rows[i]))
		}
		for j := range a.Rows[i] {
			if !valuesIdentical(a.Rows[i][j], b.Rows[i][j]) {
				t.Fatalf("cell (%d,%d): %#v vs %#v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 256, 1000} {
		rel := randRelation(rng, n)
		b := FromRelation(rel)
		if b.Len() != n {
			t.Fatalf("Len = %d, want %d", b.Len(), n)
		}
		relationsEqual(t, rel, b.ToRelation())
		if got, want := b.WireSize(), rel.ByteSize(); got != want {
			t.Fatalf("WireSize = %d, Relation.ByteSize = %d (n=%d)", got, want, n)
		}
	}
}

func TestSliceAndSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rel := randRelation(rng, 100)
	b := FromRelation(rel)

	s := b.Slice(10, 40)
	want := &sqltypes.Relation{Schema: rel.Schema, Rows: rel.Rows[10:40]}
	relationsEqual(t, want, s.ToRelation())
	if s.WireSize() != want.ByteSize() {
		t.Fatalf("slice WireSize = %d, want %d", s.WireSize(), want.ByteSize())
	}

	// Nested slice of a slice.
	s2 := s.Slice(5, 15)
	want2 := &sqltypes.Relation{Schema: rel.Schema, Rows: rel.Rows[15:25]}
	relationsEqual(t, want2, s2.ToRelation())

	// Selection over a slice composes into physical indices.
	sel := s.Select([]int{0, 3, 29})
	wantSel := &sqltypes.Relation{Schema: rel.Schema, Rows: []sqltypes.Row{rel.Rows[10], rel.Rows[13], rel.Rows[39]}}
	relationsEqual(t, wantSel, sel.ToRelation())
	if sel.WireSize() != wantSel.ByteSize() {
		t.Fatalf("selected WireSize = %d, want %d", sel.WireSize(), wantSel.ByteSize())
	}

	// Slicing a selected batch.
	sel2 := sel.Slice(1, 3)
	wantSel2 := &sqltypes.Relation{Schema: rel.Schema, Rows: []sqltypes.Row{rel.Rows[13], rel.Rows[39]}}
	relationsEqual(t, wantSel2, sel2.ToRelation())
}

func TestMaterialize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rel := randRelation(rng, 64)
	b := FromRelation(rel)
	if b.Materialize() != b {
		t.Fatal("Materialize of a contiguous batch should be a no-op")
	}
	s := b.Slice(8, 24).Select([]int{1, 5, 5, 0})
	m := s.Materialize()
	if m.Sel != nil {
		t.Fatal("Materialize left a selection vector")
	}
	relationsEqual(t, s.ToRelation(), m.ToRelation())
	if m.WireSize() != s.WireSize() {
		t.Fatalf("materialized WireSize %d != view WireSize %d", m.WireSize(), s.WireSize())
	}
}

func TestBuilderMatchesFromRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rel := randRelation(rng, 128)
	bld := NewBuilder(rel.Schema)
	for _, row := range rel.Rows {
		bld.AppendRow(row)
	}
	if bld.Len() != 128 {
		t.Fatalf("Builder.Len = %d", bld.Len())
	}
	b := bld.Finish()
	relationsEqual(t, rel, b.ToRelation())
	if b.WireSize() != rel.ByteSize() {
		t.Fatalf("builder WireSize = %d, want %d", b.WireSize(), rel.ByteSize())
	}
}

func TestAccumulatorMatchesRowConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rel := randRelation(rng, 300)
	acc := NewAccumulator(rel.Schema)
	want := sqltypes.NewRelation(rel.Schema)
	full := FromRelation(rel)
	// Feed a mix of contiguous slices, selections, and empty windows.
	acc.Append(full.Slice(0, 0))
	for _, w := range []*Batch{
		full.Slice(0, 100),
		full.Slice(100, 150).Select([]int{40, 3, 3, 0}),
		full.Slice(150, 300),
	} {
		acc.Append(w)
		wrel := w.ToRelation()
		want.Rows = append(want.Rows, wrel.Rows...)
	}
	got := acc.Finish()
	if got.Len() != acc.Len() {
		t.Fatalf("Finish len %d != acc len %d", got.Len(), acc.Len())
	}
	relationsEqual(t, want, got.ToRelation())
	if got.WireSize() != want.ByteSize() {
		t.Fatalf("accumulated WireSize %d != %d", got.WireSize(), want.ByteSize())
	}
}

func TestAccumulatorKindTransitions(t *testing.T) {
	sch := sqltypes.NewSchema(sqltypes.Column{Name: "x", Type: sqltypes.KindInt})
	mk := func(vals ...sqltypes.Value) *Batch {
		rel := sqltypes.NewRelation(sch)
		for _, v := range vals {
			rel.Rows = append(rel.Rows, sqltypes.Row{v})
		}
		return FromRelation(rel)
	}
	// NULL-only prefix, then ints, then a kind conflict forcing Mixed.
	acc := NewAccumulator(sch)
	acc.Append(mk(sqltypes.Null, sqltypes.Null))
	acc.Append(mk(sqltypes.NewInt(7), sqltypes.Null))
	acc.Append(mk(sqltypes.NewString("s")))
	got := acc.Finish().ToRelation()
	want := []sqltypes.Value{sqltypes.Null, sqltypes.Null, sqltypes.NewInt(7), sqltypes.Null, sqltypes.NewString("s")}
	if len(got.Rows) != len(want) {
		t.Fatalf("got %d rows", len(got.Rows))
	}
	for i, w := range want {
		if !valuesIdentical(got.Rows[i][0], w) {
			t.Fatalf("row %d = %#v, want %#v", i, got.Rows[i][0], w)
		}
	}
}

func TestTypedColumnConstructors(t *testing.T) {
	sch := sqltypes.NewSchema(
		sqltypes.Column{Name: "i", Type: sqltypes.KindInt},
		sqltypes.Column{Name: "f", Type: sqltypes.KindFloat},
		sqltypes.Column{Name: "s", Type: sqltypes.KindString},
		sqltypes.Column{Name: "b", Type: sqltypes.KindBool},
		sqltypes.Column{Name: "n", Type: sqltypes.KindNull},
	)
	cols := []*Column{
		IntColumn([]int64{1, 0, 3}, []bool{false, true, false}),
		FloatColumn([]float64{1.5, 2.5, 0}, []bool{false, false, true}),
		StringColumn([]string{"a", "", "c"}, nil),
		BoolColumn([]bool{true, false, true}, nil),
		NullColumn(),
	}
	b := New(sch, cols, 3)
	want := &sqltypes.Relation{Schema: sch, Rows: []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewFloat(1.5), sqltypes.NewString("a"), sqltypes.NewBool(true), sqltypes.Null},
		{sqltypes.Null, sqltypes.NewFloat(2.5), sqltypes.NewString(""), sqltypes.NewBool(false), sqltypes.Null},
		{sqltypes.NewInt(3), sqltypes.Null, sqltypes.NewString("c"), sqltypes.NewBool(true), sqltypes.Null},
	}}
	relationsEqual(t, want, b.ToRelation())
	if b.WireSize() != want.ByteSize() {
		t.Fatalf("WireSize = %d, want %d", b.WireSize(), want.ByteSize())
	}
	for i := 0; i < 3; i++ {
		for c := range cols {
			if got, want := b.Value(i, c), want.Rows[i][c]; got != want {
				t.Fatalf("Value(%d,%d) = %#v, want %#v", i, c, got, want)
			}
		}
	}
	if !cols[0].IsNull(1) || cols[0].IsNull(0) || !cols[4].IsNull(2) {
		t.Fatal("IsNull wrong")
	}
}

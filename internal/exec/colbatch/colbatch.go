// Package colbatch provides the columnar batch representation used by the
// vectorized execution path: one typed vector per attribute plus a null
// bitmap, and an optional selection vector so filters can pass rows along
// without materializing them. Batches convert losslessly to and from
// sqltypes.Relation — Value fields are unexported, so every value in a
// relation was built by a sqltypes constructor and decomposing it into
// (kind, payload, null) and rebuilding is exact. That round trip is what
// lets the vectorized path stay bit-identical to the row-at-a-time oracle.
package colbatch

import (
	"repro/internal/sqltypes"
)

// Column is one attribute's vector. Exactly one representation is active:
//
//   - Mixed non-nil: the column was not kind-uniform; Mixed holds the cells
//     verbatim and the typed slices are nil.
//   - otherwise Kind selects the typed payload slice (Ints/Floats/Strs/
//     Bools), with Nulls[i] marking SQL NULL cells (payload zero). Kind ==
//     KindNull means every cell is NULL and no payload slice is allocated.
//
// Indices into a Column are PHYSICAL positions; Batch applies its selection
// vector before indexing.
type Column struct {
	Kind   sqltypes.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Nulls  []bool
	Mixed  []sqltypes.Value
}

// Value reconstructs the cell at physical index i.
func (c *Column) Value(i int) sqltypes.Value {
	if c.Mixed != nil {
		return c.Mixed[i]
	}
	if c.Nulls != nil && c.Nulls[i] {
		return sqltypes.Null
	}
	switch c.Kind {
	case sqltypes.KindInt:
		return sqltypes.NewInt(c.Ints[i])
	case sqltypes.KindFloat:
		return sqltypes.NewFloat(c.Floats[i])
	case sqltypes.KindString:
		return sqltypes.NewString(c.Strs[i])
	case sqltypes.KindBool:
		return sqltypes.NewBool(c.Bools[i])
	default:
		return sqltypes.Null
	}
}

// IsNull reports whether the cell at physical index i is SQL NULL.
func (c *Column) IsNull(i int) bool {
	if c.Mixed != nil {
		return c.Mixed[i].IsNull()
	}
	if c.Kind == sqltypes.KindNull {
		return true
	}
	return c.Nulls != nil && c.Nulls[i]
}

// Gather materializes a new column holding the cells at the given physical
// indices, in order.
func (c *Column) Gather(idx []int) *Column {
	out := &Column{Kind: c.Kind}
	if c.Mixed != nil {
		out.Mixed = make([]sqltypes.Value, len(idx))
		for i, j := range idx {
			out.Mixed[i] = c.Mixed[j]
		}
		return out
	}
	if c.Nulls != nil {
		out.Nulls = make([]bool, len(idx))
		for i, j := range idx {
			out.Nulls[i] = c.Nulls[j]
		}
	}
	switch c.Kind {
	case sqltypes.KindInt:
		out.Ints = make([]int64, len(idx))
		for i, j := range idx {
			out.Ints[i] = c.Ints[j]
		}
	case sqltypes.KindFloat:
		out.Floats = make([]float64, len(idx))
		for i, j := range idx {
			out.Floats[i] = c.Floats[j]
		}
	case sqltypes.KindString:
		out.Strs = make([]string, len(idx))
		for i, j := range idx {
			out.Strs[i] = c.Strs[j]
		}
	case sqltypes.KindBool:
		out.Bools = make([]bool, len(idx))
		for i, j := range idx {
			out.Bools[i] = c.Bools[j]
		}
	}
	return out
}

// byteSize returns the wire size of the cell at physical index i, matching
// Value.ByteSize without building the Value.
func (c *Column) byteSize(i int) int {
	if c.Mixed != nil {
		return c.Mixed[i].ByteSize()
	}
	if c.Kind == sqltypes.KindNull || (c.Nulls != nil && c.Nulls[i]) {
		return 1
	}
	switch c.Kind {
	case sqltypes.KindInt, sqltypes.KindFloat:
		return 8
	case sqltypes.KindBool:
		return 1
	default:
		return 2 + len(c.Strs[i])
	}
}

// NewColumn analyzes a cell vector into its columnar form: a typed vector
// when the non-null cells share one kind, the Mixed fallback otherwise.
func NewColumn(cells []sqltypes.Value) *Column {
	kind := sqltypes.KindNull
	uniform := true
	anyNull := false
	for _, v := range cells {
		k := v.Kind()
		if k == sqltypes.KindNull {
			anyNull = true
			continue
		}
		if kind == sqltypes.KindNull {
			kind = k
		} else if k != kind {
			uniform = false
			break
		}
	}
	if !uniform {
		c := &Column{Mixed: make([]sqltypes.Value, len(cells))}
		copy(c.Mixed, cells)
		return c
	}
	c := &Column{Kind: kind}
	if anyNull && kind != sqltypes.KindNull {
		c.Nulls = make([]bool, len(cells))
	}
	switch kind {
	case sqltypes.KindNull:
		return c
	case sqltypes.KindInt:
		c.Ints = make([]int64, len(cells))
	case sqltypes.KindFloat:
		c.Floats = make([]float64, len(cells))
	case sqltypes.KindString:
		c.Strs = make([]string, len(cells))
	case sqltypes.KindBool:
		c.Bools = make([]bool, len(cells))
	}
	for i, v := range cells {
		if v.IsNull() {
			c.Nulls[i] = true
			continue
		}
		switch kind {
		case sqltypes.KindInt:
			c.Ints[i] = v.Int()
		case sqltypes.KindFloat:
			c.Floats[i] = v.Float()
		case sqltypes.KindString:
			c.Strs[i] = v.Str()
		case sqltypes.KindBool:
			c.Bools[i] = v.Bool()
		}
	}
	return c
}

// IntColumn wraps a typed int64 vector (nulls may be nil).
func IntColumn(vals []int64, nulls []bool) *Column {
	return &Column{Kind: sqltypes.KindInt, Ints: vals, Nulls: nulls}
}

// FloatColumn wraps a typed float64 vector (nulls may be nil).
func FloatColumn(vals []float64, nulls []bool) *Column {
	return &Column{Kind: sqltypes.KindFloat, Floats: vals, Nulls: nulls}
}

// StringColumn wraps a typed string vector (nulls may be nil).
func StringColumn(vals []string, nulls []bool) *Column {
	return &Column{Kind: sqltypes.KindString, Strs: vals, Nulls: nulls}
}

// BoolColumn wraps a typed bool vector (nulls may be nil).
func BoolColumn(vals []bool, nulls []bool) *Column {
	return &Column{Kind: sqltypes.KindBool, Bools: vals, Nulls: nulls}
}

// NullColumn is an all-NULL column.
func NullColumn() *Column { return &Column{Kind: sqltypes.KindNull} }

// Batch is a columnar slice of a relation: a schema, one Column per
// attribute, and a logical row window. The window is either a contiguous
// physical range [off, off+n) or an explicit selection vector of physical
// indices (Sel non-nil wins). Columns may be shared between batches;
// treat them as immutable once the batch is built.
type Batch struct {
	Schema *sqltypes.Schema
	Cols   []*Column
	Sel    []int
	off    int
	n      int
}

// New builds a batch over contiguous physical rows [0, n).
func New(schema *sqltypes.Schema, cols []*Column, n int) *Batch {
	return &Batch{Schema: schema, Cols: cols, n: n}
}

// NewSelected builds a batch whose logical rows are the physical indices in
// sel.
func NewSelected(schema *sqltypes.Schema, cols []*Column, sel []int) *Batch {
	return &Batch{Schema: schema, Cols: cols, Sel: sel, n: len(sel)}
}

// Len returns the logical row count.
func (b *Batch) Len() int { return b.n }

// phys maps a logical row index to its physical position.
func (b *Batch) phys(i int) int {
	if b.Sel != nil {
		return b.Sel[i]
	}
	return b.off + i
}

// Value reconstructs the cell at (logical row, column).
func (b *Batch) Value(row, col int) sqltypes.Value {
	return b.Cols[col].Value(b.phys(row))
}

// Phys maps a logical row index to its physical position — exported so
// kernels can index typed payload slices directly.
func (b *Batch) Phys(i int) int { return b.phys(i) }

// Contig reports whether the batch's logical rows are the contiguous
// physical range [off, off+Len()), returning off. Kernels use it to run
// straight-line loops over payload subslices instead of indexing through a
// selection vector.
func (b *Batch) Contig() (int, bool) {
	if b.Sel == nil {
		return b.off, true
	}
	return 0, false
}

// Row materializes logical row i.
func (b *Batch) Row(i int) sqltypes.Row {
	p := b.phys(i)
	out := make(sqltypes.Row, len(b.Cols))
	for c, col := range b.Cols {
		out[c] = col.Value(p)
	}
	return out
}

// Slice returns a view of logical rows [lo, hi). Underlying columns are
// shared.
func (b *Batch) Slice(lo, hi int) *Batch {
	if b.Sel != nil {
		return &Batch{Schema: b.Schema, Cols: b.Cols, Sel: b.Sel[lo:hi], n: hi - lo}
	}
	return &Batch{Schema: b.Schema, Cols: b.Cols, off: b.off + lo, n: hi - lo}
}

// WithColumns returns a batch sharing b's row window over a different
// column set; the columns must share b's physical layout. Pure column
// projections use it to avoid touching any payload.
func (b *Batch) WithColumns(schema *sqltypes.Schema, cols []*Column) *Batch {
	return &Batch{Schema: schema, Cols: cols, Sel: b.Sel, off: b.off, n: b.n}
}

// Select returns a view keeping the logical rows named by sel (indices into
// the batch's logical row space).
func (b *Batch) Select(sel []int) *Batch {
	phys := make([]int, len(sel))
	for i, s := range sel {
		phys[i] = b.phys(s)
	}
	return &Batch{Schema: b.Schema, Cols: b.Cols, Sel: phys, n: len(phys)}
}

// Materialize compacts the batch into contiguous physical storage, dropping
// the selection vector and window offset. A batch that is already
// contiguous and unwindowed is returned as is.
func (b *Batch) Materialize() *Batch {
	if b.Sel == nil && b.off == 0 && (len(b.Cols) == 0 || b.physLen() == b.n) {
		return b
	}
	idx := make([]int, b.n)
	for i := range idx {
		idx[i] = b.phys(i)
	}
	cols := make([]*Column, len(b.Cols))
	for c, col := range b.Cols {
		cols[c] = col.Gather(idx)
	}
	return &Batch{Schema: b.Schema, Cols: cols, n: b.n}
}

// physLen returns the physical length of the first column's storage.
func (b *Batch) physLen() int {
	c := b.Cols[0]
	if c.Mixed != nil {
		return len(c.Mixed)
	}
	switch c.Kind {
	case sqltypes.KindInt:
		return len(c.Ints)
	case sqltypes.KindFloat:
		return len(c.Floats)
	case sqltypes.KindString:
		return len(c.Strs)
	case sqltypes.KindBool:
		return len(c.Bools)
	default:
		if c.Nulls != nil {
			return len(c.Nulls)
		}
		return b.n
	}
}

// FromRelation decomposes a relation into columnar form. The relation's
// rows are not retained.
func FromRelation(rel *sqltypes.Relation) *Batch {
	n := len(rel.Rows)
	cols := make([]*Column, len(rel.Schema.Columns))
	cells := make([]sqltypes.Value, n)
	for c := range cols {
		for i, row := range rel.Rows {
			cells[i] = row[c]
		}
		cols[c] = NewColumn(cells)
	}
	return &Batch{Schema: rel.Schema, Cols: cols, n: n}
}

// ToRelation materializes the batch's logical rows as a relation. Cell
// values are exactly the values the batch was built from.
func (b *Batch) ToRelation() *sqltypes.Relation {
	rel := &sqltypes.Relation{Schema: b.Schema, Rows: make([]sqltypes.Row, b.n)}
	for i := 0; i < b.n; i++ {
		rel.Rows[i] = b.Row(i)
	}
	return rel
}

// WireSize returns the wire size of the batch's logical rows, exactly equal
// to b.ToRelation().ByteSize() but computed from per-column sums: fixed-
// width columns without nulls cost O(1), only string and mixed columns walk
// their cells. Keeping the byte count identical keeps every network
// Transfer draw identical between the columnar and row paths.
func (b *Batch) WireSize() int {
	n := 16 + 4*b.n
	for _, col := range b.Cols {
		n += b.colBytes(col)
	}
	return n
}

// colBytes sums one column's cell sizes over the batch's logical rows.
func (b *Batch) colBytes(c *Column) int {
	if c.Mixed == nil && c.Kind != sqltypes.KindString {
		// Fixed-width kind: width*rows, with nulls charged at 1 byte.
		var width int
		switch c.Kind {
		case sqltypes.KindInt, sqltypes.KindFloat:
			width = 8
		default: // KindBool, KindNull
			width = 1
		}
		if c.Nulls == nil || width == 1 {
			return width * b.n
		}
		nulls := 0
		for i := 0; i < b.n; i++ {
			if c.Nulls[b.phys(i)] {
				nulls++
			}
		}
		return width*(b.n-nulls) + nulls
	}
	total := 0
	for i := 0; i < b.n; i++ {
		total += c.byteSize(b.phys(i))
	}
	return total
}

// Accumulator concatenates batches column-wise — the integrator uses it to
// assemble a fragment's columnar result from arriving stream batches
// without a row round trip. Matching kinds append typed payload slices;
// kind conflicts demote the column to the Mixed representation, so the
// accumulated cells are always exactly the concatenation of the inputs'
// cells.
type Accumulator struct {
	schema *sqltypes.Schema
	cols   []*Column
	n      int
}

// NewAccumulator starts an accumulator for the schema.
func NewAccumulator(schema *sqltypes.Schema) *Accumulator {
	cols := make([]*Column, len(schema.Columns))
	for i := range cols {
		cols[i] = &Column{}
	}
	return &Accumulator{schema: schema, cols: cols}
}

// Len returns the number of rows accumulated so far.
func (a *Accumulator) Len() int { return a.n }

// Append adds b's logical rows.
func (a *Accumulator) Append(b *Batch) {
	for c := range a.cols {
		a.cols[c] = appendCol(a.cols[c], a.n, b.Cols[c], b)
	}
	a.n += b.Len()
}

// Finish returns the accumulated batch. The accumulator must not be
// appended to afterwards.
func (a *Accumulator) Finish() *Batch {
	return &Batch{Schema: a.schema, Cols: a.cols, n: a.n}
}

// appendCol appends src's cells (through window w) onto dst, which holds
// dstLen cells.
func appendCol(dst *Column, dstLen int, src *Column, w *Batch) *Column {
	n := w.Len()
	if n == 0 {
		return dst
	}
	boxAppend := func() *Column {
		if dst.Mixed == nil {
			mixed := make([]sqltypes.Value, dstLen, dstLen+n)
			for i := 0; i < dstLen; i++ {
				mixed[i] = dst.Value(i)
			}
			dst = &Column{Mixed: mixed}
		}
		for i := 0; i < n; i++ {
			dst.Mixed = append(dst.Mixed, src.Value(w.Phys(i)))
		}
		return dst
	}
	if dst.Mixed != nil || src.Mixed != nil {
		return boxAppend()
	}
	// Adopt the incoming kind when dst is empty or all-NULL so far.
	if dst.Kind == sqltypes.KindNull && src.Kind != sqltypes.KindNull {
		k := &Column{Kind: src.Kind}
		if dstLen > 0 {
			k.Nulls = make([]bool, dstLen)
			for i := range k.Nulls {
				k.Nulls[i] = true
			}
		}
		switch src.Kind {
		case sqltypes.KindInt:
			k.Ints = make([]int64, dstLen)
		case sqltypes.KindFloat:
			k.Floats = make([]float64, dstLen)
		case sqltypes.KindString:
			k.Strs = make([]string, dstLen)
		case sqltypes.KindBool:
			k.Bools = make([]bool, dstLen)
		}
		dst = k
	}
	switch {
	case src.Kind == sqltypes.KindNull:
		// Appending NULLs: extend payload with zeros and mark nulls.
		dst.ensureNulls(dstLen)
		for i := 0; i < n; i++ {
			dst.Nulls = append(dst.Nulls, true)
		}
		dst.extendZero(n)
		return dst
	case src.Kind != dst.Kind:
		return boxAppend()
	}
	// Same typed kind: bulk-append payloads and merge null bitmaps.
	if src.Nulls != nil || dst.Nulls != nil {
		dst.ensureNulls(dstLen)
		for i := 0; i < n; i++ {
			dst.Nulls = append(dst.Nulls, src.Nulls != nil && src.Nulls[w.Phys(i)])
		}
	}
	if off, ok := w.Contig(); ok {
		switch dst.Kind {
		case sqltypes.KindInt:
			dst.Ints = append(dst.Ints, src.Ints[off:off+n]...)
		case sqltypes.KindFloat:
			dst.Floats = append(dst.Floats, src.Floats[off:off+n]...)
		case sqltypes.KindString:
			dst.Strs = append(dst.Strs, src.Strs[off:off+n]...)
		case sqltypes.KindBool:
			dst.Bools = append(dst.Bools, src.Bools[off:off+n]...)
		}
		return dst
	}
	for i := 0; i < n; i++ {
		p := w.Phys(i)
		switch dst.Kind {
		case sqltypes.KindInt:
			dst.Ints = append(dst.Ints, src.Ints[p])
		case sqltypes.KindFloat:
			dst.Floats = append(dst.Floats, src.Floats[p])
		case sqltypes.KindString:
			dst.Strs = append(dst.Strs, src.Strs[p])
		case sqltypes.KindBool:
			dst.Bools = append(dst.Bools, src.Bools[p])
		}
	}
	return dst
}

// ensureNulls backfills a null bitmap of length n with false.
func (c *Column) ensureNulls(n int) {
	if c.Nulls == nil {
		c.Nulls = make([]bool, n)
	}
}

// extendZero appends n zero payload cells of the column's kind.
func (c *Column) extendZero(n int) {
	switch c.Kind {
	case sqltypes.KindInt:
		c.Ints = append(c.Ints, make([]int64, n)...)
	case sqltypes.KindFloat:
		c.Floats = append(c.Floats, make([]float64, n)...)
	case sqltypes.KindString:
		c.Strs = append(c.Strs, make([]string, n)...)
	case sqltypes.KindBool:
		c.Bools = append(c.Bools, make([]bool, n)...)
	}
}

// Builder accumulates rows into a batch, the row-at-a-time construction
// used at fallback boundaries. Columns come out typed when kind-uniform,
// exactly as FromRelation would produce them.
type Builder struct {
	schema *sqltypes.Schema
	cells  [][]sqltypes.Value
	n      int
}

// NewBuilder starts a builder for the schema.
func NewBuilder(schema *sqltypes.Schema) *Builder {
	return &Builder{schema: schema, cells: make([][]sqltypes.Value, len(schema.Columns))}
}

// AppendRow adds one row.
func (b *Builder) AppendRow(row sqltypes.Row) {
	for c := range b.cells {
		b.cells[c] = append(b.cells[c], row[c])
	}
	b.n++
}

// Len returns the number of rows appended so far.
func (b *Builder) Len() int { return b.n }

// Finish analyzes the accumulated cells into a batch.
func (b *Builder) Finish() *Batch {
	cols := make([]*Column, len(b.cells))
	for c, cells := range b.cells {
		cols[c] = NewColumn(cells)
	}
	return &Batch{Schema: b.schema, Cols: cols, n: b.n}
}

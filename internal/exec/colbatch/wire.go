// Wire encoding for column batches: the typed columnar protocol that remote
// cursors ship across the (simulated) process boundary instead of boxed rows.
//
// Layout (all multi-byte integers little-endian; uvarint/varint are Go's
// encoding/binary varints, signed values zigzag-encoded):
//
//	magic 0xCB | version 0x01 | uvarint ncols | uvarint nrows
//	then per column:
//	  kind byte: 0=null 1=int 2=float 3=string 4=bool 5=mixed
//	  kind 0 (all-NULL): nothing further — nrows NULLs are implied.
//	  kinds 1-4:
//	    null byte: 0 = no NULLs, 1 = a bitmap of ceil(nrows/8) bytes follows
//	               (bit i of byte i/8 set ⇔ row i is NULL)
//	    encoding byte + payload covering the non-null cells only, in row
//	    order:
//	      int    enc 0: zigzag varint per value
//	             enc 1: first value zigzag varint, then zigzag varint deltas
//	                    (wins on sequential keys)
//	      float  enc 0: fixed 8-byte IEEE-754 bits per value
//	      bool   enc 0: bitpacked, 8 values per byte
//	      string enc 0: uvarint length + raw bytes per value
//	             enc 1: dictionary — uvarint dict size, dict entries
//	                    (uvarint length + bytes, first-appearance order),
//	                    then indexes bitpacked at bits(dictsize-1) width
//	                    (wins on low-cardinality tag columns)
//	kind 5 (mixed, not kind-uniform): per cell a kind byte then the scalar
//	payload (int zigzag varint, float 8 bytes, string uvarint+bytes, bool 1
//	byte, null nothing).
//
// The schema is NOT on the wire: it travels once in the plan handshake, so
// Decode takes it as a parameter. The encoder applies the batch's selection
// vector/window — the receiver always sees a contiguous, compacted batch.
// Chooser rule: the encoder computes the exact byte size of each candidate
// encoding (plain vs delta ints, plain vs dictionary strings) and emits only
// the shorter one, so choosing costs arithmetic, not a second payload.
// Bumping the version byte is the upgrade path for new encodings; Decode
// rejects versions it does not know.
package colbatch

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/sqltypes"
)

const (
	wireMagic   = 0xCB
	wireVersion = 0x01

	wireKindMixed = 5 // column tag for non-kind-uniform columns

	encIntPlain = 0
	encIntDelta = 1
	encStrPlain = 0
	encStrDict  = 1
)

// Encoded is a batch in wire form plus the bookkeeping the telemetry layer
// wants: the encoded size is what the network model charges, the per-column
// encoding labels land in span attributes.
type Encoded struct {
	Data   []byte
	ColEnc []string // per-column encoding label, e.g. "int-delta", "str-dict(4)"
	Rows   int
}

// WireBytes is the size the network model charges for the encoded batch.
func (e *Encoded) WireBytes() int { return len(e.Data) }

// Encode serializes the batch's logical rows. The selection vector and row
// window are applied here: the wire carries only the selected rows,
// compacted. A batch that is a contiguous window over its columns — the
// shape every remote cursor batch has — is encoded in place by offsetting
// into the payload slices; only selection-vector batches pay a gather.
func Encode(b *Batch) *Encoded {
	src := b
	if src.Sel != nil {
		src = src.Materialize()
	}
	off, _ := src.Contig()
	n := src.Len()
	out := make([]byte, 0, 64+8*n)
	out = append(out, wireMagic, wireVersion)
	out = binary.AppendUvarint(out, uint64(len(src.Cols)))
	out = binary.AppendUvarint(out, uint64(n))
	labels := make([]string, len(src.Cols))
	for ci, col := range src.Cols {
		out, labels[ci] = encodeColumn(out, col, off, n)
	}
	return &Encoded{Data: out, ColEnc: labels, Rows: n}
}

// encodeColumn appends rows [off, off+n) of one column and returns the
// updated buffer plus the encoding label chosen.
func encodeColumn(out []byte, c *Column, off, n int) ([]byte, string) {
	if c.Mixed != nil {
		out = append(out, wireKindMixed)
		return encodeMixed(out, c.Mixed[off:off+n]), "mixed"
	}
	out = append(out, byte(c.Kind))
	if c.Kind == sqltypes.KindNull {
		return out, "null"
	}
	// Null bitmap (omitted entirely when the column has no NULLs).
	var nulls []bool
	if c.Nulls != nil {
		nulls = c.Nulls[off : off+n]
	}
	hasNulls := false
	for _, isNull := range nulls {
		if isNull {
			hasNulls = true
			break
		}
	}
	if hasNulls {
		out = append(out, 1)
		out = appendBitmap(out, nulls)
	} else {
		out = append(out, 0)
		nulls = nil
	}
	// Payload covers non-null cells only.
	switch c.Kind {
	case sqltypes.KindInt:
		return encodeInts(out, gatherKept(c.Ints[off:off+n], nulls))
	case sqltypes.KindFloat:
		out = append(out, 0)
		for i, v := range c.Floats[off : off+n] {
			if nulls != nil && nulls[i] {
				continue
			}
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
		return out, "float"
	case sqltypes.KindBool:
		out = append(out, 0)
		return appendBitmap(out, gatherKept(c.Bools[off:off+n], nulls)), "bool"
	case sqltypes.KindString:
		return encodeStrings(out, gatherKept(c.Strs[off:off+n], nulls))
	default:
		panic(fmt.Sprintf("colbatch: unencodable column kind %d", c.Kind))
	}
}

// gatherKept collects the non-null cells of a payload window in row order.
// With no NULLs the window itself is returned — no copy.
func gatherKept[T any](vals []T, nulls []bool) []T {
	if nulls == nil {
		return vals
	}
	kept := make([]T, 0, len(vals))
	for i, v := range vals {
		if !nulls[i] {
			kept = append(kept, v)
		}
	}
	return kept
}

// varintLen is the encoded size of one zigzag varint.
func varintLen(v int64) int {
	uv := uint64(v)<<1 ^ uint64(v>>63)
	return (bits.Len64(uv|1) + 6) / 7
}

// uvarintLen is the encoded size of one uvarint.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// encodeInts writes the shorter of plain-zigzag and delta-zigzag, sizing
// both candidates arithmetically and encoding only the winner.
func encodeInts(out []byte, vals []int64) ([]byte, string) {
	plainSize, deltaSize, prev := 0, 0, int64(0)
	for i, v := range vals {
		plainSize += varintLen(v)
		if i == 0 {
			deltaSize += varintLen(v)
		} else {
			deltaSize += varintLen(v - prev)
		}
		prev = v
	}
	if deltaSize < plainSize {
		out = append(out, encIntDelta)
		prev = 0
		for i, v := range vals {
			if i == 0 {
				out = binary.AppendVarint(out, v)
			} else {
				out = binary.AppendVarint(out, v-prev)
			}
			prev = v
		}
		return out, "int-delta"
	}
	out = append(out, encIntPlain)
	for _, v := range vals {
		out = binary.AppendVarint(out, v)
	}
	return out, "int"
}

// encodeStrings writes the shorter of plain and dictionary forms, sizing
// both candidates before emitting either payload.
func encodeStrings(out []byte, vals []string) ([]byte, string) {
	// Dictionary pass: entries in first-appearance order, indexes bitpacked.
	ids := make(map[string]int, 8)
	var entries []string
	idx := make([]uint64, len(vals))
	plainSize, dictEntriesSize := 0, 0
	for i, s := range vals {
		plainSize += uvarintLen(uint64(len(s))) + len(s)
		id, ok := ids[s]
		if !ok {
			id = len(entries)
			ids[s] = id
			entries = append(entries, s)
			dictEntriesSize += uvarintLen(uint64(len(s))) + len(s)
		}
		idx[i] = uint64(id)
	}
	width := indexWidth(len(entries))
	dictSize := uvarintLen(uint64(len(entries))) + dictEntriesSize + (len(vals)*width+7)/8
	if dictSize < plainSize {
		out = append(out, encStrDict)
		out = binary.AppendUvarint(out, uint64(len(entries)))
		for _, s := range entries {
			out = binary.AppendUvarint(out, uint64(len(s)))
			out = append(out, s...)
		}
		return appendPacked(out, idx, width), fmt.Sprintf("str-dict(%d)", len(entries))
	}
	out = append(out, encStrPlain)
	for _, s := range vals {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	return out, "str"
}

// encodeMixed writes per-cell tagged scalars.
func encodeMixed(out []byte, cells []sqltypes.Value) []byte {
	for _, v := range cells {
		out = append(out, byte(v.Kind()))
		switch v.Kind() {
		case sqltypes.KindInt:
			out = binary.AppendVarint(out, v.Int())
		case sqltypes.KindFloat:
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v.Float()))
		case sqltypes.KindString:
			s := v.Str()
			out = binary.AppendUvarint(out, uint64(len(s)))
			out = append(out, s...)
		case sqltypes.KindBool:
			if v.Bool() {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		}
	}
	return out
}

// indexWidth is the bit width needed to address dict entries [0, n).
func indexWidth(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// appendBitmap packs bools 8 per byte, LSB first.
func appendBitmap(out []byte, vals []bool) []byte {
	nb := (len(vals) + 7) / 8
	start := len(out)
	out = append(out, make([]byte, nb)...)
	for i, v := range vals {
		if v {
			out[start+i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// readBitmap unpacks n bools packed 8 per byte.
func readBitmap(data []byte, pos, n int) ([]bool, int, error) {
	nb := (n + 7) / 8
	if pos+nb > len(data) {
		return nil, 0, fmt.Errorf("colbatch wire: truncated bitmap")
	}
	vals := make([]bool, n)
	for i := 0; i < n; i++ {
		vals[i] = data[pos+i/8]&(1<<(i%8)) != 0
	}
	return vals, pos + nb, nil
}

// appendPacked bitpacks each value at the given width, LSB first.
func appendPacked(out []byte, vals []uint64, width int) []byte {
	nbits := len(vals) * width
	nb := (nbits + 7) / 8
	start := len(out)
	out = append(out, make([]byte, nb)...)
	bit := 0
	for _, v := range vals {
		for w := 0; w < width; w++ {
			if v&(1<<w) != 0 {
				out[start+bit/8] |= 1 << (bit % 8)
			}
			bit++
		}
	}
	return out
}

// readPacked unpacks n values bitpacked at the given width.
func readPacked(data []byte, pos, n, width int) ([]uint64, int, error) {
	nbits := n * width
	nb := (nbits + 7) / 8
	if pos+nb > len(data) {
		return nil, 0, fmt.Errorf("colbatch wire: truncated packed indexes")
	}
	vals := make([]uint64, n)
	bit := 0
	for i := 0; i < n; i++ {
		var v uint64
		for w := 0; w < width; w++ {
			if data[pos+bit/8]&(1<<(bit%8)) != 0 {
				v |= 1 << w
			}
			bit++
		}
		vals[i] = v
	}
	return vals, pos + nb, nil
}

// Decode reconstructs a contiguous batch from wire bytes. The schema comes
// from the plan handshake; it supplies the column count check and the
// decoded batch's schema pointer.
func Decode(schema *sqltypes.Schema, data []byte) (*Batch, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("colbatch wire: short buffer (%d bytes)", len(data))
	}
	if data[0] != wireMagic {
		return nil, fmt.Errorf("colbatch wire: bad magic 0x%02X", data[0])
	}
	if data[1] != wireVersion {
		return nil, fmt.Errorf("colbatch wire: unsupported version %d", data[1])
	}
	pos := 2
	ncols, pos, err := readUvarint(data, pos)
	if err != nil {
		return nil, err
	}
	nrows, pos, err := readUvarint(data, pos)
	if err != nil {
		return nil, err
	}
	if schema != nil && int(ncols) != schema.Len() {
		return nil, fmt.Errorf("colbatch wire: %d columns on wire, schema has %d", ncols, schema.Len())
	}
	n := int(nrows)
	cols := make([]*Column, ncols)
	for ci := range cols {
		cols[ci], pos, err = decodeColumn(data, pos, n)
		if err != nil {
			return nil, fmt.Errorf("column %d: %w", ci, err)
		}
	}
	if pos != len(data) {
		return nil, fmt.Errorf("colbatch wire: %d trailing bytes", len(data)-pos)
	}
	return New(schema, cols, n), nil
}

// decodeColumn reads one column of n rows.
func decodeColumn(data []byte, pos, n int) (*Column, int, error) {
	if pos >= len(data) {
		return nil, 0, fmt.Errorf("colbatch wire: missing column tag")
	}
	tag := data[pos]
	pos++
	if tag == wireKindMixed {
		return decodeMixed(data, pos, n)
	}
	kind := sqltypes.Kind(tag)
	if kind == sqltypes.KindNull {
		return NullColumn(), pos, nil
	}
	if pos >= len(data) {
		return nil, 0, fmt.Errorf("colbatch wire: missing null flag")
	}
	nullFlag := data[pos]
	pos++
	var nulls []bool
	var err error
	switch nullFlag {
	case 0:
	case 1:
		nulls, pos, err = readBitmap(data, pos, n)
		if err != nil {
			return nil, 0, err
		}
	default:
		return nil, 0, fmt.Errorf("colbatch wire: bad null flag %d", nullFlag)
	}
	kept := n
	if nulls != nil {
		kept = 0
		for _, isNull := range nulls {
			if !isNull {
				kept++
			}
		}
	}
	if pos >= len(data) {
		return nil, 0, fmt.Errorf("colbatch wire: missing encoding byte")
	}
	enc := data[pos]
	pos++
	col := &Column{Kind: kind, Nulls: nulls}
	switch kind {
	case sqltypes.KindInt:
		vals, npos, err := decodeInts(data, pos, kept, enc)
		if err != nil {
			return nil, 0, err
		}
		pos = npos
		col.Ints = scatter(vals, nulls, n)
	case sqltypes.KindFloat:
		if enc != 0 {
			return nil, 0, fmt.Errorf("colbatch wire: bad float encoding %d", enc)
		}
		if pos+8*kept > len(data) {
			return nil, 0, fmt.Errorf("colbatch wire: truncated floats")
		}
		vals := make([]float64, kept)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
			pos += 8
		}
		col.Floats = scatter(vals, nulls, n)
	case sqltypes.KindBool:
		if enc != 0 {
			return nil, 0, fmt.Errorf("colbatch wire: bad bool encoding %d", enc)
		}
		vals, npos, err := readBitmap(data, pos, kept)
		if err != nil {
			return nil, 0, err
		}
		pos = npos
		col.Bools = scatter(vals, nulls, n)
	case sqltypes.KindString:
		vals, npos, err := decodeStrings(data, pos, kept, enc)
		if err != nil {
			return nil, 0, err
		}
		pos = npos
		col.Strs = scatter(vals, nulls, n)
	default:
		return nil, 0, fmt.Errorf("colbatch wire: unknown column kind %d", kind)
	}
	return col, pos, nil
}

// scatter spreads kept (non-null) values back to n slots, zero at NULLs.
func scatter[T any](kept []T, nulls []bool, n int) []T {
	if nulls == nil {
		out := make([]T, n)
		copy(out, kept)
		return out
	}
	out := make([]T, n)
	j := 0
	for i := 0; i < n; i++ {
		if !nulls[i] {
			out[i] = kept[j]
			j++
		}
	}
	return out
}

// decodeInts reads kept ints under the given encoding.
func decodeInts(data []byte, pos, kept int, enc byte) ([]int64, int, error) {
	vals := make([]int64, kept)
	switch enc {
	case encIntPlain:
		for i := range vals {
			v, npos, err := readVarint(data, pos)
			if err != nil {
				return nil, 0, err
			}
			vals[i] = v
			pos = npos
		}
	case encIntDelta:
		prev := int64(0)
		for i := range vals {
			v, npos, err := readVarint(data, pos)
			if err != nil {
				return nil, 0, err
			}
			if i == 0 {
				prev = v
			} else {
				prev += v
			}
			vals[i] = prev
			pos = npos
		}
	default:
		return nil, 0, fmt.Errorf("colbatch wire: bad int encoding %d", enc)
	}
	return vals, pos, nil
}

// decodeStrings reads kept strings under the given encoding.
func decodeStrings(data []byte, pos, kept int, enc byte) ([]string, int, error) {
	switch enc {
	case encStrPlain:
		vals := make([]string, kept)
		for i := range vals {
			s, npos, err := readString(data, pos)
			if err != nil {
				return nil, 0, err
			}
			vals[i] = s
			pos = npos
		}
		return vals, pos, nil
	case encStrDict:
		dsize, pos, err := readUvarint(data, pos)
		if err != nil {
			return nil, 0, err
		}
		entries := make([]string, dsize)
		for i := range entries {
			entries[i], pos, err = readString(data, pos)
			if err != nil {
				return nil, 0, err
			}
		}
		idx, pos, err := readPacked(data, pos, kept, indexWidth(int(dsize)))
		if err != nil {
			return nil, 0, err
		}
		vals := make([]string, kept)
		for i, id := range idx {
			if id >= dsize {
				return nil, 0, fmt.Errorf("colbatch wire: dict index %d out of range %d", id, dsize)
			}
			vals[i] = entries[id]
		}
		return vals, pos, nil
	default:
		return nil, 0, fmt.Errorf("colbatch wire: bad string encoding %d", enc)
	}
}

// decodeMixed reads n tagged scalar cells.
func decodeMixed(data []byte, pos, n int) (*Column, int, error) {
	cells := make([]sqltypes.Value, n)
	for i := 0; i < n; i++ {
		if pos >= len(data) {
			return nil, 0, fmt.Errorf("colbatch wire: truncated mixed column")
		}
		kind := sqltypes.Kind(data[pos])
		pos++
		switch kind {
		case sqltypes.KindNull:
			cells[i] = sqltypes.Null
		case sqltypes.KindInt:
			v, npos, err := readVarint(data, pos)
			if err != nil {
				return nil, 0, err
			}
			cells[i] = sqltypes.NewInt(v)
			pos = npos
		case sqltypes.KindFloat:
			if pos+8 > len(data) {
				return nil, 0, fmt.Errorf("colbatch wire: truncated mixed float")
			}
			cells[i] = sqltypes.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(data[pos:])))
			pos += 8
		case sqltypes.KindString:
			s, npos, err := readString(data, pos)
			if err != nil {
				return nil, 0, err
			}
			cells[i] = sqltypes.NewString(s)
			pos = npos
		case sqltypes.KindBool:
			if pos >= len(data) {
				return nil, 0, fmt.Errorf("colbatch wire: truncated mixed bool")
			}
			cells[i] = sqltypes.NewBool(data[pos] != 0)
			pos++
		default:
			return nil, 0, fmt.Errorf("colbatch wire: bad mixed cell kind %d", kind)
		}
	}
	return &Column{Mixed: cells}, pos, nil
}

// readUvarint reads one uvarint with bounds checking.
func readUvarint(data []byte, pos int) (uint64, int, error) {
	v, sz := binary.Uvarint(data[pos:])
	if sz <= 0 {
		return 0, 0, fmt.Errorf("colbatch wire: bad uvarint at %d", pos)
	}
	return v, pos + sz, nil
}

// readVarint reads one zigzag varint with bounds checking.
func readVarint(data []byte, pos int) (int64, int, error) {
	v, sz := binary.Varint(data[pos:])
	if sz <= 0 {
		return 0, 0, fmt.Errorf("colbatch wire: bad varint at %d", pos)
	}
	return v, pos + sz, nil
}

// readString reads a uvarint-length-prefixed string.
func readString(data []byte, pos int) (string, int, error) {
	l, pos, err := readUvarint(data, pos)
	if err != nil {
		return "", 0, err
	}
	if uint64(len(data)-pos) < l {
		return "", 0, fmt.Errorf("colbatch wire: truncated string")
	}
	return string(data[pos : pos+int(l)]), pos + int(l), nil
}

package colbatch

import (
	"math"
	"testing"

	"repro/internal/sqltypes"
)

// testSchema builds an anonymous schema of n columns (names only; the wire
// layer never looks at types).
func wireSchema(n int) *sqltypes.Schema {
	cols := make([]sqltypes.Column, n)
	for i := range cols {
		cols[i] = sqltypes.Column{Name: string(rune('a' + i%26))}
	}
	return &sqltypes.Schema{Columns: cols}
}

// requireRoundTrip encodes b, decodes it, and requires the decoded batch to
// agree cell for cell (bit-identical floats) with b's logical rows.
func requireRoundTrip(t *testing.T, b *Batch) *Encoded {
	t.Helper()
	enc := Encode(b)
	dec, err := Decode(b.Schema, enc.Data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dec.Len() != b.Len() {
		t.Fatalf("round trip changed row count: %d -> %d", b.Len(), dec.Len())
	}
	if len(dec.Cols) != len(b.Cols) {
		t.Fatalf("round trip changed column count: %d -> %d", len(b.Cols), len(dec.Cols))
	}
	for r := 0; r < b.Len(); r++ {
		for c := range b.Cols {
			want, got := b.Value(r, c), dec.Value(r, c)
			if want.Kind() != got.Kind() {
				t.Fatalf("cell (%d,%d) kind %v -> %v", r, c, want.Kind(), got.Kind())
			}
			if want.Kind() == sqltypes.KindFloat {
				if math.Float64bits(want.Float()) != math.Float64bits(got.Float()) {
					t.Fatalf("cell (%d,%d) float bits diverged: %v -> %v", r, c, want, got)
				}
			} else if want != got {
				t.Fatalf("cell (%d,%d) diverged: %#v -> %#v", r, c, want, got)
			}
			if b.Cols[c].IsNull(b.Phys(r)) != dec.Cols[c].IsNull(dec.Phys(r)) {
				t.Fatalf("cell (%d,%d) null bit diverged", r, c)
			}
		}
	}
	return enc
}

func TestWireRoundTripTyped(t *testing.T) {
	ints := IntColumn([]int64{1, 2, 3, -9, 1 << 40}, nil)
	intsNull := IntColumn([]int64{7, 0, -1, 0, 42}, []bool{false, true, false, true, false})
	floats := FloatColumn([]float64{0, -0.0, math.Pi, math.Inf(1), math.NaN()}, nil)
	strs := StringColumn([]string{"alpha", "beta", "alpha", "", "beta"}, nil)
	strsNull := StringColumn([]string{"x", "", "y", "", "x"}, []bool{false, true, false, true, false})
	bools := BoolColumn([]bool{true, false, true, true, false}, nil)
	nulls := NullColumn()
	cols := []*Column{ints, intsNull, floats, strs, strsNull, bools, nulls}
	b := New(wireSchema(len(cols)), cols, 5)
	enc := requireRoundTrip(t, b)
	if enc.Rows != 5 {
		t.Fatalf("Encoded.Rows = %d, want 5", enc.Rows)
	}
	if len(enc.ColEnc) != len(cols) {
		t.Fatalf("ColEnc has %d labels, want %d", len(enc.ColEnc), len(cols))
	}
}

func TestWireRoundTripEmptyBatch(t *testing.T) {
	b := New(wireSchema(3), []*Column{IntColumn(nil, nil), StringColumn(nil, nil), FloatColumn(nil, nil)}, 0)
	enc := requireRoundTrip(t, b)
	if enc.Rows != 0 {
		t.Fatalf("Encoded.Rows = %d, want 0", enc.Rows)
	}
}

func TestWireRoundTripZeroColumns(t *testing.T) {
	requireRoundTrip(t, New(wireSchema(0), nil, 0))
}

func TestWireRoundTripAllNullTypedColumn(t *testing.T) {
	c := IntColumn([]int64{0, 0, 0}, []bool{true, true, true})
	requireRoundTrip(t, New(wireSchema(1), []*Column{c}, 3))
}

func TestWireRoundTripMixedColumn(t *testing.T) {
	c := NewColumn([]sqltypes.Value{
		sqltypes.NewInt(4), sqltypes.NewString("s"), sqltypes.Null,
		sqltypes.NewFloat(2.5), sqltypes.NewBool(true),
	})
	if c.Mixed == nil {
		t.Fatal("expected a mixed column")
	}
	enc := requireRoundTrip(t, New(wireSchema(1), []*Column{c}, 5))
	if enc.ColEnc[0] != "mixed" {
		t.Fatalf("ColEnc = %q, want mixed", enc.ColEnc[0])
	}
}

// TestWireSelectionCompacted: encoding a batch with a selection vector ships
// only the selected rows, and the receiver sees them contiguous.
func TestWireSelectionCompacted(t *testing.T) {
	ints := IntColumn([]int64{10, 20, 30, 40, 50}, nil)
	strs := StringColumn([]string{"a", "b", "c", "d", "e"}, nil)
	b := NewSelected(wireSchema(2), []*Column{ints, strs}, []int{4, 1, 3})
	enc := requireRoundTrip(t, b)
	dec, err := Decode(b.Schema, enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Sel != nil {
		t.Fatal("decoded batch still carries a selection vector")
	}
	if got := dec.Value(0, 0).Int(); got != 50 {
		t.Fatalf("selected row 0 = %d, want 50", got)
	}
	full := Encode(New(b.Schema, []*Column{ints, strs}, 5))
	if len(enc.Data) >= len(full.Data) {
		t.Fatalf("3-row selection encoded to %d bytes, full 5 rows to %d", len(enc.Data), len(full.Data))
	}
}

// TestWireDictionaryWins: a low-cardinality string column must pick the
// dictionary encoding and beat the plain form.
func TestWireDictionaryWins(t *testing.T) {
	vals := make([]string, 256)
	for i := range vals {
		vals[i] = []string{"promo", "ship", "hold", "back"}[i%4]
	}
	b := New(wireSchema(1), []*Column{StringColumn(vals, nil)}, len(vals))
	enc := Encode(b)
	if enc.ColEnc[0] != "str-dict(4)" {
		t.Fatalf("ColEnc = %q, want str-dict(4)", enc.ColEnc[0])
	}
	requireRoundTrip(t, b)
}

// TestWireDeltaWins: sequential keys must pick the delta encoding.
func TestWireDeltaWins(t *testing.T) {
	vals := make([]int64, 512)
	for i := range vals {
		vals[i] = 1_000_000 + int64(i)
	}
	b := New(wireSchema(1), []*Column{IntColumn(vals, nil)}, len(vals))
	enc := Encode(b)
	if enc.ColEnc[0] != "int-delta" {
		t.Fatalf("ColEnc = %q, want int-delta", enc.ColEnc[0])
	}
	if len(enc.Data) > 2*len(vals) {
		t.Fatalf("sequential ints encoded to %d bytes (> 2B/row)", len(enc.Data))
	}
	requireRoundTrip(t, b)
}

// TestWireCompactVsRowBytes: the encoded form must undercut the row-model
// byte size (ToRelation().ByteSize()) on a realistic analytic batch.
func TestWireCompactVsRowBytes(t *testing.T) {
	n := 1000
	ids := make([]int64, n)
	qty := make([]int64, n)
	price := make([]float64, n)
	tags := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		qty[i] = int64(i%50) + 1
		price[i] = float64(i) * 1.5
		tags[i] = []string{"promo", "ship", "hold", "back"}[i%4]
	}
	b := New(wireSchema(4), []*Column{
		IntColumn(ids, nil), IntColumn(qty, nil), FloatColumn(price, nil), StringColumn(tags, nil),
	}, n)
	enc := Encode(b)
	raw := b.ToRelation().ByteSize()
	if len(enc.Data)*3 > raw {
		t.Fatalf("encoded %d bytes vs row-model %d: less than 3x reduction", len(enc.Data), raw)
	}
	requireRoundTrip(t, b)
}

func TestWireDecodeRejectsCorruption(t *testing.T) {
	b := New(wireSchema(1), []*Column{IntColumn([]int64{1, 2, 3}, nil)}, 3)
	enc := Encode(b)
	if _, err := Decode(b.Schema, nil); err == nil {
		t.Error("nil buffer decoded")
	}
	if _, err := Decode(b.Schema, []byte{0x00, 0x01}); err == nil {
		t.Error("bad magic decoded")
	}
	if _, err := Decode(b.Schema, []byte{wireMagic, 0x7F}); err == nil {
		t.Error("future version decoded")
	}
	if _, err := Decode(b.Schema, enc.Data[:len(enc.Data)-1]); err == nil {
		t.Error("truncated buffer decoded")
	}
	if _, err := Decode(wireSchema(2), enc.Data); err == nil {
		t.Error("column-count mismatch decoded")
	}
	if _, err := Decode(b.Schema, append(append([]byte{}, enc.Data...), 0xFF)); err == nil {
		t.Error("trailing garbage decoded")
	}
}

// FuzzWireRoundTrip drives Encode/Decode with generated batches: the fuzz
// input seeds a deterministic batch builder covering every column kind,
// null patterns, and selection vectors. Decode must also never panic on
// arbitrary bytes.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(0), false)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(5), true)
	f.Add([]byte{0xFF, 0x00, 0xAB}, uint16(33), false)
	f.Add([]byte{9, 9, 9, 9}, uint16(200), true)
	f.Fuzz(func(t *testing.T, seed []byte, rows uint16, useSel bool) {
		// Arbitrary bytes into Decode: errors allowed, panics are not.
		_, _ = Decode(nil, seed)

		n := int(rows % 300)
		byteAt := func(i int) byte {
			if len(seed) == 0 {
				return byte(i)
			}
			return seed[i%len(seed)]
		}
		ncols := int(byteAt(0))%6 + 1
		cols := make([]*Column, ncols)
		for c := range cols {
			cells := make([]sqltypes.Value, n)
			for i := 0; i < n; i++ {
				x := byteAt(c*31 + i)
				// Kind choice per column, with one column forced mixed.
				kindSel := byteAt(c + 1) % 5
				if c == ncols-1 {
					kindSel = x % 5 // per-cell kind: mixed column
				}
				switch {
				case x%7 == 0:
					cells[i] = sqltypes.Null
				case kindSel == 0:
					cells[i] = sqltypes.NewInt(int64(x)*256 - 1000 + int64(i))
				case kindSel == 1:
					cells[i] = sqltypes.NewFloat(float64(x) / 3.0)
				case kindSel == 2:
					cells[i] = sqltypes.NewString(string(seed)[:int(x)%(len(seed)+1)])
				case kindSel == 3:
					cells[i] = sqltypes.NewBool(x%2 == 0)
				default:
					cells[i] = sqltypes.NewInt(int64(x % 4)) // low cardinality
				}
			}
			cols[c] = NewColumn(cells)
		}
		b := New(wireSchema(ncols), cols, n)
		if useSel && n > 0 {
			sel := make([]int, 0, n)
			for i := 0; i < n; i++ {
				if byteAt(i)%3 != 0 {
					sel = append(sel, i)
				}
			}
			b = NewSelected(b.Schema, cols, sel)
		}
		requireRoundTrip(t, b)
	})
}

package exec

import (
	"strings"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

func buildLeaves(t *testing.T) map[string]Operator {
	t.Helper()
	orders := ordersTable(t, 100)
	cust := custTable(t, 10)
	return map[string]Operator{
		"o": &SeqScan{Table: orders, As: "o"},
		"c": &SeqScan{Table: cust, As: "c"},
	}
}

func runSQL(t *testing.T, sql string, leaves map[string]Operator) *sqltypes.Relation {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	op, err := BuildPlan(stmt, leaves)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	rel, err := op.Execute(&Context{})
	if err != nil {
		t.Fatalf("execute %s\n%s: %v", sql, ExplainTree(op), err)
	}
	return rel
}

func TestBuildPlanSimpleFilterProject(t *testing.T) {
	rel := runSQL(t, "SELECT o.o_id FROM orders AS o WHERE o.o_id < 5", buildLeaves(t))
	if rel.Cardinality() != 5 {
		t.Fatalf("rows: %d", rel.Cardinality())
	}
	if rel.Schema.Len() != 1 {
		t.Fatalf("schema: %v", rel.Schema)
	}
}

func TestBuildPlanStar(t *testing.T) {
	rel := runSQL(t, "SELECT * FROM orders AS o WHERE o.o_id = 3", buildLeaves(t))
	if rel.Cardinality() != 1 || rel.Schema.Len() != 3 {
		t.Fatalf("star: %v", rel)
	}
}

func TestBuildPlanJoinUsesHashJoin(t *testing.T) {
	stmt := sqlparser.MustParse("SELECT o.o_id, c.c_name FROM orders AS o JOIN customer AS c ON o.o_custkey = c.c_id WHERE c.c_id < 3")
	op, err := BuildPlan(stmt, buildLeaves(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ExplainTree(op), "HASHJOIN") {
		t.Fatalf("expected hash join:\n%s", ExplainTree(op))
	}
	rel, err := op.Execute(&Context{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 30 { // custkeys 0,1,2 → 10 orders each
		t.Fatalf("join rows: %d", rel.Cardinality())
	}
}

func TestBuildPlanCommaJoinWithWherePredicate(t *testing.T) {
	rel := runSQL(t, "SELECT o.o_id FROM orders AS o, customer AS c WHERE o.o_custkey = c.c_id AND c.c_id = 1", buildLeaves(t))
	if rel.Cardinality() != 10 {
		t.Fatalf("rows: %d", rel.Cardinality())
	}
}

func TestBuildPlanCrossJoinFallsBackToNL(t *testing.T) {
	stmt := sqlparser.MustParse("SELECT o.o_id FROM orders AS o JOIN customer AS c ON o.o_custkey < c.c_id")
	op, err := BuildPlan(stmt, buildLeaves(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ExplainTree(op), "NLJOIN") {
		t.Fatalf("expected NL join:\n%s", ExplainTree(op))
	}
	rel, err := op.Execute(&Context{})
	if err != nil {
		t.Fatal(err)
	}
	// each order with custkey k joins customers with c_id > k: 10 orders per k, sum over k of (9-k)
	want := 0
	for k := 0; k < 10; k++ {
		want += 10 * (9 - k)
	}
	if rel.Cardinality() != want {
		t.Fatalf("nl rows: %d want %d", rel.Cardinality(), want)
	}
}

func TestBuildPlanAggregation(t *testing.T) {
	rel := runSQL(t, "SELECT o.o_custkey, COUNT(*) AS n, SUM(o.o_amount) AS total FROM orders AS o GROUP BY o.o_custkey HAVING COUNT(*) > 0 ORDER BY o.o_custkey", buildLeaves(t))
	if rel.Cardinality() != 10 {
		t.Fatalf("groups: %d", rel.Cardinality())
	}
	if rel.Schema.Columns[1].Name != "n" || rel.Schema.Columns[2].Name != "total" {
		t.Fatalf("schema: %v", rel.Schema)
	}
	for i := 1; i < len(rel.Rows); i++ {
		if rel.Rows[i-1][0].Int() > rel.Rows[i][0].Int() {
			t.Fatal("not ordered")
		}
	}
	if rel.Rows[0][1].Int() != 10 {
		t.Fatalf("count: %v", rel.Rows[0])
	}
}

func TestBuildPlanScalarAggregate(t *testing.T) {
	rel := runSQL(t, "SELECT COUNT(*), SUM(o.o_amount) FROM orders AS o WHERE o.o_id < 10", buildLeaves(t))
	if rel.Cardinality() != 1 {
		t.Fatalf("scalar agg rows: %d", rel.Cardinality())
	}
	if rel.Rows[0][0].Int() != 10 {
		t.Fatalf("count: %v", rel.Rows[0])
	}
	want := 0.0
	for i := 0; i < 10; i++ {
		want += float64(i) * 2
	}
	if rel.Rows[0][1].Float() != want {
		t.Fatalf("sum: %v want %g", rel.Rows[0], want)
	}
}

func TestBuildPlanHavingFilters(t *testing.T) {
	rel := runSQL(t, "SELECT o.o_custkey, SUM(o.o_amount) AS s FROM orders AS o GROUP BY o.o_custkey HAVING SUM(o.o_amount) > 900", buildLeaves(t))
	for _, row := range rel.Rows {
		if row[1].Float() <= 900 {
			t.Fatalf("having violated: %v", row)
		}
	}
	if rel.Cardinality() == 0 || rel.Cardinality() == 10 {
		t.Fatalf("having should filter some groups: %d", rel.Cardinality())
	}
}

func TestBuildPlanDistinctAndLimit(t *testing.T) {
	rel := runSQL(t, "SELECT DISTINCT o.o_custkey FROM orders AS o", buildLeaves(t))
	if rel.Cardinality() != 10 {
		t.Fatalf("distinct: %d", rel.Cardinality())
	}
	rel = runSQL(t, "SELECT o.o_id FROM orders AS o ORDER BY o.o_id DESC LIMIT 3", buildLeaves(t))
	if rel.Cardinality() != 3 || rel.Rows[0][0].Int() != 99 {
		t.Fatalf("order+limit: %v", rel.Rows)
	}
}

func TestBuildPlanOrderByAlias(t *testing.T) {
	rel := runSQL(t, "SELECT o.o_custkey AS k, SUM(o.o_amount) AS s FROM orders AS o GROUP BY o.o_custkey ORDER BY s DESC LIMIT 2", buildLeaves(t))
	if rel.Cardinality() != 2 {
		t.Fatalf("rows: %d", rel.Cardinality())
	}
	if rel.Rows[0][1].Float() < rel.Rows[1][1].Float() {
		t.Fatalf("desc by alias: %v", rel.Rows)
	}
}

func TestBuildPlanMissingLeafErrors(t *testing.T) {
	stmt := sqlparser.MustParse("SELECT * FROM nowhere")
	if _, err := BuildPlan(stmt, map[string]Operator{}); err == nil {
		t.Fatal("missing leaf must error")
	}
}

func TestBuildPlanStarWithAggregationErrors(t *testing.T) {
	stmt := sqlparser.MustParse("SELECT *, COUNT(*) FROM orders AS o")
	if _, err := BuildPlan(stmt, buildLeaves(t)); err == nil {
		t.Fatal("star + aggregate must error")
	}
}

func TestBuildPlanOverValuesLeaves(t *testing.T) {
	// The integrator path: leaves are materialized fragment results.
	schema := sqltypes.NewSchema(
		sqltypes.Column{Table: "f1", Name: "k", Type: sqltypes.KindInt},
		sqltypes.Column{Table: "f1", Name: "v", Type: sqltypes.KindFloat},
	)
	rel1 := sqltypes.NewRelation(schema)
	for i := 0; i < 5; i++ {
		rel1.Rows = append(rel1.Rows, sqltypes.Row{sqltypes.NewInt(int64(i)), sqltypes.NewFloat(float64(i))})
	}
	schema2 := sqltypes.NewSchema(
		sqltypes.Column{Table: "f2", Name: "k", Type: sqltypes.KindInt},
		sqltypes.Column{Table: "f2", Name: "w", Type: sqltypes.KindString},
	)
	rel2 := sqltypes.NewRelation(schema2)
	for i := 3; i < 8; i++ {
		rel2.Rows = append(rel2.Rows, sqltypes.Row{sqltypes.NewInt(int64(i)), sqltypes.NewString("w")})
	}
	leaves := map[string]Operator{
		"f1": &Values{Rel: rel1, Label: "f1"},
		"f2": &Values{Rel: rel2, Label: "f2"},
	}
	rel := runSQL(t, "SELECT f1.k, f2.w FROM f1 JOIN f2 ON f1.k = f2.k", leaves)
	if rel.Cardinality() != 2 { // keys 3,4
		t.Fatalf("merge join: %d", rel.Cardinality())
	}
}

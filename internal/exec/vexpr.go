package exec

import (
	"fmt"
	"strings"

	"repro/internal/exec/colbatch"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// This file implements the vectorized expression compiler: an expression is
// compiled once per kernel invocation (column references resolve to indices
// exactly once, not per row) into a tree of vnodes, each of which evaluates
// over a whole batch. Typed kernels cover the hot shapes — int/float
// comparisons and arithmetic against columns and constants, boolean
// three-valued logic — and everything else drops to a cell-at-a-time loop
// over the exported scalar appliers (sqlparser.ApplyBinary/ApplyFunc), so
// results are the row evaluator's results by construction.
//
// Error discipline: the vectorized evaluator computes a SUPERSET of the row
// evaluator's sub-expression evaluations (it cannot skip rows that AND/OR,
// IN, COALESCE or NULL-propagation short-circuiting would have skipped).
// Eval errors are deterministic per (expression, row), so if the row path
// would error the vectorized path errors too; callers then rerun the kernel
// through the row path, which reproduces the row-path outcome — including
// cases where only the vectorized path errors. Vectorized success therefore
// implies row-path success with identical values.

// vres is a vectorized sub-expression result: one value per logical row of
// the batch it was evaluated against.
type vres struct {
	n   int
	tag int

	konst  sqltypes.Value    // rConst: broadcast value
	col    *colbatch.Column  // rCol: direct column of the batch
	b      *colbatch.Batch   // rCol: window mapping
	vals   []sqltypes.Value  // rVals: boxed, logical space
	ints   []int64           // rInts
	floats []float64         // rFloats
	bools  []bool            // rBools
	nulls  []bool            // rInts/rFloats/rBools: null bitmap (may be nil)
}

const (
	rConst = iota
	rCol
	rVals
	rInts
	rFloats
	rBools
)

// value reconstructs logical row i.
func (r *vres) value(i int) sqltypes.Value {
	switch r.tag {
	case rConst:
		return r.konst
	case rCol:
		return r.col.Value(r.b.Phys(i))
	case rVals:
		return r.vals[i]
	case rInts:
		if r.nulls != nil && r.nulls[i] {
			return sqltypes.Null
		}
		return sqltypes.NewInt(r.ints[i])
	case rFloats:
		if r.nulls != nil && r.nulls[i] {
			return sqltypes.Null
		}
		return sqltypes.NewFloat(r.floats[i])
	default:
		if r.nulls != nil && r.nulls[i] {
			return sqltypes.Null
		}
		return sqltypes.NewBool(r.bools[i])
	}
}

// isNull reports whether logical row i is SQL NULL.
func (r *vres) isNull(i int) bool {
	switch r.tag {
	case rConst:
		return r.konst.IsNull()
	case rCol:
		return r.col.IsNull(r.b.Phys(i))
	case rVals:
		return r.vals[i].IsNull()
	default:
		return r.nulls != nil && r.nulls[i]
	}
}

// toColumn materializes the result as a logical-space column.
func (r *vres) toColumn() *colbatch.Column {
	switch r.tag {
	case rConst:
		if r.konst.IsNull() {
			return colbatch.NullColumn()
		}
		vals := make([]sqltypes.Value, r.n)
		for i := range vals {
			vals[i] = r.konst
		}
		return colbatch.NewColumn(vals)
	case rCol:
		if off, ok := r.b.Contig(); ok && off == 0 {
			return r.col
		}
		idx := make([]int, r.n)
		for i := range idx {
			idx[i] = r.b.Phys(i)
		}
		return r.col.Gather(idx)
	case rVals:
		return colbatch.NewColumn(r.vals)
	case rInts:
		return colbatch.IntColumn(r.ints, r.nulls)
	case rFloats:
		return colbatch.FloatColumn(r.floats, r.nulls)
	default:
		return colbatch.BoolColumn(r.bools, r.nulls)
	}
}

// vnode is a compiled vectorized expression.
type vnode interface {
	eval(b *colbatch.Batch) (*vres, error)
}

// compileExpr resolves an expression against a schema. Unsupported shapes
// (aggregates, unknown node types, unresolvable columns) return an error,
// which callers treat as "use the row path".
func compileExpr(e sqlparser.Expr, schema *sqltypes.Schema) (vnode, error) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return &vlit{v: x.Val}, nil
	case *sqlparser.ColumnRef:
		idx, err := schema.ColumnIndex(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return &vcolref{idx: idx}, nil
	case *sqlparser.BinaryExpr:
		l, err := compileExpr(x.Left, schema)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(x.Right, schema)
		if err != nil {
			return nil, err
		}
		if x.Op == sqlparser.OpAnd || x.Op == sqlparser.OpOr {
			return &vlogic{op: x.Op, left: l, right: r}, nil
		}
		return &vbinary{op: x.Op, left: l, right: r}, nil
	case *sqlparser.NotExpr:
		in, err := compileExpr(x.Inner, schema)
		if err != nil {
			return nil, err
		}
		return &vnot{inner: in}, nil
	case *sqlparser.IsNullExpr:
		in, err := compileExpr(x.Inner, schema)
		if err != nil {
			return nil, err
		}
		return &visnull{inner: in, negate: x.Negate}, nil
	case *sqlparser.InExpr:
		needle, err := compileExpr(x.Needle, schema)
		if err != nil {
			return nil, err
		}
		list := make([]vnode, len(x.List))
		for i, it := range x.List {
			if list[i], err = compileExpr(it, schema); err != nil {
				return nil, err
			}
		}
		return &vin{needle: needle, list: list, negate: x.Negate}, nil
	case *sqlparser.BetweenExpr:
		subj, err := compileExpr(x.Subject, schema)
		if err != nil {
			return nil, err
		}
		lo, err := compileExpr(x.Lo, schema)
		if err != nil {
			return nil, err
		}
		hi, err := compileExpr(x.Hi, schema)
		if err != nil {
			return nil, err
		}
		return &vbetween{subj: subj, lo: lo, hi: hi, negate: x.Negate}, nil
	case *sqlparser.LikeExpr:
		subj, err := compileExpr(x.Subject, schema)
		if err != nil {
			return nil, err
		}
		return &vlike{subj: subj, pattern: x.Pattern, negate: x.Negate}, nil
	case *sqlparser.FuncExpr:
		args := make([]vnode, len(x.Args))
		for i, a := range x.Args {
			var err error
			if args[i], err = compileExpr(a, schema); err != nil {
				return nil, err
			}
		}
		if x.Name == "COALESCE" {
			return &vcoalesce{args: args}, nil
		}
		return &vfunc{name: x.Name, args: args}, nil
	default:
		return nil, fmt.Errorf("exec: no vectorized form for %T", e)
	}
}

type vlit struct{ v sqltypes.Value }

func (x *vlit) eval(b *colbatch.Batch) (*vres, error) {
	return &vres{n: b.Len(), tag: rConst, konst: x.v}, nil
}

type vcolref struct{ idx int }

func (x *vcolref) eval(b *colbatch.Batch) (*vres, error) {
	return &vres{n: b.Len(), tag: rCol, col: b.Cols[x.idx], b: b}, nil
}

// operand is a typed view of a vres, used to pick comparison/arithmetic
// kernels. ok is false when the result has no uniform typed representation
// (boxed or mixed-kind), forcing the generic cell loop.
type operand struct {
	ok      bool
	isConst bool
	c       sqltypes.Value
	kind    sqltypes.Kind
	ints    []int64
	floats  []float64
	bools   []bool
	strs    []string
	nulls   []bool
}

func classify(r *vres) operand {
	switch r.tag {
	case rConst:
		return operand{ok: true, isConst: true, c: r.konst, kind: r.konst.Kind()}
	case rInts:
		return operand{ok: true, kind: sqltypes.KindInt, ints: r.ints, nulls: r.nulls}
	case rFloats:
		return operand{ok: true, kind: sqltypes.KindFloat, floats: r.floats, nulls: r.nulls}
	case rBools:
		return operand{ok: true, kind: sqltypes.KindBool, bools: r.bools, nulls: r.nulls}
	case rCol:
		c := r.col
		if c.Mixed != nil {
			return operand{}
		}
		if c.Kind == sqltypes.KindNull {
			return operand{ok: true, isConst: true, c: sqltypes.Null, kind: sqltypes.KindNull}
		}
		op := operand{ok: true, kind: c.Kind}
		if off, contig := r.b.Contig(); contig {
			end := off + r.n
			switch c.Kind {
			case sqltypes.KindInt:
				op.ints = c.Ints[off:end]
			case sqltypes.KindFloat:
				op.floats = c.Floats[off:end]
			case sqltypes.KindString:
				op.strs = c.Strs[off:end]
			case sqltypes.KindBool:
				op.bools = c.Bools[off:end]
			}
			if c.Nulls != nil {
				op.nulls = c.Nulls[off:end]
			}
			return op
		}
		if c.Nulls != nil {
			op.nulls = make([]bool, r.n)
		}
		switch c.Kind {
		case sqltypes.KindInt:
			op.ints = make([]int64, r.n)
		case sqltypes.KindFloat:
			op.floats = make([]float64, r.n)
		case sqltypes.KindString:
			op.strs = make([]string, r.n)
		case sqltypes.KindBool:
			op.bools = make([]bool, r.n)
		}
		for i := 0; i < r.n; i++ {
			p := r.b.Phys(i)
			switch c.Kind {
			case sqltypes.KindInt:
				op.ints[i] = c.Ints[p]
			case sqltypes.KindFloat:
				op.floats[i] = c.Floats[p]
			case sqltypes.KindString:
				op.strs[i] = c.Strs[p]
			case sqltypes.KindBool:
				op.bools[i] = c.Bools[p]
			}
			if op.nulls != nil {
				op.nulls[i] = c.Nulls[p]
			}
		}
		return op
	default:
		return operand{}
	}
}

// null reports whether cell i of the operand is NULL.
func (o *operand) null(i int) bool {
	if o.isConst {
		return o.c.IsNull()
	}
	return o.nulls != nil && o.nulls[i]
}

// intAt/floatAt read cell i; callers have checked nullness and kind.
func (o *operand) intAt(i int) int64 {
	if o.isConst {
		return o.c.Int()
	}
	return o.ints[i]
}

func (o *operand) floatAt(i int) float64 {
	if o.isConst {
		return o.c.Float()
	}
	switch o.kind {
	case sqltypes.KindFloat:
		return o.floats[i]
	case sqltypes.KindInt:
		return float64(o.ints[i])
	default:
		return float64(boolToInt(o.bools[i]))
	}
}

func (o *operand) strAt(i int) string {
	if o.isConst {
		return o.c.Str()
	}
	return o.strs[i]
}

func (o *operand) boolInt(i int) int64 {
	if o.isConst {
		return o.c.Int()
	}
	return boolToInt(o.bools[i])
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

type vbinary struct {
	op          sqlparser.BinaryOp
	left, right vnode
}

func (x *vbinary) eval(b *colbatch.Batch) (*vres, error) {
	l, err := x.left.eval(b)
	if err != nil {
		return nil, err
	}
	r, err := x.right.eval(b)
	if err != nil {
		return nil, err
	}
	lo, ro := classify(l), classify(r)
	if lo.ok && ro.ok {
		if x.op.IsComparison() {
			if out := cmpTyped(x.op, l.n, lo, ro); out != nil {
				return out, nil
			}
		} else if out := arithTyped(x.op, l.n, lo, ro); out != nil {
			return out, nil
		}
	}
	// Generic cell loop over the exact scalar applier.
	n := l.n
	vals := make([]sqltypes.Value, n)
	for i := 0; i < n; i++ {
		v, err := sqlparser.ApplyBinary(x.op, l.value(i), r.value(i))
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return &vres{n: n, tag: rVals, vals: vals}, nil
}

// cmpRes maps a three-way comparison to the operator's boolean.
func cmpRes(op sqlparser.BinaryOp, c int) bool {
	switch op {
	case sqlparser.OpEq:
		return c == 0
	case sqlparser.OpNe:
		return c != 0
	case sqlparser.OpLt:
		return c < 0
	case sqlparser.OpLe:
		return c <= 0
	case sqlparser.OpGt:
		return c > 0
	default:
		return c >= 0
	}
}

// cmpTyped emits a boolean vector for typed operand pairs, mirroring
// sqltypes.Compare's kind rules: int/int compares exactly, any other
// numeric mix through float64, strings lexically, bools as 0/1. Returns nil
// when no typed kernel applies.
func cmpTyped(op sqlparser.BinaryOp, n int, lo, ro operand) *vres {
	numeric := func(k sqltypes.Kind) bool { return k == sqltypes.KindInt || k == sqltypes.KindFloat }
	out := &vres{n: n, tag: rBools, bools: make([]bool, n)}
	setNull := func(i int) {
		if out.nulls == nil {
			out.nulls = make([]bool, n)
		}
		out.nulls[i] = true
	}
	// A NULL constant operand nulls every row.
	if (lo.isConst && lo.c.IsNull()) || (ro.isConst && ro.c.IsNull()) {
		out.nulls = make([]bool, n)
		for i := range out.nulls {
			out.nulls[i] = true
		}
		return out
	}
	switch {
	case lo.kind == sqltypes.KindInt && ro.kind == sqltypes.KindInt:
		// Hot case: int vector vs int constant gets a branch-hoisted loop.
		if ro.isConst && !lo.isConst && lo.nulls == nil {
			k := ro.c.Int()
			for i := 0; i < n; i++ {
				l := lo.ints[i]
				c := 0
				if l < k {
					c = -1
				} else if l > k {
					c = 1
				}
				out.bools[i] = cmpRes(op, c)
			}
			return out
		}
		for i := 0; i < n; i++ {
			if lo.null(i) || ro.null(i) {
				setNull(i)
				continue
			}
			l, r := lo.intAt(i), ro.intAt(i)
			c := 0
			if l < r {
				c = -1
			} else if l > r {
				c = 1
			}
			out.bools[i] = cmpRes(op, c)
		}
		return out
	case numeric(lo.kind) && numeric(ro.kind):
		for i := 0; i < n; i++ {
			if lo.null(i) || ro.null(i) {
				setNull(i)
				continue
			}
			l, r := lo.floatAt(i), ro.floatAt(i)
			c := 0
			if l < r {
				c = -1
			} else if l > r {
				c = 1
			}
			out.bools[i] = cmpRes(op, c)
		}
		return out
	case lo.kind == sqltypes.KindString && ro.kind == sqltypes.KindString:
		for i := 0; i < n; i++ {
			if lo.null(i) || ro.null(i) {
				setNull(i)
				continue
			}
			out.bools[i] = cmpRes(op, strings.Compare(lo.strAt(i), ro.strAt(i)))
		}
		return out
	case lo.kind == sqltypes.KindBool && ro.kind == sqltypes.KindBool:
		for i := 0; i < n; i++ {
			if lo.null(i) || ro.null(i) {
				setNull(i)
				continue
			}
			l, r := lo.boolInt(i), ro.boolInt(i)
			c := 0
			if l < r {
				c = -1
			} else if l > r {
				c = 1
			}
			out.bools[i] = cmpRes(op, c)
		}
		return out
	}
	return nil
}

// arithTyped emits typed arithmetic for numeric operand pairs: int/int
// stays integral (except division by zero → NULL), any float widens, both
// exactly as ApplyBinary does per cell. Returns nil when no typed kernel
// applies.
func arithTyped(op sqlparser.BinaryOp, n int, lo, ro operand) *vres {
	switch op {
	case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv:
	default:
		return nil
	}
	if (lo.isConst && lo.c.IsNull()) || (ro.isConst && ro.c.IsNull()) {
		out := &vres{n: n, tag: rInts, ints: make([]int64, n), nulls: make([]bool, n)}
		for i := range out.nulls {
			out.nulls[i] = true
		}
		return out
	}
	numeric := func(k sqltypes.Kind) bool { return k == sqltypes.KindInt || k == sqltypes.KindFloat }
	if !numeric(lo.kind) || !numeric(ro.kind) {
		return nil
	}
	bothInt := lo.kind == sqltypes.KindInt && ro.kind == sqltypes.KindInt
	if bothInt && op != sqlparser.OpDiv {
		out := &vres{n: n, tag: rInts, ints: make([]int64, n)}
		setNull := func(i int) {
			if out.nulls == nil {
				out.nulls = make([]bool, n)
			}
			out.nulls[i] = true
		}
		for i := 0; i < n; i++ {
			if lo.null(i) || ro.null(i) {
				setNull(i)
				continue
			}
			l, r := lo.intAt(i), ro.intAt(i)
			switch op {
			case sqlparser.OpAdd:
				out.ints[i] = l + r
			case sqlparser.OpSub:
				out.ints[i] = l - r
			default:
				out.ints[i] = l * r
			}
		}
		return out
	}
	if bothInt {
		// Integer division: zero divisor yields NULL, like the row path.
		out := &vres{n: n, tag: rInts, ints: make([]int64, n)}
		setNull := func(i int) {
			if out.nulls == nil {
				out.nulls = make([]bool, n)
			}
			out.nulls[i] = true
		}
		for i := 0; i < n; i++ {
			if lo.null(i) || ro.null(i) {
				setNull(i)
				continue
			}
			r := ro.intAt(i)
			if r == 0 {
				setNull(i)
				continue
			}
			out.ints[i] = lo.intAt(i) / r
		}
		return out
	}
	out := &vres{n: n, tag: rFloats, floats: make([]float64, n)}
	setNull := func(i int) {
		if out.nulls == nil {
			out.nulls = make([]bool, n)
		}
		out.nulls[i] = true
	}
	for i := 0; i < n; i++ {
		if lo.null(i) || ro.null(i) {
			setNull(i)
			continue
		}
		l, r := lo.floatAt(i), ro.floatAt(i)
		switch op {
		case sqlparser.OpAdd:
			out.floats[i] = l + r
		case sqlparser.OpSub:
			out.floats[i] = l - r
		case sqlparser.OpMul:
			out.floats[i] = l * r
		default:
			if r == 0 {
				setNull(i)
				continue
			}
			out.floats[i] = l / r
		}
	}
	return out
}

// vlogic implements AND/OR with SQL three-valued logic. Both operands are
// fully evaluated (a superset of the row path's short-circuit; see the
// error discipline note above), then combined with the row path's exact
// truth table.
type vlogic struct {
	op          sqlparser.BinaryOp
	left, right vnode
}

func (x *vlogic) eval(b *colbatch.Batch) (*vres, error) {
	l, err := x.left.eval(b)
	if err != nil {
		return nil, err
	}
	r, err := x.right.eval(b)
	if err != nil {
		return nil, err
	}
	n := l.n
	out := &vres{n: n, tag: rBools, bools: make([]bool, n)}
	setNull := func(i int) {
		if out.nulls == nil {
			out.nulls = make([]bool, n)
		}
		out.nulls[i] = true
	}
	and := x.op == sqlparser.OpAnd
	for i := 0; i < n; i++ {
		lnull := l.isNull(i)
		ltruthy := false
		if !lnull {
			ltruthy = sqlparser.Truthy(l.value(i))
		}
		if and && !lnull && !ltruthy {
			continue // false
		}
		if !and && !lnull && ltruthy {
			out.bools[i] = true
			continue
		}
		rnull := r.isNull(i)
		rtruthy := false
		if !rnull {
			rtruthy = sqlparser.Truthy(r.value(i))
		}
		if and {
			switch {
			case !rnull && !rtruthy:
				// false
			case lnull || rnull:
				setNull(i)
			default:
				out.bools[i] = true
			}
			continue
		}
		switch {
		case !rnull && rtruthy:
			out.bools[i] = true
		case lnull || rnull:
			setNull(i)
		default:
			// false
		}
	}
	return out, nil
}

type vnot struct{ inner vnode }

func (x *vnot) eval(b *colbatch.Batch) (*vres, error) {
	in, err := x.inner.eval(b)
	if err != nil {
		return nil, err
	}
	n := in.n
	out := &vres{n: n, tag: rBools, bools: make([]bool, n)}
	for i := 0; i < n; i++ {
		if in.isNull(i) {
			if out.nulls == nil {
				out.nulls = make([]bool, n)
			}
			out.nulls[i] = true
			continue
		}
		out.bools[i] = !sqlparser.Truthy(in.value(i))
	}
	return out, nil
}

type visnull struct {
	inner  vnode
	negate bool
}

func (x *visnull) eval(b *colbatch.Batch) (*vres, error) {
	in, err := x.inner.eval(b)
	if err != nil {
		return nil, err
	}
	n := in.n
	out := &vres{n: n, tag: rBools, bools: make([]bool, n)}
	for i := 0; i < n; i++ {
		out.bools[i] = in.isNull(i) != x.negate
	}
	return out, nil
}

type vin struct {
	needle vnode
	list   []vnode
	negate bool
}

func (x *vin) eval(b *colbatch.Batch) (*vres, error) {
	needle, err := x.needle.eval(b)
	if err != nil {
		return nil, err
	}
	items := make([]*vres, len(x.list))
	for i, it := range x.list {
		if items[i], err = it.eval(b); err != nil {
			return nil, err
		}
	}
	n := needle.n
	out := &vres{n: n, tag: rBools, bools: make([]bool, n)}
	setNull := func(i int) {
		if out.nulls == nil {
			out.nulls = make([]bool, n)
		}
		out.nulls[i] = true
	}
	for i := 0; i < n; i++ {
		if needle.isNull(i) {
			setNull(i)
			continue
		}
		nv := needle.value(i)
		sawNull := false
		matched := false
		for _, it := range items {
			if it.isNull(i) {
				sawNull = true
				continue
			}
			if sqltypes.Compare(nv, it.value(i)) == 0 {
				matched = true
				break
			}
		}
		switch {
		case matched:
			out.bools[i] = !x.negate
		case sawNull:
			setNull(i)
		default:
			out.bools[i] = x.negate
		}
	}
	return out, nil
}

type vbetween struct {
	subj, lo, hi vnode
	negate       bool
}

func (x *vbetween) eval(b *colbatch.Batch) (*vres, error) {
	subj, err := x.subj.eval(b)
	if err != nil {
		return nil, err
	}
	lo, err := x.lo.eval(b)
	if err != nil {
		return nil, err
	}
	hi, err := x.hi.eval(b)
	if err != nil {
		return nil, err
	}
	n := subj.n
	out := &vres{n: n, tag: rBools, bools: make([]bool, n)}
	for i := 0; i < n; i++ {
		if subj.isNull(i) || lo.isNull(i) || hi.isNull(i) {
			if out.nulls == nil {
				out.nulls = make([]bool, n)
			}
			out.nulls[i] = true
			continue
		}
		v := subj.value(i)
		in := sqltypes.Compare(v, lo.value(i)) >= 0 && sqltypes.Compare(v, hi.value(i)) <= 0
		out.bools[i] = in != x.negate
	}
	return out, nil
}

type vlike struct {
	subj    vnode
	pattern string
	negate  bool
}

func (x *vlike) eval(b *colbatch.Batch) (*vres, error) {
	subj, err := x.subj.eval(b)
	if err != nil {
		return nil, err
	}
	n := subj.n
	out := &vres{n: n, tag: rBools, bools: make([]bool, n)}
	for i := 0; i < n; i++ {
		if subj.isNull(i) {
			if out.nulls == nil {
				out.nulls = make([]bool, n)
			}
			out.nulls[i] = true
			continue
		}
		v := subj.value(i)
		if v.Kind() != sqltypes.KindString {
			return nil, fmt.Errorf("sqlparser: LIKE on non-string %s", v.Kind())
		}
		out.bools[i] = sqlparser.LikeMatch(v.Str(), x.pattern) != x.negate
	}
	return out, nil
}

type vcoalesce struct{ args []vnode }

func (x *vcoalesce) eval(b *colbatch.Batch) (*vres, error) {
	args := make([]*vres, len(x.args))
	for i, a := range x.args {
		var err error
		if args[i], err = a.eval(b); err != nil {
			return nil, err
		}
	}
	n := b.Len()
	out := &vres{n: n, tag: rVals, vals: make([]sqltypes.Value, n)}
	for i := 0; i < n; i++ {
		for _, a := range args {
			if !a.isNull(i) {
				out.vals[i] = a.value(i)
				break
			}
		}
	}
	return out, nil
}

type vfunc struct {
	name string
	args []vnode
}

func (x *vfunc) eval(b *colbatch.Batch) (*vres, error) {
	args := make([]*vres, len(x.args))
	for i, a := range x.args {
		var err error
		if args[i], err = a.eval(b); err != nil {
			return nil, err
		}
	}
	n := b.Len()
	out := &vres{n: n, tag: rVals, vals: make([]sqltypes.Value, n)}
	cells := make([]sqltypes.Value, len(args))
	for i := 0; i < n; i++ {
		// NULL-propagating, argument order preserved, like evalFunc.
		isNull := false
		for j, a := range args {
			v := a.value(i)
			if v.IsNull() {
				isNull = true
				break
			}
			cells[j] = v
		}
		if isNull {
			out.vals[i] = sqltypes.Null
			continue
		}
		v, err := sqlparser.ApplyFunc(x.name, cells)
		if err != nil {
			return nil, err
		}
		out.vals[i] = v
	}
	return out, nil
}

// evalPredicate compiles and evaluates a predicate into a selection vector
// over the batch's logical rows, collapsing NULL to false exactly like
// EvalBool.
func evalPredicate(pred sqlparser.Expr, b *colbatch.Batch) ([]int, error) {
	node, err := compileExpr(pred, b.Schema)
	if err != nil {
		return nil, err
	}
	res, err := node.eval(b)
	if err != nil {
		return nil, err
	}
	n := b.Len()
	sel := make([]int, 0, n)
	if res.tag == rBools {
		for i := 0; i < n; i++ {
			if res.bools[i] && (res.nulls == nil || !res.nulls[i]) {
				sel = append(sel, i)
			}
		}
		return sel, nil
	}
	for i := 0; i < n; i++ {
		if !res.isNull(i) && sqlparser.Truthy(res.value(i)) {
			sel = append(sel, i)
		}
	}
	return sel, nil
}

package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/exec/colbatch"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// The vectorized engine's correctness contract is bit-identity with the row
// engine: same output values (kind and payload), same row order, same
// resource charges, same error/no-error outcome. This file checks the
// contract on randomized relations (NULL-heavy, kind-mixed) under
// randomized plans of filters, projections, sorts, aggregations, distinct,
// limit and hash joins, plus targeted edge cases (empty inputs, all-NULL
// columns, selection-vector chains).

type oracleGen struct {
	rng *rand.Rand
}

func (g *oracleGen) value(kind sqltypes.Kind, nullFrac float64) sqltypes.Value {
	if g.rng.Float64() < nullFrac {
		return sqltypes.Null
	}
	switch kind {
	case sqltypes.KindInt:
		return sqltypes.NewInt(g.rng.Int63n(20) - 10)
	case sqltypes.KindFloat:
		switch g.rng.Intn(10) {
		case 0:
			return sqltypes.NewFloat(math.NaN())
		case 1:
			return sqltypes.NewFloat(math.Copysign(0, -1))
		default:
			return sqltypes.NewFloat(float64(g.rng.Int63n(40)-20) / 4)
		}
	case sqltypes.KindString:
		return sqltypes.NewString([]string{"", "a", "ab", "hello", "wörld", "x%y"}[g.rng.Intn(6)])
	default:
		return sqltypes.NewBool(g.rng.Intn(2) == 0)
	}
}

// relation builds a random relation; prefix distinguishes column names so
// join schemas stay unambiguous.
func (g *oracleGen) relation(prefix string, n int) *sqltypes.Relation {
	kinds := []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindInt, sqltypes.KindFloat, sqltypes.KindString, sqltypes.KindBool}
	cols := make([]sqltypes.Column, len(kinds))
	for i, k := range kinds {
		cols[i] = sqltypes.Column{Name: fmt.Sprintf("%s%d", prefix, i), Type: k}
	}
	rel := sqltypes.NewRelation(sqltypes.NewSchema(cols...))
	for r := 0; r < n; r++ {
		row := make(sqltypes.Row, len(kinds))
		for i, k := range kinds {
			nullFrac := 0.25
			if g.rng.Intn(4) == 0 {
				nullFrac = 0.9 // occasionally near-all-NULL columns
			}
			// Column g.rng-mixed kinds sometimes, to exercise Mixed columns.
			if i == 1 && g.rng.Intn(3) == 0 {
				k = sqltypes.KindFloat
			}
			row[i] = g.value(k, nullFrac)
		}
		rel.Rows = append(rel.Rows, row)
	}
	return rel
}

// expr builds a random expression over the schema.
func (g *oracleGen) expr(schema *sqltypes.Schema, depth int) sqlparser.Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			c := schema.Columns[g.rng.Intn(len(schema.Columns))]
			return &sqlparser.ColumnRef{Name: c.Name}
		}
		kinds := []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindFloat, sqltypes.KindString, sqltypes.KindBool}
		return &sqlparser.Literal{Val: g.value(kinds[g.rng.Intn(len(kinds))], 0.15)}
	}
	switch g.rng.Intn(8) {
	case 0, 1:
		ops := []sqlparser.BinaryOp{
			sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe,
			sqlparser.OpGt, sqlparser.OpGe,
		}
		return &sqlparser.BinaryExpr{Op: ops[g.rng.Intn(len(ops))], Left: g.expr(schema, depth-1), Right: g.expr(schema, depth-1)}
	case 2:
		ops := []sqlparser.BinaryOp{sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv}
		return &sqlparser.BinaryExpr{Op: ops[g.rng.Intn(len(ops))], Left: g.expr(schema, depth-1), Right: g.expr(schema, depth-1)}
	case 3:
		op := sqlparser.OpAnd
		if g.rng.Intn(2) == 0 {
			op = sqlparser.OpOr
		}
		return &sqlparser.BinaryExpr{Op: op, Left: g.expr(schema, depth-1), Right: g.expr(schema, depth-1)}
	case 4:
		if g.rng.Intn(2) == 0 {
			return &sqlparser.NotExpr{Inner: g.expr(schema, depth-1)}
		}
		return &sqlparser.IsNullExpr{Inner: g.expr(schema, depth-1), Negate: g.rng.Intn(2) == 0}
	case 5:
		list := make([]sqlparser.Expr, 1+g.rng.Intn(3))
		for i := range list {
			list[i] = g.expr(schema, depth-1)
		}
		return &sqlparser.InExpr{Needle: g.expr(schema, depth-1), List: list, Negate: g.rng.Intn(2) == 0}
	case 6:
		return &sqlparser.BetweenExpr{
			Subject: g.expr(schema, depth-1),
			Lo:      g.expr(schema, depth-1),
			Hi:      g.expr(schema, depth-1),
			Negate:  g.rng.Intn(2) == 0,
		}
	default:
		switch g.rng.Intn(3) {
		case 0:
			return &sqlparser.LikeExpr{
				Subject: g.expr(schema, depth-1),
				Pattern: []string{"%", "a%", "%o%", "x_y", ""}[g.rng.Intn(5)],
				Negate:  g.rng.Intn(2) == 0,
			}
		case 1:
			name := []string{"ABS", "UPPER", "LOWER", "LENGTH", "COALESCE", "ROUND"}[g.rng.Intn(6)]
			nargs := 1
			if name == "COALESCE" {
				nargs = 1 + g.rng.Intn(3)
			}
			args := make([]sqlparser.Expr, nargs)
			for i := range args {
				args[i] = g.expr(schema, depth-1)
			}
			return &sqlparser.FuncExpr{Name: name, Args: args}
		default:
			return &sqlparser.FuncExpr{Name: "MOD", Args: []sqlparser.Expr{g.expr(schema, depth-1), g.expr(schema, depth-1)}}
		}
	}
}

// plan wraps a random operator pipeline around the leaf.
func (g *oracleGen) plan(leaf Operator, depth int) Operator {
	op := leaf
	for i := 0; i < depth; i++ {
		schema := op.Schema()
		switch g.rng.Intn(7) {
		case 0:
			op = &Filter{Input: op, Pred: g.expr(schema, 3)}
		case 1:
			items := make([]sqlparser.SelectItem, 0, 3)
			if g.rng.Intn(3) == 0 {
				items = append(items, sqlparser.SelectItem{Star: true})
			}
			for len(items) < 1+g.rng.Intn(3) {
				items = append(items, sqlparser.SelectItem{
					Expr:  g.expr(schema, 2),
					Alias: fmt.Sprintf("p%d_%d", i, len(items)),
				})
			}
			op = &Project{Input: op, Items: items}
		case 2:
			keys := make([]sqlparser.OrderItem, 1+g.rng.Intn(2))
			for k := range keys {
				keys[k] = sqlparser.OrderItem{Expr: g.expr(schema, 2), Desc: g.rng.Intn(2) == 0}
			}
			op = &Sort{Input: op, Keys: keys}
		case 3:
			op = &Distinct{Input: op}
		case 4:
			op = &Limit{Input: op, N: g.rng.Intn(20)}
		case 5:
			groupBy := make([]sqlparser.Expr, g.rng.Intn(3))
			for k := range groupBy {
				groupBy[k] = g.expr(schema, 2)
			}
			funcs := []sqlparser.AggFunc{sqlparser.AggCount, sqlparser.AggSum, sqlparser.AggAvg, sqlparser.AggMin, sqlparser.AggMax}
			aggs := make([]*sqlparser.AggExpr, 1+g.rng.Intn(2))
			for k := range aggs {
				agg := &sqlparser.AggExpr{Func: funcs[g.rng.Intn(len(funcs))]}
				if !(agg.Func == sqlparser.AggCount && g.rng.Intn(2) == 0) {
					agg.Arg = g.expr(schema, 2)
				}
				aggs[k] = agg
			}
			op = &Aggregate{Input: op, GroupBy: groupBy, Aggs: aggs}
		default:
			// No-op level: keeps average pipeline length moderate.
		}
	}
	return op
}

func valuesBitIdentical(a, b sqltypes.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	if a.Kind() == sqltypes.KindFloat {
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	}
	return a == b
}

func requireRelationsIdentical(t *testing.T, label string, want, got *sqltypes.Relation) {
	t.Helper()
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: row count %d (row) vs %d (vectorized)", label, len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		if len(want.Rows[i]) != len(got.Rows[i]) {
			t.Fatalf("%s: row %d width %d vs %d", label, i, len(want.Rows[i]), len(got.Rows[i]))
		}
		for j := range want.Rows[i] {
			if !valuesBitIdentical(want.Rows[i][j], got.Rows[i][j]) {
				t.Fatalf("%s: cell (%d,%d): row path %#v, vectorized %#v", label, i, j, want.Rows[i][j], got.Rows[i][j])
			}
		}
	}
}

// checkOracle runs op through both engines and requires identical outcomes:
// same error presence, same rows bit-for-bit, same resource charges.
func checkOracle(t *testing.T, label string, op Operator) {
	t.Helper()
	var rowCtx, vecCtx Context
	wantRel, wantErr := op.Execute(&rowCtx)
	gotBatch, gotErr := ExecuteVectorized(op, &vecCtx)
	if (wantErr != nil) != (gotErr != nil) {
		t.Fatalf("%s: row err=%v, vectorized err=%v\nplan:\n%s", label, wantErr, gotErr, ExplainTree(op))
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("%s: error text diverged: %q vs %q", label, wantErr, gotErr)
		}
		return
	}
	requireRelationsIdentical(t, label, wantRel, gotBatch.ToRelation())
	if rowCtx.Res != vecCtx.Res {
		t.Fatalf("%s: resources diverged: row %+v, vectorized %+v\nplan:\n%s", label, rowCtx.Res, vecCtx.Res, ExplainTree(op))
	}
}

func TestVectorizedOracleSingleInput(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		g := &oracleGen{rng: rand.New(rand.NewSource(seed))}
		n := g.rng.Intn(60)
		if seed%10 == 0 {
			n = 0 // empty-input edge
		}
		rel := g.relation("c", n)
		op := g.plan(&Values{Rel: rel}, 1+g.rng.Intn(4))
		checkOracle(t, fmt.Sprintf("seed %d", seed), op)
	}
}

func TestVectorizedOracleHashJoin(t *testing.T) {
	for seed := int64(1000); seed < 1080; seed++ {
		g := &oracleGen{rng: rand.New(rand.NewSource(seed))}
		ln, rn := g.rng.Intn(40), g.rng.Intn(40)
		if seed%7 == 0 {
			ln = 0
		}
		left := g.relation("l", ln)
		right := g.relation("r", rn)
		join := &HashJoin{
			Build:    &Values{Rel: left},
			Probe:    &Values{Rel: right},
			BuildKey: g.expr(left.Schema, 2),
			ProbeKey: g.expr(right.Schema, 2),
		}
		if g.rng.Intn(2) == 0 {
			join.Residual = g.expr(left.Schema.Concat(right.Schema), 2)
		}
		op := g.plan(join, g.rng.Intn(3))
		checkOracle(t, fmt.Sprintf("seed %d", seed), op)
	}
}

func TestVectorizedOracleNestedLoopFallback(t *testing.T) {
	// NestedLoopJoin has no vectorized kernel: the subtree must run the row
	// engine and still satisfy the contract.
	for seed := int64(2000); seed < 2020; seed++ {
		g := &oracleGen{rng: rand.New(rand.NewSource(seed))}
		left := g.relation("l", g.rng.Intn(15))
		right := g.relation("r", g.rng.Intn(15))
		join := &NestedLoopJoin{
			Outer: &Values{Rel: left},
			Inner: &Values{Rel: right},
			Pred:  g.expr(left.Schema.Concat(right.Schema), 2),
		}
		op := g.plan(join, g.rng.Intn(3))
		checkOracle(t, fmt.Sprintf("seed %d", seed), op)
	}
}

func TestVectorizedValuesColPayload(t *testing.T) {
	g := &oracleGen{rng: rand.New(rand.NewSource(42))}
	rel := g.relation("c", 50)
	// A Values leaf carrying its columnar form must behave identically to
	// one without it.
	plain := &Values{Rel: rel}
	withCol := &Values{Rel: rel, Col: colbatch.FromRelation(rel)}
	var ctxA, ctxB Context
	a, err := ExecuteVectorized(plain, &ctxA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecuteVectorized(withCol, &ctxB)
	if err != nil {
		t.Fatal(err)
	}
	requireRelationsIdentical(t, "values", a.ToRelation(), b.ToRelation())
	if ctxA.Res != ctxB.Res {
		t.Fatalf("resources diverged: %+v vs %+v", ctxA.Res, ctxB.Res)
	}
}

// TestVectorizedStreamingOracle checks the ColSource pipeline against the
// RowSource pipeline over the same SELECT tails: identical rows, charges and
// blocking-stage classification, across batch sizes including ones that do
// not divide the input.
func TestVectorizedStreamingOracle(t *testing.T) {
	queries := []string{
		"SELECT c0, c2 FROM t WHERE c0 > 2 ORDER BY c0 DESC, c2 LIMIT 7",
		"SELECT DISTINCT c0 FROM t",
		"SELECT c0, COUNT(*), SUM(c2) FROM t GROUP BY c0 ORDER BY c0",
		"SELECT c0 + 1 AS x FROM t WHERE c3 LIKE '%o%' OR c0 < 0",
		"SELECT COUNT(*) FROM t WHERE c1 IS NOT NULL",
	}
	for _, q := range queries {
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		for _, batchRows := range []int{0, 1, 7, 1000} {
			for _, n := range []int{0, 1, 23} {
				g := &oracleGen{rng: rand.New(rand.NewSource(int64(n)*1000 + int64(batchRows)))}
				rel := sqltypes.NewRelation(sqltypes.NewSchema(
					sqltypes.Column{Name: "c0", Type: sqltypes.KindInt},
					sqltypes.Column{Name: "c1", Type: sqltypes.KindFloat},
					sqltypes.Column{Name: "c2", Type: sqltypes.KindInt},
					sqltypes.Column{Name: "c3", Type: sqltypes.KindString},
				))
				for i := 0; i < n; i++ {
					rel.Rows = append(rel.Rows, sqltypes.Row{
						g.value(sqltypes.KindInt, 0.2),
						g.value(sqltypes.KindFloat, 0.3),
						g.value(sqltypes.KindInt, 0.2),
						g.value(sqltypes.KindString, 0.2),
					})
				}
				label := fmt.Sprintf("%q batch=%d n=%d", q, batchRows, n)

				var rowCtx Context
				rowSrc, err := BuildTopSource(stmt, NewValuesSource(rel, batchRows))
				if err != nil {
					t.Fatalf("%s: BuildTopSource: %v", label, err)
				}
				wantRel, wantErr := Collect(rowSrc, &rowCtx)

				var vecCtx Context
				colSrc, err := BuildTopColSource(stmt, NewValuesColSource(colbatch.FromRelation(rel), batchRows))
				if err != nil {
					t.Fatalf("%s: BuildTopColSource: %v", label, err)
				}
				if got, want := ColSourceBlockingStage(colSrc), SourceBlockingStage(rowSrc); got != want {
					t.Fatalf("%s: blocking stage %q vs %q", label, got, want)
				}
				gotBatch, gotErr := CollectCol(colSrc, &vecCtx)

				if (wantErr != nil) != (gotErr != nil) {
					t.Fatalf("%s: row err=%v, vectorized err=%v", label, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				requireRelationsIdentical(t, label, wantRel, gotBatch.ToRelation())
				if rowCtx.Res != vecCtx.Res {
					t.Fatalf("%s: resources diverged: %+v vs %+v", label, rowCtx.Res, vecCtx.Res)
				}
			}
		}
	}
}

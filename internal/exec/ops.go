package exec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// Filter keeps rows satisfying a predicate.
type Filter struct {
	Input Operator
	Pred  sqlparser.Expr
}

// Schema implements Operator.
func (f *Filter) Schema() *sqltypes.Schema { return f.Input.Schema() }

// Execute implements Operator.
func (f *Filter) Execute(ctx *Context) (*sqltypes.Relation, error) {
	in, err := f.Input.Execute(ctx)
	if err != nil {
		return nil, err
	}
	return filterRel(f.Pred, in, ctx)
}

// filterRel is the row-level filter kernel shared by the materialized
// operator and FilterStream: it evaluates the predicate over one relation
// (or batch) and charges one CPU op per input row.
func filterRel(pred sqlparser.Expr, in *sqltypes.Relation, ctx *Context) (*sqltypes.Relation, error) {
	out := sqltypes.NewRelation(in.Schema)
	for _, row := range in.Rows {
		ok, err := sqlparser.EvalBool(pred, row, in.Schema)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	ctx.Res.CPUOps += float64(len(in.Rows))
	return out, nil
}

// Explain implements Operator.
func (f *Filter) Explain() string { return "FILTER " + f.Pred.String() }

// Children implements Operator.
func (f *Filter) Children() []Operator { return []Operator{f.Input} }

// Project evaluates scalar select items. Aggregates must have been rewritten
// to column references by Aggregate before projection.
type Project struct {
	Input Operator
	Items []sqlparser.SelectItem
}

// Schema implements Operator.
func (p *Project) Schema() *sqltypes.Schema { return projectSchema(p.Items, p.Input.Schema()) }

// projectSchema derives the projection output schema from an input schema.
func projectSchema(items []sqlparser.SelectItem, in *sqltypes.Schema) *sqltypes.Schema {
	var cols []sqltypes.Column
	for _, item := range items {
		if item.Star {
			cols = append(cols, in.Columns...)
			continue
		}
		cols = append(cols, sqltypes.Column{Name: projectOutputName(item), Type: inferType(item.Expr, in)})
	}
	return sqltypes.NewSchema(cols...)
}

func projectOutputName(item sqlparser.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if ref, ok := item.Expr.(*sqlparser.ColumnRef); ok {
		return ref.Name
	}
	return item.Expr.String()
}

// inferType guesses an output column's kind; precise typing is not needed by
// the executor (values carry their own kinds) but schemas drive display.
func inferType(e sqlparser.Expr, in *sqltypes.Schema) sqltypes.Kind {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return x.Val.Kind()
	case *sqlparser.ColumnRef:
		if i, err := in.ColumnIndex(x.Table, x.Name); err == nil {
			return in.Columns[i].Type
		}
		return sqltypes.KindNull
	case *sqlparser.BinaryExpr:
		if x.Op.IsComparison() || x.Op == sqlparser.OpAnd || x.Op == sqlparser.OpOr {
			return sqltypes.KindBool
		}
		lt, rt := inferType(x.Left, in), inferType(x.Right, in)
		if lt == sqltypes.KindFloat || rt == sqltypes.KindFloat || x.Op == sqlparser.OpDiv {
			return sqltypes.KindFloat
		}
		return lt
	case *sqlparser.FuncExpr:
		switch x.Name {
		case "LENGTH", "MOD":
			return sqltypes.KindInt
		case "UPPER", "LOWER", "SUBSTR":
			return sqltypes.KindString
		case "ABS", "COALESCE":
			if len(x.Args) > 0 {
				return inferType(x.Args[0], in)
			}
			return sqltypes.KindNull
		default:
			return sqltypes.KindFloat
		}
	case *sqlparser.AggExpr:
		switch x.Func {
		case sqlparser.AggCount:
			return sqltypes.KindInt
		case sqlparser.AggAvg:
			return sqltypes.KindFloat
		default:
			if x.Arg != nil {
				return inferType(x.Arg, in)
			}
			return sqltypes.KindFloat
		}
	default:
		return sqltypes.KindBool
	}
}

// Execute implements Operator.
func (p *Project) Execute(ctx *Context) (*sqltypes.Relation, error) {
	in, err := p.Input.Execute(ctx)
	if err != nil {
		return nil, err
	}
	return projectRel(p.Items, in, ctx)
}

// projectRel is the row-level projection kernel shared by the materialized
// operator and ProjectStream.
func projectRel(items []sqlparser.SelectItem, in *sqltypes.Relation, ctx *Context) (*sqltypes.Relation, error) {
	out := sqltypes.NewRelation(projectSchema(items, in.Schema))
	for _, row := range in.Rows {
		var outRow sqltypes.Row
		for _, item := range items {
			if item.Star {
				outRow = append(outRow, row...)
				continue
			}
			v, err := sqlparser.Eval(item.Expr, row, in.Schema)
			if err != nil {
				return nil, err
			}
			outRow = append(outRow, v)
		}
		out.Rows = append(out.Rows, outRow)
	}
	ctx.Res.CPUOps += float64(len(in.Rows)) * float64(len(items))
	return out, nil
}

// Explain implements Operator.
func (p *Project) Explain() string {
	parts := make([]string, len(p.Items))
	for i, it := range p.Items {
		parts[i] = it.String()
	}
	return "PROJECT " + strings.Join(parts, ", ")
}

// Children implements Operator.
func (p *Project) Children() []Operator { return []Operator{p.Input} }

// Sort orders rows by the given keys.
type Sort struct {
	Input Operator
	Keys  []sqlparser.OrderItem
}

// Schema implements Operator.
func (s *Sort) Schema() *sqltypes.Schema { return s.Input.Schema() }

// Execute implements Operator.
func (s *Sort) Execute(ctx *Context) (*sqltypes.Relation, error) {
	in, err := s.Input.Execute(ctx)
	if err != nil {
		return nil, err
	}
	return sortRel(s.Keys, in, ctx)
}

// sortRel is the sort kernel shared by the materialized operator and
// SortSource; the n·log2(n) CPU charge covers the full input once.
func sortRel(keys []sqlparser.OrderItem, in *sqltypes.Relation, ctx *Context) (*sqltypes.Relation, error) {
	type keyed struct {
		row  sqltypes.Row
		keys []sqltypes.Value
	}
	items := make([]keyed, len(in.Rows))
	for i, row := range in.Rows {
		ks := make([]sqltypes.Value, len(keys))
		for j, k := range keys {
			v, err := sqlparser.Eval(k.Expr, row, in.Schema)
			if err != nil {
				return nil, err
			}
			ks[j] = v
		}
		items[i] = keyed{row: row, keys: ks}
	}
	sort.SliceStable(items, func(a, b int) bool {
		for j, k := range keys {
			c := sqltypes.Compare(items[a].keys[j], items[b].keys[j])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := sqltypes.NewRelation(in.Schema)
	out.Rows = make([]sqltypes.Row, len(items))
	for i, it := range items {
		out.Rows[i] = it.row
	}
	n := float64(len(items))
	ctx.Res.CPUOps += n * log2(n)
	return out, nil
}

func log2(n float64) float64 {
	if n < 2 {
		return 1
	}
	l := 0.0
	for n > 1 {
		n /= 2
		l++
	}
	return l
}

// Explain implements Operator.
func (s *Sort) Explain() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.String()
	}
	return "SORT " + strings.Join(parts, ", ")
}

// Children implements Operator.
func (s *Sort) Children() []Operator { return []Operator{s.Input} }

// Limit keeps the first N rows.
type Limit struct {
	Input Operator
	N     int
}

// Schema implements Operator.
func (l *Limit) Schema() *sqltypes.Schema { return l.Input.Schema() }

// Execute implements Operator.
func (l *Limit) Execute(ctx *Context) (*sqltypes.Relation, error) {
	in, err := l.Input.Execute(ctx)
	if err != nil {
		return nil, err
	}
	out := sqltypes.NewRelation(in.Schema)
	n := l.N
	if n > len(in.Rows) {
		n = len(in.Rows)
	}
	out.Rows = in.Rows[:n]
	return out, nil
}

// Explain implements Operator.
func (l *Limit) Explain() string { return fmt.Sprintf("LIMIT %d", l.N) }

// Children implements Operator.
func (l *Limit) Children() []Operator { return []Operator{l.Input} }

// Distinct removes duplicate rows.
type Distinct struct {
	Input Operator
}

// Schema implements Operator.
func (d *Distinct) Schema() *sqltypes.Schema { return d.Input.Schema() }

// Execute implements Operator.
func (d *Distinct) Execute(ctx *Context) (*sqltypes.Relation, error) {
	in, err := d.Input.Execute(ctx)
	if err != nil {
		return nil, err
	}
	state := newDistinctState()
	return state.fold(in, ctx), nil
}

// distinctState is the duplicate-elimination kernel shared by the
// materialized operator and DistinctStream: the seen-set persists across
// fold calls so duplicates are removed across batches.
type distinctState struct {
	seen map[uint64][]sqltypes.Row
}

func newDistinctState() *distinctState {
	return &distinctState{seen: map[uint64][]sqltypes.Row{}}
}

// fold returns the not-seen-before rows of one relation (or batch),
// charging two CPU ops per input row.
func (s *distinctState) fold(in *sqltypes.Relation, ctx *Context) *sqltypes.Relation {
	out := sqltypes.NewRelation(in.Schema)
	for _, row := range in.Rows {
		h := rowHash(row)
		dup := false
		for _, prev := range s.seen[h] {
			if rowsIdentical(prev, row) {
				dup = true
				break
			}
		}
		if !dup {
			s.seen[h] = append(s.seen[h], row)
			out.Rows = append(out.Rows, row)
		}
	}
	ctx.Res.CPUOps += float64(len(in.Rows)) * 2
	return out
}

// Explain implements Operator.
func (d *Distinct) Explain() string { return "DISTINCT" }

// Children implements Operator.
func (d *Distinct) Children() []Operator { return []Operator{d.Input} }

func rowHash(r sqltypes.Row) uint64 {
	var h uint64 = 1469598103934665603
	for _, v := range r {
		h ^= v.Hash()
		h *= 1099511628211
	}
	return h
}

// rowsIdentical compares rows treating NULLs as identical (grouping/distinct
// semantics, unlike predicate equality).
func rowsIdentical(a, b sqltypes.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].IsNull() && b[i].IsNull() {
			continue
		}
		if a[i].IsNull() != b[i].IsNull() {
			return false
		}
		if sqltypes.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

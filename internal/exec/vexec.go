package exec

import (
	"sort"
	"sync"

	"repro/internal/exec/colbatch"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// ExecuteVectorized runs an operator tree over columnar batches. It is an
// alternative engine over the same physical plans: every operator charges
// exactly the resources its row-at-a-time Execute charges, and the rows of
// the resulting batch are bit-identical to Execute's output (same Value
// kinds and payloads, same order). Routing decisions, virtual-clock timings
// and network draws therefore cannot observe which engine ran — only the
// wall-clock cost of running the simulation changes.
//
// Operators without a vectorized kernel (index scans, nested-loop and merge
// joins) execute their whole subtree through the row engine and decompose
// the result. Kernels that hit an unsupported expression shape or an eval
// error rerun that single node's row kernel over the already-produced
// inputs; see vexpr.go for why that reproduces the row path's outcome
// exactly.
func ExecuteVectorized(op Operator, ctx *Context) (*colbatch.Batch, error) {
	switch x := op.(type) {
	case *Values:
		if x.Col != nil {
			ctx.Res.CPUOps += float64(x.Col.Len())
			return x.Col, nil
		}
		ctx.Res.CPUOps += float64(len(x.Rel.Rows))
		return colbatch.FromRelation(x.Rel), nil

	case *SeqScan:
		cols, n := scanColumns(x.Table)
		ctx.Res.IOPages += float64(x.Table.Pages())
		ctx.Res.CPUOps += float64(n)
		return colbatch.New(x.Schema(), cols, n), nil

	case *Filter:
		in, err := ExecuteVectorized(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		sel, verr := evalPredicate(x.Pred, in)
		if verr != nil {
			rel, err := filterRel(x.Pred, in.ToRelation(), ctx)
			if err != nil {
				return nil, err
			}
			return colbatch.FromRelation(rel), nil
		}
		ctx.Res.CPUOps += float64(in.Len())
		return in.Select(sel), nil

	case *Project:
		in, err := ExecuteVectorized(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		out, verr := projectBatch(x.Items, in)
		if verr != nil {
			rel, err := projectRel(x.Items, in.ToRelation(), ctx)
			if err != nil {
				return nil, err
			}
			return colbatch.FromRelation(rel), nil
		}
		ctx.Res.CPUOps += float64(in.Len()) * float64(len(x.Items))
		return out, nil

	case *Sort:
		in, err := ExecuteVectorized(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		out, verr := sortBatch(x.Keys, in)
		if verr != nil {
			rel, err := sortRel(x.Keys, in.ToRelation(), ctx)
			if err != nil {
				return nil, err
			}
			return colbatch.FromRelation(rel), nil
		}
		n := float64(in.Len())
		ctx.Res.CPUOps += n * log2(n)
		return out, nil

	case *Limit:
		in, err := ExecuteVectorized(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		n := x.N
		if n > in.Len() {
			n = in.Len()
		}
		return in.Slice(0, n), nil

	case *Distinct:
		in, err := ExecuteVectorized(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		return distinctBatch(in, newVDistinctState(), ctx), nil

	case *Aggregate:
		in, err := ExecuteVectorized(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		folder := newAggFolder(x.GroupBy, x.Aggs)
		if verr := foldBatch(folder, in, ctx); verr != nil {
			if err := folder.fold(in.ToRelation(), ctx); err != nil {
				return nil, err
			}
		}
		return colbatch.FromRelation(folder.result(x.Schema())), nil

	case *HashJoin:
		build, err := ExecuteVectorized(x.Build, ctx)
		if err != nil {
			return nil, err
		}
		probe, err := ExecuteVectorized(x.Probe, ctx)
		if err != nil {
			return nil, err
		}
		out, verr := hashJoinBatch(x, build, probe, ctx)
		if verr != nil {
			rel, err := hashJoinRel(x, build.ToRelation(), probe.ToRelation(), ctx)
			if err != nil {
				return nil, err
			}
			return colbatch.FromRelation(rel), nil
		}
		return out, nil

	case *ShardAggFinal:
		in, err := ExecuteVectorized(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		rel, err := x.mergeBatch(in, ctx)
		if err != nil {
			return nil, err
		}
		return colbatch.FromRelation(rel), nil

	default:
		rel, err := op.Execute(ctx)
		if err != nil {
			return nil, err
		}
		return colbatch.FromRelation(rel), nil
	}
}

// scanCacheEntry caches one table's columnar decomposition at a version.
type scanCacheEntry struct {
	version int64
	cols    []*colbatch.Column
	n       int
}

// scanCache memoizes SeqScan decompositions keyed by table identity; entries
// are invalidated by the table's mutation counter, so the update-load driver
// naturally evicts them. Columns are immutable once built and may be shared
// by any number of concurrent executions.
var scanCache sync.Map // *storage.Table -> *scanCacheEntry

func scanColumns(t *storage.Table) ([]*colbatch.Column, int) {
	v := t.Version()
	if e, ok := scanCache.Load(t); ok {
		if ent := e.(*scanCacheEntry); ent.version == v {
			return ent.cols, ent.n
		}
	}
	rel := sqltypes.NewRelation(t.Schema())
	_ = t.Scan(func(row sqltypes.Row) error {
		rel.Rows = append(rel.Rows, row)
		return nil
	})
	b := colbatch.FromRelation(rel)
	// Only cache when no mutation raced the scan; a stale miss just rebuilds.
	if t.Version() == v {
		scanCache.Store(t, &scanCacheEntry{version: v, cols: b.Cols, n: b.Len()})
	}
	return b.Cols, b.Len()
}

// projectBatch evaluates select items over a batch. When every item is a
// bare column reference (or *), the output shares the input's row window and
// payload vectors — projection becomes O(1).
func projectBatch(items []sqlparser.SelectItem, in *colbatch.Batch) (*colbatch.Batch, error) {
	outSchema := projectSchema(items, in.Schema)
	refsOnly := true
	nodes := make([]vnode, len(items))
	for i, item := range items {
		if item.Star {
			continue
		}
		node, err := compileExpr(item.Expr, in.Schema)
		if err != nil {
			return nil, err
		}
		nodes[i] = node
		if _, ok := node.(*vcolref); !ok {
			refsOnly = false
		}
	}
	if refsOnly {
		var cols []*colbatch.Column
		for i, item := range items {
			if item.Star {
				cols = append(cols, in.Cols...)
				continue
			}
			cols = append(cols, in.Cols[nodes[i].(*vcolref).idx])
		}
		return in.WithColumns(outSchema, cols), nil
	}
	var cols []*colbatch.Column
	for i, item := range items {
		if item.Star {
			for _, c := range in.Cols {
				ref := &vres{n: in.Len(), tag: rCol, col: c, b: in}
				cols = append(cols, ref.toColumn())
			}
			continue
		}
		res, err := nodes[i].eval(in)
		if err != nil {
			return nil, err
		}
		cols = append(cols, res.toColumn())
	}
	return colbatch.New(outSchema, cols, in.Len()), nil
}

// sortBatch orders the batch's logical rows by the key expressions; ties
// keep input order (stable), matching sortRel.
func sortBatch(keys []sqlparser.OrderItem, in *colbatch.Batch) (*colbatch.Batch, error) {
	n := in.Len()
	kres := make([]*vres, len(keys))
	kops := make([]operand, len(keys))
	for j, k := range keys {
		node, err := compileExpr(k.Expr, in.Schema)
		if err != nil {
			return nil, err
		}
		if kres[j], err = node.eval(in); err != nil {
			return nil, err
		}
		kops[j] = classify(kres[j])
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		for j, k := range keys {
			c := cmpKeyAt(kres[j], &kops[j], ia, ib)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return in.Select(idx), nil
}

// cmpKeyAt three-way-compares key cells ia and ib with sqltypes.Compare
// ordering: NULLs first, then the typed comparison (int exact, float with
// NaN comparing equal to everything, strings lexical, bools as 0/1).
func cmpKeyAt(r *vres, o *operand, ia, ib int) int {
	if !o.ok {
		return sqltypes.Compare(r.value(ia), r.value(ib))
	}
	an, bn := o.null(ia), o.null(ib)
	if an || bn {
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		default:
			return 1
		}
	}
	switch o.kind {
	case sqltypes.KindInt:
		a, b := o.intAt(ia), o.intAt(ib)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case sqltypes.KindFloat:
		a, b := o.floatAt(ia), o.floatAt(ib)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	default:
		return sqltypes.Compare(r.value(ia), r.value(ib))
	}
}

// colHashAt returns Value.Hash of the cell at physical index p without
// building the Value, via the sqltypes bulk hash helpers.
func colHashAt(c *colbatch.Column, p int) uint64 {
	if c.Mixed != nil {
		return c.Mixed[p].Hash()
	}
	if c.Kind == sqltypes.KindNull || (c.Nulls != nil && c.Nulls[p]) {
		return sqltypes.HashNull()
	}
	switch c.Kind {
	case sqltypes.KindInt:
		return sqltypes.HashInt64(c.Ints[p])
	case sqltypes.KindFloat:
		return sqltypes.HashFloat64(c.Floats[p])
	case sqltypes.KindString:
		return sqltypes.HashString(c.Strs[p])
	default:
		return sqltypes.HashBool(c.Bools[p])
	}
}

// vresHash returns Value.Hash of logical cell i of a sub-expression result.
func vresHash(r *vres, i int) uint64 {
	switch r.tag {
	case rConst:
		return r.konst.Hash()
	case rCol:
		return colHashAt(r.col, r.b.Phys(i))
	case rVals:
		return r.vals[i].Hash()
	case rInts:
		if r.nulls != nil && r.nulls[i] {
			return sqltypes.HashNull()
		}
		return sqltypes.HashInt64(r.ints[i])
	case rFloats:
		if r.nulls != nil && r.nulls[i] {
			return sqltypes.HashNull()
		}
		return sqltypes.HashFloat64(r.floats[i])
	default:
		if r.nulls != nil && r.nulls[i] {
			return sqltypes.HashNull()
		}
		return sqltypes.HashBool(r.bools[i])
	}
}

// batchRowHashes computes rowHash for every logical row column-by-column.
func batchRowHashes(b *colbatch.Batch) []uint64 {
	n := b.Len()
	hs := make([]uint64, n)
	for i := range hs {
		hs[i] = 1469598103934665603
	}
	for _, c := range b.Cols {
		for i := 0; i < n; i++ {
			hs[i] = (hs[i] ^ colHashAt(c, b.Phys(i))) * 1099511628211
		}
	}
	return hs
}

// batchRowsIdentical compares logical rows i and j of (possibly different)
// batches with rowsIdentical's NULL-tolerant semantics.
func batchRowsIdentical(a *colbatch.Batch, i int, b *colbatch.Batch, j int) bool {
	pa, pb := a.Phys(i), b.Phys(j)
	for c := range a.Cols {
		ca, cb := a.Cols[c], b.Cols[c]
		an, bn := ca.IsNull(pa), cb.IsNull(pb)
		if an && bn {
			continue
		}
		if an != bn {
			return false
		}
		if sqltypes.Compare(ca.Value(pa), cb.Value(pb)) != 0 {
			return false
		}
	}
	return true
}

// vDistinctState is the columnar seen-set: the streaming distinct source
// keeps one across batches, the materialized operator uses a fresh one.
type vDistinctState struct {
	seen map[uint64][]seenRow
}

type seenRow struct {
	b *colbatch.Batch
	i int
}

func newVDistinctState() *vDistinctState {
	return &vDistinctState{seen: map[uint64][]seenRow{}}
}

// distinctBatch selects the not-seen-before rows, charging two CPU ops per
// input row like distinctState.fold. Rows materialize only on hash-bucket
// collisions.
func distinctBatch(in *colbatch.Batch, state *vDistinctState, ctx *Context) *colbatch.Batch {
	n := in.Len()
	hs := batchRowHashes(in)
	sel := make([]int, 0, n)
	for i := 0; i < n; i++ {
		h := hs[i]
		dup := false
		for _, prev := range state.seen[h] {
			if batchRowsIdentical(prev.b, prev.i, in, i) {
				dup = true
				break
			}
		}
		if !dup {
			state.seen[h] = append(state.seen[h], seenRow{b: in, i: i})
			sel = append(sel, i)
		}
	}
	ctx.Res.CPUOps += float64(n) * 2
	return in.Select(sel)
}

// foldBatch is the vectorized counterpart of aggFolder.fold: group keys and
// aggregate arguments evaluate column-wise up front (so an error leaves the
// folder untouched for the row fallback), then rows fold into the exact
// same group structures the row kernel builds.
func foldBatch(f *aggFolder, in *colbatch.Batch, ctx *Context) error {
	n := in.Len()
	gres := make([]*vres, len(f.groupBy))
	for i, g := range f.groupBy {
		node, err := compileExpr(g, in.Schema)
		if err != nil {
			return err
		}
		if gres[i], err = node.eval(in); err != nil {
			return err
		}
	}
	ares := make([]*vres, len(f.aggs))
	aops := make([]operand, len(f.aggs))
	for i, agg := range f.aggs {
		if agg.Arg == nil {
			continue
		}
		node, err := compileExpr(agg.Arg, in.Schema)
		if err != nil {
			return err
		}
		if ares[i], err = node.eval(in); err != nil {
			return err
		}
		aops[i] = classify(ares[i])
	}
	// Group hashes fold column-major (cache-friendly, one dispatch per cell);
	// candidate groups compare against the unboxed vres cells directly, so
	// keys box exactly once per distinct group instead of once per row.
	gops := make([]operand, len(gres))
	for i, g := range gres {
		gops[i] = classify(g)
	}
	hs := make([]uint64, n)
	for i := range hs {
		hs[i] = 1469598103934665603
	}
	for gi, g := range gres {
		o := &gops[gi]
		switch {
		case o.ok && !o.isConst && o.nulls == nil && o.kind == sqltypes.KindInt:
			for row := 0; row < n; row++ {
				hs[row] = (hs[row] ^ sqltypes.HashInt64(o.ints[row])) * 1099511628211
			}
		case o.ok && !o.isConst && o.nulls == nil && o.kind == sqltypes.KindFloat:
			for row := 0; row < n; row++ {
				hs[row] = (hs[row] ^ sqltypes.HashFloat64(o.floats[row])) * 1099511628211
			}
		case o.ok && !o.isConst && o.nulls == nil && o.kind == sqltypes.KindString:
			for row := 0; row < n; row++ {
				hs[row] = (hs[row] ^ sqltypes.HashString(o.strs[row])) * 1099511628211
			}
		default:
			for row := 0; row < n; row++ {
				hs[row] = (hs[row] ^ vresHash(g, row)) * 1099511628211
			}
		}
	}
	rowGroups := make([]*aggGroup, n)
	for row := 0; row < n; row++ {
		h := hs[row]
		var grp *aggGroup
		for _, g := range f.groups[h] {
			if groupKeysMatch(g.keys, gres, gops, row) {
				grp = g
				break
			}
		}
		if grp == nil {
			keys := make(sqltypes.Row, len(f.groupBy))
			for i, g := range gres {
				keys[i] = g.value(row)
			}
			grp = &aggGroup{keys: keys, states: make([]*aggState, len(f.aggs))}
			for i := range grp.states {
				grp.states[i] = newAggState()
			}
			f.groups[h] = append(f.groups[h], grp)
			f.order = append(f.order, grp)
		}
		grp.countStar++
		rowGroups[row] = grp
	}
	// Aggregate arguments fold agg-major so the typed dispatch happens once
	// per (agg, batch) instead of once per (agg, row).
	for i := range f.aggs {
		a := ares[i]
		if a == nil {
			continue // COUNT(*)
		}
		o := &aops[i]
		switch {
		case o.ok && !o.isConst && o.kind == sqltypes.KindInt:
			if o.nulls == nil {
				for row := 0; row < n; row++ {
					rowGroups[row].states[i].addInt64(o.ints[row])
				}
			} else {
				for row := 0; row < n; row++ {
					if o.nulls[row] {
						continue
					}
					rowGroups[row].states[i].addInt64(o.ints[row])
				}
			}
		case o.ok && !o.isConst && o.kind == sqltypes.KindFloat:
			if o.nulls == nil {
				for row := 0; row < n; row++ {
					rowGroups[row].states[i].addFloat64(o.floats[row])
				}
			} else {
				for row := 0; row < n; row++ {
					if o.nulls[row] {
						continue
					}
					rowGroups[row].states[i].addFloat64(o.floats[row])
				}
			}
		default:
			for row := 0; row < n; row++ {
				rowGroups[row].states[i].add(a.value(row))
			}
		}
	}
	ctx.Res.CPUOps += float64(n) * float64(1+len(f.aggs))
	return nil
}

// groupKeysMatch is rowsIdentical between a group's boxed keys and logical
// row `row` of the group-by results, without boxing the candidate. The typed
// fast paths replicate sqltypes.Compare exactly — in particular floats use
// !(a<b || a>b), which like Compare treats NaN as equal to everything.
func groupKeysMatch(keys sqltypes.Row, gres []*vres, gops []operand, row int) bool {
	for i, g := range gres {
		k := keys[i]
		if g.isNull(row) {
			if !k.IsNull() {
				return false
			}
			continue
		}
		if k.IsNull() {
			return false
		}
		if o := &gops[i]; o.ok && !o.isConst {
			switch o.kind {
			case sqltypes.KindInt:
				if k.Kind() == sqltypes.KindInt {
					if k.Int() != o.ints[row] {
						return false
					}
					continue
				}
			case sqltypes.KindFloat:
				if k.Kind() == sqltypes.KindFloat {
					a, b := o.floats[row], k.Float()
					if a < b || a > b {
						return false
					}
					continue
				}
			case sqltypes.KindString:
				if k.Kind() == sqltypes.KindString {
					if k.Str() != o.strs[row] {
						return false
					}
					continue
				}
			case sqltypes.KindBool:
				if k.Kind() == sqltypes.KindBool {
					if k.Bool() != o.bools[row] {
						return false
					}
					continue
				}
			}
		}
		if sqltypes.Compare(k, g.value(row)) != 0 {
			return false
		}
	}
	return true
}

// hashJoinBatch joins two batches on key equality: build-side hash table of
// logical indices, probe-major candidate pairs in the row kernel's output
// order, then the residual filter over the gathered candidate batch.
func hashJoinBatch(j *HashJoin, build, probe *colbatch.Batch, ctx *Context) (*colbatch.Batch, error) {
	bnode, err := compileExpr(j.BuildKey, build.Schema)
	if err != nil {
		return nil, err
	}
	pnode, err := compileExpr(j.ProbeKey, probe.Schema)
	if err != nil {
		return nil, err
	}
	bres, err := bnode.eval(build)
	if err != nil {
		return nil, err
	}
	pres, err := pnode.eval(probe)
	if err != nil {
		return nil, err
	}
	outSchema := build.Schema.Concat(probe.Schema)

	bn := build.Len()
	ht := make(map[uint64][]int, bn)
	bkeys := make([]sqltypes.Value, bn)
	for i := 0; i < bn; i++ {
		if bres.isNull(i) {
			continue
		}
		bkeys[i] = bres.value(i)
		h := vresHash(bres, i)
		ht[h] = append(ht[h], i)
	}
	var bIdx, pIdx []int
	pn := probe.Len()
	for i := 0; i < pn; i++ {
		if pres.isNull(i) {
			continue
		}
		h := vresHash(pres, i)
		bucket := ht[h]
		if len(bucket) == 0 {
			continue
		}
		k := pres.value(i)
		for _, bi := range bucket {
			if sqltypes.Compare(bkeys[bi], k) != 0 {
				continue
			}
			bIdx = append(bIdx, bi)
			pIdx = append(pIdx, i)
		}
	}

	// Gather candidate pairs into one contiguous joined batch.
	cols := make([]*colbatch.Column, 0, len(build.Cols)+len(probe.Cols))
	bPhys := make([]int, len(bIdx))
	for i, bi := range bIdx {
		bPhys[i] = build.Phys(bi)
	}
	pPhys := make([]int, len(pIdx))
	for i, pi := range pIdx {
		pPhys[i] = probe.Phys(pi)
	}
	for _, c := range build.Cols {
		cols = append(cols, c.Gather(bPhys))
	}
	for _, c := range probe.Cols {
		cols = append(cols, c.Gather(pPhys))
	}
	out := colbatch.New(outSchema, cols, len(bIdx))
	if j.Residual != nil {
		sel, err := evalPredicate(j.Residual, out)
		if err != nil {
			return nil, err
		}
		out = out.Select(sel)
	}
	ctx.Res.CPUOps += float64(bn)*2 + float64(pn)*2 + float64(out.Len())
	return out, nil
}

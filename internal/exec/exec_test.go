package exec

import (
	"strings"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// fixtures

func ordersTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	schema := sqltypes.NewSchema(
		sqltypes.Column{Table: "orders", Name: "o_id", Type: sqltypes.KindInt},
		sqltypes.Column{Table: "orders", Name: "o_custkey", Type: sqltypes.KindInt},
		sqltypes.Column{Table: "orders", Name: "o_amount", Type: sqltypes.KindFloat},
	)
	tab := storage.NewTable("orders", schema)
	var rows []sqltypes.Row
	for i := 0; i < n; i++ {
		rows = append(rows, sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(i % 10)),
			sqltypes.NewFloat(float64(i) * 2),
		})
	}
	if err := tab.Append(rows...); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateIndex("orders_pk", "o_id", storage.IndexSorted); err != nil {
		t.Fatal(err)
	}
	return tab
}

func custTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	schema := sqltypes.NewSchema(
		sqltypes.Column{Table: "customer", Name: "c_id", Type: sqltypes.KindInt},
		sqltypes.Column{Table: "customer", Name: "c_name", Type: sqltypes.KindString},
	)
	tab := storage.NewTable("customer", schema)
	var rows []sqltypes.Row
	for i := 0; i < n; i++ {
		rows = append(rows, sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString("cust" + string(rune('A'+i%26))),
		})
	}
	if err := tab.Append(rows...); err != nil {
		t.Fatal(err)
	}
	return tab
}

func run(t *testing.T, op Operator) (*sqltypes.Relation, Resources) {
	t.Helper()
	ctx := &Context{}
	rel, err := op.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return rel, ctx.Res
}

func TestSeqScanChargesIO(t *testing.T) {
	tab := ordersTable(t, 500)
	rel, res := run(t, &SeqScan{Table: tab, As: "o"})
	if rel.Cardinality() != 500 {
		t.Fatalf("rows: %d", rel.Cardinality())
	}
	if res.IOPages < 1 {
		t.Fatalf("seq scan must charge IO pages: %+v", res)
	}
	if res.CachedPages != 0 {
		t.Fatalf("seq scan should not charge cached pages: %+v", res)
	}
	if rel.Schema.Columns[0].Table != "o" {
		t.Fatalf("alias not applied: %v", rel.Schema)
	}
}

func TestIndexScanEqAndRange(t *testing.T) {
	tab := ordersTable(t, 500)
	idx := tab.IndexOnColumn("o_id")
	v := sqltypes.NewInt(42)
	rel, res := run(t, &IndexScan{Table: tab, Index: idx, Probe: IndexProbe{Eq: &v}})
	if rel.Cardinality() != 1 || rel.Rows[0][0].Int() != 42 {
		t.Fatalf("eq probe: %v", rel)
	}
	if res.CachedPages <= 0 {
		t.Fatalf("index scan must charge cached pages: %+v", res)
	}
	if res.IOPages != 0 {
		t.Fatalf("index scan should not charge sequential IO: %+v", res)
	}
	lo, hi := sqltypes.NewInt(10), sqltypes.NewInt(19)
	rel, _ = run(t, &IndexScan{Table: tab, Index: idx, Probe: IndexProbe{Lo: &lo, Hi: &hi, LoInclusive: true, HiInclusive: true}})
	if rel.Cardinality() != 10 {
		t.Fatalf("range probe: %d", rel.Cardinality())
	}
}

func TestIndexScanHashRangeFails(t *testing.T) {
	tab := ordersTable(t, 10)
	if _, err := tab.CreateIndex("h", "o_custkey", storage.IndexHash); err != nil {
		t.Fatal(err)
	}
	lo := sqltypes.NewInt(1)
	op := &IndexScan{Table: tab, Index: tab.Index("h"), Probe: IndexProbe{Lo: &lo}}
	if _, err := op.Execute(&Context{}); err == nil {
		t.Fatal("hash range probe must error")
	}
}

func TestFilterAndProject(t *testing.T) {
	tab := ordersTable(t, 100)
	pred, _ := sqlparser.ParseExpr("o.o_id >= 90")
	items := []sqlparser.SelectItem{
		{Expr: &sqlparser.ColumnRef{Table: "o", Name: "o_id"}},
		{Expr: mustExpr(t, "o.o_amount * 2"), Alias: "dbl"},
	}
	op := &Project{Input: &Filter{Input: &SeqScan{Table: tab, As: "o"}, Pred: pred}, Items: items}
	rel, _ := run(t, op)
	if rel.Cardinality() != 10 {
		t.Fatalf("filtered rows: %d", rel.Cardinality())
	}
	if rel.Schema.Columns[1].Name != "dbl" {
		t.Fatalf("projection alias: %v", rel.Schema)
	}
	if rel.Rows[0][1].Float() != rel.Rows[0][0].Float()*4 {
		t.Fatalf("computed column wrong: %v", rel.Rows[0])
	}
}

func mustExpr(t *testing.T, src string) sqlparser.Expr {
	t.Helper()
	e, err := sqlparser.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestHashJoin(t *testing.T) {
	orders := ordersTable(t, 100)
	cust := custTable(t, 10)
	j := &HashJoin{
		Build:    &SeqScan{Table: cust, As: "c"},
		Probe:    &SeqScan{Table: orders, As: "o"},
		BuildKey: mustExpr(t, "c.c_id"),
		ProbeKey: mustExpr(t, "o.o_custkey"),
	}
	rel, _ := run(t, j)
	if rel.Cardinality() != 100 {
		t.Fatalf("join rows: %d", rel.Cardinality())
	}
	if rel.Schema.Len() != 5 {
		t.Fatalf("join schema: %v", rel.Schema)
	}
	// verify keys match on a sample
	ci, _ := rel.Schema.ColumnIndex("c", "c_id")
	oi, _ := rel.Schema.ColumnIndex("o", "o_custkey")
	for _, row := range rel.Rows[:10] {
		if row[ci].Int() != row[oi].Int() {
			t.Fatalf("mismatched join row: %v", row)
		}
	}
}

func TestHashJoinResidual(t *testing.T) {
	orders := ordersTable(t, 100)
	cust := custTable(t, 10)
	j := &HashJoin{
		Build:    &SeqScan{Table: cust, As: "c"},
		Probe:    &SeqScan{Table: orders, As: "o"},
		BuildKey: mustExpr(t, "c.c_id"),
		ProbeKey: mustExpr(t, "o.o_custkey"),
		Residual: mustExpr(t, "o.o_amount > 100"),
	}
	rel, _ := run(t, j)
	ai, _ := rel.Schema.ColumnIndex("o", "o_amount")
	for _, row := range rel.Rows {
		if row[ai].Float() <= 100 {
			t.Fatalf("residual not applied: %v", row)
		}
	}
}

func TestNestedLoopJoinCross(t *testing.T) {
	a := custTable(t, 3)
	b := custTable(t, 4)
	j := &NestedLoopJoin{Outer: &SeqScan{Table: a, As: "a"}, Inner: &SeqScan{Table: b, As: "b"}}
	rel, res := run(t, j)
	if rel.Cardinality() != 12 {
		t.Fatalf("cross: %d", rel.Cardinality())
	}
	if res.CPUOps < 12 {
		t.Fatalf("nl join cpu: %+v", res)
	}
}

func TestAggregateGrouped(t *testing.T) {
	tab := ordersTable(t, 100)
	agg := &Aggregate{
		Input:   &SeqScan{Table: tab, As: "o"},
		GroupBy: []sqlparser.Expr{mustExpr(t, "o.o_custkey")},
		Aggs: []*sqlparser.AggExpr{
			{Func: sqlparser.AggCount},
			{Func: sqlparser.AggSum, Arg: mustExpr(t, "o.o_amount")},
			{Func: sqlparser.AggMin, Arg: mustExpr(t, "o.o_id")},
			{Func: sqlparser.AggMax, Arg: mustExpr(t, "o.o_id")},
			{Func: sqlparser.AggAvg, Arg: mustExpr(t, "o.o_id")},
		},
	}
	rel, _ := run(t, agg)
	if rel.Cardinality() != 10 {
		t.Fatalf("groups: %d", rel.Cardinality())
	}
	for _, row := range rel.Rows {
		if row[1].Int() != 10 { // count per group
			t.Fatalf("count: %v", row)
		}
		if row[4].Int() != row[3].Int()+90 { // max = min + 90 for stride-10 groups
			t.Fatalf("min/max: %v", row)
		}
		if row[5].Float() != (row[3].Float()+row[4].Float())/2 { // avg of arithmetic series
			t.Fatalf("avg: %v", row)
		}
	}
}

func TestAggregateScalarEmptyInput(t *testing.T) {
	tab := ordersTable(t, 0)
	agg := &Aggregate{
		Input: &SeqScan{Table: tab, As: "o"},
		Aggs: []*sqlparser.AggExpr{
			{Func: sqlparser.AggCount},
			{Func: sqlparser.AggSum, Arg: mustExpr(t, "o.o_amount")},
			{Func: sqlparser.AggAvg, Arg: mustExpr(t, "o.o_amount")},
		},
	}
	rel, _ := run(t, agg)
	if rel.Cardinality() != 1 {
		t.Fatalf("scalar agg over empty input must yield 1 row, got %d", rel.Cardinality())
	}
	if rel.Rows[0][0].Int() != 0 {
		t.Fatalf("COUNT(*) over empty: %v", rel.Rows[0])
	}
	if !rel.Rows[0][1].IsNull() || !rel.Rows[0][2].IsNull() {
		t.Fatalf("SUM/AVG over empty must be NULL: %v", rel.Rows[0])
	}
}

func TestAggregateNullsIgnored(t *testing.T) {
	schema := sqltypes.NewSchema(sqltypes.Column{Table: "t", Name: "v", Type: sqltypes.KindInt})
	rel := sqltypes.NewRelation(schema)
	rel.Rows = []sqltypes.Row{{sqltypes.NewInt(2)}, {sqltypes.Null}, {sqltypes.NewInt(4)}}
	agg := &Aggregate{
		Input: &Values{Rel: rel},
		Aggs: []*sqlparser.AggExpr{
			{Func: sqlparser.AggCount, Arg: mustExpr(t, "t.v")},
			{Func: sqlparser.AggCount},
			{Func: sqlparser.AggSum, Arg: mustExpr(t, "t.v")},
			{Func: sqlparser.AggAvg, Arg: mustExpr(t, "t.v")},
		},
	}
	out, _ := run(t, agg)
	row := out.Rows[0]
	if row[0].Int() != 2 {
		t.Fatalf("COUNT(v) must skip NULL: %v", row)
	}
	if row[1].Int() != 3 {
		t.Fatalf("COUNT(*) counts all: %v", row)
	}
	if row[2].Int() != 6 {
		t.Fatalf("SUM: %v", row)
	}
	if row[3].Float() != 3 {
		t.Fatalf("AVG: %v", row)
	}
}

func TestSortAscDescStable(t *testing.T) {
	tab := ordersTable(t, 20)
	s := &Sort{
		Input: &SeqScan{Table: tab, As: "o"},
		Keys: []sqlparser.OrderItem{
			{Expr: mustExpr(t, "o.o_custkey"), Desc: false},
			{Expr: mustExpr(t, "o.o_id"), Desc: true},
		},
	}
	rel, res := run(t, s)
	for i := 1; i < len(rel.Rows); i++ {
		prev, cur := rel.Rows[i-1], rel.Rows[i]
		if prev[1].Int() > cur[1].Int() {
			t.Fatalf("not sorted by custkey at %d", i)
		}
		if prev[1].Int() == cur[1].Int() && prev[0].Int() < cur[0].Int() {
			t.Fatalf("secondary desc violated at %d", i)
		}
	}
	if res.CPUOps <= 20 {
		t.Fatalf("sort must charge n log n: %+v", res)
	}
}

func TestLimitAndDistinct(t *testing.T) {
	tab := ordersTable(t, 100)
	l := &Limit{Input: &SeqScan{Table: tab, As: "o"}, N: 7}
	rel, _ := run(t, l)
	if rel.Cardinality() != 7 {
		t.Fatalf("limit: %d", rel.Cardinality())
	}
	l2 := &Limit{Input: &SeqScan{Table: tab, As: "o"}, N: 1000}
	rel, _ = run(t, l2)
	if rel.Cardinality() != 100 {
		t.Fatalf("limit beyond size: %d", rel.Cardinality())
	}
	proj := &Project{Input: &SeqScan{Table: tab, As: "o"}, Items: []sqlparser.SelectItem{{Expr: mustExpr(t, "o.o_custkey")}}}
	d := &Distinct{Input: proj}
	rel, _ = run(t, d)
	if rel.Cardinality() != 10 {
		t.Fatalf("distinct: %d", rel.Cardinality())
	}
}

func TestValuesOperator(t *testing.T) {
	schema := sqltypes.NewSchema(sqltypes.Column{Table: "x", Name: "a", Type: sqltypes.KindInt})
	rel := sqltypes.NewRelation(schema)
	rel.Rows = []sqltypes.Row{{sqltypes.NewInt(1)}}
	v := &Values{Rel: rel, Label: "frag1"}
	out, res := run(t, v)
	if out != rel || res.IOPages != 0 {
		t.Fatalf("values: %v %v", out, res)
	}
	if !strings.Contains(v.Explain(), "frag1") {
		t.Fatal("label in explain")
	}
}

func TestExplainTree(t *testing.T) {
	tab := ordersTable(t, 10)
	op := &Filter{Input: &SeqScan{Table: tab, As: "o"}, Pred: mustExpr(t, "o.o_id > 5")}
	out := ExplainTree(op)
	if !strings.Contains(out, "FILTER") || !strings.Contains(out, "SEQSCAN") {
		t.Fatalf("explain: %s", out)
	}
	if !strings.Contains(out, "\n  SEQSCAN") {
		t.Fatalf("child not indented: %q", out)
	}
}

func TestProbeFromPredicate(t *testing.T) {
	conj := sqlparser.SplitConjuncts(mustExpr(t, "o.o_id > 5 AND o.o_amount < 100"))
	probe, rest, ok := ProbeFromPredicate(conj, "o", "o_id")
	if !ok || probe.Lo == nil || probe.LoInclusive {
		t.Fatalf("probe: %+v ok=%v", probe, ok)
	}
	if len(rest) != 1 {
		t.Fatalf("rest: %v", rest)
	}
	// Flipped literal side.
	conj = sqlparser.SplitConjuncts(mustExpr(t, "5 > o.o_id"))
	probe, _, ok = ProbeFromPredicate(conj, "o", "o_id")
	if !ok || probe.Hi == nil {
		t.Fatalf("flipped probe: %+v", probe)
	}
	// BETWEEN.
	conj = sqlparser.SplitConjuncts(mustExpr(t, "o.o_id BETWEEN 3 AND 9"))
	probe, _, ok = ProbeFromPredicate(conj, "o", "o_id")
	if !ok || probe.Lo == nil || probe.Hi == nil || !probe.LoInclusive || !probe.HiInclusive {
		t.Fatalf("between probe: %+v", probe)
	}
	// Equality.
	conj = sqlparser.SplitConjuncts(mustExpr(t, "o.o_id = 4"))
	probe, rest, ok = ProbeFromPredicate(conj, "o", "o_id")
	if !ok || probe.Eq == nil || len(rest) != 0 {
		t.Fatalf("eq probe: %+v", probe)
	}
	// No match.
	conj = sqlparser.SplitConjuncts(mustExpr(t, "o.o_amount < 1"))
	if _, _, ok := ProbeFromPredicate(conj, "o", "o_id"); ok {
		t.Fatal("should not match different column")
	}
}

func TestResourcesAddString(t *testing.T) {
	r := Resources{CPUOps: 1, IOPages: 2, CachedPages: 3, OutBytes: 4}
	r.Add(Resources{CPUOps: 1, IOPages: 1, CachedPages: 1, OutBytes: 1})
	if r.CPUOps != 2 || r.IOPages != 3 || r.CachedPages != 4 || r.OutBytes != 5 {
		t.Fatalf("add: %+v", r)
	}
	if !strings.Contains(r.String(), "cpu=2") {
		t.Fatalf("string: %s", r)
	}
}

func TestMergeJoinMatchesHashJoin(t *testing.T) {
	orders := ordersTable(t, 100)
	cust := custTable(t, 10)
	mj := &MergeJoin{
		Left:     &SeqScan{Table: cust, As: "c"},
		Right:    &SeqScan{Table: orders, As: "o"},
		LeftKey:  mustExpr(t, "c.c_id"),
		RightKey: mustExpr(t, "o.o_custkey"),
	}
	hj := &HashJoin{
		Build:    &SeqScan{Table: cust, As: "c"},
		Probe:    &SeqScan{Table: orders, As: "o"},
		BuildKey: mustExpr(t, "c.c_id"),
		ProbeKey: mustExpr(t, "o.o_custkey"),
	}
	mrel, mres := run(t, mj)
	hrel, _ := run(t, hj)
	if mrel.Cardinality() != hrel.Cardinality() {
		t.Fatalf("merge %d vs hash %d", mrel.Cardinality(), hrel.Cardinality())
	}
	if mres.CPUOps <= 0 {
		t.Fatal("merge join must charge cpu")
	}
	// Duplicate-key runs: every (c,o) pair with matching keys appears once.
	ci, _ := mrel.Schema.ColumnIndex("c", "c_id")
	oi, _ := mrel.Schema.ColumnIndex("o", "o_custkey")
	for _, row := range mrel.Rows {
		if row[ci].Int() != row[oi].Int() {
			t.Fatalf("mismatched merge row: %v", row)
		}
	}
}

func TestMergeJoinResidualAndNullKeys(t *testing.T) {
	schema := sqltypes.NewSchema(
		sqltypes.Column{Table: "a", Name: "k", Type: sqltypes.KindInt},
		sqltypes.Column{Table: "a", Name: "v", Type: sqltypes.KindInt},
	)
	rel := sqltypes.NewRelation(schema)
	rel.Rows = []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewInt(10)},
		{sqltypes.Null, sqltypes.NewInt(99)},
		{sqltypes.NewInt(2), sqltypes.NewInt(20)},
	}
	schema2 := sqltypes.NewSchema(
		sqltypes.Column{Table: "b", Name: "k", Type: sqltypes.KindInt},
		sqltypes.Column{Table: "b", Name: "w", Type: sqltypes.KindInt},
	)
	rel2 := sqltypes.NewRelation(schema2)
	rel2.Rows = []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewInt(5)},
		{sqltypes.NewInt(1), sqltypes.NewInt(6)},
		{sqltypes.Null, sqltypes.NewInt(7)},
		{sqltypes.NewInt(2), sqltypes.NewInt(8)},
	}
	mj := &MergeJoin{
		Left:     &Values{Rel: rel},
		Right:    &Values{Rel: rel2},
		LeftKey:  mustExpr(t, "a.k"),
		RightKey: mustExpr(t, "b.k"),
		Residual: mustExpr(t, "b.w > 5"),
	}
	out, _ := run(t, mj)
	// Matches: k=1 × {5,6} residual keeps 6; k=2 × {8} keeps 8. NULLs drop.
	if out.Cardinality() != 2 {
		t.Fatalf("rows: %d\n%s", out.Cardinality(), out)
	}
	if !strings.Contains(mj.Explain(), "MERGEJOIN") {
		t.Fatal("explain")
	}
}

func TestIndexNLJoinDirect(t *testing.T) {
	orders := ordersTable(t, 100)
	cust := custTable(t, 10)
	if _, err := orders.CreateIndex("orders_cust", "o_custkey", storage.IndexHash); err != nil {
		t.Fatal(err)
	}
	j := &IndexNLJoin{
		Outer:    &SeqScan{Table: cust, As: "c"},
		Inner:    orders,
		Index:    orders.Index("orders_cust"),
		InnerAs:  "o",
		OuterKey: mustExpr(t, "c.c_id"),
	}
	rel, res := run(t, j)
	if rel.Cardinality() != 100 {
		t.Fatalf("inl join rows: %d", rel.Cardinality())
	}
	if res.CachedPages <= 0 {
		t.Fatalf("inl join must charge cached pages: %+v", res)
	}
	if rel.Schema.Len() != 5 {
		t.Fatalf("schema: %v", rel.Schema)
	}
	// Residual filtering.
	j.Residual = mustExpr(t, "o.o_amount > 100")
	rel, _ = run(t, j)
	ai, _ := rel.Schema.ColumnIndex("o", "o_amount")
	for _, row := range rel.Rows {
		if row[ai].Float() <= 100 {
			t.Fatalf("residual: %v", row)
		}
	}
	// Equivalent hash join agrees.
	hj := &HashJoin{
		Build:    &SeqScan{Table: cust, As: "c"},
		Probe:    &SeqScan{Table: orders, As: "o"},
		BuildKey: mustExpr(t, "c.c_id"),
		ProbeKey: mustExpr(t, "o.o_custkey"),
		Residual: mustExpr(t, "o.o_amount > 100"),
	}
	hrel, _ := run(t, hj)
	if hrel.Cardinality() != rel.Cardinality() {
		t.Fatalf("inl %d vs hash %d", rel.Cardinality(), hrel.Cardinality())
	}
}

func TestExplainTreeCoversAllOperators(t *testing.T) {
	orders := ordersTable(t, 20)
	cust := custTable(t, 5)
	if _, err := orders.CreateIndex("oc", "o_custkey", storage.IndexHash); err != nil {
		t.Fatal(err)
	}
	v := sqltypes.NewInt(1)
	ops := []Operator{
		&SeqScan{Table: orders, As: "o"},
		&IndexScan{Table: orders, Index: orders.IndexOnColumn("o_id"), Probe: IndexProbe{Eq: &v}, As: "o"},
		&Filter{Input: &SeqScan{Table: orders, As: "o"}, Pred: mustExpr(t, "o.o_id > 1")},
		&Project{Input: &SeqScan{Table: orders, As: "o"}, Items: []sqlparser.SelectItem{{Expr: mustExpr(t, "o.o_id")}}},
		&Sort{Input: &SeqScan{Table: orders, As: "o"}, Keys: []sqlparser.OrderItem{{Expr: mustExpr(t, "o.o_id")}}},
		&Limit{Input: &SeqScan{Table: orders, As: "o"}, N: 3},
		&Distinct{Input: &SeqScan{Table: orders, As: "o"}},
		&Aggregate{Input: &SeqScan{Table: orders, As: "o"}, Aggs: []*sqlparser.AggExpr{{Func: sqlparser.AggCount}}},
		&HashJoin{Build: &SeqScan{Table: cust, As: "c"}, Probe: &SeqScan{Table: orders, As: "o"},
			BuildKey: mustExpr(t, "c.c_id"), ProbeKey: mustExpr(t, "o.o_custkey"), Residual: mustExpr(t, "o.o_id > 0")},
		&MergeJoin{Left: &SeqScan{Table: cust, As: "c"}, Right: &SeqScan{Table: orders, As: "o"},
			LeftKey: mustExpr(t, "c.c_id"), RightKey: mustExpr(t, "o.o_custkey"), Residual: mustExpr(t, "o.o_id > 0")},
		&NestedLoopJoin{Outer: &SeqScan{Table: cust, As: "c"}, Inner: &SeqScan{Table: orders, As: "o"}},
		&IndexNLJoin{Outer: &SeqScan{Table: cust, As: "c"}, Inner: orders, Index: orders.Index("oc"),
			InnerAs: "o", OuterKey: mustExpr(t, "c.c_id")},
	}
	for _, op := range ops {
		tree := ExplainTree(op)
		if tree == "" {
			t.Fatalf("empty explain for %T", op)
		}
		if op.Schema() == nil {
			t.Fatalf("nil schema for %T", op)
		}
		if _, err := op.Execute(&Context{}); err != nil {
			t.Fatalf("%T execute: %v", op, err)
		}
	}
	// Probe rendering variants.
	lo, hi := sqltypes.NewInt(1), sqltypes.NewInt(9)
	probes := []IndexProbe{
		{Eq: &v},
		{Lo: &lo, LoInclusive: true},
		{Hi: &hi, HiInclusive: true},
		{Lo: &lo, Hi: &hi},
	}
	for _, p := range probes {
		if p.String() == "" {
			t.Fatal("probe rendering")
		}
	}
}

package exec

import (
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// streamVsMaterialized runs the same SELECT tail over the same base relation
// through BuildTop (materialized) and BuildTopSource (streaming) and demands
// identical rows AND identical resource charges — the shared-kernel invariant
// the wrapper's bit-for-bit escape hatch rests on.
func streamVsMaterialized(t *testing.T, sql string, base *sqltypes.Relation, batchRows int) (*sqltypes.Relation, *sqltypes.Relation) {
	t.Helper()
	stmt := sqlparser.MustParse(sql)

	matCtx := &Context{}
	op, err := BuildTop(stmt, &Values{Rel: base})
	if err != nil {
		t.Fatalf("BuildTop %s: %v", sql, err)
	}
	want, err := op.Execute(matCtx)
	if err != nil {
		t.Fatalf("materialized %s: %v", sql, err)
	}

	strCtx := &Context{}
	src, err := BuildTopSource(stmt, NewValuesSource(base, batchRows))
	if err != nil {
		t.Fatalf("BuildTopSource %s: %v", sql, err)
	}
	got, err := Collect(src, strCtx)
	if err != nil {
		t.Fatalf("streamed %s: %v", sql, err)
	}

	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: streamed %d rows, materialized %d", sql, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if !rowsIdentical(got.Rows[i], want.Rows[i]) {
			t.Fatalf("%s: row %d differs: %v vs %v", sql, i, got.Rows[i], want.Rows[i])
		}
	}
	if got.Schema.Len() != want.Schema.Len() {
		t.Fatalf("%s: schema width %d vs %d", sql, got.Schema.Len(), want.Schema.Len())
	}
	if strCtx.Res != matCtx.Res {
		t.Fatalf("%s: resource charges diverge: streamed %+v materialized %+v", sql, strCtx.Res, matCtx.Res)
	}
	return got, want
}

func streamBase(t *testing.T, n int) *sqltypes.Relation {
	t.Helper()
	schema := sqltypes.NewSchema(
		sqltypes.Column{Table: "o", Name: "o_id", Type: sqltypes.KindInt},
		sqltypes.Column{Table: "o", Name: "o_custkey", Type: sqltypes.KindInt},
		sqltypes.Column{Table: "o", Name: "o_amount", Type: sqltypes.KindFloat},
	)
	rel := sqltypes.NewRelation(schema)
	for i := 0; i < n; i++ {
		rel.Rows = append(rel.Rows, sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(i % 7)),
			sqltypes.NewFloat(float64((i * 37) % 100)),
		})
	}
	return rel
}

func TestStreamedMatchesMaterialized(t *testing.T) {
	base := streamBase(t, 100)
	for _, sql := range []string{
		"SELECT o.o_id FROM orders AS o WHERE o.o_id < 57",
		"SELECT o.o_id, o.o_amount FROM orders AS o",
		"SELECT o.o_custkey, SUM(o.o_amount) FROM orders AS o GROUP BY o.o_custkey",
		"SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 50",
		"SELECT o.o_id FROM orders AS o ORDER BY o.o_amount DESC",
		"SELECT DISTINCT o.o_custkey FROM orders AS o",
		"SELECT o.o_custkey, SUM(o.o_amount) FROM orders AS o GROUP BY o.o_custkey HAVING SUM(o.o_amount) > 100 ORDER BY o.o_custkey",
	} {
		for _, batchRows := range []int{1, 16, 100, 1000} {
			streamVsMaterialized(t, sql, base, batchRows)
		}
	}
}

func TestStreamedLimitMayChargeLess(t *testing.T) {
	base := streamBase(t, 100)
	sql := "SELECT o.o_id FROM orders AS o LIMIT 5"
	stmt := sqlparser.MustParse(sql)

	matCtx := &Context{}
	op, err := BuildTop(stmt, &Values{Rel: base})
	if err != nil {
		t.Fatal(err)
	}
	want, err := op.Execute(matCtx)
	if err != nil {
		t.Fatal(err)
	}

	strCtx := &Context{}
	src, err := BuildTopSource(stmt, NewValuesSource(base, 10))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(src, strCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) || len(got.Rows) != 5 {
		t.Fatalf("limit rows: %d vs %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if !rowsIdentical(got.Rows[i], want.Rows[i]) {
			t.Fatalf("row %d differs", i)
		}
	}
	// The documented divergence: LimitStream stops pulling after one batch,
	// so streaming charges strictly less than the materialized full scan.
	if strCtx.Res.CPUOps >= matCtx.Res.CPUOps {
		t.Fatalf("limit must short-circuit: streamed %v >= materialized %v", strCtx.Res.CPUOps, matCtx.Res.CPUOps)
	}
}

func TestStreamEmptyInput(t *testing.T) {
	base := streamBase(t, 0)
	for _, sql := range []string{
		"SELECT o.o_id FROM orders AS o WHERE o.o_id < 5",
		"SELECT COUNT(*) FROM orders AS o",
		"SELECT o.o_custkey, SUM(o.o_amount) FROM orders AS o GROUP BY o.o_custkey",
	} {
		streamVsMaterialized(t, sql, base, 16)
	}
}

func TestConcatStreamsInputsInOrder(t *testing.T) {
	a := streamBase(t, 10)
	b := streamBase(t, 5)
	c := &Concat{Inputs: []RowSource{
		SourceFromRelation(a, 4),
		SourceFromRelation(b, 4),
	}}
	if c.Blocking() {
		t.Fatal("concat of relation sources must pipeline")
	}
	out, err := Collect(c, &Context{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 15 {
		t.Fatalf("concat rows: %d", len(out.Rows))
	}
	for i := 0; i < 10; i++ {
		if out.Rows[i][0].Int() != int64(i) {
			t.Fatalf("concat order broken at %d", i)
		}
	}
	for i := 0; i < 5; i++ {
		if out.Rows[10+i][0].Int() != int64(i) {
			t.Fatalf("second input order broken at %d", i)
		}
	}
}

func TestSourceBlockingStageNames(t *testing.T) {
	base := streamBase(t, 10)
	for _, tc := range []struct {
		sql  string
		want string
	}{
		{"SELECT o.o_id FROM orders AS o WHERE o.o_id < 5", ""},
		{"SELECT o.o_id FROM orders AS o ORDER BY o.o_id DESC", "sort"},
		{"SELECT COUNT(*) FROM orders AS o", "aggregate"},
		{"SELECT DISTINCT o.o_custkey FROM orders AS o", ""},
	} {
		src, err := BuildTopSource(sqlparser.MustParse(tc.sql), NewValuesSource(base, 4))
		if err != nil {
			t.Fatal(err)
		}
		if got := SourceBlockingStage(src); got != tc.want {
			t.Fatalf("%s: blocking stage %q want %q", tc.sql, got, tc.want)
		}
	}
}

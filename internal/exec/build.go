package exec

import (
	"fmt"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// BuildPlan compiles a SELECT statement into an operator tree over the given
// leaf operators, keyed by effective (aliased) table name. The same builder
// serves both sides of the federation: remote servers pass scans/index scans
// chosen by their local planner; the integrator passes Values operators
// wrapping fragment results.
//
// The builder: pushes single-table conjuncts down onto their leaf, picks
// equi-join keys for hash joins (falling back to nested loops), applies
// remaining predicates, then aggregation, HAVING, projection, DISTINCT,
// ORDER BY and LIMIT.
func BuildPlan(stmt *sqlparser.SelectStmt, leaves map[string]Operator) (Operator, error) {
	tables := stmt.Tables()
	for _, tr := range tables {
		if leaves[tr.EffectiveName()] == nil {
			return nil, fmt.Errorf("exec: no leaf operator for table %q", tr.EffectiveName())
		}
	}

	// Pool every predicate: WHERE conjuncts plus all JOIN ON conjuncts.
	var pool []sqlparser.Expr
	pool = append(pool, sqlparser.SplitConjuncts(stmt.Where)...)
	for _, j := range stmt.Joins {
		pool = append(pool, sqlparser.SplitConjuncts(j.On)...)
	}
	pool = dropTrueLiterals(pool)

	// Push single-table conjuncts onto leaves.
	planFor := map[string]Operator{}
	for _, tr := range tables {
		planFor[tr.EffectiveName()] = leaves[tr.EffectiveName()]
	}
	var crossTable []sqlparser.Expr
	for _, c := range pool {
		placed := false
		for _, tr := range tables {
			name := tr.EffectiveName()
			if exprResolves(c, planFor[name].Schema()) {
				planFor[name] = &Filter{Input: planFor[name], Pred: c}
				placed = true
				break
			}
		}
		if !placed {
			crossTable = append(crossTable, c)
		}
	}

	// Join left-to-right in FROM order.
	current := planFor[tables[0].EffectiveName()]
	for _, tr := range tables[1:] {
		right := planFor[tr.EffectiveName()]
		lk, rk, rest, ok := ExtractEquiJoinKeys(crossTable, current.Schema(), right.Schema())
		if ok {
			// Additional conjuncts now resolvable over the joined schema
			// become the residual.
			joined := current.Schema().Concat(right.Schema())
			var residuals, remaining []sqlparser.Expr
			for _, c := range rest {
				if exprResolves(c, joined) {
					residuals = append(residuals, c)
				} else {
					remaining = append(remaining, c)
				}
			}
			current = &HashJoin{
				Build:    current,
				Probe:    right,
				BuildKey: lk,
				ProbeKey: rk,
				Residual: sqlparser.JoinConjuncts(residuals),
			}
			crossTable = remaining
			continue
		}
		// No equi key: nested loop with whatever predicates now resolve.
		joined := current.Schema().Concat(right.Schema())
		var preds, remaining []sqlparser.Expr
		for _, c := range crossTable {
			if exprResolves(c, joined) {
				preds = append(preds, c)
			} else {
				remaining = append(remaining, c)
			}
		}
		current = &NestedLoopJoin{Outer: current, Inner: right, Pred: sqlparser.JoinConjuncts(preds)}
		crossTable = remaining
	}
	if len(crossTable) > 0 {
		current = &Filter{Input: current, Pred: sqlparser.JoinConjuncts(crossTable)}
	}
	return BuildTop(stmt, current)
}

// topStepKind enumerates the logical stages of the non-join SELECT tail.
type topStepKind int

const (
	stepAggregate topStepKind = iota
	stepFilter
	stepSort
	stepProject
	stepDistinct
	stepLimit
)

// topStep is one stage of the non-join tail. The materialized (BuildTop)
// and streaming (BuildTopSource) assemblers interpret the same step list,
// so the two execution paths cannot diverge on plan shape.
type topStep struct {
	kind    topStepKind
	pred    sqlparser.Expr         // stepFilter (HAVING)
	groupBy []sqlparser.Expr       // stepAggregate
	aggs    []*sqlparser.AggExpr   // stepAggregate
	items   []sqlparser.SelectItem // stepProject
	keys    []sqlparser.OrderItem  // stepSort
	n       int                    // stepLimit
}

// planTopSteps compiles the non-join tail of a SELECT — aggregation, HAVING,
// projection, ORDER BY, DISTINCT and LIMIT — into an ordered step list given
// the schema of the joined, filtered input.
func planTopSteps(stmt *sqlparser.SelectStmt, schema *sqltypes.Schema) ([]topStep, error) {
	var steps []topStep
	selectItems := stmt.Select
	having := stmt.Having
	orderBy := stmt.OrderBy
	if stmt.HasAggregates() || len(stmt.GroupBy) > 0 {
		var aggs []*sqlparser.AggExpr
		for _, item := range selectItems {
			if item.Star {
				return nil, fmt.Errorf("exec: SELECT * cannot be combined with aggregation")
			}
			aggs = CollectAggregates(item.Expr, aggs)
		}
		if having != nil {
			aggs = CollectAggregates(having, aggs)
		}
		for _, o := range orderBy {
			aggs = CollectAggregates(o.Expr, aggs)
		}
		steps = append(steps, topStep{kind: stepAggregate, groupBy: stmt.GroupBy, aggs: aggs})
		mapping := map[string]string{}
		for i, a := range aggs {
			mapping[a.String()] = aggColName(i)
		}
		schema = aggSchema(stmt.GroupBy, aggs, schema)
		rewritten := make([]sqlparser.SelectItem, len(selectItems))
		for i, item := range selectItems {
			rewritten[i] = sqlparser.SelectItem{
				Expr:  RewriteAggregates(item.Expr, mapping),
				Alias: item.Alias,
			}
			// Preserve output naming for bare aggregates without aliases.
			if rewritten[i].Alias == "" {
				rewritten[i].Alias = aggOutputName(item)
			}
		}
		selectItems = rewritten
		if having != nil {
			steps = append(steps, topStep{kind: stepFilter, pred: RewriteAggregates(having, mapping)})
		}
		newOrder := make([]sqlparser.OrderItem, len(orderBy))
		for i, o := range orderBy {
			newOrder[i] = sqlparser.OrderItem{Expr: RewriteAggregates(o.Expr, mapping), Desc: o.Desc}
		}
		orderBy = newOrder
	}

	// ORDER BY before projection when keys reference pre-projection columns;
	// we conservatively sort first (all keys still resolvable), then project.
	if len(orderBy) > 0 {
		resolvable := true
		for _, o := range orderBy {
			if !exprResolves(o.Expr, schema) {
				resolvable = false
				break
			}
		}
		if resolvable {
			steps = append(steps, topStep{kind: stepSort, keys: orderBy})
			orderBy = nil
		}
	}

	steps = append(steps, topStep{kind: stepProject, items: selectItems})

	// Any ORDER BY keys that reference projection aliases sort here.
	if len(orderBy) > 0 {
		steps = append(steps, topStep{kind: stepSort, keys: orderBy})
	}
	if stmt.Distinct {
		steps = append(steps, topStep{kind: stepDistinct})
	}
	if stmt.Limit >= 0 {
		steps = append(steps, topStep{kind: stepLimit, n: stmt.Limit})
	}
	return steps, nil
}

// BuildTop applies the non-join tail of a SELECT statement — aggregation,
// HAVING, projection, ORDER BY, DISTINCT and LIMIT — on top of an input
// operator that already produces the joined, filtered rows. The remote
// planner reuses this after assembling its own join tree.
func BuildTop(stmt *sqlparser.SelectStmt, current Operator) (Operator, error) {
	steps, err := planTopSteps(stmt, current.Schema())
	if err != nil {
		return nil, err
	}
	for _, s := range steps {
		switch s.kind {
		case stepAggregate:
			current = &Aggregate{Input: current, GroupBy: s.groupBy, Aggs: s.aggs}
		case stepFilter:
			current = &Filter{Input: current, Pred: s.pred}
		case stepSort:
			current = &Sort{Input: current, Keys: s.keys}
		case stepProject:
			current = &Project{Input: current, Items: s.items}
		case stepDistinct:
			current = &Distinct{Input: current}
		case stepLimit:
			current = &Limit{Input: current, N: s.n}
		}
	}
	return current, nil
}

// aggOutputName gives an aggregate select item a stable output name derived
// from its SQL text, e.g. "SUM(x.v)".
func aggOutputName(item sqlparser.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if _, ok := item.Expr.(*sqlparser.ColumnRef); ok {
		return "" // projection derives the bare name itself
	}
	return item.Expr.String()
}

func dropTrueLiterals(list []sqlparser.Expr) []sqlparser.Expr {
	out := list[:0]
	for _, e := range list {
		if lit, ok := e.(*sqlparser.Literal); ok && lit.Val.Kind() == sqltypes.KindBool && lit.Val.Bool() {
			continue
		}
		out = append(out, e)
	}
	return out
}

// exprResolves reports whether every column reference in e resolves in the
// schema.
func exprResolves(e sqlparser.Expr, schema *sqltypes.Schema) bool {
	for _, ref := range sqlparser.CollectColumnRefs(e, nil) {
		if _, err := schema.ColumnIndex(ref.Table, ref.Name); err != nil {
			return false
		}
	}
	return true
}

package exec

import (
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// RowSource is the streaming counterpart of Operator: NextBatch yields
// successive row batches until it returns nil with a nil error. Streaming
// stages reuse the same row-level kernels as the materialized operators
// (filterRel, projectRel, sortRel, aggFolder, distinctState), so streamed
// output and resource charges match the materialized path by construction —
// the only intended divergence is LimitStream, which may stop pulling early.
type RowSource interface {
	// Schema returns the output schema without executing.
	Schema() *sqltypes.Schema
	// NextBatch returns the next batch, or nil when the source is exhausted.
	NextBatch(ctx *Context) (*sqltypes.Relation, error)
	// Blocking reports whether this source (or any of its inputs) must
	// consume its entire input before emitting the first batch.
	Blocking() bool
}

// Collect drains a source into one materialized relation.
func Collect(src RowSource, ctx *Context) (*sqltypes.Relation, error) {
	out := sqltypes.NewRelation(src.Schema())
	for {
		batch, err := src.NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if batch == nil {
			return out, nil
		}
		out.Rows = append(out.Rows, batch.Rows...)
	}
}

// RelationSource streams an already-materialized relation in batches of
// batchRows (one batch covering everything when batchRows <= 0), charging a
// fixed per-row CPU cost as rows are emitted.
type RelationSource struct {
	rel          *sqltypes.Relation
	batchRows    int
	chargePerRow float64
	pos          int
}

// NewValuesSource streams rel charging one CPU op per row — the streaming
// equivalent of the Values leaf operator.
func NewValuesSource(rel *sqltypes.Relation, batchRows int) *RelationSource {
	return &RelationSource{rel: rel, batchRows: batchRows, chargePerRow: 1}
}

// SourceFromRelation streams rel charging nothing: an adapter for feeding
// rows whose production was already charged (e.g. a materialized join tree)
// into a streaming tail.
func SourceFromRelation(rel *sqltypes.Relation, batchRows int) *RelationSource {
	return &RelationSource{rel: rel, batchRows: batchRows}
}

// Schema implements RowSource.
func (s *RelationSource) Schema() *sqltypes.Schema { return s.rel.Schema }

// Blocking implements RowSource.
func (s *RelationSource) Blocking() bool { return false }

// NextBatch implements RowSource.
func (s *RelationSource) NextBatch(ctx *Context) (*sqltypes.Relation, error) {
	if s.pos >= len(s.rel.Rows) {
		if s.pos == 0 && len(s.rel.Rows) == 0 {
			// Emit one empty batch so downstream stages see the schema.
			s.pos = 1
			return sqltypes.NewRelation(s.rel.Schema), nil
		}
		return nil, nil
	}
	end := len(s.rel.Rows)
	if s.batchRows > 0 && s.pos+s.batchRows < end {
		end = s.pos + s.batchRows
	}
	out := sqltypes.NewRelation(s.rel.Schema)
	out.Rows = s.rel.Rows[s.pos:end]
	ctx.Res.CPUOps += s.chargePerRow * float64(end-s.pos)
	s.pos = end
	return out, nil
}

// Concat streams its inputs one after another. All inputs must share a
// schema (union-compatible fragment streams).
type Concat struct {
	Inputs []RowSource
	idx    int
}

// Schema implements RowSource.
func (c *Concat) Schema() *sqltypes.Schema { return c.Inputs[0].Schema() }

// Blocking implements RowSource.
func (c *Concat) Blocking() bool {
	for _, in := range c.Inputs {
		if in.Blocking() {
			return true
		}
	}
	return false
}

// NextBatch implements RowSource.
func (c *Concat) NextBatch(ctx *Context) (*sqltypes.Relation, error) {
	for c.idx < len(c.Inputs) {
		batch, err := c.Inputs[c.idx].NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if batch != nil {
			return batch, nil
		}
		c.idx++
	}
	return nil, nil
}

// FilterStream applies the filter kernel batch by batch.
type FilterStream struct {
	Input RowSource
	Pred  sqlparser.Expr
}

// Schema implements RowSource.
func (f *FilterStream) Schema() *sqltypes.Schema { return f.Input.Schema() }

// Blocking implements RowSource.
func (f *FilterStream) Blocking() bool { return f.Input.Blocking() }

// NextBatch implements RowSource.
func (f *FilterStream) NextBatch(ctx *Context) (*sqltypes.Relation, error) {
	batch, err := f.Input.NextBatch(ctx)
	if err != nil || batch == nil {
		return nil, err
	}
	return filterRel(f.Pred, batch, ctx)
}

// ProjectStream applies the projection kernel batch by batch.
type ProjectStream struct {
	Input RowSource
	Items []sqlparser.SelectItem
}

// Schema implements RowSource.
func (p *ProjectStream) Schema() *sqltypes.Schema { return projectSchema(p.Items, p.Input.Schema()) }

// Blocking implements RowSource.
func (p *ProjectStream) Blocking() bool { return p.Input.Blocking() }

// NextBatch implements RowSource.
func (p *ProjectStream) NextBatch(ctx *Context) (*sqltypes.Relation, error) {
	batch, err := p.Input.NextBatch(ctx)
	if err != nil || batch == nil {
		return nil, err
	}
	return projectRel(p.Items, batch, ctx)
}

// AggregateStream folds its input into the shared aggregation kernel batch
// by batch; it is blocking — the result emits only after the input is
// exhausted — but memory stays bounded by the number of groups and each
// arriving batch is folded as it lands.
type AggregateStream struct {
	Input   RowSource
	GroupBy []sqlparser.Expr
	Aggs    []*sqlparser.AggExpr
	done    bool
}

// Schema implements RowSource.
func (a *AggregateStream) Schema() *sqltypes.Schema {
	return aggSchema(a.GroupBy, a.Aggs, a.Input.Schema())
}

// Blocking implements RowSource.
func (a *AggregateStream) Blocking() bool { return true }

// NextBatch implements RowSource.
func (a *AggregateStream) NextBatch(ctx *Context) (*sqltypes.Relation, error) {
	if a.done {
		return nil, nil
	}
	folder := newAggFolder(a.GroupBy, a.Aggs)
	for {
		batch, err := a.Input.NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if batch == nil {
			break
		}
		if err := folder.fold(batch, ctx); err != nil {
			return nil, err
		}
	}
	a.done = true
	return folder.result(a.Schema()), nil
}

// SortSource collects its whole input, sorts once with the shared kernel,
// and emits the ordered result. Sort legitimately blocks the pipeline; the
// wrapper's span notes it.
type SortSource struct {
	Input RowSource
	Keys  []sqlparser.OrderItem
	done  bool
}

// Schema implements RowSource.
func (s *SortSource) Schema() *sqltypes.Schema { return s.Input.Schema() }

// Blocking implements RowSource.
func (s *SortSource) Blocking() bool { return true }

// NextBatch implements RowSource.
func (s *SortSource) NextBatch(ctx *Context) (*sqltypes.Relation, error) {
	if s.done {
		return nil, nil
	}
	in, err := Collect(s.Input, ctx)
	if err != nil {
		return nil, err
	}
	s.done = true
	return sortRel(s.Keys, in, ctx)
}

// DistinctStream removes duplicates incrementally: the seen-set persists
// across batches, so it pipelines without blocking.
type DistinctStream struct {
	Input RowSource
	state *distinctState
}

// Schema implements RowSource.
func (d *DistinctStream) Schema() *sqltypes.Schema { return d.Input.Schema() }

// Blocking implements RowSource.
func (d *DistinctStream) Blocking() bool { return d.Input.Blocking() }

// NextBatch implements RowSource.
func (d *DistinctStream) NextBatch(ctx *Context) (*sqltypes.Relation, error) {
	batch, err := d.Input.NextBatch(ctx)
	if err != nil || batch == nil {
		return nil, err
	}
	if d.state == nil {
		d.state = newDistinctState()
	}
	return d.state.fold(batch, ctx), nil
}

// LimitStream stops pulling from its input once N rows have been emitted —
// the one place streaming legitimately does less work than the materialized
// path.
type LimitStream struct {
	Input   RowSource
	N       int
	emitted int
	done    bool
}

// Schema implements RowSource.
func (l *LimitStream) Schema() *sqltypes.Schema { return l.Input.Schema() }

// Blocking implements RowSource.
func (l *LimitStream) Blocking() bool { return l.Input.Blocking() }

// NextBatch implements RowSource.
func (l *LimitStream) NextBatch(ctx *Context) (*sqltypes.Relation, error) {
	if l.done || l.emitted >= l.N {
		l.done = true
		return nil, nil
	}
	batch, err := l.Input.NextBatch(ctx)
	if err != nil || batch == nil {
		l.done = true
		return nil, err
	}
	if remain := l.N - l.emitted; len(batch.Rows) > remain {
		trimmed := sqltypes.NewRelation(batch.Schema)
		trimmed.Rows = batch.Rows[:remain]
		batch = trimmed
	}
	l.emitted += len(batch.Rows)
	return batch, nil
}

// BuildTopSource applies the same non-join SELECT tail as BuildTop, but over
// a streaming source: both assemblers interpret the identical planTopSteps
// list, so the streamed result is row-identical to the materialized one.
func BuildTopSource(stmt *sqlparser.SelectStmt, src RowSource) (RowSource, error) {
	steps, err := planTopSteps(stmt, src.Schema())
	if err != nil {
		return nil, err
	}
	for _, s := range steps {
		switch s.kind {
		case stepAggregate:
			src = &AggregateStream{Input: src, GroupBy: s.groupBy, Aggs: s.aggs}
		case stepFilter:
			src = &FilterStream{Input: src, Pred: s.pred}
		case stepSort:
			src = &SortSource{Input: src, Keys: s.keys}
		case stepProject:
			src = &ProjectStream{Input: src, Items: s.items}
		case stepDistinct:
			src = &DistinctStream{Input: src}
		case stepLimit:
			src = &LimitStream{Input: src, N: s.n}
		}
	}
	return src, nil
}

// SourceBlockingStage names the outermost pipeline-breaking stage in a
// stream pipeline ("sort", "aggregate"), or "" when it pipelines end to end.
func SourceBlockingStage(src RowSource) string {
	switch x := src.(type) {
	case *SortSource:
		return "sort"
	case *AggregateStream:
		return "aggregate"
	case *FilterStream:
		return SourceBlockingStage(x.Input)
	case *ProjectStream:
		return SourceBlockingStage(x.Input)
	case *DistinctStream:
		return SourceBlockingStage(x.Input)
	case *LimitStream:
		return SourceBlockingStage(x.Input)
	case *Concat:
		for _, in := range x.Inputs {
			if s := SourceBlockingStage(in); s != "" {
				return s
			}
		}
	}
	return ""
}

// BlockingStage walks a materialized plan and returns the name of the first
// pipeline-breaking operator ("sort", "aggregate" or "distinct"), or "" when
// the plan pipelines. The remote cursor uses this to decide whether a plan's
// output can be split into batches on the first/next-tuple timing model.
func BlockingStage(op Operator) string {
	switch op.(type) {
	case *Sort:
		return "sort"
	case *Aggregate:
		return "aggregate"
	case *Distinct:
		return "distinct"
	}
	for _, c := range op.Children() {
		if s := BlockingStage(c); s != "" {
			return s
		}
	}
	return ""
}

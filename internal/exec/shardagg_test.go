package exec

import (
	"math"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// shardBase is the raw (pre-aggregation) schema used by the two-phase tests.
func shardBase() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Table: "t", Name: "g", Type: sqltypes.KindInt},
		sqltypes.Column{Table: "t", Name: "v", Type: sqltypes.KindFloat},
	)
}

func shardRows() []sqltypes.Row {
	// Exact half-unit floats so sums are exact under any addition order;
	// group 3 has only NULL values (NULL-only SUM/MIN stay NULL).
	var rows []sqltypes.Row
	for i := 0; i < 40; i++ {
		g := sqltypes.NewInt(int64(i % 4))
		v := sqltypes.NewFloat(float64(i) * 0.5)
		if i%4 == 3 {
			v = sqltypes.Null
		}
		rows = append(rows, sqltypes.Row{g, v})
	}
	return rows
}

func relOf(schema *sqltypes.Schema, rows []sqltypes.Row) *sqltypes.Relation {
	rel := sqltypes.NewRelation(schema)
	rel.Rows = append(rel.Rows, rows...)
	return rel
}

func sameRelation(t *testing.T, got, want *sqltypes.Relation) {
	t.Helper()
	if got.Schema.Len() != want.Schema.Len() {
		t.Fatalf("schema width %d vs %d", got.Schema.Len(), want.Schema.Len())
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows %d vs %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			a, b := got.Rows[i][j], want.Rows[i][j]
			if a.IsNull() != b.IsNull() {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a, b)
			}
			if a.IsNull() {
				continue
			}
			if a.Kind() == sqltypes.KindFloat && b.Kind() == sqltypes.KindFloat {
				if math.Float64bits(a.Float()) != math.Float64bits(b.Float()) {
					t.Fatalf("row %d col %d: float %v vs %v", i, j, a, b)
				}
				continue
			}
			if sqltypes.Compare(a, b) != 0 || a.Kind() != b.Kind() {
				t.Fatalf("row %d col %d: %v (%v) vs %v (%v)", i, j, a, a.Kind(), b, b.Kind())
			}
		}
	}
}

// twoPhase runs the documented two-phase protocol over row partitions: each
// shard folds PartialAggItems through the ordinary Aggregate kernel, the
// partial rows concatenate, and ShardAggFinal merges — exactly what the
// optimizer + integrator wire up.
func twoPhase(t *testing.T, stmtAggs []*sqlparser.AggExpr, groupBy []sqlparser.Expr, parts [][]sqltypes.Row) *sqltypes.Relation {
	t.Helper()
	base := shardBase()
	partialItems := PartialAggItems(stmtAggs)
	var partialAggs []*sqlparser.AggExpr
	for _, it := range partialItems {
		partialAggs = append(partialAggs, it.Expr.(*sqlparser.AggExpr))
	}
	var merged []sqltypes.Row
	var partialSchema *sqltypes.Schema
	for _, part := range parts {
		agg := &Aggregate{
			Input:   &Values{Rel: relOf(base, part)},
			GroupBy: groupBy,
			Aggs:    partialAggs,
		}
		rel, err := agg.Execute(&Context{})
		if err != nil {
			t.Fatal(err)
		}
		partialSchema = rel.Schema
		merged = append(merged, rel.Rows...)
	}
	final := &ShardAggFinal{
		Input:   &Values{Rel: relOf(partialSchema, merged)},
		GroupBy: groupBy,
		Aggs:    stmtAggs,
		Base:    base,
	}
	out, err := final.Execute(&Context{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func shardAggs() []*sqlparser.AggExpr {
	v := &sqlparser.ColumnRef{Table: "t", Name: "v"}
	return []*sqlparser.AggExpr{
		{Func: sqlparser.AggSum, Arg: v},
		{Func: sqlparser.AggAvg, Arg: v},
		{Func: sqlparser.AggMin, Arg: v},
		{Func: sqlparser.AggMax, Arg: v},
		{Func: sqlparser.AggCount, Arg: v},
		{Func: sqlparser.AggCount}, // COUNT(*)
	}
}

func TestShardAggFinalMatchesSinglePhase(t *testing.T) {
	rows := shardRows()
	groupBy := []sqlparser.Expr{&sqlparser.ColumnRef{Table: "t", Name: "g"}}
	aggs := shardAggs()

	oracle := &Aggregate{Input: &Values{Rel: relOf(shardBase(), rows)}, GroupBy: groupBy, Aggs: aggs}
	want, err := oracle.Execute(&Context{})
	if err != nil {
		t.Fatal(err)
	}

	for _, split := range [][][]sqltypes.Row{
		{rows},                                   // one shard
		{rows[:13], rows[13:]},                   // two uneven shards
		{rows[:13], nil, rows[13:30], rows[30:]}, // with an empty shard
	} {
		got := twoPhase(t, aggs, groupBy, split)
		sameRelation(t, got, want)
	}
}

func TestShardAggFinalScalar(t *testing.T) {
	rows := shardRows()
	aggs := shardAggs()

	oracle := &Aggregate{Input: &Values{Rel: relOf(shardBase(), rows)}, Aggs: aggs}
	want, err := oracle.Execute(&Context{})
	if err != nil {
		t.Fatal(err)
	}
	// Empty shards ship one identity partial row each; the merge must treat
	// them as no-ops (COUNT adds 0, NULL sums/extrema are skipped).
	got := twoPhase(t, aggs, nil, [][]sqltypes.Row{nil, rows[:7], nil, rows[7:]})
	sameRelation(t, got, want)

	// All-empty input still produces the scalar identity row.
	gotEmpty := twoPhase(t, aggs, nil, [][]sqltypes.Row{nil, nil})
	if len(gotEmpty.Rows) != 1 {
		t.Fatalf("scalar merge over empty shards: %d rows", len(gotEmpty.Rows))
	}
	wantEmpty, err := (&Aggregate{Input: &Values{Rel: relOf(shardBase(), nil)}, Aggs: aggs}).Execute(&Context{})
	if err != nil {
		t.Fatal(err)
	}
	sameRelation(t, gotEmpty, wantEmpty)
}

func TestShardAggFinalWidthMismatch(t *testing.T) {
	bad := relOf(sqltypes.NewSchema(sqltypes.Column{Name: "x", Type: sqltypes.KindInt}), nil)
	final := &ShardAggFinal{
		Input: &Values{Rel: bad},
		Aggs:  shardAggs(),
		Base:  shardBase(),
	}
	if _, err := final.Execute(&Context{}); err == nil {
		t.Fatal("expected a width mismatch error")
	}
}

func TestStatementAggregatesOrderAndStar(t *testing.T) {
	stmt := sqlparser.MustParse(
		"SELECT t.g, SUM(t.v) FROM t GROUP BY t.g HAVING COUNT(*) > 1 ORDER BY MIN(t.v)")
	aggs, err := StatementAggregates(stmt)
	if err != nil {
		t.Fatal(err)
	}
	want := []sqlparser.AggFunc{sqlparser.AggSum, sqlparser.AggCount, sqlparser.AggMin}
	if len(aggs) != len(want) {
		t.Fatalf("aggs: %v", aggs)
	}
	for i, a := range aggs {
		if a.Func != want[i] {
			t.Fatalf("agg %d: %v", i, a.Func)
		}
	}
	if _, err := StatementAggregates(sqlparser.MustParse("SELECT * FROM t GROUP BY t.g")); err == nil {
		t.Fatal("SELECT * with aggregation must error")
	}
}

func TestPartialAggItemsLayout(t *testing.T) {
	aggs := shardAggs()
	items := PartialAggItems(aggs)
	// AVG expands to SUM+COUNT; everything else ships itself.
	if len(items) != 7 {
		t.Fatalf("items: %v", items)
	}
	width := 0
	for _, a := range aggs {
		width += PartialStateWidth(a)
	}
	if width != 7 {
		t.Fatalf("width: %d", width)
	}
	for i, it := range items {
		if it.Alias != StateColName(i) {
			t.Fatalf("item %d alias %q", i, it.Alias)
		}
	}
	if items[1].Expr.(*sqlparser.AggExpr).Func != sqlparser.AggSum ||
		items[2].Expr.(*sqlparser.AggExpr).Func != sqlparser.AggCount {
		t.Fatalf("AVG must split into SUM then COUNT: %v", items)
	}
}

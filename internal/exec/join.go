package exec

import (
	"fmt"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// HashJoin joins two inputs on equality of key expressions, building a hash
// table on the (smaller, by convention left) build side.
type HashJoin struct {
	Build, Probe       Operator
	BuildKey, ProbeKey sqlparser.Expr
	// Residual, when non-nil, is applied to joined rows (non-equi conjuncts).
	Residual sqlparser.Expr
}

// Schema implements Operator. Output is build columns followed by probe
// columns.
func (j *HashJoin) Schema() *sqltypes.Schema {
	return j.Build.Schema().Concat(j.Probe.Schema())
}

// Execute implements Operator.
func (j *HashJoin) Execute(ctx *Context) (*sqltypes.Relation, error) {
	build, err := j.Build.Execute(ctx)
	if err != nil {
		return nil, err
	}
	probe, err := j.Probe.Execute(ctx)
	if err != nil {
		return nil, err
	}
	return hashJoinRel(j, build, probe, ctx)
}

// hashJoinRel is the row-level join kernel, shared by Execute and the
// vectorized path's fallback (which has already executed the children).
func hashJoinRel(j *HashJoin, build, probe *sqltypes.Relation, ctx *Context) (*sqltypes.Relation, error) {
	outSchema := build.Schema.Concat(probe.Schema)
	out := sqltypes.NewRelation(outSchema)

	ht := make(map[uint64][]sqltypes.Row, len(build.Rows))
	keys := make(map[uint64][]sqltypes.Value)
	for _, row := range build.Rows {
		k, err := sqlparser.Eval(j.BuildKey, row, build.Schema)
		if err != nil {
			return nil, err
		}
		if k.IsNull() {
			continue
		}
		h := k.Hash()
		ht[h] = append(ht[h], row)
		keys[h] = append(keys[h], k)
	}
	for _, prow := range probe.Rows {
		k, err := sqlparser.Eval(j.ProbeKey, prow, probe.Schema)
		if err != nil {
			return nil, err
		}
		if k.IsNull() {
			continue
		}
		h := k.Hash()
		bucket := ht[h]
		bkeys := keys[h]
		for i, brow := range bucket {
			if sqltypes.Compare(bkeys[i], k) != 0 {
				continue
			}
			joined := brow.Concat(prow)
			if j.Residual != nil {
				ok, err := sqlparser.EvalBool(j.Residual, joined, outSchema)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			out.Rows = append(out.Rows, joined)
		}
	}
	ctx.Res.CPUOps += float64(len(build.Rows))*2 + float64(len(probe.Rows))*2 + float64(len(out.Rows))
	return out, nil
}

// Explain implements Operator.
func (j *HashJoin) Explain() string {
	s := fmt.Sprintf("HASHJOIN %s = %s", j.BuildKey, j.ProbeKey)
	if j.Residual != nil {
		s += " RESIDUAL " + j.Residual.String()
	}
	return s
}

// Children implements Operator.
func (j *HashJoin) Children() []Operator { return []Operator{j.Build, j.Probe} }

// NestedLoopJoin joins two inputs on an arbitrary predicate. A nil predicate
// produces the cross product.
type NestedLoopJoin struct {
	Outer, Inner Operator
	Pred         sqlparser.Expr
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() *sqltypes.Schema {
	return j.Outer.Schema().Concat(j.Inner.Schema())
}

// Execute implements Operator.
func (j *NestedLoopJoin) Execute(ctx *Context) (*sqltypes.Relation, error) {
	outer, err := j.Outer.Execute(ctx)
	if err != nil {
		return nil, err
	}
	inner, err := j.Inner.Execute(ctx)
	if err != nil {
		return nil, err
	}
	outSchema := outer.Schema.Concat(inner.Schema)
	out := sqltypes.NewRelation(outSchema)
	for _, orow := range outer.Rows {
		for _, irow := range inner.Rows {
			joined := orow.Concat(irow)
			if j.Pred != nil {
				ok, err := sqlparser.EvalBool(j.Pred, joined, outSchema)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			out.Rows = append(out.Rows, joined)
		}
	}
	ctx.Res.CPUOps += float64(len(outer.Rows)) * float64(len(inner.Rows))
	return out, nil
}

// Explain implements Operator.
func (j *NestedLoopJoin) Explain() string {
	if j.Pred == nil {
		return "NLJOIN CROSS"
	}
	return "NLJOIN " + j.Pred.String()
}

// Children implements Operator.
func (j *NestedLoopJoin) Children() []Operator { return []Operator{j.Outer, j.Inner} }

// ExtractEquiJoinKeys finds a conjunct of the form leftCol = rightCol where
// the two sides reference columns resolvable in the left and right schemas
// respectively (in either order). It returns the left key, right key, the
// remaining conjuncts and whether a key pair was found.
func ExtractEquiJoinKeys(conjuncts []sqlparser.Expr, left, right *sqltypes.Schema) (lk, rk sqlparser.Expr, rest []sqlparser.Expr, ok bool) {
	for i, c := range conjuncts {
		be, isBin := c.(*sqlparser.BinaryExpr)
		if !isBin || be.Op != sqlparser.OpEq {
			continue
		}
		lref, lok := be.Left.(*sqlparser.ColumnRef)
		rref, rok := be.Right.(*sqlparser.ColumnRef)
		if !lok || !rok {
			continue
		}
		switch {
		case resolves(lref, left) && resolves(rref, right):
			lk, rk = be.Left, be.Right
		case resolves(rref, left) && resolves(lref, right):
			lk, rk = be.Right, be.Left
		default:
			continue
		}
		rest = append(append([]sqlparser.Expr{}, conjuncts[:i]...), conjuncts[i+1:]...)
		return lk, rk, rest, true
	}
	return nil, nil, conjuncts, false
}

func resolves(ref *sqlparser.ColumnRef, schema *sqltypes.Schema) bool {
	_, err := schema.ColumnIndex(ref.Table, ref.Name)
	return err == nil
}

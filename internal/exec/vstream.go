package exec

import (
	"repro/internal/exec/colbatch"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// ColSource is the columnar counterpart of RowSource: NextBatch yields
// successive columnar batches until it returns nil with a nil error. Stages
// mirror the row streaming stages one for one — same batching boundaries,
// same empty-batch emission, same resource charges, same blocking behavior —
// so a pipeline built from ColSources is observably identical to the
// RowSource pipeline except for wall-clock cost. Kernels that cannot
// vectorize a batch (unsupported expression, eval error) run the row kernel
// over that batch's rows, which reproduces the row path's outcome exactly.
type ColSource interface {
	// Schema returns the output schema without executing.
	Schema() *sqltypes.Schema
	// NextBatch returns the next batch, or nil when the source is exhausted.
	NextBatch(ctx *Context) (*colbatch.Batch, error)
	// Blocking reports whether this source (or any of its inputs) must
	// consume its entire input before emitting the first batch.
	Blocking() bool
}

// CollectCol drains a columnar source into one materialized batch.
func CollectCol(src ColSource, ctx *Context) (*colbatch.Batch, error) {
	acc := colbatch.NewAccumulator(src.Schema())
	for {
		b, err := src.NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			return acc.Finish(), nil
		}
		acc.Append(b)
	}
}

// BatchSource streams an already-materialized batch in windows of batchRows
// (one window covering everything when batchRows <= 0), charging a fixed
// per-row CPU cost as rows are emitted — the columnar RelationSource.
type BatchSource struct {
	b            *colbatch.Batch
	batchRows    int
	chargePerRow float64
	pos          int
}

// NewValuesColSource streams b charging one CPU op per row — the columnar
// equivalent of the Values leaf operator.
func NewValuesColSource(b *colbatch.Batch, batchRows int) *BatchSource {
	return &BatchSource{b: b, batchRows: batchRows, chargePerRow: 1}
}

// ColSourceFromBatch streams b charging nothing: an adapter for feeding rows
// whose production was already charged into a streaming tail.
func ColSourceFromBatch(b *colbatch.Batch, batchRows int) *BatchSource {
	return &BatchSource{b: b, batchRows: batchRows}
}

// Schema implements ColSource.
func (s *BatchSource) Schema() *sqltypes.Schema { return s.b.Schema }

// Blocking implements ColSource.
func (s *BatchSource) Blocking() bool { return false }

// NextBatch implements ColSource.
func (s *BatchSource) NextBatch(ctx *Context) (*colbatch.Batch, error) {
	if s.pos >= s.b.Len() {
		if s.pos == 0 && s.b.Len() == 0 {
			// Emit one empty batch so downstream stages see the schema.
			s.pos = 1
			return s.b.Slice(0, 0), nil
		}
		return nil, nil
	}
	end := s.b.Len()
	if s.batchRows > 0 && s.pos+s.batchRows < end {
		end = s.pos + s.batchRows
	}
	out := s.b.Slice(s.pos, end)
	ctx.Res.CPUOps += s.chargePerRow * float64(end-s.pos)
	s.pos = end
	return out, nil
}

// ConcatCol streams its inputs one after another; all inputs must share a
// schema.
type ConcatCol struct {
	Inputs []ColSource
	idx    int
}

// Schema implements ColSource.
func (c *ConcatCol) Schema() *sqltypes.Schema { return c.Inputs[0].Schema() }

// Blocking implements ColSource.
func (c *ConcatCol) Blocking() bool {
	for _, in := range c.Inputs {
		if in.Blocking() {
			return true
		}
	}
	return false
}

// NextBatch implements ColSource.
func (c *ConcatCol) NextBatch(ctx *Context) (*colbatch.Batch, error) {
	for c.idx < len(c.Inputs) {
		b, err := c.Inputs[c.idx].NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		c.idx++
	}
	return nil, nil
}

// FilterColStream applies the vectorized filter kernel batch by batch.
type FilterColStream struct {
	Input ColSource
	Pred  sqlparser.Expr
}

// Schema implements ColSource.
func (f *FilterColStream) Schema() *sqltypes.Schema { return f.Input.Schema() }

// Blocking implements ColSource.
func (f *FilterColStream) Blocking() bool { return f.Input.Blocking() }

// NextBatch implements ColSource.
func (f *FilterColStream) NextBatch(ctx *Context) (*colbatch.Batch, error) {
	in, err := f.Input.NextBatch(ctx)
	if err != nil || in == nil {
		return nil, err
	}
	sel, verr := evalPredicate(f.Pred, in)
	if verr != nil {
		rel, err := filterRel(f.Pred, in.ToRelation(), ctx)
		if err != nil {
			return nil, err
		}
		return colbatch.FromRelation(rel), nil
	}
	ctx.Res.CPUOps += float64(in.Len())
	return in.Select(sel), nil
}

// ProjectColStream applies the vectorized projection kernel batch by batch.
type ProjectColStream struct {
	Input ColSource
	Items []sqlparser.SelectItem
}

// Schema implements ColSource.
func (p *ProjectColStream) Schema() *sqltypes.Schema {
	return projectSchema(p.Items, p.Input.Schema())
}

// Blocking implements ColSource.
func (p *ProjectColStream) Blocking() bool { return p.Input.Blocking() }

// NextBatch implements ColSource.
func (p *ProjectColStream) NextBatch(ctx *Context) (*colbatch.Batch, error) {
	in, err := p.Input.NextBatch(ctx)
	if err != nil || in == nil {
		return nil, err
	}
	out, verr := projectBatch(p.Items, in)
	if verr != nil {
		rel, err := projectRel(p.Items, in.ToRelation(), ctx)
		if err != nil {
			return nil, err
		}
		return colbatch.FromRelation(rel), nil
	}
	ctx.Res.CPUOps += float64(in.Len()) * float64(len(p.Items))
	return out, nil
}

// AggregateColStream folds its input into the shared aggregation kernel
// batch by batch; blocking, like AggregateStream.
type AggregateColStream struct {
	Input   ColSource
	GroupBy []sqlparser.Expr
	Aggs    []*sqlparser.AggExpr
	done    bool
}

// Schema implements ColSource.
func (a *AggregateColStream) Schema() *sqltypes.Schema {
	return aggSchema(a.GroupBy, a.Aggs, a.Input.Schema())
}

// Blocking implements ColSource.
func (a *AggregateColStream) Blocking() bool { return true }

// NextBatch implements ColSource.
func (a *AggregateColStream) NextBatch(ctx *Context) (*colbatch.Batch, error) {
	if a.done {
		return nil, nil
	}
	folder := newAggFolder(a.GroupBy, a.Aggs)
	for {
		in, err := a.Input.NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if in == nil {
			break
		}
		if verr := foldBatch(folder, in, ctx); verr != nil {
			if err := folder.fold(in.ToRelation(), ctx); err != nil {
				return nil, err
			}
		}
	}
	a.done = true
	return colbatch.FromRelation(folder.result(a.Schema())), nil
}

// SortColSource collects its whole input, sorts once, and emits the ordered
// result; blocking, like SortSource.
type SortColSource struct {
	Input ColSource
	Keys  []sqlparser.OrderItem
	done  bool
}

// Schema implements ColSource.
func (s *SortColSource) Schema() *sqltypes.Schema { return s.Input.Schema() }

// Blocking implements ColSource.
func (s *SortColSource) Blocking() bool { return true }

// NextBatch implements ColSource.
func (s *SortColSource) NextBatch(ctx *Context) (*colbatch.Batch, error) {
	if s.done {
		return nil, nil
	}
	in, err := CollectCol(s.Input, ctx)
	if err != nil {
		return nil, err
	}
	s.done = true
	out, verr := sortBatch(s.Keys, in)
	if verr != nil {
		rel, err := sortRel(s.Keys, in.ToRelation(), ctx)
		if err != nil {
			return nil, err
		}
		return colbatch.FromRelation(rel), nil
	}
	n := float64(in.Len())
	ctx.Res.CPUOps += n * log2(n)
	return out, nil
}

// DistinctColStream removes duplicates incrementally: the seen-set persists
// across batches, so it pipelines without blocking.
type DistinctColStream struct {
	Input ColSource
	state *vDistinctState
}

// Schema implements ColSource.
func (d *DistinctColStream) Schema() *sqltypes.Schema { return d.Input.Schema() }

// Blocking implements ColSource.
func (d *DistinctColStream) Blocking() bool { return d.Input.Blocking() }

// NextBatch implements ColSource.
func (d *DistinctColStream) NextBatch(ctx *Context) (*colbatch.Batch, error) {
	in, err := d.Input.NextBatch(ctx)
	if err != nil || in == nil {
		return nil, err
	}
	if d.state == nil {
		d.state = newVDistinctState()
	}
	return distinctBatch(in, d.state, ctx), nil
}

// LimitColStream stops pulling from its input once N rows have been emitted.
type LimitColStream struct {
	Input   ColSource
	N       int
	emitted int
	done    bool
}

// Schema implements ColSource.
func (l *LimitColStream) Schema() *sqltypes.Schema { return l.Input.Schema() }

// Blocking implements ColSource.
func (l *LimitColStream) Blocking() bool { return l.Input.Blocking() }

// NextBatch implements ColSource.
func (l *LimitColStream) NextBatch(ctx *Context) (*colbatch.Batch, error) {
	if l.done || l.emitted >= l.N {
		l.done = true
		return nil, nil
	}
	in, err := l.Input.NextBatch(ctx)
	if err != nil || in == nil {
		l.done = true
		return nil, err
	}
	if remain := l.N - l.emitted; in.Len() > remain {
		in = in.Slice(0, remain)
	}
	l.emitted += in.Len()
	return in, nil
}

// BuildTopColSource applies the same non-join SELECT tail as BuildTop and
// BuildTopSource, over a columnar source: all three assemblers interpret the
// identical planTopSteps list.
func BuildTopColSource(stmt *sqlparser.SelectStmt, src ColSource) (ColSource, error) {
	steps, err := planTopSteps(stmt, src.Schema())
	if err != nil {
		return nil, err
	}
	for _, s := range steps {
		switch s.kind {
		case stepAggregate:
			src = &AggregateColStream{Input: src, GroupBy: s.groupBy, Aggs: s.aggs}
		case stepFilter:
			src = &FilterColStream{Input: src, Pred: s.pred}
		case stepSort:
			src = &SortColSource{Input: src, Keys: s.keys}
		case stepProject:
			src = &ProjectColStream{Input: src, Items: s.items}
		case stepDistinct:
			src = &DistinctColStream{Input: src}
		case stepLimit:
			src = &LimitColStream{Input: src, N: s.n}
		}
	}
	return src, nil
}

// ColSourceBlockingStage names the outermost pipeline-breaking stage in a
// columnar pipeline ("sort", "aggregate"), or "" when it pipelines end to
// end — the ColSource mirror of SourceBlockingStage.
func ColSourceBlockingStage(src ColSource) string {
	switch x := src.(type) {
	case *SortColSource:
		return "sort"
	case *AggregateColStream:
		return "aggregate"
	case *FilterColStream:
		return ColSourceBlockingStage(x.Input)
	case *ProjectColStream:
		return ColSourceBlockingStage(x.Input)
	case *DistinctColStream:
		return ColSourceBlockingStage(x.Input)
	case *LimitColStream:
		return ColSourceBlockingStage(x.Input)
	case *ConcatCol:
		for _, in := range x.Inputs {
			if s := ColSourceBlockingStage(in); s != "" {
				return s
			}
		}
	}
	return ""
}

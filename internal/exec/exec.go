// Package exec implements the physical operators shared by the remote
// servers' engines and the integrator's local merge layer: scans, filters,
// projections, joins, aggregation, sort, distinct and limit.
//
// Every operator charges its true resource consumption (CPU operations,
// sequential IO pages, and cache-friendly page touches) to the execution
// Context. The remote server's load model converts those resources into
// simulated response time; the same formulas over *estimated* cardinalities
// produce the optimizer's cost estimate. The difference between the two —
// amplified by load and network conditions — is exactly the signal the
// paper's Query Cost Calibrator learns.
package exec

import (
	"fmt"
	"strings"

	"repro/internal/exec/colbatch"
	"repro/internal/sqltypes"
)

// Resources accumulates the resource consumption of an execution.
type Resources struct {
	// CPUOps counts tuple-processing operations (comparisons, hashes,
	// arithmetic) in abstract units.
	CPUOps float64
	// IOPages counts sequential page reads that always hit the disk arm
	// (large scans); insensitive to buffer-pool pressure.
	IOPages float64
	// CachedPages counts page touches that normally hit the buffer pool
	// (index probes, small-table rereads). Under heavy update load these
	// degrade toward real IO — the mechanism behind Figure 9's QT2 collapse.
	CachedPages float64
	// OutBytes is the byte volume of the final result, for the network model.
	OutBytes int
}

// Add accumulates other into r.
func (r *Resources) Add(other Resources) {
	r.CPUOps += other.CPUOps
	r.IOPages += other.IOPages
	r.CachedPages += other.CachedPages
	r.OutBytes += other.OutBytes
}

// String renders the consumption compactly.
func (r Resources) String() string {
	return fmt.Sprintf("cpu=%.0f io=%.0f cached=%.0f out=%dB", r.CPUOps, r.IOPages, r.CachedPages, r.OutBytes)
}

// Context carries per-execution state. Executions are single-goroutine.
type Context struct {
	Res Resources
}

// Operator is a physical operator producing a materialized relation.
type Operator interface {
	// Schema returns the output schema without executing.
	Schema() *sqltypes.Schema
	// Execute runs the operator, charging resources to ctx.
	Execute(ctx *Context) (*sqltypes.Relation, error)
	// Explain renders this node (children indented by the caller).
	Explain() string
	// Children returns input operators, for plan display.
	Children() []Operator
}

// ExplainTree renders an operator tree.
func ExplainTree(op Operator) string {
	var b strings.Builder
	explainInto(&b, op, 0)
	return b.String()
}

func explainInto(b *strings.Builder, op Operator, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(op.Explain())
	b.WriteString("\n")
	for _, c := range op.Children() {
		explainInto(b, c, depth+1)
	}
}

// Values is a leaf operator over an already-materialized relation — the
// integrator wraps remote fragment results in Values before merging them.
type Values struct {
	Rel *sqltypes.Relation
	// Col, when non-nil, is the same rows in columnar form; ExecuteVectorized
	// uses it directly so fragment results shipped as batches never round-trip
	// through rows. Rel may be nil when the columnar wire protocol delivered
	// the data (no rows were ever boxed); otherwise Col.ToRelation()
	// row-equals Rel.
	Col *colbatch.Batch
	// Label names the source in EXPLAIN output.
	Label string
}

// Schema implements Operator.
func (v *Values) Schema() *sqltypes.Schema {
	if v.Rel != nil {
		return v.Rel.Schema
	}
	return v.Col.Schema
}

// Execute implements Operator. It charges one CPU op per row (cursor
// iteration) and no IO: the data is already local. A columnar-only Values
// (wire-delivered) materializes rows here — the row engine is the fallback
// path, and its charge stays one op per row either way.
func (v *Values) Execute(ctx *Context) (*sqltypes.Relation, error) {
	rel := v.Rel
	if rel == nil {
		rel = v.Col.ToRelation()
	}
	ctx.Res.CPUOps += float64(len(rel.Rows))
	return rel, nil
}

// Explain implements Operator.
func (v *Values) Explain() string {
	label := v.Label
	if label == "" {
		label = "values"
	}
	n := 0
	if v.Rel != nil {
		n = len(v.Rel.Rows)
	} else if v.Col != nil {
		n = v.Col.Len()
	}
	return fmt.Sprintf("VALUES %s [%d rows]", label, n)
}

// Children implements Operator.
func (v *Values) Children() []Operator { return nil }

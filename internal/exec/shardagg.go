package exec

import (
	"fmt"
	"strings"

	"repro/internal/exec/colbatch"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// Two-phase aggregation over sharded tables: each shard runs a partial
// aggregation remotely (its normal Aggregate kernel, row or vectorized) and
// ships typed partial states; ShardAggFinal merges the states at the II.
//
// Partial state layout per aggregate, in StatementAggregates order:
//
//	COUNT(x), COUNT(*) — one column: the shard's count (int)
//	SUM(x)             — one column: the shard's SUM (NULL if no non-null input)
//	MIN(x), MAX(x)     — one column: the shard's extremum (NULL if none)
//	AVG(x)             — two columns: SUM(x) then COUNT(x)
//
// Empty shards contribute identity states (0 counts, NULL sums/extrema), so
// pruned and unpruned scatter-gather merge to exactly the same values.

// StatementAggregates collects the distinct aggregate calls of a SELECT in
// the exact order planTopSteps collects them (select items, then HAVING,
// then ORDER BY), so the per-shard partial statements and the final merge
// agree on aggregate positions.
func StatementAggregates(stmt *sqlparser.SelectStmt) ([]*sqlparser.AggExpr, error) {
	var aggs []*sqlparser.AggExpr
	for _, item := range stmt.Select {
		if item.Star {
			return nil, fmt.Errorf("exec: SELECT * cannot be combined with aggregation")
		}
		aggs = CollectAggregates(item.Expr, aggs)
	}
	if stmt.Having != nil {
		aggs = CollectAggregates(stmt.Having, aggs)
	}
	for _, o := range stmt.OrderBy {
		aggs = CollectAggregates(o.Expr, aggs)
	}
	return aggs, nil
}

// StateColName names partial-state column i in the per-shard statement.
func StateColName(i int) string { return fmt.Sprintf("s%d", i) }

// PartialStateWidth is the number of state columns aggregate a ships.
func PartialStateWidth(a *sqlparser.AggExpr) int {
	if a.Func == sqlparser.AggAvg {
		return 2
	}
	return 1
}

// PartialAggItems returns the partial-state select items for a shard's
// statement: AVG(x) splits into SUM(x)+COUNT(x); every other aggregate is
// its own partial. States are aliased s0..sK-1 in expansion order.
func PartialAggItems(aggs []*sqlparser.AggExpr) []sqlparser.SelectItem {
	var items []sqlparser.SelectItem
	k := 0
	for _, a := range aggs {
		if a.Func == sqlparser.AggAvg {
			items = append(items,
				sqlparser.SelectItem{Expr: &sqlparser.AggExpr{Func: sqlparser.AggSum, Arg: a.Arg}, Alias: StateColName(k)},
				sqlparser.SelectItem{Expr: &sqlparser.AggExpr{Func: sqlparser.AggCount, Arg: a.Arg}, Alias: StateColName(k + 1)},
			)
			k += 2
			continue
		}
		items = append(items, sqlparser.SelectItem{Expr: a, Alias: StateColName(k)})
		k++
	}
	return items
}

// ShardAggFinal merges concatenated per-shard partial-aggregation rows into
// final aggregate values. Input rows are laid out as the group-key cells
// followed by the partial-state cells; the output schema matches the plain
// Aggregate operator's (keys then a0..aM-1 typed against Base), so the rest
// of the tail — HAVING, projection, ORDER BY — is byte-compatible with the
// unsharded plan.
type ShardAggFinal struct {
	Input   Operator
	GroupBy []sqlparser.Expr
	Aggs    []*sqlparser.AggExpr
	// Base is the pre-aggregation schema of the logical fragment, used only
	// to type the output columns exactly like the unsharded Aggregate.
	Base *sqltypes.Schema
}

// Schema implements Operator.
func (s *ShardAggFinal) Schema() *sqltypes.Schema {
	return aggSchema(s.GroupBy, s.Aggs, s.Base)
}

// shardMergeGroup accumulates one group's merged partial states.
type shardMergeGroup struct {
	keys   sqltypes.Row
	states []*aggState
	counts []int64
}

func newShardMergeGroup(keys sqltypes.Row, n int) *shardMergeGroup {
	g := &shardMergeGroup{keys: keys, states: make([]*aggState, n), counts: make([]int64, n)}
	for i := range g.states {
		g.states[i] = newAggState()
	}
	return g
}

// Execute implements Operator.
func (s *ShardAggFinal) Execute(ctx *Context) (*sqltypes.Relation, error) {
	in, err := s.Input.Execute(ctx)
	if err != nil {
		return nil, err
	}
	if err := s.checkWidth(in.Schema); err != nil {
		return nil, err
	}
	return s.mergeCells(len(in.Rows), func(r, c int) sqltypes.Value { return in.Rows[r][c] }, ctx)
}

// checkWidth validates the partial-state input layout (keys then states).
func (s *ShardAggFinal) checkWidth(schema *sqltypes.Schema) error {
	width := len(s.GroupBy)
	for _, a := range s.Aggs {
		width += PartialStateWidth(a)
	}
	if schema.Len() != width {
		return fmt.Errorf("exec: shard merge expects %d partial columns, input has %d", width, schema.Len())
	}
	return nil
}

// mergeCells is the engine-independent merge kernel: it folds n partial
// rows, read through the cell accessor, into final aggregate values. Both
// Execute (rows) and the vectorized path (column batches) call it, so the
// grouping, the fold order, and the CPU charge — one op per row per
// (cursor + aggregate) — are identical by construction.
func (s *ShardAggFinal) mergeCells(n int, cell func(row, col int) sqltypes.Value, ctx *Context) (*sqltypes.Relation, error) {
	k := len(s.GroupBy)
	groups := map[uint64][]*shardMergeGroup{}
	var order []*shardMergeGroup
	keys := make(sqltypes.Row, k)
	for r := 0; r < n; r++ {
		for c := 0; c < k; c++ {
			keys[c] = cell(r, c)
		}
		h := rowHash(keys)
		var grp *shardMergeGroup
		for _, g := range groups[h] {
			if rowsIdentical(g.keys, keys) {
				grp = g
				break
			}
		}
		if grp == nil {
			grp = newShardMergeGroup(append(sqltypes.Row(nil), keys...), len(s.Aggs))
			groups[h] = append(groups[h], grp)
			order = append(order, grp)
		}
		off := k
		for i, a := range s.Aggs {
			switch a.Func {
			case sqlparser.AggCount:
				grp.counts[i] += cell(r, off).Int()
			case sqlparser.AggAvg:
				grp.states[i].add(cell(r, off))
				grp.counts[i] += cell(r, off+1).Int()
			default: // SUM, MIN, MAX: fold the partial value
				grp.states[i].add(cell(r, off))
			}
			off += PartialStateWidth(a)
		}
	}
	ctx.Res.CPUOps += float64(n) * float64(1+len(s.Aggs))
	// Scalar aggregation over no partials still yields one row, mirroring
	// the plain folder (cannot normally happen: every shard ships one
	// scalar partial row).
	if k == 0 && len(order) == 0 {
		order = append(order, newShardMergeGroup(nil, len(s.Aggs)))
	}
	out := sqltypes.NewRelation(s.Schema())
	for _, grp := range order {
		row := make(sqltypes.Row, 0, k+len(s.Aggs))
		row = append(row, grp.keys...)
		for i, a := range s.Aggs {
			switch a.Func {
			case sqlparser.AggCount:
				row = append(row, sqltypes.NewInt(grp.counts[i]))
			case sqlparser.AggAvg:
				if grp.counts[i] == 0 {
					row = append(row, sqltypes.Null)
				} else {
					row = append(row, sqltypes.NewFloat(grp.states[i].sum/float64(grp.counts[i])))
				}
			default:
				row = append(row, grp.states[i].result(a.Func))
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// mergeBatch is the vectorized entry to the merge kernel: partial states
// arrive as a typed column batch (the wire-delivered form) and are folded
// without materializing rows.
func (s *ShardAggFinal) mergeBatch(in *colbatch.Batch, ctx *Context) (*sqltypes.Relation, error) {
	if err := s.checkWidth(in.Schema); err != nil {
		return nil, err
	}
	return s.mergeCells(in.Len(), in.Value, ctx)
}

// Explain implements Operator.
func (s *ShardAggFinal) Explain() string {
	var keys []string
	for _, g := range s.GroupBy {
		keys = append(keys, g.String())
	}
	var aggs []string
	for _, a := range s.Aggs {
		aggs = append(aggs, a.String())
	}
	return fmt.Sprintf("SHARD MERGE [%s] BY [%s]", strings.Join(aggs, ", "), strings.Join(keys, ", "))
}

// Children implements Operator.
func (s *ShardAggFinal) Children() []Operator { return []Operator{s.Input} }

// BuildShardFinal assembles the II-side tail of a two-phase aggregate query:
// the same planTopSteps as the unsharded plan, with the aggregation step
// replaced by a ShardAggFinal over the concatenated partial rows. base is
// the logical fragment's pre-aggregation schema.
func BuildShardFinal(stmt *sqlparser.SelectStmt, base *sqltypes.Schema, partial Operator) (Operator, error) {
	steps, err := planTopSteps(stmt, base)
	if err != nil {
		return nil, err
	}
	current := partial
	for _, s := range steps {
		switch s.kind {
		case stepAggregate:
			current = &ShardAggFinal{Input: current, GroupBy: s.groupBy, Aggs: s.aggs, Base: base}
		case stepFilter:
			current = &Filter{Input: current, Pred: s.pred}
		case stepSort:
			current = &Sort{Input: current, Keys: s.keys}
		case stepProject:
			current = &Project{Input: current, Items: s.items}
		case stepDistinct:
			current = &Distinct{Input: current}
		case stepLimit:
			current = &Limit{Input: current, N: s.n}
		}
	}
	return current, nil
}

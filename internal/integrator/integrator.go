// Package integrator implements the Information Integrator (II): the
// federated query processor at the center of the paper's architecture. It
// parses federated SQL, decomposes it via the global optimizer, dispatches
// fragment execution descriptors through the meta-wrapper, merges fragment
// results locally (joins, aggregation, ordering), charges the merge work to
// the II node's own load model, and logs everything through the query
// patroller. All timing is virtual: every completed query advances the
// shared simulated clock by its response time.
package integrator

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/metawrapper"
	"repro/internal/optimizer"
	"repro/internal/remote"
	"repro/internal/simclock"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// RoutePolicy lets QCC substitute an alternative global plan for load
// distribution (§4: the round-robin rotation sets). Implementations return
// the winner unchanged when no rotation applies.
type RoutePolicy interface {
	ChooseGlobal(queryText string, winner *optimizer.GlobalPlan) *optimizer.GlobalPlan
}

// IIMergeObserver receives (estimated, observed) pairs for II-side merge
// work; QCC uses them to maintain the workload cost calibration factor
// (§3.2). Nil is allowed.
type IIMergeObserver interface {
	ObserveIIMerge(estMS float64, observed simclock.Time)
}

// RuntimeRerouter implements the paper's long-running-query extension
// ("periodically re-check the load and switch data sources if needed"): it
// is consulted immediately before each fragment dispatches, after compile
// time, and may substitute a different (server, plan) choice when conditions
// changed since compilation. Returning nil keeps the compiled choice.
type RuntimeRerouter interface {
	RerouteFragment(choice optimizer.FragmentChoice) *optimizer.FragmentChoice
}

// Config wires an II instance.
type Config struct {
	Catalog *catalog.Catalog
	MW      *metawrapper.MetaWrapper
	// Node models the II machine (merge costing and load).
	Node *remote.Server
	// Clock is the shared virtual clock.
	Clock *simclock.Clock
	// IICalib is QCC's workload calibrator for merge estimates (may be nil).
	IICalib optimizer.IICalibrator
	// Route is QCC's load-distribution hook (may be nil).
	Route RoutePolicy
	// MergeObs receives II merge observations (may be nil).
	MergeObs IIMergeObserver
	// Reroute, when non-nil, is consulted before each fragment dispatch
	// (the long-running-query extension).
	Reroute RuntimeRerouter
	// Retries is the number of re-optimize attempts after a fragment
	// execution failure. Nil selects the default (2); point at zero to
	// disable retries entirely. Negative values are treated as zero.
	Retries *int
	// MaxParallel bounds the fragment-dispatch fan-out per query (default
	// GOMAXPROCS, minimum 1). Fragments beyond the bound queue for a slot.
	MaxParallel int
	// FragmentBudget, when positive, is the per-fragment virtual-time
	// deadline: a dispatch whose observed response time exceeds it fails
	// (and is retried through re-optimization like any fragment error).
	FragmentBudget simclock.Time
}

// DefaultRetries is the retry count used when Config.Retries is nil.
const DefaultRetries = 2

// RetryCount returns a *int for Config.Retries.
func RetryCount(n int) *int { return &n }

// II is the information integrator.
type II struct {
	cfg       Config
	retries   int
	opt       *optimizer.Optimizer
	explain   *optimizer.ExplainTable
	patroller *Patroller
}

// New builds an II.
func New(cfg Config) *II {
	retries := DefaultRetries
	if cfg.Retries != nil {
		retries = *cfg.Retries
		if retries < 0 {
			retries = 0
		}
	}
	if cfg.MaxParallel <= 0 {
		cfg.MaxParallel = runtime.GOMAXPROCS(0)
	}
	return &II{
		cfg:     cfg,
		retries: retries,
		opt: &optimizer.Optimizer{
			Catalog: cfg.Catalog,
			MW:      cfg.MW,
			IINode:  cfg.Node,
			IICalib: cfg.IICalib,
		},
		explain:   optimizer.NewExplainTable(),
		patroller: NewPatroller(),
	}
}

// Optimizer exposes the global optimizer (QCC's what-if analysis drives it
// directly with masking).
func (ii *II) Optimizer() *optimizer.Optimizer { return ii.opt }

// ExplainTable exposes the stored winners.
func (ii *II) ExplainTable() *optimizer.ExplainTable { return ii.explain }

// Patroller exposes the query log.
func (ii *II) Patroller() *Patroller { return ii.patroller }

// Clock exposes the shared clock.
func (ii *II) Clock() *simclock.Clock { return ii.cfg.Clock }

// SetRoute installs or replaces the routing policy.
func (ii *II) SetRoute(r RoutePolicy) { ii.cfg.Route = r }

// SetMergeObserver installs the II merge observer (QCC's §3.2 input).
func (ii *II) SetMergeObserver(o IIMergeObserver) { ii.cfg.MergeObs = o }

// SetRerouter installs the runtime fragment rerouter.
func (ii *II) SetRerouter(r RuntimeRerouter) { ii.cfg.Reroute = r }

// SetIICalibrator installs the II workload calibrator used when costing
// merge work during optimization.
func (ii *II) SetIICalibrator(c optimizer.IICalibrator) { ii.opt.IICalib = c }

// QueryResult is the outcome of one federated query.
type QueryResult struct {
	// Rel is the merged result.
	Rel *sqltypes.Relation
	// Plan is the executed global plan.
	Plan *optimizer.GlobalPlan
	// FragmentTimes maps fragment IDs to observed response times.
	FragmentTimes map[string]simclock.Time
	// ExecutedServers maps fragment IDs to the servers that actually ran
	// them — identical to the plan's routing unless a runtime rerouter
	// substituted a fragment.
	ExecutedServers map[string]string
	// MergeTime is the observed II-side merge time.
	MergeTime simclock.Time
	// ResponseTime is the end-user response time: parallel remote phase
	// (max fragment time) plus merge.
	ResponseTime simclock.Time
	// Retried counts re-optimizations after fragment failures.
	Retried int
}

// Query compiles and executes a federated SQL statement.
func (ii *II) Query(sql string) (*QueryResult, error) {
	return ii.QueryContext(context.Background(), sql)
}

// QueryContext compiles and executes a federated SQL statement under the
// given context. It is safe for concurrent use: each completed query charges
// its response time to the shared virtual clock through Clock.Charge, which
// serializes charges so that concurrent submissions reserve disjoint
// virtual-time intervals (the final clock value is the sum of all response
// times, independent of goroutine interleaving).
func (ii *II) QueryContext(ctx context.Context, sql string) (*QueryResult, error) {
	logID := ii.patroller.Submit(sql, ii.cfg.Clock.Now())
	res, err := ii.run(ctx, sql)
	ii.cfg.Clock.AdvanceTo(ii.cfg.Clock.Now()) // flush due events
	if err != nil {
		ii.patroller.Complete(logID, ii.cfg.Clock.Now(), err)
		return nil, err
	}
	_, end := ii.cfg.Clock.Charge(res.ResponseTime)
	ii.patroller.CompleteWithResponse(logID, end, res.ResponseTime, nil)
	return res, nil
}

// Compile optimizes without executing and records the winner in the explain
// table — the paper's "explain mode".
func (ii *II) Compile(sql string) (*optimizer.GlobalPlan, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	gp, err := ii.opt.Optimize(stmt)
	if err != nil {
		return nil, err
	}
	if ii.cfg.Route != nil {
		gp = ii.cfg.Route.ChooseGlobal(gp.Query, gp)
	}
	ii.explain.Record(gp, ii.cfg.Clock.Now())
	return gp, nil
}

func (ii *II) run(ctx context.Context, sql string) (*QueryResult, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("integrator: query cancelled after %d attempts: %w", attempt, lastErr)
			}
			return nil, err
		}
		gp, err := ii.Compile(sql)
		if err != nil {
			return nil, err
		}
		res, err := ii.ExecuteContext(ctx, gp)
		if err == nil {
			res.Retried = attempt
			return res, nil
		}
		lastErr = err
		if attempt >= ii.retries {
			// attempt counts the retries already consumed: the failed run
			// above was attempt number attempt+1, of which `attempt` were
			// retries.
			return nil, fmt.Errorf("integrator: query failed after %d retries: %w", attempt, lastErr)
		}
	}
}

// Execute runs a compiled global plan with a background context.
func (ii *II) Execute(gp *optimizer.GlobalPlan) (*QueryResult, error) {
	return ii.ExecuteContext(context.Background(), gp)
}

// fragOutcome is one fragment dispatch's result, indexed by plan position so
// the merge always sees fragments in plan order regardless of completion
// order.
type fragOutcome struct {
	rel      *sqltypes.Relation
	respTime simclock.Time
	serverID string
	fragID   string
}

// ExecuteContext runs a compiled global plan: fragments dispatch through MW
// on concurrent goroutines (bounded by Config.MaxParallel), then the local
// merge runs over the results in plan order. The first fragment error
// cancels the remaining dispatches; every dispatch context carries the
// per-fragment virtual-time deadline when Config.FragmentBudget is set.
func (ii *II) ExecuteContext(ctx context.Context, gp *optimizer.GlobalPlan) (*QueryResult, error) {
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fctx = simclock.WithDeadline(fctx, ii.cfg.FragmentBudget)

	outcomes := make([]fragOutcome, len(gp.Fragments))
	sem := make(chan struct{}, ii.cfg.MaxParallel)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for i, f := range gp.Fragments {
		wg.Add(1)
		go func(i int, f optimizer.FragmentChoice) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-fctx.Done():
				return
			}
			if fctx.Err() != nil {
				return
			}
			if ii.cfg.Reroute != nil {
				if alt := ii.cfg.Reroute.RerouteFragment(f); alt != nil {
					f = *alt
				}
			}
			out, err := ii.cfg.MW.ExecuteFragment(fctx, f.ServerID, f.Spec.Stmt.String(), f.Plan, f.RawEst)
			if err != nil {
				if fctx.Err() == nil || ctx.Err() != nil {
					fail(fmt.Errorf("integrator: fragment %s at %s: %w", f.Spec.ID, f.ServerID, err))
				}
				return
			}
			outcomes[i] = fragOutcome{
				rel:      out.Result.Rel,
				respTime: out.ResponseTime,
				serverID: f.ServerID,
				fragID:   f.Spec.ID,
			}
		}(i, f)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	fragTimes := make(map[string]simclock.Time, len(outcomes))
	executed := make(map[string]string, len(outcomes))
	fragRels := make([]*sqltypes.Relation, len(outcomes))
	var remotePhase simclock.Time
	for i, o := range outcomes {
		fragRels[i] = o.rel
		fragTimes[o.fragID] = o.respTime
		executed[o.fragID] = o.serverID
		if o.respTime > remotePhase {
			remotePhase = o.respTime
		}
	}

	rel, mergeTime, err := ii.merge(gp, fragRels)
	if err != nil {
		return nil, err
	}
	if ii.cfg.MergeObs != nil {
		ii.cfg.MergeObs.ObserveIIMerge(gp.MergeEstMS, mergeTime)
	}
	return &QueryResult{
		Rel:             rel,
		Plan:            gp,
		FragmentTimes:   fragTimes,
		ExecutedServers: executed,
		MergeTime:       mergeTime,
		ResponseTime:    remotePhase + mergeTime,
	}, nil
}

// merge combines fragment results at the II node.
func (ii *II) merge(gp *optimizer.GlobalPlan, fragRels []*sqltypes.Relation) (*sqltypes.Relation, simclock.Time, error) {
	ctx := &exec.Context{}
	if gp.Decomp.SingleFragment {
		rel := fragRels[0]
		ctx.Res.CPUOps = float64(rel.Cardinality())
		return rel, ii.cfg.Node.Observe(ctx.Res), nil
	}
	// Join fragments left-to-right on the cross-source conjuncts.
	cross := append([]sqlparser.Expr(nil), gp.Decomp.Cross...)
	var current exec.Operator = &exec.Values{Rel: fragRels[0], Label: gp.Fragments[0].Spec.ID}
	for i := 1; i < len(fragRels); i++ {
		right := &exec.Values{Rel: fragRels[i], Label: gp.Fragments[i].Spec.ID}
		lk, rk, rest, ok := exec.ExtractEquiJoinKeys(cross, current.Schema(), right.Schema())
		if ok {
			joined := current.Schema().Concat(right.Schema())
			var residuals, remaining []sqlparser.Expr
			for _, c := range rest {
				if exprResolves(c, joined) {
					residuals = append(residuals, c)
				} else {
					remaining = append(remaining, c)
				}
			}
			current = &exec.HashJoin{
				Build:    current,
				Probe:    right,
				BuildKey: lk,
				ProbeKey: rk,
				Residual: sqlparser.JoinConjuncts(residuals),
			}
			cross = remaining
			continue
		}
		joined := current.Schema().Concat(right.Schema())
		var preds, remaining []sqlparser.Expr
		for _, c := range cross {
			if exprResolves(c, joined) {
				preds = append(preds, c)
			} else {
				remaining = append(remaining, c)
			}
		}
		current = &exec.NestedLoopJoin{Outer: current, Inner: right, Pred: sqlparser.JoinConjuncts(preds)}
		cross = remaining
	}
	if len(cross) > 0 {
		current = &exec.Filter{Input: current, Pred: sqlparser.JoinConjuncts(cross)}
	}
	top, err := exec.BuildTop(gp.Stmt, current)
	if err != nil {
		return nil, 0, fmt.Errorf("integrator: building merge plan: %w", err)
	}
	rel, err := top.Execute(ctx)
	if err != nil {
		return nil, 0, fmt.Errorf("integrator: merging: %w", err)
	}
	return rel, ii.cfg.Node.Observe(ctx.Res), nil
}

func exprResolves(e sqlparser.Expr, schema *sqltypes.Schema) bool {
	for _, ref := range sqlparser.CollectColumnRefs(e, nil) {
		if _, err := schema.ColumnIndex(ref.Table, ref.Name); err != nil {
			return false
		}
	}
	return true
}

// Package integrator implements the Information Integrator (II): the
// federated query processor at the center of the paper's architecture. It
// parses federated SQL, decomposes it via the global optimizer, dispatches
// fragment execution descriptors through the meta-wrapper, merges fragment
// results locally (joins, aggregation, ordering), charges the merge work to
// the II node's own load model, and logs everything through the query
// patroller. All timing is virtual: every completed query advances the
// shared simulated clock by its response time.
package integrator

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/admission"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/exec/colbatch"
	"repro/internal/metawrapper"
	"repro/internal/optimizer"
	"repro/internal/remote"
	"repro/internal/simclock"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
	"repro/internal/telemetry"
)

// RoutePolicy lets QCC substitute an alternative global plan for load
// distribution (§4: the round-robin rotation sets). Implementations return
// the winner unchanged when no rotation applies.
type RoutePolicy interface {
	ChooseGlobal(queryText string, winner *optimizer.GlobalPlan) *optimizer.GlobalPlan
}

// IIMergeObserver receives (estimated, observed) pairs for II-side merge
// work; QCC uses them to maintain the workload cost calibration factor
// (§3.2). Nil is allowed.
type IIMergeObserver interface {
	ObserveIIMerge(estMS float64, observed simclock.Time)
}

// RuntimeRerouter implements the paper's long-running-query extension
// ("periodically re-check the load and switch data sources if needed"): it
// is consulted immediately before each fragment dispatches, after compile
// time, and may substitute a different (server, plan) choice when conditions
// changed since compilation. Returning nil keeps the compiled choice.
type RuntimeRerouter interface {
	RerouteFragment(choice optimizer.FragmentChoice) *optimizer.FragmentChoice
}

// RouteAnnotator is an optional extension a RoutePolicy or RuntimeRerouter
// may implement: per-fragment attributes describing the routing decision
// (e.g. the weighted router's score breakdown), attached to the fragment's
// dispatch span. Nil maps add nothing.
type RouteAnnotator interface {
	RouteAttrs(fragID string) map[string]string
}

// ShipObserver receives each fragment's data-shipping mode after a
// successful dispatch, so decision logs can distinguish the row-ship
// baseline from columnar shipping and partial-aggregate pushdown. Nil is
// allowed.
type ShipObserver interface {
	ObserveShip(query, fragID, serverID, mode string)
}

// Config wires an II instance.
type Config struct {
	Catalog *catalog.Catalog
	MW      *metawrapper.MetaWrapper
	// Node models the II machine (merge costing and load).
	Node *remote.Server
	// Clock is the shared virtual clock.
	Clock *simclock.Clock
	// IICalib is QCC's workload calibrator for merge estimates (may be nil).
	IICalib optimizer.IICalibrator
	// Route is QCC's load-distribution hook (may be nil).
	Route RoutePolicy
	// MergeObs receives II merge observations (may be nil).
	MergeObs IIMergeObserver
	// ShipObs receives per-fragment data-shipping modes (may be nil).
	ShipObs ShipObserver
	// Reroute, when non-nil, is consulted before each fragment dispatch
	// (the long-running-query extension).
	Reroute RuntimeRerouter
	// Retries is the number of re-optimize attempts after a fragment
	// execution failure. Nil selects the default (2); point at zero to
	// disable retries entirely. Negative values are treated as zero.
	Retries *int
	// BatchRows sizes the row batches of the streaming fragment data path:
	// results ship from the remote servers as they are produced, overlapping
	// remote compute with network transfer. Nil selects DefaultBatchRows;
	// point at zero (see BatchRowsCount) to disable streaming and reproduce
	// monolithic store-and-forward execution exactly. Negative values are
	// treated as zero.
	BatchRows *int
	// MaxParallel bounds the fragment-dispatch fan-out per query (default
	// GOMAXPROCS, minimum 1). Fragments beyond the bound queue for a slot.
	MaxParallel int
	// FragmentBudget, when positive, is the per-fragment virtual-time
	// deadline: a dispatch whose observed response time exceeds it fails
	// (and is retried through re-optimization like any fragment error).
	FragmentBudget simclock.Time
	// PlanCache tunes the federated plan cache (see plancache.go). The zero
	// value enables it with defaults.
	PlanCache PlanCacheConfig
	// PatrollerCapacity bounds the query patroller's retained log entries:
	// 0 selects DefaultPatrollerCapacity, negative disables the bound.
	PatrollerCapacity int
	// Telemetry is the observability subsystem (nil or disabled is a no-op).
	Telemetry *telemetry.Telemetry
	// Admission, when non-nil, gates every query between compilation and
	// execution: the compiled plan's calibrated cost classifies the query
	// into a workload class and the controller decides run / queue / shed.
	// Under the default unlimited policy the gate is a pass-through and the
	// engine behaves exactly as if Admission were nil.
	Admission *admission.Controller
}

// DefaultRetries is the retry count used when Config.Retries is nil.
const DefaultRetries = 2

// RetryCount returns a *int for Config.Retries.
func RetryCount(n int) *int { return &n }

// DefaultBatchRows is the streaming batch size used when Config.BatchRows is
// nil: large enough to amortize per-batch latency, small enough that a
// multi-thousand-row fragment pipelines through many transfer/produce
// overlaps.
const DefaultBatchRows = 256

// BatchRowsCount returns a *int for Config.BatchRows.
func BatchRowsCount(n int) *int { return &n }

// II is the information integrator.
type II struct {
	cfg           Config
	retries       int
	batchRows     atomic.Int64
	vectorized    atomic.Bool
	shardPruning  atomic.Bool
	shardPushdown atomic.Bool
	opt           *optimizer.Optimizer
	explain       *optimizer.ExplainTable
	patroller     *Patroller
	plans         *planCache
}

// New builds an II.
func New(cfg Config) *II {
	retries := DefaultRetries
	if cfg.Retries != nil {
		retries = *cfg.Retries
		if retries < 0 {
			retries = 0
		}
	}
	if cfg.MaxParallel <= 0 {
		cfg.MaxParallel = runtime.GOMAXPROCS(0)
	}
	batchRows := DefaultBatchRows
	if cfg.BatchRows != nil {
		batchRows = *cfg.BatchRows
		if batchRows < 0 {
			batchRows = 0
		}
	}
	ii := &II{
		cfg:     cfg,
		retries: retries,
		opt: &optimizer.Optimizer{
			Catalog: cfg.Catalog,
			MW:      cfg.MW,
			IINode:  cfg.Node,
			IICalib: cfg.IICalib,
		},
		explain:   optimizer.NewExplainTable(),
		patroller: NewPatrollerWithCapacity(cfg.PatrollerCapacity),
		plans:     newPlanCache(cfg.PlanCache),
	}
	ii.batchRows.Store(int64(batchRows))
	ii.shardPruning.Store(true)
	ii.shardPushdown.Store(true)
	// The optimizer reads the shard toggles through this hook on every
	// decomposition; it is installed once here, before any query runs, so
	// the optimizer struct itself stays immutable under concurrency.
	ii.opt.ShardOptions = func() optimizer.DecomposeOpts {
		return optimizer.DecomposeOpts{
			DisablePruning:  !ii.shardPruning.Load(),
			DisablePushdown: !ii.shardPushdown.Load(),
		}
	}
	return ii
}

// BatchRows returns the current streaming batch size (0 = monolithic).
func (ii *II) BatchRows() int { return int(ii.batchRows.Load()) }

// SetBatchRows changes the streaming batch size at runtime; n <= 0 disables
// streaming (monolithic store-and-forward execution).
func (ii *II) SetBatchRows(n int) {
	if n < 0 {
		n = 0
	}
	ii.batchRows.Store(int64(n))
}

// Vectorized reports whether the II-side merge uses the columnar engine.
func (ii *II) Vectorized() bool { return ii.vectorized.Load() }

// SetVectorized switches the II merge between the row-at-a-time and columnar
// engines. The columnar merge only engages for queries whose fragments all
// arrived with columnar payloads (i.e. the remote servers are vectorized
// too); otherwise the row merge runs regardless of this flag. Either way the
// merged rows, resource charges, and span tree are bit-identical.
func (ii *II) SetVectorized(on bool) { ii.vectorized.Store(on) }

// ShardPruning reports whether predicates on a shard key prune the shard
// fan-out.
func (ii *II) ShardPruning() bool { return ii.shardPruning.Load() }

// SetShardPruning toggles predicate-based shard pruning (default on).
// Turning it off scatter-gathers every shard of every sharded table. The
// plan cache is cleared on a change, since cached decompositions embed the
// pruned fragment set.
func (ii *II) SetShardPruning(on bool) {
	if ii.shardPruning.Swap(on) != on {
		ii.ClearPlanCache()
	}
}

// ShardPushdown reports whether aggregate queries over sharded tables push
// partial aggregation into the shard fragments.
func (ii *II) ShardPushdown() bool { return ii.shardPushdown.Load() }

// SetShardPushdown toggles two-phase partial-aggregate pushdown (default
// on). Off selects the ship-everything baseline: every shard ships its full
// pre-aggregation result, as boxed rows ("row-ship") or typed column
// batches ("col-ship") depending on the columnar wire flag. On, shards ship
// partial-aggregate states instead ("pushdown" / "pushdown-col"). Fragment
// spans carry the active mode in their "ship" attribute and the decision
// log records it, so the four modes are distinguishable after the fact.
// The plan cache is cleared on a change.
func (ii *II) SetShardPushdown(on bool) {
	if ii.shardPushdown.Swap(on) != on {
		ii.ClearPlanCache()
	}
}

// Optimizer exposes the global optimizer (QCC's what-if analysis drives it
// directly with masking).
func (ii *II) Optimizer() *optimizer.Optimizer { return ii.opt }

// ExplainTable exposes the stored winners.
func (ii *II) ExplainTable() *optimizer.ExplainTable { return ii.explain }

// Patroller exposes the query log.
func (ii *II) Patroller() *Patroller { return ii.patroller }

// Clock exposes the shared clock.
func (ii *II) Clock() *simclock.Clock { return ii.cfg.Clock }

// SetRoute installs or replaces the routing policy.
func (ii *II) SetRoute(r RoutePolicy) { ii.cfg.Route = r }

// SetMergeObserver installs the II merge observer (QCC's §3.2 input).
func (ii *II) SetMergeObserver(o IIMergeObserver) { ii.cfg.MergeObs = o }

// SetShipObserver installs the per-fragment ship-mode observer.
func (ii *II) SetShipObserver(o ShipObserver) { ii.cfg.ShipObs = o }

// SetRerouter installs the runtime fragment rerouter.
func (ii *II) SetRerouter(r RuntimeRerouter) { ii.cfg.Reroute = r }

// SetIICalibrator installs the II workload calibrator used when costing
// merge work during optimization.
func (ii *II) SetIICalibrator(c optimizer.IICalibrator) { ii.opt.IICalib = c }

// Telemetry exposes the observability subsystem (may be nil).
func (ii *II) Telemetry() *telemetry.Telemetry { return ii.cfg.Telemetry }

// SetTelemetry installs the observability subsystem (nil disables). Like the
// other setters, install before serving queries; runtime on/off switching
// goes through telemetry.SetEnabled.
func (ii *II) SetTelemetry(t *telemetry.Telemetry) { ii.cfg.Telemetry = t }

// Admission exposes the admission controller (may be nil).
func (ii *II) Admission() *admission.Controller { return ii.cfg.Admission }

// SetAdmission installs the admission controller (nil removes the gate).
// Install before serving queries; runtime policy changes go through the
// controller itself.
func (ii *II) SetAdmission(c *admission.Controller) { ii.cfg.Admission = c }

// PlanCacheStats snapshots the federated plan cache's counters.
func (ii *II) PlanCacheStats() PlanCacheStats { return ii.plans.snapshot() }

// SetPlanCacheMaxAge overrides the cache's staleness bound (values <= 0 are
// ignored). QCC wiring aligns it with the load balancer's rotation refresh
// interval so cached routing never outlives a rotation epoch.
func (ii *II) SetPlanCacheMaxAge(maxAge simclock.Time) { ii.plans.setMaxAge(maxAge) }

// SetPlanCacheEnabled toggles the federated plan cache at runtime; disabling
// also clears it.
func (ii *II) SetPlanCacheEnabled(enabled bool) { ii.plans.setEnabled(enabled) }

// ClearPlanCache drops every cached compilation.
func (ii *II) ClearPlanCache() { ii.plans.clear(InvalidateClear) }

// QueryResult is the outcome of one federated query.
type QueryResult struct {
	// Rel is the merged result.
	Rel *sqltypes.Relation
	// Plan is the executed global plan.
	Plan *optimizer.GlobalPlan
	// FragmentTimes maps fragment IDs to observed response times.
	FragmentTimes map[string]simclock.Time
	// ExecutedServers maps fragment IDs to the servers that actually ran
	// them — identical to the plan's routing unless a runtime rerouter
	// substituted a fragment.
	ExecutedServers map[string]string
	// MergeTime is the observed II-side merge time.
	MergeTime simclock.Time
	// ResponseTime is the end-user response time: parallel remote phase
	// (max fragment time) plus merge.
	ResponseTime simclock.Time
	// FirstRowTime is when the first merged result row could be emitted:
	// under streaming, the latest first-batch arrival across fragments plus
	// the merge; under monolithic execution it equals ResponseTime.
	FirstRowTime simclock.Time
	// Retried counts re-optimizations after fragment failures.
	Retried int
	// QueueWait is the virtual time spent in the admission queue before
	// execution (zero when admission is disabled or the query was admitted
	// immediately). It is NOT part of ResponseTime, so calibration
	// observations stay pure execution time; end-to-end latency is
	// QueueWait + ResponseTime.
	QueueWait simclock.Time
	// AdmissionClass is the workload class the query ran under ("" when no
	// admission controller is installed).
	AdmissionClass string
	// Tenant is the tenant the query was submitted under ("" when untagged).
	Tenant string
}

// Query compiles and executes a federated SQL statement.
func (ii *II) Query(sql string) (*QueryResult, error) {
	return ii.QueryContext(context.Background(), sql)
}

// QueryContext compiles and executes a federated SQL statement under the
// given context. It is safe for concurrent use: each completed query charges
// its response time to the shared virtual clock through Clock.Charge, which
// serializes charges so that concurrent submissions reserve disjoint
// virtual-time intervals (the final clock value is the sum of all response
// times, independent of goroutine interleaving).
func (ii *II) QueryContext(ctx context.Context, sql string) (*QueryResult, error) {
	logID := ii.patroller.SubmitTenant(sql, ii.cfg.Clock.Now(), admission.TenantFromContext(ctx))
	tel := ii.cfg.Telemetry
	trace := tel.StartTrace(sql, ii.cfg.Clock.Now())
	if trace != nil {
		ctx = telemetry.ContextWithSpan(ctx, trace.Root)
	}
	res, grant, err := ii.run(ctx, sql)
	ii.cfg.Clock.AdvanceTo(ii.cfg.Clock.Now()) // flush due events
	if err != nil {
		grant.Release()
		tel.Active().Counter("ii.query_errors", "").Inc()
		tel.Tracer().FinishTrace(trace, err)
		ii.patroller.Complete(logID, ii.cfg.Clock.Now(), err)
		return nil, err
	}
	wait := grant.QueueWait()
	res.QueueWait = wait
	res.AdmissionClass = grant.Class()
	res.Tenant = grant.Tenant()
	if trace != nil {
		// The root span covers queue wait plus execution; with admission
		// disabled the wait is zero and the duration is exactly the
		// response time, as before.
		trace.Root.End(res.ResponseTime + wait)
		tel.Tracer().FinishTrace(trace, nil)
	}
	tel.Active().Counter("ii.queries", "").Inc()
	if ii.BatchRows() > 0 {
		tel.Active().Histogram("query.first_row_ms", "", nil).Observe(float64(res.FirstRowTime))
	}
	_, end := ii.cfg.Clock.Charge(res.ResponseTime)
	ii.patroller.CompleteWithWait(logID, end, res.ResponseTime, wait, nil)
	// Release after charging so the next admitted waiter's queue wait spans
	// this query's serialized virtual-time interval.
	grant.Release()
	return res, nil
}

// Compile optimizes without executing and records the winner in the explain
// table — the paper's "explain mode". Repeat compilations of a statement are
// served from the federated plan cache (plancache.go) while its entry stays
// valid: only calibration, winner re-pick and routing re-run on a hit.
func (ii *II) Compile(sql string) (*optimizer.GlobalPlan, error) {
	return ii.compile(context.Background(), sql, nil)
}

// compile is the cache-aware compilation path. exclude (may be nil) steers
// the WARM path away from servers that failed the query's earlier fragment
// attempts. The cold path deliberately ignores it: recompiling from scratch
// re-Explains every candidate, which is what discovers whether a failed
// server is really gone — a transient failure may retry on the same (still
// cheapest) source, exactly as before the cache existed.
func (ii *II) compile(ctx context.Context, sql string, exclude optimizer.ExcludeFunc) (*optimizer.GlobalPlan, error) {
	now := ii.cfg.Clock.Now()
	sp := telemetry.SpanFrom(ctx)
	tel := ii.cfg.Telemetry
	if cc := ii.plans.lookup(sql); cc != nil {
		if cause := ii.validateCached(cc, now); cause != "" {
			ii.plans.invalidate(sql, cause)
		} else if gps, err := ii.opt.EnumerateFromOptions(cc.stmt, cc.decomp, cc.frags, 1, exclude); err == nil {
			ii.plans.recordHit()
			tel.Active().Counter("ii.plancache_hits", "").Inc()
			sp.Emit("plancache.lookup", telemetry.LayerII, "", 0).SetAttr("hit", "true")
			sp.Emit("calibrate", telemetry.LayerQCC, "", 0)
			return ii.finishCompile(gps[0]), nil
		} else {
			// Every cached candidate for some fragment is excluded or fenced:
			// fall through to a cold compile, which sees current Explain
			// availability.
			ii.plans.recordMiss()
		}
	}
	sp.Emit("plancache.lookup", telemetry.LayerII, "", 0).SetAttr("hit", "false")
	tel.Active().Counter("ii.plancache_misses", "").Inc()

	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	sp.Emit("parse", telemetry.LayerII, "", 0)
	decomp, frags, err := ii.opt.CollectContext(ctx, stmt)
	if err != nil {
		return nil, err
	}
	// Cache before enumerating: even if every option calibrates to +Inf right
	// now (fenced), the collected raw candidates stay valid for when the
	// fence lifts.
	ii.plans.insert(newCachedCompilation(sql, stmt, decomp, frags, ii.cfg.MW, now))
	sp.Emit("calibrate", telemetry.LayerQCC, "", 0)
	gps, err := ii.opt.EnumerateFromOptions(stmt, decomp, frags, 1, nil)
	if err != nil {
		return nil, err
	}
	return ii.finishCompile(gps[0]), nil
}

// finishCompile applies the load-distribution route policy and records the
// winner — the shared tail of the warm and cold compile paths.
func (ii *II) finishCompile(gp *optimizer.GlobalPlan) *optimizer.GlobalPlan {
	if ii.cfg.Route != nil {
		gp = ii.cfg.Route.ChooseGlobal(gp.Query, gp)
	}
	ii.explain.Record(gp, ii.cfg.Clock.Now())
	return gp
}

// newCachedCompilation assembles the cacheable artifact for one compile: the
// parsed statement, decomposition and raw candidate sets, plus the snapshots
// validation compares against — the mask state of every candidate server
// (masked ones contributed no options, so an unmask must invalidate too) and
// each fragment's referenced tables. The mask snapshot is taken here, after
// collection; a mask flip racing the collect window is caught by the next
// lookup's re-validation at the latest when it flips back, and is bounded by
// the staleness age regardless.
func newCachedCompilation(sql string, stmt *sqlparser.SelectStmt, decomp *optimizer.Decomposition, frags []optimizer.FragmentOptions, mw *metawrapper.MetaWrapper, at simclock.Time) *cachedCompilation {
	cc := &cachedCompilation{sql: sql, stmt: stmt, decomp: decomp, frags: frags, insertedAt: at}
	cc.fragTables = make([][]string, len(frags))
	seen := map[string]bool{}
	for i, fo := range frags {
		refs := fo.Spec.Stmt.Tables()
		tables := make([]string, len(refs))
		for j, tr := range refs {
			tables[j] = tr.Name
		}
		cc.fragTables[i] = tables
		for _, sid := range fo.Spec.Candidates {
			if !seen[sid] {
				seen[sid] = true
				cc.servers = append(cc.servers, sid)
			}
		}
	}
	if mw != nil {
		cc.maskSnap = mw.MaskedSet(cc.servers)
	} else {
		cc.maskSnap = map[string]bool{}
	}
	return cc
}

// validateCached checks a cached compilation against current federation
// state, returning the invalidation cause or "" when still usable. Note what
// it does NOT check: calibration factors and availability fencing, which the
// warm re-pick applies fresh on every hit.
func (ii *II) validateCached(cc *cachedCompilation, now simclock.Time) string {
	if maxAge := ii.plans.staleness(); maxAge > 0 && now-cc.insertedAt > maxAge {
		return InvalidateStale
	}
	mw := ii.cfg.MW
	if mw == nil {
		return ""
	}
	cur := mw.MaskedSet(cc.servers)
	for id, wasMasked := range cc.maskSnap {
		if cur[id] != wasMasked {
			return InvalidateMask
		}
	}
	for i, fo := range cc.frags {
		checked := map[string]bool{}
		for _, so := range fo.Options {
			if checked[so.ServerID] {
				continue
			}
			checked[so.ServerID] = true
			if so.Versions == nil {
				return InvalidateVersion
			}
			curVers, err := mw.TableVersions(so.ServerID, cc.fragTables[i])
			if err != nil {
				return InvalidateVersion
			}
			for table, v := range so.Versions {
				if curVers[table] != v {
					return InvalidateVersion
				}
			}
		}
	}
	return ""
}

func (ii *II) run(ctx context.Context, sql string) (*QueryResult, *admission.Grant, error) {
	var lastErr error
	// grant is the admission slot, acquired once after the first successful
	// compile (the compiled plan's calibrated cost is the classification
	// signal) and held across retries; the caller releases it.
	var grant *admission.Grant
	// excluded accumulates the (fragment, server) pairs that failed earlier
	// attempts of THIS query; the warm compile path steers around them so a
	// retry reuses the cached candidate sets instead of recompiling from
	// zero.
	var excluded map[string]map[string]bool
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, grant, fmt.Errorf("integrator: query cancelled after %d attempts: %w", attempt, lastErr)
			}
			return nil, grant, err
		}
		var exclude optimizer.ExcludeFunc
		if len(excluded) > 0 {
			ex := excluded
			exclude = func(fragID, serverID string) bool { return ex[fragID][serverID] }
		}
		gp, err := ii.compile(ctx, sql, exclude)
		if err != nil {
			return nil, grant, err
		}
		if grant == nil && ii.cfg.Admission != nil {
			g, err := ii.cfg.Admission.Admit(ctx, admission.Request{
				Query:  sql,
				CostMS: gp.TotalEstMS,
				Class:  admission.ClassFromContext(ctx),
				Tenant: admission.TenantFromContext(ctx),
			})
			if err != nil {
				return nil, nil, err
			}
			grant = g
			if grant.Queued() {
				// Only genuinely queued queries record a wait span: the
				// unlimited (disabled) policy never queues, keeping the span
				// sequence identical to an engine without admission.
				ws := telemetry.SpanFrom(ctx).Emit("admission.wait", telemetry.LayerII, "", grant.QueueWait())
				ws.SetAttr("class", grant.Class())
				if t := grant.Tenant(); t != "" {
					ws.SetAttr("tenant", t)
				}
			}
		}
		res, err := ii.ExecuteContext(ctx, gp)
		if err == nil {
			res.Retried = attempt
			return res, grant, nil
		}
		lastErr = err
		var fe *FragmentError
		if errors.As(err, &fe) {
			if excluded == nil {
				excluded = map[string]map[string]bool{}
			}
			if excluded[fe.FragID] == nil {
				excluded[fe.FragID] = map[string]bool{}
			}
			excluded[fe.FragID][fe.ServerID] = true
		}
		if attempt < ii.retries {
			ii.cfg.Telemetry.Active().Counter("ii.retries", "").Inc()
			rs := telemetry.SpanFrom(ctx).Emit("retry", telemetry.LayerII, "", 0)
			rs.SetAttr("attempt", fmt.Sprint(attempt+1))
			rs.SetAttr("cause", err.Error())
		}
		if attempt >= ii.retries {
			// attempt counts the retries already consumed: the failed run
			// above was attempt number attempt+1, of which `attempt` were
			// retries.
			return nil, grant, fmt.Errorf("integrator: query failed after %d retries: %w", attempt, lastErr)
		}
	}
}

// Execute runs a compiled global plan with a background context.
func (ii *II) Execute(gp *optimizer.GlobalPlan) (*QueryResult, error) {
	return ii.ExecuteContext(context.Background(), gp)
}

// FragmentError is a fragment execution failure tagged with the routing that
// produced it. The retry loop unwraps it to steer the next (warm) compile
// away from the failed server.
type FragmentError struct {
	FragID   string
	ServerID string
	Err      error
}

func (e *FragmentError) Error() string {
	return fmt.Sprintf("integrator: fragment %s at %s: %v", e.FragID, e.ServerID, e.Err)
}

func (e *FragmentError) Unwrap() error { return e.Err }

// fragOutcome is one fragment dispatch's result, indexed by plan position so
// the merge always sees fragments in plan order regardless of completion
// order.
type fragOutcome struct {
	// rel holds the fragment rows; nil when the columnar wire protocol
	// carried the fragment (then col is authoritative and no rows were
	// boxed anywhere on the path).
	rel *sqltypes.Relation
	// col is the same rows in columnar form when the remote executed
	// vectorized AND every stream batch carried a columnar payload; nil
	// otherwise. col.ToRelation() row-equals rel when both are set.
	col      *colbatch.Batch
	respTime simclock.Time
	firstRow simclock.Time
	serverID string
	fragID   string
	// wire marks a fragment delivered over the columnar wire protocol.
	wire bool
}

// shipMode names how a fragment's data crossed the wire, for spans and the
// decision log:
//
//	"row-ship"     boxed rows of the full (or whole-row baseline) result
//	"col-ship"     typed column batches of the same rows (columnar wire)
//	"pushdown"     partial-aggregate states as boxed rows
//	"pushdown-col" partial-aggregate states as typed column batches
func shipMode(gp *optimizer.GlobalPlan, f optimizer.FragmentChoice, wire bool) string {
	pushdown := f.Spec.Shard != nil && gp.Decomp.Sharded != nil && gp.Decomp.Sharded.Partial != nil
	switch {
	case pushdown && wire:
		return "pushdown-col"
	case pushdown:
		return "pushdown"
	case wire:
		return "col-ship"
	default:
		return "row-ship"
	}
}

// dispatchFragment runs one fragment through MW, streaming when batchRows is
// positive (rows accumulate at the II as batches arrive) and monolithically
// otherwise — the latter is the bit-for-bit compatible escape hatch.
func (ii *II) dispatchFragment(ctx context.Context, f optimizer.FragmentChoice, batchRows int) (fragOutcome, error) {
	if batchRows <= 0 {
		out, err := ii.cfg.MW.ExecuteFragment(ctx, f.ServerID, f.Spec.Stmt.String(), f.Plan, f.RawEst)
		if err != nil {
			return fragOutcome{}, err
		}
		return fragOutcome{
			rel:      out.Result.Rel,
			col:      out.Result.Col,
			respTime: out.ResponseTime,
			firstRow: out.ResponseTime,
			serverID: f.ServerID,
			fragID:   f.Spec.ID,
			wire:     out.Result.Rel == nil && out.Result.Col != nil,
		}, nil
	}
	st, err := ii.cfg.MW.OpenFragmentStream(ctx, f.ServerID, f.Spec.Stmt.String(), f.Plan, f.RawEst, batchRows)
	if err != nil {
		return fragOutcome{}, err
	}
	rel := sqltypes.NewRelation(st.Schema())
	// Columnar batches reassemble without a row round trip; one row-only
	// batch (non-vectorized remote) drops the columnar form for the whole
	// fragment, since a partial column set would be useless to the merge.
	// Under the columnar wire protocol batches carry no row form at all —
	// the fragment stays columnar end to end.
	acc := colbatch.NewAccumulator(st.Schema())
	wire := false
	for {
		b, err := st.Next(ctx)
		if err != nil {
			return fragOutcome{}, err
		}
		if b == nil {
			break
		}
		if b.Rel != nil {
			rel.Rows = append(rel.Rows, b.Rel.Rows...)
		} else {
			wire = true
		}
		if acc != nil {
			if b.Col == nil {
				acc = nil
			} else {
				acc.Append(b.Col)
			}
		}
	}
	out := st.Outcome()
	var col *colbatch.Batch
	if acc != nil {
		col = acc.Finish()
	}
	if wire && col == nil {
		// Cannot normally happen: wire batches always carry columns. Keep
		// the (empty) row form rather than returning a dataless fragment.
		wire = false
	}
	if wire {
		rel = nil
	}
	return fragOutcome{
		rel:      rel,
		col:      col,
		respTime: out.ResponseTime,
		firstRow: out.FirstRowTime,
		serverID: f.ServerID,
		fragID:   f.Spec.ID,
		wire:     wire,
	}, nil
}

// ExecuteContext runs a compiled global plan: fragments dispatch through MW
// on concurrent goroutines (bounded by Config.MaxParallel), then the local
// merge runs over the results in plan order. The first fragment error
// cancels the remaining dispatches; every dispatch context carries the
// per-fragment virtual-time deadline when Config.FragmentBudget is set.
func (ii *II) ExecuteContext(ctx context.Context, gp *optimizer.GlobalPlan) (*QueryResult, error) {
	root := telemetry.SpanFrom(ctx)
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fctx = simclock.WithDeadline(fctx, ii.cfg.FragmentBudget)

	batchRows := ii.BatchRows()
	outcomes := make([]fragOutcome, len(gp.Fragments))
	sem := make(chan struct{}, ii.cfg.MaxParallel)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for i, f := range gp.Fragments {
		wg.Add(1)
		go func(i int, f optimizer.FragmentChoice) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-fctx.Done():
				return
			}
			if fctx.Err() != nil {
				return
			}
			rerouted := false
			if ii.cfg.Reroute != nil {
				if alt := ii.cfg.Reroute.RerouteFragment(f); alt != nil {
					f = *alt
					rerouted = true
				}
			}
			fspan := root.Child("fragment", telemetry.LayerMW, f.ServerID)
			fspan.SetAttr("frag", f.Spec.ID)
			if f.Spec.Shard != nil {
				// Distinguish scatter-gather fan-out from replica routing in
				// traces: shard fragments carry their shard index.
				fspan.SetAttr("shard", fmt.Sprintf("%d", f.Spec.Shard.Index))
				ii.cfg.Telemetry.Active().Counter("shard.fragments", f.ServerID).Inc()
			}
			if rerouted {
				fspan.SetAttr("rerouted", "true")
				ii.cfg.Telemetry.Active().Counter("ii.reroutes", f.ServerID).Inc()
			}
			// Score-breakdown (or other) routing attributes, when the active
			// policy exposes them. Checked on the rerouter first (freshest
			// decision), then the compile-time route policy.
			for _, p := range []any{ii.cfg.Reroute, ii.cfg.Route} {
				if ann, ok := p.(RouteAnnotator); ok {
					for k, v := range ann.RouteAttrs(f.Spec.ID) {
						fspan.SetAttr(k, v)
					}
					break
				}
			}
			// Queue wait is zero in virtual time: the dispatch semaphore bounds
			// REAL concurrency only — every fragment starts at the same virtual
			// instant. The sub-span records the model's claim explicitly.
			fspan.Emit("queue", telemetry.LayerII, "", 0)
			dctx := fctx
			if fspan != nil {
				dctx = telemetry.ContextWithSpan(fctx, fspan)
			}
			out, err := ii.dispatchFragment(dctx, f, batchRows)
			if err != nil {
				fspan.SetAttr("error", err.Error())
				fspan.End(0)
				if fctx.Err() == nil || ctx.Err() != nil {
					fail(&FragmentError{FragID: f.Spec.ID, ServerID: f.ServerID, Err: err})
				}
				return
			}
			mode := shipMode(gp, f, out.wire)
			fspan.SetAttr("ship", mode)
			fspan.End(out.respTime)
			ii.cfg.Telemetry.Active().Counter("ii.fragments", f.ServerID).Inc()
			if ii.cfg.ShipObs != nil {
				ii.cfg.ShipObs.ObserveShip(gp.Stmt.String(), f.Spec.ID, f.ServerID, mode)
			}
			outcomes[i] = out
		}(i, f)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	fragTimes := make(map[string]simclock.Time, len(outcomes))
	executed := make(map[string]string, len(outcomes))
	fragRels := make([]*sqltypes.Relation, len(outcomes))
	fragCols := make([]*colbatch.Batch, len(outcomes))
	var remotePhase, firstPhase simclock.Time
	for i, o := range outcomes {
		fragRels[i] = o.rel
		fragCols[i] = o.col
		fragTimes[o.fragID] = o.respTime
		executed[o.fragID] = o.serverID
		if o.respTime > remotePhase {
			remotePhase = o.respTime
		}
		if o.firstRow > firstPhase {
			firstPhase = o.firstRow
		}
	}

	rel, mergeTime, blocking, err := ii.merge(gp, fragRels, fragCols, batchRows)
	if err != nil {
		return nil, err
	}
	// The parallel remote phase occupies max(fragment times) of the root's
	// virtual timeline; the merge follows it sequentially.
	root.Advance(remotePhase)
	msp := root.Emit("merge", telemetry.LayerII, "", mergeTime)
	if blocking != "" {
		msp.SetAttr("blocking", blocking)
	}
	if ii.cfg.MergeObs != nil {
		ii.cfg.MergeObs.ObserveIIMerge(gp.MergeEstMS, mergeTime)
	}
	return &QueryResult{
		Rel:             rel,
		Plan:            gp,
		FragmentTimes:   fragTimes,
		ExecutedServers: executed,
		MergeTime:       mergeTime,
		ResponseTime:    remotePhase + mergeTime,
		// A join merge needs every fragment's first batch before it can
		// emit anything, so the query-level first row waits on the slowest
		// fragment's first batch plus the merge.
		FirstRowTime: firstPhase + mergeTime,
	}, nil
}

// merge combines fragment results at the II node. With batchRows > 0 the
// non-join tail runs as a streaming pipeline over the shared kernels (union
// passes batches through, aggregation folds per batch, sort blocks and is
// reported via the returned blocking stage name); batchRows <= 0 keeps the
// historical materialized path. Both paths interpret the same planTopSteps
// list over the same kernels, so results and resource charges are identical
// — except LIMIT, which under streaming stops pulling once satisfied.
func (ii *II) merge(gp *optimizer.GlobalPlan, fragRels []*sqltypes.Relation, fragCols []*colbatch.Batch, batchRows int) (*sqltypes.Relation, simclock.Time, string, error) {
	// The columnar merge engages only when the flag is on AND every fragment
	// arrived with a columnar payload — a row-engine remote anywhere in the
	// query demotes the whole merge to the row path.
	vec := ii.vectorized.Load()
	for _, c := range fragCols {
		if c == nil {
			vec = false
			break
		}
	}
	if vec {
		tel := ii.cfg.Telemetry
		tel.Active().Counter("exec.vectorized", "ii").Inc()
	}
	if !vec {
		// Correctness fallback: wire-delivered fragments have no row form.
		// A row merge (II not vectorized, or a row-engine fragment mixed in)
		// materializes them here; a columnar merge never boxes them at all.
		for i := range fragRels {
			if fragRels[i] == nil && fragCols[i] != nil {
				fragRels[i] = fragCols[i].ToRelation()
			}
		}
	}
	ctx := &exec.Context{}
	if gp.Decomp.SingleFragment {
		if batchRows > 0 {
			if vec {
				out, err := exec.CollectCol(exec.NewValuesColSource(fragCols[0], batchRows), ctx)
				if err != nil {
					return nil, 0, "", fmt.Errorf("integrator: merging: %w", err)
				}
				return out.ToRelation(), ii.cfg.Node.Observe(ctx.Res), "", nil
			}
			// Union/concat pass-through: batches fold straight into the
			// result as they arrive; the per-row cursor charge matches the
			// materialized accounting below exactly.
			rel, err := exec.Collect(exec.NewValuesSource(fragRels[0], batchRows), ctx)
			if err != nil {
				return nil, 0, "", fmt.Errorf("integrator: merging: %w", err)
			}
			return rel, ii.cfg.Node.Observe(ctx.Res), "", nil
		}
		rel := fragRels[0]
		if rel == nil {
			// Monolithic + columnar wire: the single fragment arrived as a
			// batch; materialize at the very edge, charging the same one op
			// per row the pass-through merge charges.
			rel = fragCols[0].ToRelation()
		}
		ctx.Res.CPUOps = float64(rel.Cardinality())
		return rel, ii.cfg.Node.Observe(ctx.Res), "", nil
	}

	// Scatter-gather: per-shard fragments sharing Shard.Of concatenate into
	// one logical fragment before merging. Unsharded plans pass through with
	// the original per-fragment slices untouched, so their merge is
	// bit-identical to the pre-sharding engine.
	ids, rels, cols := logicalFragments(gp, fragRels, fragCols, vec)

	if sh := gp.Decomp.Sharded; sh != nil {
		// Single sharded table: the union of shard results feeds the
		// statement tail directly — ShardAggFinal merges partial aggregate
		// states under pushdown, BuildTop applies the full tail over
		// gathered rows otherwise.
		leaf := &exec.Values{Rel: rels[0], Label: sh.FragID}
		if vec {
			leaf.Col = cols[0]
		}
		var top exec.Operator
		var err error
		if sh.Partial != nil {
			top, err = exec.BuildShardFinal(gp.Stmt, sh.Base, leaf)
		} else {
			top, err = exec.BuildTop(gp.Stmt, leaf)
		}
		if err != nil {
			return nil, 0, "", fmt.Errorf("integrator: building merge plan: %w", err)
		}
		if vec {
			out, err := exec.ExecuteVectorized(top, ctx)
			if err != nil {
				return nil, 0, "", fmt.Errorf("integrator: merging: %w", err)
			}
			return out.ToRelation(), ii.cfg.Node.Observe(ctx.Res), "", nil
		}
		rel, err := top.Execute(ctx)
		if err != nil {
			return nil, 0, "", fmt.Errorf("integrator: merging: %w", err)
		}
		return rel, ii.cfg.Node.Observe(ctx.Res), "", nil
	}

	// Join fragments left-to-right on the cross-source conjuncts. When the
	// merge is columnar, each Values leaf carries its fragment's batch so the
	// vectorized executor starts from the arrived columns directly.
	cross := append([]sqlparser.Expr(nil), gp.Decomp.Cross...)
	left := &exec.Values{Rel: rels[0], Label: ids[0]}
	if vec {
		left.Col = cols[0]
	}
	var current exec.Operator = left
	for i := 1; i < len(rels); i++ {
		right := &exec.Values{Rel: rels[i], Label: ids[i]}
		if vec {
			right.Col = cols[i]
		}
		lk, rk, rest, ok := exec.ExtractEquiJoinKeys(cross, current.Schema(), right.Schema())
		if ok {
			joined := current.Schema().Concat(right.Schema())
			var residuals, remaining []sqlparser.Expr
			for _, c := range rest {
				if exprResolves(c, joined) {
					residuals = append(residuals, c)
				} else {
					remaining = append(remaining, c)
				}
			}
			current = &exec.HashJoin{
				Build:    current,
				Probe:    right,
				BuildKey: lk,
				ProbeKey: rk,
				Residual: sqlparser.JoinConjuncts(residuals),
			}
			cross = remaining
			continue
		}
		joined := current.Schema().Concat(right.Schema())
		var preds, remaining []sqlparser.Expr
		for _, c := range cross {
			if exprResolves(c, joined) {
				preds = append(preds, c)
			} else {
				remaining = append(remaining, c)
			}
		}
		current = &exec.NestedLoopJoin{Outer: current, Inner: right, Pred: sqlparser.JoinConjuncts(preds)}
		cross = remaining
	}
	if len(cross) > 0 {
		current = &exec.Filter{Input: current, Pred: sqlparser.JoinConjuncts(cross)}
	}
	if batchRows > 0 {
		// The join tree materializes (hash/NL joins need their full inputs),
		// then the non-join tail streams over it batch by batch.
		if vec {
			joined, err := exec.ExecuteVectorized(current, ctx)
			if err != nil {
				return nil, 0, "", fmt.Errorf("integrator: merging: %w", err)
			}
			src, err := exec.BuildTopColSource(gp.Stmt, exec.ColSourceFromBatch(joined, batchRows))
			if err != nil {
				return nil, 0, "", fmt.Errorf("integrator: building merge pipeline: %w", err)
			}
			blocking := exec.ColSourceBlockingStage(src)
			out, err := exec.CollectCol(src, ctx)
			if err != nil {
				return nil, 0, "", fmt.Errorf("integrator: merging: %w", err)
			}
			return out.ToRelation(), ii.cfg.Node.Observe(ctx.Res), blocking, nil
		}
		joined, err := current.Execute(ctx)
		if err != nil {
			return nil, 0, "", fmt.Errorf("integrator: merging: %w", err)
		}
		src, err := exec.BuildTopSource(gp.Stmt, exec.SourceFromRelation(joined, batchRows))
		if err != nil {
			return nil, 0, "", fmt.Errorf("integrator: building merge pipeline: %w", err)
		}
		blocking := exec.SourceBlockingStage(src)
		rel, err := exec.Collect(src, ctx)
		if err != nil {
			return nil, 0, "", fmt.Errorf("integrator: merging: %w", err)
		}
		return rel, ii.cfg.Node.Observe(ctx.Res), blocking, nil
	}
	top, err := exec.BuildTop(gp.Stmt, current)
	if err != nil {
		return nil, 0, "", fmt.Errorf("integrator: building merge plan: %w", err)
	}
	if vec {
		out, err := exec.ExecuteVectorized(top, ctx)
		if err != nil {
			return nil, 0, "", fmt.Errorf("integrator: merging: %w", err)
		}
		return out.ToRelation(), ii.cfg.Node.Observe(ctx.Res), "", nil
	}
	rel, err := top.Execute(ctx)
	if err != nil {
		return nil, 0, "", fmt.Errorf("integrator: merging: %w", err)
	}
	return rel, ii.cfg.Node.Observe(ctx.Res), "", nil
}

// logicalFragments folds per-shard fragment results into logical fragments:
// outcomes sharing Spec.Shard.Of concatenate (rows and, when the merge is
// columnar, batches) in plan order. Plans without shard fragments return
// the input slices unchanged — zero copies, zero extra charges.
func logicalFragments(gp *optimizer.GlobalPlan, fragRels []*sqltypes.Relation, fragCols []*colbatch.Batch, vec bool) ([]string, []*sqltypes.Relation, []*colbatch.Batch) {
	sharded := false
	for _, f := range gp.Fragments {
		if f.Spec.Shard != nil {
			sharded = true
			break
		}
	}
	if !sharded {
		ids := make([]string, len(gp.Fragments))
		for i, f := range gp.Fragments {
			ids[i] = f.Spec.ID
		}
		return ids, fragRels, fragCols
	}
	var ids []string
	var rels []*sqltypes.Relation
	var cols []*colbatch.Batch
	pos := map[string]int{}
	for i, f := range gp.Fragments {
		key := f.Spec.ID
		if f.Spec.Shard != nil {
			key = f.Spec.Shard.Of
		}
		j, ok := pos[key]
		if !ok {
			j = len(ids)
			pos[key] = j
			ids = append(ids, key)
			// Wire-delivered fragments have no row form; the folded logical
			// fragment then stays columnar-only (nil rel) and the merge's
			// Values leaves read the batch directly.
			if fragRels[i] == nil {
				rels = append(rels, nil)
			} else {
				rel := sqltypes.NewRelation(fragRels[i].Schema)
				rel.Rows = append(rel.Rows, fragRels[i].Rows...)
				rels = append(rels, rel)
			}
			if vec {
				cols = append(cols, fragCols[i])
			} else {
				cols = append(cols, nil)
			}
			continue
		}
		if fragRels[i] == nil {
			rels[j] = nil
		} else if rels[j] != nil {
			rels[j].Rows = append(rels[j].Rows, fragRels[i].Rows...)
		}
		if vec {
			acc := colbatch.NewAccumulator(cols[j].Schema)
			acc.Append(cols[j])
			acc.Append(fragCols[i])
			cols[j] = acc.Finish()
		}
	}
	return ids, rels, cols
}

func exprResolves(e sqlparser.Expr, schema *sqltypes.Schema) bool {
	for _, ref := range sqlparser.CollectColumnRefs(e, nil) {
		if _, err := schema.ColumnIndex(ref.Table, ref.Name); err != nil {
			return false
		}
	}
	return true
}

package integrator

import (
	"fmt"
	"testing"

	"repro/internal/sqlparser"
)

func testCC(sql string) *cachedCompilation {
	return &cachedCompilation{sql: sql, stmt: sqlparser.MustParse(sql), maskSnap: map[string]bool{}}
}

func TestPlanCacheLookupAndStats(t *testing.T) {
	pc := newPlanCache(PlanCacheConfig{})
	const q = "SELECT x FROM t WHERE x > 1"
	if got := pc.lookup(q); got != nil {
		t.Fatalf("lookup on empty cache returned %v", got)
	}
	pc.insert(testCC(q))
	cc := pc.lookup(q)
	if cc == nil || cc.sql != q {
		t.Fatalf("lookup after insert: %v", cc)
	}
	pc.recordHit()
	s := pc.snapshot()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Variants != 1 {
		t.Fatalf("stats %+v, want hits=1 misses=1 entries=1 variants=1", s)
	}
}

func TestPlanCacheParameterVariantsShareEntry(t *testing.T) {
	pc := newPlanCache(PlanCacheConfig{})
	a := "SELECT x FROM t WHERE x > 1"
	b := "SELECT x FROM t WHERE x > 999"
	pc.insert(testCC(a))
	pc.insert(testCC(b))
	s := pc.snapshot()
	if s.Entries != 1 || s.Variants != 2 {
		t.Fatalf("variants of one query type must share a canonical entry: %+v", s)
	}
	// Each exact text resolves to its own compilation.
	if cc := pc.lookup(a); cc == nil || cc.sql != a {
		t.Fatalf("variant a: %v", cc)
	}
	if cc := pc.lookup(b); cc == nil || cc.sql != b {
		t.Fatalf("variant b: %v", cc)
	}
	// Invalidating through one variant drops the sibling too.
	pc.invalidate(a, InvalidateVersion)
	if cc := pc.lookup(b); cc != nil {
		t.Fatalf("sibling variant survived invalidation: %v", cc)
	}
	s = pc.snapshot()
	if s.Invalidations[InvalidateVersion] != 1 {
		t.Fatalf("invalidation cause not counted: %+v", s.Invalidations)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	pc := newPlanCache(PlanCacheConfig{Capacity: 2})
	q := func(i int) string { return fmt.Sprintf("SELECT x FROM t%d WHERE x > 1", i) }
	pc.insert(testCC(q(1)))
	pc.insert(testCC(q(2)))
	// Touch q1 so q2 is the LRU victim when q3 arrives.
	if pc.lookup(q(1)) == nil {
		t.Fatal("q1 should be cached")
	}
	pc.insert(testCC(q(3)))
	if pc.lookup(q(2)) != nil {
		t.Fatal("LRU victim q2 survived")
	}
	if pc.lookup(q(1)) == nil || pc.lookup(q(3)) == nil {
		t.Fatal("recently used entries evicted")
	}
	if s := pc.snapshot(); s.Invalidations[InvalidateCapacity] != 1 {
		t.Fatalf("capacity eviction not counted: %+v", s.Invalidations)
	}
}

func TestPlanCacheVariantBound(t *testing.T) {
	pc := newPlanCache(PlanCacheConfig{MaxVariants: 2})
	q := func(i int) string { return fmt.Sprintf("SELECT x FROM t WHERE x > %d", i) }
	pc.insert(testCC(q(1)))
	pc.insert(testCC(q(2)))
	pc.insert(testCC(q(3)))
	if pc.lookup(q(1)) != nil {
		t.Fatal("oldest variant survived the per-entry bound")
	}
	if pc.lookup(q(2)) == nil || pc.lookup(q(3)) == nil {
		t.Fatal("retained variants missing")
	}
	if s := pc.snapshot(); s.Entries != 1 || s.Variants != 2 {
		t.Fatalf("stats %+v, want entries=1 variants=2", s)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	pc := newPlanCache(PlanCacheConfig{Disabled: true})
	const q = "SELECT x FROM t WHERE x > 1"
	pc.insert(testCC(q))
	if pc.lookup(q) != nil {
		t.Fatal("disabled cache served an entry")
	}
	if s := pc.snapshot(); s.Hits != 0 || s.Misses != 0 || s.Entries != 0 {
		t.Fatalf("disabled cache counted traffic: %+v", s)
	}
	// Re-enabling starts clean and works.
	pc.setEnabled(true)
	pc.insert(testCC(q))
	if pc.lookup(q) == nil {
		t.Fatal("re-enabled cache did not serve")
	}
	// Disabling clears.
	pc.setEnabled(false)
	if s := pc.snapshot(); s.Entries != 0 {
		t.Fatalf("disable did not clear: %+v", s)
	}
}

package integrator

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/simclock"
)

func TestPatrollerSubmitComplete(t *testing.T) {
	p := NewPatroller()
	id1 := p.Submit("Q1", 10)
	id2 := p.Submit("Q2", 20)
	if id1 == id2 {
		t.Fatal("ids must be unique")
	}
	p.Complete(id1, 35, nil)
	p.Complete(id2, 50, errors.New("boom"))
	log := p.Log()
	if len(log) != 2 || p.Len() != 2 {
		t.Fatalf("log size: %d", len(log))
	}
	e1, e2 := log[0], log[1]
	if e1.Query != "Q1" || !e1.Completed || e1.Err != "" {
		t.Fatalf("e1: %+v", e1)
	}
	if e1.ResponseTime != 25 {
		t.Fatalf("e1 response: %v", e1.ResponseTime)
	}
	if e2.Err != "boom" || e2.ResponseTime != 30 {
		t.Fatalf("e2: %+v", e2)
	}
}

func TestPatrollerUnknownCompleteIsNoop(t *testing.T) {
	p := NewPatroller()
	p.Complete(999, 5, nil)
	if p.Len() != 0 {
		t.Fatal("ghost completion must not create entries")
	}
}

func TestPatrollerIncompleteEntries(t *testing.T) {
	p := NewPatroller()
	p.Submit("Q", 1)
	log := p.Log()
	if log[0].Completed || log[0].ResponseTime != 0 {
		t.Fatalf("incomplete entry: %+v", log[0])
	}
}

func TestPatrollerLogIsSnapshot(t *testing.T) {
	p := NewPatroller()
	id := p.Submit("Q", 1)
	snap := p.Log()
	p.Complete(id, 9, nil)
	if snap[0].Completed {
		t.Fatal("snapshot must not see later completion")
	}
}

func TestPatrollerRetentionBound(t *testing.T) {
	p := NewPatrollerWithCapacity(3)
	var ids []int64
	for i := 0; i < 10; i++ {
		ids = append(ids, p.Submit(fmt.Sprintf("Q%d", i), simclock.Time(i)))
	}
	if p.Len() != 3 {
		t.Fatalf("retained %d entries, want 3", p.Len())
	}
	if p.Evicted() != 7 {
		t.Fatalf("evicted %d, want 7", p.Evicted())
	}
	log := p.Log()
	if len(log) != 3 || log[0].Query != "Q7" || log[2].Query != "Q9" {
		t.Fatalf("retained window wrong: %+v", log)
	}
	// Completing a retained entry still works; an evicted one is a no-op.
	p.Complete(ids[9], 100, nil)
	p.Complete(ids[0], 100, nil)
	log = p.Log()
	if !log[2].Completed {
		t.Fatalf("retained entry not completed: %+v", log[2])
	}
	if p.Len() != 3 {
		t.Fatal("ghost completion changed retention")
	}
}

func TestPatrollerRetentionCompacts(t *testing.T) {
	// Push far past the compaction threshold and check the window stays
	// exact — the ring-buffer head/compaction must never drop live entries.
	p := NewPatrollerWithCapacity(16)
	const n = 5000
	for i := 0; i < n; i++ {
		p.Submit(fmt.Sprintf("Q%d", i), simclock.Time(i))
	}
	if p.Len() != 16 || p.Evicted() != n-16 {
		t.Fatalf("len=%d evicted=%d", p.Len(), p.Evicted())
	}
	log := p.Log()
	for i, e := range log {
		if want := fmt.Sprintf("Q%d", n-16+i); e.Query != want {
			t.Fatalf("entry %d: %q, want %q", i, e.Query, want)
		}
	}
}

func TestPatrollerUnboundedWithNegativeCapacity(t *testing.T) {
	p := NewPatrollerWithCapacity(-1)
	for i := 0; i < DefaultPatrollerCapacity+10; i++ {
		p.Submit("Q", simclock.Time(i))
	}
	if p.Len() != DefaultPatrollerCapacity+10 || p.Evicted() != 0 {
		t.Fatalf("unbounded patroller evicted: len=%d evicted=%d", p.Len(), p.Evicted())
	}
}

package integrator

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/simclock"
)

func TestPatrollerSubmitComplete(t *testing.T) {
	p := NewPatroller()
	id1 := p.Submit("Q1", 10)
	id2 := p.Submit("Q2", 20)
	if id1 == id2 {
		t.Fatal("ids must be unique")
	}
	p.Complete(id1, 35, nil)
	p.Complete(id2, 50, errors.New("boom"))
	log := p.Log()
	if len(log) != 2 || p.Len() != 2 {
		t.Fatalf("log size: %d", len(log))
	}
	e1, e2 := log[0], log[1]
	if e1.Query != "Q1" || !e1.Completed || e1.Err != "" {
		t.Fatalf("e1: %+v", e1)
	}
	if e1.ResponseTime != 25 {
		t.Fatalf("e1 response: %v", e1.ResponseTime)
	}
	if e2.Err != "boom" || e2.ResponseTime != 30 {
		t.Fatalf("e2: %+v", e2)
	}
}

func TestPatrollerUnknownCompleteIsNoop(t *testing.T) {
	p := NewPatroller()
	p.Complete(999, 5, nil)
	if p.Len() != 0 {
		t.Fatal("ghost completion must not create entries")
	}
}

func TestPatrollerIncompleteEntries(t *testing.T) {
	p := NewPatroller()
	p.Submit("Q", 1)
	log := p.Log()
	if log[0].Completed || log[0].ResponseTime != 0 {
		t.Fatalf("incomplete entry: %+v", log[0])
	}
}

func TestPatrollerLogIsSnapshot(t *testing.T) {
	p := NewPatroller()
	id := p.Submit("Q", 1)
	snap := p.Log()
	p.Complete(id, 9, nil)
	if snap[0].Completed {
		t.Fatal("snapshot must not see later completion")
	}
}

func TestPatrollerRetentionBound(t *testing.T) {
	p := NewPatrollerWithCapacity(3)
	var ids []int64
	for i := 0; i < 10; i++ {
		ids = append(ids, p.Submit(fmt.Sprintf("Q%d", i), simclock.Time(i)))
	}
	if p.Len() != 3 {
		t.Fatalf("retained %d entries, want 3", p.Len())
	}
	if p.Evicted() != 7 {
		t.Fatalf("evicted %d, want 7", p.Evicted())
	}
	log := p.Log()
	if len(log) != 3 || log[0].Query != "Q7" || log[2].Query != "Q9" {
		t.Fatalf("retained window wrong: %+v", log)
	}
	// Completing a retained entry still works; an evicted one is a no-op.
	p.Complete(ids[9], 100, nil)
	p.Complete(ids[0], 100, nil)
	log = p.Log()
	if !log[2].Completed {
		t.Fatalf("retained entry not completed: %+v", log[2])
	}
	if p.Len() != 3 {
		t.Fatal("ghost completion changed retention")
	}
}

func TestPatrollerRetentionCompacts(t *testing.T) {
	// Push far past the compaction threshold and check the window stays
	// exact — the ring-buffer head/compaction must never drop live entries.
	p := NewPatrollerWithCapacity(16)
	const n = 5000
	for i := 0; i < n; i++ {
		p.Submit(fmt.Sprintf("Q%d", i), simclock.Time(i))
	}
	if p.Len() != 16 || p.Evicted() != n-16 {
		t.Fatalf("len=%d evicted=%d", p.Len(), p.Evicted())
	}
	log := p.Log()
	for i, e := range log {
		if want := fmt.Sprintf("Q%d", n-16+i); e.Query != want {
			t.Fatalf("entry %d: %q, want %q", i, e.Query, want)
		}
	}
}

func TestPatrollerCountsCompletionsAfterEviction(t *testing.T) {
	p := NewPatrollerWithCapacity(2)
	id0 := p.Submit("Q0", 0)
	for i := 1; i < 5; i++ {
		p.Submit(fmt.Sprintf("Q%d", i), simclock.Time(i))
	}
	// Q0 was evicted by the retention bound; its completion must be counted,
	// not silently dropped.
	p.Complete(id0, 100, nil)
	st := p.Stats()
	if st.CompletedAfterEviction != 1 {
		t.Fatalf("CompletedAfterEviction = %d, want 1", st.CompletedAfterEviction)
	}
	if st.Retained != 2 || st.Evicted != 3 {
		t.Fatalf("stats = %+v, want Retained=2 Evicted=3", st)
	}
	// A completion for an ID never handed out stays a pure no-op: it is a
	// caller bug, not an eviction casualty.
	p.Complete(999, 100, nil)
	if got := p.Stats().CompletedAfterEviction; got != 1 {
		t.Fatalf("ghost completion counted as post-eviction: %d", got)
	}
	p.Complete(0, 100, nil)
	p.Complete(-5, 100, nil)
	if got := p.Stats().CompletedAfterEviction; got != 1 {
		t.Fatalf("non-positive IDs counted as post-eviction: %d", got)
	}
}

func TestPatrollerQueueWaitLogged(t *testing.T) {
	p := NewPatroller()
	id := p.Submit("Q", 10)
	p.CompleteWithWait(id, 60, 30, 20, nil)
	e := p.Log()[0]
	if !e.Completed || e.ResponseTime != 30 || e.QueueWait != 20 {
		t.Fatalf("entry = %+v, want ResponseTime=30 QueueWait=20", e)
	}
}

// TestPatrollerConcurrentCompaction hammers submit/complete/Log from many
// goroutines with a small capacity so the ring buffer's compaction path
// (head > 64 && head*2 >= len(order)) runs repeatedly under -race.
func TestPatrollerConcurrentCompaction(t *testing.T) {
	p := NewPatrollerWithCapacity(8)
	const (
		writers = 8
		perW    = 400 // writers × perW >> 64 guarantees many compactions
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				id := p.Submit(fmt.Sprintf("W%dQ%d", w, i), simclock.Time(i))
				p.CompleteWithResponse(id, simclock.Time(i+1), 1, nil)
				if i%16 == 0 {
					for _, e := range p.Log() {
						_ = e.Query
					}
					p.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	if p.Len() != 8 {
		t.Fatalf("retained %d entries, want capacity 8", p.Len())
	}
	st := p.Stats()
	if st.Evicted != writers*perW-8 {
		t.Fatalf("evicted %d, want %d", st.Evicted, writers*perW-8)
	}
	// Every retained entry is internally consistent.
	for _, e := range p.Log() {
		if e.ID <= 0 || e.Query == "" {
			t.Fatalf("corrupt retained entry: %+v", e)
		}
	}
}

func TestPatrollerUnboundedWithNegativeCapacity(t *testing.T) {
	p := NewPatrollerWithCapacity(-1)
	for i := 0; i < DefaultPatrollerCapacity+10; i++ {
		p.Submit("Q", simclock.Time(i))
	}
	if p.Len() != DefaultPatrollerCapacity+10 || p.Evicted() != 0 {
		t.Fatalf("unbounded patroller evicted: len=%d evicted=%d", p.Len(), p.Evicted())
	}
}

package integrator

import (
	"errors"
	"testing"
)

func TestPatrollerSubmitComplete(t *testing.T) {
	p := NewPatroller()
	id1 := p.Submit("Q1", 10)
	id2 := p.Submit("Q2", 20)
	if id1 == id2 {
		t.Fatal("ids must be unique")
	}
	p.Complete(id1, 35, nil)
	p.Complete(id2, 50, errors.New("boom"))
	log := p.Log()
	if len(log) != 2 || p.Len() != 2 {
		t.Fatalf("log size: %d", len(log))
	}
	e1, e2 := log[0], log[1]
	if e1.Query != "Q1" || !e1.Completed || e1.Err != "" {
		t.Fatalf("e1: %+v", e1)
	}
	if e1.ResponseTime != 25 {
		t.Fatalf("e1 response: %v", e1.ResponseTime)
	}
	if e2.Err != "boom" || e2.ResponseTime != 30 {
		t.Fatalf("e2: %+v", e2)
	}
}

func TestPatrollerUnknownCompleteIsNoop(t *testing.T) {
	p := NewPatroller()
	p.Complete(999, 5, nil)
	if p.Len() != 0 {
		t.Fatal("ghost completion must not create entries")
	}
}

func TestPatrollerIncompleteEntries(t *testing.T) {
	p := NewPatroller()
	p.Submit("Q", 1)
	log := p.Log()
	if log[0].Completed || log[0].ResponseTime != 0 {
		t.Fatalf("incomplete entry: %+v", log[0])
	}
}

func TestPatrollerLogIsSnapshot(t *testing.T) {
	p := NewPatroller()
	id := p.Submit("Q", 1)
	snap := p.Log()
	p.Complete(id, 9, nil)
	if snap[0].Completed {
		t.Fatal("snapshot must not see later completion")
	}
}

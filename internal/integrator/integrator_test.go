package integrator_test

import (
	"context"
	"errors"
	"strings"

	"repro/internal/integrator"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/scenario"
	"repro/internal/simclock"
)

func threeServer(t *testing.T) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: 200})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestQuerySingleFragmentEndToEnd(t *testing.T) {
	sc := threeServer(t)
	res, err := sc.II.Query("SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 5000")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Cardinality() != 1 {
		t.Fatalf("rows: %d", res.Rel.Cardinality())
	}
	n := res.Rel.Rows[0][0].Int()
	want := int64(0)
	tab := sc.Servers["S1"].Table("orders")
	for i := 0; i < tab.RowCount(); i++ {
		r, _ := tab.Row(i)
		if r[2].Float() > 5000 {
			want++
		}
	}
	if n != want {
		t.Fatalf("count %d want %d", n, want)
	}
	if res.ResponseTime <= 0 || len(res.FragmentTimes) != 1 {
		t.Fatalf("timing: %+v", res)
	}
}

func TestQueryAdvancesClockAndLogs(t *testing.T) {
	sc := threeServer(t)
	t0 := sc.Clock.Now()
	res, err := sc.II.Query("SELECT COUNT(*) FROM parts AS p")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Clock.Now() != t0+res.ResponseTime {
		t.Fatalf("clock: %v -> %v, response %v", t0, sc.Clock.Now(), res.ResponseTime)
	}
	log := sc.II.Patroller().Log()
	if len(log) != 1 || !log[0].Completed || log[0].Err != "" {
		t.Fatalf("patroller log: %+v", log)
	}
	if log[0].ResponseTime != res.ResponseTime {
		t.Fatal("patroller response time mismatch")
	}
}

func TestQueryCrossSourceMerge(t *testing.T) {
	sc, err := scenario.BuildReplicaPair(scenario.ReplicaOptions{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.II.Query(`SELECT COUNT(*) FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 5000`)
	if err != nil {
		t.Fatal(err)
	}
	// Verify against a single-site computation using raw tables.
	ordersTab := sc.Servers["S1"].Table("orders")
	lineTab := sc.Servers["S2"].Table("lineitem")
	amounts := map[int64]bool{}
	for i := 0; i < ordersTab.RowCount(); i++ {
		r, _ := ordersTab.Row(i)
		if r[2].Float() > 5000 {
			amounts[r[0].Int()] = true
		}
	}
	want := int64(0)
	for i := 0; i < lineTab.RowCount(); i++ {
		r, _ := lineTab.Row(i)
		if amounts[r[1].Int()] {
			want++
		}
	}
	if got := res.Rel.Rows[0][0].Int(); got != want {
		t.Fatalf("cross-source count %d want %d", got, want)
	}
	if len(res.FragmentTimes) != 2 {
		t.Fatalf("fragment times: %+v", res.FragmentTimes)
	}
	if res.MergeTime <= 0 {
		t.Fatal("merge time must be positive")
	}
}

func TestQueryCrossSourceWithAggregationAndOrder(t *testing.T) {
	sc, err := scenario.BuildReplicaPair(scenario.ReplicaOptions{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.II.Query(`SELECT o.o_priority, SUM(l.l_price) AS total
		FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey
		WHERE o.o_amount > 8000
		GROUP BY o.o_priority ORDER BY o.o_priority`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Cardinality() == 0 || res.Rel.Cardinality() > 5 {
		t.Fatalf("groups: %d", res.Rel.Cardinality())
	}
	for i := 1; i < len(res.Rel.Rows); i++ {
		if res.Rel.Rows[i-1][0].Int() > res.Rel.Rows[i][0].Int() {
			t.Fatal("not ordered")
		}
	}
}

func TestQueryFailoverOnDownServer(t *testing.T) {
	sc := threeServer(t)
	// Compile once to find the preferred server, then take it down: the
	// retry path must land the query elsewhere.
	gp, err := sc.II.Compile("SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 5000")
	if err != nil {
		t.Fatal(err)
	}
	preferred := gp.Fragments[0].ServerID
	sc.Servers[preferred].SetDown(true)
	res, err := sc.II.Query("SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 5000")
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Fragments[0].ServerID == preferred {
		t.Fatal("query must avoid the down server")
	}
}

func TestQueryTransientFailureRetries(t *testing.T) {
	sc := threeServer(t)
	gp, err := sc.II.Compile("SELECT COUNT(*) FROM parts AS p")
	if err != nil {
		t.Fatal(err)
	}
	sc.Servers[gp.Fragments[0].ServerID].InjectFailures(1)
	res, err := sc.II.Query("SELECT COUNT(*) FROM parts AS p")
	if err != nil {
		t.Fatal(err)
	}
	if res.Retried == 0 {
		t.Fatal("expected a retry")
	}
}

func TestQueryAllDownFailsAndLogsError(t *testing.T) {
	sc := threeServer(t)
	for _, s := range sc.Servers {
		s.SetDown(true)
	}
	_, err := sc.II.Query("SELECT COUNT(*) FROM parts AS p")
	if err == nil {
		t.Fatal("must fail")
	}
	log := sc.II.Patroller().Log()
	if len(log) != 1 || log[0].Err == "" {
		t.Fatalf("error must be logged: %+v", log)
	}
}

func TestQueryBadSQL(t *testing.T) {
	sc := threeServer(t)
	if _, err := sc.II.Query("SELEKT nothing"); err == nil {
		t.Fatal("bad SQL must fail")
	}
}

type fixedMergeObs struct {
	est []float64
	obs []simclock.Time
}

func (f *fixedMergeObs) ObserveIIMerge(estMS float64, observed simclock.Time) {
	f.est = append(f.est, estMS)
	f.obs = append(f.obs, observed)
}

func TestMergeObserverReceivesPairs(t *testing.T) {
	sc, err := scenario.BuildReplicaPair(scenario.ReplicaOptions{Scale: 200})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild II with the observer attached is invasive; instead go through
	// the public route: scenario does not expose config, so verify via a
	// fresh integrator is overkill here — the qcc package tests the real
	// wiring. Here we just ensure cross-source queries produce merge times.
	res, err := sc.II.Query("SELECT COUNT(*) FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9000")
	if err != nil {
		t.Fatal(err)
	}
	if res.MergeTime <= 0 {
		t.Fatal("merge time")
	}
	_ = fixedMergeObs{}
}

func TestRoutePolicyOverridesWinner(t *testing.T) {
	sc := threeServer(t)
	// A policy that swaps the fragment to a specific server by re-running
	// enumeration is QCC's job; here we exercise the hook with an identity
	// policy and confirm the call path.
	called := false
	sc.II.SetRoute(routeFunc(func(q string, w *optimizer.GlobalPlan) *optimizer.GlobalPlan {
		called = true
		return w
	}))
	if _, err := sc.II.Query("SELECT COUNT(*) FROM parts AS p"); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("route policy not consulted")
	}
}

// routeFunc adapts a func to integrator.RoutePolicy.
type routeFunc func(q string, w *optimizer.GlobalPlan) *optimizer.GlobalPlan

func (f routeFunc) ChooseGlobal(queryText string, winner *optimizer.GlobalPlan) *optimizer.GlobalPlan {
	return f(queryText, winner)
}

// zeroRetryII builds a second II over the scenario's plumbing with retries
// disabled — the configuration Config.Retries exists to make expressible.
func customII(sc *scenario.Scenario, cfg integrator.Config) *integrator.II {
	cfg.Catalog = sc.Catalog
	cfg.MW = sc.MW
	cfg.Node = sc.IINode
	cfg.Clock = sc.Clock
	return integrator.New(cfg)
}

func TestZeroRetriesIsExpressible(t *testing.T) {
	sc := threeServer(t)
	ii := customII(sc, integrator.Config{Retries: integrator.RetryCount(0)})
	gp, err := ii.Compile("SELECT COUNT(*) FROM parts AS p")
	if err != nil {
		t.Fatal(err)
	}
	// One transient failure on the chosen server: with zero retries the query
	// must fail outright instead of re-optimizing around it.
	sc.Servers[gp.Fragments[0].ServerID].InjectFailures(1)
	_, err = ii.Query("SELECT COUNT(*) FROM parts AS p")
	if err == nil {
		t.Fatal("zero retries must surface the first failure")
	}
	if !strings.Contains(err.Error(), "after 0 retries") {
		t.Fatalf("retry count in message: %v", err)
	}
}

func TestRetryMessageCountsRetries(t *testing.T) {
	sc := threeServer(t)
	// Default retries (2): three consecutive attempt failures exhaust them.
	// Every server gets enough injected failures that re-optimization cannot
	// escape.
	for _, s := range sc.Servers {
		s.InjectFailures(3)
	}
	_, err := sc.II.Query("SELECT COUNT(*) FROM parts AS p")
	if err == nil {
		t.Fatal("expected failure after exhausted retries")
	}
	if !strings.Contains(err.Error(), "after 2 retries") {
		t.Fatalf("message must report the true retry count: %v", err)
	}
}

func TestNegativeRetriesTreatedAsZero(t *testing.T) {
	sc := threeServer(t)
	ii := customII(sc, integrator.Config{Retries: integrator.RetryCount(-5)})
	gp, err := ii.Compile("SELECT COUNT(*) FROM parts AS p")
	if err != nil {
		t.Fatal(err)
	}
	sc.Servers[gp.Fragments[0].ServerID].InjectFailures(1)
	if _, err := ii.Query("SELECT COUNT(*) FROM parts AS p"); err == nil {
		t.Fatal("negative retries must behave like zero")
	}
}

func TestQueryContextPreCancelled(t *testing.T) {
	sc := threeServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sc.II.QueryContext(ctx, "SELECT COUNT(*) FROM parts AS p")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	log := sc.II.Patroller().Log()
	if len(log) != 1 || log[0].Err == "" {
		t.Fatalf("cancelled query must be logged with its error: %+v", log)
	}
	// The integrator must stay healthy for the next caller.
	if _, err := sc.II.Query("SELECT COUNT(*) FROM parts AS p"); err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
}

func TestFragmentBudgetFailsSlowDispatch(t *testing.T) {
	sc := threeServer(t)
	// A sub-millisecond budget is unmeetable for any real fragment; with
	// retries disabled the deadline error must surface to the caller.
	ii := customII(sc, integrator.Config{
		Retries:        integrator.RetryCount(0),
		FragmentBudget: 1e-9,
	})
	_, err := ii.Query("SELECT COUNT(*) FROM parts AS p")
	if err == nil {
		t.Fatal("unmeetable fragment budget must fail the query")
	}
	var de *simclock.ErrDeadlineExceeded
	if !errors.As(err, &de) {
		t.Fatalf("want ErrDeadlineExceeded in chain, got %v", err)
	}
}

package integrator

import (
	"container/list"
	"sync"

	"repro/internal/optimizer"
	"repro/internal/simclock"
	"repro/internal/sqlparser"
)

// The federated plan cache reuses the EXPENSIVE head of compilation — parse,
// decomposition, and the meta-wrapper round-trips to every candidate
// server's planner — across queries of the same type. A hit re-runs only the
// cheap tail: the CURRENT calibration factors are applied to the cached raw
// estimates, the winner is re-picked, and the load-distribution route policy
// gets its say, with zero MW/wrapper/remote-planner traffic. This is the
// compile-time counterpart of the paper's §3.1 premise: calibration learned
// from past executions applies to future instances of the same query type,
// so the per-instance work left at compile time is only the calibration
// arithmetic.
//
// Entries are grouped under the statement's CANONICAL form
// (sqlparser.CanonicalizeSQL) — the same identity QCC keeps calibration
// factors under — with one variant per exact statement text. The canonical
// key is what eviction and invalidation operate on: parameter variants share
// tables, candidate servers and calibration state, so whatever invalidates
// one variant invalidates its siblings. The exact text keys the variant
// because literal values legitimately change remote estimates, plan choices
// and results; reusing another variant's parsed statement would return the
// wrong rows.
//
// Invalidation (the correctness half of the design):
//
//   - "version": a candidate server's table mutation counter moved since the
//     explain that produced the cached estimates (update bursts,
//     replication). Snapshots ride in through the wrapper candidate API.
//   - "mask":    a relevant server's MetaWrapper mask flipped in either
//     direction — a masked server contributed no candidates, an unmasked one
//     is missing from the cached candidate sets.
//   - "stale":   the entry outlived the staleness bound (aligned with the
//     load balancer's rotation refresh interval by default).
//   - "capacity": LRU/variant-bound eviction.
//   - "clear":   explicit invalidation (Clear).
//
// Calibration-factor changes and QCC availability fencing need NO
// invalidation: factors are re-applied on every hit, and a fenced server's
// candidates calibrate to +Inf and drop out of the re-pick.
const (
	InvalidateVersion  = "version"
	InvalidateMask     = "mask"
	InvalidateStale    = "stale"
	InvalidateCapacity = "capacity"
	InvalidateClear    = "clear"
)

// PlanCacheConfig tunes the II-level federated plan cache. The zero value
// enables the cache with defaults.
type PlanCacheConfig struct {
	// Capacity bounds the number of canonical statement entries (LRU
	// eviction; default 512).
	Capacity int
	// MaxVariants bounds the parameter variants retained per canonical entry
	// (FIFO within the entry; default 8).
	MaxVariants int
	// MaxAge is the staleness bound in simulated ms: entries older than this
	// re-compile from scratch. Default 2000, matching the load balancer's
	// default rotation RefreshInterval; QCC wiring overrides it with the
	// configured interval.
	MaxAge simclock.Time
	// Disabled turns the cache off entirely (every compile is cold).
	Disabled bool
}

// DefaultPlanCacheMaxAge matches qcc.LBConfig's default RefreshInterval.
const DefaultPlanCacheMaxAge = simclock.Time(2000)

func (c *PlanCacheConfig) fill() {
	if c.Capacity <= 0 {
		c.Capacity = 512
	}
	if c.MaxVariants <= 0 {
		c.MaxVariants = 8
	}
	if c.MaxAge <= 0 {
		c.MaxAge = DefaultPlanCacheMaxAge
	}
}

// PlanCacheStats is a snapshot of the federated plan cache's counters.
type PlanCacheStats struct {
	// Hits counts compiles served from a valid cached entry.
	Hits int64
	// Misses counts cold compiles: not-cached, invalidated on lookup, or
	// cached options unusable (every candidate excluded or fenced).
	Misses int64
	// Entries is the live canonical-entry count; Variants the total exact
	// statement texts cached across them.
	Entries  int
	Variants int
	// Invalidations counts removed entries by cause ("version", "mask",
	// "stale", "capacity", "clear").
	Invalidations map[string]int64
}

// cachedCompilation is the reusable compile artifact for one exact
// statement text.
type cachedCompilation struct {
	sql    string
	stmt   *sqlparser.SelectStmt
	decomp *optimizer.Decomposition
	frags  []optimizer.FragmentOptions
	// fragTables caches each fragment's referenced table names for version
	// validation.
	fragTables [][]string
	// maskSnap records the mask state of every relevant server at insert
	// time; servers is its sorted-ish key list (insertion order).
	maskSnap map[string]bool
	servers  []string
	// insertedAt drives the staleness bound.
	insertedAt simclock.Time
}

// cacheEntry groups the variants of one canonical statement form.
type cacheEntry struct {
	canonical string
	variants  map[string]*cachedCompilation
	// order is the variant insertion order (FIFO bound).
	order []string
}

// planCache is the federated plan cache. It is pure bookkeeping: validation
// against current mask/version state lives in II.compile, which owns the
// meta-wrapper access.
type planCache struct {
	mu          sync.Mutex
	capacity    int
	maxVariants int
	maxAge      simclock.Time
	enabled     bool

	entries map[string]*list.Element // canonical → element
	lru     *list.List               // most-recently-used first
	// bySQL indexes exact statement text straight to the canonical entry, so
	// a warm lookup needs no lexing at all.
	bySQL map[string]*list.Element

	hits, misses  int64
	invalidations map[string]int64
}

func newPlanCache(cfg PlanCacheConfig) *planCache {
	cfg.fill()
	return &planCache{
		capacity:      cfg.Capacity,
		maxVariants:   cfg.MaxVariants,
		maxAge:        cfg.MaxAge,
		enabled:       !cfg.Disabled,
		entries:       map[string]*list.Element{},
		lru:           list.New(),
		bySQL:         map[string]*list.Element{},
		invalidations: map[string]int64{},
	}
}

// lookup returns the cached compilation for the exact statement text and
// bumps the entry's recency. A nil return was already counted as a miss
// (unless the cache is disabled, which counts nothing).
func (pc *planCache) lookup(sql string) *cachedCompilation {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if !pc.enabled {
		return nil
	}
	el, ok := pc.bySQL[sql]
	if !ok {
		pc.misses++
		return nil
	}
	pc.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).variants[sql]
}

// recordHit counts a validated warm compile.
func (pc *planCache) recordHit() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.hits++
}

// recordMiss counts a cold fallback after an unusable (but still valid)
// cached entry — every candidate excluded or fenced.
func (pc *planCache) recordMiss() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.misses++
}

// invalidate removes the canonical entry containing sql (all its variants:
// parameter siblings share the state that went stale) and counts the lookup
// that found it as a miss.
func (pc *planCache) invalidate(sql, cause string) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.misses++
	el, ok := pc.bySQL[sql]
	if !ok {
		return
	}
	pc.removeLocked(el, cause)
}

func (pc *planCache) removeLocked(el *list.Element, cause string) {
	e := el.Value.(*cacheEntry)
	for variant := range e.variants {
		delete(pc.bySQL, variant)
	}
	delete(pc.entries, e.canonical)
	pc.lru.Remove(el)
	pc.invalidations[cause]++
}

// insert stores a fresh compilation under its canonical form, evicting LRU
// entries over capacity and the oldest parameter variant over the per-entry
// bound.
func (pc *planCache) insert(cc *cachedCompilation) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if !pc.enabled {
		return
	}
	canonical := sqlparser.CanonicalizeSQL(cc.sql)
	el, ok := pc.entries[canonical]
	if !ok {
		e := &cacheEntry{canonical: canonical, variants: map[string]*cachedCompilation{}}
		el = pc.lru.PushFront(e)
		pc.entries[canonical] = el
		for pc.lru.Len() > pc.capacity {
			pc.removeLocked(pc.lru.Back(), InvalidateCapacity)
		}
	} else {
		pc.lru.MoveToFront(el)
	}
	e := el.Value.(*cacheEntry)
	if _, exists := e.variants[cc.sql]; !exists {
		e.order = append(e.order, cc.sql)
		if len(e.order) > pc.maxVariants {
			evict := e.order[0]
			e.order = e.order[1:]
			delete(e.variants, evict)
			delete(pc.bySQL, evict)
			pc.invalidations[InvalidateCapacity]++
		}
	}
	e.variants[cc.sql] = cc
	pc.bySQL[cc.sql] = el
}

// clear drops every entry, counting them under the given cause.
func (pc *planCache) clear(cause string) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	n := int64(len(pc.entries))
	pc.entries = map[string]*list.Element{}
	pc.bySQL = map[string]*list.Element{}
	pc.lru.Init()
	if n > 0 {
		pc.invalidations[cause] += n
	}
}

func (pc *planCache) setEnabled(enabled bool) {
	pc.mu.Lock()
	wasEnabled := pc.enabled
	pc.enabled = enabled
	pc.mu.Unlock()
	if wasEnabled && !enabled {
		pc.clear(InvalidateClear)
	}
}

func (pc *planCache) setMaxAge(maxAge simclock.Time) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if maxAge > 0 {
		pc.maxAge = maxAge
	}
}

func (pc *planCache) staleness() simclock.Time {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.maxAge
}

func (pc *planCache) snapshot() PlanCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	s := PlanCacheStats{
		Hits:          pc.hits,
		Misses:        pc.misses,
		Entries:       len(pc.entries),
		Invalidations: make(map[string]int64, len(pc.invalidations)),
	}
	for el := pc.lru.Front(); el != nil; el = el.Next() {
		s.Variants += len(el.Value.(*cacheEntry).variants)
	}
	for cause, n := range pc.invalidations {
		s.Invalidations[cause] = n
	}
	return s
}

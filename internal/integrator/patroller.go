package integrator

import (
	"errors"
	"sort"
	"sync"

	"repro/internal/admission"
	"repro/internal/simclock"
)

// LogEntry is one query patroller record: statement, submission time and
// completion time (§1: "the user query statement and query submission time
// are recorded ... Query Patroller records the query completion time in the
// log for future use").
type LogEntry struct {
	ID         int64
	Query      string
	SubmitAt   simclock.Time
	CompleteAt simclock.Time
	Completed  bool
	// Err is the failure text for unsuccessful queries; QCC mines these for
	// down-event detection.
	Err string
	// ResponseTime is CompleteAt - SubmitAt for completed queries.
	ResponseTime simclock.Time
	// QueueWait is the virtual time the query spent in the admission queue
	// before execution began (zero when admission is disabled or the query
	// was admitted immediately). It is excluded from ResponseTime, so QCC's
	// calibration observations stay pure execution time.
	QueueWait simclock.Time
	// Tenant names the tenant that submitted the query ("" when untagged).
	Tenant string
}

// DefaultPatrollerCapacity is the retention bound used when no explicit
// capacity is configured.
const DefaultPatrollerCapacity = 4096

// Patroller is the query patroller: the intercepting logger in front of the
// integrator. Retention is bounded: once more than `capacity` entries have
// been submitted, the oldest are evicted ring-buffer style — `order` keeps a
// moving head index instead of reslicing on every eviction, and compacts
// amortized O(1) — so a sustained workload cannot grow the log without
// bound. Log and Len cover the retained window only.
type Patroller struct {
	mu      sync.Mutex
	nextID  int64
	entries map[int64]*LogEntry
	order   []int64
	// head indexes the oldest retained entry in order.
	head int
	// capacity bounds retained entries; <= 0 means unbounded.
	capacity int
	evicted  int64
	// completedAfterEviction counts completions that arrived for entries the
	// retention bound had already dropped; without the counter those
	// completions would vanish silently.
	completedAfterEviction int64
	// tenants tallies per-tenant outcomes across the log's whole lifetime
	// (evictions do not erase them). The map is bounded by maxTenantTallies:
	// outcomes for tenants beyond the bound are counted only in
	// tenantsDropped, so a tenant-name cardinality explosion cannot grow the
	// patroller without limit.
	tenants        map[string]*tenantTally
	tenantsDropped int64
}

// maxTenantTallies bounds the per-tenant accounting map; Stats reports the
// top entries by served cost.
const maxTenantTallies = 32

// tenantTally is one tenant's lifetime outcome counters.
type tenantTally struct {
	completed int64
	failed    int64
	shed      int64
	served    simclock.Time
	wait      simclock.Time
}

// NewPatroller returns an empty patroller with the default retention bound.
func NewPatroller() *Patroller {
	return NewPatrollerWithCapacity(0)
}

// NewPatrollerWithCapacity returns an empty patroller retaining up to
// capacity entries: 0 selects DefaultPatrollerCapacity, negative disables
// the bound.
func NewPatrollerWithCapacity(capacity int) *Patroller {
	if capacity == 0 {
		capacity = DefaultPatrollerCapacity
	}
	return &Patroller{entries: map[int64]*LogEntry{}, capacity: capacity, tenants: map[string]*tenantTally{}}
}

// Submit records a query submission and returns its log ID.
func (p *Patroller) Submit(query string, at simclock.Time) int64 {
	return p.SubmitTenant(query, at, "")
}

// SubmitTenant records a submission tagged with the submitting tenant (""
// for untagged queries, equivalent to Submit).
func (p *Patroller) SubmitTenant(query string, at simclock.Time, tenant string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextID++
	id := p.nextID
	p.entries[id] = &LogEntry{ID: id, Query: query, SubmitAt: at, Tenant: tenant}
	p.order = append(p.order, id)
	if p.capacity > 0 {
		for len(p.order)-p.head > p.capacity {
			delete(p.entries, p.order[p.head])
			p.order[p.head] = 0
			p.head++
			p.evicted++
		}
		// Compact once the dead prefix dominates, amortizing to O(1).
		if p.head > 64 && p.head*2 >= len(p.order) {
			p.order = append(p.order[:0:0], p.order[p.head:]...)
			p.head = 0
		}
	}
	return id
}

// Complete records a query completion (or failure). The response time is
// derived as CompleteAt - SubmitAt, which is only meaningful for
// sequentially submitted queries; concurrent submitters use
// CompleteWithResponse.
func (p *Patroller) Complete(id int64, at simclock.Time, err error) {
	p.complete(id, at, -1, 0, err)
}

// CompleteWithResponse records a completion with an explicit response time.
// Under concurrent submission the gap between a query's submit and complete
// timestamps spans other queries' serialized virtual-time charges, so the
// caller supplies the query's own response time instead.
func (p *Patroller) CompleteWithResponse(id int64, at, responseTime simclock.Time, err error) {
	p.complete(id, at, responseTime, 0, err)
}

// CompleteWithWait records a completion with an explicit response time plus
// the admission queue wait that preceded execution. ResponseTime stays pure
// execution time; the wait is logged alongside it.
func (p *Patroller) CompleteWithWait(id int64, at, responseTime, queueWait simclock.Time, err error) {
	p.complete(id, at, responseTime, queueWait, err)
}

func (p *Patroller) complete(id int64, at, responseTime, queueWait simclock.Time, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[id]
	if !ok {
		// A completion for an ID we handed out but no longer retain means the
		// retention bound evicted the entry mid-flight; count it rather than
		// dropping the completion without a trace.
		if id > 0 && id <= p.nextID {
			p.completedAfterEviction++
		}
		return
	}
	e.Completed = true
	e.CompleteAt = at
	if responseTime >= 0 {
		e.ResponseTime = responseTime
	} else {
		e.ResponseTime = at - e.SubmitAt
	}
	e.QueueWait = queueWait
	if err != nil {
		e.Err = err.Error()
	}
	if tt := p.tenantTallyLocked(e.Tenant); tt != nil {
		if err != nil {
			tt.failed++
			if errors.Is(err, admission.ErrAdmissionRejected) {
				tt.shed++
			}
		} else {
			tt.completed++
			tt.served += e.ResponseTime
			tt.wait += queueWait
		}
	}
}

// tenantTallyLocked resolves (or creates) the tally for a tenant, honouring
// the cardinality bound: once maxTenantTallies distinct tenants are tracked,
// outcomes for new names only bump tenantsDropped.
func (p *Patroller) tenantTallyLocked(tenant string) *tenantTally {
	if tenant == "" {
		return nil
	}
	if tt, ok := p.tenants[tenant]; ok {
		return tt
	}
	if len(p.tenants) >= maxTenantTallies {
		p.tenantsDropped++
		return nil
	}
	tt := &tenantTally{}
	p.tenants[tenant] = tt
	return tt
}

// Log returns a snapshot of the retained entries in submission order.
func (p *Patroller) Log() []LogEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]LogEntry, 0, len(p.order)-p.head)
	for _, id := range p.order[p.head:] {
		out = append(out, *p.entries[id])
	}
	return out
}

// Len returns the number of retained log entries.
func (p *Patroller) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.order) - p.head
}

// Evicted returns how many entries the retention bound has dropped.
func (p *Patroller) Evicted() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evicted
}

// Capacity returns the retention bound (<= 0 means unbounded).
func (p *Patroller) Capacity() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity
}

// PatrollerStats is a snapshot of the patroller's retention accounting.
type PatrollerStats struct {
	// Retained is the number of entries currently in the log window.
	Retained int
	// Evicted counts entries the retention bound has dropped.
	Evicted int64
	// CompletedAfterEviction counts completions that arrived after their
	// entry had been evicted (the completion itself was not recorded).
	CompletedAfterEviction int64
	// Tenants is the per-tenant outcome accounting, sorted by served cost
	// descending (ties by name). It covers the log's whole lifetime, not just
	// the retained window, and is bounded: at most maxTenantTallies tenants
	// are tracked, with overflow counted in TenantsDropped.
	Tenants []PatrollerTenantStats
	// TenantsDropped counts completions whose tenant could not be tallied
	// because the per-tenant map was already at its cardinality bound.
	TenantsDropped int64
}

// PatrollerTenantStats is one tenant's slice of the query log accounting.
type PatrollerTenantStats struct {
	Name      string
	Completed int64
	Failed    int64
	// Shed is the subset of Failed that were typed admission refusals.
	Shed int64
	// ServedCostMS sums the response times of the tenant's completed queries.
	ServedCostMS simclock.Time
	// TotalQueueWait sums the admission queue waits of completed queries.
	TotalQueueWait simclock.Time
}

// Stats snapshots the retention counters.
func (p *Patroller) Stats() PatrollerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PatrollerStats{
		Retained:               len(p.order) - p.head,
		Evicted:                p.evicted,
		CompletedAfterEviction: p.completedAfterEviction,
		TenantsDropped:         p.tenantsDropped,
	}
	for name, tt := range p.tenants {
		st.Tenants = append(st.Tenants, PatrollerTenantStats{
			Name:           name,
			Completed:      tt.completed,
			Failed:         tt.failed,
			Shed:           tt.shed,
			ServedCostMS:   tt.served,
			TotalQueueWait: tt.wait,
		})
	}
	sort.Slice(st.Tenants, func(i, j int) bool {
		if st.Tenants[i].ServedCostMS != st.Tenants[j].ServedCostMS {
			return st.Tenants[i].ServedCostMS > st.Tenants[j].ServedCostMS
		}
		return st.Tenants[i].Name < st.Tenants[j].Name
	})
	return st
}

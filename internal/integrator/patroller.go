package integrator

import (
	"sync"

	"repro/internal/simclock"
)

// LogEntry is one query patroller record: statement, submission time and
// completion time (§1: "the user query statement and query submission time
// are recorded ... Query Patroller records the query completion time in the
// log for future use").
type LogEntry struct {
	ID         int64
	Query      string
	SubmitAt   simclock.Time
	CompleteAt simclock.Time
	Completed  bool
	// Err is the failure text for unsuccessful queries; QCC mines these for
	// down-event detection.
	Err string
	// ResponseTime is CompleteAt - SubmitAt for completed queries.
	ResponseTime simclock.Time
	// QueueWait is the virtual time the query spent in the admission queue
	// before execution began (zero when admission is disabled or the query
	// was admitted immediately). It is excluded from ResponseTime, so QCC's
	// calibration observations stay pure execution time.
	QueueWait simclock.Time
}

// DefaultPatrollerCapacity is the retention bound used when no explicit
// capacity is configured.
const DefaultPatrollerCapacity = 4096

// Patroller is the query patroller: the intercepting logger in front of the
// integrator. Retention is bounded: once more than `capacity` entries have
// been submitted, the oldest are evicted ring-buffer style — `order` keeps a
// moving head index instead of reslicing on every eviction, and compacts
// amortized O(1) — so a sustained workload cannot grow the log without
// bound. Log and Len cover the retained window only.
type Patroller struct {
	mu      sync.Mutex
	nextID  int64
	entries map[int64]*LogEntry
	order   []int64
	// head indexes the oldest retained entry in order.
	head int
	// capacity bounds retained entries; <= 0 means unbounded.
	capacity int
	evicted  int64
	// completedAfterEviction counts completions that arrived for entries the
	// retention bound had already dropped; without the counter those
	// completions would vanish silently.
	completedAfterEviction int64
}

// NewPatroller returns an empty patroller with the default retention bound.
func NewPatroller() *Patroller {
	return NewPatrollerWithCapacity(0)
}

// NewPatrollerWithCapacity returns an empty patroller retaining up to
// capacity entries: 0 selects DefaultPatrollerCapacity, negative disables
// the bound.
func NewPatrollerWithCapacity(capacity int) *Patroller {
	if capacity == 0 {
		capacity = DefaultPatrollerCapacity
	}
	return &Patroller{entries: map[int64]*LogEntry{}, capacity: capacity}
}

// Submit records a query submission and returns its log ID.
func (p *Patroller) Submit(query string, at simclock.Time) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextID++
	id := p.nextID
	p.entries[id] = &LogEntry{ID: id, Query: query, SubmitAt: at}
	p.order = append(p.order, id)
	if p.capacity > 0 {
		for len(p.order)-p.head > p.capacity {
			delete(p.entries, p.order[p.head])
			p.order[p.head] = 0
			p.head++
			p.evicted++
		}
		// Compact once the dead prefix dominates, amortizing to O(1).
		if p.head > 64 && p.head*2 >= len(p.order) {
			p.order = append(p.order[:0:0], p.order[p.head:]...)
			p.head = 0
		}
	}
	return id
}

// Complete records a query completion (or failure). The response time is
// derived as CompleteAt - SubmitAt, which is only meaningful for
// sequentially submitted queries; concurrent submitters use
// CompleteWithResponse.
func (p *Patroller) Complete(id int64, at simclock.Time, err error) {
	p.complete(id, at, -1, 0, err)
}

// CompleteWithResponse records a completion with an explicit response time.
// Under concurrent submission the gap between a query's submit and complete
// timestamps spans other queries' serialized virtual-time charges, so the
// caller supplies the query's own response time instead.
func (p *Patroller) CompleteWithResponse(id int64, at, responseTime simclock.Time, err error) {
	p.complete(id, at, responseTime, 0, err)
}

// CompleteWithWait records a completion with an explicit response time plus
// the admission queue wait that preceded execution. ResponseTime stays pure
// execution time; the wait is logged alongside it.
func (p *Patroller) CompleteWithWait(id int64, at, responseTime, queueWait simclock.Time, err error) {
	p.complete(id, at, responseTime, queueWait, err)
}

func (p *Patroller) complete(id int64, at, responseTime, queueWait simclock.Time, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[id]
	if !ok {
		// A completion for an ID we handed out but no longer retain means the
		// retention bound evicted the entry mid-flight; count it rather than
		// dropping the completion without a trace.
		if id > 0 && id <= p.nextID {
			p.completedAfterEviction++
		}
		return
	}
	e.Completed = true
	e.CompleteAt = at
	if responseTime >= 0 {
		e.ResponseTime = responseTime
	} else {
		e.ResponseTime = at - e.SubmitAt
	}
	e.QueueWait = queueWait
	if err != nil {
		e.Err = err.Error()
	}
}

// Log returns a snapshot of the retained entries in submission order.
func (p *Patroller) Log() []LogEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]LogEntry, 0, len(p.order)-p.head)
	for _, id := range p.order[p.head:] {
		out = append(out, *p.entries[id])
	}
	return out
}

// Len returns the number of retained log entries.
func (p *Patroller) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.order) - p.head
}

// Evicted returns how many entries the retention bound has dropped.
func (p *Patroller) Evicted() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evicted
}

// Capacity returns the retention bound (<= 0 means unbounded).
func (p *Patroller) Capacity() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity
}

// PatrollerStats is a snapshot of the patroller's retention accounting.
type PatrollerStats struct {
	// Retained is the number of entries currently in the log window.
	Retained int
	// Evicted counts entries the retention bound has dropped.
	Evicted int64
	// CompletedAfterEviction counts completions that arrived after their
	// entry had been evicted (the completion itself was not recorded).
	CompletedAfterEviction int64
}

// Stats snapshots the retention counters.
func (p *Patroller) Stats() PatrollerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PatrollerStats{
		Retained:               len(p.order) - p.head,
		Evicted:                p.evicted,
		CompletedAfterEviction: p.completedAfterEviction,
	}
}

package optimizer_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/scenario"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

func shardedScenario(t *testing.T, shards int, method catalog.ShardMethod) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.BuildSharded(scenario.ShardedOptions{
		Shards: shards,
		Scale:  200,
		Method: method,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func executedShards(t *testing.T, sc *scenario.Scenario, sql string, opts optimizer.DecomposeOpts) (*optimizer.Decomposition, []int) {
	t.Helper()
	d, err := optimizer.DecomposeWith(sqlparser.MustParse(sql), sc.Catalog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Sharded == nil {
		t.Fatalf("expected a sharded plan for %q", sql)
	}
	return d, d.Sharded.Executed
}

func TestDecomposeShardedScatter(t *testing.T) {
	sc := shardedScenario(t, 4, catalog.ShardHash)
	d, exec := executedShards(t, sc, "SELECT l_id FROM lineitem", optimizer.DecomposeOpts{})
	if !reflect.DeepEqual(exec, []int{0, 1, 2, 3}) {
		t.Fatalf("executed: %v", exec)
	}
	if len(d.Fragments) != 4 || d.SingleFragment {
		t.Fatalf("expected 4 scatter fragments: %+v", d)
	}
	for i, f := range d.Fragments {
		if f.ID != fmt.Sprintf("QF1.s%d", i) {
			t.Fatalf("fragment %d id %s", i, f.ID)
		}
		if f.Shard == nil || f.Shard.Of != "QF1" || f.Shard.Index != i {
			t.Fatalf("fragment %d shard ref: %+v", i, f.Shard)
		}
		want := catalog.ShardTableName("lineitem", i)
		if f.Stmt.From.Name != want || f.Stmt.From.EffectiveName() != "lineitem" {
			t.Fatalf("fragment %d FROM %q AS %q", i, f.Stmt.From.Name, f.Stmt.From.EffectiveName())
		}
		if f.Candidates[0] != fmt.Sprintf("S%d", i+1) {
			t.Fatalf("fragment %d candidates %v", i, f.Candidates)
		}
	}
}

func TestDecomposeShardedEqPrunesToSingleFragment(t *testing.T) {
	sc := shardedScenario(t, 4, catalog.ShardHash)
	spec := &catalog.ShardSpec{Column: "l_orderkey"}
	want := spec.ShardFor(sqltypes.NewInt(123), 4)
	d, exec := executedShards(t, sc,
		"SELECT l_id FROM lineitem WHERE l_orderkey = 123", optimizer.DecomposeOpts{})
	if !reflect.DeepEqual(exec, []int{want}) {
		t.Fatalf("executed %v, want [%d]", exec, want)
	}
	// One surviving shard gets the whole statement, like an unsharded plan.
	if !d.SingleFragment || len(d.Fragments) != 1 {
		t.Fatalf("expected a single pushed fragment: %+v", d)
	}
	if d.Fragments[0].ID != fmt.Sprintf("QF1.s%d", want) {
		t.Fatalf("fragment id %s", d.Fragments[0].ID)
	}
}

func TestDecomposeShardedRangePruning(t *testing.T) {
	// Scale 200 → 500 rows, bounds [125, 250, 375].
	sc := shardedScenario(t, 4, catalog.ShardRange)
	cases := []struct {
		where string
		want  []int
	}{
		{"l_orderkey < 125", []int{0}},
		{"l_orderkey <= 125", []int{0, 1}},
		{"l_orderkey > 250", []int{2, 3}},
		{"l_orderkey >= 250", []int{2, 3}},
		{"l_orderkey >= 249", []int{1, 2, 3}},
		{"130 > l_orderkey", []int{0, 1}}, // literal-first comparison flips
		{"l_orderkey BETWEEN 130 AND 260", []int{1, 2}},
		{"l_orderkey IS NULL", []int{0}},                  // NULLs sort below every bound
		{"l_orderkey = 5 AND l_orderkey = 400", []int{0}}, // unsatisfiable keeps one shard
		{"l_qty < 10", []int{0, 1, 2, 3}},                 // non-key predicate keeps all
	}
	for _, c := range cases {
		_, exec := executedShards(t, sc,
			"SELECT l_id FROM lineitem WHERE "+c.where, optimizer.DecomposeOpts{})
		if !reflect.DeepEqual(exec, c.want) {
			t.Errorf("WHERE %s: executed %v, want %v", c.where, exec, c.want)
		}
	}
	// Pruning off scatter-gathers everything regardless of predicates.
	_, exec := executedShards(t, sc,
		"SELECT l_id FROM lineitem WHERE l_orderkey < 125",
		optimizer.DecomposeOpts{DisablePruning: true})
	if !reflect.DeepEqual(exec, []int{0, 1, 2, 3}) {
		t.Fatalf("pruning disabled: executed %v", exec)
	}
}

func TestDecomposeShardedInPruning(t *testing.T) {
	sc := shardedScenario(t, 4, catalog.ShardHash)
	spec := &catalog.ShardSpec{Column: "l_orderkey"}
	wantSet := map[int]bool{
		spec.ShardFor(sqltypes.NewInt(7), 4):  true,
		spec.ShardFor(sqltypes.NewInt(88), 4): true,
	}
	var want []int
	for i := 0; i < 4; i++ {
		if wantSet[i] {
			want = append(want, i)
		}
	}
	_, exec := executedShards(t, sc,
		"SELECT l_id FROM lineitem WHERE l_orderkey IN (7, 88)", optimizer.DecomposeOpts{})
	if !reflect.DeepEqual(exec, want) {
		t.Fatalf("executed %v, want %v", exec, want)
	}
}

func TestDecomposeShardedPartialAggPushdown(t *testing.T) {
	sc := shardedScenario(t, 4, catalog.ShardHash)
	d, _ := executedShards(t, sc,
		"SELECT l_tag, SUM(l_price), AVG(l_qty), COUNT(*) FROM lineitem GROUP BY l_tag",
		optimizer.DecomposeOpts{})
	if d.Sharded.Partial == nil {
		t.Fatal("expected partial aggregation pushdown")
	}
	if len(d.Fragments) != 4 {
		t.Fatalf("fragments: %d", len(d.Fragments))
	}
	f := d.Fragments[0]
	// Per-shard layout: group keys then partial states s0.. (AVG ships two).
	wantCols := []string{"l_tag", "s0", "s1", "s2", "s3"}
	if f.Schema.Len() != len(wantCols) {
		t.Fatalf("partial schema: %v", f.Schema)
	}
	for i, name := range wantCols {
		if f.Schema.Columns[i].Name != name {
			t.Fatalf("partial schema col %d = %q, want %q", i, f.Schema.Columns[i].Name, name)
		}
	}
	// The shard statement keeps WHERE/GROUP BY but swaps the select list.
	if len(f.Stmt.Select) != 5 { // l_tag + SUM + (SUM,COUNT for AVG) + COUNT(*)
		t.Fatalf("shard select list: %v", f.Stmt.Select)
	}
	// Pushdown off ships whole rows instead.
	d2, _ := executedShards(t, sc,
		"SELECT l_tag, SUM(l_price), AVG(l_qty), COUNT(*) FROM lineitem GROUP BY l_tag",
		optimizer.DecomposeOpts{DisablePushdown: true})
	if d2.Sharded.Partial != nil {
		t.Fatal("pushdown disabled must not plan partial aggregation")
	}
	if !d2.Fragments[0].Stmt.Select[0].Star {
		t.Fatalf("ship-all-rows fragment must SELECT *: %v", d2.Fragments[0].Stmt.Select)
	}
}

func TestDecomposeShardedJoinGathers(t *testing.T) {
	sc := shardedScenario(t, 4, catalog.ShardHash)
	stmt := sqlparser.MustParse(
		"SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE l.l_qty < 5")
	d, err := optimizer.Decompose(stmt, sc.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if d.SingleFragment {
		t.Fatal("sharded table must not join remotely")
	}
	// orders forms QF1; the sharded lineitem scatters as QF2.s0..s3.
	if len(d.Fragments) != 5 {
		t.Fatalf("fragments: %d", len(d.Fragments))
	}
	if d.Fragments[0].ID != "QF1" || d.Fragments[0].Shard != nil {
		t.Fatalf("first fragment: %+v", d.Fragments[0])
	}
	for i, f := range d.Fragments[1:] {
		if f.ID != fmt.Sprintf("QF2.s%d", i) || f.Shard == nil || f.Shard.Of != "QF2" {
			t.Fatalf("shard fragment %d: %+v", i, f)
		}
		if f.Stmt.Where == nil {
			t.Fatalf("shard fragment %d must carry the pushed l_qty predicate", i)
		}
	}
	if len(d.Cross) != 1 {
		t.Fatalf("cross conjuncts: %v", d.Cross)
	}
}

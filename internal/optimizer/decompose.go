// Package optimizer implements the integrator's global query optimization:
// decomposing a federated query into per-source fragments (the paper's QF1,
// QF2, ...), collecting candidate plans and calibrated costs for each
// fragment through the meta-wrapper, enumerating global plan combinations,
// costing local merge work at the integrator, and selecting the winner that
// is stored in the explain table.
package optimizer

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// FragmentSpec is one fragment of a decomposed federated query.
type FragmentSpec struct {
	// ID names the fragment (QF1, QF2, ... in paper notation).
	ID string
	// Tables are the query tables covered by this fragment.
	Tables []sqlparser.TableRef
	// Stmt is the fragment statement shipped to remote servers.
	Stmt *sqlparser.SelectStmt
	// Candidates are the servers hosting every table of the fragment —
	// the equivalent data sources.
	Candidates []string
	// Schema is the qualified schema of the fragment's result.
	Schema *sqltypes.Schema
	// Shard is non-nil when the fragment covers one shard of a sharded
	// nickname; fragments sharing Shard.Of concatenate at the integrator.
	Shard *ShardRef
}

// Decomposition is the result of splitting a query.
type Decomposition struct {
	// Stmt is the original statement.
	Stmt *sqlparser.SelectStmt
	// Fragments lists the fragments in FROM order.
	Fragments []*FragmentSpec
	// Cross are the conjuncts not pushed into any fragment (cross-source
	// join predicates); the integrator applies them while merging.
	Cross []sqlparser.Expr
	// SingleFragment is true when the entire statement was pushed to one
	// source group, in which case Fragments[0].Stmt == Stmt (or a shard
	// rewrite of it) and the integrator's merge is a passthrough.
	SingleFragment bool
	// Sharded is non-nil when the statement covers exactly one sharded
	// table; it records the pruning outcome and any pushed partial
	// aggregation. See shard.go.
	Sharded *ShardPlan
}

// Decompose splits stmt into co-located fragments using the catalog with
// default shard handling (pruning and partial-agg pushdown enabled).
func Decompose(stmt *sqlparser.SelectStmt, cat *catalog.Catalog) (*Decomposition, error) {
	return DecomposeWith(stmt, cat, DecomposeOpts{})
}

// DecomposeWith splits stmt into co-located fragments using the catalog.
// Tables are grouped greedily in FROM order: a table joins the current group
// while at least one server hosts every table of the group. Sharded
// nicknames always form singleton groups (their rows are disjoint across
// servers, so no server can evaluate a join against them whole) and expand
// into per-shard fragments.
func DecomposeWith(stmt *sqlparser.SelectStmt, cat *catalog.Catalog, opts DecomposeOpts) (*Decomposition, error) {
	tables := stmt.Tables()

	type group struct {
		tables  []sqlparser.TableRef
		servers map[string]bool
		// nick is non-nil when the group is a single sharded table; such
		// groups are sealed (no other table may join them).
		nick *catalog.Nickname
	}
	var groups []*group
	for _, tr := range tables {
		nick, err := cat.Lookup(tr.Name)
		if err != nil {
			return nil, err
		}
		hosts := map[string]bool{}
		for _, p := range nick.Placements {
			hosts[p.ServerID] = true
		}
		if nick.Sharded() {
			groups = append(groups, &group{tables: []sqlparser.TableRef{tr}, servers: hosts, nick: nick})
			continue
		}
		placed := false
		if len(groups) > 0 {
			g := groups[len(groups)-1]
			if g.nick == nil {
				inter := map[string]bool{}
				for s := range g.servers {
					if hosts[s] {
						inter[s] = true
					}
				}
				if len(inter) > 0 {
					g.tables = append(g.tables, tr)
					g.servers = inter
					placed = true
				}
			}
		}
		if !placed {
			groups = append(groups, &group{tables: []sqlparser.TableRef{tr}, servers: hosts})
		}
	}

	d := &Decomposition{Stmt: stmt}

	// Single group: push the whole statement (scatter-gathering when the
	// group is a sharded table).
	if len(groups) == 1 {
		g := groups[0]
		schema, err := groupSchema(cat, g.tables)
		if err != nil {
			return nil, err
		}
		if g.nick != nil {
			return decomposeShardedSingle(stmt, g.nick, g.tables[0], schema, opts)
		}
		d.SingleFragment = true
		d.Fragments = []*FragmentSpec{{
			ID:         "QF1",
			Tables:     g.tables,
			Stmt:       stmt,
			Candidates: sortedKeys(g.servers),
			Schema:     schema,
		}}
		return d, nil
	}

	// Multi group: distribute conjuncts.
	var pool []sqlparser.Expr
	pool = append(pool, sqlparser.SplitConjuncts(stmt.Where)...)
	for _, j := range stmt.Joins {
		pool = append(pool, sqlparser.SplitConjuncts(j.On)...)
	}
	pool = dropTrueLiterals(pool)

	schemas := make([]*sqltypes.Schema, len(groups))
	for i, g := range groups {
		schema, err := groupSchema(cat, g.tables)
		if err != nil {
			return nil, err
		}
		schemas[i] = schema
	}
	pushed := make([][]sqlparser.Expr, len(groups))
	for _, c := range pool {
		placed := false
		for i := range groups {
			if exprResolves(c, schemas[i]) {
				pushed[i] = append(pushed[i], c)
				placed = true
				break
			}
		}
		if !placed {
			d.Cross = append(d.Cross, c)
		}
	}

	for i, g := range groups {
		if g.nick != nil {
			d.Fragments = append(d.Fragments,
				shardGatherFragments(g.nick, g.tables[0], fmt.Sprintf("QF%d", i+1), schemas[i], pushed[i], opts)...)
			continue
		}
		fragStmt := &sqlparser.SelectStmt{
			Select: []sqlparser.SelectItem{{Star: true}},
			From:   g.tables[0],
			Limit:  -1,
			Where:  sqlparser.JoinConjuncts(pushed[i]),
		}
		for _, tr := range g.tables[1:] {
			fragStmt.Joins = append(fragStmt.Joins, sqlparser.JoinClause{
				Table: tr,
				On:    &sqlparser.Literal{Val: sqltypes.NewBool(true)},
			})
		}
		d.Fragments = append(d.Fragments, &FragmentSpec{
			ID:         fmt.Sprintf("QF%d", i+1),
			Tables:     g.tables,
			Stmt:       fragStmt,
			Candidates: sortedKeys(g.servers),
			Schema:     schemas[i],
		})
	}
	return d, nil
}

// groupSchema concatenates the alias-qualified schemas of the group tables.
func groupSchema(cat *catalog.Catalog, tables []sqlparser.TableRef) (*sqltypes.Schema, error) {
	var out *sqltypes.Schema
	for _, tr := range tables {
		nick, err := cat.Lookup(tr.Name)
		if err != nil {
			return nil, err
		}
		q := nick.Schema.WithQualifier(tr.EffectiveName())
		if out == nil {
			out = q
		} else {
			out = out.Concat(q)
		}
	}
	return out, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// insertion sort; tiny sets
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func dropTrueLiterals(list []sqlparser.Expr) []sqlparser.Expr {
	out := list[:0]
	for _, e := range list {
		if lit, ok := e.(*sqlparser.Literal); ok && lit.Val.Kind() == sqltypes.KindBool && lit.Val.Bool() {
			continue
		}
		out = append(out, e)
	}
	return out
}

func exprResolves(e sqlparser.Expr, schema *sqltypes.Schema) bool {
	for _, ref := range sqlparser.CollectColumnRefs(e, nil) {
		if _, err := schema.ColumnIndex(ref.Table, ref.Name); err != nil {
			return false
		}
	}
	return true
}

package optimizer_test

import (
	"strings"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/scenario"
	"repro/internal/sqlparser"
)

func threeServer(t *testing.T) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: 200})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func replicaPair(t *testing.T) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.BuildReplicaPair(scenario.ReplicaOptions{Scale: 200})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestDecomposeSingleFragment(t *testing.T) {
	sc := threeServer(t)
	stmt := sqlparser.MustParse("SELECT SUM(o.o_amount) FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 100")
	d, err := optimizer.Decompose(stmt, sc.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if !d.SingleFragment || len(d.Fragments) != 1 {
		t.Fatalf("fully-replicated join must be a single fragment: %+v", d)
	}
	f := d.Fragments[0]
	if len(f.Candidates) != 3 {
		t.Fatalf("candidates: %v", f.Candidates)
	}
	if f.Stmt != stmt {
		t.Fatal("single fragment must push the whole statement")
	}
	if f.ID != "QF1" {
		t.Fatalf("fragment id: %s", f.ID)
	}
}

func TestDecomposeCrossSource(t *testing.T) {
	sc := replicaPair(t)
	stmt := sqlparser.MustParse("SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9000 AND l.l_qty < 5")
	d, err := optimizer.Decompose(stmt, sc.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if d.SingleFragment || len(d.Fragments) != 2 {
		t.Fatalf("cross-source join must split: %+v", d)
	}
	if len(d.Cross) != 1 || !strings.Contains(d.Cross[0].String(), "o_id") {
		t.Fatalf("join predicate must stay cross: %v", d.Cross)
	}
	f0, f1 := d.Fragments[0], d.Fragments[1]
	if f0.Candidates[0] != "R1" || f0.Candidates[1] != "S1" {
		t.Fatalf("orders candidates: %v", f0.Candidates)
	}
	if f1.Candidates[0] != "R2" || f1.Candidates[1] != "S2" {
		t.Fatalf("lineitem candidates: %v", f1.Candidates)
	}
	// Pushed filters end up in fragment WHERE clauses.
	if !strings.Contains(f0.Stmt.String(), "o_amount") {
		t.Fatalf("orders filter not pushed: %s", f0.Stmt)
	}
	if !strings.Contains(f1.Stmt.String(), "l_qty") {
		t.Fatalf("lineitem filter not pushed: %s", f1.Stmt)
	}
}

func TestDecomposeUnknownNickname(t *testing.T) {
	sc := threeServer(t)
	stmt := sqlparser.MustParse("SELECT * FROM ghost")
	if _, err := optimizer.Decompose(stmt, sc.Catalog); err == nil {
		t.Fatal("unknown nickname must fail")
	}
}

func TestOptimizePicksCheapestServer(t *testing.T) {
	// Equal latencies isolate compute power; at tiny test scales a shorter
	// link would otherwise dominate the cost.
	sc, err := scenario.BuildThreeServer(scenario.Options{
		Scale:     200,
		Latencies: map[string]float64{"S1": 10, "S2": 10, "S3": 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	stmt := sqlparser.MustParse("SELECT SUM(o.o_amount) FROM orders AS o WHERE o.o_amount > 100")
	gp, err := sc.II.Optimizer().Optimize(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(gp.Fragments) != 1 {
		t.Fatalf("fragments: %d", len(gp.Fragments))
	}
	// S3 is the most powerful machine; with uncalibrated costs it should be
	// the winner for a scan-heavy query despite the longer link.
	if gp.Fragments[0].ServerID != "S3" {
		t.Fatalf("expected S3, got %s (est %+v)", gp.Fragments[0].ServerID, gp.Fragments[0].Plan.Est)
	}
	if gp.TotalEstMS <= 0 {
		t.Fatal("global estimate must be positive")
	}
}

func TestEnumerateReplicaPairYieldsNinePlans(t *testing.T) {
	sc := replicaPair(t)
	// Q6 in the paper: a join across the two source groups, each with an
	// origin and a replica. Origins offer up to 2 plans, replicas too here;
	// the point is the combination count and the §4.2 pruning downstream.
	stmt := sqlparser.MustParse(`SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9500 AND l.l_qty < 3`)
	plans, err := sc.II.Optimizer().Enumerate(stmt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 4 {
		t.Fatalf("expected >=4 global plans (2 servers × 2 servers), got %d", len(plans))
	}
	// Ranked ascending.
	for i := 1; i < len(plans); i++ {
		if plans[i-1].TotalEstMS > plans[i].TotalEstMS {
			t.Fatal("plans not ranked")
		}
	}
	// Server sets must span combinations of {S1,R1}×{S2,R2}.
	sets := map[string]bool{}
	for _, p := range plans {
		sets[p.ServerSetKey()] = true
	}
	if len(sets) != 4 {
		t.Fatalf("expected 4 distinct server sets, got %v", sets)
	}
}

func TestOptimizeSkipsDownServer(t *testing.T) {
	sc := threeServer(t)
	sc.Servers["S3"].SetDown(true)
	stmt := sqlparser.MustParse("SELECT SUM(o.o_amount) FROM orders AS o WHERE o.o_amount > 100")
	gp, err := sc.II.Optimizer().Optimize(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if gp.Fragments[0].ServerID == "S3" {
		t.Fatal("down server must not be chosen")
	}
}

func TestOptimizeFailsWhenAllSourcesDown(t *testing.T) {
	sc := threeServer(t)
	for _, s := range sc.Servers {
		s.SetDown(true)
	}
	stmt := sqlparser.MustParse("SELECT * FROM parts LIMIT 1")
	if _, err := sc.II.Optimizer().Optimize(stmt); err == nil {
		t.Fatal("must fail when no source is available")
	}
}

func TestMaskedServerExcluded(t *testing.T) {
	sc := threeServer(t)
	sc.MW.Mask("S3", true)
	stmt := sqlparser.MustParse("SELECT SUM(o.o_amount) FROM orders AS o WHERE o.o_amount > 100")
	gp, err := sc.II.Optimizer().Optimize(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if gp.Fragments[0].ServerID == "S3" {
		t.Fatal("masked server must be excluded")
	}
}

func TestGlobalPlanKeys(t *testing.T) {
	sc := replicaPair(t)
	stmt := sqlparser.MustParse("SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9500")
	gp, err := sc.II.Optimizer().Optimize(stmt)
	if err != nil {
		t.Fatal(err)
	}
	key := gp.RouteKey()
	if !strings.Contains(key, "QF1@") || !strings.Contains(key, "QF2@") {
		t.Fatalf("route key: %s", key)
	}
	set := gp.ServerSet()
	if len(set) != 2 {
		t.Fatalf("server set: %v", set)
	}
}

func TestExplainTable(t *testing.T) {
	sc := threeServer(t)
	gp, err := sc.II.Compile("SELECT COUNT(*) FROM parts AS p")
	if err != nil {
		t.Fatal(err)
	}
	et := sc.II.ExplainTable()
	if et.Len() != 1 {
		t.Fatalf("entries: %d", et.Len())
	}
	e := et.Latest(gp.Query)
	if e == nil || e.RouteKey != gp.RouteKey() {
		t.Fatalf("latest: %+v", e)
	}
	if e.FragmentServers["QF1"] == "" || e.FragmentSigs["QF1"] == "" {
		t.Fatalf("fragment details missing: %+v", e)
	}
	if et.Latest("nope") != nil {
		t.Fatal("unknown query should be nil")
	}
	if !strings.Contains(et.String(), "QF1@") {
		t.Fatalf("dump: %s", et.String())
	}
}

func TestOptimizeEqualsMinOfEnumerate(t *testing.T) {
	sc := threeServer(t)
	stmt := sqlparser.MustParse("SELECT SUM(o.o_amount) FROM orders AS o WHERE o.o_amount > 2000")
	winner, err := sc.II.Optimizer().Optimize(stmt)
	if err != nil {
		t.Fatal(err)
	}
	all, err := sc.II.Optimizer().Enumerate(stmt, 0)
	if err != nil {
		t.Fatal(err)
	}
	min := all[0].TotalEstMS
	for _, p := range all {
		if p.TotalEstMS < min {
			min = p.TotalEstMS
		}
	}
	if winner.TotalEstMS != min {
		t.Fatalf("winner %.3f != min %.3f", winner.TotalEstMS, min)
	}
}

func TestMergeEstimatePositiveForCrossSource(t *testing.T) {
	sc := replicaPair(t)
	stmt := sqlparser.MustParse("SELECT COUNT(*) FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey")
	gp, err := sc.II.Optimizer().Optimize(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if gp.MergeEstMS <= 0 {
		t.Fatalf("cross-source merge estimate must be positive: %g", gp.MergeEstMS)
	}
	// Single-fragment plans have a zero merge estimate.
	sc2 := threeServer(t)
	gp2, err := sc2.II.Optimizer().Optimize(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if gp2.MergeEstMS != 0 {
		t.Fatalf("pushdown merge estimate must be zero: %g", gp2.MergeEstMS)
	}
}

package optimizer

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/simclock"
)

// ExplainEntry is one row of the explain table: the winner global plan and
// its estimated costs, as DB2 II stores after compilation (§1 runtime phase
// step 1). Only the winner is stored — which is precisely why QCC needs the
// simulated federated system to reconstruct alternatives (§4.2).
type ExplainEntry struct {
	// Query is the statement text.
	Query string
	// At is the compilation time.
	At simclock.Time
	// RouteKey is the fragment→server assignment.
	RouteKey string
	// FragmentServers maps fragment ID to chosen server.
	FragmentServers map[string]string
	// FragmentSigs maps fragment ID to the chosen physical plan signature.
	FragmentSigs map[string]string
	// FragmentTables maps fragment ID to the nicknames it covers.
	FragmentTables map[string][]string
	// FragmentEstMS maps fragment ID to its calibrated estimate.
	FragmentEstMS map[string]float64
	// TotalEstMS is the global calibrated estimate.
	TotalEstMS float64
}

// ExplainTable stores compilation winners. It is safe for concurrent use.
type ExplainTable struct {
	mu      sync.RWMutex
	entries []ExplainEntry
}

// NewExplainTable returns an empty table.
func NewExplainTable() *ExplainTable { return &ExplainTable{} }

// Record stores the winner of a compilation.
func (t *ExplainTable) Record(gp *GlobalPlan, at simclock.Time) {
	e := ExplainEntry{
		Query:           gp.Query,
		At:              at,
		RouteKey:        gp.RouteKey(),
		FragmentServers: map[string]string{},
		FragmentSigs:    map[string]string{},
		FragmentEstMS:   map[string]float64{},
		FragmentTables:  map[string][]string{},
		TotalEstMS:      gp.TotalEstMS,
	}
	for _, f := range gp.Fragments {
		e.FragmentServers[f.Spec.ID] = f.ServerID
		e.FragmentSigs[f.Spec.ID] = f.Plan.Signature
		e.FragmentEstMS[f.Spec.ID] = f.Plan.Est.TotalMS
		var tables []string
		for _, tr := range f.Spec.Tables {
			tables = append(tables, tr.Name)
		}
		e.FragmentTables[f.Spec.ID] = tables
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = append(t.entries, e)
}

// Entries returns a snapshot of all entries.
func (t *ExplainTable) Entries() []ExplainEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]ExplainEntry(nil), t.entries...)
}

// Latest returns the most recent entry for the given query text, or nil.
func (t *ExplainTable) Latest(query string) *ExplainEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i := len(t.entries) - 1; i >= 0; i-- {
		if t.entries[i].Query == query {
			e := t.entries[i]
			return &e
		}
	}
	return nil
}

// Len returns the number of entries.
func (t *ExplainTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// String renders a compact dump for diagnostics.
func (t *ExplainTable) String() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var b strings.Builder
	for _, e := range t.entries {
		fmt.Fprintf(&b, "[%s] %s -> %s est=%.2fms\n", e.At, e.Query, e.RouteKey, e.TotalEstMS)
	}
	return b.String()
}

package optimizer

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/metawrapper"
	"repro/internal/remote"
	"repro/internal/sqlparser"
	"repro/internal/telemetry"
)

// FragmentChoice is one fragment's selected (server, plan) pair in a global
// plan.
type FragmentChoice struct {
	Spec     *FragmentSpec
	ServerID string
	// Plan carries the CALIBRATED estimate in Plan.Est.
	Plan *remote.Plan
	// RawEst is the wrapper's uncalibrated estimate (for MW run records).
	RawEst remote.CostEstimate
	// CostKnown mirrors the wrapper candidate flag.
	CostKnown bool
}

// GlobalPlan is a fully-specified federated execution plan.
type GlobalPlan struct {
	// Query is the original statement text.
	Query string
	// Stmt is the parsed statement.
	Stmt *sqlparser.SelectStmt
	// Decomp is the decomposition the plan was derived from.
	Decomp *Decomposition
	// Fragments lists the chosen fragment executions.
	Fragments []FragmentChoice
	// MergeEstMS is the calibrated estimate of II-side merge work.
	MergeEstMS float64
	// TotalEstMS is the plan's calibrated global cost: since fragments run
	// in parallel, max(fragment costs) + merge.
	TotalEstMS float64
	// Options holds, per fragment (aligned with Fragments), every calibrated
	// replica alternative that survived enumeration — the menu a replica
	// router picks from per dispatch instead of only swapping whole global
	// plans. Nil when the plan was not produced by EnumerateFromOptions.
	Options [][]FragmentChoice
}

// ServerSet returns the sorted set of servers the plan touches — the §4.2
// pruning identity ("for global query plans whose fragment queries are
// executed on the same set of servers, pick the cheapest").
func (g *GlobalPlan) ServerSet() []string {
	set := map[string]bool{}
	for _, f := range g.Fragments {
		set[f.ServerID] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ServerSetKey renders ServerSet as a canonical string key.
func (g *GlobalPlan) ServerSetKey() string { return strings.Join(g.ServerSet(), ",") }

// RouteKey identifies the routing decision: fragment→server assignments in
// fragment order.
func (g *GlobalPlan) RouteKey() string {
	parts := make([]string, len(g.Fragments))
	for i, f := range g.Fragments {
		parts[i] = f.Spec.ID + "@" + f.ServerID
	}
	return strings.Join(parts, "+")
}

// IICalibrator calibrates integrator-side cost with the workload factor
// (§3.2); QCC implements it. A nil calibrator is the identity.
type IICalibrator interface {
	CalibrateII(estMS float64) float64
}

// Optimizer performs global query optimization.
type Optimizer struct {
	// Catalog resolves nicknames.
	Catalog *catalog.Catalog
	// MW is the instrumented wrapper layer.
	MW *metawrapper.MetaWrapper
	// IINode models the integrator machine for merge costing and timing.
	IINode *remote.Server
	// IICalib is QCC's workload calibrator (may be nil).
	IICalib IICalibrator
	// MaxGlobalPlans caps combination enumeration (default 256).
	MaxGlobalPlans int
	// ShardOptions, when non-nil, supplies the shard-handling toggles for
	// each decomposition (the integrator wires its runtime switches here).
	ShardOptions func() DecomposeOpts
}

// Optimize decomposes the statement, gathers per-fragment candidates, and
// returns the cheapest global plan. Servers whose Explain fails (down,
// masked or partitioned) simply contribute no candidates; the query only
// fails when some fragment has no surviving candidate at all.
func (o *Optimizer) Optimize(stmt *sqlparser.SelectStmt) (*GlobalPlan, error) {
	plans, err := o.Enumerate(stmt, 1)
	if err != nil {
		return nil, err
	}
	return plans[0], nil
}

// SourceOption is one RAW candidate for a fragment: a (server, plan) pair
// carrying the wrapper's uncalibrated estimate and the table-version
// snapshot it was computed against. Raw options are what the federated plan
// cache stores — calibration is re-applied at use time, so cached
// compilations always route on current load, network, reliability and
// availability factors.
type SourceOption struct {
	ServerID string
	// Plan carries the RAW estimate in Plan.Est.
	Plan   *remote.Plan
	RawEst remote.CostEstimate
	// CostKnown mirrors the wrapper candidate flag.
	CostKnown bool
	// Versions snapshots the fragment tables' versions on ServerID as of the
	// explain that produced this option.
	Versions map[string]int64
}

// FragmentOptions couples a fragment spec with its canonical signature (the
// calibration key) and raw candidate set.
type FragmentOptions struct {
	Spec *FragmentSpec
	// Sig is the fragment statement's canonical form — the identity under
	// which QCC keeps calibration factors.
	Sig     string
	Options []SourceOption
}

// ExcludeFunc filters fragment candidates during plan selection; retry
// loops use it to steer a recompile away from a server that just failed a
// fragment. Nil excludes nothing.
type ExcludeFunc func(fragID, serverID string) bool

// Enumerate returns up to topK global plans ranked by calibrated cost.
// QCC's simulated federated system uses topK > 1 to derive alternative
// plans; the production path uses topK == 1.
func (o *Optimizer) Enumerate(stmt *sqlparser.SelectStmt, topK int) ([]*GlobalPlan, error) {
	decomp, frags, err := o.Collect(stmt)
	if err != nil {
		return nil, err
	}
	return o.EnumerateFromOptions(stmt, decomp, frags, topK, nil)
}

// Collect runs the EXPENSIVE head of compilation: it decomposes the
// statement and gathers each fragment's raw candidate set through the
// meta-wrapper (one remote planner round-trip per candidate server). The
// result is reusable across compilations of the same statement — it depends
// only on the statement, the catalog and remote table state, never on
// calibration factors.
func (o *Optimizer) Collect(stmt *sqlparser.SelectStmt) (*Decomposition, []FragmentOptions, error) {
	return o.CollectContext(context.Background(), stmt)
}

// CollectContext is Collect under a context carrying the active trace span,
// so each candidate server's remote planning round-trip is recorded as a
// per-candidate span.
func (o *Optimizer) CollectContext(ctx context.Context, stmt *sqlparser.SelectStmt) (*Decomposition, []FragmentOptions, error) {
	var opts DecomposeOpts
	if o.ShardOptions != nil {
		opts = o.ShardOptions()
	}
	decomp, err := DecomposeWith(stmt, o.Catalog, opts)
	if err != nil {
		return nil, nil, err
	}
	telemetry.SpanFrom(ctx).Emit("decompose", telemetry.LayerII, "", 0).
		SetAttr("fragments", strconv.Itoa(len(decomp.Fragments)))
	frags := make([]FragmentOptions, len(decomp.Fragments))
	for i, frag := range decomp.Fragments {
		fo := FragmentOptions{Spec: frag, Sig: sqlparser.CanonicalizeSQL(frag.Stmt.String())}
		var lastErr error
		for _, serverID := range frag.Candidates {
			cands, err := o.MW.ExplainFragmentContext(ctx, serverID, frag.Stmt)
			if err != nil {
				lastErr = err
				continue
			}
			for _, c := range cands {
				// Keep the raw estimate on the stored plan; calibrated
				// copies are minted per use in EnumerateFromOptions.
				rawPlan := *c.Plan
				rawPlan.Est = c.RawEst
				fo.Options = append(fo.Options, SourceOption{
					ServerID:  serverID,
					Plan:      &rawPlan,
					RawEst:    c.RawEst,
					CostKnown: c.CostKnown,
					Versions:  c.Versions,
				})
			}
		}
		if len(fo.Options) == 0 {
			if lastErr != nil {
				return nil, nil, fmt.Errorf("optimizer: fragment %s has no available source: %w", frag.ID, lastErr)
			}
			return nil, nil, fmt.Errorf("optimizer: fragment %s has no available source", frag.ID)
		}
		frags[i] = fo
	}
	return decomp, frags, nil
}

// EnumerateFromOptions runs the CHEAP tail of compilation over previously
// collected (or cached) raw candidate sets: apply the current calibration
// factors, drop unavailable candidates (calibrated to +Inf) and excluded
// servers, enumerate global combinations and rank them. No meta-wrapper,
// wrapper or remote-planner round-trips happen here.
func (o *Optimizer) EnumerateFromOptions(stmt *sqlparser.SelectStmt, decomp *Decomposition, frags []FragmentOptions, topK int, exclude ExcludeFunc) ([]*GlobalPlan, error) {
	options := make([][]FragmentChoice, len(frags))
	for i, fo := range frags {
		var opts []FragmentChoice
		for _, so := range fo.Options {
			if exclude != nil && exclude(fo.Spec.ID, so.ServerID) {
				continue
			}
			calibrated := so.RawEst
			if o.MW != nil {
				calibrated = o.MW.CalibrateCandidate(so.ServerID, fo.Sig, so.RawEst, so.CostKnown)
			}
			if math.IsInf(calibrated.TotalMS, 1) {
				continue // calibrated to infinity: unavailable
			}
			cp := *so.Plan
			cp.Est = calibrated
			opts = append(opts, FragmentChoice{
				Spec:      fo.Spec,
				ServerID:  so.ServerID,
				Plan:      &cp,
				RawEst:    so.RawEst,
				CostKnown: so.CostKnown,
			})
		}
		if len(opts) == 0 {
			return nil, fmt.Errorf("optimizer: fragment %s has no available source", fo.Spec.ID)
		}
		options[i] = opts
	}

	maxPlans := o.MaxGlobalPlans
	if maxPlans <= 0 {
		maxPlans = 256
	}
	var all []*GlobalPlan
	var walk func(i int, acc []FragmentChoice)
	walk = func(i int, acc []FragmentChoice) {
		if len(all) >= maxPlans {
			return
		}
		if i == len(options) {
			gp := o.assembleGlobal(stmt, decomp, append([]FragmentChoice(nil), acc...))
			gp.Options = options
			all = append(all, gp)
			return
		}
		for _, opt := range options[i] {
			walk(i+1, append(acc, opt))
		}
	}
	walk(0, nil)
	if len(all) == 0 {
		return nil, fmt.Errorf("optimizer: no global plan for %q", stmt.String())
	}
	sort.Slice(all, func(i, j int) bool { return all[i].TotalEstMS < all[j].TotalEstMS })
	if topK > 0 && len(all) > topK {
		all = all[:topK]
	}
	return all, nil
}

// AssembleGlobal builds a global plan from an explicit per-fragment choice
// list, re-deriving the merge and total estimates exactly as enumeration
// does. Replica routers use it to re-assemble a plan after swapping
// individual fragment choices from GlobalPlan.Options.
func (o *Optimizer) AssembleGlobal(stmt *sqlparser.SelectStmt, decomp *Decomposition, chosen []FragmentChoice) *GlobalPlan {
	return o.assembleGlobal(stmt, decomp, chosen)
}

func (o *Optimizer) assembleGlobal(stmt *sqlparser.SelectStmt, decomp *Decomposition, chosen []FragmentChoice) *GlobalPlan {
	gp := &GlobalPlan{
		Query:     stmt.String(),
		Stmt:      stmt,
		Decomp:    decomp,
		Fragments: chosen,
	}
	// Fragments execute in parallel: the remote phase costs the max.
	maxFrag := 0.0
	for _, f := range chosen {
		if f.Plan.Est.TotalMS > maxFrag {
			maxFrag = f.Plan.Est.TotalMS
		}
	}
	gp.MergeEstMS = o.mergeEstimate(decomp, chosen)
	if o.IICalib != nil {
		gp.MergeEstMS = o.IICalib.CalibrateII(gp.MergeEstMS)
	}
	gp.TotalEstMS = maxFrag + gp.MergeEstMS
	return gp
}

// mergeEstimate approximates the integrator-side work of joining fragment
// results and applying the statement tail. For single-fragment plans the
// merge is a passthrough.
func (o *Optimizer) mergeEstimate(decomp *Decomposition, chosen []FragmentChoice) float64 {
	if decomp.SingleFragment {
		return 0
	}
	var res exec.Resources
	var cards []float64
	for _, f := range chosen {
		cards = append(cards, float64(f.Plan.Est.Card))
	}
	// Hash-join chain: build+probe each fragment once; output bounded by the
	// largest input (equi-joins on keys).
	maxCard := 0.0
	sum := 0.0
	for _, c := range cards {
		sum += c
		if c > maxCard {
			maxCard = c
		}
	}
	res.CPUOps = 2*sum + maxCard
	if decomp.Stmt.HasAggregates() || len(decomp.Stmt.GroupBy) > 0 {
		res.CPUOps += maxCard * 2
	}
	if len(decomp.Stmt.OrderBy) > 0 && maxCard > 2 {
		res.CPUOps += maxCard * math.Log2(maxCard)
	}
	if o.IINode == nil {
		return res.CPUOps / 1000
	}
	return o.IINode.EstimateTime(res)
}

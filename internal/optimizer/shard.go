// Shard-aware decomposition: sharded nicknames expand into per-shard
// fragments (scatter-gather), predicates on the shard key prune the shard
// set, and aggregate queries over a single sharded table push partial
// aggregation into each shard's fragment (two-phase aggregation; the II
// merges partial states with exec.ShardAggFinal).
package optimizer

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// DecomposeOpts tunes shard handling during decomposition. The zero value
// is the production default: prune and push down.
type DecomposeOpts struct {
	// DisablePruning scatter-gathers every shard regardless of predicates.
	DisablePruning bool
	// DisablePushdown ships whole rows from every shard instead of partial
	// aggregate states (the ship-all-rows baseline).
	DisablePushdown bool
}

// ShardRef marks a fragment as one shard of a logical fragment.
type ShardRef struct {
	// Nickname is the sharded nickname.
	Nickname string
	// Index is the shard index.
	Index int
	// Of is the logical fragment ID this shard fragment belongs to; the
	// integrator concatenates all fragments sharing Of before merging.
	Of string
}

// PartialAggPlan records the two-phase aggregation pushed into shard
// fragments; the II finishes it with exec.ShardAggFinal.
type PartialAggPlan struct {
	GroupBy []sqlparser.Expr
	Aggs    []*sqlparser.AggExpr
}

// ShardPlan summarizes how a single-group sharded statement was split.
type ShardPlan struct {
	// Nickname is the sharded table.
	Nickname string
	// FragID is the logical fragment ID the shards belong to.
	FragID string
	// Total is the shard count of the shard map.
	Total int
	// Executed lists the shard indexes that survived pruning, ascending.
	Executed []int
	// Partial is non-nil when partial aggregation was pushed into the
	// shard fragments.
	Partial *PartialAggPlan
	// Base is the logical fragment's pre-aggregation qualified schema.
	Base *sqltypes.Schema
}

// shardTableRef names shard idx of the nickname while keeping the original
// effective name as the alias, so every predicate and projection in the
// statement resolves unchanged at the remote server.
func shardTableRef(nickname string, idx int, tr sqlparser.TableRef) sqlparser.TableRef {
	return sqlparser.TableRef{Name: catalog.ShardTableName(nickname, idx), Alias: tr.EffectiveName()}
}

func shardServers(sh catalog.Shard) []string {
	out := make([]string, len(sh.Placements))
	for i, p := range sh.Placements {
		out[i] = p.ServerID
	}
	sort.Strings(out)
	return out
}

// decomposeShardedSingle handles a statement whose FROM clause is exactly
// one sharded table. Pruning to a single shard pushes the whole statement
// to that shard (a normal single-fragment plan); otherwise the statement
// scatter-gathers, shipping partial aggregate states when the query
// aggregates and whole rows when it does not.
func decomposeShardedSingle(stmt *sqlparser.SelectStmt, nick *catalog.Nickname, tr sqlparser.TableRef, schema *sqltypes.Schema, opts DecomposeOpts) (*Decomposition, error) {
	d := &Decomposition{Stmt: stmt}
	conjuncts := dropTrueLiterals(sqlparser.SplitConjuncts(stmt.Where))
	executed := pruneShards(nick, tr.EffectiveName(), conjuncts, opts)
	plan := &ShardPlan{
		Nickname: nick.Name,
		FragID:   "QF1",
		Total:    len(nick.Shards),
		Executed: executed,
		Base:     schema,
	}
	d.Sharded = plan

	if len(executed) == 1 {
		// All candidate rows live on one shard: push the entire statement,
		// exactly like an unsharded single-fragment plan.
		idx := executed[0]
		full := *stmt
		full.From = shardTableRef(nick.Name, idx, tr)
		d.SingleFragment = true
		d.Fragments = []*FragmentSpec{{
			ID:         fmt.Sprintf("QF1.s%d", idx),
			Tables:     []sqlparser.TableRef{tr},
			Stmt:       &full,
			Candidates: shardServers(nick.Shards[idx]),
			Schema:     schema,
			Shard:      &ShardRef{Nickname: nick.Name, Index: idx, Of: "QF1"},
		}}
		return d, nil
	}

	if !opts.DisablePushdown && (stmt.HasAggregates() || len(stmt.GroupBy) > 0) && groupKeysAreColumns(stmt.GroupBy) {
		if aggs, err := exec.StatementAggregates(stmt); err == nil && aggsArePartialable(aggs) {
			plan.Partial = &PartialAggPlan{GroupBy: stmt.GroupBy, Aggs: aggs}
		}
	}

	for _, idx := range executed {
		var fragStmt *sqlparser.SelectStmt
		var fragSchema *sqltypes.Schema
		if plan.Partial != nil {
			items := make([]sqlparser.SelectItem, 0, len(stmt.GroupBy)+len(plan.Partial.Aggs)*2)
			for _, g := range stmt.GroupBy {
				items = append(items, sqlparser.SelectItem{Expr: g})
			}
			items = append(items, exec.PartialAggItems(plan.Partial.Aggs)...)
			fragStmt = &sqlparser.SelectStmt{
				Select:  items,
				From:    shardTableRef(nick.Name, idx, tr),
				Where:   stmt.Where,
				GroupBy: stmt.GroupBy,
				Limit:   -1,
			}
			fragSchema = partialSchema(schema, plan.Partial)
		} else {
			fragStmt = &sqlparser.SelectStmt{
				Select: []sqlparser.SelectItem{{Star: true}},
				From:   shardTableRef(nick.Name, idx, tr),
				Where:  stmt.Where,
				Limit:  -1,
			}
			fragSchema = schema
		}
		d.Fragments = append(d.Fragments, &FragmentSpec{
			ID:         fmt.Sprintf("QF1.s%d", idx),
			Tables:     []sqlparser.TableRef{tr},
			Stmt:       fragStmt,
			Candidates: shardServers(nick.Shards[idx]),
			Schema:     fragSchema,
			Shard:      &ShardRef{Nickname: nick.Name, Index: idx, Of: "QF1"},
		})
	}
	return d, nil
}

// shardGatherFragments expands one sharded group of a multi-group
// decomposition into per-shard SELECT * fragments carrying the group's
// pushed conjuncts; the integrator concatenates them before joining.
func shardGatherFragments(nick *catalog.Nickname, tr sqlparser.TableRef, logicalID string, schema *sqltypes.Schema, pushed []sqlparser.Expr, opts DecomposeOpts) []*FragmentSpec {
	executed := pruneShards(nick, tr.EffectiveName(), pushed, opts)
	var out []*FragmentSpec
	for _, idx := range executed {
		fragStmt := &sqlparser.SelectStmt{
			Select: []sqlparser.SelectItem{{Star: true}},
			From:   shardTableRef(nick.Name, idx, tr),
			Where:  sqlparser.JoinConjuncts(pushed),
			Limit:  -1,
		}
		out = append(out, &FragmentSpec{
			ID:         fmt.Sprintf("%s.s%d", logicalID, idx),
			Tables:     []sqlparser.TableRef{tr},
			Stmt:       fragStmt,
			Candidates: shardServers(nick.Shards[idx]),
			Schema:     schema,
			Shard:      &ShardRef{Nickname: nick.Name, Index: idx, Of: logicalID},
		})
	}
	return out
}

func groupKeysAreColumns(groupBy []sqlparser.Expr) bool {
	for _, g := range groupBy {
		if _, ok := g.(*sqlparser.ColumnRef); !ok {
			return false
		}
	}
	return true
}

func aggsArePartialable(aggs []*sqlparser.AggExpr) bool {
	for _, a := range aggs {
		switch a.Func {
		case sqlparser.AggCount, sqlparser.AggSum, sqlparser.AggAvg, sqlparser.AggMin, sqlparser.AggMax:
		default:
			return false
		}
	}
	return true
}

// partialSchema is the shard fragments' result layout under partial-agg
// pushdown: the group-key columns (bare names, as the remote projection
// emits them) followed by the partial-state columns s0..sK-1.
func partialSchema(base *sqltypes.Schema, plan *PartialAggPlan) *sqltypes.Schema {
	var cols []sqltypes.Column
	for _, g := range plan.GroupBy {
		ref := g.(*sqlparser.ColumnRef)
		typ := sqltypes.KindNull
		if i, err := base.ColumnIndex(ref.Table, ref.Name); err == nil {
			typ = base.Columns[i].Type
		}
		cols = append(cols, sqltypes.Column{Name: ref.Name, Type: typ})
	}
	k := 0
	addState := func(typ sqltypes.Kind) {
		cols = append(cols, sqltypes.Column{Name: exec.StateColName(k), Type: typ})
		k++
	}
	argType := func(a *sqlparser.AggExpr) sqltypes.Kind {
		if ref, ok := a.Arg.(*sqlparser.ColumnRef); ok {
			if i, err := base.ColumnIndex(ref.Table, ref.Name); err == nil {
				return base.Columns[i].Type
			}
		}
		return sqltypes.KindFloat
	}
	for _, a := range plan.Aggs {
		switch a.Func {
		case sqlparser.AggCount:
			addState(sqltypes.KindInt)
		case sqlparser.AggAvg:
			addState(argType(a))
			addState(sqltypes.KindInt)
		default:
			addState(argType(a))
		}
	}
	return sqltypes.NewSchema(cols...)
}

// pruneShards intersects each conjunct's candidate shard set. A conjunct
// that does not constrain the shard key contributes no restriction; an
// unsatisfiable conjunction keeps one shard (it returns no rows anyway, and
// scalar aggregation still needs a partial row).
func pruneShards(nick *catalog.Nickname, eff string, conjuncts []sqlparser.Expr, opts DecomposeOpts) []int {
	n := len(nick.Shards)
	all := func() []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if opts.DisablePruning || nick.Sharding == nil || n <= 1 {
		return all()
	}
	var mask []bool // nil = unconstrained
	for _, c := range conjuncts {
		set := shardSetFor(nick.Sharding, n, eff, c)
		if set == nil {
			continue
		}
		if mask == nil {
			mask = set
			continue
		}
		for i := range mask {
			mask[i] = mask[i] && set[i]
		}
	}
	if mask == nil {
		return all()
	}
	var out []int
	for i, keep := range mask {
		if keep {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		out = []int{0}
	}
	return out
}

// shardSetFor returns the shards conjunct e could match rows on, or nil when
// e does not constrain the shard key. Pruning is conservative: it only ever
// drops shards whose rows provably cannot satisfy e. NULL shard keys are
// safe because every recognized form is a comparison or membership test
// (never true for NULL) except IS NULL, which maps NULL to its home shard.
func shardSetFor(spec *catalog.ShardSpec, n int, eff string, e sqlparser.Expr) []bool {
	only := func(idx int) []bool {
		set := make([]bool, n)
		set[idx] = true
		return set
	}
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		var key sqltypes.Value
		var op sqlparser.BinaryOp
		if isShardKeyRef(x.Left, spec, eff) {
			v, ok := litValue(x.Right)
			if !ok {
				return nil
			}
			key, op = v, x.Op
		} else if isShardKeyRef(x.Right, spec, eff) {
			v, ok := litValue(x.Left)
			if !ok {
				return nil
			}
			key, op = v, flipOp(x.Op)
		} else {
			return nil
		}
		switch op {
		case sqlparser.OpEq:
			return only(spec.ShardFor(key, n))
		case sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
			if spec.Method != catalog.ShardRange {
				return nil
			}
			return rangeSet(spec, n, op, key)
		default:
			return nil
		}
	case *sqlparser.InExpr:
		if x.Negate || !isShardKeyRef(x.Needle, spec, eff) {
			return nil
		}
		set := make([]bool, n)
		for _, it := range x.List {
			v, ok := litValue(it)
			if !ok {
				return nil
			}
			set[spec.ShardFor(v, n)] = true
		}
		return set
	case *sqlparser.BetweenExpr:
		if x.Negate || spec.Method != catalog.ShardRange || !isShardKeyRef(x.Subject, spec, eff) {
			return nil
		}
		lo, okLo := litValue(x.Lo)
		hi, okHi := litValue(x.Hi)
		if !okLo || !okHi {
			return nil
		}
		ge := rangeSet(spec, n, sqlparser.OpGe, lo)
		le := rangeSet(spec, n, sqlparser.OpLe, hi)
		for i := range ge {
			ge[i] = ge[i] && le[i]
		}
		return ge
	case *sqlparser.IsNullExpr:
		if x.Negate || !isShardKeyRef(x.Inner, spec, eff) {
			return nil
		}
		return only(spec.ShardFor(sqltypes.Null, n))
	default:
		return nil
	}
}

// rangeSet marks the shards of a range-sharded table whose interval
// [lower, upper) can contain a value v with `v op c`. Shard i's lower bound
// is Bounds[i-1] (-inf for shard 0) and its exclusive upper bound is
// Bounds[i] (+inf for the last shard).
func rangeSet(spec *catalog.ShardSpec, n int, op sqlparser.BinaryOp, c sqltypes.Value) []bool {
	set := make([]bool, n)
	for i := 0; i < n; i++ {
		switch op {
		case sqlparser.OpLt:
			// Needs lower < c.
			set[i] = i == 0 || sqltypes.Compare(spec.Bounds[i-1], c) < 0
		case sqlparser.OpLe:
			// Needs lower <= c.
			set[i] = i == 0 || sqltypes.Compare(spec.Bounds[i-1], c) <= 0
		case sqlparser.OpGt, sqlparser.OpGe:
			// Needs some v >= c with v < upper, i.e. upper > c (upper is
			// exclusive, so upper == c cannot host v >= c).
			set[i] = i == n-1 || sqltypes.Compare(spec.Bounds[i], c) > 0
		}
	}
	return set
}

func flipOp(op sqlparser.BinaryOp) sqlparser.BinaryOp {
	switch op {
	case sqlparser.OpLt:
		return sqlparser.OpGt
	case sqlparser.OpLe:
		return sqlparser.OpGe
	case sqlparser.OpGt:
		return sqlparser.OpLt
	case sqlparser.OpGe:
		return sqlparser.OpLe
	default:
		return op
	}
}

func isShardKeyRef(e sqlparser.Expr, spec *catalog.ShardSpec, eff string) bool {
	ref, ok := e.(*sqlparser.ColumnRef)
	return ok && ref.Name == spec.Column && (ref.Table == "" || ref.Table == eff)
}

func litValue(e sqlparser.Expr) (sqltypes.Value, bool) {
	lit, ok := e.(*sqlparser.Literal)
	if !ok {
		return sqltypes.Null, false
	}
	return lit.Val, true
}

package admission

import "context"

type classKey struct{}

// WithClass tags a context with an explicit workload-class name, overriding
// cost-based classification for queries submitted under it (unknown names
// fall back to cost classification). The workload pool runner uses this to
// pin e.g. report queries to the batch class regardless of their estimates.
func WithClass(ctx context.Context, class string) context.Context {
	if class == "" {
		return ctx
	}
	return context.WithValue(ctx, classKey{}, class)
}

// ClassFromContext extracts the workload-class tag, if any.
func ClassFromContext(ctx context.Context) string {
	class, _ := ctx.Value(classKey{}).(string)
	return class
}

type tenantKey struct{}

// WithTenant tags a context with the tenant submitting queries under it. The
// tag flows through Session/Federation into admission requests and the query
// log; with no tenants registered it is carried but has no scheduling effect.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFromContext extracts the tenant tag, if any.
func TenantFromContext(ctx context.Context) string {
	tenant, _ := ctx.Value(tenantKey{}).(string)
	return tenant
}

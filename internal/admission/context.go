package admission

import "context"

type classKey struct{}

// WithClass tags a context with an explicit workload-class name, overriding
// cost-based classification for queries submitted under it (unknown names
// fall back to cost classification). The workload pool runner uses this to
// pin e.g. report queries to the batch class regardless of their estimates.
func WithClass(ctx context.Context, class string) context.Context {
	if class == "" {
		return ctx
	}
	return context.WithValue(ctx, classKey{}, class)
}

// ClassFromContext extracts the workload-class tag, if any.
func ClassFromContext(ctx context.Context) string {
	class, _ := ctx.Value(classKey{}).(string)
	return class
}

package admission

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// newController builds a controller on a fresh clock.
func newController(p Policy) (*Controller, *simclock.Clock) {
	clk := simclock.New()
	return New(Config{Clock: clk, Policy: p}), clk
}

func TestDefaultPolicyIsUnlimited(t *testing.T) {
	if !DefaultPolicy().Unlimited() {
		t.Fatal("DefaultPolicy must be unlimited (admission disabled)")
	}
	if (Policy{}).normalized().Unlimited() != true {
		t.Fatal("zero policy must normalize to unlimited")
	}
}

func TestClassify(t *testing.T) {
	p := DefaultPolicy().normalized()
	if got := p.Classify(5).Name; got != ClassInteractive {
		t.Fatalf("cheap query classified %q, want %q", got, ClassInteractive)
	}
	if got := p.Classify(DefaultInteractiveCeilingMS + 1).Name; got != ClassBatch {
		t.Fatalf("heavy query classified %q, want %q", got, ClassBatch)
	}
	// Explicit context tag wins over cost.
	if got := p.classFor(Request{CostMS: 5, Class: ClassBatch}).Name; got != ClassBatch {
		t.Fatalf("tagged query classified %q, want %q", got, ClassBatch)
	}
	// Unknown tag falls back to cost.
	if got := p.classFor(Request{CostMS: 5, Class: "nope"}).Name; got != ClassInteractive {
		t.Fatalf("unknown-tag query classified %q, want %q", got, ClassInteractive)
	}
	// Classes are sorted for classification regardless of declaration order.
	p2 := Policy{Classes: []ClassConfig{
		{Name: "huge"},
		{Name: "small", CeilingMS: 10},
		{Name: "medium", CeilingMS: 100},
	}}.normalized()
	if got := p2.Classify(50).Name; got != "medium" {
		t.Fatalf("classified %q, want medium", got)
	}
	if got := p2.Classify(500).Name; got != "huge" {
		t.Fatalf("classified %q, want huge", got)
	}
}

func TestUnlimitedPassThrough(t *testing.T) {
	c, clk := newController(Policy{})
	g, err := c.Admit(context.Background(), Request{Query: "q", CostMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	if g.Queued() || g.QueueWait() != 0 {
		t.Fatalf("pass-through grant queued=%v wait=%v", g.Queued(), g.QueueWait())
	}
	if got := c.Running(); got != 1 {
		t.Fatalf("running = %d, want 1", got)
	}
	g.Release()
	g.Release() // idempotent
	if got := c.Running(); got != 0 {
		t.Fatalf("running after release = %d, want 0", got)
	}
	if clk.Now() != 0 {
		t.Fatalf("pass-through moved the clock to %v", clk.Now())
	}
	var nilGrant *Grant
	nilGrant.Release() // nil-safe
}

// admitAsync runs Admit on a goroutine and reports its outcome on a channel.
func admitAsync(c *Controller, req Request) chan struct {
	g   *Grant
	err error
} {
	ch := make(chan struct {
		g   *Grant
		err error
	}, 1)
	go func() {
		g, err := c.Admit(context.Background(), req)
		ch <- struct {
			g   *Grant
			err error
		}{g, err}
	}()
	return ch
}

func TestGlobalCapQueuesAndDrains(t *testing.T) {
	c, clk := newController(Policy{MaxConcurrent: 1})
	g1, err := c.Admit(context.Background(), Request{Query: "a", CostMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	done := admitAsync(c, Request{Query: "b", CostMS: 10})
	waitUntil(t, func() bool { return c.QueueDepth() == 1 })
	// The running query charges 25 virtual ms, then releases.
	clk.Charge(25)
	g1.Release()
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !out.g.Queued() || out.g.QueueWait() != 25 {
		t.Fatalf("queued grant wait = %v (queued=%v), want 25ms", out.g.QueueWait(), out.g.Queued())
	}
	out.g.Release()
	st := c.Stats()
	if st.Releases != 2 || st.Running != 0 || st.Queued != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
}

func TestPriorityOrdersQueue(t *testing.T) {
	p := Policy{MaxConcurrent: 1, Classes: []ClassConfig{
		{Name: "hi", Priority: 10, CeilingMS: 100},
		{Name: "lo", Priority: 0},
	}}
	c, clk := newController(p)
	g, err := c.Admit(context.Background(), Request{Query: "seed", CostMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Low-priority waiter arrives first, high-priority second.
	loDone := admitAsync(c, Request{Query: "lo", CostMS: 5000})
	waitUntil(t, func() bool { return c.QueueDepth() == 1 })
	hiDone := admitAsync(c, Request{Query: "hi", CostMS: 10})
	waitUntil(t, func() bool { return c.QueueDepth() == 2 })
	clk.Charge(10)
	g.Release()
	// The high-priority waiter must win the freed slot.
	hi := <-hiDone
	if hi.err != nil {
		t.Fatal(hi.err)
	}
	if got := c.QueueDepth(); got != 1 {
		t.Fatalf("queue depth after hi admitted = %d, want 1 (lo still queued)", got)
	}
	hi.g.Release()
	lo := <-loDone
	if lo.err != nil {
		t.Fatal(lo.err)
	}
	lo.g.Release()
}

func TestCostHoldShedsOnDeadline(t *testing.T) {
	p := Policy{Classes: []ClassConfig{
		{Name: "hi", Priority: 10, CeilingMS: 100},
		{Name: "lo", HoldCostMS: 1000, QueueDeadline: 500},
	}}
	c, clk := newController(p)
	start := clk.Now()
	_, err := c.Admit(context.Background(), Request{Query: "heavy", CostMS: 2000})
	if err == nil {
		t.Fatal("held query must be shed, got grant")
	}
	if !errors.Is(err, ErrAdmissionRejected) || !errors.Is(err, ErrQueueTimeout) || !errors.Is(err, simclock.ErrDeadline) {
		t.Fatalf("shed error %v must match ErrAdmissionRejected, ErrQueueTimeout and simclock.ErrDeadline", err)
	}
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Reason != ReasonQueueTimeout || rej.Class != "lo" || rej.Wait != 500 {
		t.Fatalf("rejection = %+v", rej)
	}
	// The stall-advance must have moved virtual time to the deadline even
	// though nothing was running.
	if got := clk.Now() - start; got != 500 {
		t.Fatalf("clock advanced %v, want 500ms (stall-advance to queue deadline)", got)
	}
	st := c.Stats()
	var lo ClassStats
	for _, cs := range st.Classes {
		if cs.Name == "lo" {
			lo = cs
		}
	}
	if lo.Held != 1 || lo.Shed != 1 {
		t.Fatalf("lo stats = %+v, want Held=1 Shed=1", lo)
	}
}

func TestHoldWithoutDeadlineRejectsImmediately(t *testing.T) {
	p := Policy{Classes: []ClassConfig{{Name: "only", HoldCostMS: 100}}}
	c, clk := newController(p)
	_, err := c.Admit(context.Background(), Request{Query: "heavy", CostMS: 200})
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Reason != ReasonCost {
		t.Fatalf("err = %v, want immediate cost rejection", err)
	}
	if !errors.Is(err, ErrAdmissionRejected) {
		t.Fatal("cost rejection must match ErrAdmissionRejected")
	}
	if errors.Is(err, ErrQueueTimeout) {
		t.Fatal("cost rejection must not match ErrQueueTimeout")
	}
	if clk.Now() != 0 {
		t.Fatalf("immediate rejection moved the clock to %v", clk.Now())
	}
}

func TestQueueFullRejects(t *testing.T) {
	p := Policy{MaxConcurrent: 1, Classes: []ClassConfig{{Name: "only", MaxQueue: 1}}}
	c, _ := newController(p)
	g, err := c.Admit(context.Background(), Request{Query: "a", CostMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	done := admitAsync(c, Request{Query: "b", CostMS: 10})
	waitUntil(t, func() bool { return c.QueueDepth() == 1 })
	_, err = c.Admit(context.Background(), Request{Query: "c", CostMS: 10})
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Reason != ReasonQueueFull {
		t.Fatalf("err = %v, want queue-full rejection", err)
	}
	g.Release()
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	out.g.Release()
}

func TestContextCancelWhileQueued(t *testing.T) {
	c, _ := newController(Policy{MaxConcurrent: 1})
	g, err := c.Admit(context.Background(), Request{Query: "a", CostMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, Request{Query: "b", CostMS: 10})
		done <- err
	}()
	waitUntil(t, func() bool { return c.QueueDepth() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitUntil(t, func() bool { return c.QueueDepth() == 0 })
	// The abandoned slot must not leak: a new query still admits.
	g.Release()
	g2, err := c.Admit(context.Background(), Request{Query: "c", CostMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	g2.Release()
	st := c.Stats()
	if st.Classes[0].Cancelled != 1 {
		t.Fatalf("stats = %+v, want Cancelled=1", st.Classes)
	}
}

func TestSetPolicyReclassifiesQueue(t *testing.T) {
	// Start with a hold that parks the query, then lift the hold at runtime:
	// the waiter must be admitted.
	p := Policy{Classes: []ClassConfig{{Name: "only", HoldCostMS: 100, QueueDeadline: 10000}}}
	c, _ := newController(p)
	// A running query keeps the machine busy so the held waiter is parked
	// rather than stall-advanced straight to its deadline.
	g, err := c.Admit(context.Background(), Request{Query: "cheap", CostMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	done := admitAsync(c, Request{Query: "heavy", CostMS: 200})
	waitUntil(t, func() bool { return c.QueueDepth() == 1 })
	lifted := p.clone()
	lifted.Classes[0].HoldCostMS = 0
	c.SetPolicy(lifted)
	out := <-done
	if out.err != nil {
		t.Fatalf("lifting the hold must admit the waiter: %v", out.err)
	}
	out.g.Release()
	g.Release()
}

func TestSetGlobalCapUnblocksWaiters(t *testing.T) {
	c, _ := newController(Policy{MaxConcurrent: 1})
	g, err := c.Admit(context.Background(), Request{Query: "a", CostMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	done := admitAsync(c, Request{Query: "b", CostMS: 10})
	waitUntil(t, func() bool { return c.QueueDepth() == 1 })
	c.SetGlobalCap(2)
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	out.g.Release()
	g.Release()
	if err := c.SetClassCap("nope", 3); err == nil {
		t.Fatal("SetClassCap on unknown class must error")
	}
}

func TestTelemetryCounters(t *testing.T) {
	clk := simclock.New()
	tel := telemetry.New(telemetry.Config{})
	tel.SetEnabled(true)
	p := Policy{Classes: []ClassConfig{{Name: "only", HoldCostMS: 100, QueueDeadline: 50}}}
	c := New(Config{Clock: clk, Telemetry: tel, Policy: p})
	_, err := c.Admit(context.Background(), Request{Query: "heavy", CostMS: 200})
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v", err)
	}
	if got := tel.Metrics().CounterValue("admission.shed", "only"); got != 1 {
		t.Fatalf("admission.shed = %d, want 1", got)
	}
	if v, ok := tel.Metrics().GaugeValue("admission.queue_depth", ""); !ok || v != 0 {
		t.Fatalf("admission.queue_depth = %v (ok=%v), want 0", v, ok)
	}
}

// TestAdmissionConcurrencySoak hammers the controller from many goroutines
// under -race: mixed classes, caps small enough to force queueing, deadlines
// short enough to shed some, and random releases via Charge.
func TestAdmissionConcurrencySoak(t *testing.T) {
	p := Policy{
		MaxConcurrent: 4,
		Classes: []ClassConfig{
			{Name: "hi", Priority: 10, CeilingMS: 100, MaxConcurrent: 3, QueueDeadline: 10000},
			{Name: "lo", MaxConcurrent: 2, MaxQueue: 64, QueueDeadline: 10000},
		},
	}
	c, clk := newController(p)
	const workers = 32
	var wg sync.WaitGroup
	var admitted, rejected int64
	var mu sync.Mutex
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 16; j++ {
				cost := float64(10 + (i*31+j*17)%300)
				g, err := c.Admit(context.Background(), Request{Query: fmt.Sprintf("q%d-%d", i, j), CostMS: cost})
				mu.Lock()
				if err != nil {
					if !errors.Is(err, ErrAdmissionRejected) {
						mu.Unlock()
						panic(fmt.Sprintf("untyped admission error: %v", err))
					}
					rejected++
					mu.Unlock()
					continue
				}
				admitted++
				mu.Unlock()
				clk.Charge(simclock.Time(cost / 10))
				g.Release()
			}
		}(i)
	}
	wg.Wait()
	if admitted+rejected != workers*16 {
		t.Fatalf("lost queries: admitted %d + rejected %d != %d", admitted, rejected, workers*16)
	}
	st := c.Stats()
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("controller not drained: %+v", st)
	}
	if st.Releases != admitted {
		t.Fatalf("releases %d != admitted %d", st.Releases, admitted)
	}
}

// waitUntil polls cond (the controller enqueues on a separate goroutine),
// yielding so the admitting goroutine can run.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		runtime.Gosched()
	}
	t.Fatal("condition never became true")
}

package admission

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/simclock"
)

func TestTenantRegistry(t *testing.T) {
	c, clk := newController(Policy{})
	// Before any registration the controller is a pure pass-through.
	g, err := c.Admit(context.Background(), Request{Query: "q", CostMS: 5, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if g.Queued() || g.Tenant() != "acme" {
		t.Fatalf("pass-through grant queued=%v tenant=%q", g.Queued(), g.Tenant())
	}
	g.Release()
	if clk.Now() != 0 {
		t.Fatalf("pass-through moved the clock to %v", clk.Now())
	}
	if got := len(c.TenantStats()); got != 0 {
		t.Fatalf("untenanted controller reports %d tenant stats, want 0", got)
	}

	c.RegisterTenant(Tenant{Name: "acme", Weight: 3})
	c.RegisterTenant(Tenant{Name: "zeta"})
	ts := c.Tenants()
	if len(ts) != 2 || ts[0].Name != "acme" || ts[1].Name != "zeta" {
		t.Fatalf("Tenants() = %+v, want acme,zeta", ts)
	}

	// Tagged and untagged queries both admit; untagged run under the blank
	// default tenant; unknown tags auto-create unregistered states.
	for _, tenant := range []string{"acme", "", "ghost"} {
		g, err := c.Admit(context.Background(), Request{Query: "q", CostMS: 5, Tenant: tenant})
		if err != nil {
			t.Fatal(err)
		}
		if g.Tenant() != tenant {
			t.Fatalf("grant tenant = %q, want %q", g.Tenant(), tenant)
		}
		g.Release()
	}
	stats := c.TenantStats()
	byName := map[string]TenantStats{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	if s := byName["acme"]; !s.Registered || s.Weight != 3 || s.Admitted != 1 || s.ServedCostMS != 5 {
		t.Fatalf("acme stats = %+v", s)
	}
	if s := byName["ghost"]; s.Registered || s.Weight != 1 {
		t.Fatalf("ghost stats = %+v, want unregistered weight-1 auto tenant", s)
	}
	if s, ok := byName[""]; !ok || s.Admitted != 1 {
		t.Fatalf("default tenant stats = %+v", s)
	}

	// Deregistering the last registered tenant restores the pass-through.
	if !c.DeregisterTenant("acme") || !c.DeregisterTenant("zeta") {
		t.Fatal("deregister of registered tenants must report true")
	}
	if c.DeregisterTenant("ghost") {
		t.Fatal("deregister of an auto tenant must report false")
	}
	g, err = c.Admit(context.Background(), Request{Query: "q", CostMS: 5, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	if clk.Now() != 0 {
		t.Fatalf("post-deregistration admit moved the clock to %v", clk.Now())
	}
}

func TestTenantQuotaBlocksUnderUnlimitedPolicy(t *testing.T) {
	c, clk := newController(Policy{})
	c.RegisterTenant(Tenant{Name: "acme", MaxConcurrent: 2})
	g1, err := c.Admit(context.Background(), Request{Query: "a", CostMS: 10, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Admit(context.Background(), Request{Query: "b", CostMS: 10, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	// Third query queues on the tenant quota even though the policy itself
	// is unlimited; another tenant sails straight through.
	done := admitAsync(c, Request{Query: "c", CostMS: 10, Tenant: "acme"})
	waitUntil(t, func() bool { return c.QueueDepth() == 1 })
	other, err := c.Admit(context.Background(), Request{Query: "d", CostMS: 10, Tenant: "zeta"})
	if err != nil {
		t.Fatal(err)
	}
	other.Release()
	clk.Charge(7)
	g1.Release()
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !out.g.Queued() || out.g.QueueWait() != 7 {
		t.Fatalf("quota-blocked grant wait = %v (queued=%v), want 7", out.g.QueueWait(), out.g.Queued())
	}
	out.g.Release()
	g2.Release()
}

func TestTenantQueueFullRejectsTyped(t *testing.T) {
	c, _ := newController(Policy{})
	c.RegisterTenant(Tenant{Name: "acme", MaxConcurrent: 1, MaxQueue: 1})
	g, err := c.Admit(context.Background(), Request{Query: "a", CostMS: 10, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	done := admitAsync(c, Request{Query: "b", CostMS: 10, Tenant: "acme"})
	waitUntil(t, func() bool { return c.QueueDepth() == 1 })
	_, err = c.Admit(context.Background(), Request{Query: "c", CostMS: 10, Tenant: "acme"})
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Reason != ReasonTenantQueueFull || rej.Tenant != "acme" {
		t.Fatalf("err = %v, want tenant-queue-full rejection for acme", err)
	}
	if !errors.Is(err, ErrAdmissionRejected) || !errors.Is(err, ErrTenantQuota) {
		t.Fatal("tenant-queue-full must match ErrAdmissionRejected and ErrTenantQuota")
	}
	if errors.Is(err, ErrQueueTimeout) || errors.Is(err, simclock.ErrDeadline) {
		t.Fatal("tenant-queue-full must not match deadline sentinels")
	}
	g.Release()
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	out.g.Release()
}

// TestTenantShedUnwrapChains pins the satellite-2 error taxonomy: a deadline
// shed caused by the tenant's own quota is distinguishable from a class-queue
// deadline shed, and both stay errors.Is-matchable against every applicable
// sentinel.
func TestTenantShedUnwrapChains(t *testing.T) {
	// Class-congestion shed: global cap 1, no tenant quota involved.
	p := Policy{MaxConcurrent: 1, Classes: []ClassConfig{{Name: "only", QueueDeadline: 100}}}
	c, clk := newController(p)
	c.RegisterTenant(Tenant{Name: "acme"})
	g, err := c.Admit(context.Background(), Request{Query: "a", CostMS: 10, Tenant: "zeta"})
	if err != nil {
		t.Fatal(err)
	}
	done := admitAsync(c, Request{Query: "b", CostMS: 10, Tenant: "acme"})
	waitUntil(t, func() bool { return c.QueueDepth() == 1 })
	clk.Charge(150) // the running query outlives b's queue deadline
	out := <-done
	if out.err == nil {
		t.Fatal("want deadline shed, got grant")
	}
	var rej *Rejection
	if !errors.As(out.err, &rej) || rej.Reason != ReasonQueueTimeout || rej.Tenant != "acme" {
		t.Fatalf("rejection = %+v, want class queue_timeout for acme", rej)
	}
	for _, sentinel := range []error{ErrAdmissionRejected, ErrQueueTimeout, simclock.ErrDeadline} {
		if !errors.Is(out.err, sentinel) {
			t.Fatalf("class shed %v must match %v", out.err, sentinel)
		}
	}
	if errors.Is(out.err, ErrTenantQuota) {
		t.Fatal("class-congestion shed must not match ErrTenantQuota")
	}
	g.Release()

	// Tenant-quota shed: unlimited capacity, but acme's own quota holds its
	// second query in the queue past the deadline.
	p2 := Policy{Classes: []ClassConfig{{Name: "only", QueueDeadline: 100}}}
	c2, clk2 := newController(p2)
	c2.RegisterTenant(Tenant{Name: "acme", MaxConcurrent: 1})
	g2, err := c2.Admit(context.Background(), Request{Query: "a", CostMS: 10, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	done2 := admitAsync(c2, Request{Query: "b", CostMS: 10, Tenant: "acme"})
	waitUntil(t, func() bool { return c2.QueueDepth() == 1 })
	clk2.Charge(150)
	out2 := <-done2
	if out2.err == nil {
		t.Fatal("want tenant-quota shed, got grant")
	}
	if !errors.As(out2.err, &rej) || rej.Reason != ReasonTenantQuotaTimeout || rej.Tenant != "acme" {
		t.Fatalf("rejection = %+v, want tenant_quota_timeout for acme", rej)
	}
	for _, sentinel := range []error{ErrAdmissionRejected, ErrQueueTimeout, ErrTenantQuota, simclock.ErrDeadline} {
		if !errors.Is(out2.err, sentinel) {
			t.Fatalf("tenant-quota shed %v must match %v", out2.err, sentinel)
		}
	}
	g2.Release()
	stats := c2.TenantStats()
	if len(stats) == 0 || stats[0].Name != "acme" || stats[0].Shed != 1 {
		t.Fatalf("tenant stats = %+v, want acme Shed=1", stats)
	}
}

func TestTenantClassOverrides(t *testing.T) {
	c, _ := newController(Policy{})
	// For acme, anything over 10ms is batch; everyone else keeps the 1000ms
	// default interactive ceiling.
	c.RegisterTenant(Tenant{Name: "acme", Classes: []ClassConfig{
		{Name: ClassInteractive, Priority: 10, CeilingMS: 10},
	}})
	g, err := c.Admit(context.Background(), Request{Query: "q", CostMS: 50, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if g.Class() != ClassBatch {
		t.Fatalf("acme 50ms query classified %q, want batch under override", g.Class())
	}
	g.Release()
	g, err = c.Admit(context.Background(), Request{Query: "q", CostMS: 50, Tenant: "zeta"})
	if err != nil {
		t.Fatal(err)
	}
	if g.Class() != ClassInteractive {
		t.Fatalf("zeta 50ms query classified %q, want interactive", g.Class())
	}
	g.Release()
}

// TestTenantWeightedFairShares drives a saturated single-slot machine with
// two backlogged tenants weighted 3:1 and checks the served-cost split tracks
// the weights while both stay backlogged.
func TestTenantWeightedFairShares(t *testing.T) {
	const perTenant = 40
	p := Policy{MaxConcurrent: 1}
	c, clk := newController(p)
	c.RegisterTenant(Tenant{Name: "gold", Weight: 3})
	c.RegisterTenant(Tenant{Name: "bronze", Weight: 1})

	// Hold the only slot while both tenants build their backlogs, so the
	// fair scheduler sees both queues full from the first grant.
	blocker, err := c.Admit(context.Background(), Request{Query: "blocker", CostMS: 10, Tenant: "gold"})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	for _, tenant := range []string{"gold", "bronze"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				g, err := c.Admit(context.Background(), Request{Query: "q", CostMS: 10, Tenant: tenant})
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
				clk.Charge(10)
				g.Release()
			}(tenant)
		}
	}
	waitUntil(t, func() bool { return c.QueueDepth() == 2*perTenant })
	clk.Charge(10)
	blocker.Release()
	wg.Wait()

	// While both tenants are backlogged — certainly the first perTenant
	// grants — the 3:1 weights must yield a ~3:1 service split.
	gold := 0
	for _, tenant := range order[:perTenant] {
		if tenant == "gold" {
			gold++
		}
	}
	want := perTenant * 3 / 4 // 30 of 40
	if gold < want-want/5 || gold > want+want/5 {
		t.Fatalf("gold served %d of first %d grants, want %d +/-20%%", gold, perTenant, want)
	}
	if c.QueueDepth() != 0 || c.Running() != 0 {
		t.Fatalf("end state queue=%d running=%d, want empty", c.QueueDepth(), c.Running())
	}
	stats := c.TenantStats()
	if stats[0].Name != "gold" || stats[0].ServedCostMS != (perTenant+1)*10 {
		t.Fatalf("tenant stats[0] = %+v, want gold with full served cost", stats[0])
	}
}

package admission

import (
	"errors"
	"fmt"

	"repro/internal/simclock"
)

// ErrAdmissionRejected is the sentinel every admission refusal matches:
// errors.Is(err, ErrAdmissionRejected) holds whether the query was shed on a
// queue deadline, bounced off a full queue, or held on cost with no way out.
var ErrAdmissionRejected = errors.New("admission: query rejected")

// ErrQueueTimeout is the sentinel for deadline sheds specifically: a query
// that waited past its class's QueueDeadline matches both ErrQueueTimeout and
// ErrAdmissionRejected (and simclock.ErrDeadline, since the shed is a
// virtual-time deadline expiry like any other).
var ErrQueueTimeout = errors.New("admission: queue deadline exceeded")

// Rejection reasons.
const (
	// ReasonCost marks a query held on cost with no queue deadline to ever
	// shed or revisit it — admitting it would park it forever.
	ReasonCost = "cost_hold"
	// ReasonQueueFull marks a query bounced off a class queue at MaxQueue.
	ReasonQueueFull = "queue_full"
	// ReasonQueueTimeout marks a queued query shed at its QueueDeadline.
	ReasonQueueTimeout = "queue_timeout"
)

// Rejection is the typed error a refused query receives.
type Rejection struct {
	// Class is the workload class the query was classified into.
	Class string
	// CostMS is the calibrated estimate the decision keyed on.
	CostMS float64
	// Reason is one of the Reason* constants.
	Reason string
	// Wait is how long the query sat queued before being shed (zero for
	// immediate rejections).
	Wait simclock.Time
}

// Error implements error.
func (r *Rejection) Error() string {
	switch r.Reason {
	case ReasonQueueTimeout:
		return fmt.Sprintf("admission: %s query shed after queueing %s (est %.3fms)", r.Class, r.Wait, r.CostMS)
	case ReasonQueueFull:
		return fmt.Sprintf("admission: %s queue full (est %.3fms)", r.Class, r.CostMS)
	default:
		return fmt.Sprintf("admission: %s query held on cost with no queue deadline (est %.3fms)", r.Class, r.CostMS)
	}
}

// Unwrap makes every rejection errors.Is-match ErrAdmissionRejected, and
// deadline sheds additionally match ErrQueueTimeout and simclock.ErrDeadline.
func (r *Rejection) Unwrap() []error {
	if r.Reason == ReasonQueueTimeout {
		return []error{ErrAdmissionRejected, ErrQueueTimeout, simclock.ErrDeadline}
	}
	return []error{ErrAdmissionRejected}
}

// UnknownClassError reports a policy operation naming a class the policy does
// not define.
type UnknownClassError struct{ Name string }

// Error implements error.
func (e *UnknownClassError) Error() string {
	return fmt.Sprintf("admission: unknown workload class %q", e.Name)
}

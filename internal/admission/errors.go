package admission

import (
	"errors"
	"fmt"

	"repro/internal/simclock"
)

// ErrAdmissionRejected is the sentinel every admission refusal matches:
// errors.Is(err, ErrAdmissionRejected) holds whether the query was shed on a
// queue deadline, bounced off a full queue, or held on cost with no way out.
var ErrAdmissionRejected = errors.New("admission: query rejected")

// ErrQueueTimeout is the sentinel for deadline sheds specifically: a query
// that waited past its class's QueueDeadline matches both ErrQueueTimeout and
// ErrAdmissionRejected (and simclock.ErrDeadline, since the shed is a
// virtual-time deadline expiry like any other).
var ErrQueueTimeout = errors.New("admission: queue deadline exceeded")

// ErrTenantQuota is the sentinel for tenant-quota refusals: a query bounced
// off its tenant's queue bound, or shed on a queue deadline while its tenant
// was still over its concurrency quota. Both also match ErrAdmissionRejected;
// the deadline variant additionally matches ErrQueueTimeout and
// simclock.ErrDeadline, so callers can tell "the class queue timed me out"
// from "my tenant's quota kept me from ever starting" with errors.Is alone.
var ErrTenantQuota = errors.New("admission: tenant quota exceeded")

// Rejection reasons.
const (
	// ReasonCost marks a query held on cost with no queue deadline to ever
	// shed or revisit it — admitting it would park it forever.
	ReasonCost = "cost_hold"
	// ReasonQueueFull marks a query bounced off a class queue at MaxQueue.
	ReasonQueueFull = "queue_full"
	// ReasonQueueTimeout marks a queued query shed at its QueueDeadline.
	ReasonQueueTimeout = "queue_timeout"
	// ReasonTenantQueueFull marks a query bounced off its tenant's queue
	// bound (tenant-wide MaxQueue or a per-class override's MaxQueue).
	ReasonTenantQueueFull = "tenant_queue_full"
	// ReasonTenantQuotaTimeout marks a queued query shed at its QueueDeadline
	// while its tenant was over quota — the wait was the tenant's own doing,
	// not class congestion.
	ReasonTenantQuotaTimeout = "tenant_quota_timeout"
)

// Rejection is the typed error a refused query receives.
type Rejection struct {
	// Class is the workload class the query was classified into.
	Class string
	// Tenant names the tenant the query ran under (empty when the controller
	// is untenanted or the query was untagged).
	Tenant string
	// CostMS is the calibrated estimate the decision keyed on.
	CostMS float64
	// Reason is one of the Reason* constants.
	Reason string
	// Wait is how long the query sat queued before being shed (zero for
	// immediate rejections).
	Wait simclock.Time
}

// Error implements error.
func (r *Rejection) Error() string {
	switch r.Reason {
	case ReasonQueueTimeout:
		return fmt.Sprintf("admission: %s query shed after queueing %s (est %.3fms)", r.Class, r.Wait, r.CostMS)
	case ReasonQueueFull:
		return fmt.Sprintf("admission: %s queue full (est %.3fms)", r.Class, r.CostMS)
	case ReasonTenantQueueFull:
		return fmt.Sprintf("admission: tenant %q queue full (%s, est %.3fms)", r.Tenant, r.Class, r.CostMS)
	case ReasonTenantQuotaTimeout:
		return fmt.Sprintf("admission: tenant %q over quota, %s query shed after queueing %s (est %.3fms)", r.Tenant, r.Class, r.Wait, r.CostMS)
	default:
		return fmt.Sprintf("admission: %s query held on cost with no queue deadline (est %.3fms)", r.Class, r.CostMS)
	}
}

// Unwrap makes every rejection errors.Is-match ErrAdmissionRejected; deadline
// sheds additionally match ErrQueueTimeout and simclock.ErrDeadline, and
// tenant-quota refusals additionally match ErrTenantQuota.
func (r *Rejection) Unwrap() []error {
	switch r.Reason {
	case ReasonQueueTimeout:
		return []error{ErrAdmissionRejected, ErrQueueTimeout, simclock.ErrDeadline}
	case ReasonTenantQuotaTimeout:
		return []error{ErrAdmissionRejected, ErrQueueTimeout, ErrTenantQuota, simclock.ErrDeadline}
	case ReasonTenantQueueFull:
		return []error{ErrAdmissionRejected, ErrTenantQuota}
	}
	return []error{ErrAdmissionRejected}
}

// UnknownClassError reports a policy operation naming a class the policy does
// not define.
type UnknownClassError struct{ Name string }

// Error implements error.
func (e *UnknownClassError) Error() string {
	return fmt.Sprintf("admission: unknown workload class %q", e.Name)
}

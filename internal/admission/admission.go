// Package admission implements the integrator's workload-management
// subsystem: the gating scheduler that sits where DB2 Query Patroller sat in
// the paper's testbed — in front of the information integrator — and decides
// which queries run now, which wait, and which are turned away.
//
// Every query is classified into a workload class (interactive, batch, or
// deployment-defined) by its calibrated estimated cost from the plan
// cache/optimizer, or by an explicit class tag carried on the context
// (WithClass). The controller then enforces:
//
//   - a global concurrency cap across all classes;
//   - per-class concurrency caps, so heavy classes cannot starve light ones;
//   - priority queueing: when capacity frees up, the highest-priority queued
//     query is admitted first (higher classes preempt queue position, never
//     running queries);
//   - cost holds: a query whose calibrated estimate exceeds its class's
//     HoldCostMS is parked in the queue rather than admitted, even when
//     capacity is free;
//   - queue deadlines: a query that has waited longer than its class's
//     QueueDeadline in virtual time is shed with a typed, errors.Is-matchable
//     rejection (ErrQueueTimeout, which also matches ErrAdmissionRejected and
//     simclock.ErrDeadline); and
//   - queue bounds: when a class's queue is full, new arrivals are rejected
//     immediately (ErrAdmissionRejected).
//
// All waiting happens in virtual time: queue wait is the simulated interval
// between enqueue and grant, and deadlines are virtual-clock events that fire
// as running queries charge their response times. When nothing is running and
// only held queries remain queued, the controller advances the clock to the
// earliest queue deadline itself so sheds always fire — the simulation can
// never deadlock on an empty machine.
//
// The default policy (DefaultPolicy: every cap unlimited, no holds) makes the
// controller a pure pass-through: Admit takes one mutex acquisition, never
// touches the clock, and the engine behaves bit-for-bit as if no controller
// were installed.
package admission

import (
	"context"
	"sync"

	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// Request describes one query asking to be admitted.
type Request struct {
	// Query is the statement text (diagnostics only).
	Query string
	// CostMS is the calibrated estimated cost from the plan cache/optimizer;
	// classification and cost holds key on it.
	CostMS float64
	// Class, when non-empty, pins the workload class by name instead of
	// classifying by cost (see WithClass). Unknown names fall back to cost
	// classification.
	Class string
	// Tenant names the tenant submitting the query (see WithTenant). With no
	// tenants registered it is recorded but has no scheduling effect; with
	// tenants registered, unknown names run as unregistered tenants with
	// weight 1 and no quotas, and the empty name is the default tenant.
	Tenant string
}

// Config wires a Controller.
type Config struct {
	// Clock is the shared virtual clock queue waits and deadlines run on.
	Clock *simclock.Clock
	// Telemetry receives queue-depth gauges, per-class wait histograms and
	// shed/reject counters (nil or disabled is a no-op).
	Telemetry *telemetry.Telemetry
	// Policy is the initial admission policy; the zero value selects
	// DefaultPolicy (unlimited — admission disabled).
	Policy Policy
}

type waiterState int

const (
	stateQueued waiterState = iota
	stateGranted
	stateShed
)

// waiter is one queued admission request.
type waiter struct {
	class      ClassConfig
	tenant     *tenantState // nil when the controller is untenanted
	cost       float64
	seq        int64
	held       bool
	enqueuedAt simclock.Time
	deadlineAt simclock.Time // 0 = no queue deadline
	state      waiterState
	wait       simclock.Time
	// ch delivers the decision: nil = admitted, non-nil = typed rejection.
	ch       chan error
	cancelDL simclock.Cancel
}

// classTally is the per-class accounting behind Stats.
type classTally struct {
	running     int
	queued      int
	admitted    int64
	queuedTotal int64
	held        int64
	shed        int64
	rejected    int64
	cancelled   int64
	waitTotal   simclock.Time
}

// Controller is the admission gate. It is safe for concurrent use; one
// instance fronts one integrator.
type Controller struct {
	clock *simclock.Clock
	tel   *telemetry.Telemetry

	mu        sync.Mutex
	policy    Policy
	unlimited bool
	running   int
	queue     []*waiter
	seq       int64
	tallies   map[string]*classTally
	releases  int64

	// tenanted is true while at least one tenant is registered; it routes
	// every admission through the fair queue. tenants holds registered and
	// auto-created tenant states; classVT is the per-class fair-queuing
	// virtual time (the start tag of the class's most recent grant).
	tenanted bool
	tenants  map[string]*tenantState
	classVT  map[string]float64
}

// New builds a controller over the given config.
func New(cfg Config) *Controller {
	p := cfg.Policy.normalized()
	return &Controller{
		clock:     cfg.Clock,
		tel:       cfg.Telemetry,
		policy:    p,
		unlimited: p.Unlimited(),
		tallies:   map[string]*classTally{},
		tenants:   map[string]*tenantState{},
		classVT:   map[string]float64{},
	}
}

// Grant is an admitted query's slot; Release returns it when the query
// finishes (success or failure). Release is idempotent and nil-safe.
type Grant struct {
	c      *Controller
	class  string
	tenant string
	ts     *tenantState
	wait   simclock.Time
	queued bool
	once   sync.Once
}

// Release returns the concurrency slot, admitting the best queued waiter.
func (g *Grant) Release() {
	if g == nil {
		return
	}
	g.once.Do(func() { g.c.release(g.class, g.ts) })
}

// Class names the workload class the query was admitted under.
func (g *Grant) Class() string {
	if g == nil {
		return ""
	}
	return g.class
}

// Tenant names the tenant the query ran under (empty for untagged queries).
func (g *Grant) Tenant() string {
	if g == nil {
		return ""
	}
	return g.tenant
}

// QueueWait is the virtual time the query spent queued before admission
// (zero when it was admitted immediately).
func (g *Grant) QueueWait() simclock.Time {
	if g == nil {
		return 0
	}
	return g.wait
}

// Queued reports whether the query actually waited in the queue. The
// pass-through (unlimited) path never queues, so instrumentation keyed on
// this stays silent when admission is disabled.
func (g *Grant) Queued() bool { return g != nil && g.queued }

// Admit blocks until the request is granted a slot, its class queue deadline
// sheds it, or ctx is cancelled. The returned error is nil with a Grant, or a
// typed *Rejection matching ErrAdmissionRejected (and ErrQueueTimeout plus
// simclock.ErrDeadline for deadline sheds), or ctx.Err().
func (c *Controller) Admit(ctx context.Context, req Request) (*Grant, error) {
	c.mu.Lock()
	if c.unlimited && !c.tenanted {
		// Pass-through: one mutex hop, no clock interaction, no queue. This
		// is the admission-disabled path that must stay behaviourally
		// identical to an engine without a controller.
		cls := c.policy.classFor(req)
		t := c.tallyLocked(cls.Name)
		c.running++
		t.running++
		t.admitted++
		c.mu.Unlock()
		return &Grant{c: c, class: cls.Name, tenant: req.Tenant}, nil
	}
	var ts *tenantState
	pol := c.policy
	if c.tenanted {
		// Tenanted: every request — tagged or not — runs under a tenant
		// state, so fair-queue selection and quotas see uniform waiters.
		// Classification uses the tenant's merged (override-applied) policy.
		ts = c.tenantStateLocked(req.Tenant)
		pol = ts.policy
	}
	cls := pol.classFor(req)
	t := c.tallyLocked(cls.Name)
	held := cls.HoldCostMS > 0 && req.CostMS > cls.HoldCostMS
	if held && cls.QueueDeadline <= 0 {
		// A hold with no deadline could never be shed or admitted: reject
		// immediately instead of parking the query forever.
		t.rejected++
		if ts != nil {
			ts.rejected++
		}
		c.mu.Unlock()
		c.tel.Active().Counter("admission.rejected", cls.Name).Inc()
		return nil, &Rejection{Class: cls.Name, Tenant: req.Tenant, CostMS: req.CostMS, Reason: ReasonCost}
	}
	// The class-wide queue bound comes from the base policy; a tenant
	// override's MaxQueue bounds only the tenant's own slice of the queue.
	classQ := cls.MaxQueue
	if ts != nil {
		if bc, ok := c.policy.Class(cls.Name); ok {
			classQ = bc.MaxQueue
		}
	}
	if classQ > 0 && t.queued >= classQ {
		t.rejected++
		if ts != nil {
			ts.rejected++
		}
		c.mu.Unlock()
		c.tel.Active().Counter("admission.rejected", cls.Name).Inc()
		return nil, &Rejection{Class: cls.Name, Tenant: req.Tenant, CostMS: req.CostMS, Reason: ReasonQueueFull}
	}
	if ts != nil {
		full := ts.cfg.MaxQueue > 0 && ts.queued >= ts.cfg.MaxQueue
		if !full {
			if o, ok := ts.override(cls.Name); ok && o.MaxQueue > 0 && ts.classQueued[cls.Name] >= o.MaxQueue {
				full = true
			}
		}
		if full {
			t.rejected++
			ts.rejected++
			c.mu.Unlock()
			c.tel.Active().Counter("admission.rejected", cls.Name).Inc()
			c.tel.Active().Counter("admission.tenant_rejected", req.Tenant).Inc()
			return nil, &Rejection{Class: cls.Name, Tenant: req.Tenant, CostMS: req.CostMS, Reason: ReasonTenantQueueFull}
		}
	}
	c.seq++
	w := &waiter{
		class:      cls,
		tenant:     ts,
		cost:       req.CostMS,
		seq:        c.seq,
		held:       held,
		enqueuedAt: c.clock.Now(),
		ch:         make(chan error, 1),
	}
	c.queue = append(c.queue, w)
	t.queued++
	if ts != nil {
		ts.queued++
		ts.classQueued[cls.Name]++
	}
	c.drainLocked()
	if w.state == stateGranted {
		// Admitted synchronously: the queue pass was a formality, the query
		// never waited.
		c.mu.Unlock()
		return &Grant{c: c, class: cls.Name, tenant: req.Tenant, ts: ts}, nil
	}
	t.queuedTotal++
	if ts != nil {
		ts.queuedTotal++
	}
	if held {
		t.held++
	}
	if cls.QueueDeadline > 0 {
		w.deadlineAt = w.enqueuedAt + cls.QueueDeadline
		w.cancelDL = c.clock.ScheduleAt(w.deadlineAt, func(at simclock.Time) { c.expire(w, at) })
	}
	target, stalled := c.stallTargetLocked()
	c.publishGaugesLocked()
	c.mu.Unlock()
	if stalled {
		// Nothing is running and every queued query is held: no release will
		// ever drain the queue, so virtual time must advance to the earliest
		// queue deadline for the sheds to fire.
		c.clock.AdvanceTo(target)
	}
	select {
	case err := <-w.ch:
		if err != nil {
			return nil, err
		}
		return &Grant{c: c, class: cls.Name, tenant: req.Tenant, ts: ts, wait: w.wait, queued: true}, nil
	case <-ctx.Done():
		if c.abandon(w) {
			return nil, ctx.Err()
		}
		// The waiter was granted or shed concurrently with the cancellation;
		// honour that decision's bookkeeping before reporting the cancel.
		if err := <-w.ch; err != nil {
			return nil, err
		}
		c.release(cls.Name, ts)
		return nil, ctx.Err()
	}
}

// QueueDepth reports how many queries are currently waiting — the demand
// signal QCC folds into the II workload factor so routing sees pressure
// before execution does.
func (c *Controller) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Running reports how many admitted queries hold slots right now.
func (c *Controller) Running() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.running
}

// Policy returns a copy of the current admission policy.
func (c *Controller) Policy() Policy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.policy.clone()
}

// SetPolicy replaces the admission policy at runtime. Queued waiters are
// re-resolved against the new class definitions: raised caps admit them,
// lifted holds release them, and a newly-imposed hold on a waiter with no
// queue deadline sheds it immediately (nothing could ever shed it later).
func (c *Controller) SetPolicy(p Policy) {
	p = p.normalized()
	c.mu.Lock()
	c.policy = p
	c.unlimited = p.Unlimited()
	for _, ts := range c.tenants {
		ts.policy = mergeTenantPolicy(p, ts.cfg)
	}
	var doomed []*waiter
	for _, w := range c.queue {
		if w.tenant != nil {
			// Tenanted waiters re-resolve against their tenant's merged
			// policy, so overrides survive the base-policy change; tenant
			// holds bind even when the base policy is unlimited.
			if cls, ok := w.tenant.policy.Class(w.class.Name); ok {
				w.class = cls
			}
			w.held = w.class.HoldCostMS > 0 && w.cost > w.class.HoldCostMS
		} else {
			if cls, ok := p.Class(w.class.Name); ok {
				w.class = cls
			}
			w.held = !c.unlimited && w.class.HoldCostMS > 0 && w.cost > w.class.HoldCostMS
		}
		if w.held && w.deadlineAt <= 0 {
			doomed = append(doomed, w)
		}
	}
	for _, w := range doomed {
		w.state = stateShed
		c.removeLocked(w)
		t := c.tallyLocked(w.class.Name)
		t.queued--
		t.shed++
		tenant := ""
		if ts := w.tenant; ts != nil {
			ts.queued--
			ts.classQueued[w.class.Name]--
			ts.shed++
			tenant = ts.cfg.Name
		}
		w.ch <- &Rejection{Class: w.class.Name, Tenant: tenant, CostMS: w.cost, Reason: ReasonCost}
	}
	c.drainLocked()
	target, stalled := c.stallTargetLocked()
	c.publishGaugesLocked()
	c.mu.Unlock()
	if stalled {
		c.clock.AdvanceTo(target)
	}
}

// SetGlobalCap tunes the global concurrency cap at runtime (0 = unlimited).
func (c *Controller) SetGlobalCap(n int) {
	p := c.Policy()
	if n < 0 {
		n = 0
	}
	p.MaxConcurrent = n
	c.SetPolicy(p)
}

// SetClassCap tunes one class's concurrency cap at runtime (0 = unlimited).
func (c *Controller) SetClassCap(name string, cap int) error {
	p := c.Policy()
	for i := range p.Classes {
		if p.Classes[i].Name == name {
			if cap < 0 {
				cap = 0
			}
			p.Classes[i].MaxConcurrent = cap
			c.SetPolicy(p)
			return nil
		}
	}
	return &UnknownClassError{Name: name}
}

// release returns one slot and admits the best queued waiter.
func (c *Controller) release(name string, ts *tenantState) {
	c.mu.Lock()
	c.running--
	c.tallyLocked(name).running--
	if ts != nil {
		ts.running--
		ts.classRunning[name]--
	}
	c.releases++
	c.drainLocked()
	target, stalled := c.stallTargetLocked()
	c.publishGaugesLocked()
	c.mu.Unlock()
	if stalled {
		c.clock.AdvanceTo(target)
	}
}

// drainLocked admits queued waiters while capacity allows, highest priority
// first; within a priority level, untenanted controllers drain FIFO, and
// tenanted ones pick the waiter with the smallest fair-queuing start tag
// (submission order breaks ties). Held waiters are skipped: they wait for a
// policy change or their deadline regardless of capacity.
func (c *Controller) drainLocked() {
	for {
		best := -1
		for i, w := range c.queue {
			if w.held || !c.admissibleLocked(w) {
				continue
			}
			if best < 0 || c.beatsLocked(w, c.queue[best]) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		w := c.queue[best]
		c.queue = append(c.queue[:best], c.queue[best+1:]...)
		t := c.tallyLocked(w.class.Name)
		t.queued--
		w.state = stateGranted
		if w.cancelDL != nil {
			w.cancelDL()
			w.cancelDL = nil
		}
		c.running++
		t.running++
		t.admitted++
		w.wait = c.clock.Now() - w.enqueuedAt
		if w.wait < 0 {
			w.wait = 0
		}
		t.waitTotal += w.wait
		if w.wait > 0 {
			c.tel.Active().Histogram("admission.queue_wait_ms", w.class.Name, nil).Observe(float64(w.wait))
		}
		if ts := w.tenant; ts != nil {
			ts.queued--
			ts.classQueued[w.class.Name]--
			ts.running++
			ts.classRunning[w.class.Name]++
			ts.admitted++
			ts.servedCost += w.cost
			ts.waitTotal += w.wait
			// Advance the tenant's fair-queuing tag: the grant starts at
			// max(tenant tag, class virtual time) and finishes cost/weight
			// later; the class virtual time follows the start tag, so idle
			// tenants never bank credit against backlogged ones.
			cost := w.cost
			if cost < minFairCost {
				cost = minFairCost
			}
			start := ts.tag[w.class.Name]
			if vt := c.classVT[w.class.Name]; vt > start {
				start = vt
			}
			c.classVT[w.class.Name] = start
			ts.tag[w.class.Name] = start + cost/ts.cfg.weight()
			if c.tenanted {
				c.tel.Active().Histogram("admission.tenant_served_cost_ms", ts.cfg.Name, nil).Observe(w.cost)
			}
		}
		w.ch <- nil
	}
}

// beatsLocked orders waiters for admission: higher class priority first,
// then (when tenanted) smaller fair-queuing start tag, then submission order.
func (c *Controller) beatsLocked(a, b *waiter) bool {
	if a.class.Priority != b.class.Priority {
		return a.class.Priority > b.class.Priority
	}
	if c.tenanted {
		at, bt := c.startTagLocked(a), c.startTagLocked(b)
		if at != bt {
			return at < bt
		}
	}
	return a.seq < b.seq
}

// startTagLocked is a waiter's prospective fair-queuing start tag: its
// tenant's tag in the waiter's class, floored at the class virtual time so a
// tenant returning from idle competes from "now", not from the past.
func (c *Controller) startTagLocked(w *waiter) float64 {
	vt := c.classVT[w.class.Name]
	if w.tenant == nil {
		return vt
	}
	if t := w.tenant.tag[w.class.Name]; t > vt {
		return t
	}
	return vt
}

func (c *Controller) admissibleLocked(w *waiter) bool {
	if ts := w.tenant; ts != nil && ts.overQuotaLocked(w.class.Name) {
		// Tenant quotas bind even under an unlimited policy. A quota can only
		// block while the tenant has at least one query running, so the
		// stall-advance invariant (idle machine => only held waiters remain)
		// is preserved.
		return false
	}
	if c.unlimited {
		// An unlimited policy admits everything regardless of stale class
		// configs carried by waiters queued under an earlier policy.
		return true
	}
	if c.policy.MaxConcurrent > 0 && c.running >= c.policy.MaxConcurrent {
		return false
	}
	// The class-wide cap comes from the base policy for tenanted waiters
	// (their own config may carry a per-tenant override cap instead).
	classMax := w.class.MaxConcurrent
	if w.tenant != nil {
		if bc, ok := c.policy.Class(w.class.Name); ok {
			classMax = bc.MaxConcurrent
		}
	}
	if classMax > 0 && c.tallyLocked(w.class.Name).running >= classMax {
		return false
	}
	return true
}

// expire sheds a waiter whose virtual queue deadline has passed. A shed
// while the waiter's tenant is over its own quota is typed as a tenant-quota
// shed (matching ErrTenantQuota) rather than a class-queue timeout.
func (c *Controller) expire(w *waiter, at simclock.Time) {
	c.mu.Lock()
	if w.state != stateQueued {
		c.mu.Unlock()
		return
	}
	w.state = stateShed
	c.removeLocked(w)
	t := c.tallyLocked(w.class.Name)
	t.queued--
	t.shed++
	reason := ReasonQueueTimeout
	tenant := ""
	if ts := w.tenant; ts != nil {
		ts.queued--
		ts.classQueued[w.class.Name]--
		ts.shed++
		tenant = ts.cfg.Name
		if !w.held && ts.overQuotaLocked(w.class.Name) {
			reason = ReasonTenantQuotaTimeout
		}
	}
	wait := at - w.enqueuedAt
	target, stalled := c.stallTargetLocked()
	c.publishGaugesLocked()
	c.mu.Unlock()
	c.tel.Active().Counter("admission.shed", w.class.Name).Inc()
	if w.tenant != nil && c.tenanted {
		c.tel.Active().Counter("admission.tenant_shed", tenant).Inc()
	}
	w.ch <- &Rejection{Class: w.class.Name, Tenant: tenant, CostMS: w.cost, Reason: reason, Wait: wait}
	if stalled {
		// More held waiters with later deadlines may remain on an otherwise
		// idle machine; keep virtual time moving so their sheds fire too.
		c.clock.AdvanceTo(target)
	}
}

// abandon removes a waiter whose caller's context was cancelled. It reports
// false when the waiter was already granted or shed concurrently.
func (c *Controller) abandon(w *waiter) bool {
	c.mu.Lock()
	if w.state != stateQueued {
		c.mu.Unlock()
		return false
	}
	w.state = stateShed
	c.removeLocked(w)
	t := c.tallyLocked(w.class.Name)
	t.queued--
	t.cancelled++
	if ts := w.tenant; ts != nil {
		ts.queued--
		ts.classQueued[w.class.Name]--
		ts.cancelled++
	}
	if w.cancelDL != nil {
		w.cancelDL()
		w.cancelDL = nil
	}
	c.publishGaugesLocked()
	c.mu.Unlock()
	return true
}

func (c *Controller) removeLocked(w *waiter) {
	for i, q := range c.queue {
		if q == w {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// stallTargetLocked reports the virtual time the controller itself must
// advance the clock to when the machine is idle but queries remain queued
// (all of them held, by construction): the earliest queue deadline.
func (c *Controller) stallTargetLocked() (simclock.Time, bool) {
	if c.running > 0 || len(c.queue) == 0 {
		return 0, false
	}
	var min simclock.Time
	found := false
	for _, w := range c.queue {
		if w.deadlineAt <= 0 {
			continue
		}
		if !found || w.deadlineAt < min {
			min = w.deadlineAt
			found = true
		}
	}
	return min, found
}

func (c *Controller) tallyLocked(name string) *classTally {
	t := c.tallies[name]
	if t == nil {
		t = &classTally{}
		c.tallies[name] = t
	}
	return t
}

// publishGaugesLocked refreshes the queue-depth and running gauges. A nil or
// disabled telemetry registry makes this a single atomic load.
func (c *Controller) publishGaugesLocked() {
	reg := c.tel.Active()
	if reg == nil {
		return
	}
	for name, t := range c.tallies {
		reg.Gauge("admission.queue_depth", name).Set(float64(t.queued))
		reg.Gauge("admission.running", name).Set(float64(t.running))
	}
	reg.Gauge("admission.queue_depth", "").Set(float64(len(c.queue)))
	reg.Gauge("admission.running", "").Set(float64(c.running))
	if c.tenanted {
		for name, ts := range c.tenants {
			reg.Gauge("admission.tenant_queue_depth", name).Set(float64(ts.queued))
			reg.Gauge("admission.tenant_running", name).Set(float64(ts.running))
		}
	}
}

package admission

import (
	"sort"

	"repro/internal/simclock"
)

// Tenant configures one tenant of the federation: a named traffic source
// with a fair-share weight, optional tenant-wide quotas, and optional
// workload-class overrides. Registering at least one tenant switches the
// controller into tenanted scheduling; with none registered the controller
// behaves bit-for-bit as before tenancy existed.
type Tenant struct {
	// Name identifies the tenant; context tags (WithTenant), stats and log
	// entries key on it. The empty name configures the default tenant that
	// untagged queries run under.
	Name string
	// Weight is the tenant's fair share. Under saturation, two backlogged
	// tenants with weights 3 and 1 are served cost in a ~3:1 ratio. Zero or
	// negative means 1.
	Weight float64
	// MaxConcurrent caps how many of this tenant's queries run at once,
	// across all classes (0 = unlimited). A query blocked on this quota
	// stays queued; if its queue deadline fires while the tenant is still
	// over quota, the shed matches ErrTenantQuota.
	MaxConcurrent int
	// MaxQueue caps how many of this tenant's queries may wait, across all
	// classes; arrivals beyond it are rejected immediately with a rejection
	// matching ErrTenantQuota (0 = unbounded).
	MaxQueue int
	// Classes overrides same-named policy classes for this tenant's queries:
	// classification ceilings, priorities, holds and queue deadlines come
	// from the override, and an override's MaxConcurrent/MaxQueue bound the
	// tenant's own per-class occupancy (the base policy's caps keep applying
	// class-wide). Classes absent from the base policy are ignored.
	Classes []ClassConfig
}

// weight is the effective fair-share weight.
func (t Tenant) weight() float64 {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// minFairCost floors the cost a grant charges against its tenant's fair-share
// tag, so zero-cost estimates still advance virtual time.
const minFairCost = 1.0

// tenantState is the controller's per-tenant accounting: configuration, the
// merged per-tenant policy, start-time-fair-queuing tags, and counters.
type tenantState struct {
	cfg    Tenant
	policy Policy // base policy with this tenant's overrides merged
	auto   bool   // lazily created for an unregistered tag, not via RegisterTenant

	// tag is the tenant's next fair-queuing start tag per class: each grant
	// sets tag = max(tag, class virtual time) + cost/weight.
	tag map[string]float64

	running      int
	queued       int
	classRunning map[string]int
	classQueued  map[string]int

	admitted    int64
	queuedTotal int64
	shed        int64
	rejected    int64
	cancelled   int64
	servedCost  float64
	waitTotal   simclock.Time
}

func newTenantState(cfg Tenant, base Policy, auto bool) *tenantState {
	return &tenantState{
		cfg:          cfg,
		policy:       mergeTenantPolicy(base, cfg),
		auto:         auto,
		tag:          map[string]float64{},
		classRunning: map[string]int{},
		classQueued:  map[string]int{},
	}
}

// mergeTenantPolicy replaces same-named base classes with the tenant's
// overrides and re-normalizes for classification order.
func mergeTenantPolicy(base Policy, cfg Tenant) Policy {
	if len(cfg.Classes) == 0 {
		return base
	}
	out := base.clone()
	for i, c := range out.Classes {
		for _, o := range cfg.Classes {
			if o.Name == c.Name {
				out.Classes[i] = o
			}
		}
	}
	return out.normalized()
}

// override finds the tenant's class override by name.
func (ts *tenantState) override(class string) (ClassConfig, bool) {
	for _, o := range ts.cfg.Classes {
		if o.Name == class {
			return o, true
		}
	}
	return ClassConfig{}, false
}

// overQuotaLocked reports whether a waiter of the given class is currently
// blocked by this tenant's quotas (tenant-wide or per-class override cap) —
// the signal that turns a deadline shed into a tenant-quota shed.
func (ts *tenantState) overQuotaLocked(class string) bool {
	if ts.cfg.MaxConcurrent > 0 && ts.running >= ts.cfg.MaxConcurrent {
		return true
	}
	if o, ok := ts.override(class); ok && o.MaxConcurrent > 0 && ts.classRunning[class] >= o.MaxConcurrent {
		return true
	}
	return false
}

// RegisterTenant adds (or reconfigures) a tenant. The first registration
// switches the controller into tenanted scheduling: every admission flows
// through the fair queue, untagged queries run under the default tenant, and
// quotas and weights take effect. Re-registering an existing name replaces
// its configuration but keeps its counters and fair-queue position.
func (c *Controller) RegisterTenant(t Tenant) {
	c.mu.Lock()
	wasTenanted := c.tenanted
	ts := c.tenants[t.Name]
	if ts == nil {
		ts = newTenantState(t, c.policy, false)
		c.tenants[t.Name] = ts
	} else {
		ts.cfg = t
		ts.policy = mergeTenantPolicy(c.policy, t)
		ts.auto = false
	}
	c.tenanted = true
	if !wasTenanted {
		// Waiters queued before tenancy was enabled join the default tenant
		// so fair-queue selection sees a tenant on every waiter.
		for _, w := range c.queue {
			if w.tenant == nil {
				w.tenant = c.tenantStateLocked("")
				w.tenant.queued++
				w.tenant.classQueued[w.class.Name]++
			}
		}
	}
	c.drainLocked()
	target, stalled := c.stallTargetLocked()
	c.publishGaugesLocked()
	c.mu.Unlock()
	if stalled {
		c.clock.AdvanceTo(target)
	}
}

// DeregisterTenant removes a tenant from the registry, reporting whether it
// was registered. Its queued and running queries keep their accounting.
// Removing the last registered tenant returns the controller to untenanted
// scheduling (and, under an unlimited policy, the pure pass-through path).
func (c *Controller) DeregisterTenant(name string) bool {
	c.mu.Lock()
	ts, ok := c.tenants[name]
	if ok && !ts.auto {
		delete(c.tenants, name)
	} else {
		ok = false
	}
	registered := false
	for _, t := range c.tenants {
		if !t.auto {
			registered = true
			break
		}
	}
	if !registered {
		c.tenanted = false
	}
	c.drainLocked()
	c.publishGaugesLocked()
	c.mu.Unlock()
	return ok
}

// Tenants lists the registered tenant configurations, sorted by name.
func (c *Controller) Tenants() []Tenant {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Tenant, 0, len(c.tenants))
	for _, ts := range c.tenants {
		if !ts.auto {
			out = append(out, ts.cfg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// tenantStateLocked resolves (lazily creating) the state for a tenant name.
// Unregistered names — including the blank default — get an auto state with
// weight 1 and no quotas, so scheduling stays uniform across all waiters.
func (c *Controller) tenantStateLocked(name string) *tenantState {
	ts := c.tenants[name]
	if ts == nil {
		ts = newTenantState(Tenant{Name: name}, c.policy, true)
		c.tenants[name] = ts
	}
	return ts
}

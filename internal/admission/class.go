package admission

import (
	"sort"

	"repro/internal/simclock"
)

// Built-in workload class names. Deployments may define any classes they
// like; these two are the defaults every federation starts with.
const (
	ClassInteractive = "interactive"
	ClassBatch       = "batch"
)

// DefaultInteractiveCeilingMS is the calibrated-cost boundary between the
// default interactive and batch classes: queries the optimizer expects to
// finish within a second are interactive.
const DefaultInteractiveCeilingMS = 1000

// ClassConfig defines one workload class. Zero means unlimited for every
// cap-like field.
type ClassConfig struct {
	// Name identifies the class (context tags and stats key on it).
	Name string
	// Priority orders queued queries: higher drains first. Priority never
	// preempts running queries, only queue position.
	Priority int
	// CeilingMS classifies by cost: a query whose calibrated estimate is at
	// most CeilingMS may land in this class. Zero or negative means "accepts
	// any cost" (a catch-all).
	CeilingMS float64
	// MaxConcurrent caps how many queries of this class run at once.
	MaxConcurrent int
	// MaxQueue caps how many queries of this class may wait; arrivals beyond
	// it are rejected immediately (ReasonQueueFull).
	MaxQueue int
	// HoldCostMS parks queries whose calibrated estimate exceeds it: they
	// queue (even with free capacity) until a policy change lifts the hold or
	// their QueueDeadline sheds them. Zero disables holds.
	HoldCostMS float64
	// QueueDeadline bounds queue wait in virtual milliseconds; a query still
	// queued past it is shed with a ReasonQueueTimeout rejection. Zero means
	// queued queries wait indefinitely (and holds are rejected up front,
	// since nothing could ever release them).
	QueueDeadline simclock.Time
}

// Policy is a full admission configuration: a global concurrency cap plus an
// ordered set of workload classes.
type Policy struct {
	// MaxConcurrent caps total running queries across all classes (0 =
	// unlimited).
	MaxConcurrent int
	// Classes define the workload taxonomy. Classification walks them in
	// ascending CeilingMS order and picks the first class whose ceiling
	// covers the query's calibrated cost; a class with no ceiling is a
	// catch-all. An empty slice selects the default two-class taxonomy.
	Classes []ClassConfig
}

// DefaultPolicy is the admission-disabled configuration every federation
// starts with: the standard interactive/batch taxonomy with every cap
// unlimited and no holds. Under it the controller is a pure pass-through.
func DefaultPolicy() Policy {
	return Policy{
		Classes: []ClassConfig{
			{Name: ClassInteractive, Priority: 10, CeilingMS: DefaultInteractiveCeilingMS},
			{Name: ClassBatch, Priority: 0},
		},
	}
}

// Unlimited reports whether the policy imposes no constraint at all — no
// caps, no queue bounds, no holds — and the controller may take the
// pass-through path.
func (p Policy) Unlimited() bool {
	if p.MaxConcurrent > 0 {
		return false
	}
	for _, c := range p.Classes {
		if c.MaxConcurrent > 0 || c.MaxQueue > 0 || c.HoldCostMS > 0 {
			return false
		}
	}
	return true
}

// Class finds a class by name.
func (p Policy) Class(name string) (ClassConfig, bool) {
	for _, c := range p.Classes {
		if c.Name == name {
			return c, true
		}
	}
	return ClassConfig{}, false
}

// Classify maps a calibrated cost estimate to a class: the first class (in
// ascending ceiling order, catch-alls last) whose ceiling covers the cost,
// else the last class.
func (p Policy) Classify(costMS float64) ClassConfig {
	for _, c := range p.Classes {
		if c.CeilingMS <= 0 || costMS <= c.CeilingMS {
			return c
		}
	}
	return p.Classes[len(p.Classes)-1]
}

// classFor resolves a request's class: an explicit, known class tag wins;
// otherwise cost classification.
func (p Policy) classFor(req Request) ClassConfig {
	if req.Class != "" {
		if c, ok := p.Class(req.Class); ok {
			return c
		}
	}
	return p.Classify(req.CostMS)
}

// normalized returns a copy with the default taxonomy filled in when Classes
// is empty and classes sorted for classification (ascending ceiling,
// catch-alls last, stable otherwise).
func (p Policy) normalized() Policy {
	out := p.clone()
	if len(out.Classes) == 0 {
		out.Classes = DefaultPolicy().Classes
	}
	sort.SliceStable(out.Classes, func(i, j int) bool {
		ci, cj := out.Classes[i].CeilingMS, out.Classes[j].CeilingMS
		if (ci <= 0) != (cj <= 0) {
			return cj <= 0 // bounded ceilings before catch-alls
		}
		if ci <= 0 {
			return false
		}
		return ci < cj
	})
	return out
}

// clone deep-copies the policy.
func (p Policy) clone() Policy {
	out := p
	out.Classes = append([]ClassConfig(nil), p.Classes...)
	return out
}

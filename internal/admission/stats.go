package admission

import (
	"sort"

	"repro/internal/simclock"
)

// ClassStats is the per-class slice of a Stats snapshot.
type ClassStats struct {
	// Name and Priority identify the class (Priority from the current
	// policy; 0 for classes no longer defined).
	Name     string
	Priority int
	// Running and Queued are instantaneous occupancy.
	Running int
	Queued  int
	// Admitted counts grants; QueuedTotal counts how many of those (plus
	// sheds) actually waited; Held counts enqueues that started held.
	Admitted    int64
	QueuedTotal int64
	Held        int64
	// Shed counts queue-deadline expiries, Rejected immediate refusals
	// (queue full / hopeless holds), Cancelled context cancellations while
	// queued.
	Shed      int64
	Rejected  int64
	Cancelled int64
	// TotalQueueWait accumulates virtual queue wait across all grants.
	TotalQueueWait simclock.Time
}

// Stats is a point-in-time snapshot of the controller.
type Stats struct {
	// Running and Queued are instantaneous totals across classes.
	Running int
	Queued  int
	// Releases counts returned grants.
	Releases int64
	// Classes is sorted by descending priority, then name.
	Classes []ClassStats
}

// TenantStats is one tenant's slice of the controller's accounting.
type TenantStats struct {
	// Name identifies the tenant ("" is the default tenant untagged queries
	// run under once tenancy is enabled).
	Name string
	// Weight is the effective fair-share weight; MaxConcurrent and MaxQueue
	// echo the tenant's quotas (0 = unlimited).
	Weight        float64
	MaxConcurrent int
	MaxQueue      int
	// Registered distinguishes RegisterTenant-ed tenants from states
	// auto-created for unregistered context tags.
	Registered bool
	// Running and Queued are instantaneous occupancy.
	Running int
	Queued  int
	// Admitted counts grants; QueuedTotal how many of those actually waited.
	Admitted    int64
	QueuedTotal int64
	// Shed counts queue-deadline expiries (including tenant-quota sheds),
	// Rejected immediate refusals, Cancelled context cancellations.
	Shed      int64
	Rejected  int64
	Cancelled int64
	// ServedCostMS accumulates the calibrated cost of every grant — the
	// quantity weighted-fair scheduling divides between backlogged tenants.
	ServedCostMS float64
	// TotalQueueWait accumulates virtual queue wait across all grants.
	TotalQueueWait simclock.Time
}

// TenantStats snapshots per-tenant accounting, sorted by descending served
// cost, then name. It is empty until a tenant is registered.
func (c *Controller) TenantStats() []TenantStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TenantStats, 0, len(c.tenants))
	for name, ts := range c.tenants {
		out = append(out, TenantStats{
			Name:           name,
			Weight:         ts.cfg.weight(),
			MaxConcurrent:  ts.cfg.MaxConcurrent,
			MaxQueue:       ts.cfg.MaxQueue,
			Registered:     !ts.auto,
			Running:        ts.running,
			Queued:         ts.queued,
			Admitted:       ts.admitted,
			QueuedTotal:    ts.queuedTotal,
			Shed:           ts.shed,
			Rejected:       ts.rejected,
			Cancelled:      ts.cancelled,
			ServedCostMS:   ts.servedCost,
			TotalQueueWait: ts.waitTotal,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ServedCostMS != out[j].ServedCostMS {
			return out[i].ServedCostMS > out[j].ServedCostMS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Stats snapshots the controller's counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Stats{
		Running:  c.running,
		Queued:   len(c.queue),
		Releases: c.releases,
		Classes:  make([]ClassStats, 0, len(c.tallies)),
	}
	for name, t := range c.tallies {
		cs := ClassStats{
			Name:           name,
			Running:        t.running,
			Queued:         t.queued,
			Admitted:       t.admitted,
			QueuedTotal:    t.queuedTotal,
			Held:           t.held,
			Shed:           t.shed,
			Rejected:       t.rejected,
			Cancelled:      t.cancelled,
			TotalQueueWait: t.waitTotal,
		}
		if cls, ok := c.policy.Class(name); ok {
			cs.Priority = cls.Priority
		}
		out.Classes = append(out.Classes, cs)
	}
	sort.Slice(out.Classes, func(i, j int) bool {
		if out.Classes[i].Priority != out.Classes[j].Priority {
			return out.Classes[i].Priority > out.Classes[j].Priority
		}
		return out.Classes[i].Name < out.Classes[j].Name
	})
	return out
}

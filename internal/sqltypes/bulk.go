package sqltypes

import "math"

// Bulk helpers for columnar kernels. They reproduce the scalar Value
// semantics (Compare ordering, Hash bytes) exactly so the vectorized
// execution path stays bit-identical to the row-at-a-time oracle, while
// letting kernels work on whole columns without a Value round trip per
// cell.

// FNV-1a parameters, matching hash/fnv's 64-bit variant used by Value.Hash.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvUint64LE folds the little-endian bytes of u into h.
func fnvUint64LE(h, u uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h = (h ^ (u >> i & 0xff)) * fnvPrime64
	}
	return h
}

// HashNull returns Value.Hash() of the SQL NULL value.
func HashNull() uint64 {
	h := fnvOffset64
	return (h ^ 0) * fnvPrime64
}

// HashInt64 returns Value.Hash() of NewInt(v) without building a Value.
func HashInt64(v int64) uint64 {
	return fnvUint64LE(fnvOffset64, uint64(v))
}

// HashBool returns Value.Hash() of NewBool(v) without building a Value.
func HashBool(v bool) uint64 {
	if v {
		return HashInt64(1)
	}
	return HashInt64(0)
}

// HashFloat64 returns Value.Hash() of NewFloat(f) without building a Value.
// Integral floats in int64 range hash as their integer value so numerically
// equal int/float keys land in the same hash bucket.
func HashFloat64(f float64) uint64 {
	if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
		return fnvUint64LE(fnvOffset64, uint64(int64(f)))
	}
	return fnvUint64LE(fnvOffset64, math.Float64bits(f))
}

// HashString returns Value.Hash() of NewString(s) without building a Value.
func HashString(s string) uint64 {
	h := fnvOffset64
	h = (h ^ 2) * fnvPrime64
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// AppendColumn appends column col of each row to dst and returns the
// extended slice — a gather from row-major storage into a column vector.
func AppendColumn(dst []Value, rows []Row, col int) []Value {
	if cap(dst)-len(dst) < len(rows) {
		grown := make([]Value, len(dst), len(dst)+len(rows))
		copy(grown, dst)
		dst = grown
	}
	for _, r := range rows {
		dst = append(dst, r[col])
	}
	return dst
}

// CompareColumns compares two equal-length column vectors element-wise with
// the scalar Compare ordering (NULLs first, cross-kind numerics, total
// order) and stores each result in out, which is allocated when nil or too
// short. Slices of different lengths panic, like a mis-sized kernel should.
func CompareColumns(a, b []Value, out []int) []int {
	if len(a) != len(b) {
		panic("sqltypes: CompareColumns length mismatch")
	}
	if len(out) < len(a) {
		out = make([]int, len(a))
	}
	out = out[:len(a)]
	for i := range a {
		out[i] = Compare(a[i], b[i])
	}
	return out
}

// HashColumn hashes a column vector element-wise into out (allocated when
// nil or too short), producing exactly Value.Hash for every cell but
// dispatching on kind once per cell with no hash.Hash64 allocation.
func HashColumn(vals []Value, out []uint64) []uint64 {
	if len(out) < len(vals) {
		out = make([]uint64, len(vals))
	}
	out = out[:len(vals)]
	for i, v := range vals {
		switch v.kind {
		case KindNull:
			out[i] = HashNull()
		case KindInt, KindBool:
			out[i] = HashInt64(v.i)
		case KindFloat:
			out[i] = HashFloat64(v.f)
		case KindString:
			out[i] = HashString(v.s)
		}
	}
	return out
}
